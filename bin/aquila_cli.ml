(* Command-line driver for the Aquila reproduction experiments. *)

open Cmdliner

let list_cmd =
  let doc = "List all reproducible tables and figures." in
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Printf.printf "%-8s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_entries ?jobs ?fault entries =
  Printf.printf "Aquila reproduction — %s\n%!" Experiments.Scenario.scale_note;
  Experiments.Registry.run_selected ?jobs ?fault entries

let resolve id =
  if id = "all" then Ok Experiments.Registry.all
  else
    match Experiments.Registry.find_prefix id with
    | [] -> Error (Printf.sprintf "unknown experiment %S" id)
    | entries -> Ok entries

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record a virtual-time trace and write Chrome Trace Event JSON \
              to $(docv) (open in Perfetto or chrome://tracing).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Run up to $(docv) experiments in parallel (OCaml domains). \
              Each experiment owns its engine, RNG and seeds, so results \
              and output bytes are identical to a sequential run.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the merged aqmetrics snapshot of the run to $(docv): \
              Prometheus text exposition if it ends in .prom or .txt, a \
              flat JSON snapshot otherwise.  Counters merge across \
              $(b,--jobs) domains, so the file is byte-identical at any \
              parallelism.")

let policy_conv =
  let parse s =
    match Mcache.Policy.kind_of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Mcache.Policy.kind_to_string k))

let policy_arg =
  Arg.(
    value
    & opt policy_conv Mcache.Policy.Clock
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Cache replacement policy for every Aquila stack: $(docv) is \
              'clock' (default, the paper's fault-driven LRU \
              approximation), 'fifo', 'lru', '2q' or 'random[:SEED]' \
              (seeded sampled-LRU).  Policies charge their own bookkeeping \
              cycles, so results differ in virtual time as well as hit \
              rate.")

(* Same flag names and spec syntax as bench/main.exe. *)
let fault_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"SPEC"
        ~doc:"Inject seeded device faults, e.g. \
              'seed=7,read=0.001,write=0.001,torn=0.5,spike=0.01,spikex=8'. \
              Each job builds its own plan from $(docv), so injection \
              composes with $(b,--jobs) and stays deterministic.")

let crash_at_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-at" ] ~docv:"EVENT"
        ~doc:"Cut the power at engine event $(docv) (shorthand for \
              'crash=$(docv)' in $(b,--fault-plan)); the run reports the \
              cut and discards volatile state.")

let fault_spec_of plan crash_at =
  let base =
    match plan with
    | None -> Ok Fault.Plan.default
    | Some s -> Fault.Plan.parse s
  in
  Result.map
    (fun spec ->
      match crash_at with
      | None ->
          if plan = None then None else Some spec
      | Some at -> Some { spec with Fault.Plan.crash_at = Some at })
    base

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:"Partition every engine's event queue into $(docv) shards \
              (static routing by fiber core, drained in global (time, seq) \
              order — the deterministic merge, DESIGN.md section 9).  \
              Output is byte-identical at any shard count.  Contrast with \
              $(b,--jobs), which fans out across independent experiments; \
              $(b,--shards) restructures the event queue inside each one.")

let deterministic_arg =
  Arg.(
    value
    & flag
    & info [ "deterministic" ]
        ~doc:"Run cluster workloads (the 's'-suffixed shard-partitioned \
              experiments) in deterministic merge mode — one domain \
              replaying the shards in global (time, seq) order — instead \
              of free-running across OCaml domains.  Terminal stats are \
              byte-identical either way (the CI parity gates compare \
              them); single-engine workloads already merge \
              deterministically, so there the flag just asserts the \
              contract.")

let run_cmd =
  let doc = "Run one experiment (or 'all')." in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see 'list'), or 'all'.")
  in
  let run id trace_out jobs shards deterministic plan crash_at policy
      metrics_out =
    match (resolve id, fault_spec_of plan crash_at) with
    | Error msg, _ -> `Error (false, msg)
    | _, Error msg -> `Error (true, "--fault-plan: " ^ msg)
    | Ok _, _ when jobs < 1 -> `Error (true, "--jobs must be >= 1")
    | Ok _, _ when shards < 1 -> `Error (true, "--shards must be >= 1")
    | Ok entries, Ok fault ->
        Experiments.Scenario.set_policy policy;
        Sim.Engine.set_default_shards shards;
        Experiments.Sharded.set_mode ~shards ~deterministic;
        (* The ambient tracer is domain-local: worker domains would record
           nothing, so tracing forces a sequential run. *)
        let jobs =
          if trace_out <> None && jobs > 1 then begin
            Printf.eprintf "aquila_cli: --trace forces --jobs 1\n%!";
            1
          end
          else jobs
        in
        Experiments.Scenario.with_metrics ?out:metrics_out (fun () ->
            Experiments.Scenario.with_trace ?out:trace_out (fun () ->
                run_entries ~jobs ?fault entries));
        `Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ id $ trace_out_arg $ jobs_arg $ shards_arg
       $ deterministic_arg $ fault_plan_arg $ crash_at_arg $ policy_arg
       $ metrics_out_arg))

let trace_cmd =
  let doc = "Run an experiment under the tracer and export the trace." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the experiment(s) selected by $(i,ID) with virtual-time \
         tracing enabled and writes a Chrome Trace Event JSON file \
         (cores appear as processes, fibers as threads; one trace \
         microsecond equals one simulated cycle).  An id prefix selects \
         every matching experiment, so 'trace fig5' records fig5a and \
         fig5b into one file.";
    ]
  in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:"Experiment id or prefix (see 'list'), or 'all'.")
  in
  let out =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Chrome Trace Event JSON output path.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write a flat CSV of events.")
  in
  let summary =
    Arg.(
      value
      & opt int 20
      & info [ "summary" ] ~docv:"N"
          ~doc:"Print the top $(docv) spans by total cycles (0 disables).")
  in
  let buffer =
    Arg.(
      value
      & opt int 65536
      & info [ "buffer" ] ~docv:"SLOTS"
          ~doc:"Per-core ring-buffer capacity in events; oldest events are \
                dropped on overflow (the drop count is recorded in the \
                trace).")
  in
  let run id out csv summary buffer policy metrics_out =
    match resolve id with
    | Error msg -> `Error (false, msg)
    | Ok _ when buffer <= 0 ->
        `Error (true, "--buffer must be a positive number of events")
    | Ok entries ->
        Experiments.Scenario.set_policy policy;
        let summary = if summary > 0 then Some summary else None in
        Experiments.Scenario.with_metrics ?out:metrics_out (fun () ->
            Experiments.Scenario.with_trace ~buffer_per_core:buffer ~out ?csv
              ?summary (fun () -> run_entries entries));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "trace" ~doc ~man)
    Term.(
      ret
        (const run $ id $ out $ csv $ summary $ buffer $ policy_arg
       $ metrics_out_arg))

let faultcheck_cmd =
  let doc = "Crash-consistency sweep: inject power cuts, verify durability." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "For every (seed, crash point) combo, runs a workload under a \
         deterministic fault plan that cuts the power at a chosen engine \
         event, checks the surviving device bytes against a durability \
         oracle (everything acked by a completed msync must be intact and \
         untorn), and restarts a fresh stack over the same device.  Runs \
         both the mmap microbenchmark (NVMe) and the Kreon-sim KV store \
         (DAX pmem) unless $(b,--mode) narrows it.  Exits non-zero on any \
         violation.";
    ]
  in
  let seeds =
    Arg.(
      value
      & opt int 5
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep workload seeds 1..$(docv).")
  in
  let points =
    Arg.(
      value
      & opt int 20
      & info [ "points" ] ~docv:"N"
          ~doc:"Crash points per seed, spread over the run's event count.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("all", `All); ("micro", `Micro); ("kreon", `Kreon) ]) `All
      & info [ "mode" ] ~docv:"MODE" ~doc:"Which stack to check: $(docv) is \
                                           'micro', 'kreon' or 'all'.")
  in
  let broken =
    Arg.(
      value
      & flag
      & info [ "broken" ]
          ~doc:"Check the deliberately broken variant (write-protect after \
                msync disabled): the sweep is expected to report \
                violations, proving the checker has teeth.")
  in
  let run seeds points mode broken shards _deterministic plan crash_at policy
      metrics_out =
    if seeds < 1 || points < 1 then
      `Error (true, "--seeds and --points must be >= 1")
    else if shards < 1 then `Error (true, "--shards must be >= 1")
    else
      match fault_spec_of plan crash_at with
      | Error msg -> `Error (true, "--fault-plan: " ^ msg)
      | Ok fault ->
          Sim.Engine.set_default_shards shards;
          let spec = Option.value fault ~default:Fault.Plan.default in
          let seeds = List.init seeds (fun i -> i + 1) in
          let reports =
            Experiments.Scenario.with_metrics ?out:metrics_out @@ fun () ->
            (match mode with
            | `Micro | `All ->
                [
                  Fault_check.Check.run_micro ~spec ~broken ~policy ~seeds
                    ~points ();
                ]
            | `Kreon -> [])
            @
            match mode with
            | `Kreon | `All ->
                if broken then []
                else
                  [ Fault_check.Check.run_kreon ~spec ~policy ~seeds ~points () ]
            | `Micro -> []
          in
          List.iter (Fault_check.Check.pp_report Format.std_formatter) reports;
          let clean = List.for_all Fault_check.Check.ok reports in
          if broken then
            if clean then
              `Error (false, "broken variant produced no violations — the \
                              checker missed a real durability bug")
            else begin
              print_endline
                "broken variant caught, as expected — checker has teeth";
              `Ok ()
            end
          else if clean then `Ok ()
          else `Error (false, "durability violations found")
  in
  Cmd.v
    (Cmd.info "faultcheck" ~doc ~man)
    Term.(
      ret
        (const run $ seeds $ points $ mode $ broken $ shards_arg
       $ deterministic_arg $ fault_plan_arg $ crash_at_arg $ policy_arg
       $ metrics_out_arg))

let clustercheck_cmd =
  let doc = "Cluster failover sweep: crash nodes, verify no acked write lost." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "For every (seed, crash ordinal, crashed node) combo, drives a \
         seeded workload through the replicated aqcluster while a fault \
         plan downs the target node at an exact engine event, lets \
         failover, recovery and resync drain, then checks that every \
         acknowledged write reads back (as its value or a later one), \
         that reads never return foreign bytes, and that all replicas \
         converge — and repeats the oracle on a fresh cluster restarted \
         from the surviving devices.  Each seed additionally runs a \
         doubled no-crash probe as a byte-level determinism gate.  \
         $(b,--jobs) fans seeds out across domains; the merged report is \
         byte-identical at any parallelism.  Exits non-zero on any \
         violation.";
    ]
  in
  let seeds =
    Arg.(
      value
      & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep workload seeds 1..$(docv).")
  in
  let points =
    Arg.(
      value
      & opt int 4
      & info [ "points" ] ~docv:"N"
          ~doc:"Crash ordinals per seed, spread over the run's event count \
                (each is crossed with every node as the crash target).")
  in
  let nodes =
    Arg.(
      value
      & opt int 3
      & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size in nodes.")
  in
  let replicas =
    Arg.(
      value
      & opt int 2
      & info [ "replicas" ] ~docv:"K"
          ~doc:"Durable copies per key (primary included) before an ack.")
  in
  let broken =
    Arg.(
      value
      & flag
      & info [ "broken" ]
          ~doc:"Check the deliberately broken variant (acknowledge after \
                the primary's durable write, replicate asynchronously): \
                the sweep is expected to report lost acknowledged writes, \
                proving the oracle has teeth.")
  in
  let run seeds points nodes replicas broken jobs =
    if seeds < 1 || points < 1 then
      `Error (true, "--seeds and --points must be >= 1")
    else if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else if nodes < 2 || replicas < 1 || replicas > nodes then
      `Error (true, "--nodes must be >= 2 and 1 <= --replicas <= --nodes")
    else begin
      let cfg =
        {
          Aqcluster.Cluster.default_config with
          Aqcluster.Cluster.nodes;
          replicas;
        }
      in
      let seed_list = List.init seeds (fun i -> i + 1) in
      (* one fan-out job per seed, each writing its own report slot;
         Fanout joins every domain before we merge in seed order, so the
         printed report is byte-identical at any --jobs degree *)
      let results = Array.make seeds Aqcluster.Check.empty in
      Experiments.Fanout.run ~jobs
        (List.mapi
           (fun i seed ->
             Experiments.Fanout.job
               ~name:(Printf.sprintf "clustercheck seed %d" seed)
               (fun () ->
                 results.(i) <-
                   Aqcluster.Check.sweep ~broken ~cfg ~seeds:[ seed ] ~points
                     ()))
           seed_list);
      let report =
        Array.fold_left Aqcluster.Check.merge Aqcluster.Check.empty results
      in
      Aqcluster.Check.pp_report Format.std_formatter report;
      let clean = Aqcluster.Check.ok report in
      if broken then
        if clean then
          `Error
            ( false,
              "broken variant produced no violations — the oracle missed a \
               real lost-ack bug" )
        else begin
          print_endline "broken variant caught, as expected — oracle has teeth";
          `Ok ()
        end
      else if clean then `Ok ()
      else `Error (false, "cluster violations found")
    end
  in
  Cmd.v
    (Cmd.info "clustercheck" ~doc ~man)
    Term.(
      ret (const run $ seeds $ points $ nodes $ replicas $ broken $ jobs_arg))

let loadtest_cmd =
  let doc = "Open-loop load test: seeded arrivals, sojourn SLOs, shedding." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Injects requests from a seeded arrival process (Poisson, bursty \
         MMPP, or a diurnal ramp) at the offered rates in $(b,--rates), \
         independent of how fast each backend absorbs them — the open-loop \
         setup that exposes queueing delay.  Per-request sojourn latency \
         (arrival to completion) is reported as p50/p99/p999 with \
         SLO-violation and load-shedding counts; arrivals beyond the \
         bounded admission queue are shed, as are arrivals while the DRAM \
         cache is in degraded mode.  One fan-out job per (backend, rate) \
         point: output is byte-identical at any $(b,--jobs) or \
         $(b,--shards) degree (CI cmp-gates both; lines starting with '#' \
         are excluded from the comparison).";
    ]
  in
  let backend_conv =
    let parse s =
      match Experiments.Openloop.kind_of_string s with
      | Ok k -> Ok k
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv
      ( parse,
        fun ppf k ->
          Format.pp_print_string ppf (Experiments.Openloop.kind_name k) )
  in
  let backends =
    Arg.(
      value
      & opt (list backend_conv)
          Experiments.Openloop.[ Linux; Aquila; Cluster ]
      & info [ "backends" ] ~docv:"LIST"
          ~doc:"Comma-separated backends to drive: 'linux' (mmap sim), \
                'aquila' (single node) and/or 'cluster' (replicated \
                aqcluster kvstore).")
  in
  let rates =
    Arg.(
      value
      & opt (list float) Experiments.Openloop.default_rates
      & info [ "rates" ] ~docv:"OPS"
          ~doc:"Comma-separated offered loads in ops/s of the simulated \
                2.4 GHz clock; each (backend, rate) pair is one run on a \
                fresh engine.")
  in
  let process =
    Arg.(
      value
      & opt string "poisson"
      & info [ "process" ] ~docv:"P"
          ~doc:"Arrival process: 'poisson', 'mmpp' (bursty on/off) or \
                'diurnal' (raised-cosine ramp).  Mean offered load always \
                equals the swept rate.")
  in
  let dflt = Experiments.Openloop.default_params in
  let horizon =
    Arg.(
      value
      & opt int dflt.Experiments.Openloop.horizon
      & info [ "horizon" ] ~docv:"CYCLES"
          ~doc:"Injection window in virtual cycles.")
  in
  let workers =
    Arg.(
      value
      & opt int dflt.Experiments.Openloop.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:"Service fibers draining the admission queue per backend.")
  in
  let queue_cap =
    Arg.(
      value
      & opt int dflt.Experiments.Openloop.queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Bounded admission-queue capacity; arrivals beyond it are \
                shed (counted, never blocking the injector).")
  in
  let slo =
    Arg.(
      value
      & opt int dflt.Experiments.Openloop.slo_cycles
      & info [ "slo" ] ~docv:"CYCLES"
          ~doc:"Sojourn SLO in cycles; slower completions count as \
                violations (0 disables).")
  in
  let seed =
    Arg.(
      value
      & opt int dflt.Experiments.Openloop.seed
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the arrival stream and request contents.")
  in
  let run backends rates process horizon workers queue_cap slo seed jobs
      shards deterministic plan crash_at policy metrics_out =
    match (Loadgen.Arrival.shape_of_string process, fault_spec_of plan crash_at)
    with
    | Error msg, _ -> `Error (true, "--process: " ^ msg)
    | _, Error msg -> `Error (true, "--fault-plan: " ^ msg)
    | Ok _, _ when jobs < 1 -> `Error (true, "--jobs must be >= 1")
    | Ok _, _ when shards < 1 -> `Error (true, "--shards must be >= 1")
    | Ok _, _ when horizon <= 0 -> `Error (true, "--horizon must be > 0")
    | Ok _, _ when workers < 1 -> `Error (true, "--workers must be >= 1")
    | Ok _, _ when queue_cap < 1 -> `Error (true, "--queue-cap must be >= 1")
    | Ok _, _ when slo < 0 -> `Error (true, "--slo must be >= 0")
    | Ok _, _ when backends = [] -> `Error (true, "--backends must be non-empty")
    | Ok _, _ when rates = [] || List.exists (fun r -> r <= 0.) rates ->
        `Error (true, "--rates must be positive")
    | Ok shape, Ok fault ->
        Experiments.Scenario.set_policy policy;
        Sim.Engine.set_default_shards shards;
        (* loadtest runs single-engine workloads: --shards restructures
           each engine's queue under the deterministic merge, and
           --deterministic just asserts that contract, so both are
           reported on a '#' line the parity gate filters out *)
        Printf.printf "# loadtest jobs=%d shards=%d%s\n%!" jobs shards
          (if deterministic then " deterministic" else "");
        let params =
          {
            Experiments.Openloop.shape;
            horizon;
            workers;
            queue_cap;
            slo_cycles = slo;
            seed;
          }
        in
        Experiments.Scenario.with_metrics ?out:metrics_out (fun () ->
            Experiments.Openloop.loadtest ~jobs ?fault ~backends ~rates params);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "loadtest" ~doc ~man)
    Term.(
      ret
        (const run $ backends $ rates $ process $ horizon $ workers
       $ queue_cap $ slo $ seed $ jobs_arg $ shards_arg $ deterministic_arg
       $ fault_plan_arg $ crash_at_arg $ policy_arg $ metrics_out_arg))

let report_cmd =
  let doc = "Run an experiment and print its metrics breakdown." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the experiment(s) selected by $(i,ID) with a fresh metrics \
         epoch and prints the merged counter/gauge/histogram snapshot as \
         a table (nonzero series only).  $(b,--metrics-out) additionally \
         writes the snapshot to a file; $(b,--profile) enables the \
         virtual-time sampling profiler and writes folded stacks \
         (flamegraph.pl / speedscope); $(b,--timeseries) records a \
         periodic snapshot CSV.  Counter output is byte-identical at any \
         $(b,--jobs) level; profiling forces a sequential run.";
    ]
  in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:"Experiment id or prefix (see 'list'), or 'all'.")
  in
  let families =
    Arg.(
      value
      & flag
      & info [ "families" ]
          ~doc:"Also print the registered metric families with their help \
                strings.")
  in
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Write a folded-stack virtual-time profile to $(docv) \
                (one 'fiber;label count' line per stack; feed to \
                flamegraph.pl or speedscope).  Forces $(b,--jobs) 1.")
  in
  let sample_period =
    Arg.(
      value
      & opt int 10_000
      & info [ "sample-period" ] ~docv:"CYCLES"
          ~doc:"Profiler sampling grid in virtual cycles.")
  in
  let timeseries =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeseries" ] ~docv:"FILE"
          ~doc:"Write a long-format CSV (cycles,key,value) sampling every \
                metric on a virtual-time grid.  Forces $(b,--jobs) 1.")
  in
  let ts_period =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "timeseries-period" ] ~docv:"CYCLES"
          ~doc:"Timeseries sampling period in virtual cycles.")
  in
  let run id jobs shards deterministic plan crash_at policy metrics_out
      families profile sample_period timeseries ts_period =
    match (resolve id, fault_spec_of plan crash_at) with
    | Error msg, _ -> `Error (false, msg)
    | _, Error msg -> `Error (true, "--fault-plan: " ^ msg)
    | Ok _, _ when jobs < 1 -> `Error (true, "--jobs must be >= 1")
    | Ok _, _ when shards < 1 -> `Error (true, "--shards must be >= 1")
    | Ok _, _ when sample_period <= 0 || ts_period <= 0 ->
        `Error (true, "--sample-period and --timeseries-period must be > 0")
    | Ok entries, Ok fault ->
        Experiments.Scenario.set_policy policy;
        Sim.Engine.set_default_shards shards;
        Experiments.Sharded.set_mode ~shards ~deterministic;
        let profiling = profile <> None || timeseries <> None in
        (* The profiler is domain-local, like the tracer. *)
        let jobs =
          if profiling && jobs > 1 then begin
            Printf.eprintf
              "aquila_cli: --profile/--timeseries forces --jobs 1\n%!";
            1
          end
          else jobs
        in
        Metrics.Registry.reset ();
        if profiling then
          Metrics.Profile.start ~period:sample_period
            ~ts_period:(match timeseries with None -> 0 | Some _ -> ts_period)
            ();
        run_entries ~jobs ?fault entries;
        if profiling then Metrics.Profile.stop ();
        let samples = Metrics.Registry.snapshot () in
        if families then Stats.Metrics_report.print_families samples;
        Stats.Metrics_report.print samples;
        (match metrics_out with
        | Some path ->
            Metrics.Export.write ~path samples;
            Printf.printf "metrics: snapshot -> %s\n%!" path
        | None -> ());
        (match profile with
        | Some path ->
            Metrics.Export.to_file path (Metrics.Profile.folded ());
            Printf.printf "metrics: folded profile -> %s\n%!" path
        | None -> ());
        (match timeseries with
        | Some path ->
            Metrics.Export.to_file path (Metrics.Profile.timeseries_csv ());
            Printf.printf "metrics: timeseries -> %s\n%!" path
        | None -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "report" ~doc ~man)
    Term.(
      ret
        (const run $ id $ jobs_arg $ shards_arg $ deterministic_arg
       $ fault_plan_arg $ crash_at_arg $ policy_arg $ metrics_out_arg
       $ families $ profile $ sample_period $ timeseries $ ts_period))

let () =
  let doc = "Reproduction harness for 'Memory-Mapped I/O on Steroids' (EuroSys '21)" in
  let info = Cmd.info "aquila_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            trace_cmd;
            report_cmd;
            loadtest_cmd;
            faultcheck_cmd;
            clustercheck_cmd;
          ]))
