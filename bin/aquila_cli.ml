(* Command-line driver for the Aquila reproduction experiments. *)

open Cmdliner

let list_cmd =
  let doc = "List all reproducible tables and figures." in
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Printf.printf "%-8s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_entries ?jobs entries =
  Printf.printf "Aquila reproduction — %s\n%!" Experiments.Scenario.scale_note;
  Experiments.Registry.run_selected ?jobs entries

let resolve id =
  if id = "all" then Ok Experiments.Registry.all
  else
    match Experiments.Registry.find_prefix id with
    | [] -> Error (Printf.sprintf "unknown experiment %S" id)
    | entries -> Ok entries

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record a virtual-time trace and write Chrome Trace Event JSON \
              to $(docv) (open in Perfetto or chrome://tracing).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Run up to $(docv) experiments in parallel (OCaml domains). \
              Each experiment owns its engine, RNG and seeds, so results \
              and output bytes are identical to a sequential run.")

let run_cmd =
  let doc = "Run one experiment (or 'all')." in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see 'list'), or 'all'.")
  in
  let run id trace_out jobs =
    match resolve id with
    | Error msg -> `Error (false, msg)
    | Ok _ when jobs < 1 -> `Error (true, "--jobs must be >= 1")
    | Ok entries ->
        (* The ambient tracer is domain-local: worker domains would record
           nothing, so tracing forces a sequential run. *)
        let jobs =
          if trace_out <> None && jobs > 1 then begin
            Printf.eprintf "aquila_cli: --trace forces --jobs 1\n%!";
            1
          end
          else jobs
        in
        Experiments.Scenario.with_trace ?out:trace_out (fun () ->
            run_entries ~jobs entries);
        `Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ id $ trace_out_arg $ jobs_arg))

let trace_cmd =
  let doc = "Run an experiment under the tracer and export the trace." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the experiment(s) selected by $(i,ID) with virtual-time \
         tracing enabled and writes a Chrome Trace Event JSON file \
         (cores appear as processes, fibers as threads; one trace \
         microsecond equals one simulated cycle).  An id prefix selects \
         every matching experiment, so 'trace fig5' records fig5a and \
         fig5b into one file.";
    ]
  in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:"Experiment id or prefix (see 'list'), or 'all'.")
  in
  let out =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Chrome Trace Event JSON output path.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write a flat CSV of events.")
  in
  let summary =
    Arg.(
      value
      & opt int 20
      & info [ "summary" ] ~docv:"N"
          ~doc:"Print the top $(docv) spans by total cycles (0 disables).")
  in
  let buffer =
    Arg.(
      value
      & opt int 65536
      & info [ "buffer" ] ~docv:"SLOTS"
          ~doc:"Per-core ring-buffer capacity in events; oldest events are \
                dropped on overflow (the drop count is recorded in the \
                trace).")
  in
  let run id out csv summary buffer =
    match resolve id with
    | Error msg -> `Error (false, msg)
    | Ok _ when buffer <= 0 ->
        `Error (true, "--buffer must be a positive number of events")
    | Ok entries ->
        let summary = if summary > 0 then Some summary else None in
        Experiments.Scenario.with_trace ~buffer_per_core:buffer ~out ?csv
          ?summary (fun () -> run_entries entries);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "trace" ~doc ~man)
    Term.(ret (const run $ id $ out $ csv $ summary $ buffer))

let () =
  let doc = "Reproduction harness for 'Memory-Mapped I/O on Steroids' (EuroSys '21)" in
  let info = Cmd.info "aquila_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; trace_cmd ]))
