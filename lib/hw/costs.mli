(** Cycle-cost model for the simulated x86-64 / VT-x machine.

    Every constant that the paper reports directly is used verbatim
    (Sections 3.3, 4.1, 4.4, 6.4 of the paper and the Dune/Shinjuku numbers
    it cites); the remaining constants are calibrated so that the composite
    measurements in Figures 7 and 8 land close to the published breakdowns.
    The model is a record so ablation benches can perturb individual
    costs. *)

type t = {
  (* Protection-domain transitions *)
  trap_ring3 : int64;
      (** ring 3 → ring 0 page-fault trap plus [iret] return: 1287 cycles
          (536 ns), Section 6.4 *)
  exception_ring0 : int64;
      (** exception delivered inside non-root ring 0 (Aquila): 552 cycles
          (230 ns), Section 6.4 *)
  vmexit : int64;  (** one-way vmexit: ~750 cycles (250 ns), Section 4.4 *)
  vmcall_roundtrip : int64;
      (** guest → hypervisor → guest round trip for uncommon operations *)
  syscall : int64;  (** syscall entry/exit pair in the host kernel *)
  (* Interrupts *)
  ipi_send_posted : int64;  (** posted-interrupt send, no vmexit: 298 cycles *)
  ipi_send_vmexit : int64;
      (** IPI send forced through a vmexit (DoS-rate-limited path): 2081
          cycles, Section 4.1 *)
  ipi_receive : int64;  (** receive + handler dispatch on the target core *)
  exception_stack_switch : int64;
      (** IST-style alternate-stack switch and exception-frame copy used by
          Aquila's handlers (Section 4.2) *)
  (* TLB and page tables *)
  tlb_invlpg : int64;  (** single-page local invalidation *)
  tlb_full_flush : int64;  (** full local TLB flush *)
  tlb_miss_walk : int64;  (** hardware page-table walk on a TLB miss *)
  pte_update : int64;  (** write one PTE and its flags *)
  ept_fault : int64;
      (** EPT-violation vmexit handling in the host (excluding the vmexit
          transition itself) *)
  (* Data copies (Section 3.3) *)
  memcpy_4k_scalar : int64;  (** 4 KiB copy without SIMD: ~2400 cycles *)
  memcpy_4k_avx2 : int64;  (** 4 KiB AVX2 streaming copy: ~900 cycles *)
  fpu_save_restore : int64;  (** XSAVEOPT/FXRSTOR pair: ~300 cycles *)
  (* Software data structures on the fault path *)
  hash_lookup : int64;  (** lock-free hash-table probe *)
  hash_update : int64;  (** lock-free hash-table insert/remove (CAS) *)
  rb_op : int64;  (** red-black tree insert/delete/search step cost *)
  radix_lookup : int64;  (** radix-tree descend *)
  radix_update : int64;  (** radix-tree insert/remove *)
  freelist_op : int64;  (** lock-free per-core freelist push/pop *)
  lru_update : int64;  (** LRU-approximation bookkeeping per fault *)
  (* Linux kernel path *)
  vma_lookup : int64;  (** VMA red-black-tree walk under [mmap_sem] *)
  kernel_fault_entry : int64;  (** generic fault-path bookkeeping *)
  kernel_block_layer : int64;
      (** block-layer submit/complete software cost for one request *)
  kernel_buffered_read : int64;
      (** per-4KiB VFS + page-cache cost of a buffered [read] *)
  sched_wakeup : int64;  (** context switch / wakeup after I/O sleep *)
}

val default : t
(** The calibrated model described above. *)

val min_cross_shard_latency : t -> int64
(** [min_cross_shard_latency c] is the smallest virtual-time distance at
    which one simulation shard can affect another — the posted-IPI
    send + receive cost ([298 + 500] cycles in {!default}), the
    cheapest cross-core channel in the model.  Conservative-parallel
    runs ([Sim.Shard]) use it as the lookahead floor: between barriers
    each shard may run this many cycles past the cluster's minimum
    next-event time without missing a cross-shard event.  Workloads
    whose only cross-shard traffic is coarser (e.g. NVMe completions,
    [setup_cycles] >= 2400) may declare a larger lookahead. *)

val memcpy_4k : t -> simd:bool -> int64
(** [memcpy_4k c ~simd] is the cost of one 4 KiB copy.  With [simd] the
    AVX2 streaming cost applies {e plus} the FPU save/restore that a fault
    handler must pay to use vector registers (Section 3.3: 900 + 300 =
    1200 cycles vs 2400 scalar). *)

val memcpy_bytes : t -> simd:bool -> int -> int64
(** [memcpy_bytes c ~simd n] scales the 4 KiB copy cost linearly to [n]
    bytes, charging the FPU save/restore once. *)
