type t = {
  slots : int array; (* -1 = empty; direct-mapped on vpn *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable invals : int;
  (* all per-core TLBs share the same (unlabelled) metric series *)
  m_hits : Metrics.Registry.cell;
  m_misses : Metrics.Registry.cell;
}

let create ?(capacity = 1536) () =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity";
  {
    slots = Array.make capacity (-1);
    capacity;
    hits = 0;
    misses = 0;
    invals = 0;
    m_hits = Metrics.Registry.counter ~help:"TLB hits" "hw_tlb_hits";
    m_misses =
      Metrics.Registry.counter ~help:"TLB misses (page walks)" "hw_tlb_misses";
  }

let slot_of t vpn = vpn mod t.capacity

let access t (c : Costs.t) ~vpn =
  let s = slot_of t vpn in
  if t.slots.(s) = vpn then begin
    t.hits <- t.hits + 1;
    Metrics.Registry.incr t.m_hits;
    0L
  end
  else begin
    t.misses <- t.misses + 1;
    Metrics.Registry.incr t.m_misses;
    t.slots.(s) <- vpn;
    if Trace.on () then Sim.Probe.instant ~cat:"hw" "tlb_miss_walk";
    c.tlb_miss_walk
  end

let invalidate_page t ~vpn =
  let s = slot_of t vpn in
  if t.slots.(s) = vpn then begin
    t.slots.(s) <- -1;
    t.invals <- t.invals + 1
  end

let invalidate_local t (c : Costs.t) ~vpn =
  invalidate_page t ~vpn;
  c.tlb_invlpg

let flush t (c : Costs.t) =
  Array.fill t.slots 0 t.capacity (-1);
  t.invals <- t.invals + 1;
  c.tlb_full_flush

let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invals
