type send_mode = Posted | Vmexit_send | Kernel_ipi

(* Domain-local so parallel experiment fan-out keeps counters isolated. *)
let sent_key = Domain.DLS.new_key (fun () -> ref 0)
let sent () = Domain.DLS.get sent_key

(* Metric cells are domain-local too; shootdowns are far off the hot
   path, so the DLS lookup per batch is fine. *)
let m_shoot_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"TLB shootdown batches"
        "hw_tlb_shootdowns")

let m_ipi_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"IPIs delivered to remote cores"
        "hw_ipis_sent")

let send_cost (c : Costs.t) = function
  | Posted -> c.ipi_send_posted
  | Vmexit_send -> c.ipi_send_vmexit
  | Kernel_ipi -> c.ipi_send_posted (* x2APIC write; receive side dominates *)

let shootdown m (c : Costs.t) ~mode ~src ~targets ~vpns =
  let targets = List.filter (fun t -> t <> src) targets in
  match targets with
  | [] -> 0L
  | _ :: _ ->
      incr (sent ());
      Metrics.Registry.incr (Domain.DLS.get m_shoot_key);
      Metrics.Registry.add (Domain.DLS.get m_ipi_key) (List.length targets);
      let npages = List.length vpns in
      if Trace.on () then begin
        Sim.Probe.instant ~cat:"hw"
          ~value:(Int64.of_int (List.length targets))
          (match mode with
          | Posted -> "ipi_send_posted"
          | Vmexit_send -> "ipi_send_vmexit"
          | Kernel_ipi -> "ipi_send_kernel");
        Sim.Probe.instant ~cat:"hw" ~value:(Int64.of_int npages) "tlb_shootdown"
      end;
      (* Receiver work: interrupt entry plus one invlpg per page (a full
         flush if the batch is large, as Linux and Aquila both do). *)
      let invalidate_cost =
        if npages > 33 then c.tlb_full_flush
        else Int64.mul (Int64.of_int npages) c.tlb_invlpg
      in
      let per_receiver = Int64.add c.ipi_receive invalidate_cost in
      List.iter
        (fun core_id ->
          let core = Machine.core m core_id in
          List.iter (fun vpn -> Tlb.invalidate_page core.Machine.tlb ~vpn) vpns;
          if Trace.on () then
            Sim.Probe.instant_on_core ~core:core_id ~cat:"hw"
              ~value:per_receiver "ipi_recv";
          Machine.deliver_irq m ~core:core_id per_receiver)
        targets;
      (* Sender: one send per batch (posted IPIs broadcast), then wait for
         the slowest ack; receivers proceed in parallel. *)
      Int64.add (send_cost c mode) per_receiver

let shootdowns_sent () = !(sent ())
let reset_counters () = sent () := 0
