type t = {
  gran : int64;
  frames : (int, unit) Hashtbl.t;
  mutable nfaults : int;
}

let one_gib = 1073741824L

let create ?(granularity_bytes = one_gib) () =
  if Int64.compare granularity_bytes 4096L < 0 then
    invalid_arg "Ept.create: granularity below a base page";
  { gran = granularity_bytes; frames = Hashtbl.create 64; nfaults = 0 }

let granularity t = t.gran
let frame_of t gpa = Int64.to_int (Int64.div gpa t.gran)

let touch t (c : Costs.t) ~gpa =
  let f = frame_of t gpa in
  if Hashtbl.mem t.frames f then 0L
  else begin
    t.nfaults <- t.nfaults + 1;
    Hashtbl.replace t.frames f ();
    if Trace.on () then Sim.Probe.instant ~cat:"hw" "ept_fault";
    (* vmexit out, host handles the violation, vmentry back *)
    Int64.add (Int64.mul 2L c.vmexit) c.ept_fault
  end

let unmap_range t ~gpa ~len =
  let first = frame_of t gpa in
  let last = frame_of t (Int64.add gpa (Int64.sub len 1L)) in
  let dropped = ref 0 in
  for f = first to last do
    if Hashtbl.mem t.frames f then begin
      Hashtbl.remove t.frames f;
      incr dropped
    end
  done;
  !dropped

let faults t = t.nfaults
let mapped_frames t = Hashtbl.length t.frames
