type t = {
  trap_ring3 : int64;
  exception_ring0 : int64;
  vmexit : int64;
  vmcall_roundtrip : int64;
  syscall : int64;
  ipi_send_posted : int64;
  ipi_send_vmexit : int64;
  ipi_receive : int64;
  exception_stack_switch : int64;
  tlb_invlpg : int64;
  tlb_full_flush : int64;
  tlb_miss_walk : int64;
  pte_update : int64;
  ept_fault : int64;
  memcpy_4k_scalar : int64;
  memcpy_4k_avx2 : int64;
  fpu_save_restore : int64;
  hash_lookup : int64;
  hash_update : int64;
  rb_op : int64;
  radix_lookup : int64;
  radix_update : int64;
  freelist_op : int64;
  lru_update : int64;
  vma_lookup : int64;
  kernel_fault_entry : int64;
  kernel_block_layer : int64;
  kernel_buffered_read : int64;
  sched_wakeup : int64;
}

let default =
  {
    trap_ring3 = 1287L;
    exception_ring0 = 552L;
    vmexit = 750L;
    vmcall_roundtrip = 3000L;
    syscall = 700L;
    ipi_send_posted = 298L;
    ipi_send_vmexit = 2081L;
    ipi_receive = 500L;
    exception_stack_switch = 90L;
    tlb_invlpg = 160L;
    tlb_full_flush = 500L;
    tlb_miss_walk = 90L;
    pte_update = 140L;
    ept_fault = 1200L;
    memcpy_4k_scalar = 2400L;
    memcpy_4k_avx2 = 900L;
    fpu_save_restore = 300L;
    hash_lookup = 180L;
    hash_update = 260L;
    rb_op = 240L;
    radix_lookup = 150L;
    radix_update = 380L;
    freelist_op = 60L;
    lru_update = 110L;
    vma_lookup = 350L;
    kernel_fault_entry = 320L;
    kernel_block_layer = 1400L;
    kernel_buffered_read = 1900L;
    sched_wakeup = 2000L;
  }

(* Conservative-PDES lookahead (DESIGN.md §9): the minimum virtual-time
   distance at which one shard of the simulation can affect another.
   The cheapest cross-core channel in the model is a posted IPI —
   send-side cost plus delivery — so no cross-shard event can land
   sooner than this after its cause, and shards may safely free-run a
   window of this width past the global minimum next-event time. *)
let min_cross_shard_latency c = Int64.add c.ipi_send_posted c.ipi_receive

let memcpy_4k c ~simd =
  if simd then Int64.add c.memcpy_4k_avx2 c.fpu_save_restore
  else c.memcpy_4k_scalar

let memcpy_bytes c ~simd n =
  if n <= 0 then 0L
  else
    let per4k = if simd then c.memcpy_4k_avx2 else c.memcpy_4k_scalar in
    let scaled = Int64.of_float (Int64.to_float per4k *. float_of_int n /. 4096.) in
    let scaled = if Int64.compare scaled 30L < 0 then 30L else scaled in
    if simd then Int64.add scaled c.fpu_save_restore else scaled
