(** System-call interception accounting (Section 4.4).

    Aquila installs its own [MSR_LSTAR] handler: virtual-memory calls
    ([mmap], [munmap], [mremap], [madvise], [mprotect], [msync]) are
    handled in non-root ring 0 at function-call cost; everything else is
    forwarded to the host OS with a vmcall. *)

type t

val create : unit -> t

val intercepted : t -> Hw.Costs.t -> string -> unit
(** [intercepted t c name] records a call handled in-place and charges the
    (small) dispatch cost.  Must run inside a fiber. *)

val forwarded : t -> Hw.Costs.t -> Hw.Domain_x.t -> string -> unit
(** [forwarded t c dom name] records a call that leaves the current domain
    and charges the transition ([syscall] from ring 3, vmcall round trip
    from non-root ring 0). *)

val record_sigbus : t -> unit
(** [record_sigbus t] counts a simulated SIGBUS delivery — an mmap'd
    load/store whose backing read died with an unrecoverable device
    error (see {!Fault.Sigbus}).  Shows up in {!by_name} as ["SIGBUS"]. *)

val intercepted_count : t -> int
val forwarded_count : t -> int
val sigbus_count : t -> int
val by_name : t -> (string * int) list
