let psz = Hw.Defs.page_size

type config = {
  cache : Mcache.Dram_cache.config;
  ept_granularity : int64;
  readahead_normal : int;
  readahead_sequential : int;
  domain : Hw.Domain_x.t;
}

let default_config ~cache_frames =
  {
    cache = Mcache.Dram_cache.default_config ~frames:cache_frames;
    ept_granularity = 2097152L;
    readahead_normal = 0;
    readahead_sequential = 32;
    domain = Hw.Domain_x.Nonroot_ring0;
  }

type file = {
  fid : int;
  fname : string;
  mutable size_pages : int;
  translate : int -> int option;
}

type region = {
  vstart : int;
  npages : int;
  rfile : file;
  file_page0 : int;
  area : Vma.area;
}

type t = {
  ccosts : Hw.Costs.t;
  cmachine : Hw.Machine.t;
  pt : Hw.Page_table.t;
  ept : Hw.Ept.t;
  ccache : Mcache.Dram_cache.t;
  vma : Vma.t;
  dom : Hw.Domain_x.t;
  cfg : config;
  sys : Syscalls.t;
  mutable next_vpn : int;
  mutable next_fid : int;
  mutable thread_cores : int list;
  mutable s_accesses : int;
  mutable s_faults : int;
  m_accesses : Metrics.Registry.cell;
  m_faults : Metrics.Registry.cell;
}

let create ?(costs = Hw.Costs.default) ?machine cfg =
  let machine = match machine with Some m -> m | None -> Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  {
    ccosts = costs;
    cmachine = machine;
    pt;
    ept = Hw.Ept.create ~granularity_bytes:cfg.ept_granularity ();
    ccache = Mcache.Dram_cache.create ~costs ~machine ~page_table:pt cfg.cache;
    vma = Vma.create costs;
    dom = cfg.domain;
    cfg;
    sys = Syscalls.create ();
    next_vpn = 256; (* leave a null guard region *)
    next_fid = 1;
    thread_cores = [];
    s_accesses = 0;
    s_faults = 0;
    m_accesses =
      Metrics.Registry.counter ~help:"page-granular memory accesses"
        "aquila_mem_accesses";
    m_faults =
      Metrics.Registry.counter ~help:"page faults taken by the Aquila runtime"
        "aquila_page_faults";
  }

let costs t = t.ccosts
let machine t = t.cmachine
let cache t = t.ccache
let syscalls t = t.sys

let enter_thread t =
  let ctx = Sim.Engine.self () in
  if not (List.mem ctx.Sim.Engine.core t.thread_cores) then begin
    t.thread_cores <- ctx.Sim.Engine.core :: t.thread_cores;
    Mcache.Dram_cache.set_shoot_cores t.ccache t.thread_cores
  end;
  (* vmlaunch into non-root ring 0 (Aquila mode only) *)
  match t.dom with
  | Hw.Domain_x.Nonroot_ring0 ->
      if Trace.on () then Sim.Probe.instant ~cat:"hw" "vmcall";
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"enter"
        t.ccosts.Hw.Costs.vmcall_roundtrip
  | Hw.Domain_x.Ring3 -> ()

let attach_file t ~name ~access ~translate ~size_pages =
  let f = { fid = t.next_fid; fname = name; size_pages; translate } in
  ignore f.fname;
  t.next_fid <- t.next_fid + 1;
  Mcache.Dram_cache.register_file t.ccache ~file_id:f.fid ~access ~translate;
  f

let file_size_pages f = f.size_pages
let file_id f = f.fid

let mmap t file ?(file_page0 = 0) ~npages () =
  if npages <= 0 || file_page0 < 0 || file_page0 + npages > file.size_pages then
    invalid_arg "Context.mmap: range outside file";
  Syscalls.intercepted t.sys t.ccosts "mmap";
  let vstart = t.next_vpn in
  t.next_vpn <- t.next_vpn + npages + 1 (* guard page *);
  let area =
    {
      Vma.vstart;
      npages;
      file_id = file.fid;
      file_page0;
      advice = Vma.Normal;
    }
  in
  let cost = Vma.insert t.vma area in
  Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"vma" cost;
  { vstart; npages; rfile = file; file_page0; area }

let current_core () = (Sim.Engine.self ()).Sim.Engine.core

let munmap t region =
  Syscalls.intercepted t.sys t.ccosts "munmap";
  let _, cost = Vma.remove t.vma ~vstart:region.vstart in
  let buf = Sim.Costbuf.create () in
  Sim.Costbuf.add buf "vma" cost;
  let core = current_core () in
  let vpns = ref [] in
  for p = 0 to region.npages - 1 do
    let vpn = region.vstart + p in
    match Hw.Page_table.unmap t.pt ~vpn with
    | Some pte ->
        Mcache.Dram_cache.forget_mapping t.ccache ~pfn:pte.Hw.Page_table.pfn;
        Sim.Costbuf.add buf "munmap" t.ccosts.Hw.Costs.pte_update;
        vpns := vpn :: !vpns
    | None -> ()
  done;
  (match !vpns with
  | [] -> ()
  | vpns ->
      let own = (Hw.Machine.core t.cmachine core).Hw.Machine.tlb in
      let local =
        if List.length vpns > 33 then Hw.Tlb.flush own t.ccosts
        else
          List.fold_left
            (fun acc vpn ->
              Int64.add acc (Hw.Tlb.invalidate_local own t.ccosts ~vpn))
            0L vpns
      in
      Sim.Costbuf.add buf "tlb" local;
      Sim.Costbuf.add buf "tlb"
        (Hw.Ipi.shootdown t.cmachine t.ccosts
           ~mode:(Mcache.Dram_cache.config t.ccache).Mcache.Dram_cache.ipi_mode
           ~src:core ~targets:t.thread_cores ~vpns));
  Sim.Costbuf.charge buf

let madvise t region advice =
  Syscalls.intercepted t.sys t.ccosts "madvise";
  region.area.Vma.advice <- advice

let mprotect t region ~writable =
  Syscalls.intercepted t.sys t.ccosts "mprotect";
  let buf = Sim.Costbuf.create () in
  let core = current_core () in
  let vpns = ref [] in
  for p = 0 to region.npages - 1 do
    let vpn = region.vstart + p in
    match Hw.Page_table.find t.pt ~vpn with
    | Some pte when pte.Hw.Page_table.writable <> writable ->
        (* downgrades take effect immediately (and need invalidation);
           upgrades are applied lazily through the fault path so dirty
           tracking stays intact *)
        if not writable then begin
          Hw.Page_table.set_writable t.pt ~vpn false;
          Sim.Costbuf.add buf "mprotect" t.ccosts.Hw.Costs.pte_update;
          vpns := vpn :: !vpns
        end
    | _ -> ()
  done;
  (match !vpns with
  | [] -> ()
  | vpns ->
      let own = (Hw.Machine.core t.cmachine core).Hw.Machine.tlb in
      let local =
        if List.length vpns > 33 then Hw.Tlb.flush own t.ccosts
        else
          List.fold_left
            (fun acc vpn ->
              Int64.add acc (Hw.Tlb.invalidate_local own t.ccosts ~vpn))
            0L vpns
      in
      Sim.Costbuf.add buf "tlb" local;
      Sim.Costbuf.add buf "tlb"
        (Hw.Ipi.shootdown t.cmachine t.ccosts
           ~mode:(Mcache.Dram_cache.config t.ccache).Mcache.Dram_cache.ipi_mode
           ~src:core ~targets:t.thread_cores ~vpns));
  Sim.Costbuf.charge buf

let msync t region =
  Syscalls.intercepted t.sys t.ccosts "msync";
  Mcache.Dram_cache.msync t.ccache ~core:(current_core ())
    ~file:region.rfile.fid ()

let mremap t region ~npages =
  Syscalls.intercepted t.sys t.ccosts "mremap";
  munmap t region;
  mmap t region.rfile ~file_page0:region.file_page0 ~npages ()

let region_npages r = r.npages

let readahead_for t (area : Vma.area) =
  match area.Vma.advice with
  | Vma.Sequential | Vma.Willneed -> t.cfg.readahead_sequential
  | Vma.Random | Vma.Dontneed -> 0
  | Vma.Normal -> t.cfg.readahead_normal

(* One page-granular access.  Returns the backing frame number.  Retries
   when the freshly installed translation is stolen by a concurrent
   eviction before the access completes, as a re-executed instruction
   would. *)
let rec touch_page ?(attempt = 0) t region ~page ~write buf =
  if page < 0 || page >= region.npages then
    invalid_arg "Context: access outside region";
  if attempt > 100 then failwith "Aquila: access cannot make progress (thrash)";
  let vpn = region.vstart + page in
  let core = current_core () in
  t.s_accesses <- t.s_accesses + 1;
  Metrics.Registry.incr t.m_accesses;
  let irq = Hw.Machine.drain_irq t.cmachine ~core in
  Sim.Costbuf.add buf "irq" irq;
  let own = (Hw.Machine.core t.cmachine core).Hw.Machine.tlb in
  Sim.Costbuf.add buf "tlb_walk" (Hw.Tlb.access own t.ccosts ~vpn);
  match Hw.Page_table.find t.pt ~vpn with
  | Some pte when (not write) || pte.Hw.Page_table.writable ->
      if write then pte.Hw.Page_table.dirty <- true;
      pte.Hw.Page_table.pfn
  | _ ->
      t.s_faults <- t.s_faults + 1;
      Metrics.Registry.incr t.m_faults;
      (* Page-fault begin/end span; value encodes the cause (1 = write). *)
      let ft0 = Sim.Probe.span_start () in
      (* Exception in non-root ring 0: no protection-domain switch. *)
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"trap"
        (Hw.Domain_x.fault_transition_cost t.ccosts t.dom);
      (* handler dispatch: register save, routing, exception-frame copy *)
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"fault_entry" 250L;
      let area_opt, vcost = Vma.lookup t.vma ~vpn in
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"vma" vcost;
      (match area_opt with
      | None -> failwith "Aquila: fault outside any mapping (SIGSEGV)"
      | Some area -> (
          let fpage = area.Vma.file_page0 + (vpn - area.Vma.vstart) in
          let key = Mcache.Pagekey.make ~file:area.Vma.file_id ~page:fpage in
          try
            Mcache.Dram_cache.fault t.ccache ~readahead:(readahead_for t area)
              ~core ~key ~vpn ~write ()
          with Fault.Sigbus _ as e ->
            (* media error under the mapping: deliver the signal to the
               application, exactly like a kernel mmap would *)
            Syscalls.record_sigbus t.sys;
            Sim.Probe.span_since ~cat:"aquila"
              ~value:(if write then 1L else 0L)
              ~t0:ft0 "fault_sigbus";
            raise e));
      (match Hw.Page_table.find t.pt ~vpn with
      | Some pte ->
          (* EPT only exists under virtualization (Aquila mode). *)
          (match t.dom with
          | Hw.Domain_x.Nonroot_ring0 ->
              let eptc =
                Hw.Ept.touch t.ept t.ccosts
                  ~gpa:(Int64.of_int (pte.Hw.Page_table.pfn * psz))
              in
              if Int64.compare eptc 0L > 0 then
                Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"ept" eptc
          | Hw.Domain_x.Ring3 -> ());
          Sim.Probe.span_since ~cat:"aquila"
            ~value:(if write then 1L else 0L)
            ~t0:ft0 "fault";
          if write then pte.Hw.Page_table.dirty <- true;
          pte.Hw.Page_table.pfn
      | None ->
          Sim.Probe.span_since ~cat:"aquila"
            ~value:(if write then 1L else 0L)
            ~t0:ft0 "fault_stolen";
          (* evicted again before we could use it: re-execute *)
          touch_page ~attempt:(attempt + 1) t region ~page ~write buf)

let touch t region ~page ~write =
  let buf = Sim.Costbuf.create () in
  ignore (touch_page t region ~page ~write buf);
  Sim.Costbuf.charge buf

let touch_buf t region ~page ~write ~buf =
  ignore (touch_page t region ~page ~write buf)

let read t region ~off ~len ~dst =
  if off < 0 || len < 0 || off + len > region.npages * psz then
    invalid_arg "Context.read: range outside region";
  if Bytes.length dst < len then invalid_arg "Context.read: dst too small";
  let buf = Sim.Costbuf.create () in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let page = abs / psz and in_page = abs mod psz in
    let chunk = min (len - !pos) (psz - in_page) in
    let pfn = touch_page t region ~page ~write:false buf in
    let data = Mcache.Dram_cache.pfn_data t.ccache pfn in
    Bytes.blit data in_page dst !pos chunk;
    pos := !pos + chunk
  done;
  Sim.Costbuf.charge buf

let write t region ~off ~src =
  let len = Bytes.length src in
  if off < 0 || off + len > region.npages * psz then
    invalid_arg "Context.write: range outside region";
  let buf = Sim.Costbuf.create () in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let page = abs / psz and in_page = abs mod psz in
    let chunk = min (len - !pos) (psz - in_page) in
    let pfn = touch_page t region ~page ~write:true buf in
    let data = Mcache.Dram_cache.pfn_data t.ccache pfn in
    Bytes.blit src !pos data in_page chunk;
    pos := !pos + chunk
  done;
  Sim.Costbuf.charge buf

let resize_cache t ~frames =
  Syscalls.forwarded t.sys t.ccosts t.dom "cache_resize";
  let current = Mcache.Dram_cache.frames_total t.ccache in
  if frames > current then begin
    let added = Mcache.Dram_cache.grow t.ccache ~frames:(frames - current) in
    ignore added
  end
  else if frames < current then begin
    let removed = Mcache.Dram_cache.shrink t.ccache ~frames:(current - frames) in
    (* hypervisor reclaims the GPA range: drop its EPT mappings *)
    let bytes = Int64.of_int (removed * psz) in
    ignore
      (Hw.Ept.unmap_range t.ept
         ~gpa:(Int64.of_int (Mcache.Dram_cache.frames_total t.ccache * psz))
         ~len:bytes)
  end

let accesses t = t.s_accesses
let faults t = t.s_faults
let ept_faults t = Hw.Ept.faults t.ept
