type t = {
  mutable nintercepted : int;
  mutable nforwarded : int;
  mutable nsigbus : int;
  counts : (string, int) Hashtbl.t;
}

let create () =
  { nintercepted = 0; nforwarded = 0; nsigbus = 0; counts = Hashtbl.create 16 }

let dispatch_cost = 80L (* handler dispatch: a function call, no domain switch *)

let bump t name =
  let c = try Hashtbl.find t.counts name with Not_found -> 0 in
  Hashtbl.replace t.counts name (c + 1)

let intercepted t _costs name =
  t.nintercepted <- t.nintercepted + 1;
  bump t name;
  if Trace.on () then Sim.Probe.instant ~cat:"syscall" name;
  Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"syscall_dispatch" dispatch_cost

let forwarded t costs dom name =
  t.nforwarded <- t.nforwarded + 1;
  bump t name;
  if Trace.on () then begin
    Sim.Probe.instant ~cat:"syscall" name;
    (* forwarding from non-root ring 0 is a vmcall/vmexit round trip *)
    match dom with
    | Hw.Domain_x.Nonroot_ring0 -> Sim.Probe.instant ~cat:"hw" "vmcall"
    | Hw.Domain_x.Ring3 -> ()
  end;
  Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"syscall_forward"
    (Hw.Domain_x.syscall_cost costs dom)

let record_sigbus t =
  t.nsigbus <- t.nsigbus + 1;
  bump t "SIGBUS";
  if Trace.on () then Sim.Probe.instant ~cat:"syscall" "SIGBUS"

let intercepted_count t = t.nintercepted
let forwarded_count t = t.nforwarded
let sigbus_count t = t.nsigbus
let by_name t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
