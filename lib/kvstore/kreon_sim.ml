let psz = Hw.Defs.page_size

type config = { l0_limit_entries : int; level_ratio : int; nlevels : int }

let default_config = { l0_limit_entries = 2048; level_ratio = 8; nlevels = 3 }

type level = {
  buf0 : int; (* base page of ping buffer *)
  buf1 : int; (* base page of pong buffer *)
  mutable active : int; (* 0 or 1 *)
  mutable index : Btree.info option;
  capacity : int; (* max entries *)
}

type t = {
  ctx : Aquila.Context.t;
  region : Aquila.Context.region;
  rw : Btree.rw;
  cfg : config;
  l0 : Memtable.t;
  l0_offs : (string, int) Hashtbl.t;
  levels : level array;
  log_page0 : int;
  log_capacity_bytes : int;
  mutable log_tail : int; (* bytes appended since creation *)
  mutable log_spilled : int; (* log prefix already reflected in the levels *)
  lock : Sim.Sync.Mutex.t;
}

let superblock_magic = 0x4b52454fl (* "KREO" *)

let level_spare lv = if lv.active = 0 then lv.buf1 else lv.buf0

let create ~ctx ~access ~store ~expected_records ~value_bytes ?(config = default_config) () =
  let caps =
    Array.init config.nlevels (fun i ->
        let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
        let c = config.l0_limit_entries * pow config.level_ratio (i + 1) in
        if i = config.nlevels - 1 then max c (2 * expected_records) else c)
  in
  let log_pages =
    ((expected_records * (value_bytes + Btree.max_key_bytes + 8) * 2) + psz - 1) / psz
  in
  let total =
    1 (* superblock *) + log_pages
    + Array.fold_left (fun acc c -> acc + (2 * Btree.pages_needed c)) 0 caps
  in
  let blob = Blobstore.Store.create_blob store ~name:"kreon.data" ~pages:total () in
  let translate p =
    if p < Blobstore.Store.blob_pages blob then
      Some (Blobstore.Store.device_page blob p)
    else None
  in
  let file =
    Aquila.Context.attach_file ctx ~name:"kreon.data" ~access ~translate
      ~size_pages:total
  in
  let region = Aquila.Context.mmap ctx file ~npages:total () in
  let rw =
    {
      Btree.read = (fun ~off ~len ~dst -> Aquila.Context.read ctx region ~off ~len ~dst);
      write = (fun ~off ~src -> Aquila.Context.write ctx region ~off ~src);
    }
  in
  let next = ref (1 + log_pages) in
  let levels =
    Array.map
      (fun cap ->
        let p = Btree.pages_needed cap in
        let b0 = !next in
        next := !next + p;
        let b1 = !next in
        next := !next + p;
        { buf0 = b0; buf1 = b1; active = 0; index = None; capacity = cap })
      caps
  in
  {
    ctx;
    region;
    rw;
    cfg = config;
    l0 = Memtable.create ();
    l0_offs = Hashtbl.create 4096;
    levels;
    log_page0 = 1;
    log_capacity_bytes = log_pages * psz;
    log_tail = 0;
    log_spilled = 0;
    lock = Sim.Sync.Mutex.create ~name:"kreon" ();
  }

(* ---- value log ---- *)

let log_append t k v =
  let rec_len = 6 + String.length k + String.length v in
  if t.log_tail + rec_len > t.log_capacity_bytes then
    failwith "Kreon: value log full (no GC in this model)";
  let b = Bytes.create rec_len in
  Bytes.set_uint16_le b 0 (String.length k);
  Bytes.set_int32_le b 2 (Int32.of_int (String.length v));
  Bytes.blit_string k 0 b 6 (String.length k);
  Bytes.blit_string v 0 b (6 + String.length k) (String.length v);
  let off = t.log_tail in
  Aquila.Context.write t.ctx t.region ~off:((t.log_page0 * psz) + off) ~src:b;
  t.log_tail <- t.log_tail + rec_len;
  off

let log_read t off =
  let hdr = Bytes.create 6 in
  let base = (t.log_page0 * psz) + off in
  Aquila.Context.read t.ctx t.region ~off:base ~len:6 ~dst:hdr;
  let klen = Bytes.get_uint16_le hdr 0 in
  let vlen = Int32.to_int (Bytes.get_int32_le hdr 2) in
  let kv = Bytes.create (klen + vlen) in
  Aquila.Context.read t.ctx t.region ~off:(base + 6) ~len:(klen + vlen) ~dst:kv;
  (Bytes.sub_string kv 0 klen, Bytes.sub_string kv klen vlen)

(* ---- superblock / durability ---- *)

let write_superblock t =
  let b = Bytes.make psz '\000' in
  Bytes.set_int32_le b 0 superblock_magic;
  Bytes.set_int64_le b 4 (Int64.of_int t.log_tail);
  Bytes.set_int64_le b 12 (Int64.of_int t.log_spilled);
  Bytes.set_uint8 b 20 (Array.length t.levels);
  Array.iteri
    (fun i lv ->
      let pos = 24 + (i * (Btree.info_bytes + 8)) in
      Bytes.set_uint8 b pos lv.active;
      match lv.index with
      | None -> Bytes.set_uint8 b (pos + 1) 0
      | Some info ->
          Bytes.set_uint8 b (pos + 1) 1;
          Bytes.blit (Btree.serialize_info info) 0 b (pos + 8) Btree.info_bytes)
    t.levels;
  Aquila.Context.write t.ctx t.region ~off:0 ~src:b

let msync t =
  (* Commit protocol, in crash-safe order: first make the data durable —
     log tail, freshly built level pages — and only then write and flush
     the superblock that points at it.  Flushing both in one msync would
     write the superblock first (ascending offset), so a power cut inside
     that msync could leave a superblock referencing log pages that never
     hit the device — a dense 'aquila_cli faultcheck --mode kreon' sweep
     catches exactly that.  The second msync flushes a single page (the
     dirty set is otherwise empty). *)
  Aquila.Context.msync t.ctx t.region;
  write_superblock t;
  Aquila.Context.msync t.ctx t.region

(* Rebuild the in-memory state from the device after a crash: levels come
   from the superblock; log records appended after the last spill but
   before the last msync are replayed into L0. *)
let recover t =
  let b = Bytes.create psz in
  Aquila.Context.read t.ctx t.region ~off:0 ~len:psz ~dst:b;
  Memtable.clear t.l0;
  Hashtbl.reset t.l0_offs;
  if Bytes.get_int32_le b 0 <> superblock_magic then begin
    (* never synced: empty store *)
    t.log_tail <- 0;
    t.log_spilled <- 0;
    Array.iter (fun lv -> lv.index <- None) t.levels
  end
  else begin
    t.log_tail <- Int64.to_int (Bytes.get_int64_le b 4);
    t.log_spilled <- Int64.to_int (Bytes.get_int64_le b 12);
    let n = Bytes.get_uint8 b 20 in
    for i = 0 to min n (Array.length t.levels) - 1 do
      let pos = 24 + (i * (Btree.info_bytes + 8)) in
      t.levels.(i).active <- Bytes.get_uint8 b pos;
      t.levels.(i).index <-
        (if Bytes.get_uint8 b (pos + 1) = 1 then
           Some (Btree.deserialize_info b ~pos:(pos + 8))
         else None)
    done;
    (* replay the committed log suffix into L0 *)
    let off = ref t.log_spilled in
    while !off < t.log_tail do
      let k, v = log_read t !off in
      Memtable.put t.l0 k v;
      Hashtbl.replace t.l0_offs k !off;
      off := !off + 6 + String.length k + String.length v
    done
  end

(* ---- spills ---- *)

let level_entries_list t lv =
  match lv.index with
  | None -> []
  | Some info ->
      let acc = ref [] in
      Btree.iter_from t.rw info ~start:"" ~f:(fun k p ->
          acc := (k, p) :: !acc;
          true);
      List.rev !acc

let rec spill_into t src_entries lvl =
  if lvl >= t.cfg.nlevels then failwith "Kreon: bottom level overflow"
  else begin
    let lv = t.levels.(lvl) in
    let existing = level_entries_list t lv in
    (* src wins on duplicates *)
    let seen = Hashtbl.create 1024 in
    let keep = ref [] in
    let add (k, o) =
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        keep := (k, o) :: !keep
      end
    in
    List.iter add src_entries;
    List.iter add existing;
    let merged =
      Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) !keep)
    in
    let n = Array.length merged in
    if n > lv.capacity then begin
      spill_into t (Array.to_list merged) (lvl + 1);
      lv.index <- None
    end
    else begin
      let info = Btree.build t.rw ~base_page:(level_spare lv) merged in
      lv.active <- 1 - lv.active;
      lv.index <- Some info;
      (* Kreon's custom msync commits the new level state *)
      msync t
    end
  end

let spill t =
  Sim.Sync.Mutex.lock t.lock;
  if not (Memtable.is_empty t.l0) then begin
    let entries =
      List.map
        (fun (k, _) ->
          match Hashtbl.find_opt t.l0_offs k with
          | Some off -> (k, off)
          | None -> assert false)
        (Memtable.to_sorted_list t.l0)
    in
    spill_into t entries 0;
    Memtable.clear t.l0;
    Hashtbl.reset t.l0_offs;
    t.log_spilled <- t.log_tail;
    write_superblock t
  end;
  Sim.Sync.Mutex.unlock t.lock

(* ---- public ops ---- *)

let put t k v =
  if String.length k > Btree.max_key_bytes then invalid_arg "Kreon: key too long";
  Kv_costs.(charge "kv_put" (Int64.add put_base (Int64.add log_append memtable_insert)));
  let off = log_append t k v in
  Memtable.put t.l0 k v;
  Hashtbl.replace t.l0_offs k off;
  if Memtable.entries t.l0 > t.cfg.l0_limit_entries then spill t

let get t key =
  Kv_costs.(charge "kv_get" (Int64.add get_base memtable_probe));
  match Memtable.get t.l0 key with
  | Some v -> Some v
  | None ->
      let rec go lvl =
        if lvl >= t.cfg.nlevels then None
        else
          match t.levels.(lvl).index with
          | None -> go (lvl + 1)
          | Some info -> (
              match Btree.find t.rw info key with
              | Some off ->
                  let k, v = log_read t off in
                  Kv_costs.(charge "kv_get_log" block_scan);
                  if k = key then Some v else None
              | None -> go (lvl + 1))
      in
      go 0

let scan t ~start ~n =
  let mem_part = Memtable.range t.l0 ~start ~n in
  let level_parts =
    List.init t.cfg.nlevels (fun lvl ->
        match t.levels.(lvl).index with
        | None -> []
        | Some info ->
            let acc = ref [] and c = ref 0 in
            Btree.iter_from t.rw info ~start ~f:(fun k off ->
                let _, v = log_read t off in
                acc := (k, v) :: !acc;
                incr c;
                !c < n);
            List.rev !acc)
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun lst ->
      List.iter
        (fun (k, v) ->
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            out := (k, v) :: !out
          end)
        lst)
    (mem_part :: level_parts);
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !out in
  let rec take i = function
    | [] -> []
    | x :: rest -> if i = 0 then [] else x :: take (i - 1) rest
  in
  let result = take n sorted in
  Kv_costs.(charge "kv_scan" (Int64.mul scan_next (Int64.of_int (max 1 (List.length result)))));
  result

let level_entries t =
  Array.to_list
    (Array.map
       (fun lv -> match lv.index with None -> 0 | Some i -> i.Btree.count)
       t.levels)

let log_bytes t = t.log_tail
