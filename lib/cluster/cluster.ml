(* aqcluster assembly: N nodes on one engine behind the consistent-hash
   router, chain replication with ack-after-K-durable, crash-ordinal
   failover and resync.  DESIGN.md §11 documents the invariants; the
   sweep in check.ml proves them point by point.

   Topology: node i's handler fibers run on core i; the external client
   runs on core N.  Everything shares one deterministic engine, so the
   whole cluster is byte-identical across --shards and repeat runs, and
   an aqfault crash ordinal lands on exactly the same operation every
   time. *)

type config = {
  nodes : int;
  replicas : int;  (** total copies per key, primary included *)
  vnodes : int;
  node : Node.config;
  rpc : Rpc.config;
  broken : bool;  (** teeth test: ack after the primary's durable write *)
  recovery_delay : int;  (** cycles from crash to the node's restart *)
}

let default_config =
  {
    nodes = 5;
    replicas = 3;
    vnodes = 16;
    node = Node.default_config;
    rpc = Rpc.default_config;
    broken = false;
    recovery_delay = 3_000_000;
  }

type req =
  | Put of { key : string; value : string; op : int; chain : int list }
  | Repl of { key : string; value : string; op : int; chain : int list }
  | Get of { key : string }
  | Scan of { start : string; n : int }
  | Push of { key : string; r : Node.record }

type resp =
  | Ack
  | Value of string option
  | Recs of (string * Node.record) list
  | Adopted of bool
  | Nack of string

type stats = {
  mutable acked_writes : int;
  mutable redirected : int;
  mutable failovers : int;
  mutable resync_pages : int;
  mutable crash_ordinals : int list;  (** newest first *)
}

type t = {
  eng : Sim.Engine.t;
  cfg : config;
  nodes : Node.t array;
  live : bool array;
  router : Router.t;
  rpc : (req, resp) Rpc.t;
  stats : stats;
  client_core : int;
  mutable next_op : int;
}

(* Per-domain metric cells, lazily bound (lib/fault pattern) so the
   cluster composes with the --jobs fan-out. *)
let m_acked_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"cluster writes acked after K durable copies"
        "cluster_acked_writes")

let m_failovers_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"cluster node crashes that triggered failover"
        "cluster_failovers")

let m_redirected_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter
        ~help:"client ops re-routed to a different primary after a timeout"
        "cluster_redirected_ops")

let m_resync_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter
        ~help:"WAL pages pushed to repair replicas after a membership change"
        "cluster_resync_pages")

let m_lag_key : Metrics.Registry.hcell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.histogram
        ~help:"cycles from primary-durable to full-chain ack"
        "cluster_replication_lag")

let stats t = t.stats
let rpc_timeouts t = Rpc.timeouts t.rpc
let rpc_retries t = Rpc.retries t.rpc
let live_view t = Array.copy t.live
let node t i = t.nodes.(i)
let degraded t = Array.exists Node.degraded t.nodes
let devices t = Array.map Node.device t.nodes

(* ---- request handlers (run in per-request fibers on the node's core) ---- *)

let forward_chain t node ~key ~value ~op ~chain ~observe_lag =
  match chain with
  | [] -> Ack
  | next :: rest -> (
      let t0 = Sim.Engine.now t.eng in
      match
        try
          Rpc.call_retry t.rpc ~src:(Node.id node) ~dst:next
            (Repl { key; value; op; chain = rest })
        with Rpc.Unreachable { node = n; _ } ->
          Nack (Printf.sprintf "replica %d unreachable" n)
      with
      | Ack ->
          if observe_lag then
            Metrics.Registry.observe
              (Domain.DLS.get m_lag_key)
              (Int64.to_int (Int64.sub (Sim.Engine.now t.eng) t0));
          Ack
      | Nack _ as n -> n
      | _ -> Nack "unexpected replication response")

let handle_put t node ~key ~value ~op ~chain ~is_primary =
  Node.ensure_up node;
  (* idempotent: client retries and re-routed chains re-send the op *)
  (match Node.find node key with
  | Some r when r.Node.op >= op -> ()
  | _ -> Node.append node ~key ~r:{ Node.op; value = Some value });
  if is_primary && t.cfg.broken then begin
    (* BROKEN (teeth test): acknowledge after the local durable write
       only, replicate asynchronously — a primary crash in the window
       loses the acked write, which the sweep oracle must catch *)
    (if chain <> [] then
       ignore
         (Sim.Engine.spawn t.eng ~name:"async-repl" ~core:(Node.id node)
            (fun () ->
              Sim.Engine.set_node_id (Sim.Engine.self ()) (Node.id node);
              (* replication lags the ack by a batching delay — exactly
                 the window a crash must land in for the oracle to fire *)
              Sim.Engine.idle_wait 400_000L;
              try
                Node.ensure_up node;
                ignore
                  (forward_chain t node ~key ~value ~op ~chain
                     ~observe_lag:false)
              with Rpc.Drop -> ())));
    Ack
  end
  else forward_chain t node ~key ~value ~op ~chain ~observe_lag:is_primary

let handle t node = function
  | Put { key; value; op; chain } ->
      handle_put t node ~key ~value ~op ~chain ~is_primary:true
  | Repl { key; value; op; chain } ->
      handle_put t node ~key ~value ~op ~chain ~is_primary:false
  | Get { key } ->
      Value
        (match Node.find node key with
        | Some { Node.value = Some v; _ } -> Some v
        | _ -> None)
  | Scan { start; n } ->
      Node.ensure_up node;
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: tl -> x :: take (k - 1) tl
      in
      Recs
        (Node.entries node
        |> List.filter (fun (k, (r : Node.record)) ->
               String.compare k start >= 0 && r.Node.value <> None)
        |> take n)
  | Push { key; r } ->
      Node.ensure_up node;
      let local = Node.peek node key in
      let adopt =
        if Node.tainted node then local <> Some r
        else
          match local with
          | Some l -> r.Node.op > l.Node.op
          | None -> r.Node.value <> None
      in
      if adopt then Node.append node ~key ~r;
      Adopted adopt

(* ---- construction ---- *)

let create ?(cfg = default_config) ?devices ~eng () =
  if cfg.nodes <= 0 then invalid_arg "Cluster.create: nodes must be positive";
  if cfg.replicas <= 0 || cfg.replicas > cfg.nodes then
    invalid_arg "Cluster.create: need 1 <= replicas <= nodes";
  (match devices with
  | Some d when Array.length d <> cfg.nodes ->
      invalid_arg "Cluster.create: device count mismatch"
  | _ -> ());
  let nodes =
    Array.init cfg.nodes (fun i ->
        Node.create
          ?nvme:(Option.map (fun d -> d.(i)) devices)
          ~id:i cfg.node)
  in
  let live = Array.make cfg.nodes true in
  let router = Router.create ~nodes:cfg.nodes ~vnodes:cfg.vnodes () in
  let rpc =
    Rpc.create ~eng ~cfg:cfg.rpc ~nodes:cfg.nodes ~alive:(fun i ->
        Node.is_up nodes.(i))
  in
  let t =
    {
      eng;
      cfg;
      nodes;
      live;
      router;
      rpc;
      stats =
        {
          acked_writes = 0;
          redirected = 0;
          failovers = 0;
          resync_pages = 0;
          crash_ordinals = [];
        };
      client_core = cfg.nodes;
      next_op = 0;
    }
  in
  Array.iteri (fun i n -> Rpc.set_handler rpc i (handle t n)) nodes;
  t

(* Bring every node's stack up (WAL replay) and drain: after [boot] the
   cluster serves; restart verification reuses it over old devices. *)
let boot t =
  Array.iteri
    (fun i n ->
      ignore
        (Sim.Engine.spawn t.eng
           ~name:(Printf.sprintf "node%d-boot" i)
           ~core:i
           (fun () ->
             Sim.Engine.set_node_id (Sim.Engine.self ()) i;
             Node.open_stack n)))
    t.nodes;
  Sim.Engine.run t.eng

(* ---- resync / anti-entropy ----

   Control plane reads memtables directly (the simulator plays the
   omniscient cluster manager); the data itself moves through Push RPCs
   so resync pages are durably appended, costed and counted.  The
   authoritative record for a key is the max-op copy among *untainted*
   live nodes: every acked write has K durable copies, so after a single
   crash some untainted holder always survives, while a rejoining node's
   divergent WAL tail (the broken variant's lost-ack window, or writes
   that never completed their chain) loses and is truncated. *)

let union_keys t =
  let tbl = Hashtbl.create 256 in
  Array.iteri
    (fun i n -> if t.live.(i) then List.iter (fun k -> Hashtbl.replace tbl k ()) (Node.keys n))
    t.nodes;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort String.compare

let resync t =
  let pushed = ref 0 in
  List.iter
    (fun key ->
      let placement = Router.place t.router ~live:t.live ~key ~k:t.cfg.replicas in
      let winner =
        Array.to_list t.nodes
        |> List.filter_map (fun n ->
               if t.live.(Node.id n) && not (Node.tainted n) then
                 Node.peek n key
               else None)
        |> List.fold_left
             (fun best (r : Node.record) ->
               match best with
               | Some (b : Node.record) when b.Node.op >= r.Node.op -> best
               | _ -> Some r)
             None
      in
      let target =
        (* no untainted copy: the key lives only in a rejoining node's
           divergent tail — truncate it (the promoted primary's history
           is authoritative, exactly as in chain replication) *)
        match winner with
        | Some w -> w
        | None -> { Node.op = 0; value = None }
      in
      List.iter
        (fun m ->
          let n = t.nodes.(m) in
          let local = Node.peek n key in
          let behind =
            if Node.tainted n then local <> Some target
            else
              match (local, target.Node.value) with
              | Some l, _ -> target.Node.op > l.Node.op
              | None, Some _ -> true
              | None, None -> false
          in
          if behind then
            match Rpc.call t.rpc ~src:(-1) ~dst:m (Push { key; r = target }) with
            | Some (Adopted true) ->
                incr pushed;
                t.stats.resync_pages <- t.stats.resync_pages + 1;
                Metrics.Registry.incr (Domain.DLS.get m_resync_key)
            | _ -> ())
        placement)
    (union_keys t);
  !pushed

(* ---- failover ---- *)

let recover t i =
  let n = t.nodes.(i) in
  Sim.Engine.set_node_id (Sim.Engine.self ()) i;
  Node.reopen n;
  Node.set_tainted n true;
  t.live.(i) <- true;
  ignore (resync t);
  Node.set_tainted n false

(* Down node [i] at event ordinal [ordinal]: volatile state dies, the
   router re-routes (placement is a pure function of the live set, so
   the next replica in ring order is the promoted primary), the
   surviving members re-replicate shifted keys, and the node restarts
   after [recovery_delay].  Runs from the engine event hook — state
   mutation and spawns only, no fiber effects, no raise. *)
let crash_node t i ~ordinal =
  if t.live.(i) && Node.is_up t.nodes.(i) then begin
    t.live.(i) <- false;
    Node.crash t.nodes.(i);
    t.stats.failovers <- t.stats.failovers + 1;
    t.stats.crash_ordinals <- ordinal :: t.stats.crash_ordinals;
    Metrics.Registry.incr (Domain.DLS.get m_failovers_key);
    ignore
      (Sim.Engine.spawn t.eng ~name:"failover-resync" ~core:t.client_core
         (fun () -> ignore (resync t)));
    Sim.Engine.post t.eng ~core:i
      ~at:(Int64.add (Sim.Engine.now t.eng) (Int64.of_int t.cfg.recovery_delay))
      (fun () ->
        ignore
          (Sim.Engine.spawn t.eng
             ~name:(Printf.sprintf "node%d-recover" i)
             ~core:i
             (fun () -> recover t i)))
  end

(* Arm a node-targeted aqfault crash: the plan's [crash_at]/[node] are
   consumed here (Fault.arm deliberately skips the raising domain hook
   when [node] is set) so the cut downs one node instead of the engine. *)
let arm_fault t plan =
  let spec = Fault.Plan.spec plan in
  match spec.Fault.Plan.crash_at with
  | None -> ()
  | Some at ->
      let target =
        match spec.Fault.Plan.node with Some i -> i mod t.cfg.nodes | None -> 0
      in
      let fired = ref false in
      Sim.Engine.set_event_hook t.eng
        (Some
           (fun n ->
             if (not !fired) && n >= at then begin
               fired := true;
               Fault.Plan.note_crash plan;
               crash_node t target ~ordinal:n
             end))

(* ---- client ops ---- *)

let gave_up ~attempts = Rpc.Unreachable { node = -1; attempts }

(* One client operation: place, try the primary, and on silence back
   off, re-place (the live set may have changed — a redirect) and
   retry, up to the RPC budget. *)
let client_op t ~key ~(mk : chain:int list -> req) ~(accept : resp -> 'a option)
    : 'a =
  let max_attempts = t.cfg.rpc.Rpc.max_attempts in
  let rec go attempt last =
    if attempt >= max_attempts then raise (gave_up ~attempts:attempt);
    match Router.place t.router ~live:t.live ~key ~k:t.cfg.replicas with
    | [] ->
        (* whole cluster down: wait out the backoff and re-place *)
        Rpc.note_retry t.rpc;
        Sim.Engine.idle_wait
          (Int64.of_int (Rpc.backoff_delay t.cfg.rpc ~attempt));
        go (attempt + 1) last
    | primary :: chain -> (
        (match last with
        | Some p when p <> primary ->
            t.stats.redirected <- t.stats.redirected + 1;
            Metrics.Registry.incr (Domain.DLS.get m_redirected_key)
        | _ -> ());
        match Rpc.call t.rpc ~src:(-1) ~dst:primary (mk ~chain) with
        | Some r when accept r <> None -> Option.get (accept r)
        | _ ->
            Rpc.note_retry t.rpc;
            Sim.Engine.idle_wait
              (Int64.of_int (Rpc.backoff_delay t.cfg.rpc ~attempt));
            go (attempt + 1) (Some primary))
  in
  go 0 None

let put t key value =
  t.next_op <- t.next_op + 1;
  let op = t.next_op in
  client_op t ~key
    ~mk:(fun ~chain -> Put { key; value; op; chain })
    ~accept:(function Ack -> Some () | _ -> None);
  t.stats.acked_writes <- t.stats.acked_writes + 1;
  Metrics.Registry.incr (Domain.DLS.get m_acked_key)

let get t key =
  client_op t ~key
    ~mk:(fun ~chain:_ -> Get { key })
    ~accept:(function Value v -> Some v | _ -> None)

let scan t ~start ~n =
  (* hash partitioning scatters ranges over every node: ask each live
     node for its n smallest matches, merge max-op per key, cut to n *)
  let best = Hashtbl.create 64 in
  Array.iteri
    (fun i _ ->
      if t.live.(i) then
        match Rpc.call t.rpc ~src:(-1) ~dst:i (Scan { start; n }) with
        | Some (Recs rs) ->
            List.iter
              (fun (k, (r : Node.record)) ->
                match Hashtbl.find_opt best k with
                | Some (b : Node.record) when b.Node.op >= r.Node.op -> ()
                | _ -> Hashtbl.replace best k r)
              rs
        | _ -> () (* a dead or slow node: replicas cover its ranges *))
    t.nodes;
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  Hashtbl.fold
    (fun k (r : Node.record) acc ->
      match r.Node.value with Some v -> (k, v) :: acc | None -> acc)
    best []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> take n

let kv t =
  {
    Ycsb.Runner.kv_read = (fun k -> get t k);
    kv_update = (fun k v -> put t k v);
    kv_insert = (fun k v -> put t k v);
    kv_scan = (fun ~start ~n -> scan t ~start ~n);
    kv_rmw =
      (fun k f ->
        let v = match get t k with Some v -> v | None -> "" in
        put t k (f v));
  }

(* ---- oracle helpers ---- *)

(* After resync, every placement member must hold the same visible
   (op, value) for every key — tombstones and absence are equivalent. *)
let convergence_violations t =
  let out = ref [] in
  List.iter
    (fun key ->
      let placement = Router.place t.router ~live:t.live ~key ~k:t.cfg.replicas in
      let views =
        List.map
          (fun m ->
            ( m,
              match Node.peek t.nodes.(m) key with
              | Some { Node.op; value = Some v } -> Some (op, v)
              | _ -> None ))
          placement
      in
      match views with
      | [] -> ()
      | (_, first) :: rest ->
          List.iter
            (fun (m, view) ->
              if view <> first then
                out :=
                  Printf.sprintf
                    "key %s diverges: node %d holds %s, node %d holds %s" key
                    (fst (List.hd views))
                    (match first with
                    | Some (op, v) -> Printf.sprintf "(op %d, %S)" op v
                    | None -> "nothing")
                    m
                    (match view with
                    | Some (op, v) -> Printf.sprintf "(op %d, %S)" op v
                    | None -> "nothing")
                  :: !out)
            rest)
    (union_keys t);
  List.rev !out

let device_digest t =
  let psz = Hw.Defs.page_size in
  let buf = Bytes.create psz in
  let all = Buffer.create 4096 in
  Array.iter
    (fun n ->
      let store = Sdevice.Block_dev.store (Node.device n) in
      for p = 0 to t.cfg.node.Node.wal_pages - 1 do
        Sdevice.Pagestore.read_page store ~page:p ~dst:buf;
        Buffer.add_bytes all buf
      done)
    t.nodes;
  Digest.string (Buffer.contents all)
