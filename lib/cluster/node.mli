(** One simulated Aquila node: NVMe device + DRAM cache + a page-granular
    WAL through the mmap path, with a volatile memtable rebuilt from the
    WAL on every (re)open.  See DESIGN.md §11. *)

type record = {
  op : int;  (** client-assigned, globally monotonic write ordinal *)
  value : string option;  (** [None] is a tombstone *)
}

type config = {
  cache_frames : int;  (** per-node DRAM cache frames *)
  wal_pages : int;  (** WAL (= device file) capacity in pages *)
}

val default_config : config

type t

exception Wal_full of int

val create : ?nvme:Sdevice.Block_dev.t -> id:int -> config -> t
(** Allocates the device (or adopts [nvme] — restart verification
    rebuilds nodes over surviving devices) and the cold stack.  Call
    {!open_stack} from a fiber before serving. *)

val id : t -> int
val is_up : t -> bool

val tainted : t -> bool
(** A node is tainted between a post-crash {!reopen} and the completion
    of its resync: its WAL tail may diverge from the promoted primary's
    history, so it never supplies the authoritative record and accepts
    unconditional overwrites (divergent-tail truncation). *)

val set_tainted : t -> bool -> unit

val degraded : t -> bool
(** The node's DRAM cache is in read-only degraded mode
    ({!Mcache.Dram_cache.degraded}) — the open-loop load-shedding
    signal.  False while the node is down or its stack is cold. *)

val device : t -> Sdevice.Block_dev.t
val wal_len : t -> int
val ensure_up : t -> unit
(** Raises {!Rpc.Drop} when the node is down. *)

(** {1 Lifecycle} *)

val open_stack : t -> unit
(** Fiber-only: enter the Aquila context, map the WAL and replay it into
    the memtable (last record per key wins); marks the node up. *)

val reopen : t -> unit
(** Fiber-only: fresh context over the {e surviving} device, then
    {!open_stack} — the recovery path after {!crash}. *)

val crash : t -> unit
(** Power loss: drops the memtable and the DRAM cache's volatile state
    ({!Mcache.Dram_cache.crash}); completed device writes survive.  Safe
    to call from an engine event hook (no fiber effects). *)

(** {1 Data plane (fiber-only)} *)

val append : t -> key:string -> r:record -> unit
(** Durable WAL append (write + msync under the node's WAL lock), then
    the memtable update.  Raises {!Rpc.Drop} if the node is (or goes)
    down, {!Wal_full} when the log is exhausted. *)

val find : t -> string -> record option
(** Memtable lookup; raises {!Rpc.Drop} when down. *)

(** {1 Control plane (oracle/resync bookkeeping, no up-check)} *)

val peek : t -> string -> record option
val keys : t -> string list  (** sorted *)

val entries : t -> (string * record) list  (** sorted by key *)
