(* Inter-node RPC over one engine: virtual wire latency both ways, a
   per-attempt timeout armed as an external event, and exponential
   virtual-time backoff between attempts.  Requests to (or replies from)
   a down node are dropped at delivery time, so the caller observes a
   partition exactly as a real client would: silence, then timeout.

   Each delivered request runs in its own freshly spawned handler fiber
   on the destination node's core (tagged with the node id for
   Engine.blocked_report), so a handler that itself waits on a
   downstream RPC — the replication chain — never head-of-line blocks
   or deadlocks the node. *)

type config = {
  wire_latency : int;
  timeout : int;
  backoff_base : int;
  backoff_cap : int;
  max_attempts : int;
}

let default_config =
  {
    wire_latency = 20_000;
    timeout = 4_000_000;
    backoff_base = 100_000;
    backoff_cap = 1_600_000;
    max_attempts = 4;
  }

(* Pure: attempt 0 sleeps base, each retry doubles, capped.  Unit-tested
   against the virtual clock in test/test_cluster.ml. *)
let backoff_delay cfg ~attempt =
  let shift = min (max attempt 0) 20 in
  let d = cfg.backoff_base lsl shift in
  if d <= 0 then cfg.backoff_cap else min cfg.backoff_cap d

exception Unreachable of { node : int; attempts : int }
exception Drop

let () =
  Printexc.register_printer (function
    | Unreachable { node; attempts } ->
        Some
          (Printf.sprintf "Aqcluster.Rpc.Unreachable(node=%d, attempts=%d)"
             node attempts)
    | _ -> None)

(* Metric cells are bound lazily per domain (the --jobs fan-out runs
   each job in its own domain), mirroring lib/fault. *)
let m_timeouts_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"cluster RPC attempts that timed out"
        "cluster_rpc_timeouts")

let m_retries_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"cluster RPC retries after a timeout"
        "cluster_rpc_retries")

type ('req, 'resp) t = {
  eng : Sim.Engine.t;
  cfg : config;
  nodes : int;
  alive : int -> bool;
  handlers : ('req -> 'resp) option array;
  mutable n_timeouts : int;
  mutable n_retries : int;
}

let create ~eng ~cfg ~nodes ~alive =
  {
    eng;
    cfg;
    nodes;
    alive;
    handlers = Array.make nodes None;
    n_timeouts = 0;
    n_retries = 0;
  }

let set_handler t node h = t.handlers.(node) <- Some h
let timeouts t = t.n_timeouts
let retries t = t.n_retries

(* src = -1 is the external client (always reachable). *)
let alive t i = i < 0 || t.alive i

let call t ~src ~dst req =
  let ccore = (Sim.Engine.self ()).Sim.Engine.core in
  let result = ref None in
  let fired = ref false in
  Sim.Engine.suspend (fun resume ->
      (* one-shot: whichever of reply/timeout lands first wins; the
         loser sees [fired] and must not resume a second time *)
      let finish r =
        if not !fired then begin
          fired := true;
          result := r;
          resume ()
        end
      in
      let now = Int64.to_int (Sim.Engine.now t.eng) in
      Sim.Engine.post t.eng ~core:ccore
        ~at:(Int64.of_int (now + t.cfg.timeout))
        (fun () ->
          if not !fired then begin
            t.n_timeouts <- t.n_timeouts + 1;
            Metrics.Registry.incr (Domain.DLS.get m_timeouts_key)
          end;
          finish None);
      if alive t src then
        Sim.Engine.post t.eng ~core:dst
          ~at:(Int64.of_int (now + t.cfg.wire_latency))
          (fun () ->
            if alive t dst then
              match t.handlers.(dst) with
              | None -> ()
              | Some h ->
                  ignore
                    (Sim.Engine.spawn t.eng
                       ~name:(Printf.sprintf "rpc@%d" dst)
                       ~core:dst
                       (fun () ->
                         Sim.Engine.set_node_id (Sim.Engine.self ()) dst;
                         match (try Some (h req) with Drop -> None) with
                         | None -> () (* dropped: the caller times out *)
                         | Some resp ->
                             if alive t dst then begin
                               let rnow =
                                 Int64.to_int (Sim.Engine.now t.eng)
                               in
                               Sim.Engine.post t.eng ~core:ccore
                                 ~at:
                                   (Int64.of_int
                                      (rnow + t.cfg.wire_latency))
                                 (fun () ->
                                   if alive t src then finish (Some resp))
                             end))));
  !result

let note_retry t =
  t.n_retries <- t.n_retries + 1;
  Metrics.Registry.incr (Domain.DLS.get m_retries_key)

let call_retry t ~src ~dst req =
  let rec go attempt =
    match call t ~src ~dst req with
    | Some r -> r
    | None ->
        let next = attempt + 1 in
        if next >= t.cfg.max_attempts then
          raise (Unreachable { node = dst; attempts = next })
        else begin
          note_retry t;
          Sim.Engine.idle_wait (Int64.of_int (backoff_delay t.cfg ~attempt));
          go next
        end
  in
  go 0
