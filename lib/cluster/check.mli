(** Cluster crash sweep: the no-lost-acknowledged-writes oracle behind
    [aquila_cli clustercheck] (DESIGN.md §11).

    For every (seed × crash-ordinal × crashed-node) point: run a seeded
    workload through {!Cluster.kv} while an armed aqfault plan downs the
    target node at the exact engine event ordinal, let failover +
    recovery + resync drain, then verify (1) every acknowledged write
    reads back as its value or a later one, (2) reads never return
    foreign bytes, (3) all replicas of every key converge — and repeat
    (1) and (3) on a fresh cluster restarted from the surviving devices.
    With [~broken:true] the cluster acks before replicating; the sweep
    must then report violations, proving the oracle has teeth. *)

type report = {
  combos : int;  (** (seed × ordinal × node) runs, probes excluded *)
  crashes : int;  (** combos whose run actually downed the node *)
  violations : string list;
}

val ok : report -> bool
val empty : report

val merge : report -> report -> report
(** Order-sensitive on [violations]; merge sub-reports in seed order so
    fan-out output is byte-identical at any [--jobs] degree. *)

val pp_report : Format.formatter -> report -> unit

val sweep :
  ?broken:bool -> ?cfg:Cluster.config -> seeds:int list -> points:int ->
  unit -> report
(** Per seed: two no-crash probes (byte-level determinism gate over
    event count, acked ops and device bytes), then [points] crash
    ordinals spread over the probe's event count, each crossed with
    every node as the crash target. *)
