(** Inter-node RPC with bounded retry/timeout/backoff (DESIGN.md §11).

    All traffic lives on one {!Sim.Engine}: a request pays
    [wire_latency] cycles to the destination core, runs in a fresh
    handler fiber there (tagged via {!Sim.Engine.set_node_id} so
    blocked reports name the node), and the reply pays the wire again.
    A per-attempt timeout is armed as an external event on the caller's
    core; messages touching a down node are dropped at delivery, so
    failures surface as timeouts — never as exceptions leaking across
    the simulated wire. *)

type config = {
  wire_latency : int;  (** one-way wire cycles *)
  timeout : int;  (** per-attempt reply budget, cycles *)
  backoff_base : int;  (** sleep before the first retry *)
  backoff_cap : int;  (** backoff ceiling *)
  max_attempts : int;  (** total attempts before {!Unreachable} *)
}

val default_config : config

val backoff_delay : config -> attempt:int -> int
(** Pure backoff schedule: [min cap (base * 2^attempt)] — attempt 0 is
    the sleep after the first failure. *)

exception Unreachable of { node : int; attempts : int }
(** Raised by {!call_retry} once every attempt timed out. *)

exception Drop
(** Raised by a handler to drop the request without replying (e.g. the
    node noticed it is down mid-operation); the caller times out. *)

type ('req, 'resp) t

val create :
  eng:Sim.Engine.t ->
  cfg:config ->
  nodes:int ->
  alive:(int -> bool) ->
  ('req, 'resp) t
(** [alive] is consulted at every delivery (request, handler reply) so
    a crash mid-flight drops exactly the messages a power cut would. *)

val set_handler : ('req, 'resp) t -> int -> ('req -> 'resp) -> unit

val call : ('req, 'resp) t -> src:int -> dst:int -> 'req -> 'resp option
(** One attempt from the calling fiber ([src = -1] for the external
    client); [None] on timeout.  Must run inside a fiber. *)

val call_retry : ('req, 'resp) t -> src:int -> dst:int -> 'req -> 'resp
(** {!call} with up to [max_attempts] attempts separated by
    {!backoff_delay} idle-waits; raises {!Unreachable} on exhaustion. *)

val note_retry : ('req, 'resp) t -> unit
(** Count a caller-level retry (the cluster client re-routing a request
    after a timeout) in the same counters as {!call_retry}'s own. *)

val timeouts : ('req, 'resp) t -> int
val retries : ('req, 'resp) t -> int
