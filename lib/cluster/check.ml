(* clustercheck: the no-lost-acknowledged-writes sweep (DESIGN.md §11).

   Mirrors lib/fault/check.ml: for each seed, probe the full run twice
   (determinism check over event count, acked ops and device bytes),
   then sweep crash ordinals spread over the observed event count — but
   crossed with *which node* dies, since a primary crash and a
   mid-chain replica crash exercise different failover paths.

   Each combo runs a seeded mixed workload through Cluster.kv while the
   armed plan downs the target node at the exact ordinal, lets failover
   and recovery drain, then checks three oracles:

   1. no lost acks — every write the client saw acknowledged must read
      back as that value or a later one (never older, never absent);
   2. no foreign bytes — reads only ever return values the client wrote;
   3. convergence — after resync every placement member of every key
      holds identical state.

   Finally the whole cluster is restarted over the surviving devices
   (fresh engine, WAL replay only) and oracles 1 and 3 re-checked: what
   the cluster serves must be reconstructible from durable state alone. *)

type report = {
  combos : int;  (** (seed x ordinal x node) runs, probes excluded *)
  crashes : int;  (** combos whose run actually downed the node *)
  violations : string list;
}

let ok r = r.violations = []

let empty = { combos = 0; crashes = 0; violations = [] }

let merge a b =
  {
    combos = a.combos + b.combos;
    crashes = a.crashes + b.crashes;
    violations = a.violations @ b.violations;
  }

let pp_report ppf r =
  Fmt.pf ppf "clustercheck: %d combos, %d crashed, %d violations@." r.combos
    r.crashes (List.length r.violations);
  List.iter (fun v -> Fmt.pf ppf "  VIOLATION %s@." v) r.violations

(* ---- workload ---- *)

let check_ops = 150
let check_keyspace = 32

let kv_key rng = Printf.sprintf "key%03d" (Sim.Rng.int rng check_keyspace)
let kv_value ~seed ~op key = Printf.sprintf "v%05d.%d.%s" op seed key

type run_result = {
  crashed : bool;
  events : int;
  acked : int;
  digest : string;
  run_violations : string list;
}

(* Read every history key back through the cluster API and compare with
   the client-side oracle tables. *)
let oracle_readback ~eng ~kv ~history ~acked ~violation ~tag =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) history []
    |> List.sort String.compare
  in
  ignore
    (Sim.Engine.spawn eng ~name:(tag ^ "-oracle") (fun () ->
         List.iter
           (fun key ->
             let hist = Hashtbl.find history key in
             let got = try kv.Ycsb.Runner.kv_read key with Rpc.Unreachable _ -> None in
             match (got, Hashtbl.find_opt acked key) with
             | None, Some aop ->
                 violation
                   (Printf.sprintf "%s: key %s lost: acked at op %d" tag key aop)
             | None, None -> ()
             | Some v, ack -> (
                 match List.find_opt (fun (_, v') -> String.equal v v') hist with
                 | None ->
                     violation
                       (Printf.sprintf "%s: key %s returned foreign bytes %S"
                          tag key v)
                 | Some (vop, _) -> (
                     match ack with
                     | Some aop when vop < aop ->
                         violation
                           (Printf.sprintf
                              "%s: key %s stale: returned op %d but op %d was \
                               acked"
                              tag key vop aop)
                     | _ -> ())))
           keys));
  Sim.Engine.run eng

let cluster_once ~seed ~(spec : Fault.Plan.spec) ~(cfg : Cluster.config) () =
  let plan = Fault.Plan.make { spec with Fault.Plan.seed } in
  (* oracle tables: every value ever written per key (newest first), and
     the op of the last *acknowledged* write per key *)
  let history : (string, (int * string) list) Hashtbl.t = Hashtbl.create 64 in
  let acked : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let events = ref 0 in
  let eng = Sim.Engine.create () in
  let cl = Cluster.create ~cfg ~eng () in
  Fault.with_plan plan (fun () ->
      Cluster.boot cl;
      Cluster.arm_fault cl plan;
      let kv = Cluster.kv cl in
      ignore
        (Sim.Engine.spawn eng ~name:"client" ~core:cfg.Cluster.nodes (fun () ->
             let rng = Sim.Rng.create (0xc105ed + seed) in
             for i = 1 to check_ops do
               let key = kv_key rng in
               if i mod 5 = 0 then begin
                 (* read: may see anything from this run, never foreign *)
                 match try kv.Ycsb.Runner.kv_read key with Rpc.Unreachable _ -> None with
                 | None -> ()
                 | Some v ->
                     let hist =
                       try Hashtbl.find history key with Not_found -> []
                     in
                     if not (List.exists (fun (_, v') -> String.equal v v') hist)
                     then violation "run: key %s read foreign bytes %S" key v
               end
               else begin
                 let v = kv_value ~seed ~op:i key in
                 Hashtbl.replace history key
                   ((i, v) :: (try Hashtbl.find history key with Not_found -> []));
                 match kv.Ycsb.Runner.kv_update key v with
                 | () -> Hashtbl.replace acked key i
                 | exception Rpc.Unreachable _ -> ()
               end
             done));
      Sim.Engine.run eng;
      (* final anti-entropy pass now that writers stopped, then oracles *)
      ignore
        (Sim.Engine.spawn eng ~name:"final-resync" ~core:cfg.Cluster.nodes
           (fun () -> ignore (Cluster.resync cl)));
      Sim.Engine.run eng;
      oracle_readback ~eng ~kv ~history ~acked
        ~violation:(fun s -> violations := s :: !violations)
        ~tag:"run";
      List.iter (fun v -> violation "run: %s" v) (Cluster.convergence_violations cl);
      events := Sim.Engine.events eng);
  (* restart verification: a fresh cluster over the surviving devices
     must serve the same durable truth (no plan installed) *)
  let eng2 = Sim.Engine.create () in
  let cl2 = Cluster.create ~cfg ~devices:(Cluster.devices cl) ~eng:eng2 () in
  (try
     Cluster.boot cl2;
     oracle_readback ~eng:eng2 ~kv:(Cluster.kv cl2) ~history ~acked
       ~violation:(fun s -> violations := s :: !violations)
       ~tag:"restart";
     List.iter
       (fun v -> violation "restart: %s" v)
       (Cluster.convergence_violations cl2)
   with e ->
     violation "restart verification failed: %s" (Printexc.to_string e));
  {
    crashed = Fault.Plan.crashed plan;
    events = !events;
    acked = (Cluster.stats cl).Cluster.acked_writes;
    digest = (Cluster.device_digest cl :> string);
    run_violations = List.rev !violations;
  }

(* ---- sweep driver ---- *)

let label ~seed ~crash_at ~node msg =
  Printf.sprintf "[cluster seed=%d%s%s] %s" seed
    (match crash_at with None -> "" | Some at -> Printf.sprintf " crash=%d" at)
    (match node with None -> "" | Some i -> Printf.sprintf " node=%d" i)
    msg

let sweep ?(broken = false) ?(cfg = Cluster.default_config) ~seeds ~points () =
  let cfg = { cfg with Cluster.broken } in
  let combos = ref 0 and crashes = ref 0 in
  let violations = ref [] in
  let add ~seed ~crash_at ~node msgs =
    violations :=
      List.rev_append
        (List.rev_map (label ~seed ~crash_at ~node) msgs)
        !violations
  in
  List.iter
    (fun seed ->
      let spec = { Fault.Plan.default with Fault.Plan.seed } in
      let probe = cluster_once ~seed ~spec ~cfg () in
      add ~seed ~crash_at:None ~node:None probe.run_violations;
      let probe2 = cluster_once ~seed ~spec ~cfg () in
      if
        probe.events <> probe2.events
        || probe.acked <> probe2.acked
        || not (String.equal probe.digest probe2.digest)
      then
        add ~seed ~crash_at:None ~node:None
          [
            Printf.sprintf
              "nondeterministic: events %d/%d, acked %d/%d, device bytes %s"
              probe.events probe2.events probe.acked probe2.acked
              (if String.equal probe.digest probe2.digest then "equal"
               else "differ");
          ];
      for i = 1 to points do
        let at = max 1 (probe.events * i / (points + 1)) in
        for target = 0 to cfg.Cluster.nodes - 1 do
          let spec =
            {
              spec with
              Fault.Plan.crash_at = Some at;
              Fault.Plan.node = Some target;
            }
          in
          let r = cluster_once ~seed ~spec ~cfg () in
          incr combos;
          if r.crashed then incr crashes;
          add ~seed ~crash_at:(Some at) ~node:(Some target) r.run_violations
        done
      done)
    seeds;
  { combos = !combos; crashes = !crashes; violations = List.rev !violations }
