(** aqcluster: N replicated Aquila nodes on one deterministic engine
    (DESIGN.md §11).

    Nodes sit behind a consistent-hash {!Router}; writes run primary →
    replica chain and acknowledge only after [replicas] durable WAL
    copies; node [i]'s handler fibers live on core [i], the external
    client on core [nodes].  An aqfault plan with [crash=N,node=I] downs
    node [I] at engine event ordinal [N]: the router re-routes (the next
    ring replica is the promoted primary), surviving members
    re-replicate shifted keys, and the node restarts, replays its WAL,
    and resyncs from the authoritative copies — its divergent tail, if
    any, is truncated.  [Check] sweeps (seed × ordinal × node) and
    verifies no acknowledged write is ever lost. *)

type config = {
  nodes : int;
  replicas : int;  (** durable copies per key, primary included *)
  vnodes : int;  (** ring points per node *)
  node : Node.config;
  rpc : Rpc.config;
  broken : bool;
      (** teeth test: ack after the primary's durable write, replicate
          asynchronously — the sweep oracle must catch the lost-ack
          window this opens *)
  recovery_delay : int;  (** cycles from crash to restart *)
}

val default_config : config
(** 5 nodes, 3 replicas, 16 vnodes, correct (non-broken) replication. *)

type stats = {
  mutable acked_writes : int;
  mutable redirected : int;  (** client ops re-routed after a timeout *)
  mutable failovers : int;
  mutable resync_pages : int;  (** WAL pages pushed by resync *)
  mutable crash_ordinals : int list;  (** newest first *)
}

type t

val create :
  ?cfg:config -> ?devices:Sdevice.Block_dev.t array -> eng:Sim.Engine.t ->
  unit -> t
(** Builds nodes, router and RPC fabric on [eng].  [devices] adopts
    surviving NVMe devices (restart verification); call {!boot} before
    serving. *)

val boot : t -> unit
(** Spawns each node's boot fiber (stack open + WAL replay) and runs the
    engine until they drain. *)

val kv : t -> Ycsb.Runner.kv
(** The cluster as a kvstore — the {!Scenario.kv} shape, so YCSB
    workloads drive it unchanged.  All operations must run inside a
    fiber; writes raise {!Rpc.Unreachable} once the retry budget is
    exhausted. *)

val put : t -> string -> string -> unit
val get : t -> string -> string option
val scan : t -> start:string -> n:int -> (string * string) list

val arm_fault : t -> Fault.Plan.t -> unit
(** Consume the plan's [crash_at]/[node] as a node-targeted crash: an
    engine event hook downs that node at the ordinal (calling
    {!Fault.Plan.note_crash}) instead of raising {!Fault.Crash}. *)

val crash_node : t -> int -> ordinal:int -> unit
(** Down node [i] now: volatile state dies, placement re-routes, resync
    repairs the shifted keys, and recovery is scheduled after
    [recovery_delay].  Safe from an engine event hook. *)

val resync : t -> int
(** Run one anti-entropy pass from the current authoritative copies
    (max-op records on untainted live nodes) and return the number of
    pages pushed.  Fiber-only.  Runs automatically on failover and
    rejoin; call it once more after a workload drains to fix any churn
    from writes that raced the automatic passes. *)

val convergence_violations : t -> string list
(** For every key, all placement members must expose identical
    (op, value) state; returns human-readable mismatches. *)

val degraded : t -> bool
(** Some live node's DRAM cache is in read-only degraded mode — the
    cluster-level load-shedding signal for the open-loop harness. *)

val stats : t -> stats
val rpc_timeouts : t -> int
val rpc_retries : t -> int
val live_view : t -> bool array
val node : t -> int -> Node.t
val devices : t -> Sdevice.Block_dev.t array

val device_digest : t -> Digest.t
(** Digest over every node's raw WAL device bytes — the determinism
    probe compared across repeat runs. *)
