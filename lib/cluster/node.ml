(* One simulated Aquila node: an NVMe device, its own DRAM cache behind
   an Aquila context, and a page-granular write-ahead log mapped through
   the mmap path.  The volatile KV view (memtable) is rebuilt from the
   WAL on every (re)open, so a crash loses exactly the DRAM state — the
   same contract lib/fault/check.ml verifies for the single-node stack.

   Durability unit: one WAL record per device page, written with
   Context.write + msync under the node's WAL lock, so the log is a
   dense prefix of the device and replay stops at the first blank page.
   A record for a key it has seen before supersedes the older one
   (replay is last-wins), which doubles as the divergent-tail
   truncation mechanism after a failover: the resync pass appends the
   authoritative record after the stale one. *)

let psz = Hw.Defs.page_size

type record = { op : int; value : string option (* None = tombstone *) }

type config = { cache_frames : int; wal_pages : int }

let default_config = { cache_frames = 64; wal_pages = 1024 }

type t = {
  id : int;
  cfg : config;
  nvme : Sdevice.Block_dev.t;
  mem : (string, record) Hashtbl.t;
  mutable ctx : Aquila.Context.t;
  mutable region : Aquila.Context.region option;
  mutable wal_len : int;
  mutable up : bool;
  mutable tainted : bool;
  mutable wal_locked : bool;
  wal_waiters : (unit -> unit) Queue.t;
}

let fresh_ctx cfg =
  Aquila.Context.create
    (Aquila.Context.default_config ~cache_frames:cfg.cache_frames)

let create ?nvme ~id cfg =
  let nvme =
    match nvme with
    | Some d -> d
    | None -> Sdevice.Nvme.create ~name:(Printf.sprintf "cluster-nvme-%d" id) ()
  in
  {
    id;
    cfg;
    nvme;
    mem = Hashtbl.create 64;
    ctx = fresh_ctx cfg;
    region = None;
    wal_len = 0;
    up = false;
    tainted = false;
    wal_locked = false;
    wal_waiters = Queue.create ();
  }

let id t = t.id
let is_up t = t.up
let tainted t = t.tainted
let set_tainted t b = t.tainted <- b
let device t = t.nvme
let degraded t = t.up && Mcache.Dram_cache.degraded (Aquila.Context.cache t.ctx)
let wal_len t = t.wal_len
let ensure_up t = if not t.up then raise Rpc.Drop

let region t =
  match t.region with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "node %d: stack not open" t.id)

(* ---- WAL record codec: one record per page ---- *)

let magic = 0x4151574c0001L (* "AQWL", versioned *)

exception Wal_full of int

let encode_record ~key ~(r : record) =
  let klen = String.length key in
  let vlen = match r.value with None -> 0 | Some v -> String.length v in
  if 32 + klen + vlen > psz then
    invalid_arg
      (Printf.sprintf "node: WAL record for %S exceeds one page" key);
  let b = Bytes.make psz '\000' in
  Bytes.set_int64_le b 0 magic;
  Bytes.set_int64_le b 8 (Int64.of_int r.op);
  Bytes.set_int64_le b 16 (Int64.of_int klen);
  Bytes.set_int64_le b 24
    (match r.value with None -> -1L | Some _ -> Int64.of_int vlen);
  Bytes.blit_string key 0 b 32 klen;
  (match r.value with
  | Some v -> Bytes.blit_string v 0 b (32 + klen) vlen
  | None -> ());
  b

let decode_record buf =
  if Bytes.get_int64_le buf 0 <> magic then None
  else
    let op = Int64.to_int (Bytes.get_int64_le buf 8) in
    let klen = Int64.to_int (Bytes.get_int64_le buf 16) in
    let vlen = Int64.to_int (Bytes.get_int64_le buf 24) in
    if klen < 0 || klen > psz - 32 then None
    else
      let key = Bytes.sub_string buf 32 klen in
      let value =
        if vlen < 0 then None
        else if 32 + klen + vlen > psz then None
        else Some (Bytes.sub_string buf (32 + klen) vlen)
      in
      Some (key, { op; value })

(* ---- fiber-side stack lifecycle ---- *)

(* Open (or re-open after a crash) the Aquila stack over the surviving
   device and replay the WAL into the memtable.  Fiber-only: the replay
   reads go through the mmap fault path and charge cycles. *)
let open_stack t =
  Aquila.Context.enter_thread t.ctx;
  let translate p = if p < t.cfg.wal_pages then Some p else None in
  let access = Sdevice.Access.spdk_nvme (Aquila.Context.costs t.ctx) t.nvme in
  let file =
    Aquila.Context.attach_file t.ctx
      ~name:(Printf.sprintf "wal-%d.dat" t.id)
      ~access ~translate ~size_pages:t.cfg.wal_pages
  in
  let region = Aquila.Context.mmap t.ctx file ~npages:t.cfg.wal_pages () in
  t.region <- Some region;
  let buf = Bytes.create psz in
  let slot = ref 0 and scanning = ref true in
  while !scanning && !slot < t.cfg.wal_pages do
    Aquila.Context.read t.ctx region ~off:(!slot * psz) ~len:psz ~dst:buf;
    match decode_record buf with
    | None -> scanning := false
    | Some (key, r) ->
        Hashtbl.replace t.mem key r;
        incr slot
  done;
  t.wal_len <- !slot;
  t.up <- true

let reopen t =
  t.ctx <- fresh_ctx t.cfg;
  t.region <- None;
  Hashtbl.reset t.mem;
  t.wal_locked <- false;
  Queue.clear t.wal_waiters;
  open_stack t

(* Power loss: volatile state only — the memtable dies and the DRAM
   cache drops un-synced frames; device bytes that completed survive.
   Called from the engine event hook, so it must not perform fiber
   effects (Dram_cache.crash is pure state mutation). *)
let crash t =
  t.up <- false;
  Hashtbl.reset t.mem;
  Mcache.Dram_cache.crash (Aquila.Context.cache t.ctx)

(* ---- WAL lock: serialize appends so the log stays a dense prefix ---- *)

let lock t =
  if t.wal_locked then Sim.Engine.suspend (fun r -> Queue.add r t.wal_waiters)
    (* ownership transfers on resume *)
  else t.wal_locked <- true

let unlock t =
  match Queue.take_opt t.wal_waiters with
  | Some r -> r ()
  | None -> t.wal_locked <- false

(* ---- data plane (fiber-only) ---- *)

let append t ~key ~(r : record) =
  lock t;
  Fun.protect
    ~finally:(fun () -> unlock t)
    (fun () ->
      ensure_up t;
      if t.wal_len >= t.cfg.wal_pages then raise (Wal_full t.id);
      let slot = t.wal_len in
      Aquila.Context.write t.ctx (region t) ~off:(slot * psz)
        ~src:(encode_record ~key ~r);
      Aquila.Context.msync t.ctx (region t);
      (* crashed mid-write: the bytes may have landed, but a down node
         must not expose (or acknowledge) them *)
      ensure_up t;
      t.wal_len <- slot + 1;
      Hashtbl.replace t.mem key r)

let find t key =
  ensure_up t;
  Hashtbl.find_opt t.mem key

(* ---- control plane (no up-check, no fiber effects) ---- *)

let peek t key = Hashtbl.find_opt t.mem key

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.mem [] |> List.sort String.compare

let entries t =
  Hashtbl.fold (fun k r acc -> (k, r) :: acc) t.mem []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
