(* Consistent-hash router: a fixed ring of vnode points; placement for a
   key is the first K distinct live nodes clockwise from the key's hash.
   Pure in (key, live set): no state, no RNG draws — the QCheck property
   in test/test_cluster.ml holds the routing layer to exactly that. *)

(* splitmix64 finalizer — same mixer family as Sim.Rng, applied to an
   FNV-1a prefix so short keys still spread over the ring *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (mix64 !h) land max_int

type t = { ring : (int * int) array; nodes : int }

let create ~nodes ?(vnodes = 16) () =
  if nodes <= 0 then invalid_arg "Router.create: nodes must be positive";
  if vnodes <= 0 then invalid_arg "Router.create: vnodes must be positive";
  let pts =
    Array.init (nodes * vnodes) (fun i ->
        let node = i / vnodes and v = i mod vnodes in
        (hash_string (Printf.sprintf "node%d/vnode%d" node v), node))
  in
  Array.sort compare pts;
  { ring = pts; nodes }

let nodes t = t.nodes

(* first ring point with hash >= h, wrapping *)
let start_index t h =
  let lo = ref 0 and hi = ref (Array.length t.ring) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = Array.length t.ring then 0 else !lo

let place t ~live ~key ~k =
  if Array.length live <> t.nodes then
    invalid_arg "Router.place: live set size mismatch";
  let n = Array.length t.ring in
  let alive = Array.fold_left (fun a l -> if l then a + 1 else a) 0 live in
  let want = min k alive in
  let seen = Array.make t.nodes false in
  let out = ref [] and found = ref 0 in
  let i0 = start_index t (hash_string key) in
  let i = ref 0 in
  while !found < want && !i < n do
    let _, node = t.ring.((i0 + !i) mod n) in
    if live.(node) && not seen.(node) then begin
      seen.(node) <- true;
      out := node :: !out;
      incr found
    end;
    incr i
  done;
  List.rev !out
