(** Consistent-hash request router (DESIGN.md §11).

    A fixed ring of [nodes * vnodes] hash points; {!place} walks
    clockwise from the key's hash collecting the first [k] distinct live
    nodes — the head is the key's primary, the tail its replica chain.
    Placement is a pure function of the key and the live set: no state
    is consulted and no randomness drawn, so every client computes the
    same placement and a node failure re-routes exactly the keys the
    failed node owned. *)

type t

val create : nodes:int -> ?vnodes:int -> unit -> t
(** [create ~nodes ()] builds the ring for node ids [0 .. nodes-1] with
    [vnodes] (default 16) points per node. *)

val nodes : t -> int

val hash_string : string -> int
(** The ring's key hash (FNV-1a folded through a splitmix64 finalizer),
    exposed for tests. *)

val place : t -> live:bool array -> key:string -> k:int -> int list
(** [place t ~live ~key ~k] is the key's replica set: the first
    [min k |live|] distinct nodes with [live.(n)] true, clockwise from
    [hash key]; head = primary.  Raises [Invalid_argument] if [live]
    does not cover every node. *)
