module Arrival = Arrival

type config = {
  process : Arrival.process;
  horizon : int;
  workers : int;
  queue_cap : int;
  slo_cycles : int;
  seed : int;
  shed_when_degraded : bool;
}

type backend = {
  name : string;
  serve : int -> unit;
  degraded : unit -> bool;
}

type result = {
  arrivals : int;
  admitted : int;
  completions : int;
  shed_full : int;
  shed_degraded : int;
  slo_violations : int;
  max_depth : int;
  sojourn : Stats.Histogram.t;
}

let shed r = r.shed_full + r.shed_degraded

(* Injector + worker-pool driver.  The injector fiber idle-waits to each
   arrival instant and either sheds or enqueues; workers drain the queue
   and park (suspend) when it runs dry.  Wakeups are one-per-admission,
   and a worker only parks after seeing the queue empty, so no admitted
   request can strand; the injector closes the queue and wakes every
   parked worker when the stream ends, so the engine always drains
   (asserted by the no-deadlock test). *)
let run t cfg mk =
  if cfg.horizon <= 0 then invalid_arg "Loadgen.run: horizon must be > 0";
  if cfg.workers <= 0 then invalid_arg "Loadgen.run: workers must be > 0";
  if cfg.queue_cap <= 0 then invalid_arg "Loadgen.run: queue_cap must be > 0";
  let arrivals = ref 0
  and admitted = ref 0
  and completions = ref 0
  and shed_full = ref 0
  and shed_degraded = ref 0
  and slo_violations = ref 0
  and max_depth = ref 0 in
  let sojourn = Stats.Histogram.create () in
  let _main =
    Sim.Engine.spawn t ~name:"loadgen.main" (fun () ->
        let b = mk () in
        let labels = [ ("backend", b.name) ] in
        let m = Metrics.Registry.counter ~labels in
        let c_arrivals = m "loadgen_arrivals_total"
        and c_admitted = m "loadgen_admitted_total"
        and c_completions = m "loadgen_completions_total"
        and c_slo = m "loadgen_slo_violations_total"
        and c_shed_full =
          Metrics.Registry.counter
            ~labels:(("reason", "full") :: labels)
            "loadgen_shed_total"
        and c_shed_degraded =
          Metrics.Registry.counter
            ~labels:(("reason", "degraded") :: labels)
            "loadgen_shed_total"
        and h_sojourn =
          Metrics.Registry.histogram ~labels "loadgen_sojourn_cycles"
        in
        let times =
          Arrival.generate ~seed:cfg.seed ~horizon:cfg.horizon cfg.process
        in
        (* setup (region mapping, cluster boot) has advanced the clock;
           the injection window starts now *)
        let start = Int64.to_int (Sim.Engine.now_f ()) in
        let q : (int * int) Queue.t = Queue.create () in
        let idle : (unit -> unit) Queue.t = Queue.create () in
        let closed = ref false in
        let wake_one () =
          match Queue.take_opt idle with Some resume -> resume () | None -> ()
        in
        let wake_all () =
          let rec go () =
            match Queue.take_opt idle with
            | Some resume ->
                resume ();
                go ()
            | None -> ()
          in
          go ()
        in
        let worker () =
          let rec loop () =
            match Queue.take_opt q with
            | Some (i, at) ->
                b.serve i;
                let s = Int64.to_int (Sim.Engine.now_f ()) - at in
                Stats.Histogram.record sojourn (Int64.of_int s);
                Metrics.Registry.observe h_sojourn s;
                incr completions;
                Metrics.Registry.incr c_completions;
                if cfg.slo_cycles > 0 && s > cfg.slo_cycles then begin
                  incr slo_violations;
                  Metrics.Registry.incr c_slo
                end;
                loop ()
            | None ->
                if not !closed then begin
                  Sim.Engine.suspend (fun resume -> Queue.add resume idle);
                  loop ()
                end
          in
          loop ()
        in
        let injector () =
          Array.iteri
            (fun i at ->
              let target = start + at in
              let nowc = Int64.to_int (Sim.Engine.now_f ()) in
              if target > nowc then
                Sim.Engine.idle_wait (Int64.of_int (target - nowc));
              incr arrivals;
              Metrics.Registry.incr c_arrivals;
              if cfg.shed_when_degraded && b.degraded () then begin
                incr shed_degraded;
                Metrics.Registry.incr c_shed_degraded
              end
              else if Queue.length q >= cfg.queue_cap then begin
                incr shed_full;
                Metrics.Registry.incr c_shed_full
              end
              else begin
                incr admitted;
                Metrics.Registry.incr c_admitted;
                Queue.add (i, Int64.to_int (Sim.Engine.now_f ())) q;
                if Queue.length q > !max_depth then
                  max_depth := Queue.length q;
                wake_one ()
              end)
            times;
          closed := true;
          wake_all ()
        in
        for w = 0 to cfg.workers - 1 do
          ignore
            (Sim.Engine.spawn t
               ~name:(Printf.sprintf "loadgen.worker%d" w)
               worker)
        done;
        ignore (Sim.Engine.spawn t ~name:"loadgen.injector" injector))
  in
  Sim.Engine.run t;
  {
    arrivals = !arrivals;
    admitted = !admitted;
    completions = !completions;
    shed_full = !shed_full;
    shed_degraded = !shed_degraded;
    slo_violations = !slo_violations;
    max_depth = !max_depth;
    sojourn;
  }
