(** Open-loop load generator (DESIGN.md §12).

    Unlike every closed-loop experiment in the repo — where the next
    operation issues only when the previous one returns — the load
    generator injects requests at times drawn from a seeded
    {!Arrival.process}, {e independent of how fast the backend absorbs
    them}.  Requests queue behind a bounded admission buffer served by a
    fixed pool of worker fibers; per-request {e sojourn} latency
    (arrival → completion, so queueing delay is included) feeds a
    {!Stats.Histogram} and the aqmetrics registry.  This is the setup
    that produces hockey-stick latency-vs-offered-load curves and makes
    tail SLOs meaningful.

    Admission control is deterministic: an arrival is shed when the
    bounded queue is full, or — when [shed_when_degraded] is set — while
    the backend reports degraded mode (the DRAM cache's read-only
    fallback after a write-back error storm).  Everything runs as
    ordinary engine events under the [(time, seq)] merge, so results are
    byte-identical at any [--shards] / [--jobs] degree. *)

module Arrival = Arrival

type config = {
  process : Arrival.process;  (** arrival process (see {!Arrival}) *)
  horizon : int;  (** injection window in cycles from load start *)
  workers : int;  (** service fibers draining the admission queue *)
  queue_cap : int;  (** bounded admission queue capacity *)
  slo_cycles : int;
      (** sojourn SLO in cycles; completions slower than this count as
          violations ([0] disables SLO accounting) *)
  seed : int;  (** arrival-stream seed (see {!Arrival.generate}) *)
  shed_when_degraded : bool;
      (** shed at admission while [backend.degraded ()] holds *)
}

type backend = {
  name : string;  (** metrics label and report key *)
  serve : int -> unit;
      (** [serve i] performs request [i] (0-based arrival index); called
          from a worker fiber, so it may use fiber operations and charge
          cycles *)
  degraded : unit -> bool;
      (** polled at admission time for the load-shedding knob; return
          [false] if the backend has no degraded mode *)
}

type result = {
  arrivals : int;  (** requests generated inside the horizon *)
  admitted : int;  (** requests that entered the queue *)
  completions : int;  (** requests served to completion *)
  shed_full : int;  (** arrivals dropped on a full queue *)
  shed_degraded : int;  (** arrivals dropped by the degraded-mode knob *)
  slo_violations : int;  (** completions with sojourn > [slo_cycles] *)
  max_depth : int;  (** peak admission-queue depth *)
  sojourn : Stats.Histogram.t;  (** per-request sojourn cycles *)
}

val shed : result -> int
(** [shed r] is [r.shed_full + r.shed_degraded]. *)

val run : Sim.Engine.t -> config -> (unit -> backend) -> result
(** [run t cfg mk] drives one open-loop run to completion on engine [t]
    and returns the tally.  [mk] is evaluated inside a fresh fiber on
    [t] {e before} any load is injected, so it may perform fiber-only
    setup (mapping a region, booting a cluster); arrival times are
    offset by the virtual time at which setup finishes.  [run] calls
    {!Sim.Engine.run} itself — the engine must not already be running —
    and raises [Invalid_argument] on a non-positive [horizon],
    [workers] or [queue_cap].

    Per-backend series are recorded in the aqmetrics registry:
    [loadgen_arrivals_total], [loadgen_admitted_total],
    [loadgen_completions_total], [loadgen_shed_total{reason=full|degraded}],
    [loadgen_slo_violations_total] and the [loadgen_sojourn_cycles]
    histogram, all labelled [backend=<name>]. *)
