(* Seeded arrival-process generation.  Streams are materialized eagerly
   from a private splitmix64 generator, so they are pure functions of
   (seed, process, horizon) — no dependency on engine, shard or domain
   state.  Interarrival draws are clamped to >= 1 cycle, which both
   guarantees termination and keeps times strictly increasing. *)

type process =
  | Poisson of { rate : float }
  | Mmpp of {
      rate_on : float;
      rate_off : float;
      mean_on : float;
      mean_off : float;
    }
  | Diurnal of { rate_lo : float; rate_hi : float; period : float }

type shape = Poisson_shape | Mmpp_shape | Diurnal_shape

let clock_hz = 2.4e9

let name = function
  | Poisson _ -> "poisson"
  | Mmpp _ -> "mmpp"
  | Diurnal _ -> "diurnal"

let shape_name = function
  | Poisson_shape -> "poisson"
  | Mmpp_shape -> "mmpp"
  | Diurnal_shape -> "diurnal"

let shape_of_string = function
  | "poisson" -> Ok Poisson_shape
  | "mmpp" -> Ok Mmpp_shape
  | "diurnal" -> Ok Diurnal_shape
  | s -> Error (Printf.sprintf "unknown arrival process %S (poisson|mmpp|diurnal)" s)

let mean_rate = function
  | Poisson { rate } -> rate
  | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
      ((rate_on *. mean_on) +. (rate_off *. mean_off)) /. (mean_on +. mean_off)
  | Diurnal { rate_lo; rate_hi; period = _ } -> (rate_lo +. rate_hi) /. 2.

(* Canonical family shapes at a given mean offered rate: the burst duty
   cycle and ramp span are fixed so sweeps vary exactly one variable. *)
let shaped shape ~rate ~horizon =
  match shape with
  | Poisson_shape -> Poisson { rate }
  | Mmpp_shape ->
      (* equal 2 ms dwells at 1.8x / 0.2x the mean: the mix averages to
         [rate] while the ON bursts push the instantaneous load well past
         any capacity the mean alone would saturate *)
      let dwell = 2e-3 *. clock_hz in
      Mmpp
        {
          rate_on = 1.8 *. rate;
          rate_off = 0.2 *. rate;
          mean_on = dwell;
          mean_off = dwell;
        }
  | Diurnal_shape ->
      Diurnal
        { rate_lo = 0.4 *. rate; rate_hi = 1.6 *. rate; period = float_of_int horizon }

let validate p =
  let pos what v = if not (v > 0.) then invalid_arg ("Arrival.generate: " ^ what) in
  match p with
  | Poisson { rate } -> pos "rate must be > 0" rate
  | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
      pos "mean_on must be > 0" mean_on;
      pos "mean_off must be > 0" mean_off;
      if rate_on < 0. || rate_off < 0. || rate_on +. rate_off <= 0. then
        invalid_arg "Arrival.generate: MMPP rates must be >= 0 and not both 0"
  | Diurnal { rate_lo; rate_hi; period } ->
      pos "period must be > 0" period;
      pos "rate_hi must be > 0" rate_hi;
      if rate_lo < 0. || rate_lo > rate_hi then
        invalid_arg "Arrival.generate: need 0 <= rate_lo <= rate_hi"

(* Exponential interarrival draw in whole cycles, clamped to >= 1. *)
let exp_cycles rng ~mean =
  let u = Sim.Rng.float rng in
  let d = -.mean *. log (1. -. u) in
  if d >= 1. then int_of_float d else 1

let generate ~seed ~horizon p =
  validate p;
  if horizon <= 0 then [||]
  else begin
    let rng = Sim.Rng.create (seed lxor 0x6c078965) in
    let acc = ref [] in
    let push t = acc := t :: !acc in
    (match p with
    | Poisson { rate } ->
        let mean = clock_hz /. rate in
        let t = ref (exp_cycles rng ~mean) in
        while !t < horizon do
          push !t;
          t := !t + exp_cycles rng ~mean
        done
    | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
        let t = ref 0 and on = ref true in
        let dwell_end = ref (exp_cycles rng ~mean:mean_on) in
        let flip () =
          t := !dwell_end;
          on := not !on;
          dwell_end :=
            !t + exp_cycles rng ~mean:(if !on then mean_on else mean_off)
        in
        while !t < horizon do
          let rate = if !on then rate_on else rate_off in
          if rate <= 0. then flip ()
          else begin
            let dt = exp_cycles rng ~mean:(clock_hz /. rate) in
            if !t + dt < !dwell_end then begin
              t := !t + dt;
              if !t < horizon then push !t
            end
            else flip ()
          end
        done
    | Diurnal { rate_lo; rate_hi; period } ->
        (* thinning: candidates at the peak rate, each kept with
           probability rate(t) / rate_hi *)
        let mean = clock_hz /. rate_hi in
        let t = ref (exp_cycles rng ~mean) in
        while !t < horizon do
          let phase = Float.rem (float_of_int !t) period /. period in
          let r =
            rate_lo
            +. (rate_hi -. rate_lo)
               *. 0.5
               *. (1. -. cos (2. *. Float.pi *. phase))
          in
          if Sim.Rng.float rng *. rate_hi < r then push !t;
          t := !t + exp_cycles rng ~mean
        done);
    let arr = Array.of_list !acc in
    let n = Array.length arr in
    (* built newest-first: reverse in place *)
    for i = 0 to (n / 2) - 1 do
      let tmp = arr.(i) in
      arr.(i) <- arr.(n - 1 - i);
      arr.(n - 1 - i) <- tmp
    done;
    arr
  end
