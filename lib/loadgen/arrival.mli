(** Seeded open-loop arrival processes (DESIGN.md §12).

    Every generator is a {e pure function} of [(seed, process, horizon)]:
    the stream is computed eagerly with a private splitmix64 generator
    before any engine event runs, so the same parameters produce the same
    arrival times — byte-for-byte — at any [--shards] or [--jobs] degree
    (a QCheck property enforces this).  Times are virtual cycles on the
    simulated 2.4 GHz clock; rates are offered load in operations per
    second of that clock. *)

type process =
  | Poisson of { rate : float }
      (** memoryless arrivals: exponential interarrival times with mean
          [clock_hz /. rate] cycles *)
  | Mmpp of {
      rate_on : float;  (** arrival rate while the source bursts *)
      rate_off : float;  (** arrival rate between bursts (may be 0) *)
      mean_on : float;  (** mean burst dwell in cycles (exponential) *)
      mean_off : float;  (** mean quiet dwell in cycles (exponential) *)
    }
      (** two-state Markov-modulated Poisson process: the source
          alternates between an ON and an OFF state with exponentially
          distributed dwell times, emitting Poisson arrivals at the
          state's rate — the classic bursty-traffic model *)
  | Diurnal of { rate_lo : float; rate_hi : float; period : float }
      (** non-homogeneous Poisson ramp: the instantaneous rate follows a
          raised cosine from [rate_lo] up to [rate_hi] and back over each
          [period] cycles (one period = one simulated "day"), sampled by
          thinning against [rate_hi] *)

type shape = Poisson_shape | Mmpp_shape | Diurnal_shape
(** Process family selector for sweeps: {!shaped} builds the canonical
    process of each family at a given mean offered rate. *)

val clock_hz : float
(** The simulated clock (2.4e9), converting rates to cycle gaps. *)

val name : process -> string
val shape_name : shape -> string

val shape_of_string : string -> (shape, string) result
(** ["poisson"], ["mmpp"] or ["diurnal"]. *)

val mean_rate : process -> float
(** Long-run offered load in ops/s: the rate itself (Poisson), the
    dwell-weighted state mix (MMPP), or the midpoint (diurnal ramp —
    the raised cosine averages to [(lo + hi) / 2]). *)

val shaped : shape -> rate:float -> horizon:int -> process
(** [shaped s ~rate ~horizon] is the canonical process of family [s]
    with mean offered load [rate]: plain Poisson; an MMPP bursting at
    [1.8 rate] for a mean 2 ms ON dwell and idling at [0.2 rate] for an
    equal OFF dwell (so the mix averages to [rate]); or a diurnal ramp
    between [0.4 rate] and [1.6 rate] over one [horizon]-long period. *)

val generate : seed:int -> horizon:int -> process -> int array
(** [generate ~seed ~horizon p] is the strictly increasing array of
    arrival times in cycles, each in [\[1, horizon)].  Pure: equal
    arguments give equal arrays, independent of any ambient engine,
    shard or domain state.  Raises [Invalid_argument] on non-positive
    rates (an all-zero MMPP mix included) or dwell/period parameters. *)
