(* Buckets: 64 magnitude groups x 32 sub-buckets; relative error ~ 1/32. *)
let sub_bits = 5
let sub = 1 lsl sub_bits

type t = {
  buckets : int array; (* 64 * sub *)
  mutable n : int;
  mutable sum : float;
  mutable vmin : int64;
  mutable vmax : int64;
}

let nbuckets = 64 * sub

let create () =
  { buckets = Array.make nbuckets 0; n = 0; sum = 0.; vmin = Int64.max_int; vmax = 0L }

let index_of v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  if Int64.compare v (Int64.of_int sub) < 0 then Int64.to_int v
  else begin
    (* magnitude = position of highest set bit *)
    let rec msb i acc = if Int64.compare i 1L <= 0 then acc else msb (Int64.shift_right_logical i 1) (acc + 1) in
    let m = msb v 0 in
    let shift = m - sub_bits in
    let sub_idx = Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) (Int64.of_int (sub - 1))) in
    let idx = ((m - sub_bits + 1) * sub) + sub_idx in
    min idx (nbuckets - 1)
  end

(* Upper bound of bucket [idx]: inverse of [index_of]. *)
let bound_of idx =
  if idx < sub then Int64.of_int idx
  else begin
    let group = (idx / sub) - 1 in
    let sub_idx = idx mod sub in
    let m = group + sub_bits in
    let base = Int64.shift_left 1L m in
    Int64.add base (Int64.shift_left (Int64.of_int sub_idx) (m - sub_bits))
  end

let record t v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  let idx = index_of v in
  t.buckets.(idx) <- t.buckets.(idx) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. Int64.to_float v;
  if Int64.compare v t.vmin < 0 then t.vmin <- v;
  if Int64.compare v t.vmax > 0 then t.vmax <- v

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let max_value t = t.vmax
let min_value t = if t.n = 0 then 0L else t.vmin

(* Quantile-at-least, no interpolation: return the inclusive upper bound
   of the first bucket whose cumulative count reaches ceil(n * p / 100)
   — the smallest bound v such that at least a fraction p of samples are
   guaranteed <= v.  The inclusive upper bound of bucket idx is the next
   bucket's lower bound minus one (bound_of gives lower bounds; for
   width-1 buckets below [sub] the two coincide).  Returning the lower
   bound instead would silently undershoot the exact order statistic by
   up to a bucket width (~3%).  The bound is then clamped into
   [vmin, vmax]: a sparse histogram (small n) otherwise reports a bucket
   ceiling no sample ever reached — p999 of twenty samples must be the
   exact maximum sample, not max rounded up ~3% (see test_stats's
   percentile_small_n). *)
let percentile t p =
  if t.n = 0 then 0L
  else begin
    let target =
      int_of_float (ceil (float_of_int t.n *. p /. 100.))
      |> max 1 |> min t.n
    in
    let rec go idx acc =
      if idx >= nbuckets then t.vmax
      else
        let acc = acc + t.buckets.(idx) in
        if acc >= target then
          if idx + 1 >= nbuckets then t.vmax
          else Int64.sub (bound_of (idx + 1)) 1L
        else go (idx + 1) acc
    in
    let b = go 0 0 in
    if Int64.compare b t.vmin < 0 then t.vmin
    else if Int64.compare b t.vmax > 0 then t.vmax
    else b
  end

let merge a b =
  let t = create () in
  for i = 0 to nbuckets - 1 do
    t.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  t.n <- a.n + b.n;
  t.sum <- a.sum +. b.sum;
  t.vmin <- (if Int64.compare a.vmin b.vmin < 0 then a.vmin else b.vmin);
  t.vmax <- (if Int64.compare a.vmax b.vmax > 0 then a.vmax else b.vmax);
  t

let merge_into ~src ~dst =
  for i = 0 to nbuckets - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if Int64.compare src.vmin dst.vmin < 0 then dst.vmin <- src.vmin;
  if Int64.compare src.vmax dst.vmax > 0 then dst.vmax <- src.vmax

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.n <- 0;
  t.sum <- 0.;
  t.vmin <- Int64.max_int;
  t.vmax <- 0L
