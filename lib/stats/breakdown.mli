(** Cycle-breakdown aggregation across fibers.

    Experiments aggregate the per-fiber label accounting kept by the
    engine ({!Sim.Engine.labels}) into named categories and print the
    per-operation breakdowns the paper's Figures 7 and 8 report. *)

type t

val create : unit -> t

val absorb : t -> Sim.Engine.ctx -> unit
(** [absorb t ctx] folds a finished fiber's label table and user/sys/idle
    totals into the aggregate. *)

val label : t -> string -> int64
(** Total cycles recorded under an exact label. *)

val labels : t -> (string * int64) list
(** All labels, descending by cycles. *)

val group : t -> prefixes:string list -> int64
(** [group t ~prefixes] sums every label that starts with one of
    [prefixes]. *)

val user : t -> int64
val sys : t -> int64
val idle : t -> int64

val per_op : int64 -> int -> float
(** [per_op total n] is cycles per operation as a float ([0.] if [n=0]). *)

val pp : Format.formatter -> t -> unit
