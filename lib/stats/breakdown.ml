type t = {
  tbl : (string, int64) Hashtbl.t;
  mutable u : int64;
  mutable s : int64;
  mutable i : int64;
}

let create () = { tbl = Hashtbl.create 32; u = 0L; s = 0L; i = 0L }

let absorb t (ctx : Sim.Engine.ctx) =
  List.iter
    (fun (k, v) ->
      let cur = try Hashtbl.find t.tbl k with Not_found -> 0L in
      Hashtbl.replace t.tbl k (Int64.add cur v))
    (Sim.Engine.labels ctx);
  t.u <- Int64.add t.u (Int64.of_int ctx.Sim.Engine.user);
  t.s <- Int64.add t.s (Int64.of_int ctx.Sim.Engine.sys);
  t.i <- Int64.add t.i (Int64.of_int ctx.Sim.Engine.idle)

let label t name = try Hashtbl.find t.tbl name with Not_found -> 0L

let labels t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> Int64.compare b a)

let group t ~prefixes =
  Hashtbl.fold
    (fun k v acc ->
      if List.exists (fun p -> String.length k >= String.length p
                               && String.sub k 0 (String.length p) = p) prefixes
      then Int64.add acc v
      else acc)
    t.tbl 0L

let user t = t.u
let sys t = t.s
let idle t = t.i

let per_op total n = if n = 0 then 0. else Int64.to_float total /. float_of_int n

let pp fmt t =
  Format.fprintf fmt "user=%Ld sys=%Ld idle=%Ld@." t.u t.s t.i;
  List.iter (fun (k, v) -> Format.fprintf fmt "  %-18s %Ld@." k v) (labels t)
