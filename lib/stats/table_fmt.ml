let print_table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row)
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * max 0 (ncols - 1))
  in
  Sim.Sink.print_newline ();
  Sim.Sink.printf "== %s ==\n" title;
  Sim.Sink.printf "%s\n" (line header);
  Sim.Sink.printf "%s\n" (String.make (max total_width (String.length title + 6)) '-');
  List.iter (fun r -> Sim.Sink.printf "%s\n" (line r)) rows

let kcycles c =
  if c >= 1000. then Printf.sprintf "%.1fK" (c /. 1000.)
  else Printf.sprintf "%.0f" c

let cycles c = Printf.sprintf "%Ld" c

let ops_per_sec x =
  if x >= 1e6 then Printf.sprintf "%.2f Mops/s" (x /. 1e6)
  else if x >= 1e3 then Printf.sprintf "%.1f Kops/s" (x /. 1e3)
  else Printf.sprintf "%.0f ops/s" x

let seconds s =
  if s >= 1.0 then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

let speedup x = Printf.sprintf "%.2fx" x

let usec_of_cycles c = Printf.sprintf "%.2f us" (c /. 2400.)

let pct x = Printf.sprintf "%.1f%%" x
