(* Human-readable rendering of an aqmetrics snapshot, for
   `aquila_cli report`.  Reuses the Table_fmt layout so metric tables
   line up with the experiment tables they appear next to. *)

let kind_str = function
  | Metrics.Registry.Counter -> "counter"
  | Metrics.Registry.Gauge -> "gauge"
  | Metrics.Registry.Histogram -> "histogram"

let print ?(title = "metrics") samples =
  let rows =
    Metrics.Export.flat_pairs samples
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.map (fun (k, v) -> [ k; Printf.sprintf "%d" v ])
  in
  if rows = [] then Sim.Sink.printf "\n== %s ==\n(no nonzero metrics)\n" title
  else Table_fmt.print_table ~title ~header:[ "metric"; "value" ] rows

(* Per-family summary with help text — the "what even exists" view. *)
let print_families ?(title = "metric families") samples =
  let seen = Hashtbl.create 32 in
  let rows =
    List.filter_map
      (fun (s : Metrics.Registry.sample) ->
        if Hashtbl.mem seen s.s_name then None
        else begin
          Hashtbl.add seen s.s_name ();
          Some [ s.s_name; kind_str s.s_kind; s.s_help ]
        end)
      samples
  in
  Table_fmt.print_table ~title ~header:[ "family"; "kind"; "help" ] rows
