(** Log-bucketed latency histogram (HdrHistogram-flavoured).

    Records cycle (or nanosecond) values into buckets with bounded
    relative error (~3 %), supporting the percentile reporting the paper
    uses (average, p99, p99.9) without storing every sample. *)

type t

val create : unit -> t

val record : t -> int64 -> unit
(** [record t v] adds sample [v] (clamped at 0). *)

val count : t -> int
val mean : t -> float
val max_value : t -> int64
val min_value : t -> int64

val percentile : t -> float -> int64
(** [percentile t p] is the {e quantile-at-least} estimate for [p] in
    [\[0,100\]]: the upper bound of the first bucket whose cumulative
    count reaches [ceil (n * p / 100)] samples — the smallest recorded
    bound [v] with at least a fraction [p] of samples [<= v] — clamped
    into [\[min_value, max_value\]].  No interpolation is performed
    inside a bucket, so the estimate can exceed the exact order
    statistic by up to one bucket width (~3 % relative error), never
    undershoot it by more than a bucket, and extreme quantiles on small
    [n] (e.g. p999 of 20 samples) return the exact maximum sample thanks
    to the clamp.  0 when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding all of [a]'s and [b]'s
    samples; neither input is modified.  Combines per-core latency
    distributions (e.g. from traces) into one. *)

val merge_into : src:t -> dst:t -> unit
(** [merge_into ~src ~dst] adds all of [src]'s buckets into [dst]. *)

val reset : t -> unit
