(** Linux kernel page cache model (the baseline Aquila replaces).

    Mirrors the 4.14-era design the paper profiles (Section 6.5): a radix
    tree per file whose {e insertions, removals and dirty tagging} are
    serialized by a single per-file [tree_lock]; a global LRU guarded by
    [lru_lock]; a global free list behind the zone lock; direct reclaim by
    the faulting thread in batches of 32 with kernel-IPI TLB shootdowns;
    and fault-time readahead.  Lookups are lock-free (RCU), as in Linux —
    the contention the paper measures comes from the update paths, which
    every miss and every eviction exercises.

    All devices are reached from kernel context ([In_kernel] entry —
    block layer plus device, no syscall). *)

type config = {
  frames : int;
  readahead : int;  (** pages read around a miss; Linux defaults to 32 (128 KiB) *)
  reclaim_batch : int;  (** direct-reclaim scan batch (32) *)
  writeback_merge : int;
  tree_shards : int;
      (** split each file's radix tree, [tree_lock] and dirty tags
          [tree_shards] ways by [page mod tree_shards].  [1] (the
          default) is the 4.14 single-tree model and byte-identical to
          the pre-sharded code; [> 1] gives shard-partitioned workloads
          disjoint slots so the tree_lock stops being the global
          serialization point. *)
}

val default_config : frames:int -> config

type t

val create :
  costs:Hw.Costs.t ->
  machine:Hw.Machine.t ->
  page_table:Hw.Page_table.t ->
  config ->
  t

val register_file :
  t -> file_id:int -> access:Sdevice.Access.t -> translate:(int -> int option) -> unit

val set_shoot_cores : t -> int list -> unit

val fault : t -> core:int -> key:Mcache.Pagekey.t -> vpn:int -> write:bool -> unit
(** Kernel fault service for [vpn] backed by [key] (the caller charges the
    ring-3 trap and VMA walk): page-cache lookup, miss handling with
    readahead, PTE installation, dirty tagging under [tree_lock].  Must
    run inside a fiber. *)

val buffered_read : t -> core:int -> key:Mcache.Pagekey.t -> int
(** [buffered_read t ~core ~key] is the page-cache half of a buffered
    [read] syscall for one page: lookup or fill, plus the copy-to-user
    cost.  Returns the pfn holding the data.  The caller charges the
    syscall entry. *)

val set_dirty_key : t -> key:Mcache.Pagekey.t -> unit
(** [set_dirty_key t ~key] tags a resident page dirty under its file's
    [tree_lock] (buffered-write path).  No-op if not resident. *)

val pfn_data : t -> int -> Bytes.t
val is_resident : t -> key:Mcache.Pagekey.t -> bool

val msync_file : t -> core:int -> file_id:int -> unit
(** Write back the file's dirty pages (merged, ascending offset). *)

val drop_file : t -> core:int -> file_id:int -> unit

val spawn_flusher : t -> eng:Sim.Engine.t -> ?hi:int -> ?lo:int -> ?core:int -> unit -> unit
(** [spawn_flusher t ~eng ()] starts the kernel's background write-back
    daemon: past [hi] dirty pages (default 256) it writes batches back —
    clearing dirty tags under each file's [tree_lock], contending with
    foreground faults — until below [lo] (default 64).  Models the
    aggressive write-back behaviour the paper contrasts with Aquila's
    lazy strategy. *)

val stop_flusher : t -> unit

(** {1 Statistics} *)

val fault_hits : t -> int
val misses : t -> int
val evictions : t -> int
val read_ios : t -> int
val writeback_ios : t -> int

val writeback_errors : t -> int
(** Pages whose write-back failed after retries.  On msync/flusher paths
    they are re-tagged dirty for a later retry; on the reclaim path the
    data is lost (the kernel's AS_EIO behaviour). *)

val sigbus_count : t -> int
(** Unrecoverable fill reads delivered as {!Fault.Sigbus}. *)

val tree_lock_contended : t -> int64
(** Cycles lost waiting on per-file [tree_lock]s (summed). *)

val lru_lock_contended : t -> int64
val dirty_pages : t -> int
