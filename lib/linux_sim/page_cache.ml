let psz = Hw.Defs.page_size

module Pagekey = Mcache.Pagekey

type config = {
  frames : int;
  readahead : int;
  reclaim_batch : int;
  writeback_merge : int;
  tree_shards : int;
}

let default_config ~frames =
  {
    frames;
    readahead = 32;
    reclaim_batch = 32;
    writeback_merge = 64;
    tree_shards = 1;
  }

type frame = {
  fno : int;
  data : Bytes.t;
  mutable key : int; (* -1 when free *)
  mutable vpn : int;
  mutable dirty : bool;
}

(* Per-file index state, split [tree_shards] ways by page (page mod
   tree_shards): each slot owns a radix subtree, its serializing lock and
   its dirty tags, so shard-partitioned workloads touch disjoint slots
   and the tree_lock stops being the global serialization point —
   which turns Fig. 5(b)'s contention from lock waiting into measurable
   cross-shard traffic.  [tree_shards = 1] (the default, and the 4.14
   model) is the single tree + single tree_lock the paper profiles. *)
type file_meta = {
  trees : frame Dstruct.Radix_tree.t array;
  tree_locks : Sim.Sync.Mutex.t array;
  dirty_tags : (int, unit) Hashtbl.t array; (* file pages tagged dirty *)
  access : Sdevice.Access.t;
  translate : int -> int option;
}

let tslot m page =
  let n = Array.length m.trees in
  if n = 1 then 0
  else begin
    let s = page mod n in
    if s < 0 then s + n else s
  end

let tree_of m page = m.trees.(tslot m page)
let tlock_of m page = m.tree_locks.(tslot m page)
let tags_of m page = m.dirty_tags.(tslot m page)

type t = {
  costs : Hw.Costs.t;
  machine : Hw.Machine.t;
  pt : Hw.Page_table.t;
  cfg : config;
  arr : frame array;
  free : int Queue.t;
  zone_lock : Sim.Sync.Mutex.t;
  lru : Dstruct.Clock_lru.t;
  lru_lock : Sim.Sync.Mutex.t;
  files : (int, file_meta) Hashtbl.t;
  inflight : (int, unit Sim.Sync.Ivar.t) Hashtbl.t;
  flusher_waitq : Sim.Sync.Waitq.t;
  mutable flusher : (int * int) option; (* (hi, lo) watermarks *)
  mutable shoot_cores : int list;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_read_ios : int;
  mutable s_wb_ios : int;
  mutable s_wb_errors : int;
  mutable s_sigbus : int;
  m_hits : Metrics.Registry.cell;
  m_misses : Metrics.Registry.cell;
  m_evictions : Metrics.Registry.cell;
  m_wb_ios : Metrics.Registry.cell;
  m_sigbus : Metrics.Registry.cell;
}

let create ~costs ~machine ~page_table cfg =
  if cfg.frames <= 0 then invalid_arg "Page_cache.create";
  let t =
    {
      costs;
      machine;
      pt = page_table;
      cfg;
      arr =
        Array.init cfg.frames (fun i ->
            { fno = i; data = Bytes.create psz; key = -1; vpn = -1; dirty = false });
      free = Queue.create ();
      zone_lock = Sim.Sync.Mutex.create ~name:"zone_lock" ();
      lru = Dstruct.Clock_lru.create ~nframes:cfg.frames;
      lru_lock = Sim.Sync.Mutex.create ~name:"lru_lock" ();
      files = Hashtbl.create 16;
      inflight = Hashtbl.create 64;
      flusher_waitq = Sim.Sync.Waitq.create ();
      flusher = None;
      shoot_cores = [];
      s_hits = 0;
      s_misses = 0;
      s_evictions = 0;
      s_read_ios = 0;
      s_wb_ios = 0;
      s_wb_errors = 0;
      s_sigbus = 0;
      m_hits =
        Metrics.Registry.counter ~help:"Linux page-cache hits"
          "linux_cache_hits";
      m_misses =
        Metrics.Registry.counter ~help:"Linux page-cache misses"
          "linux_cache_misses";
      m_evictions =
        Metrics.Registry.counter ~help:"Linux page-cache frames reclaimed"
          "linux_cache_evictions";
      m_wb_ios =
        Metrics.Registry.counter ~help:"Linux write-back I/Os"
          "linux_cache_wb_ios";
      m_sigbus =
        Metrics.Registry.counter ~help:"Linux faults surfaced as SIGBUS"
          "linux_cache_sigbus";
    }
  in
  for i = 0 to cfg.frames - 1 do
    Queue.add i t.free
  done;
  t

let register_file t ~file_id ~access ~translate =
  let n = max 1 t.cfg.tree_shards in
  let lock_name s =
    if n = 1 then Printf.sprintf "tree_lock[%d]" file_id
    else Printf.sprintf "tree_lock[%d.%d]" file_id s
  in
  Hashtbl.replace t.files file_id
    {
      trees = Array.init n (fun _ -> Dstruct.Radix_tree.create ());
      tree_locks =
        Array.init n (fun s -> Sim.Sync.Mutex.create ~name:(lock_name s) ());
      dirty_tags = Array.init n (fun _ -> Hashtbl.create 64);
      access;
      translate;
    }

let meta_of t file_id =
  match Hashtbl.find_opt t.files file_id with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Page_cache: unregistered file %d" file_id)

let set_shoot_cores t cores = t.shoot_cores <- cores

let delay_sys ?label c = Sim.Engine.delay ~cat:Sim.Engine.Sys ?label c

(* Lock-free (RCU) lookup, as in Linux find_get_page. *)
let lookup t key =
  let m = meta_of t (Pagekey.file_of key) in
  delay_sys ~label:"index" t.costs.Hw.Costs.radix_lookup;
  let page = Pagekey.page_of key in
  Dstruct.Radix_tree.find (tree_of m page) page

let shootdown_vpns t ~core vpns =
  match vpns with
  | [] -> ()
  | _ :: _ ->
      let c = t.costs in
      let own = (Hw.Machine.core t.machine core).Hw.Machine.tlb in
      let local =
        if List.length vpns > 33 then Hw.Tlb.flush own c
        else
          List.fold_left
            (fun acc vpn -> Int64.add acc (Hw.Tlb.invalidate_local own c ~vpn))
            0L vpns
      in
      let send =
        Hw.Ipi.shootdown t.machine c ~mode:Hw.Ipi.Kernel_ipi ~src:core
          ~targets:t.shoot_cores ~vpns
      in
      delay_sys ~label:"tlb" (Int64.add local send)

(* Write the given (key, frame) pairs back, merging device-contiguous
   runs.  Entries must already be guarded (tree entries removed or pages
   locked).  Suspends.  Returns the pairs whose write-back still failed
   after the access layer's retries; what to do with the casualties
   (re-tag dirty, or drop with data loss) is the caller's call. *)
let writeback_pairs t pairs =
  let wb0 = Sim.Probe.span_start () in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  let flush file dev_start run =
    match run with
    | [] -> []
    | _ ->
        let entries = List.rev run in
        let count = List.length entries in
        let scratch = Bytes.create (count * psz) in
        List.iteri
          (fun i (_, (fr : frame)) -> Bytes.blit fr.data 0 scratch (i * psz) psz)
          entries;
        let m = meta_of t file in
        (match
           Sdevice.Access.write_pages_result m.access ~page:dev_start ~count
             ~src:scratch
         with
        | Ok () ->
            t.s_wb_ios <- t.s_wb_ios + 1;
            Metrics.Registry.incr t.m_wb_ios;
            []
        | Error _ ->
            t.s_wb_errors <- t.s_wb_errors + count;
            if Trace.on () then Sim.Probe.instant ~cat:"fault" "wb_error";
            entries)
  in
  let state = ref None in
  let runs = ref [] in
  List.iter
    (fun (key, (fr : frame)) ->
      let file = Pagekey.file_of key and page = Pagekey.page_of key in
      let m = meta_of t file in
      match m.translate page with
      | None -> ()
      | Some dev -> (
          match !state with
          | Some (f, start, next, run)
            when f = file && dev = next && next - start < t.cfg.writeback_merge ->
              state := Some (f, start, next + 1, (key, fr) :: run)
          | Some prev ->
              runs := prev :: !runs;
              state := Some (file, dev, dev + 1, [ (key, fr) ])
          | None -> state := Some (file, dev, dev + 1, [ (key, fr) ])))
    sorted;
  (match !state with Some last -> runs := last :: !runs | None -> ());
  let failed =
    List.concat_map (fun (f, start, _n, run) -> flush f start run) (List.rev !runs)
  in
  if pairs <> [] then
    Sim.Probe.span_since ~cat:"linux"
      ~value:(Int64.of_int (List.length pairs))
      ~t0:wb0 "writeback";
  failed

(* Re-tag failed write-backs dirty so a later msync/flusher round retries
   them.  Only valid while the frames are still in the tree. *)
let retag_dirty t failed =
  List.iter
    (fun (key, (fr : frame)) ->
      let m = meta_of t (Pagekey.file_of key) in
      let page = Pagekey.page_of key in
      Sim.Sync.Mutex.lock (tlock_of m page);
      if not fr.dirty then begin
        fr.dirty <- true;
        Hashtbl.replace (tags_of m page) page ()
      end;
      Sim.Sync.Mutex.unlock (tlock_of m page))
    failed

(* Direct reclaim by the faulting thread: scan the global LRU under
   [lru_lock], then tear down each victim under its file's [tree_lock]. *)
let reclaim t ~core =
  let c = t.costs in
  let rc0 = Sim.Probe.span_start () in
  Sim.Sync.Mutex.lock t.lru_lock;
  let victims = Dstruct.Clock_lru.evict_candidates t.lru t.cfg.reclaim_batch in
  delay_sys ~label:"lru"
    (Int64.mul c.lru_update (Int64.of_int (max 1 (List.length victims))));
  Sim.Sync.Mutex.unlock t.lru_lock;
  let torn = ref [] in
  List.iter
    (fun fno ->
      let fr = t.arr.(fno) in
      if fr.key < 0 then ()
      else if Dstruct.Clock_lru.is_referenced t.lru fno then
        (* re-touched since selection: keep it *)
        Dstruct.Clock_lru.set_active t.lru fno true
      else begin
        let key = fr.key in
        let m = meta_of t (Pagekey.file_of key) in
        let page = Pagekey.page_of key in
        Sim.Sync.Mutex.lock (tlock_of m page);
        (* re-check under the lock *)
        if fr.key = key && not (Dstruct.Clock_lru.is_referenced t.lru fno) then begin
          ignore (Dstruct.Radix_tree.remove (tree_of m page) page);
          delay_sys ~label:"index" c.radix_update;
          (* object-based reverse-mapping walk to find the PTEs — the CPU
             cost FastMap [50] replaces with full reverse mappings *)
          delay_sys ~label:"evict" 900L;
          let was_dirty = fr.dirty in
          if was_dirty then begin
            Hashtbl.remove (tags_of m page) page;
            fr.dirty <- false
          end;
          let iv =
            if was_dirty then begin
              let iv = Sim.Sync.Ivar.create () in
              Hashtbl.replace t.inflight key iv;
              Some iv
            end
            else None
          in
          Sim.Sync.Mutex.unlock (tlock_of m page);
          torn := (key, fr, iv) :: !torn
        end
        else begin
          Sim.Sync.Mutex.unlock (tlock_of m page);
          Dstruct.Clock_lru.set_active t.lru fno true
        end
      end)
    victims;
  let torn = !torn in
  (* batched unmap + one shootdown *)
  let vpns =
    List.filter_map
      (fun (_, (fr : frame), _) ->
        if fr.vpn >= 0 then begin
          ignore (Hw.Page_table.unmap t.pt ~vpn:fr.vpn);
          delay_sys ~label:"evict" c.pte_update;
          let v = fr.vpn in
          fr.vpn <- -1;
          Some v
        end
        else None)
      torn
  in
  shootdown_vpns t ~core vpns;
  let dirty_pairs =
    List.filter_map
      (fun (key, fr, iv) -> match iv with Some _ -> Some (key, fr) | None -> None)
      torn
  in
  (* the victims are already torn out of the tree and unmapped; a failed
     write-back here loses the data, like the kernel dropping a page after
     AS_EIO — the error is counted, the frame is recycled regardless *)
  ignore (writeback_pairs t dirty_pairs);
  List.iter
    (fun (key, _, iv) ->
      match iv with
      | Some iv ->
          Hashtbl.remove t.inflight key;
          Sim.Sync.Ivar.fill iv ()
      | None -> ())
    torn;
  Sim.Sync.Mutex.lock t.zone_lock;
  List.iter
    (fun (_, (fr : frame), _) ->
      fr.key <- -1;
      Queue.add fr.fno t.free)
    torn;
  Sim.Sync.Mutex.unlock t.zone_lock;
  t.s_evictions <- t.s_evictions + List.length torn;
  Metrics.Registry.add t.m_evictions (List.length torn);
  if Trace.on () then
    Sim.Probe.span_since ~cat:"linux"
      ~value:(Int64.of_int (List.length torn))
      ~t0:rc0 "reclaim";
  torn <> []

let rec alloc_frame t ~core attempts =
  if attempts > 1000 then failwith "Page_cache: reclaim cannot make progress";
  Sim.Sync.Mutex.lock t.zone_lock;
  let r = Queue.take_opt t.free in
  Sim.Sync.Mutex.unlock t.zone_lock;
  match r with
  | Some fno -> t.arr.(fno)
  | None ->
      if not (reclaim t ~core) then Sim.Engine.idle_wait 2000L;
      alloc_frame t ~core (attempts + 1)

(* Fill [key] (and a readahead window) into the cache.  Assumes the caller
   placed an in-flight guard for [key].  Returns the frame. *)
let fill t ~core ~key =
  let c = t.costs in
  let file = Pagekey.file_of key and page = Pagekey.page_of key in
  let m = meta_of t file in
  let dev =
    match m.translate page with
    | Some d -> d
    | None -> invalid_arg "Page_cache: fault beyond end of file"
  in
  (* Collect the window: the faulting page plus readahead. *)
  let window = ref [ (key, dev, alloc_frame t ~core 0) ] in
  let n = ref 1 in
  let continue_ = ref (t.cfg.readahead > 1) in
  while !continue_ && !n < t.cfg.readahead do
    let p = page + !n in
    let k = Pagekey.make ~file ~page:p in
    match m.translate p with
    | Some d
      when d = dev + !n
           && (not (Dstruct.Radix_tree.mem (tree_of m p) p))
           && not (Hashtbl.mem t.inflight k) ->
        let fr = alloc_frame t ~core 0 in
        let iv = Sim.Sync.Ivar.create () in
        Hashtbl.replace t.inflight k iv;
        window := (k, d, fr) :: !window;
        ignore iv;
        incr n
    | _ -> continue_ := false
  done;
  let window = List.rev !window in
  let count = List.length window in
  let scratch =
    if count = 1 then (match window with [ (_, _, fr) ] -> fr.data | _ -> assert false)
    else Bytes.create (count * psz)
  in
  (match Sdevice.Access.read_pages m.access ~page:dev ~count ~dst:scratch with
  | () -> ()
  | exception (Fault.Io_error _ as e) ->
      (* unrecoverable media error: hand the window's frames back and wake
         any fiber piggybacked on a readahead page (it will retry and get
         its own verdict); [key]'s own guard is the caller's to release *)
      Sim.Sync.Mutex.lock t.zone_lock;
      List.iter (fun (_, _, (fr : frame)) -> Queue.add fr.fno t.free) window;
      Sim.Sync.Mutex.unlock t.zone_lock;
      List.iter
        (fun (k, _, _) ->
          if k <> key then
            match Hashtbl.find_opt t.inflight k with
            | Some iv ->
                Hashtbl.remove t.inflight k;
                Sim.Sync.Ivar.fill iv ()
            | None -> ())
        window;
      raise e);
  t.s_read_ios <- t.s_read_ios + 1;
  (* Insert each page under the tree_lock (add_to_page_cache). *)
  List.iteri
    (fun i (k, _, (fr : frame)) ->
      if count > 1 then Bytes.blit scratch (i * psz) fr.data 0 psz;
      fr.key <- k;
      fr.dirty <- false;
      fr.vpn <- -1;
      let kp = Pagekey.page_of k in
      Sim.Sync.Mutex.lock (tlock_of m kp);
      ignore (Dstruct.Radix_tree.insert (tree_of m kp) kp fr);
      (* radix insert plus memcg charge + node accounting, all under the
         lock, as in 4.14's add_to_page_cache_lru *)
      delay_sys ~label:"index" (Int64.add c.radix_update 600L);
      Sim.Sync.Mutex.unlock (tlock_of m kp);
      Sim.Sync.Mutex.lock t.lru_lock;
      Dstruct.Clock_lru.set_active t.lru fr.fno true;
      Dstruct.Clock_lru.touch t.lru fr.fno;
      delay_sys ~label:"lru" c.lru_update;
      Sim.Sync.Mutex.unlock t.lru_lock;
      if k <> key then begin
        (match Hashtbl.find_opt t.inflight k with
        | Some iv ->
            Hashtbl.remove t.inflight k;
            Sim.Sync.Ivar.fill iv ()
        | None -> ())
      end)
    window;
  match window with (_, _, fr) :: _ -> fr | [] -> assert false

let total_dirty t =
  Hashtbl.fold
    (fun _ m acc ->
      Array.fold_left (fun a tags -> a + Hashtbl.length tags) acc m.dirty_tags)
    t.files 0

let set_dirty t key (fr : frame) =
  let m = meta_of t (Pagekey.file_of key) in
  if not fr.dirty then begin
    let page = Pagekey.page_of key in
    Sim.Sync.Mutex.lock (tlock_of m page);
    fr.dirty <- true;
    Hashtbl.replace (tags_of m page) page ();
    delay_sys ~label:"dirty" t.costs.Hw.Costs.radix_update;
    Sim.Sync.Mutex.unlock (tlock_of m page);
    if Trace.on () then
      Sim.Probe.counter ~cat:"linux" "dirty_pages"
        (Int64.of_int (total_dirty t));
    match t.flusher with
    | Some (hi, _) when total_dirty t > hi ->
        ignore (Sim.Sync.Waitq.signal t.flusher_waitq)
    | _ -> ()
  end

let rec ensure_resident t ~core ~key =
  match lookup t key with
  | Some fr ->
      t.s_hits <- t.s_hits + 1;
      Metrics.Registry.incr t.m_hits;
      if Trace.on () then Sim.Probe.instant ~cat:"linux" "hit";
      Dstruct.Clock_lru.touch t.lru fr.fno;
      delay_sys ~label:"lru" t.costs.Hw.Costs.lru_update;
      fr
  | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some iv ->
          Sim.Sync.Ivar.read iv;
          ensure_resident t ~core ~key
      | None ->
          let iv = Sim.Sync.Ivar.create () in
          Hashtbl.replace t.inflight key iv;
          if Trace.on () then Sim.Probe.instant ~cat:"linux" "miss";
          let f0 = Sim.Probe.span_start () in
          let fr =
            try fill t ~core ~key
            with Fault.Io_error _ ->
              Hashtbl.remove t.inflight key;
              Sim.Sync.Ivar.fill iv ();
              t.s_sigbus <- t.s_sigbus + 1;
              Metrics.Registry.incr t.m_sigbus;
              (match Fault.active () with
              | Some p -> Fault.note_sigbus p
              | None -> ());
              if Trace.on () then Sim.Probe.instant ~cat:"fault" "sigbus";
              raise
                (Fault.Sigbus
                   { file = Pagekey.file_of key; page = Pagekey.page_of key })
          in
          Sim.Probe.span_since ~cat:"linux" ~t0:f0 "fill";
          Hashtbl.remove t.inflight key;
          Sim.Sync.Ivar.fill iv ();
          t.s_misses <- t.s_misses + 1;
          Metrics.Registry.incr t.m_misses;
          fr)

let fault t ~core ~key ~vpn ~write =
  let c = t.costs in
  let fr = ensure_resident t ~core ~key in
  fr.vpn <- vpn;
  Hw.Page_table.map t.pt ~vpn ~pfn:fr.fno ~writable:write;
  delay_sys ~label:"map" c.pte_update;
  if write then set_dirty t key fr

let buffered_read t ~core ~key =
  let c = t.costs in
  let fr = ensure_resident t ~core ~key in
  (* VFS + copy_to_user for one page *)
  delay_sys ~label:"copy" c.kernel_buffered_read;
  fr.fno

let set_dirty_key t ~key =
  let m = meta_of t (Pagekey.file_of key) in
  let page = Pagekey.page_of key in
  match Dstruct.Radix_tree.find (tree_of m page) page with
  | Some fr -> set_dirty t key fr
  | None -> ()

let pfn_data t pfn = t.arr.(pfn).data

let is_resident t ~key =
  let m = meta_of t (Pagekey.file_of key) in
  let page = Pagekey.page_of key in
  Dstruct.Radix_tree.mem (tree_of m page) page

let msync_file t ~core ~file_id =
  let c = t.costs in
  let m = meta_of t file_id in
  (* One lock acquisition per slot per msync (ascending slot order) keeps
     [tree_shards = 1] byte-identical to the single-tree model. *)
  let pairs =
    List.concat
      (List.init (Array.length m.trees) (fun s ->
           let lock = m.tree_locks.(s)
           and tree = m.trees.(s)
           and tags = m.dirty_tags.(s) in
           Sim.Sync.Mutex.lock lock;
           let pages = Hashtbl.fold (fun p () acc -> p :: acc) tags [] in
           let pairs =
             List.filter_map
               (fun p ->
                 match Dstruct.Radix_tree.find tree p with
                 | Some fr when fr.dirty ->
                     fr.dirty <- false;
                     Hashtbl.remove tags p;
                     delay_sys ~label:"dirty" c.radix_update;
                     Some (Pagekey.make ~file:file_id ~page:p, fr)
                 | _ -> None)
               (List.sort compare pages)
           in
           Sim.Sync.Mutex.unlock lock;
           pairs))
  in
  (* write-protect so future writes re-tag *)
  let vpns =
    List.filter_map
      (fun (_, (fr : frame)) ->
        if fr.vpn >= 0 then begin
          (try Hw.Page_table.set_writable t.pt ~vpn:fr.vpn false
           with Not_found -> ());
          delay_sys ~label:"map" c.pte_update;
          Some fr.vpn
        end
        else None)
      pairs
  in
  shootdown_vpns t ~core vpns;
  retag_dirty t (writeback_pairs t pairs)

let drop_file t ~core ~file_id =
  let c = t.costs in
  msync_file t ~core ~file_id;
  let m = meta_of t file_id in
  let entries =
    List.concat
      (List.init (Array.length m.trees) (fun s ->
           let lock = m.tree_locks.(s) and tree = m.trees.(s) in
           Sim.Sync.Mutex.lock lock;
           let entries =
             Dstruct.Radix_tree.fold (fun p fr acc -> (p, fr) :: acc) tree []
           in
           List.iter
             (fun (p, _) ->
               ignore (Dstruct.Radix_tree.remove tree p);
               delay_sys ~label:"index" c.radix_update)
             entries;
           Sim.Sync.Mutex.unlock lock;
           entries))
  in
  let vpns =
    List.filter_map
      (fun (_, (fr : frame)) ->
        if fr.vpn >= 0 then begin
          ignore (Hw.Page_table.unmap t.pt ~vpn:fr.vpn);
          let v = fr.vpn in
          fr.vpn <- -1;
          Some v
        end
        else None)
      entries
  in
  shootdown_vpns t ~core vpns;
  Sim.Sync.Mutex.lock t.zone_lock;
  List.iter
    (fun (_, (fr : frame)) ->
      Dstruct.Clock_lru.set_active t.lru fr.fno false;
      fr.key <- -1;
      fr.dirty <- false;
      Queue.add fr.fno t.free)
    entries;
  Sim.Sync.Mutex.unlock t.zone_lock

(* Background flusher (kswapd/bdi writeback): wakes past the [hi]
   watermark and writes dirty pages back until below [lo], clearing tags
   under each file's tree_lock — so, as in Linux, a writeback storm
   contends with foreground faults (Section 7.2's "aggressive and
   unpredictable traffic"). *)
let flush_some t ~core ~batch =
  let taken = ref [] in
  Hashtbl.iter
    (fun file_id m ->
      Array.iteri
        (fun s tags ->
          if List.length !taken < batch then begin
            let lock = m.tree_locks.(s) and tree = m.trees.(s) in
            Sim.Sync.Mutex.lock lock;
            let pages = Hashtbl.fold (fun p () acc -> p :: acc) tags [] in
            let pages = List.sort compare pages in
            List.iteri
              (fun i p ->
                if i < batch - List.length !taken then
                  match Dstruct.Radix_tree.find tree p with
                  | Some fr when fr.dirty ->
                      fr.dirty <- false;
                      Hashtbl.remove tags p;
                      delay_sys ~label:"dirty" t.costs.Hw.Costs.radix_update;
                      taken := (Pagekey.make ~file:file_id ~page:p, fr) :: !taken
                  | _ -> Hashtbl.remove tags p)
              pages;
            Sim.Sync.Mutex.unlock lock
          end)
        m.dirty_tags)
    t.files;
  let pairs = !taken in
  (* write-protect so later stores re-dirty *)
  let vpns =
    List.filter_map
      (fun (_, (fr : frame)) ->
        if fr.vpn >= 0 then begin
          (try Hw.Page_table.set_writable t.pt ~vpn:fr.vpn false
           with Not_found -> ());
          delay_sys ~label:"map" t.costs.Hw.Costs.pte_update;
          Some fr.vpn
        end
        else None)
      pairs
  in
  shootdown_vpns t ~core vpns;
  let failed = writeback_pairs t pairs in
  retag_dirty t failed;
  (* report pages actually cleaned, so an error storm (everything failing)
     reads as "no progress" and the flusher backs off to its waitq instead
     of spinning *)
  List.length pairs - List.length failed

let spawn_flusher t ~eng ?(hi = 256) ?(lo = 64) ?(core = 0) () =
  if t.flusher <> None then invalid_arg "Page_cache: flusher already running";
  t.flusher <- Some (hi, lo);
  ignore
    (Sim.Engine.spawn eng ~name:"kflushd" ~core ~daemon:true (fun () ->
         let continue_ = ref true in
         while !continue_ do
           Sim.Sync.Waitq.wait t.flusher_waitq;
           match t.flusher with
           | None -> continue_ := false
           | Some (_, lo) ->
               let progressing = ref true in
               while total_dirty t > lo && !progressing do
                 progressing := flush_some t ~core ~batch:32 > 0
               done
         done))

let stop_flusher t =
  t.flusher <- None;
  ignore (Sim.Sync.Waitq.signal t.flusher_waitq)

let fault_hits t = t.s_hits
let misses t = t.s_misses
let evictions t = t.s_evictions
let read_ios t = t.s_read_ios
let writeback_ios t = t.s_wb_ios
let writeback_errors t = t.s_wb_errors
let sigbus_count t = t.s_sigbus

let tree_lock_contended t =
  Hashtbl.fold
    (fun _ m acc ->
      Array.fold_left
        (fun a l -> Int64.add a (Sim.Sync.Mutex.contended_cycles l))
        acc m.tree_locks)
    t.files 0L

let lru_lock_contended t = Sim.Sync.Mutex.contended_cycles t.lru_lock

let dirty_pages t = total_dirty t
