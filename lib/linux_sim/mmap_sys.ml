let psz = Hw.Defs.page_size

module Pagekey = Mcache.Pagekey
module Vtree = Dstruct.Rbtree.Make (Int)

type config = { cache : Page_cache.config; vma_rb_cost_multiplier : int }

let default_config ~cache_frames =
  { cache = Page_cache.default_config ~frames:cache_frames; vma_rb_cost_multiplier = 1 }

type file = {
  fid : int;
  fname : string;
  size_pages : int;
  translate : int -> int option;
}

type area = { vstart : int; npages : int; afile : file; file_page0 : int }
type region = { r_area : area }

type t = {
  lcosts : Hw.Costs.t;
  lmachine : Hw.Machine.t;
  pt : Hw.Page_table.t;
  pc : Page_cache.t;
  vmas : area Vtree.t;
  mmap_sem : Sim.Sync.Mutex.t; (* held for updates; read side is a constant *)
  cfg : config;
  mutable next_vpn : int;
  mutable next_fid : int;
  mutable thread_cores : int list;
  mutable s_accesses : int;
  mutable s_faults : int;
}

let create ?(costs = Hw.Costs.default) ?machine cfg =
  let machine = match machine with Some m -> m | None -> Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  {
    lcosts = costs;
    lmachine = machine;
    pt;
    pc = Page_cache.create ~costs ~machine ~page_table:pt cfg.cache;
    vmas = Vtree.create ();
    mmap_sem = Sim.Sync.Mutex.create ~name:"mmap_sem" ();
    cfg;
    next_vpn = 256;
    next_fid = 1;
    thread_cores = [];
    s_accesses = 0;
    s_faults = 0;
  }

let costs t = t.lcosts
let machine t = t.lmachine
let page_cache t = t.pc

let enter_thread t =
  let ctx = Sim.Engine.self () in
  if not (List.mem ctx.Sim.Engine.core t.thread_cores) then begin
    t.thread_cores <- ctx.Sim.Engine.core :: t.thread_cores;
    Page_cache.set_shoot_cores t.pc t.thread_cores
  end

let attach_file t ~name ~access ~translate ~size_pages =
  let f = { fid = t.next_fid; fname = name; size_pages; translate } in
  ignore f.fname;
  t.next_fid <- t.next_fid + 1;
  Page_cache.register_file t.pc ~file_id:f.fid ~access ~translate;
  f

let file_id f = f.fid

let delay_sys ?label c = Sim.Engine.delay ~cat:Sim.Engine.Sys ?label c

let mmap t file ?(file_page0 = 0) ~npages () =
  if npages <= 0 || file_page0 < 0 || file_page0 + npages > file.size_pages then
    invalid_arg "Mmap_sys.mmap: range outside file";
  delay_sys ~label:"syscall" t.lcosts.Hw.Costs.syscall;
  Sim.Sync.Mutex.lock t.mmap_sem;
  let vstart = t.next_vpn in
  t.next_vpn <- t.next_vpn + npages + 1;
  let area = { vstart; npages; afile = file; file_page0 } in
  ignore (Vtree.insert t.vmas vstart area);
  delay_sys ~label:"vma" t.lcosts.Hw.Costs.vma_lookup;
  Sim.Sync.Mutex.unlock t.mmap_sem;
  { r_area = area }

let munmap t region =
  delay_sys ~label:"syscall" t.lcosts.Hw.Costs.syscall;
  Sim.Sync.Mutex.lock t.mmap_sem;
  ignore (Vtree.remove t.vmas region.r_area.vstart);
  delay_sys ~label:"vma" t.lcosts.Hw.Costs.vma_lookup;
  Sim.Sync.Mutex.unlock t.mmap_sem;
  (* tear down PTEs; pages stay in the page cache *)
  let core = (Sim.Engine.self ()).Sim.Engine.core in
  let vpns = ref [] in
  for p = 0 to region.r_area.npages - 1 do
    let vpn = region.r_area.vstart + p in
    match Hw.Page_table.unmap t.pt ~vpn with
    | Some _ ->
        delay_sys ~label:"munmap" t.lcosts.Hw.Costs.pte_update;
        vpns := vpn :: !vpns
    | None -> ()
  done;
  match !vpns with
  | [] -> ()
  | vpns ->
      let own = (Hw.Machine.core t.lmachine core).Hw.Machine.tlb in
      let local =
        if List.length vpns > 33 then Hw.Tlb.flush own t.lcosts
        else
          List.fold_left
            (fun acc vpn ->
              Int64.add acc (Hw.Tlb.invalidate_local own t.lcosts ~vpn))
            0L vpns
      in
      let send =
        Hw.Ipi.shootdown t.lmachine t.lcosts ~mode:Hw.Ipi.Kernel_ipi ~src:core
          ~targets:t.thread_cores ~vpns
      in
      delay_sys ~label:"tlb" (Int64.add local send)

let msync t region =
  delay_sys ~label:"syscall" t.lcosts.Hw.Costs.syscall;
  let core = (Sim.Engine.self ()).Sim.Engine.core in
  Page_cache.msync_file t.pc ~core ~file_id:region.r_area.afile.fid

let region_npages r = r.r_area.npages

(* VMA lookup under mmap_sem (read side modelled as a constant plus the
   red-black walk; write-side updates take the mutex). *)
let vma_lookup_cost t =
  let d = max 1 (Vtree.depth_estimate t.vmas * t.cfg.vma_rb_cost_multiplier) in
  Int64.add 120L (Int64.mul t.lcosts.Hw.Costs.vma_lookup (Int64.of_int (max 1 (d / 4))))

let rec touch_page ?(attempt = 0) t region ~page ~write buf =
  if page < 0 || page >= region.r_area.npages then
    invalid_arg "Mmap_sys: access outside region";
  if attempt > 100 then failwith "Mmap_sys: access cannot make progress (thrash)";
  let vpn = region.r_area.vstart + page in
  let core = (Sim.Engine.self ()).Sim.Engine.core in
  t.s_accesses <- t.s_accesses + 1;
  let irq = Hw.Machine.drain_irq t.lmachine ~core in
  Sim.Costbuf.add buf "irq" irq;
  let own = (Hw.Machine.core t.lmachine core).Hw.Machine.tlb in
  Sim.Costbuf.add buf "tlb_walk" (Hw.Tlb.access own t.lcosts ~vpn);
  match Hw.Page_table.find t.pt ~vpn with
  | Some pte when (not write) || pte.Hw.Page_table.writable ->
      if write then pte.Hw.Page_table.dirty <- true;
      pte.Hw.Page_table.pfn
  | _ ->
      t.s_faults <- t.s_faults + 1;
      Sim.Costbuf.charge buf;
      (* Page-fault begin/end span; value encodes the cause (1 = write). *)
      let ft0 = Sim.Probe.span_start () in
      (* ring 3 → ring 0 trap *)
      delay_sys ~label:"trap"
        (Hw.Domain_x.fault_transition_cost t.lcosts Hw.Domain_x.Ring3);
      delay_sys ~label:"fault_entry" t.lcosts.Hw.Costs.kernel_fault_entry;
      delay_sys ~label:"vma" (vma_lookup_cost t);
      let fpage = region.r_area.file_page0 + page in
      let key = Pagekey.make ~file:region.r_area.afile.fid ~page:fpage in
      Page_cache.fault t.pc ~core ~key ~vpn ~write;
      Sim.Probe.span_since ~cat:"linux"
        ~value:(if write then 1L else 0L)
        ~t0:ft0 "fault";
      (match Hw.Page_table.find t.pt ~vpn with
      | Some pte ->
          if write then pte.Hw.Page_table.dirty <- true;
          pte.Hw.Page_table.pfn
      | None -> touch_page ~attempt:(attempt + 1) t region ~page ~write buf)

let touch t region ~page ~write =
  let buf = Sim.Costbuf.create () in
  ignore (touch_page t region ~page ~write buf);
  Sim.Costbuf.charge buf

let touch_buf t region ~page ~write ~buf =
  ignore (touch_page t region ~page ~write buf)

let read t region ~off ~len ~dst =
  if off < 0 || len < 0 || off + len > region.r_area.npages * psz then
    invalid_arg "Mmap_sys.read: range outside region";
  if Bytes.length dst < len then invalid_arg "Mmap_sys.read: dst too small";
  let buf = Sim.Costbuf.create () in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let page = abs / psz and in_page = abs mod psz in
    let chunk = min (len - !pos) (psz - in_page) in
    let pfn = touch_page t region ~page ~write:false buf in
    let data = Page_cache.pfn_data t.pc pfn in
    Bytes.blit data in_page dst !pos chunk;
    pos := !pos + chunk
  done;
  Sim.Costbuf.charge buf

let write t region ~off ~src =
  let len = Bytes.length src in
  if off < 0 || off + len > region.r_area.npages * psz then
    invalid_arg "Mmap_sys.write: range outside region";
  let buf = Sim.Costbuf.create () in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let page = abs / psz and in_page = abs mod psz in
    let chunk = min (len - !pos) (psz - in_page) in
    let pfn = touch_page t region ~page ~write:true buf in
    let data = Page_cache.pfn_data t.pc pfn in
    Bytes.blit src !pos data in_page chunk;
    pos := !pos + chunk
  done;
  Sim.Costbuf.charge buf

let accesses t = t.s_accesses
let faults t = t.s_faults
