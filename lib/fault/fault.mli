(** aqfault: seeded, deterministic fault injection for the simulated stack.

    A {!Plan.t} is a bag of injection probabilities plus its own
    splitmix64 stream ({!Sim.Rng}), installed ambiently per domain like
    the tracer in {!Trace}: instrumented sites in [sdevice] consult the
    active plan on every device I/O, and the engine fires a {!Crash} at a
    chosen event ordinal through {!Sim.Engine.set_domain_event_hook}.
    Because every draw comes from the plan's private stream (never from
    the engine RNG) and sites are visited in deterministic virtual-time
    order, the same seed and spec inject byte-identical faults — across
    repeat runs and across [--jobs] fan-out degrees, where each job
    installs its own plan built from the same spec.

    With no plan installed anywhere, every hook reduces to one atomic
    load and branch ([Atomic.get live_plans = 0]); [bench/fault_smoke]
    gates that cost at <1% of the engine_perf fault loop. *)

type error =
  | Transient  (** retryable: the next attempt may succeed *)
  | Permanent  (** media failure: the page is gone for good *)

exception Crash of { at_event : int }
(** Power loss injected at an engine event boundary.  Propagates out of
    {!Sim.Engine.run}; volatile state (DRAM cache, translations) must be
    discarded by the harness ({!Mcache.Dram_cache.crash}) while device
    {!Sdevice.Pagestore} bytes that completed their writes survive. *)

exception Io_error of { dev : string; write : bool; page : int; error : error }
(** A device I/O that still failed after the access-layer retry policy. *)

exception Sigbus of { file : int; page : int }
(** Unrecoverable read error surfaced to the application — the simulated
    equivalent of the SIGBUS a real mmap delivers on a media error. *)

exception Read_only of string
(** Raised on write faults once a cache degraded to read-only mode after
    an error storm (see DESIGN.md §7): better than acknowledging writes
    that can no longer be made durable. *)

val error_to_string : error -> string

module Plan : sig
  type spec = {
    seed : int;  (** seeds the plan's private RNG stream *)
    read_error : float;  (** P(device read fails) per I/O *)
    write_error : float;  (** P(device write fails) per I/O *)
    permanent : float;  (** P(a failure marks the page bad for good) *)
    torn_write : float;  (** P(a failing multi-page write persists a prefix) *)
    latency_spike : float;  (** P(service time is multiplied) per I/O *)
    spike_factor : int;  (** service-time multiplier for spikes (>= 2) *)
    crash_at : int option;  (** crash at the first event ordinal >= this *)
    node : int option;
        (** restrict the crash to one cluster node: the raising engine
            hook is NOT armed; the cluster layer downs node [I] at the
            ordinal instead while other nodes run clean *)
  }

  val default : spec
  (** All probabilities zero, no crash: installing it injects nothing
      (used to measure hook overhead and RNG-draw determinism). *)

  val parse : string -> (spec, string) result
  (** [parse "seed=7,read=0.01,write=0.01,perm=0.1,torn=0.5,spike=0.02,spikex=8,crash=120000,node=2"]
      — comma-separated [key=value] over {!default}; unknown keys are an
      error.  The empty string is {!default}. *)

  val to_string : spec -> string
  (** Canonical round-trippable form of [parse]. *)

  type t

  val make : spec -> t
  val spec : t -> spec

  (** {1 Injection counters} *)

  val probes : t -> int
  (** Injection sites consulted (every device I/O under the plan). *)

  val read_errors : t -> int
  val write_errors : t -> int
  val torn_writes : t -> int
  val latency_spikes : t -> int
  val retries : t -> int
  val sigbus_count : t -> int
  val crashed : t -> bool

  val note_crash : t -> unit
  (** Record that the plan's crash fired.  Used by the cluster layer,
      which consumes node-targeted crashes itself instead of letting the
      engine hook raise. *)

  val counters : t -> (string * int) list
  (** All of the above as [(name, count)] rows, fixed order — two runs
      with the same seed and spec produce identical lists. *)
end

(** {1 Ambient plan (domain-local)} *)

val live_plans : int Atomic.t
(** Process-wide count of installed plans.  Hot sites check
    [Atomic.get live_plans > 0] before anything else, so the no-plan
    path is one load and branch. *)

val install : Plan.t -> unit
(** Installs [plan] as the calling domain's active plan (replacing any)
    and arms the domain's engine crash hook when [spec.crash_at] is set —
    engines created afterwards in this domain pick it up. *)

val clear : unit -> unit
(** Uninstalls the domain's plan and disarms the crash hook. *)

val active : unit -> Plan.t option
(** The calling domain's plan, or [None].  Cheap when no plan is
    installed in any domain. *)

val with_plan : Plan.t -> (unit -> 'a) -> 'a
(** [with_plan p f] runs [f] with [p] installed, restoring the previous
    plan (and crash hook) afterwards — exception-safe; [Crash] escapes
    after restoration. *)

(** {1 Injection decisions}

    Called by instrumented sites with the active plan in hand.  All
    randomness comes from the plan's stream; a zero-probability knob
    consumes no draws, so enabling one fault class does not shift
    another's stream. *)

type write_outcome =
  | W_ok
  | W_error of error
  | W_torn of int
      (** the first [n] pages of the span persisted, then the write
          failed ([0 <= n < count]); reported as a {!Transient} error *)

val draw_read : Plan.t -> dev:string -> page:int -> count:int -> error option
(** Decide the fate of a read of [count] device pages at [page].  Spans
    touching a page previously marked bad always fail {!Permanent}. *)

val draw_write : Plan.t -> dev:string -> page:int -> count:int -> write_outcome

val draw_spike : Plan.t -> int
(** Service-time multiplier for the next I/O: 1 almost always,
    [spike_factor] on a latency spike. *)

val note_retry : Plan.t -> unit
val note_sigbus : Plan.t -> unit
