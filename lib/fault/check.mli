(** Crash-consistency checker for the simulated stack (DESIGN.md §7).

    A {e combo} is one (workload seed, crash event ordinal) pair: the
    workload runs under a {!Fault.Plan} whose [crash_at] cuts the power at
    that engine event, the surviving device bytes are checked against a
    host-side durability oracle, and a fresh stack is then restarted over
    the same device to prove the durable data is reachable again.

    The oracle is the paper-level durability contract: every page/key
    acknowledged by a {e completed} msync must survive intact (no loss, no
    staleness, no intra-page tear), while writes that were never acked may
    land fully, partially (page-granular) or not at all.

    Crash points are spread over the event count observed in a probe run,
    which is also executed twice to assert determinism (identical event
    counts, injection counters and — for micro — device bytes). *)

type report = {
  combos : int;  (** (seed x crash point) runs, probe runs excluded *)
  crashes : int;  (** combos whose run actually hit the injected crash *)
  violations : string list;  (** durability-oracle failures, labelled *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val run_micro :
  ?spec:Fault.Plan.spec ->
  ?broken:bool ->
  ?policy:Mcache.Policy.kind ->
  seeds:int list ->
  points:int ->
  unit ->
  report
(** Versioned full-page writes through an Aquila mmap over an NVMe block
    device: [micro_ops] random single-page writes with an msync every few
    ops, [points] crash ordinals per seed.  [spec] adds error injection on
    top of the crash (its [seed]/[crash_at] fields are overridden per
    combo).  [broken:true] disables {!Mcache.Dram_cache.config.wb_protect}
    — a deliberately broken stack whose durability violations this checker
    must report (see the test suite). *)

val run_kreon :
  ?spec:Fault.Plan.spec ->
  ?policy:Mcache.Policy.kind ->
  seeds:int list ->
  points:int ->
  unit ->
  report
(** The same sweep over a {!Kvstore.Kreon_sim} instance on DAX pmem:
    random puts with periodic msync commits, crash, restart + recover,
    then every acked key must return its acked (or a later) value and no
    key may return bytes that were never written. *)
