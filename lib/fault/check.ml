(* Crash-consistency checker (DESIGN.md §7).

   Each combo runs a workload under a fault plan that cuts the power at a
   chosen engine event, then inspects the surviving device bytes against a
   host-side durability oracle, and finally restarts a fresh stack over
   the same device to prove the data is reachable again.  Two flavours:

   - micro: full-page versioned writes through an Aquila mmap over an
     NVMe block device.  Every page on the device must decode to a
     version v with synced(p) <= v <= latest(p), carry its own page
     number, and have an internally consistent fill pattern (no tear
     inside an acknowledged page).
   - kreon: a Kreon-sim instance over DAX pmem.  After crash + recover,
     every key acked by a completed msync must return its acked value or
     a later one; no key may return bytes that were never written.

   Everything is deterministic: the workload draws from its own seeded
   RNG, injection draws from the plan's stream, and crash points are
   event ordinals — so a (seed, crash point) pair is exactly repeatable. *)

let psz = Hw.Defs.page_size

type report = {
  combos : int;  (** (seed x crash point) runs, probe runs excluded *)
  crashes : int;  (** combos whose run actually hit the injected crash *)
  violations : string list;  (** durability-oracle failures, labelled *)
}

let ok r = r.violations = []

let pp_report ppf r =
  Fmt.pf ppf "faultcheck: %d combos, %d crashed, %d violations@." r.combos
    r.crashes (List.length r.violations);
  List.iter (fun v -> Fmt.pf ppf "  VIOLATION %s@." v) r.violations

(* ---- micro: versioned full-page writes over NVMe ---- *)

let micro_pages = 96
let micro_frames = 48
let micro_ops = 400
let micro_sync_every = 24

(* Page image: bytes 0-7 version (LE), 8-15 page number (LE), the rest a
   fill byte derived from (seed, page, version) — any torn or misdirected
   page decodes as corrupt. *)
let fill_byte ~seed ~page ~version = (seed + (page * 31) + (version * 7)) land 0xff

let encode_page ~seed ~page ~version =
  let b = Bytes.make psz (Char.chr (fill_byte ~seed ~page ~version)) in
  Bytes.set_int64_le b 0 (Int64.of_int version);
  Bytes.set_int64_le b 8 (Int64.of_int page);
  b

type decoded = Zero | Version of int | Corrupt of string

let decode_page ~seed ~page buf =
  let v = Int64.to_int (Bytes.get_int64_le buf 0) in
  if v = 0 then
    if Bytes.for_all (fun c -> c = '\000') buf then Zero
    else Corrupt "version 0 but page not blank"
  else
    let p = Int64.to_int (Bytes.get_int64_le buf 8) in
    if p <> page then Corrupt (Printf.sprintf "holds page %d's image" p)
    else begin
      let fb = Char.chr (fill_byte ~seed ~page ~version:v) in
      let rec consistent i =
        i >= psz || (Bytes.get buf i = fb && consistent (i + 1))
      in
      if consistent 16 then Version v
      else Corrupt (Printf.sprintf "torn fill at version %d" v)
    end

type run_result = {
  crashed : bool;
  events : int;  (* total events (probe) or the crash ordinal *)
  counters : (string * int) list;  (* plan injection counters *)
  store_digest : string;  (* device bytes after the run *)
  run_violations : string list;
}

let micro_store_digest store =
  let buf = Bytes.create psz in
  let all = Buffer.create (micro_pages * psz) in
  for p = 0 to micro_pages - 1 do
    Sdevice.Pagestore.read_page store ~page:p ~dst:buf;
    Buffer.add_bytes all buf
  done;
  Digest.string (Buffer.contents all)

let cache_policy policy cfg =
  {
    cfg with
    Aquila.Context.cache =
      { cfg.Aquila.Context.cache with Mcache.Dram_cache.policy };
  }

(* One run: workload under the plan (possibly crashing), oracle check on
   the raw device, then a restart read-back through a fresh stack. *)
let micro_once ~seed ~(spec : Fault.Plan.spec) ~broken ~policy () =
  let nvme = Sdevice.Nvme.create ~name:"check-nvme" () in
  let store = Sdevice.Block_dev.store nvme in
  let latest = Array.make micro_pages 0 in
  let synced = Array.make micro_pages 0 in
  let plan = Fault.Plan.make { spec with Fault.Plan.seed } in
  let crashed = ref false in
  let events = ref 0 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let translate p = if p < micro_pages then Some p else None in
  (try
     Fault.with_plan plan (fun () ->
         let eng = Sim.Engine.create () in
         let cfg =
           cache_policy policy
             (Aquila.Context.default_config ~cache_frames:micro_frames)
         in
         let cfg =
           if broken then
             {
               cfg with
               Aquila.Context.cache =
                 { cfg.Aquila.Context.cache with Mcache.Dram_cache.wb_protect = false };
             }
           else cfg
         in
         let ctx = Aquila.Context.create cfg in
         let access = Sdevice.Access.spdk_nvme (Aquila.Context.costs ctx) nvme in
         ignore
           (Sim.Engine.spawn eng ~core:0 (fun () ->
                Aquila.Context.enter_thread ctx;
                let file =
                  Aquila.Context.attach_file ctx ~name:"check.dat" ~access
                    ~translate ~size_pages:micro_pages
                in
                let region = Aquila.Context.mmap ctx file ~npages:micro_pages () in
                let rng = Sim.Rng.create (0x51ed2706 + seed) in
                let sync () =
                  (* only a completed msync acknowledges durability *)
                  try
                    Aquila.Context.msync ctx region;
                    Array.blit latest 0 synced 0 micro_pages
                  with Fault.Io_error _ -> ()
                in
                try
                  for i = 1 to micro_ops do
                    let p = Sim.Rng.int rng micro_pages in
                    let v = latest.(p) + 1 in
                    latest.(p) <- v;
                    (try
                       Aquila.Context.write ctx region ~off:(p * psz)
                         ~src:(encode_page ~seed ~page:p ~version:v)
                     with
                    | Fault.Sigbus _ ->
                        (* the store never happened: roll the oracle back *)
                        latest.(p) <- v - 1
                    | Fault.Read_only _ ->
                        latest.(p) <- v - 1;
                        raise Exit);
                    if i mod micro_sync_every = 0 then sync ()
                  done;
                  sync ()
                with Exit -> ()));
         Sim.Engine.run eng;
         events := Sim.Engine.events eng)
   with Fault.Crash { at_event } ->
     crashed := true;
     events := at_event);
  (* Oracle: inspect the device bytes that survived the cut. *)
  let buf = Bytes.create psz in
  for p = 0 to micro_pages - 1 do
    Sdevice.Pagestore.read_page store ~page:p ~dst:buf;
    match decode_page ~seed ~page:p buf with
    | Zero ->
        if synced.(p) > 0 then
          violation "page %d lost: blank on device but version %d was acked" p
            synced.(p)
    | Version v ->
        if v < synced.(p) then
          violation "page %d stale: device holds v%d but v%d was acked" p v
            synced.(p);
        if v > latest.(p) then
          violation "page %d from the future: device v%d, last written v%d" p v
            latest.(p)
    | Corrupt msg -> violation "page %d corrupt: %s" p msg
  done;
  (* Restart: a fresh stack over the surviving device (no plan installed)
     must serve exactly the durable bytes through the mmap path. *)
  let eng = Sim.Engine.create () in
  let ctx =
    Aquila.Context.create
      (cache_policy policy
         (Aquila.Context.default_config ~cache_frames:micro_frames))
  in
  let access = Sdevice.Access.spdk_nvme (Aquila.Context.costs ctx) nvme in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         Aquila.Context.enter_thread ctx;
         let file =
           Aquila.Context.attach_file ctx ~name:"check.dat" ~access ~translate
             ~size_pages:micro_pages
         in
         let region = Aquila.Context.mmap ctx file ~npages:micro_pages () in
         let got = Bytes.create psz in
         let want = Bytes.create psz in
         for p = 0 to micro_pages - 1 do
           Aquila.Context.read ctx region ~off:(p * psz) ~len:psz ~dst:got;
           Sdevice.Pagestore.read_page store ~page:p ~dst:want;
           if not (Bytes.equal got want) then
             violation "restart: mmap read of page %d differs from device" p
         done));
  (try Sim.Engine.run eng
   with e -> violation "restart verification failed: %s" (Printexc.to_string e));
  {
    crashed = !crashed;
    events = !events;
    counters = Fault.Plan.counters plan;
    store_digest = micro_store_digest store;
    run_violations = List.rev !violations;
  }

(* ---- kreon: KV store commit protocol over DAX pmem ---- *)

let kreon_ops = 240
let kreon_sync_every = 30
let kreon_keyspace = 60
let kreon_capacity_pages = 16384

let kreon_config =
  (* small L0 so the run spills through the levels a few times *)
  { Kvstore.Kreon_sim.l0_limit_entries = 48; level_ratio = 4; nlevels = 3 }

let kv_key rng = Printf.sprintf "key%03d" (Sim.Rng.int rng kreon_keyspace)
let kv_value ~seed ~op key = Printf.sprintf "v%04d.%d.%s" op seed key

let kreon_once ~seed ~(spec : Fault.Plan.spec) ~policy () =
  let pmem =
    Sdevice.Pmem.create ~name:"check-pmem"
      ~capacity_bytes:(Int64.of_int (kreon_capacity_pages * psz))
      ()
  in
  (* history: key -> (op, value) list, newest first; acked: key -> op of
     the value covered by the last *completed* msync *)
  let history : (string, (int * string) list) Hashtbl.t = Hashtbl.create 64 in
  let acked : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let pending : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let plan = Fault.Plan.make { spec with Fault.Plan.seed } in
  let crashed = ref false in
  let events = ref 0 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let mk_stack () =
    let ctx =
      Aquila.Context.create
        (cache_policy policy (Aquila.Context.default_config ~cache_frames:256))
    in
    let store = Blobstore.Store.create ~capacity_pages:kreon_capacity_pages () in
    let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
    (ctx, store, access)
  in
  let mk_db ctx store access =
    Kvstore.Kreon_sim.create ~ctx ~access ~store ~expected_records:kreon_ops
      ~value_bytes:24 ~config:kreon_config ()
  in
  (try
     Fault.with_plan plan (fun () ->
         let eng = Sim.Engine.create () in
         let ctx, store, access = mk_stack () in
         ignore
           (Sim.Engine.spawn eng ~core:0 (fun () ->
                Aquila.Context.enter_thread ctx;
                let db = mk_db ctx store access in
                let rng = Sim.Rng.create (0x9e3779b9 + seed) in
                try
                  for i = 1 to kreon_ops do
                    let k = kv_key rng in
                    let v = kv_value ~seed ~op:i k in
                    (* record the write intent first: a crash inside put
                       can land after an internal spill already committed
                       the log record, so the value may legitimately be
                       recovered even though put never returned *)
                    Hashtbl.replace history k
                      ((i, v)
                      :: (try Hashtbl.find history k with Not_found -> []));
                    Kvstore.Kreon_sim.put db k v;
                    Hashtbl.replace pending k i;
                    if i mod kreon_sync_every = 0 then begin
                      Kvstore.Kreon_sim.msync db;
                      Hashtbl.iter (Hashtbl.replace acked) pending;
                      Hashtbl.reset pending
                    end
                  done
                with Fault.Io_error _ | Fault.Sigbus _ | Fault.Read_only _ ->
                  (* storm severe enough to fail the store: stop the
                     workload; everything acked so far must still hold *)
                  ()));
         Sim.Engine.run eng;
         events := Sim.Engine.events eng)
   with Fault.Crash { at_event } ->
     crashed := true;
     events := at_event);
  (* Restart (no plan): a fresh stack over the surviving pmem — the same
     creation sequence reproduces the blob layout — then recover and
     check every key against the oracle. *)
  let eng = Sim.Engine.create () in
  let ctx, store, access = mk_stack () in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         Aquila.Context.enter_thread ctx;
         let db = mk_db ctx store access in
         (* a recover that blows up on the surviving bytes is itself a
            durability violation (e.g. a superblock committed ahead of
            the log pages it references) *)
         (try Kvstore.Kreon_sim.recover db
          with e ->
            violation "recover failed on surviving device: %s"
              (Printexc.to_string e);
            raise Exit);
         Hashtbl.iter
           (fun k hist ->
             let got = Kvstore.Kreon_sim.get db k in
             match Hashtbl.find_opt acked k with
             | Some acked_op -> (
                 (* acked: must return the acked value or a later one
                    (a spill or a crashed msync may have committed more) *)
                 match got with
                 | None -> violation "key %s lost: acked at op %d" k acked_op
                 | Some v ->
                     if
                       not
                         (List.exists
                            (fun (op, v') -> op >= acked_op && String.equal v v')
                            hist)
                     then
                       violation "key %s: %S matches no write since acked op %d"
                         k v acked_op)
             | None -> (
                 (* never acked: may be absent, or hold any value this
                    run actually wrote (an uncompleted commit may have
                    landed) — but never foreign bytes *)
                 match got with
                 | None -> ()
                 | Some v ->
                     if not (List.exists (fun (_, v') -> String.equal v v') hist)
                     then violation "key %s: recovered bytes %S never written" k v))
           history));
  (try Sim.Engine.run eng with
  | Exit -> ()
  | e -> violation "restart verification failed: %s" (Printexc.to_string e));
  {
    crashed = !crashed;
    events = !events;
    counters = Fault.Plan.counters plan;
    store_digest = "";
    run_violations = List.rev !violations;
  }

(* ---- sweep drivers ---- *)

let label mode seed crash_at msg =
  Printf.sprintf "[%s seed=%d%s] %s" mode seed
    (match crash_at with None -> "" | Some at -> Printf.sprintf " crash=%d" at)
    msg

(* Probe the full run twice (determinism check), then sweep [points]
   crash ordinals spread over the observed event count. *)
let sweep ~mode ~(spec : Fault.Plan.spec) ~seeds ~points once =
  let combos = ref 0 in
  let crashes = ref 0 in
  let violations = ref [] in
  let add ~seed ~crash_at msgs =
    violations :=
      List.rev_append (List.rev_map (label mode seed crash_at) msgs) !violations
  in
  List.iter
    (fun seed ->
      let spec = { spec with Fault.Plan.seed; crash_at = None } in
      let probe = once ~seed ~spec () in
      add ~seed ~crash_at:None probe.run_violations;
      let probe2 = once ~seed ~spec () in
      if
        probe.events <> probe2.events
        || probe.counters <> probe2.counters
        || not (String.equal probe.store_digest probe2.store_digest)
      then
        add ~seed ~crash_at:None
          [
            Printf.sprintf
              "nondeterministic: events %d/%d, device or counters differ"
              probe.events probe2.events;
          ];
      for i = 1 to points do
        let at = max 1 (probe.events * i / (points + 1)) in
        let spec = { spec with Fault.Plan.crash_at = Some at } in
        let r = once ~seed ~spec () in
        incr combos;
        if r.crashed then incr crashes;
        add ~seed ~crash_at:(Some at) r.run_violations
      done)
    seeds;
  { combos = !combos; crashes = !crashes; violations = List.rev !violations }

let run_micro ?(spec = Fault.Plan.default) ?(broken = false)
    ?(policy = Mcache.Policy.Clock) ~seeds ~points () =
  sweep
    ~mode:(if broken then "micro/broken" else "micro")
    ~spec ~seeds ~points
    (fun ~seed ~spec () -> micro_once ~seed ~spec ~broken ~policy ())

let run_kreon ?(spec = Fault.Plan.default) ?(policy = Mcache.Policy.Clock)
    ~seeds ~points () =
  sweep ~mode:"kreon" ~spec ~seeds ~points (fun ~seed ~spec () ->
      kreon_once ~seed ~spec ~policy ())
