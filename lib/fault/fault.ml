type error = Transient | Permanent

exception Crash of { at_event : int }
exception Io_error of { dev : string; write : bool; page : int; error : error }
exception Sigbus of { file : int; page : int }
exception Read_only of string

let error_to_string = function Transient -> "transient" | Permanent -> "permanent"

let () =
  Printexc.register_printer (function
    | Crash { at_event } -> Some (Printf.sprintf "Fault.Crash(at_event=%d)" at_event)
    | Io_error { dev; write; page; error } ->
        Some
          (Printf.sprintf "Fault.Io_error(%s %s page %d: %s)" dev
             (if write then "write" else "read")
             page (error_to_string error))
    | Sigbus { file; page } ->
        Some (Printf.sprintf "Fault.Sigbus(file %d page %d)" file page)
    | Read_only why -> Some (Printf.sprintf "Fault.Read_only(%s)" why)
    | _ -> None)

module Plan = struct
  type spec = {
    seed : int;
    read_error : float;
    write_error : float;
    permanent : float;
    torn_write : float;
    latency_spike : float;
    spike_factor : int;
    crash_at : int option;
    node : int option;
  }

  let default =
    {
      seed = 1;
      read_error = 0.0;
      write_error = 0.0;
      permanent = 0.0;
      torn_write = 0.0;
      latency_spike = 0.0;
      spike_factor = 8;
      crash_at = None;
      node = None;
    }

  let prob what v =
    if Float.is_nan v || v < 0.0 || v > 1.0 then
      Error (Printf.sprintf "fault plan: %s must be a probability in [0,1]" what)
    else Ok v

  let parse s =
    let ( let* ) = Result.bind in
    let fields =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun f -> f <> "")
    in
    List.fold_left
      (fun acc field ->
        let* sp = acc in
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "fault plan: expected key=value, got %S" field)
        | Some i ->
            let key = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            let* f =
              match float_of_string_opt v with
              | Some f -> Ok f
              | None -> Error (Printf.sprintf "fault plan: bad number %S for %s" v key)
            in
            (match key with
            | "seed" -> Ok { sp with seed = int_of_float f }
            | "read" ->
                let* p = prob "read" f in
                Ok { sp with read_error = p }
            | "write" ->
                let* p = prob "write" f in
                Ok { sp with write_error = p }
            | "perm" ->
                let* p = prob "perm" f in
                Ok { sp with permanent = p }
            | "torn" ->
                let* p = prob "torn" f in
                Ok { sp with torn_write = p }
            | "spike" ->
                let* p = prob "spike" f in
                Ok { sp with latency_spike = p }
            | "spikex" ->
                if f < 2.0 then Error "fault plan: spikex must be >= 2"
                else Ok { sp with spike_factor = int_of_float f }
            | "crash" ->
                if f < 0.0 then Error "fault plan: crash must be >= 0"
                else Ok { sp with crash_at = Some (int_of_float f) }
            | "node" ->
                if f < 0.0 then Error "fault plan: node must be >= 0"
                else Ok { sp with node = Some (int_of_float f) }
            | k -> Error (Printf.sprintf "fault plan: unknown key %S" k)))
      (Ok default) fields

  let to_string sp =
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "seed=%d" sp.seed);
    let fld k v = if v > 0.0 then Buffer.add_string b (Printf.sprintf ",%s=%g" k v) in
    fld "read" sp.read_error;
    fld "write" sp.write_error;
    fld "perm" sp.permanent;
    fld "torn" sp.torn_write;
    fld "spike" sp.latency_spike;
    if sp.latency_spike > 0.0 then
      Buffer.add_string b (Printf.sprintf ",spikex=%d" sp.spike_factor);
    (match sp.crash_at with
    | Some n -> Buffer.add_string b (Printf.sprintf ",crash=%d" n)
    | None -> ());
    (match sp.node with
    | Some i -> Buffer.add_string b (Printf.sprintf ",node=%d" i)
    | None -> ());
    Buffer.contents b

  type t = {
    sp : spec;
    rng : Sim.Rng.t;
    bad : (string * int, unit) Hashtbl.t; (* (device, page) failed permanently *)
    mutable n_probes : int;
    mutable n_read_errors : int;
    mutable n_write_errors : int;
    mutable n_torn : int;
    mutable n_spikes : int;
    mutable n_retries : int;
    mutable n_sigbus : int;
    mutable did_crash : bool;
  }

  let make sp =
    {
      sp;
      rng = Sim.Rng.create sp.seed;
      bad = Hashtbl.create 16;
      n_probes = 0;
      n_read_errors = 0;
      n_write_errors = 0;
      n_torn = 0;
      n_spikes = 0;
      n_retries = 0;
      n_sigbus = 0;
      did_crash = false;
    }

  let spec t = t.sp
  let probes t = t.n_probes
  let read_errors t = t.n_read_errors
  let write_errors t = t.n_write_errors
  let torn_writes t = t.n_torn
  let latency_spikes t = t.n_spikes
  let retries t = t.n_retries
  let sigbus_count t = t.n_sigbus
  let crashed t = t.did_crash
  let note_crash t = t.did_crash <- true

  let counters t =
    [
      ("probes", t.n_probes);
      ("read_errors", t.n_read_errors);
      ("write_errors", t.n_write_errors);
      ("torn_writes", t.n_torn);
      ("latency_spikes", t.n_spikes);
      ("retries", t.n_retries);
      ("sigbus", t.n_sigbus);
      ("crashed", if t.did_crash then 1 else 0);
    ]
end

(* Plans can be constructed on one domain and drawn from another (the
   fan-out makes them per job), so metric cells are bound lazily per
   domain instead of living in the plan record.  Draws only happen when
   injection is active, so the DLS lookup costs nothing in clean runs. *)
let m_injected_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter
        ~help:"faults injected (I/O errors, torn writes, latency spikes)"
        "fault_injected")

let m_retries_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"I/O retries caused by injected faults"
        "fault_retries")

let m_crashes_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"injected crashes fired" "fault_crashes")

let note_injected () = Metrics.Registry.incr (Domain.DLS.get m_injected_key)

let live_plans = Atomic.make 0

let plan_key : Plan.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let crash_hook (p : Plan.t) at =
  fun (n : int) ->
    if n >= at && not p.Plan.did_crash then begin
      p.Plan.did_crash <- true;
      Metrics.Registry.incr (Domain.DLS.get m_crashes_key);
      raise (Crash { at_event = n })
    end

(* A node-targeted plan ([node=I]) never arms the raising domain hook:
   the crash belongs to one cluster node, not the whole engine run, so
   the cluster layer consumes [crash_at]/[node] itself and downs just
   that node (calling {!Plan.note_crash} when it fires). *)
let arm p =
  match (p.Plan.sp.Plan.crash_at, p.Plan.sp.Plan.node) with
  | Some at, None -> Sim.Engine.set_domain_event_hook (Some (crash_hook p at))
  | _ -> Sim.Engine.set_domain_event_hook None

let install p =
  let slot = Domain.DLS.get plan_key in
  if !slot = None then Atomic.incr live_plans;
  slot := Some p;
  arm p

let clear () =
  let slot = Domain.DLS.get plan_key in
  if !slot <> None then Atomic.decr live_plans;
  slot := None;
  Sim.Engine.set_domain_event_hook None

let active () =
  if Atomic.get live_plans = 0 then None else !(Domain.DLS.get plan_key)

let with_plan p f =
  let slot = Domain.DLS.get plan_key in
  let saved = !slot in
  if saved = None then Atomic.incr live_plans;
  slot := Some p;
  arm p;
  Fun.protect
    ~finally:(fun () ->
      (if saved = None then
         match !slot with Some _ -> Atomic.decr live_plans | None -> ());
      slot := saved;
      match saved with
      | Some prev -> arm prev
      | None -> Sim.Engine.set_domain_event_hook None)
    f

type write_outcome = W_ok | W_error of error | W_torn of int

let span_bad (p : Plan.t) ~dev ~page ~count =
  let rec go i =
    if i >= count then false
    else if Hashtbl.mem p.Plan.bad (dev, page + i) then true
    else go (i + 1)
  in
  (* only pay the per-page lookups once some page actually went bad *)
  Hashtbl.length p.Plan.bad > 0 && go 0

let draw_permanence (p : Plan.t) ~dev ~page =
  if p.Plan.sp.Plan.permanent > 0.0 && Sim.Rng.float p.Plan.rng < p.Plan.sp.Plan.permanent
  then begin
    Hashtbl.replace p.Plan.bad (dev, page) ();
    Permanent
  end
  else Transient

let draw_read (p : Plan.t) ~dev ~page ~count =
  p.Plan.n_probes <- p.Plan.n_probes + 1;
  if span_bad p ~dev ~page ~count then begin
    p.Plan.n_read_errors <- p.Plan.n_read_errors + 1;
    note_injected ();
    Some Permanent
  end
  else if p.Plan.sp.Plan.read_error > 0.0 && Sim.Rng.float p.Plan.rng < p.Plan.sp.Plan.read_error
  then begin
    p.Plan.n_read_errors <- p.Plan.n_read_errors + 1;
    note_injected ();
    Some (draw_permanence p ~dev ~page)
  end
  else None

let draw_write (p : Plan.t) ~dev ~page ~count =
  p.Plan.n_probes <- p.Plan.n_probes + 1;
  if span_bad p ~dev ~page ~count then begin
    p.Plan.n_write_errors <- p.Plan.n_write_errors + 1;
    note_injected ();
    W_error Permanent
  end
  else if
    p.Plan.sp.Plan.write_error > 0.0
    && Sim.Rng.float p.Plan.rng < p.Plan.sp.Plan.write_error
  then begin
    p.Plan.n_write_errors <- p.Plan.n_write_errors + 1;
    note_injected ();
    if
      count > 1
      && p.Plan.sp.Plan.torn_write > 0.0
      && Sim.Rng.float p.Plan.rng < p.Plan.sp.Plan.torn_write
    then begin
      p.Plan.n_torn <- p.Plan.n_torn + 1;
      W_torn (Sim.Rng.int p.Plan.rng count)
    end
    else W_error (draw_permanence p ~dev ~page)
  end
  else W_ok

let draw_spike (p : Plan.t) =
  if
    p.Plan.sp.Plan.latency_spike > 0.0
    && Sim.Rng.float p.Plan.rng < p.Plan.sp.Plan.latency_spike
  then begin
    p.Plan.n_spikes <- p.Plan.n_spikes + 1;
    note_injected ();
    max 2 p.Plan.sp.Plan.spike_factor
  end
  else 1

let note_retry (p : Plan.t) =
  p.Plan.n_retries <- p.Plan.n_retries + 1;
  Metrics.Registry.incr (Domain.DLS.get m_retries_key)
let note_sigbus (p : Plan.t) = p.Plan.n_sigbus <- p.Plan.n_sigbus + 1
