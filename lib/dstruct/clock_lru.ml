type t = {
  referenced : Bytes.t;
  active : Bytes.t;
  pinned : Bytes.t;
  nframes : int;
  mutable hand : int;
  mutable nactive : int;
}

let create ~nframes =
  if nframes <= 0 then invalid_arg "Clock_lru.create: nframes";
  {
    referenced = Bytes.make nframes '\000';
    active = Bytes.make nframes '\000';
    pinned = Bytes.make nframes '\000';
    nframes;
    hand = 0;
    nactive = 0;
  }

let check t f = if f < 0 || f >= t.nframes then invalid_arg "Clock_lru: bad frame"

let get b f = Bytes.unsafe_get b f <> '\000'
let set b f v = Bytes.unsafe_set b f (if v then '\001' else '\000')

let touch t f =
  check t f;
  set t.referenced f true

let set_active t f b =
  check t f;
  if get t.active f <> b then begin
    set t.active f b;
    t.nactive <- (if b then t.nactive + 1 else t.nactive - 1)
  end

let set_pinned t f b =
  check t f;
  set t.pinned f b

let is_active t f =
  check t f;
  get t.active f

let evict_candidates t n =
  let victims = ref [] in
  let found = ref 0 in
  let steps = ref 0 in
  let max_steps = 2 * t.nframes in
  while !found < n && !steps < max_steps do
    let f = t.hand in
    t.hand <- (t.hand + 1) mod t.nframes;
    incr steps;
    if get t.active f && not (get t.pinned f) then begin
      if get t.referenced f then set t.referenced f false
      else begin
        set t.active f false;
        t.nactive <- t.nactive - 1;
        victims := f :: !victims;
        incr found
      end
    end
  done;
  List.rev !victims

let active_count t = t.nactive

let is_referenced t f =
  check t f;
  get t.referenced f

let retire t f =
  check t f;
  set_active t f false;
  set t.referenced f false;
  set t.pinned f false
