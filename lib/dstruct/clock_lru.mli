(** CLOCK-based LRU approximation over a fixed set of frames.

    Aquila "chooses which pages to evict via an approximation of LRU"
    updated on page faults (Section 3.2).  Frames are integers in
    [\[0, nframes)].  A fault on a resident frame sets its reference bit;
    the eviction scan sweeps the clock hand, clearing reference bits and
    collecting frames whose bit is already clear, skipping pinned and
    inactive frames. *)

type t

val create : nframes:int -> t

val touch : t -> int -> unit
(** [touch t f] marks frame [f] recently used (fault-driven). *)

val set_active : t -> int -> bool -> unit
(** [set_active t f b] includes/excludes [f] from the eviction scan
    (inactive = free or not holding a cache page). *)

val set_pinned : t -> int -> bool -> unit
(** Pinned frames (I/O in flight) are skipped by the scan. *)

val is_active : t -> int -> bool

val evict_candidates : t -> int -> int list
(** [evict_candidates t n] sweeps the hand and returns up to [n] victim
    frames in scan order, deactivating each.  Returns fewer than [n] only
    when the scan cannot find enough unreferenced frames in two full
    sweeps. *)

val active_count : t -> int

val is_referenced : t -> int -> bool
(** [is_referenced t f] reads [f]'s reference bit (reclaim re-check). *)

val retire : t -> int -> unit
(** [retire t f] removes every trace of [f] from the structure: inactive,
    reference bit cleared, unpinned.  Used when a frame leaves the cache
    entirely (shrink) so a later re-add ([grow]) starts from a clean
    slate rather than inheriting a stale reference bit. *)
