(** SPDK-Blobstore-style flat namespace of blobs (Section 3.3, [60]).

    A blobstore manages the page space of one device as fixed-size
    clusters.  Blobs are identified by a unique id, can be created,
    resized and deleted at runtime, and carry extended attributes.  Blob
    pages translate to device pages through the blob's cluster list, so a
    resized blob need not be contiguous on the device.

    This is pure space management: I/O goes through the owning device's
    {!Sdevice.Access} method using the page numbers translated here. *)

type t
type blob

val create : capacity_pages:int -> ?cluster_pages:int -> ?shards:int -> unit -> t
(** [create ~capacity_pages ()] manages a device of that many pages.
    [cluster_pages] defaults to 256 (1 MiB clusters).  [shards] (default
    1) partitions the free-cluster pool by [cluster mod shards]: a
    shard-owned driver allocates blobs on its own partition
    ({!create_blob}'s [?shard]) and frees return each cluster to its
    static owner, so the allocator is not shared state in partitioned
    runs.  [shards = 1] is byte-identical to the unsharded store. *)

val cluster_pages : t -> int
val capacity_pages : t -> int
val free_pages : t -> int

val shards : t -> int

val shard_free_pages : t -> int -> int
(** [shard_free_pages t s] is shard [s]'s remaining partition, in pages
    (sums to {!free_pages}). *)

val create_blob : t -> ?name:string -> ?shard:int -> pages:int -> unit -> blob
(** [create_blob t ~pages ()] allocates a blob with room for [pages]
    pages (rounded up to whole clusters).  [shard] (default 0) selects
    the free-list partition clusters are preferred from; an exhausted
    partition falls back to stealing from the others in ascending
    [(shard + k) mod shards] order — deterministic, so allocation stays
    a pure function of store history at any shard count.  Raises
    [Failure] when the whole store is full. *)

val open_blob : t -> int -> blob
(** [open_blob t id] finds an existing blob.  Raises [Not_found]. *)

val blob_id : blob -> int
val blob_name : blob -> string option
val blob_pages : blob -> int

val blob_shard : blob -> int
(** The allocation shard passed at {!create_blob}; {!resize} growth
    prefers the same partition. *)

val resize : t -> blob -> pages:int -> unit
(** [resize t b ~pages] grows or shrinks [b]. *)

val delete : t -> blob -> unit
(** [delete t b] returns [b]'s clusters to the free pool. *)

val set_xattr : blob -> string -> string -> unit
val get_xattr : blob -> string -> string option

val device_page : blob -> int -> int
(** [device_page b p] is the device page backing blob page [p].  Raises
    [Invalid_argument] if [p] is out of range. *)

val contiguous_run : blob -> int -> int
(** [contiguous_run b p] is the number of blob pages starting at [p] that
    are physically contiguous on the device — the largest single I/O that
    can cover them. *)

val blob_count : t -> int
