type blob = {
  id : int;
  bname : string option;
  bcl_pages : int; (* pages per cluster, copied from the store *)
  home : int; (* allocation shard clusters are preferred from *)
  mutable clusters : int array; (* cluster indices, in blob order *)
  mutable pages : int;
  xattrs : (string, string) Hashtbl.t;
}

(* Free clusters are partitioned into [shards] lists by a static map
   (cluster mod shards): a shard-owned driver allocates and frees on its
   own list without touching peers, so the allocator stops being shared
   state in partitioned runs.  Frees always return a cluster to its
   static owner — whichever shard releases it — so the lists are a pure
   function of the alloc/free history, independent of which domain ran
   the caller.  [shards = 1] is byte-identical to the old single list. *)
type t = {
  cl_pages : int;
  total_clusters : int;
  free : int list array; (* free cluster indices, per allocation shard *)
  nfree : int array;
  blobs : (int, blob) Hashtbl.t;
  mutable next_id : int;
}

let create ~capacity_pages ?(cluster_pages = 256) ?(shards = 1) () =
  if capacity_pages <= 0 || cluster_pages <= 0 then
    invalid_arg "Blobstore.create";
  if shards < 1 then invalid_arg "Blobstore.create: shards must be >= 1";
  let total = capacity_pages / cluster_pages in
  let free = Array.make shards [] in
  (* build each list in descending cluster order so every shard's head
     comes out ascending *)
  for c = total - 1 downto 0 do
    free.(c mod shards) <- c :: free.(c mod shards)
  done;
  let nfree = Array.make shards 0 in
  for c = 0 to total - 1 do
    nfree.(c mod shards) <- nfree.(c mod shards) + 1
  done;
  {
    cl_pages = cluster_pages;
    total_clusters = total;
    free;
    nfree;
    blobs = Hashtbl.create 64;
    next_id = 1;
  }

let cluster_pages t = t.cl_pages
let capacity_pages t = t.total_clusters * t.cl_pages
let shards t = Array.length t.free
let total_free t = Array.fold_left ( + ) 0 t.nfree
let free_pages t = total_free t * t.cl_pages
let shard_free_pages t s = t.nfree.(s) * t.cl_pages

let clusters_for t pages = (pages + t.cl_pages - 1) / t.cl_pages

let owner t c = c mod Array.length t.free

let free_cluster t c =
  let s = owner t c in
  t.free.(s) <- c :: t.free.(s);
  t.nfree.(s) <- t.nfree.(s) + 1

(* Take [n] clusters preferring shard [home]; when its list runs dry,
   steal from the other shards in ascending (home + k) mod shards order —
   a deterministic fallback, so allocation stays a pure function of the
   store history even when a shard overflows its partition. *)
let take_clusters t ~home n =
  if n > total_free t then failwith "Blobstore: out of space";
  let ns = Array.length t.free in
  let taken = ref [] and remaining = ref n in
  let k = ref 0 in
  while !remaining > 0 && !k < ns do
    let s = (home + !k) mod ns in
    let rec go acc r free =
      if r = 0 then (acc, free, 0)
      else
        match free with
        | [] -> (acc, [], r)
        | c :: rest -> go (c :: acc) (r - 1) rest
    in
    let got, rest, left = go [] !remaining t.free.(s) in
    t.free.(s) <- rest;
    t.nfree.(s) <- t.nfree.(s) - (!remaining - left);
    (* [got] is this segment reversed; keep the whole accumulator
       reversed and flip once at the end *)
    taken := got @ !taken;
    remaining := left;
    incr k
  done;
  if !remaining > 0 then failwith "Blobstore: out of space";
  Array.of_list (List.rev !taken)

let create_blob t ?name ?(shard = 0) ~pages () =
  let ns = Array.length t.free in
  if shard < 0 || shard >= ns then
    invalid_arg
      (Printf.sprintf "Blobstore.create_blob: shard %d outside [0, %d)" shard ns);
  let ncl = clusters_for t pages in
  let clusters = take_clusters t ~home:shard ncl in
  let b =
    {
      id = t.next_id;
      bname = name;
      bcl_pages = t.cl_pages;
      home = shard;
      clusters;
      pages;
      xattrs = Hashtbl.create 4;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.blobs b.id b;
  b

let open_blob t id =
  match Hashtbl.find_opt t.blobs id with
  | Some b -> b
  | None -> raise Not_found

let blob_id b = b.id
let blob_name b = b.bname
let blob_pages b = b.pages
let blob_shard b = b.home

let resize t b ~pages =
  let have = Array.length b.clusters in
  let need = clusters_for t pages in
  if need > have then begin
    let extra = take_clusters t ~home:b.home (need - have) in
    b.clusters <- Array.append b.clusters extra
  end
  else if need < have then begin
    for i = need to have - 1 do
      free_cluster t b.clusters.(i)
    done;
    b.clusters <- Array.sub b.clusters 0 need
  end;
  b.pages <- pages

let delete t b =
  Array.iter (fun c -> free_cluster t c) b.clusters;
  b.clusters <- [||];
  b.pages <- 0;
  Hashtbl.remove t.blobs b.id

let set_xattr b k v = Hashtbl.replace b.xattrs k v
let get_xattr b k = Hashtbl.find_opt b.xattrs k

let device_page b p =
  if p < 0 || p >= b.pages then invalid_arg "Blobstore.device_page: out of range";
  let cl = p / b.bcl_pages and off = p mod b.bcl_pages in
  (b.clusters.(cl) * b.bcl_pages) + off

let contiguous_run b p =
  if p < 0 || p >= b.pages then invalid_arg "Blobstore.contiguous_run: out of range";
  let rec go q run =
    if q >= b.pages then run
    else if q mod b.bcl_pages <> 0 then go (q + 1) (run + 1)
    else
      (* crossing into cluster q/bcl_pages: contiguous only if adjacent *)
      let prev_cl = b.clusters.((q - 1) / b.bcl_pages) in
      let this_cl = b.clusters.(q / b.bcl_pages) in
      if this_cl = prev_cl + 1 then go (q + 1) (run + 1) else run
  in
  go (p + 1) 1

let blob_count t = Hashtbl.length t.blobs
