(* Exporters over Registry snapshots.  All output is derived from the
   sorted snapshot, so files written at the end of a run are
   byte-identical regardless of [--jobs] fan-out. *)

(* RFC 4180 CSV field: quote when the field contains a separator, a
   quote, or a line break; embedded quotes double.  Shared with the
   Trace CSV exporter. *)
let csv_field s =
  let needs =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* "name" or "name{k=v,k2=v2}" — no dots, so bench/perf_gate sees the
   whole key as one gateable leaf. *)
let key ?(suffix = "") (s : Registry.sample) =
  match s.s_labels with
  | [] -> s.s_name ^ suffix
  | labels ->
      Printf.sprintf "%s%s{%s}" s.s_name suffix
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

(* Flat (key, value) pairs: one per counter/gauge series, two
   (_count/_sum) per histogram series.  Sorted by key. *)
let flat_pairs samples =
  List.concat_map
    (fun (s : Registry.sample) ->
      match s.s_kind with
      | Registry.Counter | Registry.Gauge -> [ (key s, s.s_value) ]
      | Registry.Histogram ->
          [ (key ~suffix:"_count" s, s.s_count); (key ~suffix:"_sum" s, s.s_value) ])
    samples
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let json samples =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  let pairs = flat_pairs samples in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\": %d%s\n" (json_escape k) v
           (if i < List.length pairs - 1 then "," else "")))
    pairs;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Prometheus text exposition. *)

let prom_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
              labels))

let prometheus samples =
  let b = Buffer.create 1024 in
  let last = ref "" in
  List.iter
    (fun (s : Registry.sample) ->
      if s.s_name <> !last then begin
        last := s.s_name;
        if s.s_help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" s.s_name (prom_escape s.s_help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.s_name
             (match s.s_kind with
             | Registry.Counter -> "counter"
             | Registry.Gauge -> "gauge"
             | Registry.Histogram -> "histogram"))
      end;
      match s.s_kind with
      | Registry.Counter | Registry.Gauge ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" s.s_name (prom_labels s.s_labels)
               s.s_value)
      | Registry.Histogram ->
          (* cumulative buckets: bucket k covers v <= 2^(k+1)-1 *)
          let cum = ref 0 in
          List.iter
            (fun (k, n) ->
              cum := !cum + n;
              let le = string_of_int ((1 lsl (k + 1)) - 1) in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                   (prom_labels ~extra:("le", le) s.s_labels)
                   !cum))
            s.s_buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" s.s_name
               (prom_labels ~extra:("le", "+Inf") s.s_labels)
               s.s_count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" s.s_name (prom_labels s.s_labels)
               s.s_value);
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.s_name (prom_labels s.s_labels)
               s.s_count))
    samples;
  Buffer.contents b

let to_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Extension-driven choice used by --metrics-out: .prom/.txt write
   Prometheus exposition, anything else the flat JSON snapshot. *)
let write ~path samples =
  let prom =
    Filename.check_suffix path ".prom" || Filename.check_suffix path ".txt"
  in
  to_file path (if prom then prometheus samples else json samples)
