(* aqmetrics registry: process-wide named metric families, per-domain
   flat int arrays for the hot path.

   Registration (finding a family, binding a series of labels to a slot)
   is a cold path under one global mutex; call sites do it once when a
   component is created and keep the returned cell.  An increment is then
   one unboxed int store into the calling domain's flat array — no
   allocation, no hashing, no atomics — so the counters can stay on in
   production runs and benchmarks alike.

   Each domain owns its own array (created lazily through DLS); arrays of
   finished domains stay registered, so a snapshot after a [--jobs N]
   fan-out merges every worker's contribution by summation.  Sums are
   independent of which domain ran which job, and the snapshot is sorted
   by (name, labels), so exported metrics are byte-identical at any
   parallelism degree. *)

type kind = Counter | Gauge | Histogram

(* Histogram series occupy [2 + hbuckets] consecutive slots:
   [count; sum; bucket_0 .. bucket_(hbuckets-1)] where bucket k counts
   observations v with 2^k <= v < 2^(k+1) (v <= 1 lands in bucket 0). *)
let hbuckets = 62

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_label_names : string list; (* sorted *)
  mutable f_series : (string list * int) list; (* label values -> base slot *)
}

type store = { mutable a : int array }

(* ---- global state (all mutation under [mu]) ---- *)

let mu = Mutex.create ()
let families : (string, family) Hashtbl.t = Hashtbl.create 64
let next_slot = ref 0
let stores : store list ref = ref []

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { a = Array.make 256 0 } in
      Mutex.lock mu;
      stores := s :: !stores;
      Mutex.unlock mu;
      s)

let ensure_size (s : store) n =
  if n > Array.length s.a then begin
    let na = Array.make (max n (2 * Array.length s.a)) 0 in
    Array.blit s.a 0 na 0 (Array.length s.a);
    s.a <- na
  end

(* ---- registration (cold path) ---- *)

let canonical labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let family_of ~kind ~help ~label_names name =
  match Hashtbl.find_opt families name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: family %S re-registered with another kind"
             name);
      if f.f_label_names <> label_names then
        invalid_arg
          (Printf.sprintf
             "Metrics: family %S re-registered with other label names" name);
      f
  | None ->
      let f =
        { f_name = name; f_help = help; f_kind = kind; f_label_names = label_names;
          f_series = [] }
      in
      Hashtbl.add families name f;
      f

let slots_per_series = function
  | Counter | Gauge -> 1
  | Histogram -> 2 + hbuckets

let series_slot f label_values =
  match List.assoc_opt label_values f.f_series with
  | Some slot -> slot
  | None ->
      let slot = !next_slot in
      next_slot := slot + slots_per_series f.f_kind;
      f.f_series <- (label_values, slot) :: f.f_series;
      slot

let check_name name =
  if name = "" then invalid_arg "Metrics: empty family name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf "Metrics: family name %S: invalid character" name))
    name

let register ~kind ?(help = "") ?(labels = []) name =
  check_name name;
  let labels = canonical labels in
  let label_names = List.map fst labels in
  let label_values = List.map snd labels in
  Mutex.lock mu;
  let slot =
    match
      let f = family_of ~kind ~help ~label_names name in
      series_slot f label_values
    with
    | slot ->
        Mutex.unlock mu;
        slot
    | exception e ->
        Mutex.unlock mu;
        raise e
  in
  let st = Domain.DLS.get store_key in
  ensure_size st (slot + slots_per_series kind);
  (st, slot)

type cell = { st : store; slot : int }
type hcell = { hst : store; hslot : int }

let counter ?help ?labels name =
  let st, slot = register ~kind:Counter ?help ?labels name in
  { st; slot }

let gauge ?help ?labels name =
  let st, slot = register ~kind:Gauge ?help ?labels name in
  { st; slot }

let histogram ?help ?labels name =
  let st, slot = register ~kind:Histogram ?help ?labels name in
  { hst = st; hslot = slot }

(* ---- hot path ---- *)

let[@inline] incr c =
  let a = c.st.a in
  Array.unsafe_set a c.slot (Array.unsafe_get a c.slot + 1)

let[@inline] add c n =
  let a = c.st.a in
  Array.unsafe_set a c.slot (Array.unsafe_get a c.slot + n)

let[@inline] set c v = Array.unsafe_set c.st.a c.slot v
let[@inline] get c = Array.unsafe_get c.st.a c.slot

let bucket_of v =
  if v <= 1 then 0
  else begin
    let k = ref 0 and x = ref (v lsr 1) in
    while !x > 0 do
      Stdlib.incr k;
      x := !x lsr 1
    done;
    min (!k) (hbuckets - 1)
  end

let observe h v =
  let v = if v < 0 then 0 else v in
  let a = h.hst.a and s = h.hslot in
  Array.unsafe_set a s (Array.unsafe_get a s + 1);
  Array.unsafe_set a (s + 1) (Array.unsafe_get a (s + 1) + v);
  let b = s + 2 + bucket_of v in
  Array.unsafe_set a b (Array.unsafe_get a b + 1)

(* ---- snapshot (merged over every domain's store, deterministic) ---- *)

type sample = {
  s_name : string;
  s_help : string;
  s_kind : kind;
  s_labels : (string * string) list;
  s_value : int; (* counter/gauge value; histogram sum *)
  s_count : int; (* histogram observations; 0 for counter/gauge *)
  s_buckets : (int * int) list; (* histogram (bucket-exponent, count), nonzero *)
}

let merged_slot all slot =
  List.fold_left
    (fun acc (s : store) ->
      if slot < Array.length s.a then acc + s.a.(slot) else acc)
    0 all

let snapshot () =
  Mutex.lock mu;
  let fams = Hashtbl.fold (fun _ f acc -> f :: acc) families [] in
  let all = !stores in
  let out =
    List.concat_map
      (fun f ->
        List.map
          (fun (label_values, slot) ->
            let labels = List.combine f.f_label_names label_values in
            match f.f_kind with
            | Counter | Gauge ->
                {
                  s_name = f.f_name;
                  s_help = f.f_help;
                  s_kind = f.f_kind;
                  s_labels = labels;
                  s_value = merged_slot all slot;
                  s_count = 0;
                  s_buckets = [];
                }
            | Histogram ->
                let count = merged_slot all slot in
                let sum = merged_slot all (slot + 1) in
                let buckets = ref [] in
                for k = hbuckets - 1 downto 0 do
                  let n = merged_slot all (slot + 2 + k) in
                  if n > 0 then buckets := (k, n) :: !buckets
                done;
                {
                  s_name = f.f_name;
                  s_help = f.f_help;
                  s_kind = Histogram;
                  s_labels = labels;
                  s_value = sum;
                  s_count = count;
                  s_buckets = !buckets;
                })
          f.f_series)
      fams
  in
  Mutex.unlock mu;
  List.sort
    (fun a b ->
      match String.compare a.s_name b.s_name with
      | 0 -> compare a.s_labels b.s_labels
      | c -> c)
    out

let reset () =
  Mutex.lock mu;
  List.iter (fun (s : store) -> Array.fill s.a 0 (Array.length s.a) 0) !stores;
  Mutex.unlock mu

(* Sum of the series of one family across labels (tests, smoke). *)
let value ?(labels = []) name =
  let labels = canonical labels in
  let want = List.map snd labels in
  List.fold_left
    (fun acc s ->
      if s.s_name = name && (labels = [] || List.map snd s.s_labels = want)
      then acc + s.s_value
      else acc)
    0 (snapshot ())

(* Quantile-at-least over a snapshot histogram's sparse pow2 buckets:
   the upper bound (2^(k+1) - 1) of the first bucket whose cumulative
   count reaches ceil(count * p / 100).  Same semantics as
   Stats.Histogram.percentile, at pow2 rather than 1/32 resolution; the
   SLO tests cross-check the two. *)
let quantile s p =
  if s.s_count = 0 then 0
  else begin
    let target =
      let t = int_of_float (ceil (float_of_int s.s_count *. p /. 100.)) in
      if t < 1 then 1 else if t > s.s_count then s.s_count else t
    in
    let rec go acc = function
      | [] -> (1 lsl hbuckets) - 1 (* overflow bucket: count > 0 is here *)
      | (k, n) :: rest ->
          let acc = acc + n in
          if acc >= target then (if k = 0 then 1 else (1 lsl (k + 1)) - 1)
          else go acc rest
    in
    go 0 s.s_buckets
  end
