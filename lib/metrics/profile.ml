(* Virtual-time sampling profiler.

   Rather than instrumenting wall-clock signals, we sample the simulated
   clock: every charge of [c] cycles to a cost label covers the span
   [now, now+c), and the profiler credits the span with one sample per
   crossing of a fixed virtual-time grid (period [period] cycles).
   Sampling is therefore a pure function of the deterministic schedule —
   the same seed gives the same profile, and attributing samples costs
   one division per charge instead of a timer.

   Output is folded-stack ("fiber;label count" per line), directly
   consumable by flamegraph.pl or speedscope.

   The disabled probe mirrors [Trace.live_tracers]: engine hot paths do
   one Atomic load and branch when no profiler is running. *)

let live = Atomic.make 0
let on () = Atomic.get live > 0

type t = {
  period : int;
  ts_period : int; (* 0 = timeseries disabled *)
  tbl : (string, int ref) Hashtbl.t; (* "fiber;label" -> samples *)
  mutable running : bool;
  mutable next_ts : int;
  mutable rows : (int * (string * int) list) list; (* reverse order *)
}

let key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let start ?(period = 10_000) ?(ts_period = 0) () =
  if period <= 0 then invalid_arg "Profile.start: period must be positive";
  let slot = Domain.DLS.get key in
  (* a stopped profiler left in the slot (data kept readable) no longer
     counts toward [live]; only replacing a running one keeps the count *)
  (match !slot with Some p when p.running -> () | _ -> Atomic.incr live);
  slot :=
    Some
      {
        period;
        ts_period;
        tbl = Hashtbl.create 64;
        running = true;
        next_ts = (if ts_period > 0 then ts_period else max_int);
        rows = [];
      }

let stop () =
  let slot = Domain.DLS.get key in
  match !slot with
  | Some p when p.running ->
      (* Data stays readable through [folded] / [timeseries_csv] until
         the next [start]. *)
      p.running <- false;
      Atomic.decr live
  | _ -> ()

let current () = !(Domain.DLS.get key)

let charge ~now ~cycles ~fiber ~label =
  match current () with
  | None -> ()
  | Some p ->
      if p.running then begin
        let fin = now + cycles in
        (* one sample per grid point in (now, now+cycles] *)
        let s = (fin / p.period) - (now / p.period) in
        if s > 0 then begin
          let k = fiber ^ ";" ^ label in
          match Hashtbl.find_opt p.tbl k with
          | Some r -> r := !r + s
          | None -> Hashtbl.add p.tbl k (ref s)
        end;
        if fin >= p.next_ts then begin
          let pairs = Export.flat_pairs (Registry.snapshot ()) in
          while fin >= p.next_ts do
            p.rows <- (p.next_ts, pairs) :: p.rows;
            p.next_ts <- p.next_ts + p.ts_period
          done
        end
      end

let folded () =
  match current () with
  | None -> ""
  | Some p ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) p.tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (k, n) -> Printf.sprintf "%s %d\n" k n)
      |> String.concat ""

(* Long-format timeseries: one row per (grid time, metric key).  Keys
   contain commas inside "{...}", so they go through CSV escaping. *)
let timeseries_csv () =
  match current () with
  | None -> ""
  | Some p ->
      let b = Buffer.create 1024 in
      Buffer.add_string b "cycles,key,value\n";
      List.iter
        (fun (ts, pairs) ->
          List.iter
            (fun (k, v) ->
              Buffer.add_string b
                (Printf.sprintf "%d,%s,%d\n" ts (Export.csv_field k) v))
            pairs)
        (List.rev p.rows);
      Buffer.contents b
