(** aqmetrics registry: always-on named counters/gauges/histograms.

    Families are identified by name and a fixed set of label names; each
    distinct label-value combination is a {e series} bound to a slot in a
    per-domain flat [int array].  Binding a series (the [counter] /
    [gauge] / [histogram] calls) is a cold path under a global mutex —
    do it once, at component-creation time, from the domain that will
    use the cell.  The returned cell is then a raw (array, index) pair:
    {!incr} / {!add} / {!set} / {!observe} are single unboxed int stores
    with no allocation, safe to leave enabled on every hot path.

    {!snapshot} merges every domain's array by summation and sorts by
    (name, labels), so output is byte-identical regardless of how work
    was spread across domains ([--jobs N] determinism). *)

type kind = Counter | Gauge | Histogram

(** Number of power-of-two histogram buckets: bucket [k] counts
    observations [v] with [2^k <= v < 2^(k+1)] ([v <= 1] lands in
    bucket 0, overflow saturates into the last bucket). *)
val hbuckets : int

type cell
(** A bound counter or gauge series, local to the binding domain. *)

type hcell
(** A bound histogram series, local to the binding domain. *)

val counter : ?help:string -> ?labels:(string * string) list -> string -> cell
(** [counter ?help ?labels name] registers (or re-binds) the series of
    counter family [name] with the given label set for the calling
    domain.  Label order does not matter; names are canonicalized.
    @raise Invalid_argument if [name] clashes with an existing family of
    a different kind or different label names, or contains characters
    outside [[A-Za-z0-9_:]]. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> cell
(** Like {!counter} but registered as a gauge.  Note that snapshots
    merge gauges across domains by summation too (e.g. queue depths add
    up); use domain-unique label values if that is not what you want. *)

val histogram :
  ?help:string -> ?labels:(string * string) list -> string -> hcell

val incr : cell -> unit
(** One unboxed int store. Must run on the domain that bound the cell. *)

val add : cell -> int -> unit
val set : cell -> int -> unit
val get : cell -> int
(** This domain's local value only (snapshots merge all domains). *)

val observe : hcell -> int -> unit
(** Three unboxed int stores (count, sum, bucket). Negative values clamp
    to 0. *)

(** {1 Snapshot} *)

type sample = {
  s_name : string;
  s_help : string;
  s_kind : kind;
  s_labels : (string * string) list; (* sorted by label name *)
  s_value : int; (* counter/gauge value; histogram sum *)
  s_count : int; (* histogram observations; 0 for counter/gauge *)
  s_buckets : (int * int) list; (* histogram (bucket-exponent, count) *)
}

val snapshot : unit -> sample list
(** Merged over every domain that ever touched the registry (stores of
    joined domains are retained), sorted by (name, labels). *)

val reset : unit -> unit
(** Zero all values in all domains.  Families and series registrations
    (and bound cells) stay valid. *)

val quantile : sample -> float -> int
(** [quantile s p] is the {e quantile-at-least} estimate for [p] in
    [\[0,100\]] over a histogram sample's sparse pow2 buckets: the upper
    bound [2^(k+1) - 1] of the first bucket [k] (bucket 0 reports 1)
    whose cumulative count reaches [ceil (s_count * p / 100)]
    observations.  No interpolation: the estimate never undershoots the
    exact order statistic, and can overshoot by up to one pow2 bucket.
    Same semantics as {!Stats.Histogram.percentile} at coarser
    resolution; 0 when the sample is empty or not a histogram. *)

val value : ?labels:(string * string) list -> string -> int
(** Merged value of family [labels] series; with [labels = []] the sum
    over all series of the family.  Cold path (full snapshot). *)
