(** Virtual-time sampling profiler over the engine's cost labels.

    Samples are taken on a fixed virtual-time grid: a charge of [c]
    cycles at time [now] earns one sample per grid point in
    [(now, now+c]].  The profile is a pure function of the deterministic
    schedule, so same-seed runs produce byte-identical output.

    The profiler is per-domain (ambient through DLS, like the tracer)
    and meant for [--jobs 1] runs. *)

val live : int Atomic.t
(** Number of running profilers across all domains.  Instrumentation
    sites check [Atomic.get live > 0] before calling {!charge}, so the
    disabled cost is one load and branch. *)

val on : unit -> bool

val start : ?period:int -> ?ts_period:int -> unit -> unit
(** [start ()] installs a fresh profiler for this domain.  [period]
    (default 10_000) is the sampling grid in virtual cycles;
    [ts_period] (default 0 = off) additionally records a full metrics
    snapshot every [ts_period] cycles for {!timeseries_csv}. *)

val stop : unit -> unit
(** Stops sampling; accumulated data stays readable until the next
    {!start}. *)

val charge : now:int -> cycles:int -> fiber:string -> label:string -> unit
(** Credit the span [[now, now+cycles)] of [fiber] doing [label].
    No-op when no profiler is installed in this domain. *)

val folded : unit -> string
(** Folded-stack output ("fiber;label count" lines, sorted), compatible
    with flamegraph.pl / speedscope. *)

val timeseries_csv : unit -> string
(** Long-format CSV ([cycles,key,value]) of the periodic snapshots,
    with RFC 4180 field escaping. *)
