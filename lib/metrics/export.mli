(** Exporters over {!Registry.snapshot} — Prometheus-style text
    exposition and a flat JSON snapshot whose keys are gate-friendly
    (["name"] or ["name{k=v,...}"], never containing a dot, so
    [bench/perf_gate] treats each whole key as one leaf). *)

val csv_field : string -> string
(** RFC 4180 CSV escaping: quotes the field iff it contains a comma,
    quote, CR or LF; embedded quotes are doubled. *)

val json_escape : string -> string
(** Escape a string for embedding inside a JSON string literal. *)

val key : ?suffix:string -> Registry.sample -> string
(** ["name"] or ["name{k=v,k2=v2}"]; [suffix] is inserted after the
    family name (e.g. ["_count"]). *)

val flat_pairs : Registry.sample list -> (string * int) list
(** One pair per counter/gauge series, [_count]/[_sum] pairs per
    histogram series, sorted by key. *)

val json : Registry.sample list -> string
(** Flat JSON object over {!flat_pairs}. *)

val prometheus : Registry.sample list -> string
(** Prometheus text exposition ([# HELP] / [# TYPE], cumulative
    [_bucket{le=...}] lines for histograms). *)

val to_file : string -> string -> unit

val write : path:string -> Registry.sample list -> unit
(** Write Prometheus exposition if [path] ends in [.prom] or [.txt],
    the flat JSON snapshot otherwise. *)
