(* Virtual-time tracing: preallocated per-core ring buffers of spans,
   instants and counters, exported as Chrome Trace Event JSON, CSV, or a
   top-N text summary.  The library is clock-agnostic: emitters stamp
   events with the simulator's virtual cycle count. *)

type kind = Span | Instant | Counter

type slot = {
  mutable ts : int64;
  mutable dur : int64;
  mutable core : int;
  mutable fiber : int;
  mutable kind : kind;
  mutable cat : string;
  mutable name : string;
  mutable value : int64;
  mutable has_value : bool;
  mutable seq : int;
}

let fresh_slot () =
  {
    ts = 0L;
    dur = 0L;
    core = 0;
    fiber = 0;
    kind = Instant;
    cat = "";
    name = "";
    value = 0L;
    has_value = false;
    seq = 0;
  }

type ring = {
  slots : slot array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

type t = {
  cap : int;
  max_cores : int;
  rings : ring option array; (* allocated lazily, whole ring at once *)
  mutable fibers : (int * int * string) list; (* fid, core, name (latest first) *)
  mutable next_seq : int;
}

let create ?(capacity_per_core = 4096) ?(max_cores = 64) () =
  if capacity_per_core <= 0 then invalid_arg "Trace.create: capacity";
  if max_cores <= 0 then invalid_arg "Trace.create: max_cores";
  {
    cap = capacity_per_core;
    max_cores;
    rings = Array.make max_cores None;
    fibers = [];
    next_seq = 0;
  }

(* ---- ambient tracer ----

   The tracer itself is domain-local, so each domain of a parallel
   experiment fan-out owns an independent tracer (or none).  The [on]
   probe, hit on every engine event, reads a process-wide count of live
   tracers instead of domain-local storage: an Atomic.get is a plain
   load, several times cheaper than a DLS fetch.  A domain that isn't
   tracing while another is sees [on () = true] and then a [None] from
   [current ()], so its probes stay correct, just not free — and the CLI
   forces a sequential run under tracing anyway. *)

let live_tracers = Atomic.make 0

let ambient_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let[@inline] on () = Atomic.get live_tracers > 0

let start ?capacity_per_core ?max_cores () =
  let t = create ?capacity_per_core ?max_cores () in
  let a = Domain.DLS.get ambient_key in
  (match !a with Some _ -> () | None -> Atomic.incr live_tracers);
  a := Some t;
  t

let stop () =
  let a = Domain.DLS.get ambient_key in
  let t = !a in
  (match t with Some _ -> Atomic.decr live_tracers | None -> ());
  a := None;
  t

let current () = !(Domain.DLS.get ambient_key)

(* ---- emission ---- *)

let ring_of t core =
  let core = if core < 0 then 0 else if core >= t.max_cores then t.max_cores - 1 else core in
  match t.rings.(core) with
  | Some r -> r
  | None ->
      let r =
        { slots = Array.init t.cap (fun _ -> fresh_slot ()); head = 0; len = 0; dropped = 0 }
      in
      t.rings.(core) <- Some r;
      r

let emit t ~ts ~dur ~core ~fiber ~kind ~cat ~value ~has_value name =
  let core =
    if core < 0 then 0 else if core >= t.max_cores then t.max_cores - 1 else core
  in
  let r = ring_of t core in
  let s = r.slots.(r.head) in
  if r.len = t.cap then r.dropped <- r.dropped + 1 else r.len <- r.len + 1;
  r.head <- (r.head + 1) mod t.cap;
  s.ts <- ts;
  s.dur <- dur;
  s.core <- core;
  s.fiber <- fiber;
  s.kind <- kind;
  s.cat <- cat;
  s.name <- name;
  s.value <- value;
  s.has_value <- has_value;
  s.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1

let span t ~ts ~dur ~core ~fiber ~cat ?value name =
  let value, has_value =
    match value with Some v -> (v, true) | None -> (0L, false)
  in
  emit t ~ts ~dur ~core ~fiber ~kind:Span ~cat ~value ~has_value name

let instant t ~ts ~core ~fiber ~cat ?value name =
  let value, has_value =
    match value with Some v -> (v, true) | None -> (0L, false)
  in
  emit t ~ts ~dur:0L ~core ~fiber ~kind:Instant ~cat ~value ~has_value name

let counter t ~ts ~core ~cat ~value name =
  emit t ~ts ~dur:0L ~core ~fiber:0 ~kind:Counter ~cat ~value ~has_value:true name

let declare_fiber t ~fiber ~core ~name = t.fibers <- (fiber, core, name) :: t.fibers

(* ---- inspection ---- *)

let events_count t =
  Array.fold_left
    (fun acc r -> match r with Some r -> acc + r.len | None -> acc)
    0 t.rings

let dropped t =
  Array.fold_left
    (fun acc r -> match r with Some r -> acc + r.dropped | None -> acc)
    0 t.rings

(* Events of one ring, oldest first. *)
let ring_events r =
  let out = ref [] in
  for i = r.len - 1 downto 0 do
    let idx = (r.head - 1 - i + (2 * Array.length r.slots)) mod Array.length r.slots in
    out := r.slots.(idx) :: !out
  done;
  List.rev !out

(* All retained events sorted by (ts, seq); seq is unique so the order is
   total and runs with the same seed export byte-identical files. *)
let sorted_events t =
  let all =
    Array.to_list t.rings
    |> List.concat_map (function Some r -> ring_events r | None -> [])
  in
  List.stable_sort
    (fun a b ->
      match Int64.compare a.ts b.ts with 0 -> Int.compare a.seq b.seq | c -> c)
    all

let iter_events t f = List.iter f (sorted_events t)

type event = {
  ev_ts : int64;
  ev_dur : int64;
  ev_core : int;
  ev_fiber : int;
  ev_kind : kind;
  ev_cat : string;
  ev_name : string;
  ev_value : int64 option;
}

let events t =
  List.map
    (fun s ->
      {
        ev_ts = s.ts;
        ev_dur = s.dur;
        ev_core = s.core;
        ev_fiber = s.fiber;
        ev_kind = s.kind;
        ev_cat = s.cat;
        ev_name = s.name;
        ev_value = (if s.has_value then Some s.value else None);
      })
    (sorted_events t)

(* Cores that hold events or declared fibers, ascending. *)
let cores_used t =
  let seen = Array.make t.max_cores false in
  Array.iteri (fun i r -> match r with Some r when r.len > 0 -> seen.(i) <- true | _ -> ()) t.rings;
  List.iter
    (fun (_, core, _) ->
      if core >= 0 && core < t.max_cores then seen.(core) <- true)
    t.fibers;
  let out = ref [] in
  for i = t.max_cores - 1 downto 0 do
    if seen.(i) then out := i :: !out
  done;
  !out

(* Declared fibers, ascending fid, first declaration wins. *)
let fibers_declared t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (fid, core, name) -> Hashtbl.replace tbl fid (core, name))
    (List.rev t.fibers);
  Hashtbl.fold (fun fid (core, name) acc -> (fid, core, name) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

(* ---- Chrome Trace Event JSON ---- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_meta buf ~first ~name ~pid ?tid ~arg () =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  Buffer.add_string buf
    (Printf.sprintf "{\"ph\":\"M\",\"name\":\"%s\",\"pid\":%d" name pid);
  (match tid with
  | Some tid -> Buffer.add_string buf (Printf.sprintf ",\"tid\":%d" tid)
  | None -> ());
  Buffer.add_string buf ",\"args\":{\"name\":\"";
  json_escape buf arg;
  Buffer.add_string buf "\"}}"

(* One virtual cycle is exported as one trace microsecond; Perfetto and
   chrome://tracing render the axis in "us" that should be read as cycles. *)
let chrome_json_buf t buf =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let cores = cores_used t in
  List.iter
    (fun core ->
      add_meta buf ~first ~name:"process_name" ~pid:core
        ~arg:(Printf.sprintf "core %d" core) ();
      add_meta buf ~first ~name:"thread_name" ~pid:core ~tid:0 ~arg:"hw" ())
    cores;
  List.iter
    (fun (fid, core, name) ->
      add_meta buf ~first ~name:"thread_name" ~pid:core ~tid:fid
        ~arg:(Printf.sprintf "%s/%d" name fid) ())
    (fibers_declared t);
  iter_events t (fun s ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf "{\"name\":\"";
      json_escape buf s.name;
      Buffer.add_string buf "\",\"cat\":\"";
      json_escape buf s.cat;
      Buffer.add_string buf "\",";
      (match s.kind with
      | Span ->
          Buffer.add_string buf
            (Printf.sprintf "\"ph\":\"X\",\"ts\":%Ld,\"dur\":%Ld,\"pid\":%d,\"tid\":%d"
               s.ts s.dur s.core s.fiber)
      | Instant ->
          Buffer.add_string buf
            (Printf.sprintf "\"ph\":\"i\",\"s\":\"t\",\"ts\":%Ld,\"pid\":%d,\"tid\":%d"
               s.ts s.core s.fiber)
      | Counter ->
          Buffer.add_string buf
            (Printf.sprintf "\"ph\":\"C\",\"ts\":%Ld,\"pid\":%d" s.ts s.core));
      (match s.kind with
      | Counter ->
          Buffer.add_string buf (Printf.sprintf ",\"args\":{\"value\":%Ld}" s.value)
      | Span | Instant ->
          if s.has_value then
            Buffer.add_string buf (Printf.sprintf ",\"args\":{\"v\":%Ld}" s.value));
      Buffer.add_string buf "}");
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual-cycles\",\"dropped\":%d}}\n"
       (dropped t))

let chrome_json t =
  let buf = Buffer.create 65536 in
  chrome_json_buf t buf;
  Buffer.contents buf

let write_chrome_json t path =
  let oc = open_out path in
  let buf = Buffer.create 65536 in
  chrome_json_buf t buf;
  Buffer.output_buffer oc buf;
  close_out oc

(* ---- CSV ---- *)

let kind_name = function Span -> "span" | Instant -> "instant" | Counter -> "counter"

let csv t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "ts,seq,kind,core,fiber,cat,name,dur,value\n";
  iter_events t (fun s ->
      (* cat/name are free-form probe strings — RFC 4180-escape them so a
         comma or quote in a label cannot shift the remaining columns *)
      Buffer.add_string buf
        (Printf.sprintf "%Ld,%d,%s,%d,%d,%s,%s,%Ld,%s\n" s.ts s.seq
           (kind_name s.kind) s.core s.fiber
           (Metrics.Export.csv_field s.cat)
           (Metrics.Export.csv_field s.name)
           s.dur
           (if s.has_value then Int64.to_string s.value else "")));
  Buffer.contents buf

let write_csv t path =
  let oc = open_out path in
  output_string oc (csv t);
  close_out oc

(* ---- top-N span summary ---- *)

type span_stat = {
  ss_cat : string;
  ss_name : string;
  ss_count : int;
  ss_total : int64;
}

let summary ?(top = 20) t =
  let tbl = Hashtbl.create 64 in
  iter_events t (fun s ->
      if s.kind = Span then begin
        let key = (s.cat, s.name) in
        let count, total =
          try Hashtbl.find tbl key with Not_found -> (0, 0L)
        in
        Hashtbl.replace tbl key (count + 1, Int64.add total s.dur)
      end);
  let all =
    Hashtbl.fold
      (fun (cat, name) (count, total) acc ->
        { ss_cat = cat; ss_name = name; ss_count = count; ss_total = total } :: acc)
      tbl []
  in
  let sorted =
    List.sort
      (fun a b ->
        match Int64.compare b.ss_total a.ss_total with
        | 0 -> compare (a.ss_cat, a.ss_name) (b.ss_cat, b.ss_name)
        | c -> c)
      all
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take top sorted

let print_summary ?top t =
  let stats = summary ?top t in
  Printf.printf "%-10s %-24s %10s %14s %10s\n" "cat" "span" "count" "cycles" "avg";
  List.iter
    (fun s ->
      Printf.printf "%-10s %-24s %10d %14Ld %10.0f\n" s.ss_cat s.ss_name s.ss_count
        s.ss_total
        (if s.ss_count = 0 then 0.
         else Int64.to_float s.ss_total /. float_of_int s.ss_count))
    stats;
  Printf.printf "events: %d  dropped: %d\n" (events_count t) (dropped t)
