(** Virtual-time tracing and metrics.

    Events — duration {e spans}, {e instant} markers and sampled
    {e counters} — are stamped with virtual cycles, a core id, a fiber id
    and a category, and stored in preallocated per-core ring buffers
    (oldest events are overwritten when a ring fills).  Exporters produce
    Chrome Trace Event JSON (loadable in Perfetto or [chrome://tracing],
    cores become "processes" and fibers "threads"), CSV, and a top-N span
    summary.

    The library is clock-agnostic and has no dependency on the simulator;
    [Sim.Probe] and the instrumentation hooks around the stack feed it.
    The ambient-tracer API ({!start}/{!stop}/{!on}) gates every emitter
    behind a single branch, so disabled tracing costs one load+branch per
    probe site. *)

type kind = Span | Instant | Counter

type t
(** A tracer: per-core ring buffers plus fiber metadata. *)

val create : ?capacity_per_core:int -> ?max_cores:int -> unit -> t
(** [create ()] is a standalone tracer ([capacity_per_core] defaults to
    4096 events, [max_cores] to 64; rings are allocated whole on a core's
    first event).  Core ids outside [0, max_cores) are clamped. *)

(** {1 Ambient tracer}

    Instrumentation across the stack emits into one globally installed
    tracer so call sites need no plumbing. *)

val live_tracers : int Atomic.t
(** Process-wide count of installed ambient tracers.  Hot probe sites may
    read it directly ([Atomic.get live_tracers > 0] — one plain load on
    x86) instead of calling {!on}; without cross-module inlining the
    extra call costs more than the check itself. *)

val on : unit -> bool
(** [on ()] is [true] when an ambient tracer is installed and enabled.
    Probe sites must check this first; it is the whole disabled path. *)

val start : ?capacity_per_core:int -> ?max_cores:int -> unit -> t
(** [start ()] installs a fresh tracer as the ambient one and enables
    tracing.  Returns the tracer (also retrievable via {!current}). *)

val stop : unit -> t option
(** [stop ()] disables tracing and uninstalls the ambient tracer,
    returning it (if any) for export. *)

val current : unit -> t option

(** {1 Emission}

    [ts] is virtual cycles; [core]/[fiber] locate the event.  Emitters
    must only be called when tracing is wanted — they always record. *)

val span :
  t -> ts:int64 -> dur:int64 -> core:int -> fiber:int -> cat:string ->
  ?value:int64 -> string -> unit
(** [span t ~ts ~dur ~core ~fiber ~cat name] records a duration span
    [\[ts, ts+dur)].  [value] becomes an ["args"] payload in exports. *)

val instant :
  t -> ts:int64 -> core:int -> fiber:int -> cat:string -> ?value:int64 ->
  string -> unit

val counter : t -> ts:int64 -> core:int -> cat:string -> value:int64 -> string -> unit
(** [counter t ~ts ~core ~cat ~value name] samples counter [name]
    (rendered as a counter track in Perfetto). *)

val declare_fiber : t -> fiber:int -> core:int -> name:string -> unit
(** Registers a fiber's name so exports can label its thread track. *)

(** {1 Inspection} *)

val events_count : t -> int
(** Number of retained (not overwritten) events. *)

val dropped : t -> int
(** Number of events overwritten due to full rings. *)

type event = {
  ev_ts : int64;
  ev_dur : int64;
  ev_core : int;
  ev_fiber : int;
  ev_kind : kind;
  ev_cat : string;
  ev_name : string;
  ev_value : int64 option;
}

val events : t -> event list
(** Retained events sorted by [(ts, seq)] — the exporters' order. *)

(** {1 Export}

    All exporters order events by [(ts, seq)] where [seq] is a unique
    emission counter, so equal inputs produce byte-identical output. *)

val chrome_json : t -> string
val write_chrome_json : t -> string -> unit
val csv : t -> string
val write_csv : t -> string -> unit

type span_stat = {
  ss_cat : string;
  ss_name : string;
  ss_count : int;
  ss_total : int64;
}

val summary : ?top:int -> t -> span_stat list
(** Spans aggregated by (cat, name), sorted by total cycles descending
    (ties by name); at most [top] (default 20) entries. *)

val print_summary : ?top:int -> t -> unit
