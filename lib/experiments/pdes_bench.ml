(* Fig-scale workload for the conservative-parallel cluster (Sim.Shard).

   [cores] independent per-core Aquila stacks — each its own DRAM cache,
   blobstore and pmem device, sized like the fig5 out-of-memory point
   (cache = frames, file = file_pages > frames, zipf touches with a
   write fraction) — run a fig8-style page-fault loop, statically routed
   core -> shard = core mod shards.  Every [ipi_every] ops a core sends
   a posted IPI to the next core in the ring; deliveries cross shard
   boundaries through [Shard.post] and charge the model's IPI receive
   cost on the target core, so the conservative sync machinery is
   exercised by real cross-shard traffic, not just local work.

   Cross-shard IPIs are delivered one lookahead window after the send —
   modelling epoch-coalesced posted interrupts (the sender batches
   writes to the posted-interrupt descriptor; the target notices at its
   next epoch boundary).  [Hw.Costs.min_cross_shard_latency] (798
   cycles) is the hard floor for that epoch; the default below trades
   delivery granularity for window width, which is exactly the lever a
   PDES deployment tunes.

   Every per-core event stream is a pure function of the core index
   (own stack, own rng, IPI timestamps derived from the sender's own
   clock), so [events], [final_cycles] and [windows] in the returned
   stats are invariant across shard counts — the scaling bench gates
   them as deterministic counters while wall-clock speedup stays
   advisory. *)

type params = {
  cores : int;
  ops_per_core : int;
  frames : int;  (** DRAM cache frames per core's stack *)
  file_pages : int;  (** mapped file size; > frames forces eviction + I/O *)
  write_fraction : float;
  ipi_every : int;  (** ops between ring IPIs; 0 disables cross traffic *)
  seed : int;
}

let default =
  {
    cores = 32;
    ops_per_core = 1500;
    frames = 256;
    file_pages = 1024;
    write_fraction = 0.3;
    ipi_every = 64;
    seed = 7;
  }

(* Epoch-coalesced posted-IPI delivery latency, cycles.  >= the
   model floor (Hw.Costs.min_cross_shard_latency = 798); wide enough
   that a window amortizes its two barriers over hundreds of events. *)
let default_lookahead = 20_000L

let build p sh =
  let nshards = Sim.Shard.shards sh in
  let sid = Sim.Shard.sid sh in
  let la = Sim.Shard.lookahead sh in
  let eng = Sim.Shard.engine sh in
  let recv_cost = Hw.Costs.default.ipi_receive in
  for core = 0 to p.cores - 1 do
    if core mod nshards = sid then begin
      let stack = Scenario.make_aquila ~frames:p.frames ~dev:Scenario.Pmem () in
      let sys = Microbench.Aq stack in
      let rng = Sim.Rng.create (p.seed + (core * 6151)) in
      ignore
        (Sim.Engine.spawn eng
           ~name:(Printf.sprintf "pdes-core-%d" core)
           ~core
           (fun () ->
             Microbench.enter sys;
             let region =
               Microbench.make_region sys
                 ~name:(Printf.sprintf "pdes-%d.dat" core)
                 ~pages:p.file_pages
             in
             let z = Ycsb.Zipfian.zipfian rng ~items:p.file_pages in
             for op = 1 to p.ops_per_core do
               let page = Ycsb.Zipfian.next z in
               let write = Sim.Rng.float rng < p.write_fraction in
               region.Microbench.touch ~page ~write;
               if p.ipi_every > 0 && op mod p.ipi_every = 0 then begin
                 let target = (core + 1) mod p.cores in
                 let at = Int64.add (Sim.Engine.now_f ()) la in
                 Sim.Shard.post sh ~to_:(target mod nshards) ~at (fun peer ->
                     ignore
                       (Sim.Engine.spawn (Sim.Shard.engine peer)
                          ~name:"pdes-ipi" ~core:target (fun () ->
                            Sim.Engine.delay ~cat:Sim.Engine.Sys
                              ~label:"ipi_receive" recv_cost)))
               end
             done))
    end
  done

let run ?(deterministic = false) ?(shards = 1)
    ?(lookahead = default_lookahead) ?(p = default) () =
  Sim.Shard.run ~deterministic ~seed:p.seed ~shards ~lookahead (build p)
