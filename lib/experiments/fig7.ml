(* Figure 7: RocksDB read-path cycle breakdown — user-space cache +
   explicit I/O vs Aquila (out-of-memory dataset, pmem). *)

let get_labels = [ "kv_get"; "kv_get_bloom"; "kv_get_index"; "kv_get_block"; "kv_scan" ]
let device_labels = [ "io_device"; "io_memcpy"; "io_driver" ]
let syscall_labels = [ "io_syscall"; "io_kernel" ]

let cache_mgmt_labels_ucache = [ "ucache" ]

let cache_mgmt_labels_aquila =
  [
    "trap"; "fault_entry"; "vma"; "index"; "alloc"; "evict"; "tlb"; "map"; "lru";
    "writeback"; "ept"; "irq"; "dirty"; "enter"; "syscall_dispatch";
  ]

let bucket bd prefixes ops = Stats.Breakdown.per_op (Stats.Breakdown.group bd ~prefixes) ops

let run () =
  let threads = 8 in
  let measure sys =
    let m = Fig5.run_for_breakdown ~sys ~threads in
    let bd = Stats.Breakdown.create () in
    List.iter (Stats.Breakdown.absorb bd) m.Fig5.ctxs;
    (m, bd)
  in
  let _mu, bd_u = measure Fig5.Rw in
  let _ma, bd_a = measure Fig5.Aquila_s in
  let ops = threads * 1000 in
  let row name bd ~cache_labels ~syscalls_in_cache =
    let dev = bucket bd device_labels ops in
    let sysc = bucket bd syscall_labels ops in
    let cache = bucket bd cache_labels ops +. (if syscalls_in_cache then sysc else 0.) in
    let get = bucket bd get_labels ops in
    let total = dev +. cache +. get +. (if syscalls_in_cache then 0. else sysc) in
    ( [
        name;
        Stats.Table_fmt.kcycles dev;
        Stats.Table_fmt.kcycles cache;
        Stats.Table_fmt.kcycles get;
        Stats.Table_fmt.kcycles total;
      ],
      (cache, total) )
  in
  let urow, (ucache, utotal) =
    row "read/write + user cache" bd_u ~cache_labels:cache_mgmt_labels_ucache
      ~syscalls_in_cache:true
  in
  let arow, (acache, atotal) =
    row "Aquila mmio" bd_a ~cache_labels:cache_mgmt_labels_aquila
      ~syscalls_in_cache:true
  in
  Stats.Table_fmt.print_table
    ~title:
      "Figure 7: RocksDB cycles/op breakdown for reads (out-of-memory, pmem, 8 \
       threads)"
    ~header:[ "configuration"; "device I/O"; "cache mgmt"; "get"; "total" ]
    [ urow; arow ];
  Sim.Sink.printf
    "paper: user cache 65.4K cycles/op (I/O 4.8K, cache mgmt 45.2K, get 15.3K); \
     Aquila (I/O 3.9K, cache mgmt 17.5K, get 18.5K); 2.58x fewer cache-mgmt \
     cycles, 69%% -> 43.7%% of CPU on I/O\n";
  Sim.Sink.printf
    "measured: cache-mgmt ratio %.2fx; cache-mgmt share %.1f%% -> %.1f%%\n"
    (ucache /. acache)
    (100. *. ucache /. utotal)
    (100. *. acache /. atotal)
