(* Figure 9: Kreon over kmmap vs Kreon over Aquila, all YCSB workloads,
   single thread, dataset 2x the cache. *)

let records = 16384
let value_bytes = 1024
let cache_frames = 2048
let ops = 600

let build ~eng ~kmmap ~dev =
  let domain = if kmmap then Hw.Domain_x.Ring3 else Hw.Domain_x.Nonroot_ring0 in
  let s = Scenario.make_aquila ~domain ~frames:cache_frames ~dev () in
  let db = ref None in
  ignore
    (Sim.Engine.spawn eng ~name:"kreon-load" ~core:0 (fun () ->
         Aquila.Context.enter_thread s.Scenario.a_ctx;
         let d =
           Kvstore.Kreon_sim.create ~ctx:s.Scenario.a_ctx
             ~access:s.Scenario.a_access ~store:s.Scenario.a_store
             ~expected_records:(records * 2) ~value_bytes ()
         in
         db := Some d));
  Sim.Engine.run eng;
  let d = Option.get !db in
  Ycsb.Runner.load ~eng ~record_count:records ~value_bytes
    ~insert:(fun k v -> Kvstore.Kreon_sim.put d k v)
    ~finish:(fun () ->
      Kvstore.Kreon_sim.spill d;
      Kvstore.Kreon_sim.msync d)
    ();
  d

type meas = { thr : float; avg : float; p999 : float }

let run_one ~kmmap ~dev ~workload =
  let eng = Sim.Engine.create () in
  let db = build ~eng ~kmmap ~dev in
  let r =
    Ycsb.Runner.run ~eng ~threads:1 ~ops_per_thread:ops ~workload
      ~record_count:records ~value_bytes ~kv:(Scenario.kv_of_kreon db) ()
  in
  {
    thr = r.Ycsb.Runner.throughput_ops_s;
    avg = Stats.Histogram.mean r.Ycsb.Runner.latency;
    p999 = Int64.to_float (Stats.Histogram.percentile r.Ycsb.Runner.latency 99.9);
  }

let run () =
  let workloads = Ycsb.Workload.all in
  let run_dev dev =
    let rows =
      List.map
        (fun w ->
          let k = run_one ~kmmap:true ~dev ~workload:w in
          let a = run_one ~kmmap:false ~dev ~workload:w in
          ( w.Ycsb.Workload.name,
            [
              w.Ycsb.Workload.name;
              Stats.Table_fmt.ops_per_sec k.thr;
              Stats.Table_fmt.ops_per_sec a.thr;
              Stats.Table_fmt.speedup (a.thr /. k.thr);
              Stats.Table_fmt.speedup (k.avg /. a.avg);
              Stats.Table_fmt.speedup (k.p999 /. a.p999);
            ],
            (a.thr /. k.thr, k.avg /. a.avg, k.p999 /. a.p999) ))
        workloads
    in
    Stats.Table_fmt.print_table
      ~title:
        (Printf.sprintf
           "Figure 9 (%s): Kreon kmmap vs Aquila, YCSB A-F, 1 thread, dataset 2x \
            cache"
           (Scenario.dev_name dev))
      ~header:
        [ "workload"; "kmmap"; "Aquila"; "thr ratio"; "avg-lat ratio"; "p99.9 ratio" ]
      (List.map (fun (_, r, _) -> r) rows);
    let avg f =
      List.fold_left (fun acc (_, _, t) -> acc +. f t) 0. rows
      /. float_of_int (List.length rows)
    in
    Sim.Sink.printf "geometric-ish mean: thr %.2fx, avg latency %.2fx, p99.9 %.2fx\n"
      (avg (fun (t, _, _) -> t))
      (avg (fun (_, l, _) -> l))
      (avg (fun (_, _, p) -> p))
  in
  run_dev Scenario.Nvme;
  Sim.Sink.printf "paper (NVMe): ~1.02x throughput (device-bound), 1.29x avg, 3.78x p99.9\n";
  run_dev Scenario.Pmem;
  Sim.Sink.printf "paper (pmem): 1.22x throughput, 1.43x avg, 13.72x p99.9\n"
