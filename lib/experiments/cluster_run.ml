(* Replicated-cluster serving experiments (registry ids [cluster] and
   [clusterf]).

   YCSB workload A drives the 5-node / 3-replica aqcluster through the
   standard Runner: client threads live on the same engine as the node
   fibers, so throughput, retries and failover costs are all measured on
   the one virtual clock.  [clusterf] additionally arms an aqfault plan
   that downs node 1 at a fixed engine event ordinal mid-run — the
   printed stats then include the failover, the recovery resync and any
   writes the client had to re-route, and stay byte-identical across
   runs and [--jobs] degrees. *)

let nodes = 5
let replicas = 3
let records = 256
let value_bytes = 64
let threads = 4
let ops_per_thread = 200

(* Ordinal for [clusterf]'s crash: inside the measured run phase of the
   deterministic schedule above (the full run is ~34k events). *)
let crash_ordinal = 20_000
let crash_node = 1

let cfg =
  {
    Aqcluster.Cluster.default_config with
    Aqcluster.Cluster.nodes;
    replicas;
    node = { Aqcluster.Node.cache_frames = 64; wal_pages = 2048 };
  }

(* The Runner's threads don't expect store exceptions; absorb the retry
   budget running dry during a crash window and count the give-ups. *)
let shielded (kv : Ycsb.Runner.kv) gave_up =
  {
    Ycsb.Runner.kv_read =
      (fun k ->
        try kv.Ycsb.Runner.kv_read k
        with Aqcluster.Rpc.Unreachable _ -> incr gave_up; None);
    kv_update =
      (fun k v ->
        try kv.Ycsb.Runner.kv_update k v
        with Aqcluster.Rpc.Unreachable _ -> incr gave_up);
    kv_insert =
      (fun k v ->
        try kv.Ycsb.Runner.kv_insert k v
        with Aqcluster.Rpc.Unreachable _ -> incr gave_up);
    kv_scan =
      (fun ~start ~n ->
        try kv.Ycsb.Runner.kv_scan ~start ~n
        with Aqcluster.Rpc.Unreachable _ -> incr gave_up; []);
    kv_rmw =
      (fun k f ->
        try kv.Ycsb.Runner.kv_rmw k f
        with Aqcluster.Rpc.Unreachable _ -> incr gave_up);
  }

let run_once ~title ~crash () =
  let eng = Sim.Engine.create () in
  let cl = Aqcluster.Cluster.create ~cfg ~eng () in
  let spec =
    match crash with
    | None -> Fault.Plan.default
    | Some (at, node) ->
        {
          Fault.Plan.default with
          Fault.Plan.crash_at = Some at;
          Fault.Plan.node = Some node;
        }
  in
  let plan = Fault.Plan.make spec in
  let gave_up = ref 0 in
  Fault.with_plan plan (fun () ->
      Aqcluster.Cluster.boot cl;
      Aqcluster.Cluster.arm_fault cl plan;
      let kv = shielded (Aqcluster.Cluster.kv cl) gave_up in
      Ycsb.Runner.load ~eng ~record_count:records ~value_bytes
        ~insert:kv.Ycsb.Runner.kv_insert ();
      let r =
        Ycsb.Runner.run ~eng ~threads ~ops_per_thread
          ~workload:Ycsb.Workload.a ~record_count:records ~value_bytes ~kv ()
      in
      (* writers drained: one final anti-entropy pass before reporting *)
      ignore
        (Sim.Engine.spawn eng ~name:"final-resync" ~core:nodes (fun () ->
             ignore (Aqcluster.Cluster.resync cl)));
      Sim.Engine.run eng;
      let st = Aqcluster.Cluster.stats cl in
      Sim.Sink.printf "%s: %d nodes, %d replicas, YCSB A, %d threads x %d ops\n"
        title nodes replicas threads ops_per_thread;
      Sim.Sink.printf
        "  acked writes %d, redirected %d, failovers %d, resync pages %d, rpc \
         retries %d, gave up %d\n"
        st.Aqcluster.Cluster.acked_writes st.Aqcluster.Cluster.redirected
        st.Aqcluster.Cluster.failovers st.Aqcluster.Cluster.resync_pages
        (Aqcluster.Cluster.rpc_retries cl)
        !gave_up;
      Sim.Sink.printf "  throughput %s, events %d, final cycles %Ld\n"
        (Stats.Table_fmt.ops_per_sec r.Ycsb.Runner.throughput_ops_s)
        (Sim.Engine.events eng) (Sim.Engine.now eng);
      let conv = Aqcluster.Cluster.convergence_violations cl in
      Sim.Sink.printf "  convergence: %s\n"
        (if conv = [] then "all replicas identical"
         else Printf.sprintf "%d VIOLATIONS" (List.length conv)))

let run_cluster () = run_once ~title:"cluster" ~crash:None ()

let run_clusterf () =
  run_once ~title:"clusterf"
    ~crash:(Some (crash_ordinal, crash_node))
    ()
