(** The paper's custom mmio microbenchmark (Section 5): a configurable
    number of threads issuing loads/stores at random offsets of a
    memory-mapped file, with every access potentially faulting.  Drives
    Figures 8(a), 8(b) and 10. *)

type sys = Aq of Scenario.aquila_stack | Lx of Scenario.linux_stack

val sys_name : sys -> string

type result = {
  ops : int;
  elapsed_cycles : int64;
  throughput_ops_s : float;
  latency : Stats.Histogram.t;
  breakdown : Stats.Breakdown.t;
  faults : int;
  evictions : int;
}

type pattern =
  | Uniform  (** random pages with replacement (steady-state misses) *)
  | Permutation
      (** every page exactly once in random order — each access faults, as
          the paper's microbenchmark ensures; with a shared file the page
          range is partitioned across threads *)
  | Zipf
      (** YCSB's scrambled-Zipfian (θ = 0.99) over the file's pages: a
          skewed hot set, so replacement quality — not raw miss cost —
          decides the hit rate (the policy-ablation workload) *)

val run :
  eng:Sim.Engine.t ->
  sys:sys ->
  file_pages:int ->
  shared:bool ->
  threads:int ->
  ops_per_thread:int ->
  ?write_fraction:float ->
  ?pattern:pattern ->
  ?seed:int ->
  unit ->
  result
(** [run ~eng ~sys ~file_pages ~shared ~threads ~ops_per_thread ()] maps
    either one shared file of [file_pages] pages or one such file per
    thread, then performs random page touches ([pattern] defaults to
    [Uniform]; [Permutation] caps [ops_per_thread] at the per-thread page
    share).  Must be given a fresh engine and stack. *)

(** {1 Building blocks for custom microbenchmarks (Figure 8(c))} *)

type region_ops = { touch : page:int -> write:bool -> unit }

val make_region : sys -> name:string -> pages:int -> region_ops
(** Allocate, attach and map a file on the stack; fiber-only. *)

val enter : sys -> unit
(** Per-thread entry ({!Aquila.Context.enter_thread} or the Linux
    equivalent); fiber-only. *)
