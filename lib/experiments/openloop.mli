(** Open-loop latency-vs-offered-load experiments (registry id
    [openloop] and the [aquila_cli loadtest] subcommand).

    Drives the {!Loadgen} harness against three backends behind one
    interface — the Linux mmap sim, a single-node Aquila stack (both as
    uniform page touches on a 4x-out-of-memory DAX-pmem file), and the
    replicated aqcluster kvstore — and sweeps offered load to produce
    the hockey-stick p99-sojourn-vs-rate curve per backend.  Everything
    is a pure function of the parameters: reports are byte-identical at
    any [--jobs] / [--shards] degree (CI cmp-gates both). *)

type kind = Linux | Aquila | Cluster

val kind_name : kind -> string
val kind_of_string : string -> (kind, string) result

type params = {
  shape : Loadgen.Arrival.shape;  (** arrival-process family *)
  horizon : int;  (** injection window in cycles *)
  workers : int;  (** service fibers per backend *)
  queue_cap : int;  (** bounded admission queue *)
  slo_cycles : int;  (** sojourn SLO *)
  seed : int;  (** arrival + request-content seed *)
}

val default_params : params
(** Poisson, 24M-cycle (10 ms) window, 4 workers, 512-deep queue,
    1M-cycle SLO, seed 42. *)

type point = {
  p_kind : kind;
  p_rate : float;  (** offered load, ops/s of the simulated clock *)
  p_res : Loadgen.result;
  p_final : int64;  (** virtual cycles when the engine drained *)
  p_events : int;  (** engine events executed *)
}

val run_point : params -> kind -> rate:float -> point
(** One backend at one offered rate on a fresh engine (cluster points
    boot and preload a fresh 3-node cluster first). *)

val p99 : point -> float
(** The point's p99 sojourn in cycles, as a float for ratio math. *)

val knee : point list -> point option
(** First point (in list order — callers pass ascending rates) whose p99
    exceeds 8x the first point's p99: the hockey-stick knee. *)

val default_rates : float list
(** The sweep grid for the registry experiment, ascending. *)

val run : unit -> unit
(** The [openloop] registry experiment: sweep Linux and Aquila over
    {!default_rates}, run one cluster point, and print per-backend
    tables plus the hockey-stick summary (growth ratio and knee rate per
    backend, and whether Aquila's knee lands at a strictly higher rate
    than Linux's). *)

val loadtest :
  ?jobs:int ->
  ?fault:Fault.Plan.spec ->
  backends:kind list ->
  rates:float list ->
  params ->
  unit
(** The CLI driver: one {!Fanout} job per (backend, rate) point, each
    printing its own header and table row, so output is byte-identical
    at any parallelism degree. *)
