type sys = Aq of Scenario.aquila_stack | Lx of Scenario.linux_stack

let sys_name = function Aq _ -> "Aquila" | Lx _ -> "Linux-mmap"

type result = {
  ops : int;
  elapsed_cycles : int64;
  throughput_ops_s : float;
  latency : Stats.Histogram.t;
  breakdown : Stats.Breakdown.t;
  faults : int;
  evictions : int;
}

type pattern = Uniform | Permutation | Zipf

type region_ops = { touch : page:int -> write:bool -> unit }

let translate_of blob p =
  if p < Blobstore.Store.blob_pages blob then
    Some (Blobstore.Store.device_page blob p)
  else None

(* Create a mapped file on the stack; must run inside a fiber. *)
let make_region sys ~name ~pages =
  match sys with
  | Aq s ->
      let blob =
        Blobstore.Store.create_blob s.Scenario.a_store ~name ~pages ()
      in
      let f =
        Aquila.Context.attach_file s.Scenario.a_ctx ~name
          ~access:s.Scenario.a_access ~translate:(translate_of blob)
          ~size_pages:pages
      in
      let r = Aquila.Context.mmap s.Scenario.a_ctx f ~npages:pages () in
      {
        touch =
          (fun ~page ~write -> Aquila.Context.touch s.Scenario.a_ctx r ~page ~write);
      }
  | Lx s ->
      let blob =
        Blobstore.Store.create_blob s.Scenario.l_store ~name ~pages ()
      in
      let f =
        Linux_sim.Mmap_sys.attach_file s.Scenario.l_msys ~name
          ~access:s.Scenario.l_access ~translate:(translate_of blob)
          ~size_pages:pages
      in
      let r = Linux_sim.Mmap_sys.mmap s.Scenario.l_msys f ~npages:pages () in
      {
        touch =
          (fun ~page ~write ->
            Linux_sim.Mmap_sys.touch s.Scenario.l_msys r ~page ~write);
      }

let enter sys =
  match sys with
  | Aq s -> Aquila.Context.enter_thread s.Scenario.a_ctx
  | Lx s -> Linux_sim.Mmap_sys.enter_thread s.Scenario.l_msys

let fault_count = function
  | Aq s -> Aquila.Context.faults s.Scenario.a_ctx
  | Lx s -> Linux_sim.Mmap_sys.faults s.Scenario.l_msys

let eviction_count = function
  | Aq s -> Mcache.Dram_cache.evictions (Aquila.Context.cache s.Scenario.a_ctx)
  | Lx s -> Linux_sim.Page_cache.evictions (Linux_sim.Mmap_sys.page_cache s.Scenario.l_msys)

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Sim.Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let run ~eng ~sys ~file_pages ~shared ~threads ~ops_per_thread
    ?(write_fraction = 0.0) ?(pattern = Uniform) ?(seed = 7) () =
  if threads <= 0 || file_pages <= 0 then invalid_arg "Microbench.run";
  let hist = Stats.Histogram.create () in
  let bd = Stats.Breakdown.create () in
  let shared_region = ref None in
  (* setup fiber: create the shared mapping before workers start *)
  if shared then begin
    ignore
      (Sim.Engine.spawn eng ~name:"mb-setup" ~core:0 (fun () ->
           enter sys;
           shared_region := Some (make_region sys ~name:"shared.dat" ~pages:file_pages)));
    Sim.Engine.run eng
  end;
  let start = Sim.Engine.now eng in
  let ctxs = ref [] in
  for i = 0 to threads - 1 do
    let rng = Sim.Rng.create (seed + (i * 6151)) in
    let ctx =
      Sim.Engine.spawn eng ~name:(Printf.sprintf "mb-%d" i) ~core:(i mod 32)
        (fun () ->
          enter sys;
          let region =
            if shared then Option.get !shared_region
            else
              make_region sys ~name:(Printf.sprintf "private-%d.dat" i)
                ~pages:file_pages
          in
          let next_page =
            match pattern with
            | Uniform ->
                let f () = Sim.Rng.int rng file_pages in
                (f, ops_per_thread)
            | Zipf ->
                let z = Ycsb.Zipfian.zipfian rng ~items:file_pages in
                let f () = Ycsb.Zipfian.next z in
                (f, ops_per_thread)
            | Permutation ->
                let lo, hi =
                  if shared then
                    (i * file_pages / threads, ((i + 1) * file_pages / threads) - 1)
                  else (0, file_pages - 1)
                in
                let perm = Array.init (hi - lo + 1) (fun k -> lo + k) in
                shuffle rng perm;
                let pos = ref 0 in
                let f () =
                  let p = perm.(!pos mod Array.length perm) in
                  incr pos;
                  p
                in
                (f, min ops_per_thread (Array.length perm))
          in
          let draw, nops = next_page in
          for _ = 1 to nops do
            let page = draw () in
            let write = Sim.Rng.float rng < write_fraction in
            let t0 = Sim.Engine.now_f () in
            region.touch ~page ~write;
            let t1 = Sim.Engine.now_f () in
            Stats.Histogram.record hist (Int64.sub t1 t0)
          done)
    in
    ctxs := ctx :: !ctxs
  done;
  Sim.Engine.run eng;
  List.iter (Stats.Breakdown.absorb bd) !ctxs;
  let elapsed = Int64.sub (Sim.Engine.now eng) start in
  let ops = threads * ops_per_thread in
  let secs = Int64.to_float elapsed /. 2.4e9 in
  {
    ops;
    elapsed_cycles = elapsed;
    throughput_ops_s = (if secs > 0. then float_of_int ops /. secs else 0.);
    latency = hist;
    breakdown = bd;
    faults = fault_count sys;
    evictions = eviction_count sys;
  }
