(** Replicated-cluster serving experiments (DESIGN.md §11): YCSB
    workload A over the 5-node / 3-replica aqcluster, measured on the
    shared virtual clock.  Registry ids [cluster] (steady state) and
    [clusterf] (an aqfault plan downs node 1 at a fixed engine event
    ordinal mid-run; stats include the failover and recovery resync). *)

val run_cluster : unit -> unit
val run_clusterf : unit -> unit
