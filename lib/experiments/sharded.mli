(** Free-running shard-partitioned experiments — the fig5/fig10 workload
    shapes rebuilt on {!Shard_stack}, so they run across OCaml domains
    under [--shards N] while every terminal stat stays byte-identical to
    the [--deterministic] single-domain replay at any shard count.

    One logical file partitions into a fixed number of home arenas (page
    mod homes); requester fibers ship batched faults to the owning
    servers; space comes from one shared blobstore partitioned
    [~shards:homes] (allocated before the cluster starts) and per-home
    NVMe devices with per-core submission queues.  See DESIGN.md §10 and
    EXPERIMENTS.md for free-running vs merge-mode guidance. *)

type pattern = Uniform | Zipf

type params = {
  homes : int;
  cores : int;
  ops_per_core : int;
  batch : int;
  frames_per_home : int;
  file_pages : int;
  write_fraction : float;
  pattern : pattern;
  msync_every : int;
  crash_at : int option;
  seed : int;
}

val fig5_params : params
(** fig5(b) shape: 32 cores, uniform reads, file ~4x the aggregate cache
    (evictions + device reads on most faults). *)

val fig10_params : params
(** fig10(a) shape: zipf reads over a dataset that fits — first-touch
    faults, then cache hits. *)

val crash_params : params
(** faultcheck shape: 50% writes, msync every 8 batches, and a power
    loss shipped to every home mid-run. *)

val default_lookahead : int64

val run :
  ?deterministic:bool ->
  ?shards:int ->
  ?lookahead:int64 ->
  ?p:params ->
  unit ->
  Sim.Shard.stats * Shard_stack.stats
(** Build the shared store and hub, run the cluster, return terminal
    stats.  [Shard_stack.stats] (and every [Sim.Shard.stats] field
    except [cross_posts], [shard_events], [shard_drains], [run_wall_s])
    is invariant across [shards] and [deterministic]. *)

val set_mode : shards:int -> deterministic:bool -> unit
(** Ambient cluster mode for the registry thunks below; the CLI sets it
    from [--shards]/[--deterministic] before dispatching experiments. *)

val mode : unit -> int * bool

val print_result : title:string -> Sim.Shard.stats -> Shard_stack.stats -> unit
(** Invariant lines first (compared byte-for-byte by CI's parity gates),
    then a ['#']-prefixed balance line with the N-dependent counters
    (cross_posts, per-shard events and inbox drains) that the gates
    filter out. *)

val run_fig5s : unit -> unit
val run_fig10s : unit -> unit
val run_crashcheck : unit -> unit
(** Registry entry points ([fig5s]/[fig10s]/[crashs]): run under the
    ambient {!mode} and print {!print_result}. *)
