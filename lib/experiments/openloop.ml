(* Open-loop latency-vs-offered-load experiments (registry id [openloop],
   aquila_cli loadtest).  See DESIGN.md §12: the Loadgen harness injects
   seeded arrivals regardless of service progress, so these curves show
   the queueing delay every closed-loop experiment in the repo hides. *)

type kind = Linux | Aquila | Cluster

let kind_name = function
  | Linux -> "linux"
  | Aquila -> "aquila"
  | Cluster -> "cluster"

let kind_of_string = function
  | "linux" -> Ok Linux
  | "aquila" -> Ok Aquila
  | "cluster" -> Ok Cluster
  | s -> Error (Printf.sprintf "unknown backend %S (linux|aquila|cluster)" s)

type params = {
  shape : Loadgen.Arrival.shape;
  horizon : int;
  workers : int;
  queue_cap : int;
  slo_cycles : int;
  seed : int;
}

let default_params =
  {
    shape = Loadgen.Arrival.Poisson_shape;
    horizon = 24_000_000 (* 10 ms at 2.4 GHz *);
    workers = 4;
    queue_cap = 512;
    slo_cycles = 1_000_000 (* ~0.42 ms: linux meets it until its knee *);
    seed = 42;
  }

(* mmio sizing: a 4x-out-of-memory file on DAX pmem, so misses are full
   software faults and the backends differ by fault-path overhead
   (fig5b's regime) rather than device time. *)
let frames = 256
let file_pages = 1024
let write_fraction = 0.2

(* cluster sizing: small enough that one sweep point stays well under
   the per-node WAL capacity (every update consumes a WAL page). *)
let cl_nodes = 3
let cl_replicas = 2
let cl_records = 256
let cl_value_bytes = 64

let cl_cfg =
  {
    Aqcluster.Cluster.default_config with
    Aqcluster.Cluster.nodes = cl_nodes;
    replicas = cl_replicas;
    node = { Aqcluster.Node.cache_frames = 64; wal_pages = 4096 };
  }

(* Per-request content (page or key slot, read vs write), precomputed as
   a pure function of (seed, n, space) so every worker-count and
   shard-count run serves identical requests. *)
let request_plan ~seed ~n ~space =
  let rng = Sim.Rng.create (seed lxor 0x5bd1e995) in
  let slot = Array.make n 0 and wr = Array.make n false in
  for i = 0 to n - 1 do
    slot.(i) <- Sim.Rng.int rng space;
    wr.(i) <- Sim.Rng.float rng < write_fraction
  done;
  (slot, wr)

let process_of params ~rate =
  Loadgen.Arrival.shaped params.shape ~rate ~horizon:params.horizon

let n_arrivals params ~rate =
  Array.length
    (Loadgen.Arrival.generate ~seed:params.seed ~horizon:params.horizon
       (process_of params ~rate))

let lg_config params ~rate =
  {
    Loadgen.process = process_of params ~rate;
    horizon = params.horizon;
    workers = params.workers;
    queue_cap = params.queue_cap;
    slo_cycles = params.slo_cycles;
    seed = params.seed;
    shed_when_degraded = true;
  }

(* Fiber-only: build one of the two mmio stacks and its serve closure. *)
let mmio_backend kind params ~rate () =
  let sys =
    match kind with
    | Linux -> Microbench.Lx (Scenario.make_linux ~frames ~dev:Scenario.Pmem ())
    | Aquila ->
        Microbench.Aq (Scenario.make_aquila ~frames ~dev:Scenario.Pmem ())
    | Cluster -> invalid_arg "Openloop.mmio_backend: cluster"
  in
  Microbench.enter sys;
  let region =
    Microbench.make_region sys ~name:"openloop.dat" ~pages:file_pages
  in
  let n = n_arrivals params ~rate in
  let slot, wr = request_plan ~seed:params.seed ~n ~space:file_pages in
  (* worker fibers enter the stack's thread context on first service *)
  let entered = Hashtbl.create 8 in
  let serve i =
    let fid = (Sim.Engine.self ()).Sim.Engine.fid in
    if not (Hashtbl.mem entered fid) then begin
      Hashtbl.add entered fid ();
      Microbench.enter sys
    end;
    region.Microbench.touch ~page:slot.(i) ~write:wr.(i)
  in
  let degraded =
    match sys with
    | Microbench.Aq s ->
        fun () ->
          Mcache.Dram_cache.degraded (Aquila.Context.cache s.Scenario.a_ctx)
    | Microbench.Lx _ -> fun () -> false
  in
  { Loadgen.name = kind_name kind; serve; degraded }

type point = {
  p_kind : kind;
  p_rate : float;
  p_res : Loadgen.result;
  p_final : int64;
  p_events : int;
}

let run_point params kind ~rate =
  let eng = Sim.Engine.create () in
  let cfg = lg_config params ~rate in
  let r =
    match kind with
    | Linux | Aquila -> Loadgen.run eng cfg (mmio_backend kind params ~rate)
    | Cluster ->
        (* boot + preload run the engine to a drain before the load
           starts; Loadgen offsets arrivals by the setup time *)
        let cl = Aqcluster.Cluster.create ~cfg:cl_cfg ~eng () in
        Aqcluster.Cluster.boot cl;
        let kv = Aqcluster.Cluster.kv cl in
        Ycsb.Runner.load ~eng ~record_count:cl_records
          ~value_bytes:cl_value_bytes ~insert:kv.Ycsb.Runner.kv_insert ();
        let n = n_arrivals params ~rate in
        let slot, wr = request_plan ~seed:params.seed ~n ~space:cl_records in
        let vrng = Sim.Rng.create (params.seed lxor 0x27d4eb2f) in
        let value = Ycsb.Runner.value_of vrng cl_value_bytes in
        let serve i =
          let key = Ycsb.Runner.key_of slot.(i) in
          try
            if wr.(i) then kv.Ycsb.Runner.kv_update key value
            else ignore (kv.Ycsb.Runner.kv_read key)
          with Aqcluster.Rpc.Unreachable _ -> ()
        in
        Loadgen.run eng cfg (fun () ->
            {
              Loadgen.name = kind_name Cluster;
              serve;
              degraded = (fun () -> Aqcluster.Cluster.degraded cl);
            })
  in
  {
    p_kind = kind;
    p_rate = rate;
    p_res = r;
    p_final = Sim.Engine.now eng;
    p_events = Sim.Engine.events eng;
  }

(* ---- reporting ---- *)

let rate_str r =
  if r >= 1e6 then Printf.sprintf "%.1fM" (r /. 1e6)
  else Printf.sprintf "%.0fk" (r /. 1e3)

let pctl h p = Stats.Histogram.percentile h p
let p99 pt = Int64.to_float (pctl pt.p_res.Loadgen.sojourn 99.)

let knee = function
  | [] -> None
  | base :: _ as points ->
      let b = Float.max 1. (p99 base) in
      List.find_opt (fun p -> p99 p > 8. *. b) points

let print_header () =
  Sim.Sink.printf "  %-8s %9s %9s %7s %7s %5s %10s %10s %10s\n" "rate"
    "arrivals" "done" "shed" "slo" "maxq" "p50" "p99" "p999"

let print_point pt =
  let r = pt.p_res in
  Sim.Sink.printf "  %-8s %9d %9d %7d %7d %5d %10Ld %10Ld %10Ld\n"
    (rate_str pt.p_rate) r.Loadgen.arrivals r.Loadgen.completions
    (Loadgen.shed r) r.Loadgen.slo_violations r.Loadgen.max_depth
    (pctl r.Loadgen.sojourn 50.) (pctl r.Loadgen.sojourn 99.)
    (pctl r.Loadgen.sojourn 99.9)

let default_rates = [ 5e4; 1e5; 2e5; 4e5; 8e5; 1.6e6; 3.2e6 ]

let sweep params kind rates = List.map (fun rate -> run_point params kind ~rate) rates

let run () =
  let params = default_params in
  Sim.Sink.printf
    "open-loop %s arrivals over %d Mcycles, %d workers, queue cap %d, SLO %d \
     cycles\n"
    (Loadgen.Arrival.shape_name params.shape)
    (params.horizon / 1_000_000)
    params.workers params.queue_cap params.slo_cycles;
  Sim.Sink.printf
    "mmio backends: DAX pmem, %d-frame cache, %d-page file (4x out of \
     memory), %.0f%% writes\n"
    frames file_pages
    (100. *. write_fraction);
  let report kind =
    let pts = sweep params kind default_rates in
    Sim.Sink.printf "%s:\n" (kind_name kind);
    print_header ();
    List.iter print_point pts;
    pts
  in
  let lx = report Linux in
  let aq = report Aquila in
  let cl = run_point params Cluster ~rate:2e5 in
  Sim.Sink.printf "cluster (%d nodes x %d replicas, YCSB keys, one point):\n"
    cl_nodes cl_replicas;
  print_header ();
  print_point cl;
  let growth pts =
    match pts with
    | [] -> 0.
    | base :: _ ->
        let top = List.nth pts (List.length pts - 1) in
        p99 top /. Float.max 1. (p99 base)
  in
  let knee_str pts =
    match knee pts with Some p -> rate_str p.p_rate | None -> "beyond grid"
  in
  Sim.Sink.printf
    "hockey stick: linux p99 grows %.0fx across the sweep (knee at %s); \
     aquila %.0fx (knee at %s)\n"
    (growth lx) (knee_str lx) (growth aq) (knee_str aq);
  let aquila_sustains_more =
    match (knee lx, knee aq) with
    | Some l, Some a -> a.p_rate > l.p_rate
    | Some _, None -> true (* aquila never kneed inside the grid *)
    | None, _ -> false
  in
  Sim.Sink.printf
    "  aquila sustains higher offered load before its p99 knee: %b\n"
    aquila_sustains_more

let loadtest ?(jobs = 1) ?fault ~backends ~rates params =
  let points =
    List.concat_map (fun k -> List.map (fun r -> (k, r)) rates) backends
  in
  Fanout.run ~jobs ?fault
    (List.map
       (fun (k, rate) ->
         Fanout.job
           ~name:(Printf.sprintf "loadtest %s %s" (kind_name k) (rate_str rate))
           (fun () ->
             let pt = run_point params k ~rate in
             Sim.Sink.printf "### loadtest %s %s rate %s\n" (kind_name k)
               (Loadgen.Arrival.shape_name params.shape)
               (rate_str rate);
             print_header ();
             print_point pt;
             Sim.Sink.printf
               "  admitted %d shed_full %d shed_degraded %d events %d final \
                cycles %Ld\n"
               pt.p_res.Loadgen.admitted pt.p_res.Loadgen.shed_full
               pt.p_res.Loadgen.shed_degraded pt.p_events pt.p_final))
       points)
