type workload = Zipf_mix | Scan_mix

let workload_name = function Zipf_mix -> "zipf" | Scan_mix -> "scan"

type row = {
  workload : workload;
  policy : Mcache.Policy.kind;
  ops : int;
  hits : int;
  misses : int;
  hit_rate : float;
  evictions : int;
  wb_pages : int;
  vtime_per_op : float;
  events : int;
  wall_s : float;
}

let with_policy policy c = { c with Mcache.Dram_cache.policy }

let finish ~workload ~policy ~ops ~eng ~start ~wall0 cache =
  let hits = Mcache.Dram_cache.fault_hits cache in
  let misses = Mcache.Dram_cache.misses cache in
  let elapsed = Int64.sub (Sim.Engine.now eng) start in
  {
    workload;
    policy;
    ops;
    hits;
    misses;
    (* access-level: the share of touches served from DRAM (mapped pages
       never reach the cache at all; only misses pay a device read) *)
    hit_rate =
      (if ops = 0 then 0.
       else float_of_int (ops - misses) /. float_of_int ops);
    evictions = Mcache.Dram_cache.evictions cache;
    wb_pages = Mcache.Dram_cache.writeback_pages cache;
    vtime_per_op =
      (if ops = 0 then 0. else Int64.to_float elapsed /. float_of_int ops);
    events = Sim.Engine.events eng;
    wall_s = Sys.time () -. wall0;
  }

(* Fig5-style pressure: a zipfian hot set over a file 4x the cache, some
   writes — replacement quality decides the hit rate. *)
let run_zipf ~frames ~threads ~ops_per_thread ~policy () =
  let wall0 = Sys.time () in
  let eng = Sim.Engine.create () in
  let stack =
    Scenario.make_aquila ~tweak:(with_policy policy) ~frames ~dev:Scenario.Pmem
      ()
  in
  let sys = Microbench.Aq stack in
  let start = Sim.Engine.now eng in
  let r =
    Microbench.run ~eng ~sys ~file_pages:(4 * frames) ~shared:true ~threads
      ~ops_per_thread ~write_fraction:0.2 ~pattern:Microbench.Zipf ()
  in
  finish ~workload:Zipf_mix ~policy ~ops:r.Microbench.ops ~eng ~start ~wall0
    (Aquila.Context.cache stack.Scenario.a_ctx)

(* The anti-LRU adversary: threads hammer a zipfian hot set that fits in
   half the cache, but every [scan_every] ops burst through a cache-sized
   run of cold pages exactly once.  Recency-only policies (strict LRU,
   and CLOCK to a lesser degree) let the one-shot scan flush the hot set;
   2Q's probationary queue is built to shrug it off. *)
let run_scan ~frames ~threads ~ops_per_thread ~policy () =
  let wall0 = Sys.time () in
  let eng = Sim.Engine.create () in
  let stack =
    Scenario.make_aquila ~tweak:(with_policy policy) ~frames ~dev:Scenario.Pmem
      ()
  in
  let sys = Microbench.Aq stack in
  let file_pages = 8 * frames in
  let hot_pages = max 1 (frames / 2) in
  let scan_len = frames in
  let cold_span = max 1 (file_pages - hot_pages) in
  let scan_every = 200 in
  let region = ref None in
  ignore
    (Sim.Engine.spawn eng ~name:"pa-setup" ~core:0 (fun () ->
         Microbench.enter sys;
         region :=
           Some (Microbench.make_region sys ~name:"scanmix.dat" ~pages:file_pages)));
  Sim.Engine.run eng;
  let start = Sim.Engine.now eng in
  let per_thread_ops = Array.make threads 0 in
  for i = 0 to threads - 1 do
    ignore
      (Sim.Engine.spawn eng ~name:(Printf.sprintf "pa-%d" i) ~core:(i mod 32)
         (fun () ->
           Microbench.enter sys;
           let r = Option.get !region in
           let rng = Sim.Rng.create (0x5ca + (i * 7919)) in
           let z = Ycsb.Zipfian.zipfian rng ~items:hot_pages in
           let scan_cursor = ref 0 in
           let ops_done = ref 0 in
           while !ops_done < ops_per_thread do
             incr ops_done;
             if !ops_done mod scan_every = 0 then begin
               for k = 0 to scan_len - 1 do
                 let page = hot_pages + ((!scan_cursor + k) mod cold_span) in
                 r.Microbench.touch ~page ~write:false;
                 incr ops_done
               done;
               scan_cursor := (!scan_cursor + scan_len) mod cold_span
             end
             else begin
               let page = Ycsb.Zipfian.next z in
               let write = Sim.Rng.float rng < 0.2 in
               r.Microbench.touch ~page ~write
             end
           done;
           per_thread_ops.(i) <- !ops_done))
  done;
  Sim.Engine.run eng;
  let ops = Array.fold_left ( + ) 0 per_thread_ops in
  finish ~workload:Scan_mix ~policy ~ops ~eng ~start ~wall0
    (Aquila.Context.cache stack.Scenario.a_ctx)

let run_one ?(frames = 1024) ?(threads = 8) ?(ops_per_thread = 4000) ~workload
    ~policy () =
  match workload with
  | Zipf_mix -> run_zipf ~frames ~threads ~ops_per_thread ~policy ()
  | Scan_mix -> run_scan ~frames ~threads ~ops_per_thread ~policy ()

let sweep ?frames ?threads ?ops_per_thread
    ?(policies = Mcache.Policy.all_kinds) () =
  List.concat_map
    (fun workload ->
      List.map
        (fun policy ->
          run_one ?frames ?threads ?ops_per_thread ~workload ~policy ())
        policies)
    [ Zipf_mix; Scan_mix ]

let print_rows rows =
  Stats.Table_fmt.print_table
    ~title:
      "Ablation: replacement policies (zipf: fig5-style 4x-cache pressure; \
       scan: hot set + one-shot cold scans)"
    ~header:
      [
        "workload"; "policy"; "ops"; "hit rate"; "misses"; "evictions";
        "wb pages"; "vcycles/op";
      ]
    (List.map
       (fun r ->
         [
           workload_name r.workload;
           Mcache.Policy.kind_to_string r.policy;
           string_of_int r.ops;
           Printf.sprintf "%.2f%%" (100. *. r.hit_rate);
           string_of_int r.misses;
           string_of_int r.evictions;
           string_of_int r.wb_pages;
           Printf.sprintf "%.0f" r.vtime_per_op;
         ])
       rows)

(* Flat dotted keys so the CI gate needs only a number parser, mirroring
   BENCH_engine.json.  Wall-clock-derived keys carry a ".wall" suffix the
   gate skips: they are real but noisy on shared runners. *)
let json_string rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  let first = ref true in
  let add key v =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b (Printf.sprintf "  %S: %s" key v)
  in
  List.iter
    (fun r ->
      let p key =
        Printf.sprintf "%s.%s.%s" (workload_name r.workload)
          (Mcache.Policy.kind_to_string r.policy)
          key
      in
      add (p "hit_rate") (Printf.sprintf "%.6f" r.hit_rate);
      add (p "misses") (string_of_int r.misses);
      add (p "evictions") (string_of_int r.evictions);
      add (p "wb_pages") (string_of_int r.wb_pages);
      add (p "vtime_per_op") (Printf.sprintf "%.3f" r.vtime_per_op);
      add (p "events_per_sec.wall")
        (Printf.sprintf "%.1f"
           (if r.wall_s > 0. then float_of_int r.events /. r.wall_s else 0.));
      add (p "seconds.wall") (Printf.sprintf "%.3f" r.wall_s))
    rows;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let run () = print_rows (sweep ())
