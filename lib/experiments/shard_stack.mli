(** Shard-owned partitioned cache state for free-running clusters.

    Splits one logical DRAM cache into a fixed number of [homes] —
    independent {!Mcache.Dram_cache} arenas, aggregated through
    {!Mcache.Partition} — and gives each home to a server fiber on
    cluster shard [home mod shards].  Requesters function-ship cache
    operations to the owning server over [Sim.Shard.post], charged one
    cluster lookahead per hop (>= [Hw.Costs.min_cross_shard_latency]);
    the server executes them in deterministic merge-key order
    [(timestamp, requester core, requester ordinal)], popping only
    strictly-past entries so arrival races can never reorder service.

    Because the home count is decoupled from the physical shard count —
    and every request pays the shipping latency even when requester and
    home share a shard — the virtual-time schedule, and therefore
    {!stats}, is byte-identical at any shard count and in free-running
    vs deterministic mode.  DESIGN.md §10. *)

type t

val create : homes:int -> cores:int -> lookahead:int64 -> unit -> t
(** Build the hub {e before} [Sim.Shard.run]; it is shared by every
    shard's builder.  [cores] bounds requester core ids (per-core
    ordinal counters).  [lookahead] must equal the cluster's. *)

val homes : t -> int
val lookahead : t -> int64
val home_of : t -> page:int -> int

val attach :
  t -> Sim.Shard.t -> make_arena:(home:int -> Mcache.Dram_cache.t) -> unit
(** Call from each shard's build function: constructs the arenas for the
    homes this shard owns ([home mod shards = sid]) via [make_arena] —
    so metric cells land on the executing domain — and spawns their
    server fibers (daemons; a drained cluster ends with them parked). *)

val ship :
  t -> Sim.Shard.t -> core:int -> (int * (Mcache.Dram_cache.t -> unit)) list -> unit
(** [ship t sh ~core jobs] posts each [(home, op)] to its owning server
    and blocks until every reply lands — the primitive {!fault_many} and
    {!msync_all} are built on.  Ops run inside the server fiber and may
    suspend; charge arena costs there. *)

val fault :
  t -> Sim.Shard.t -> core:int -> key:Mcache.Pagekey.t -> vpn:int -> write:bool -> unit
(** Ship one fault to the page's home and block until the reply.  Must
    run inside a requester fiber; [core] is the requester's global core
    id. *)

val fault_many :
  t -> Sim.Shard.t -> core:int -> (Mcache.Pagekey.t * int * bool) list -> unit
(** Pipelined batch: all requests post at the same timestamp, the fiber
    resumes when the last reply lands — the batching that buys the
    free-running wall-clock speedup (B outstanding requests amortize
    2 x lookahead per op into 2 x lookahead per batch). *)

val msync_all : t -> Sim.Shard.t -> core:int -> unit
(** Ship an msync to every home and await all replies. *)

val crash_all : t -> unit
(** Power-loss injection on every attached arena (outside the cluster:
    call after [Sim.Shard.run] returns, or from a post at a fixed
    virtual time). *)

val partition : t -> Mcache.Partition.t
(** The arenas as an {!Mcache.Partition} (all homes must be attached —
    valid once [Sim.Shard.run] returned, or in-cluster on a fully built
    single shard). *)

(** {1 Terminal statistics} *)

type stats = {
  homes_n : int;
  counters : Mcache.Partition.counters;  (** summed over arenas, home order *)
  served : int array;  (** requests executed per home *)
  local_ops : int;  (** requests whose home shared the requester's shard *)
  remote_ops : int;  (** requests that crossed shards *)
}

val stats : t -> stats
(** Everything except the local/remote split is invariant across shard
    counts and modes; [local_ops + remote_ops] is. *)

val stats_to_string : stats -> string
(** One-line N-invariant rendering (only the local+remote total appears)
    — the line CI's terminal-stats parity gates compare byte-for-byte. *)
