(* Multicore experiment fan-out (OCaml 5 domains).

   Experiments are embarrassingly parallel: each owns its engine, RNG,
   stacks and (domain-local) tracer, and all ambient counters the
   simulator keeps are domain-local too.  Workers pull job indices from a
   shared atomic, run each job with its output captured in the worker's
   domain-local sink, and the captured outputs are printed in job order
   afterwards — so [--jobs N] produces byte-identical stdout to a
   sequential run, just faster. *)

type job = { jname : string; jrun : unit -> unit }

let job ~name run = { jname = name; jrun = run }

(* Every job builds its own plan from the same spec, so injection is
   identical whatever worker domain (and [--jobs] degree) runs it; a
   power cut ends just that job, with the cut reported in its output. *)
let wrap_fault spec j =
  match spec with
  | None -> j
  | Some spec ->
      {
        j with
        jrun =
          (fun () ->
            let plan = Fault.Plan.make spec in
            try Fault.with_plan plan j.jrun
            with Fault.Crash { at_event } ->
              Sim.Sink.printf
                "[%s: power cut at event %d — volatile state discarded]\n"
                j.jname at_event);
      }

let run_seq js =
  List.iter
    (fun j ->
      j.jrun ();
      flush stdout)
    js

let run ?(jobs = 1) ?fault js =
  let js = List.map (wrap_fault fault) js in
  let n = List.length js in
  if jobs <= 1 || n <= 1 then run_seq js
  else begin
    flush stdout;
    let arr = Array.of_list js in
    let out = Array.make n "" in
    let err = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else begin
          let (), captured =
            Sim.Sink.capture (fun () ->
                try arr.(i).jrun ()
                with e ->
                  err.(i) <- Some (e, Printexc.get_raw_backtrace ()))
          in
          out.(i) <- captured
        end
      done
    in
    let extra = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join extra;
    Array.iter print_string out;
    flush stdout;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      err
  end
