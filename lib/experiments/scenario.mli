(** Shared experiment plumbing: builds the standard system stacks the
    paper compares, on either device, with scaled sizes (DESIGN.md §2).

    Every constructor returns a fresh, independent stack (own machine,
    device, blobstore, caches) so experiment runs never share state. *)

type dev = Pmem | Nvme

val dev_name : dev -> string

val device_pages : int
(** Standard device size every stack is built over: 131072 pages
    (512 MiB, the paper's 375 GB scaled — DESIGN.md §2). *)

type aquila_stack = {
  a_ctx : Aquila.Context.t;
  a_store : Blobstore.Store.t;
  a_access : Sdevice.Access.t;
  a_machine : Hw.Machine.t;
}

val set_policy : Mcache.Policy.kind -> unit
(** Sets the ambient cache-replacement policy picked up by every
    subsequently built Aquila stack (the CLI's [--policy] knob).  Call
    before running experiments; [tweak] still overrides it. *)

val policy : unit -> Mcache.Policy.kind
(** The current ambient policy (default {!Mcache.Policy.Clock}). *)

val make_aquila :
  ?domain:Hw.Domain_x.t ->
  ?tweak:(Mcache.Dram_cache.config -> Mcache.Dram_cache.config) ->
  frames:int ->
  dev:dev ->
  unit ->
  aquila_stack
(** Aquila over DAX pmem or SPDK NVMe.  [domain = Ring3] gives the
    [kmmap] variant (kernel mmio path: ring-3 traps, host device access).
    [tweak] adjusts the cache config (ablations). *)

val make_aquila_access :
  ?domain:Hw.Domain_x.t ->
  ?frames:int ->
  access:(Hw.Costs.t -> Blobstore.Store.t option -> Sdevice.Access.t) ->
  unit ->
  aquila_stack
(** Aquila with an arbitrary access method (Figure 8(c)); the callback
    receives the costs and may ignore the store. *)

type linux_stack = {
  l_msys : Linux_sim.Mmap_sys.t;
  l_store : Blobstore.Store.t;
  l_access : Sdevice.Access.t;
  l_machine : Hw.Machine.t;
}

val make_linux :
  ?readahead:int -> frames:int -> dev:dev -> unit -> linux_stack
(** Linux mmap over the kernel page cache ([readahead] defaults to the
    kernel's 32-page fault readaround; 1 models [madvise(MADV_RANDOM)]). *)

type ucache_stack = {
  u_cache : Uspace.User_cache.t;
  u_store : Blobstore.Store.t;
  u_access : Sdevice.Access.t;
}

val make_ucache : cache_pages:int -> dev:dev -> unit -> ucache_stack
(** Direct I/O + user-space cache (RocksDB's recommended mode). *)

val kv_of_rocksdb : Kvstore.Rocksdb_sim.t -> Ycsb.Runner.kv
val kv_of_kreon : Kvstore.Kreon_sim.t -> Ycsb.Runner.kv

val scale_note : string
(** One-line reminder of the 2^10 size scaling, printed by benches. *)

val with_trace :
  ?buffer_per_core:int ->
  ?out:string ->
  ?csv:string ->
  ?summary:int ->
  (unit -> 'a) ->
  'a
(** [with_trace f] runs [f] under an ambient {!Trace} tracer and exports
    the requested sinks afterwards: [out] writes Chrome Trace Event JSON
    (load in Perfetto / chrome://tracing), [csv] a flat CSV, [summary]
    a top-N span table on stdout.  With no sink requested [f] runs
    untraced.  The tracer is stopped even if [f] raises. *)

val with_metrics :
  ?out:string ->
  ?profile:string ->
  ?sample_period:int ->
  ?timeseries:string ->
  ?ts_period:int ->
  (unit -> 'a) ->
  'a
(** [with_metrics f] zeroes the (always-on) metrics registry, runs [f],
    and exports the requested sinks: [out] writes the merged snapshot
    (Prometheus text for [.prom]/[.txt] paths, flat JSON otherwise),
    [profile] starts the virtual-time sampling profiler (grid period
    [sample_period] cycles, default 10k) and writes folded stacks for
    flamegraph.pl / speedscope, [timeseries] records a full snapshot
    every [ts_period] virtual cycles (default 1M) and writes a long-form
    CSV.  With no sink requested, [f] runs untouched.  The profiler is
    domain-local — callers should force [--jobs 1] when profiling, as
    with tracing; plain counter snapshots merge across any fan-out. *)
