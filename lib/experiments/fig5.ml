(* Figure 5: RocksDB YCSB-C (uniform, 1 KiB values) under explicit
   read/write + user cache, Linux mmap, and Aquila — dataset fitting in the
   cache (a) and 4x larger (b). *)

let value_bytes = 1024
let thread_counts = [ 1; 8; 32 ]

(* SST data blocks hold 3 x ~1054 B records per 4 KiB page, so the
   on-device footprint is ~4/3 of the logical data; size the cache so the
   paper's "fits" / "4x larger" relations hold on device pages. *)
let cache_frames_for ~records ~fits =
  let device_pages = records * 110 / 300 in
  if fits then device_pages + 512 else (device_pages / 4) + 256

type syskind = Rw | Mmap | Aquila_s

let sys_label = function Rw -> "read/write" | Mmap -> "mmap" | Aquila_s -> "Aquila"

(* Build a loaded RocksDB on a fresh stack; returns ops closures and the
   per-thread contexts used for Figure 7's breakdown. *)
let build ~eng ~sys ~dev ~records ~cache_frames =
  let env =
    match sys with
    | Rw ->
        let s = Scenario.make_ucache ~cache_pages:cache_frames ~dev () in
        Kvstore.Env.direct_ucache ~store:s.Scenario.u_store ~costs:Hw.Costs.default
          ~device_access:s.Scenario.u_access ~ucache:s.Scenario.u_cache
    | Mmap ->
        let s = Scenario.make_linux ~frames:cache_frames ~dev () in
        Kvstore.Env.linux_mmap ~store:s.Scenario.l_store ~msys:s.Scenario.l_msys
          ~device_access:s.Scenario.l_access
    | Aquila_s ->
        let s = Scenario.make_aquila ~frames:cache_frames ~dev () in
        Kvstore.Env.aquila ~store:s.Scenario.a_store ~ctx:s.Scenario.a_ctx
          ~device_access:s.Scenario.a_access
  in
  let db = ref None in
  ignore
    (Sim.Engine.spawn eng ~name:"load" ~core:0 (fun () ->
         let d = Kvstore.Rocksdb_sim.create env () in
         let rng = Sim.Rng.create 99 in
         let records_l =
           List.init records (fun i ->
               (Ycsb.Runner.key_of i, Ycsb.Runner.value_of rng value_bytes))
         in
         Kvstore.Rocksdb_sim.bulk_load d records_l;
         db := Some d));
  Sim.Engine.run eng;
  match !db with Some d -> d | None -> assert false

type meas = {
  thr : float;
  avg_lat : float;
  p999 : float;
  ctxs : Sim.Engine.ctx list;
  ops : int;
}

let run_sys ~sys ~dev ~records ~fits ~threads_list =
  let eng = Sim.Engine.create () in
  let cache_frames = cache_frames_for ~records ~fits in
  let db = build ~eng ~sys ~dev ~records ~cache_frames in
  List.map
    (fun threads ->
      let r =
        Ycsb.Runner.run ~eng ~threads ~ops_per_thread:1000
          ~workload:Ycsb.Workload.c_uniform ~record_count:records ~value_bytes
          ~kv:(Scenario.kv_of_rocksdb db) ()
      in
      ( threads,
        {
          thr = r.Ycsb.Runner.throughput_ops_s;
          avg_lat = Stats.Histogram.mean r.Ycsb.Runner.latency;
          p999 =
            Int64.to_float (Stats.Histogram.percentile r.Ycsb.Runner.latency 99.9);
          ctxs = r.Ycsb.Runner.thread_ctxs;
          ops = r.Ycsb.Runner.ops;
        } ))
    threads_list

let run_panel ~records ~fits ~title ~paper_note =
  let systems = [ Rw; Mmap; Aquila_s ] in
  let devices = [ Scenario.Nvme; Scenario.Pmem ] in
  let all =
    List.concat_map
      (fun dev ->
        List.map
          (fun sys ->
            ((dev, sys), run_sys ~sys ~dev ~records ~fits ~threads_list:thread_counts))
          systems)
      devices
  in
  let cell dev sys threads =
    match List.assoc_opt (dev, sys) all with
    | Some rows -> List.assoc_opt threads rows
    | None -> None
  in
  let fmt_thr = function Some m -> Stats.Table_fmt.ops_per_sec m.thr | None -> "-" in
  let ratio a b = match (a, b) with Some x, Some y -> Stats.Table_fmt.speedup (x.thr /. y.thr) | _ -> "-" in
  let rows =
    List.concat_map
      (fun dev ->
        List.map
          (fun threads ->
            let rw = cell dev Rw threads
            and mm = cell dev Mmap threads
            and aq = cell dev Aquila_s threads in
            [
              Scenario.dev_name dev;
              string_of_int threads;
              fmt_thr rw;
              fmt_thr mm;
              fmt_thr aq;
              ratio aq rw;
              ratio aq mm;
            ])
          thread_counts)
      devices
  in
  Stats.Table_fmt.print_table ~title
    ~header:
      [ "device"; "threads"; "read/write"; "mmap"; "Aquila"; "Aq/rw"; "Aq/mmap" ]
    rows;
  Sim.Sink.printf "%s\n" paper_note;
  all

let run_a () =
  ignore
    (run_panel ~records:8192 ~fits:true
       ~title:"Figure 5(a): RocksDB YCSB-C, dataset fits in the cache"
       ~paper_note:
         "paper: mmap beats read/write in-memory; Aquila up to 1.15x over mmap")

let run_b () =
  ignore
    (run_panel ~records:32768 ~fits:false
       ~title:"Figure 5(b): RocksDB YCSB-C, dataset 4x the cache"
       ~paper_note:
         "paper: mmap collapses out-of-memory; Aquila 1.18x-1.65x over read/write \
          on pmem, ~1x on NVMe (device-bound)")

(* Shared with Figure 7: a single out-of-memory pmem run returning
   breakdown-ready measurements. *)
let run_for_breakdown ~sys ~threads =
  let rows =
    run_sys ~sys ~dev:Scenario.Pmem ~records:32768 ~fits:false
      ~threads_list:[ threads ]
  in
  List.assoc threads rows
