(* Figure 6: Ligra BFS with the heap extended over fast storage —
   Linux mmap vs Aquila (pmem / NVMe) vs DRAM-only. *)

let n_vertices = 100_000
let n_edges = 1_000_000

(* On-surface footprint per element.  The graph is scaled down ~1000x from
   the paper's 100M vertices, which would pack ~512 vertices per 4 KiB page
   and hide the fault-dominance of the real workload; a 128 B footprint
   keeps the working-set : cache ratio and the access sparsity (DESIGN.md
   §2). *)
let elem_bytes = 32

(* CSR out + in, parents and two dense bitmaps: ~2.3M elements *)
let heap_pages =
  ((2 * (n_vertices + 1 + n_edges)) + (3 * n_vertices)) * elem_bytes / 4096 + 64

let thread_counts = [ 1; 8; 16 ]

(* caches: paper uses 8 GB and 16 GB against a ~64 GB Ligra heap *)
let frames_small = heap_pages / 8
let frames_large = heap_pages / 4

let graph = lazy (Ligra.Rmat.generate ~seed:12 ~n:n_vertices ~m:n_edges ())

type cfgkind = Dram_only | Mmap_pmem | Mmap_nvme | Aquila_pmem | Aquila_nvme

let cfg_name = function
  | Dram_only -> "DRAM-only"
  | Mmap_pmem -> "mmap/pmem"
  | Mmap_nvme -> "mmap/NVMe"
  | Aquila_pmem -> "Aquila/pmem"
  | Aquila_nvme -> "Aquila/NVMe"

type run_out = {
  seconds : float;
  user_pct : float;
  sys_pct : float;
  idle_pct : float;
}

let run_one ~cfg ~frames ~threads =
  let eng = Sim.Engine.create () in
  let g = Lazy.force graph in
  let surface_ref = ref None in
  (* surfaces must be created inside a fiber (mmap charges costs) *)
  ignore
    (Sim.Engine.spawn eng ~name:"setup" ~core:0 (fun () ->
         let mk_aquila dev =
           let s = Scenario.make_aquila ~frames ~dev () in
           Aquila.Context.enter_thread s.Scenario.a_ctx;
           let blob =
             Blobstore.Store.create_blob s.Scenario.a_store ~name:"heap"
               ~pages:heap_pages ()
           in
           let translate p =
             if p < heap_pages then Some (Blobstore.Store.device_page blob p)
             else None
           in
           let f =
             Aquila.Context.attach_file s.Scenario.a_ctx ~name:"heap"
               ~access:s.Scenario.a_access ~translate ~size_pages:heap_pages
           in
           let r = Aquila.Context.mmap s.Scenario.a_ctx f ~npages:heap_pages () in
           Ligra.Mem_surface.aquila ~elem_bytes s.Scenario.a_ctx r
         in
         let mk_linux dev =
           let s = Scenario.make_linux ~readahead:1 ~frames ~dev () in
           Linux_sim.Mmap_sys.enter_thread s.Scenario.l_msys;
           let blob =
             Blobstore.Store.create_blob s.Scenario.l_store ~name:"heap"
               ~pages:heap_pages ()
           in
           let translate p =
             if p < heap_pages then Some (Blobstore.Store.device_page blob p)
             else None
           in
           let f =
             Linux_sim.Mmap_sys.attach_file s.Scenario.l_msys ~name:"heap"
               ~access:s.Scenario.l_access ~translate ~size_pages:heap_pages
           in
           let r = Linux_sim.Mmap_sys.mmap s.Scenario.l_msys f ~npages:heap_pages () in
           Ligra.Mem_surface.linux ~elem_bytes s.Scenario.l_msys r
         in
         surface_ref :=
           Some
             (match cfg with
             | Dram_only -> Ligra.Mem_surface.dram ()
             | Mmap_pmem -> mk_linux Scenario.Pmem
             | Mmap_nvme -> mk_linux Scenario.Nvme
             | Aquila_pmem -> mk_aquila Scenario.Pmem
             | Aquila_nvme -> mk_aquila Scenario.Nvme)));
  Sim.Engine.run eng;
  let surface = Option.get !surface_ref in
  let r = Ligra.Bfs.run ~eng ~graph:g ~surface ~threads ~source:0 () in
  let u, s, i =
    List.fold_left
      (fun (u, s, i) (c : Sim.Engine.ctx) ->
        ( Int64.add u (Int64.of_int c.Sim.Engine.user),
          Int64.add s (Int64.of_int c.Sim.Engine.sys),
          Int64.add i (Int64.of_int c.Sim.Engine.idle) ))
      (0L, 0L, 0L) r.Ligra.Bfs.thread_ctxs
  in
  let tot = Int64.to_float (Int64.add (Int64.add u s) i) in
  let pct x = if tot > 0. then 100. *. Int64.to_float x /. tot else 0. in
  {
    seconds = Int64.to_float r.Ligra.Bfs.elapsed_cycles /. 2.4e9;
    user_pct = pct u;
    sys_pct = pct s;
    idle_pct = pct i;
  }

let run_panel ~frames ~title =
  let cfgs = [ Mmap_pmem; Aquila_pmem; Mmap_nvme; Aquila_nvme; Dram_only ] in
  let cells =
    List.concat_map
      (fun cfg ->
        List.map
          (fun threads -> ((cfg, threads), run_one ~cfg ~frames ~threads))
          thread_counts)
      cfgs
  in
  let rows =
    List.map
      (fun threads ->
        let get cfg = List.assoc (cfg, threads) cells in
        let mp = get Mmap_pmem
        and ap = get Aquila_pmem
        and mn = get Mmap_nvme
        and an = get Aquila_nvme
        and dr = get Dram_only in
        [
          string_of_int threads;
          Stats.Table_fmt.seconds mp.seconds;
          Stats.Table_fmt.seconds ap.seconds;
          Stats.Table_fmt.speedup (mp.seconds /. ap.seconds);
          Stats.Table_fmt.seconds mn.seconds;
          Stats.Table_fmt.seconds an.seconds;
          Stats.Table_fmt.speedup (mn.seconds /. an.seconds);
          Stats.Table_fmt.seconds dr.seconds;
          Stats.Table_fmt.speedup (ap.seconds /. dr.seconds);
        ])
      thread_counts
  in
  Stats.Table_fmt.print_table ~title
    ~header:
      [
        "threads"; "mmap/pmem"; "Aquila/pmem"; "speedup"; "mmap/NVMe"; "Aquila/NVMe";
        "speedup"; "DRAM-only"; "Aq-pmem vs DRAM";
      ]
    rows;
  cells

let run_a () =
  let cells =
    run_panel ~frames:frames_small
      ~title:"Figure 6(a): Ligra BFS execution time, cache = heap/8 (paper: 8GB)"
  in
  Sim.Sink.printf
    "paper: Aquila vs mmap (pmem) 1.56x @1thr, 2.54x @8thr, 4.14x @16thr; gap to \
     DRAM-only closes to 2.8-3.2x\n";
  ignore cells

let run_b () =
  ignore
    (run_panel ~frames:frames_large
       ~title:"Figure 6(b): Ligra BFS execution time, cache = heap/4 (paper: 16GB)");
  Sim.Sink.printf "paper: up to 2.3x over mmap at 16 threads with the larger cache\n"

let run_c () =
  let frames = frames_small and threads = 16 in
  let rows =
    List.map
      (fun cfg ->
        let r = run_one ~cfg ~frames ~threads in
        [
          cfg_name cfg;
          Stats.Table_fmt.pct r.user_pct;
          Stats.Table_fmt.pct r.sys_pct;
          Stats.Table_fmt.pct r.idle_pct;
          Stats.Table_fmt.seconds r.seconds;
        ])
      [ Mmap_pmem; Aquila_pmem; Mmap_nvme; Aquila_nvme; Dram_only ]
  in
  Stats.Table_fmt.print_table
    ~title:"Figure 6(c): Ligra BFS time breakdown (16 threads, small cache)"
    ~header:[ "config"; "user"; "system"; "idle"; "exec time" ]
    rows;
  Sim.Sink.printf
    "paper (pmem): mmap 10.6%% user / 61.8%% system; Aquila 55.9%% user / 43.8%% \
     system, 8.31x lower system+idle time\n"
