type dev = Pmem | Nvme

let dev_name = function Pmem -> "pmem" | Nvme -> "NVMe"

let costs = Hw.Costs.default
let psz = Hw.Defs.page_size
let device_pages = 131072 (* 512 MiB of device space, scaled from 375 GB *)

let fresh_device dev =
  match dev with
  | Pmem ->
      let p =
        Sdevice.Pmem.create
          ~capacity_bytes:(Int64.of_int (device_pages * psz))
          ()
      in
      `P p
  | Nvme ->
      let n =
        Sdevice.Nvme.create ~capacity_bytes:(Int64.of_int (device_pages * psz)) ()
      in
      `N n

type aquila_stack = {
  a_ctx : Aquila.Context.t;
  a_store : Blobstore.Store.t;
  a_access : Sdevice.Access.t;
  a_machine : Hw.Machine.t;
}

let aquila_access ~domain dev =
  match (dev, domain) with
  | `P p, Hw.Domain_x.Nonroot_ring0 -> Sdevice.Access.dax_pmem costs p
  | `N n, Hw.Domain_x.Nonroot_ring0 -> Sdevice.Access.spdk_nvme costs n
  (* kmmap: the kernel's own mmio path reaches devices from ring 0 *)
  | `P p, Hw.Domain_x.Ring3 ->
      Sdevice.Access.host_pmem costs ~entry:Sdevice.Access.In_kernel p
  | `N n, Hw.Domain_x.Ring3 ->
      Sdevice.Access.host_nvme costs ~entry:Sdevice.Access.In_kernel n

(* Ambient replacement policy: set once by the CLI / bench drivers before
   any experiment (or fan-out worker) builds a stack, then only read.
   [tweak] is applied after, so per-experiment ablations still win. *)
let ambient_policy = ref Mcache.Policy.Clock
let set_policy k = ambient_policy := k
let policy () = !ambient_policy

let make_aquila ?(domain = Hw.Domain_x.Nonroot_ring0) ?(tweak = Fun.id) ~frames
    ~dev () =
  let machine = Hw.Machine.create () in
  let device = fresh_device dev in
  let access = aquila_access ~domain device in
  let store = Blobstore.Store.create ~capacity_pages:device_pages () in
  let cfg =
    {
      (Aquila.Context.default_config ~cache_frames:frames) with
      Aquila.Context.cache =
        tweak
          {
            (Mcache.Dram_cache.default_config ~frames) with
            Mcache.Dram_cache.policy = policy ();
          };
      domain;
    }
  in
  let ctx = Aquila.Context.create ~costs ~machine cfg in
  { a_ctx = ctx; a_store = store; a_access = access; a_machine = machine }

let make_aquila_access ?(domain = Hw.Domain_x.Nonroot_ring0) ?(frames = 2048)
    ~access () =
  let machine = Hw.Machine.create () in
  let store = Blobstore.Store.create ~capacity_pages:device_pages () in
  let base = Aquila.Context.default_config ~cache_frames:frames in
  let cfg =
    {
      base with
      Aquila.Context.cache =
        { base.Aquila.Context.cache with Mcache.Dram_cache.policy = policy () };
      domain;
    }
  in
  let ctx = Aquila.Context.create ~costs ~machine cfg in
  {
    a_ctx = ctx;
    a_store = store;
    a_access = access costs (Some store);
    a_machine = machine;
  }

type linux_stack = {
  l_msys : Linux_sim.Mmap_sys.t;
  l_store : Blobstore.Store.t;
  l_access : Sdevice.Access.t;
  l_machine : Hw.Machine.t;
}

let host_access ~entry dev =
  match dev with
  | `P p -> Sdevice.Access.host_pmem costs ~entry p
  | `N n -> Sdevice.Access.host_nvme costs ~entry n

let make_linux ?(readahead = 32) ~frames ~dev () =
  let machine = Hw.Machine.create () in
  let device = fresh_device dev in
  let access = host_access ~entry:Sdevice.Access.In_kernel device in
  let store = Blobstore.Store.create ~capacity_pages:device_pages () in
  let cfg =
    {
      Linux_sim.Mmap_sys.cache =
        { (Linux_sim.Page_cache.default_config ~frames) with readahead };
      vma_rb_cost_multiplier = 1;
    }
  in
  let msys = Linux_sim.Mmap_sys.create ~costs ~machine cfg in
  { l_msys = msys; l_store = store; l_access = access; l_machine = machine }

type ucache_stack = {
  u_cache : Uspace.User_cache.t;
  u_store : Blobstore.Store.t;
  u_access : Sdevice.Access.t;
}

let make_ucache ~cache_pages ~dev () =
  let device = fresh_device dev in
  let access = host_access ~entry:Sdevice.Access.From_user device in
  let store = Blobstore.Store.create ~capacity_pages:device_pages () in
  let ucache =
    Uspace.User_cache.create
      (Uspace.User_cache.default_config ~capacity_pages:cache_pages)
  in
  { u_cache = ucache; u_store = store; u_access = access }

let kv_of_rocksdb db =
  {
    Ycsb.Runner.kv_read = (fun k -> Kvstore.Rocksdb_sim.get db k);
    kv_update = (fun k v -> Kvstore.Rocksdb_sim.put db k v);
    kv_insert = (fun k v -> Kvstore.Rocksdb_sim.put db k v);
    kv_scan = (fun ~start ~n -> Kvstore.Rocksdb_sim.scan db ~start ~n);
    kv_rmw =
      (fun k f ->
        let v = match Kvstore.Rocksdb_sim.get db k with Some v -> v | None -> "" in
        Kvstore.Rocksdb_sim.put db k (f v));
  }

let kv_of_kreon db =
  {
    Ycsb.Runner.kv_read = (fun k -> Kvstore.Kreon_sim.get db k);
    kv_update = (fun k v -> Kvstore.Kreon_sim.put db k v);
    kv_insert = (fun k v -> Kvstore.Kreon_sim.put db k v);
    kv_scan = (fun ~start ~n -> Kvstore.Kreon_sim.scan db ~start ~n);
    kv_rmw =
      (fun k f ->
        let v = match Kvstore.Kreon_sim.get db k with Some v -> v | None -> "" in
        Kvstore.Kreon_sim.put db k (f v));
  }

let scale_note =
  "sizes scaled ~2^10 vs the paper (GB->MB); ratios, batch amortization and \
   cost constants preserved (DESIGN.md #2)"

(* Run [f] under an ambient tracer and export the requested sinks.  With
   no sink requested, [f] runs untraced (the fast path).  Used by the CLI
   to thread --trace through any experiment without touching its code. *)
let with_trace ?(buffer_per_core = 4096) ?out ?csv ?summary f =
  match (out, csv, summary) with
  | None, None, None -> f ()
  | _ ->
      ignore (Trace.start ~capacity_per_core:buffer_per_core ());
      let finish () =
        match Trace.stop () with
        | None -> ()
        | Some tr ->
            (match out with
            | Some path ->
                Trace.write_chrome_json tr path;
                Sim.Sink.printf "trace: %d events (%d dropped) -> %s\n%!"
                  (Trace.events_count tr) (Trace.dropped tr) path
            | None -> ());
            (match csv with Some path -> Trace.write_csv tr path | None -> ());
            (match summary with
            | Some top -> Trace.print_summary ~top tr
            | None -> ())
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          ignore (Trace.stop ());
          raise e)

(* Run [f] with a fresh metrics epoch and export the requested sinks.
   Counters are always on, so "fresh epoch" just zeroes the registry —
   the snapshot then covers exactly this run, whatever ran earlier in
   the process.  [profile]/[timeseries] additionally start the
   virtual-time sampling profiler (domain-local: callers force a
   sequential run, as with tracing). *)
let with_metrics ?out ?profile ?(sample_period = 10_000) ?timeseries
    ?(ts_period = 1_000_000) f =
  match (out, profile, timeseries) with
  | None, None, None -> f ()
  | _ ->
      Metrics.Registry.reset ();
      let profiling = profile <> None || timeseries <> None in
      if profiling then
        Metrics.Profile.start ~period:sample_period
          ~ts_period:(match timeseries with None -> 0 | Some _ -> ts_period)
          ();
      let finish () =
        if profiling then Metrics.Profile.stop ();
        (match out with
        | Some path ->
            Metrics.Export.write ~path (Metrics.Registry.snapshot ());
            Sim.Sink.printf "metrics: snapshot -> %s\n%!" path
        | None -> ());
        (match profile with
        | Some path ->
            Metrics.Export.to_file path (Metrics.Profile.folded ());
            Sim.Sink.printf "metrics: folded profile -> %s\n%!" path
        | None -> ());
        match timeseries with
        | Some path ->
            Metrics.Export.to_file path (Metrics.Profile.timeseries_csv ());
            Sim.Sink.printf "metrics: timeseries -> %s\n%!" path
        | None -> ()
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          if profiling then Metrics.Profile.stop ();
          raise e)
