(* Free-running shard-partitioned experiments (the fig5/fig10 shapes on
   [Shard_stack]).

   One logical mapped file is partitioned into [homes] fixed arenas —
   page [p] belongs to home [p mod homes] — each a complete Aquila DRAM
   cache over its own slice of the blobstore and its own device, owned
   by a server fiber on cluster shard [home mod shards].  [cores]
   requester fibers (core [c] on shard [c mod shards]) drive batched
   page faults through the function-shipping transport; every access,
   local or not, pays one cluster lookahead per hop, which is what
   makes the virtual-time schedule — and the terminal stats below — a
   pure function of the parameters, independent of the shard count and
   of free-running vs deterministic mode.

   Space comes from ONE shared blobstore created with [~shards:homes]:
   each home's blob allocates from its own free-cluster partition
   ([~shard:home]) before the cluster starts (the store is never touched
   mid-run, so it is read-only shared state); each home then reaches its
   device pages through its own NVMe instance with [~queues:homes]
   per-core submission queues.  The server fiber for home [h] is pinned
   to engine core [h], so its submissions land on SQ [h mod queues] —
   the per-shard submission pattern the paper's runtime gives each
   core. *)

let psz = Hw.Defs.page_size

type pattern = Uniform | Zipf

type params = {
  homes : int;  (** fixed logical arena count — invariant across shard counts *)
  cores : int;  (** requester fibers, statically routed core mod shards *)
  ops_per_core : int;
  batch : int;  (** pipelined faults per ship (outstanding window) *)
  frames_per_home : int;
  file_pages : int;  (** logical file size; > homes*frames forces eviction *)
  write_fraction : float;
  pattern : pattern;
  msync_every : int;  (** batches between msync_all rounds; 0 = never *)
  crash_at : int option;
      (** virtual time at which a crasher fiber ships a power-loss to
          every home (arenas drop DRAM state; later faults re-read) *)
  seed : int;
}

(* fig5(b) shape: uniform reads over a file ~4x the aggregate cache, the
   out-of-memory YCSB-C point. *)
let fig5_params =
  {
    homes = 8;
    cores = 32;
    ops_per_core = 400;
    batch = 8;
    frames_per_home = 256;
    file_pages = 8192;
    write_fraction = 0.0;
    pattern = Uniform;
    msync_every = 0;
    crash_at = None;
    seed = 11;
  }

(* fig10(a) shape: the dataset fits — first-touch faults, then hits. *)
let fig10_params =
  {
    homes = 8;
    cores = 32;
    ops_per_core = 400;
    batch = 8;
    frames_per_home = 1024;
    file_pages = 6144;
    write_fraction = 0.0;
    pattern = Zipf;
    msync_every = 0;
    crash_at = None;
    seed = 13;
  }

(* faultcheck shape: writes + periodic msync + a mid-run power loss. *)
let crash_params =
  {
    homes = 4;
    cores = 16;
    ops_per_core = 300;
    batch = 8;
    frames_per_home = 256;
    file_pages = 2048;
    write_fraction = 0.5;
    pattern = Uniform;
    msync_every = 8;
    crash_at = Some 40_000_000;
    seed = 17;
  }

let default_lookahead = Pdes_bench.default_lookahead

let pages_of_home p h = (p.file_pages - h + p.homes - 1) / p.homes

(* One arena = one home's private Aquila cache stack: its own machine,
   page table, NVMe device and cache, reaching only the pages it owns
   through its blob.  Built by [attach] on the owning domain so metric
   cells land where the shard executes. *)
let make_arena p blobs ~home =
  let costs = Hw.Costs.default in
  let machine = Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  let dev =
    Sdevice.Nvme.create ~queues:p.homes
      ~name:(Printf.sprintf "nvme-h%d" home)
      ~capacity_bytes:(Int64.of_int (Scenario.device_pages * psz))
      ()
  in
  let access = Sdevice.Access.spdk_nvme costs dev in
  let cfg =
    {
      (Mcache.Dram_cache.default_config ~frames:p.frames_per_home) with
      Mcache.Dram_cache.policy = Scenario.policy ();
    }
  in
  let cache = Mcache.Dram_cache.create ~costs ~machine ~page_table:pt cfg in
  let blob = blobs.(home) in
  Mcache.Dram_cache.register_file cache ~file_id:0 ~access
    ~translate:(fun lp ->
      if lp >= 0 && lp < p.file_pages && lp mod p.homes = home then
        Some (Blobstore.Store.device_page blob (lp / p.homes))
      else None);
  Mcache.Dram_cache.set_shoot_cores cache [ 0 ];
  cache

let key page = Mcache.Pagekey.make ~file:0 ~page

let build p hub blobs sh =
  let nshards = Sim.Shard.shards sh in
  let sid = Sim.Shard.sid sh in
  let eng = Sim.Shard.engine sh in
  Shard_stack.attach hub sh ~make_arena:(make_arena p blobs);
  (* requesters *)
  for core = 0 to p.cores - 1 do
    if core mod nshards = sid then begin
      let rng = Sim.Rng.create (p.seed + (core * 6151)) in
      ignore
        (Sim.Engine.spawn eng
           ~name:(Printf.sprintf "req-%d" core)
           ~core
           (fun () ->
             let z =
               match p.pattern with
               | Zipf -> Some (Ycsb.Zipfian.zipfian rng ~items:p.file_pages)
               | Uniform -> None
             in
             let next_page () =
               match z with
               | Some z -> Ycsb.Zipfian.next z
               | None -> Sim.Rng.int rng p.file_pages
             in
             let batches = (p.ops_per_core + p.batch - 1) / p.batch in
             let done_ = ref 0 in
             for b = 1 to batches do
               let n = min p.batch (p.ops_per_core - !done_) in
               done_ := !done_ + n;
               let items =
                 List.init n (fun _ ->
                     let page = next_page () in
                     let write = Sim.Rng.float rng < p.write_fraction in
                     (key page, page, write))
               in
               Shard_stack.fault_many hub sh ~core items;
               if p.msync_every > 0 && b mod p.msync_every = 0 then
                 Shard_stack.msync_all hub sh ~core
             done))
    end
  done;
  (* the crasher: one extra requester (core id [p.cores]) on shard 0
     that sleeps to the crash time, then ships a power loss to every
     home — just another request, so it lands at a deterministic slot in
     each server's merge order at any shard count and in either mode *)
  match p.crash_at with
  | Some at when sid = 0 ->
      ignore
        (Sim.Engine.spawn eng ~name:"crasher" ~core:p.cores (fun () ->
             let now = Sim.Engine.now eng in
             if Int64.compare (Int64.of_int at) now > 0 then
               Sim.Engine.idle_wait (Int64.sub (Int64.of_int at) now);
             Shard_stack.ship hub sh ~core:p.cores
               (List.init p.homes (fun hid ->
                    (hid, fun arena -> Mcache.Dram_cache.crash arena)))))
  | _ -> ()

let run ?(deterministic = false) ?(shards = 1) ?(lookahead = default_lookahead)
    ?(p = fig5_params) () =
  (* shared blobstore, partitioned [~shards:homes]; all allocation
     happens here on the calling domain — mid-run it is read-only *)
  let store =
    Blobstore.Store.create ~capacity_pages:Scenario.device_pages
      ~shards:p.homes ()
  in
  let blobs =
    Array.init p.homes (fun h ->
        Blobstore.Store.create_blob store
          ~name:(Printf.sprintf "part-%d.dat" h)
          ~shard:h ~pages:(pages_of_home p h) ())
  in
  let hub =
    Shard_stack.create ~homes:p.homes ~cores:(p.cores + 1) ~lookahead ()
  in
  let st =
    Sim.Shard.run ~deterministic ~seed:p.seed ~shards ~lookahead
      (build p hub blobs)
  in
  (st, Shard_stack.stats hub)

(* Ambient cluster mode, set once by the CLI before registry dispatch —
   how [--shards]/[--deterministic] reach the registry's thunks. *)
let ambient = ref (1, false)
let set_mode ~shards ~deterministic = ambient := (shards, deterministic)
let mode () = !ambient

(* Terminal stats: the invariant lines are byte-identical at any shard
   count and in either mode (CI compares them); '#'-prefixed balance
   lines are the N-dependent load picture and are filtered out by the
   parity gates. *)
let print_result ~title (st : Sim.Shard.stats) (ss : Shard_stack.stats) =
  Sim.Sink.printf "%s\n" title;
  Sim.Sink.printf "%s\n" (Shard_stack.stats_to_string ss);
  Sim.Sink.printf "events=%d final_cycles=%Ld windows=%d\n" st.Sim.Shard.events
    st.Sim.Shard.final_cycles st.Sim.Shard.windows;
  Sim.Sink.printf "# shards=%d cross_posts=%d shard_events=[%s] shard_drains=[%s]\n"
    st.Sim.Shard.shards st.Sim.Shard.cross_posts
    (String.concat ";"
       (Array.to_list (Array.map string_of_int st.Sim.Shard.shard_events)))
    (String.concat ";"
       (Array.to_list (Array.map string_of_int st.Sim.Shard.shard_drains)))

let run_named ~title p =
  let shards, deterministic = mode () in
  let st, ss = run ~deterministic ~shards ~p () in
  print_result ~title st ss

let run_fig5s () =
  run_named
    ~title:
      "Figure 5s: shard-partitioned uniform reads, out-of-memory (free-running \
       under --shards N; stats invariant across N and mode)"
    fig5_params

let run_fig10s () =
  run_named
    ~title:
      "Figure 10s: shard-partitioned zipf reads, dataset fits (first-touch \
       faults then hits)"
    fig10_params

let run_crashcheck () =
  run_named
    ~title:
      "Crashcheck-s: shard-partitioned writes + msync with a mid-run power \
       loss shipped to every home"
    crash_params
