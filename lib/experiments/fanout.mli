(** Multicore experiment fan-out over OCaml 5 domains.

    Each job owns its engine/RNG/tracer; ambient simulator state
    (tracer, IPI counters, output sink) is domain-local, so jobs are
    fully isolated and per-job results are identical to a sequential
    run.  Output is captured per job and printed in job order, making
    stdout byte-identical regardless of the parallelism degree. *)

type job = { jname : string; jrun : unit -> unit }

val job : name:string -> (unit -> unit) -> job

val run : ?jobs:int -> job list -> unit
(** [run ~jobs js] executes [js] on up to [jobs] domains ([jobs <= 1]
    runs sequentially, streaming output directly).  If any job raised,
    the first exception (in job order) is re-raised after every job's
    output has been printed. *)
