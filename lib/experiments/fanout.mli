(** Multicore experiment fan-out over OCaml 5 domains.

    Each job owns its engine/RNG/tracer; ambient simulator state
    (tracer, IPI counters, output sink) is domain-local, so jobs are
    fully isolated and per-job results are identical to a sequential
    run.  Output is captured per job and printed in job order, making
    stdout byte-identical regardless of the parallelism degree. *)

type job = { jname : string; jrun : unit -> unit }

val job : name:string -> (unit -> unit) -> job

val run : ?jobs:int -> ?fault:Fault.Plan.spec -> job list -> unit
(** [run ~jobs js] executes [js] on up to [jobs] domains ([jobs <= 1]
    runs sequentially, streaming output directly).  If any job raised,
    the first exception (in job order) is re-raised after every job's
    output has been printed.

    [fault] installs a fresh {!Fault.Plan} built from the spec around
    each job (in whichever domain runs it), so fault injection composes
    with [--jobs]: per-job injection — and therefore output — is
    byte-identical at any parallelism degree.  An injected power cut
    ({!Fault.Crash}) ends only that job and is reported in its output. *)
