(* Shard-owned partitioned experiment state for free-running clusters.

   One logical cache is split into [homes] fixed arenas (an
   [Mcache.Partition] built at collection time); home [h] is owned by
   the server fiber running on cluster shard [h mod N].  Decoupling the
   logical home count from the physical shard count N is what makes the
   virtual-time schedule N-invariant: pages route by [page mod homes],
   requests carry merge keys derived only from the requester's clock and
   id, and the servers execute them in key order — so the same requests
   hit the same arenas in the same order whatever N is, and whether the
   cluster free-runs on N domains or replays deterministically on one.

   Transport is function shipping over [Sim.Shard.post]: a requester at
   time [t] posts its operation to the owning shard at [t + lookahead]
   (the cluster's conservative promise; >= the model's
   [Hw.Costs.min_cross_shard_latency]), the home server executes it —
   charging all cache/device costs on the home's engine — and posts the
   reply back at [t' + lookahead].  Every request pays the hop, even
   when requester and home share a shard: charging the same latency on
   the local path is the price of N-invariance, exactly the discipline
   the deterministic-merge contract demands.

   The per-home pending queue is ordered by [(at, requester core,
   requester ordinal)].  A server only pops entries with [at] strictly
   in the past: the conservative promise guarantees every event with a
   timestamp below the shard's clock has already been delivered, so
   popping [at < now] (and idle-waiting to [at + 1] otherwise) makes the
   service order a pure function of the request keys — arrival races
   between domains can never reorder it.

   Mutation discipline (what makes this safe across domains with no
   locks): each [home] record is written only by its owning shard after
   the build barrier; requester-side counters are per-core single-writer
   arrays; closures cross domains only through the inbox mutex, whose
   lock/unlock pair publishes them. *)

module Pagekey = Mcache.Pagekey

type request = {
  at : int; (* arrival timestamp (requester now + lookahead) *)
  rcore : int; (* requester core — second merge key *)
  ord : int; (* requester-core ordinal — third merge key *)
  op : Sim.Shard.t -> unit; (* runs in the home server fiber *)
}

type home = {
  hid : int;
  mutable arena : Mcache.Dram_cache.t option; (* set by [attach] on the owner *)
  mutable pending : request list; (* sorted by (at, rcore, ord); owner-only *)
  mutable wake : (unit -> unit) option; (* parked server's resume *)
  mutable served : int;
}

type t = {
  nhomes : int;
  la : int64;
  homes : home array;
  ords : int array; (* per requester core, single-writer *)
  local_ops : int array; (* requests whose home shares the requester's shard *)
  remote_ops : int array; (* requests that crossed shards *)
}

let create ~homes ~cores ~lookahead () =
  if homes < 1 then invalid_arg "Shard_stack.create: homes must be >= 1";
  if cores < 1 then invalid_arg "Shard_stack.create: cores must be >= 1";
  if Int64.compare lookahead 1L < 0 then
    invalid_arg "Shard_stack.create: lookahead must be >= 1";
  {
    nhomes = homes;
    la = lookahead;
    homes =
      Array.init homes (fun hid ->
          { hid; arena = None; pending = []; wake = None; served = 0 });
    ords = Array.make cores 0;
    local_ops = Array.make cores 0;
    remote_ops = Array.make cores 0;
  }

let homes t = t.nhomes
let lookahead t = t.la

let home_of t ~page =
  let h = page mod t.nhomes in
  if h < 0 then h + t.nhomes else h

let arena_exn hr =
  match hr.arena with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Shard_stack: home %d not attached" hr.hid)

(* Arena ops always run as core 0 of the home's own private stack: every
   machine has a core 0, and a fixed choice keeps the schedule a pure
   function of the request stream at any shard count. *)
let serve_core = 0

let req_le a b =
  a.at < b.at
  || (a.at = b.at
     && (a.rcore < b.rcore || (a.rcore = b.rcore && a.ord <= b.ord)))

let rec insert r = function
  | [] -> [ r ]
  | x :: _ as l when req_le r x -> r :: l
  | x :: rest -> x :: insert r rest

(* The home server: a daemon fiber that drains its pending queue in
   merge-key order.  Parked (empty queue) it holds no engine event, so a
   finished cluster drains; the enqueue path wakes it. *)
let spawn_server sh hr =
  let eng = Sim.Shard.engine sh in
  ignore
    (Sim.Engine.spawn eng
       ~name:(Printf.sprintf "home-%d" hr.hid)
       ~core:hr.hid ~daemon:true
       (fun () ->
         let rec loop () =
           match hr.pending with
           | [] ->
               Sim.Engine.suspend (fun resume -> hr.wake <- Some resume);
               loop ()
           | { at; _ } :: _ ->
               let now = Int64.to_int (Sim.Engine.now_f ()) in
               if at >= now then begin
                 (* strictly-past pops only: once [now > at], every
                    request timestamped [at] is guaranteed enqueued *)
                 Sim.Engine.idle_wait (Int64.of_int (at + 1 - now));
                 loop ()
               end
               else begin
                 match hr.pending with
                 | req :: rest ->
                     hr.pending <- rest;
                     req.op sh;
                     hr.served <- hr.served + 1;
                     loop ()
                 | [] -> loop ()
               end
         in
         loop ()))

let attach t sh ~make_arena =
  let nsh = Sim.Shard.shards sh in
  let sid = Sim.Shard.sid sh in
  for hid = 0 to t.nhomes - 1 do
    if hid mod nsh = sid then begin
      let hr = t.homes.(hid) in
      hr.arena <- Some (make_arena ~home:hid);
      spawn_server sh hr
    end
  done

(* Ship a batch of [(home, body)] jobs and block the calling fiber until
   every reply lands.  Pipelined: all requests post at the same
   timestamp, replies count down a shared remaining counter (which lives
   on — and is only touched by — the requester's shard). *)
let ship t sh ~core jobs =
  match jobs with
  | [] -> ()
  | _ ->
      let eng = Sim.Shard.engine sh in
      let rs = Sim.Shard.sid sh in
      let nsh = Sim.Shard.shards sh in
      let remaining = ref (List.length jobs) in
      let resume_ref = ref None in
      let at64 = Int64.add (Sim.Engine.now eng) t.la in
      let at = Int64.to_int at64 in
      let wait_sid = ref (-1) in
      List.iter
        (fun (hid, body) ->
          let hr = t.homes.(hid) in
          let target = hid mod nsh in
          if target = rs then t.local_ops.(core) <- t.local_ops.(core) + 1
          else begin
            t.remote_ops.(core) <- t.remote_ops.(core) + 1;
            if !wait_sid < 0 then wait_sid := target
          end;
          let ord = t.ords.(core) in
          t.ords.(core) <- ord + 1;
          let op ssh =
            body (arena_exn hr);
            let rat =
              Int64.add (Sim.Engine.now (Sim.Shard.engine ssh)) t.la
            in
            Sim.Shard.post ssh ~to_:rs ~at:rat (fun _ ->
                decr remaining;
                if !remaining = 0 then
                  match !resume_ref with
                  | Some r ->
                      resume_ref := None;
                      r ()
                  | None -> ())
          in
          Sim.Shard.post sh ~to_:target ~at:at64 (fun _ ->
              hr.pending <- insert { at; rcore = core; ord; op } hr.pending;
              match hr.wake with
              | Some r ->
                  hr.wake <- None;
                  r ()
              | None -> ()))
        jobs;
      let ctx = Sim.Engine.self () in
      if !wait_sid >= 0 then Sim.Engine.set_waiting_on ctx !wait_sid;
      Sim.Engine.suspend (fun resume -> resume_ref := Some resume)

let fault_many t sh ~core items =
  ship t sh ~core
    (List.map
       (fun (key, vpn, write) ->
         let hid = home_of t ~page:(Pagekey.page_of key) in
         ( hid,
           fun arena ->
             Mcache.Dram_cache.fault arena ~core:serve_core ~key ~vpn ~write () ))
       items)

let fault t sh ~core ~key ~vpn ~write = fault_many t sh ~core [ (key, vpn, write) ]

let msync_all t sh ~core =
  ship t sh ~core
    (List.init t.nhomes (fun hid ->
         (hid, fun arena -> Mcache.Dram_cache.msync arena ~core:serve_core ())))

let crash_all t = Array.iter (fun hr ->
    match hr.arena with Some a -> Mcache.Dram_cache.crash a | None -> ()) t.homes

let partition t =
  Mcache.Partition.create ~arenas:(Array.map arena_exn t.homes) ()

type stats = {
  homes_n : int;
  counters : Mcache.Partition.counters;
  served : int array;
  local_ops : int;
  remote_ops : int;
}

let stats t =
  {
    homes_n = t.nhomes;
    counters = Mcache.Partition.counters (partition t);
    served = Array.map (fun (hr : home) -> hr.served) t.homes;
    local_ops = Array.fold_left ( + ) 0 t.local_ops;
    remote_ops = Array.fold_left ( + ) 0 t.remote_ops;
  }

(* N-invariant one-line rendering: every field is a pure function of the
   request streams (local vs remote split is not, so only the total ops
   count appears).  CI's terminal-stats gates compare these lines
   byte-for-byte across shard counts and modes. *)
let stats_to_string s =
  Printf.sprintf "homes=%d ops=%d served=[%s] %s" s.homes_n
    (s.local_ops + s.remote_ops)
    (String.concat ";" (Array.to_list (Array.map string_of_int s.served)))
    (Mcache.Partition.counters_to_string s.counters)
