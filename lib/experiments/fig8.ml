(* Figure 8: page-fault overhead breakdowns and device access methods. *)

let psz = Hw.Defs.page_size

let per_fault bd label faults =
  Stats.Breakdown.per_op (Stats.Breakdown.label bd label) faults

let io_labels = [ "io_device"; "io_kernel"; "io_syscall"; "io_memcpy"; "io_driver" ]

let breakdown_row name (r : Microbench.result) =
  let bd = r.Microbench.breakdown in
  let f = max 1 r.Microbench.faults in
  let g prefixes = Stats.Breakdown.per_op (Stats.Breakdown.group bd ~prefixes) f in
  let trap = per_fault bd "trap" f in
  let io = g io_labels in
  let tlb = g [ "tlb" ] in
  let evict = g [ "evict"; "writeback" ] in
  let handler = g [ "fault_entry"; "vma"; "index"; "alloc"; "map"; "lru"; "dirty"; "ept"; "copy" ] in
  let total = trap +. io +. tlb +. evict +. handler in
  [
    name;
    Stats.Table_fmt.kcycles trap;
    Stats.Table_fmt.kcycles handler;
    Stats.Table_fmt.kcycles io;
    Stats.Table_fmt.kcycles evict;
    Stats.Table_fmt.kcycles tlb;
    Stats.Table_fmt.kcycles total;
    Stats.Table_fmt.usec_of_cycles total;
  ]

let header =
  [ "system"; "trap"; "handler"; "device I/O"; "evict+wb"; "TLB"; "total/fault"; "latency" ]

(* (a) in-memory dataset: pure fault cost, no evictions. *)
let run_a () =
  let file_pages = 3072 and frames = 4096 in
  let run sys_mk =
    let eng = Sim.Engine.create () in
    let sys = sys_mk () in
    let r =
      Microbench.run ~eng ~sys ~file_pages ~shared:true ~threads:1
        ~ops_per_thread:file_pages ~pattern:Microbench.Permutation ()
    in
    (sys, r)
  in
  let _, linux =
    run (fun () ->
        Microbench.Lx (Scenario.make_linux ~readahead:1 ~frames ~dev:Scenario.Pmem ()))
  in
  let _, aquila =
    run (fun () -> Microbench.Aq (Scenario.make_aquila ~frames ~dev:Scenario.Pmem ()))
  in
  Stats.Table_fmt.print_table
    ~title:
      "Figure 8(a): page-fault breakdown, dataset fits in memory (pmem, 1 thread)"
    ~header
    [ breakdown_row "Linux mmap" linux; breakdown_row "Aquila" aquila ];
  let total bd f =
    Stats.Breakdown.per_op
      (Stats.Breakdown.group bd
         ~prefixes:("trap" :: "fault_entry" :: "vma" :: "index" :: "alloc" :: "map"
                    :: "lru" :: "dirty" :: "ept" :: "copy" :: "tlb" :: "evict"
                    :: "writeback" :: io_labels))
      f
  in
  let lt = total linux.Microbench.breakdown (max 1 linux.Microbench.faults) in
  let at = total aquila.Microbench.breakdown (max 1 aquila.Microbench.faults) in
  Sim.Sink.printf
    "paper: Linux fault ~5380 cycles (trap 24%%, I/O 49%%); Aquila trap 552 vs 1287 \
     cycles (2.33x); fault latency -45.3%%\n";
  Sim.Sink.printf "measured: fault latency reduction %.1f%% (Linux %.0f vs Aquila %.0f cycles)\n"
    (100. *. (1. -. (at /. lt)))
    lt at

(* (b) dataset larger than the cache: evictions in the common path. *)
let run_b () =
  let file_pages = 25600 and frames = 2048 in
  let mk_run sys_mk =
    let eng = Sim.Engine.create () in
    let sys = sys_mk () in
    Microbench.run ~eng ~sys ~file_pages ~shared:true ~threads:1
      ~ops_per_thread:12000 ~pattern:Microbench.Uniform ~write_fraction:0.3 ()
  in
  let linux =
    mk_run (fun () ->
        Microbench.Lx (Scenario.make_linux ~readahead:1 ~frames ~dev:Scenario.Pmem ()))
  in
  let aquila =
    mk_run (fun () -> Microbench.Aq (Scenario.make_aquila ~frames ~dev:Scenario.Pmem ()))
  in
  Stats.Table_fmt.print_table
    ~title:
      "Figure 8(b): page-fault breakdown with evictions (8MB-class cache, \
       12.5x dataset, pmem)"
    ~header
    [ breakdown_row "Linux mmap" linux; breakdown_row "Aquila" aquila ];
  let tot (r : Microbench.result) =
    Int64.to_float r.Microbench.elapsed_cycles /. float_of_int (max 1 r.Microbench.ops)
  in
  Sim.Sink.printf "paper: Aquila 2.06x lower overhead than Linux mmap\n";
  Sim.Sink.printf "measured: %.2fx (Linux %.0f vs Aquila %.0f cycles/op)\n"
    (tot linux /. tot aquila) (tot linux) (tot aquila)

(* (c) device-access methods inside Aquila. *)
let run_c () =
  let pages = 2000 in
  let methods =
    [
      ( "Cache-Hit",
        fun costs _ ->
          (* any access works; the measured phase never reaches the device *)
          Sdevice.Access.dax_pmem costs (Sdevice.Pmem.create ()) );
      ("DAX-pmem", fun costs _ -> Sdevice.Access.dax_pmem costs (Sdevice.Pmem.create ()));
      ( "HOST-pmem",
        fun costs _ ->
          Sdevice.Access.host_pmem costs ~entry:Sdevice.Access.From_guest
            (Sdevice.Pmem.create ()) );
      ( "SPDK-NVMe",
        fun costs _ -> Sdevice.Access.spdk_nvme costs (Sdevice.Nvme.create ()) );
      ( "HOST-NVMe",
        fun costs _ ->
          Sdevice.Access.host_nvme costs ~entry:Sdevice.Access.From_guest
            (Sdevice.Nvme.create ()) );
    ]
  in
  let rows =
    List.map
      (fun (name, access) ->
        let eng = Sim.Engine.create () in
        let stack = Scenario.make_aquila_access ~frames:4096 ~access () in
        let ctx = stack.Scenario.a_ctx in
        let cycles = ref 0. in
        ignore
          (Sim.Engine.spawn eng ~name:"fig8c" ~core:0 (fun () ->
               Aquila.Context.enter_thread ctx;
               let blob =
                 Blobstore.Store.create_blob stack.Scenario.a_store ~name:"f.dat"
                   ~pages ()
               in
               let translate p =
                 if p < pages then Some (Blobstore.Store.device_page blob p)
                 else None
               in
               let file =
                 Aquila.Context.attach_file ctx ~name:"f.dat"
                   ~access:stack.Scenario.a_access ~translate ~size_pages:pages
               in
               let r1 = Aquila.Context.mmap ctx file ~npages:pages () in
               let measured_region =
                 if name = "Cache-Hit" then begin
                   (* warm the DRAM cache, then remap so every touch is a
                      fault that hits the cache without device I/O *)
                   for p = 0 to pages - 1 do
                     Aquila.Context.touch ctx r1 ~page:p ~write:false
                   done;
                   Aquila.Context.munmap ctx r1;
                   Aquila.Context.mmap ctx file ~npages:pages ()
                 end
                 else r1
               in
               let t0 = Sim.Engine.now_f () in
               for p = 0 to pages - 1 do
                 Aquila.Context.touch ctx measured_region ~page:p ~write:false
               done;
               let t1 = Sim.Engine.now_f () in
               cycles := Int64.to_float (Int64.sub t1 t0) /. float_of_int pages));
        Sim.Engine.run eng;
        (name, !cycles))
      methods
  in
  Stats.Table_fmt.print_table
    ~title:"Figure 8(c): storage access methods in Aquila (cycles per fault)"
    ~header:[ "method"; "cycles/fault"; "latency" ]
    (List.map
       (fun (n, c) -> [ n; Stats.Table_fmt.kcycles c; Stats.Table_fmt.usec_of_cycles c ])
       rows);
  (* "the remaining cost, excluding the I/O, remains the same": compare the
     I/O components net of the Cache-Hit base *)
  let base = match List.assoc_opt "Cache-Hit" rows with Some b -> b | None -> 0. in
  (match (List.assoc_opt "DAX-pmem" rows, List.assoc_opt "HOST-pmem" rows) with
  | Some d, Some h ->
      Sim.Sink.printf "paper: HOST-pmem / DAX-pmem I/O overhead = 7.77x; measured: %.2fx\n"
        ((h -. base) /. (d -. base))
  | _ -> ());
  match (List.assoc_opt "SPDK-NVMe" rows, List.assoc_opt "HOST-NVMe" rows) with
  | Some s, Some h ->
      Sim.Sink.printf "paper: HOST-NVMe / SPDK-NVMe = 1.53x; measured: %.2fx (net %.2fx)\n"
        (h /. s) ((h -. base) /. (s -. base))
  | _ -> ()

let _ = psz
