(** Fig-scale sharded workload for the conservative-parallel engine
    ([Sim.Shard]): per-core Aquila stacks running a fig5-style
    out-of-memory page-fault loop (zipf touches, evictions, pmem I/O),
    plus a ring of posted IPIs that crosses shard boundaries through
    [Shard.post].  Used by [bench/engine_perf] for the 1/2/4/8-shard
    scaling curve (BENCH_pdes.json).

    All virtual-time outcomes ([events], [final_cycles], [windows]) are
    invariant across shard counts and across deterministic vs
    free-running mode — each core's event stream depends only on its
    own index — which is what lets CI gate them exactly. *)

type params = {
  cores : int;
  ops_per_core : int;
  frames : int;  (** DRAM cache frames per core's stack *)
  file_pages : int;  (** mapped file size; > frames forces eviction + I/O *)
  write_fraction : float;
  ipi_every : int;  (** ops between ring IPIs; 0 disables cross traffic *)
  seed : int;
}

val default : params
(** 32 cores x 1500 ops, 256-frame caches over 1024-page files, 30%
    writes, an IPI every 64 ops — the fig5(b) out-of-memory shape. *)

val default_lookahead : int64
(** Epoch-coalesced posted-IPI delivery latency (20k cycles), the
    workload's true minimum cross-shard latency; always >=
    [Hw.Costs.min_cross_shard_latency]. *)

val build : params -> Sim.Shard.t -> unit
(** Per-shard builder: constructs stacks and spawns fibers for the
    cores this shard owns ([core mod shards = sid]). *)

val run :
  ?deterministic:bool ->
  ?shards:int ->
  ?lookahead:int64 ->
  ?p:params ->
  unit ->
  Sim.Shard.stats
(** [run ~shards ()] executes the workload on a fresh cluster and
    returns its terminal stats. *)
