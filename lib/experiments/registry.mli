(** Experiment registry: every table and figure of the paper's evaluation,
    addressable by id for the CLI and the benchmark harness. *)

type entry = {
  id : string;  (** e.g. "fig8a" *)
  title : string;
  run : unit -> unit;  (** prints the paper-style table(s) on stdout *)
}

val all : entry list
(** In paper order: table1, fig5a, fig5b, fig6a, fig6b, fig6c, fig7,
    fig8a, fig8b, fig8c, fig9, fig10a, fig10b. *)

val find : string -> entry option

val find_prefix : string -> entry list
(** [find_prefix id] is the exact match if [id] names an experiment,
    otherwise every entry whose id starts with [id] (so ["fig5"]
    resolves to fig5a and fig5b); [[]] when nothing matches. *)

val run_selected : ?jobs:int -> ?fault:Fault.Plan.spec -> entry list -> unit
(** [run_selected ~jobs entries] runs each entry (with its [### id: title]
    header) on up to [jobs] domains via {!Fanout.run}; output is printed
    in entry order and is byte-identical to a sequential run.  [fault]
    injects faults from a per-job fresh plan (see {!Fanout.run}). *)

val run_all : ?jobs:int -> ?fault:Fault.Plan.spec -> unit -> unit
(** Runs every experiment, with the scale note printed once up front. *)
