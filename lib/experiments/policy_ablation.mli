(** Replacement-policy ablation (DESIGN.md §5): sweeps every
    {!Mcache.Policy.kind} over two workloads —

    - [Zipf_mix]: the fig5-style pressure test (zipfian hot set, file 4x
      the cache, 20 % writes), where better recency tracking buys hits;
    - [Scan_mix]: an anti-LRU adversary (hot set fitting half the cache
      plus periodic one-shot scans of cache-sized cold runs), where
      scan-resistance decides whether the hot set survives.

    Policies charge their own bookkeeping cycles ({!Mcache.Policy}), so
    rows differ in virtual time per op as well as hit rate.  Results are
    deterministic: everything except the [wall_s]/events-per-second
    fields depends only on seeds, never on the host. *)

type workload = Zipf_mix | Scan_mix

val workload_name : workload -> string

type row = {
  workload : workload;
  policy : Mcache.Policy.kind;
  ops : int;
  hits : int;  (** fault-level hits (page resident but unmapped) *)
  misses : int;  (** device reads *)
  hit_rate : float;  (** access-level: [(ops - misses) / ops] *)
  evictions : int;
  wb_pages : int;
  vtime_per_op : float;  (** virtual cycles per op — the headline number *)
  events : int;  (** engine events executed (wall-throughput denominator) *)
  wall_s : float;  (** host seconds — never gated in CI *)
}

val run_one :
  ?frames:int ->
  ?threads:int ->
  ?ops_per_thread:int ->
  workload:workload ->
  policy:Mcache.Policy.kind ->
  unit ->
  row
(** One (workload, policy) cell on a fresh stack.  Defaults: 1024 frames,
    8 threads, 4000 ops/thread. *)

val sweep :
  ?frames:int ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?policies:Mcache.Policy.kind list ->
  unit ->
  row list
(** All requested policies (default {!Mcache.Policy.all_kinds}) over both
    workloads. *)

val print_rows : row list -> unit
(** Table via {!Sim.Sink} (fan-out- and capture-friendly). *)

val json_string : row list -> string
(** Flat [{"workload.policy.metric": number}] JSON for BENCH_mcache.json;
    keys ending in [".wall"] are wall-clock-derived and excluded from the
    CI regression gate. *)

val run : unit -> unit
(** [sweep] + [print_rows] with defaults (the bench/ablations job). *)
