type entry = { id : string; title : string; run : unit -> unit }

let all =
  [
    { id = "table1"; title = "Standard YCSB workloads"; run = Table1.run };
    {
      id = "fig5a";
      title = "RocksDB YCSB-C, dataset fits in the cache";
      run = Fig5.run_a;
    };
    { id = "fig5b"; title = "RocksDB YCSB-C, dataset 4x the cache"; run = Fig5.run_b };
    { id = "fig6a"; title = "Ligra BFS, small DRAM cache"; run = Fig6.run_a };
    { id = "fig6b"; title = "Ligra BFS, large DRAM cache"; run = Fig6.run_b };
    { id = "fig6c"; title = "Ligra BFS time breakdown"; run = Fig6.run_c };
    { id = "fig7"; title = "RocksDB read-path cycle breakdown"; run = Fig7.run };
    { id = "fig8a"; title = "Page-fault breakdown, in-memory"; run = Fig8.run_a };
    { id = "fig8b"; title = "Page-fault breakdown with evictions"; run = Fig8.run_b };
    { id = "fig8c"; title = "Device access methods"; run = Fig8.run_c };
    { id = "fig9"; title = "Kreon kmmap vs Aquila, YCSB A-F"; run = Fig9.run };
    { id = "fig10a"; title = "Scalability, dataset fits in memory"; run = Fig10.run_a };
    { id = "fig10b"; title = "Scalability, dataset 12.5x memory"; run = Fig10.run_b };
    (* Free-running shard-partitioned variants: honour the CLI's
       --shards/--deterministic through Sharded.set_mode; terminal stats
       are invariant across both. *)
    {
      id = "fig5s";
      title = "Shard-partitioned uniform reads, out of memory (free-running)";
      run = Sharded.run_fig5s;
    };
    {
      id = "fig10s";
      title = "Shard-partitioned zipf reads, dataset fits (free-running)";
      run = Sharded.run_fig10s;
    };
    {
      id = "crashs";
      title = "Shard-partitioned writes + msync with a mid-run power loss";
      run = Sharded.run_crashcheck;
    };
    {
      id = "cluster";
      title = "Replicated aqcluster, YCSB A over 5 nodes x 3 replicas";
      run = Cluster_run.run_cluster;
    };
    {
      id = "clusterf";
      title = "Replicated aqcluster with a mid-run node crash + failover";
      run = Cluster_run.run_clusterf;
    };
    {
      id = "openloop";
      title = "Open-loop latency vs offered load (hockey stick), per backend";
      run = Openloop.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(* "fig5" selects fig5a+fig5b; an exact id still selects just itself. *)
let find_prefix id =
  match find id with
  | Some e -> [ e ]
  | None -> List.filter (fun e -> String.starts_with ~prefix:id e.id) all

(* Each entry becomes one fan-out job that prints its own header, so the
   aggregate output is byte-identical at any parallelism degree. *)
let run_selected ?(jobs = 1) ?fault entries =
  Fanout.run ~jobs ?fault
    (List.map
       (fun e ->
         Fanout.job ~name:e.id (fun () ->
             Sim.Sink.printf "\n### %s: %s\n" e.id e.title;
             e.run ()))
       entries)

let run_all ?jobs ?fault () =
  Sim.Sink.printf "Aquila reproduction — %s\n" Scenario.scale_note;
  run_selected ?jobs ?fault all
