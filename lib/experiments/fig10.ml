(* Figure 10: scalability of Aquila vs Linux mmap, shared file vs file per
   thread, dataset fitting / not fitting in memory. *)

let thread_counts = [ 1; 2; 4; 8; 16; 32 ]
let dataset_pages = 25600 (* "100 GB" scaled *)

type cell = { thr : float; avg : float; p99 : float; p999 : float }

let run_one ~fits ~shared ~aquila ~threads =
  let eng = Sim.Engine.create () in
  let frames = if fits then dataset_pages + 1024 else 2048 in
  let sys =
    if aquila then
      Microbench.Aq (Scenario.make_aquila ~frames ~dev:Scenario.Pmem ())
    else
      Microbench.Lx (Scenario.make_linux ~readahead:1 ~frames ~dev:Scenario.Pmem ())
  in
  let file_pages = if shared then dataset_pages else dataset_pages / threads in
  let pattern, ops =
    if fits then (Microbench.Permutation, dataset_pages / threads)
    else (Microbench.Uniform, 4000)
  in
  let r =
    Microbench.run ~eng ~sys ~file_pages ~shared ~threads ~ops_per_thread:ops
      ~pattern ()
  in
  {
    thr = r.Microbench.throughput_ops_s;
    avg = Stats.Histogram.mean r.Microbench.latency;
    p99 = Int64.to_float (Stats.Histogram.percentile r.Microbench.latency 99.);
    p999 = Int64.to_float (Stats.Histogram.percentile r.Microbench.latency 99.9);
  }

let run_case ~fits ~title ~paper_note =
  let rows =
    List.map
      (fun threads ->
        let ls = run_one ~fits ~shared:true ~aquila:false ~threads in
        let as_ = run_one ~fits ~shared:true ~aquila:true ~threads in
        let lp = run_one ~fits ~shared:false ~aquila:false ~threads in
        let ap = run_one ~fits ~shared:false ~aquila:true ~threads in
        (threads, ls, as_, lp, ap))
      thread_counts
  in
  Stats.Table_fmt.print_table ~title
    ~header:
      [
        "threads";
        "linux-shared";
        "aquila-shared";
        "speedup";
        "linux-private";
        "aquila-private";
        "speedup";
      ]
    (List.map
       (fun (t, ls, as_, lp, ap) ->
         [
           string_of_int t;
           Stats.Table_fmt.ops_per_sec ls.thr;
           Stats.Table_fmt.ops_per_sec as_.thr;
           Stats.Table_fmt.speedup (as_.thr /. ls.thr);
           Stats.Table_fmt.ops_per_sec lp.thr;
           Stats.Table_fmt.ops_per_sec ap.thr;
           Stats.Table_fmt.speedup (ap.thr /. lp.thr);
         ])
       rows);
  Sim.Sink.printf "%s\n" paper_note;
  (* latency detail at the extremes, as reported in Section 6.5 *)
  (match (List.nth_opt rows 0, List.nth_opt rows (List.length rows - 1)) with
  | Some (t1, ls1, as1, _, _), Some (tn, lsn, asn, lpn, apn) ->
      Sim.Sink.printf
        "latency shared file: %d thr avg %.2fx, p99 %.2fx, p99.9 %.2fx lower; %d thr \
         avg %.2fx, p99 %.2fx, p99.9 %.2fx lower\n"
        t1 (ls1.avg /. as1.avg)
        (ls1.p99 /. as1.p99)
        (ls1.p999 /. as1.p999)
        tn (lsn.avg /. asn.avg)
        (lsn.p99 /. asn.p99)
        (lsn.p999 /. asn.p999);
      Sim.Sink.printf
        "latency private files at %d thr: avg %.2fx, p99 %.2fx, p99.9 %.2fx lower\n" tn
        (lpn.avg /. apn.avg)
        (lpn.p99 /. apn.p99)
        (lpn.p999 /. apn.p999)
  | _ -> ());
  rows

let run_a () =
  ignore
    (run_case ~fits:true
       ~title:
         "Figure 10(a): random-read scalability, dataset fits in memory (first-touch \
          faults, pmem)"
       ~paper_note:
         "paper: shared file 1.81x (1 thr) -> 8.37x (32 thr); private files 1.82x -> \
          1.99x")

let run_b () =
  ignore
    (run_case ~fits:false
       ~title:
         "Figure 10(b): random-read scalability, dataset 12.5x of memory (evictions, \
          pmem)"
       ~paper_note:
         "paper: shared file 2.17x (1 thr) -> 12.92x (32 thr); private files 2.21x -> \
          2.84x")
