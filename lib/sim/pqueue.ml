(* Structure-of-arrays 4-ary min-heap keyed by (time, seq).

   Times and sequence numbers live in plain [int array]s, so the hot
   push/pop path never allocates and never chases a per-entry box: virtual
   time fits comfortably in OCaml's 62-bit immediate integers.  A 4-ary
   layout halves the tree depth of a binary heap, trading a couple of
   extra compares per level for far fewer cache lines touched. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { times = [||]; seqs = [||]; vals = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t v =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
  (* seeding with [v] keeps ['a] unconstrained; stale slots past [len]
     are overwritten before they are ever read *)
  let nv = Array.make ncap v in
  Array.blit t.times 0 nt 0 t.len;
  Array.blit t.seqs 0 ns 0 t.len;
  Array.blit t.vals 0 nv 0 t.len;
  t.times <- nt;
  t.seqs <- ns;
  t.vals <- nv

let push t ~time ~seq v =
  if t.len = Array.length t.times then grow t v;
  (* sift up with a hole: parents move down, the new key is written once *)
  let times = t.times and seqs = t.seqs and vals = t.vals in
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 4 in
    let pt = times.(p) in
    if time < pt || (time = pt && seq < seqs.(p)) then begin
      times.(!i) <- pt;
      seqs.(!i) <- seqs.(p);
      vals.(!i) <- vals.(p);
      i := p
    end
    else continue_ := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  vals.(!i) <- v

(* Move the last element into the root hole and sift it down. *)
let remove_min t =
  let n = t.len - 1 in
  t.len <- n;
  if n > 0 then begin
    let times = t.times and seqs = t.seqs and vals = t.vals in
    let time = times.(n) and seq = seqs.(n) in
    let v = vals.(n) in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let base = (4 * !i) + 1 in
      if base >= n then continue_ := false
      else begin
        (* smallest of up to four children *)
        let m = ref base in
        let last = min (base + 3) (n - 1) in
        for c = base + 1 to last do
          let ct = times.(c) and mt = times.(!m) in
          if ct < mt || (ct = mt && seqs.(c) < seqs.(!m)) then m := c
        done;
        let mt = times.(!m) in
        if mt < time || (mt = time && seqs.(!m) < seq) then begin
          times.(!i) <- mt;
          seqs.(!i) <- seqs.(!m);
          vals.(!i) <- vals.(!m);
          i := !m
        end
        else continue_ := false
      end
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    vals.(!i) <- v
  end

let pop t =
  if t.len = 0 then None
  else begin
    let r = (t.times.(0), t.seqs.(0), t.vals.(0)) in
    remove_min t;
    Some r
  end

(* Allocation-free accessors for the engine's run loop: read the head key
   with [min_time]/[min_seq], then take the payload with [pop_min]. *)

let min_time t = if t.len = 0 then max_int else t.times.(0)

let min_seq t = if t.len = 0 then max_int else t.seqs.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Pqueue.pop_min: empty queue";
  let v = t.vals.(0) in
  remove_min t;
  v

let peek_payload t =
  if t.len = 0 then invalid_arg "Pqueue.peek_payload: empty queue";
  t.vals.(0)

(* Reusable out-cell for the shard drain loop: popping through a slot
   moves the head key and payload into caller-owned mutable fields, so
   the per-event cost is three stores — no [(int * int * 'a) option]
   box, no tuple. *)

type 'a slot = { mutable s_time : int; mutable s_seq : int; mutable s_val : 'a }

let slot ~dummy = { s_time = 0; s_seq = 0; s_val = dummy }

let pop_into t out ~before =
  if t.len = 0 || t.times.(0) >= before then false
  else begin
    out.s_time <- t.times.(0);
    out.s_seq <- t.seqs.(0);
    out.s_val <- t.vals.(0);
    remove_min t;
    true
  end

(* Thin boxing wrapper over the head accessors + [pop_min]; kept for
   callers that want the option API off the hot path. *)
let pop_if_before t ~time =
  if t.len = 0 || t.times.(0) >= time then None
  else begin
    let tt = t.times.(0) and ss = t.seqs.(0) in
    Some (tt, ss, pop_min t)
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)
