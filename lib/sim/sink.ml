(* Domain-local stdout sink.

   Experiment and benchmark tables print through [printf] instead of
   [Printf.printf]; by default that is stdout, but a parallel runner can
   [capture] a job's output into a per-domain buffer and print the jobs
   in order afterwards, so domain fan-out never interleaves bytes. *)

type target = { mutable buf : Buffer.t option }

let key = Domain.DLS.new_key (fun () -> { buf = None })

let print_string s =
  match (Domain.DLS.get key).buf with
  | None -> Stdlib.print_string s
  | Some b -> Buffer.add_string b s

let printf fmt = Printf.ksprintf print_string fmt

let print_newline () = print_string "\n"

let capture f =
  let tgt = Domain.DLS.get key in
  let saved = tgt.buf in
  let b = Buffer.create 4096 in
  tgt.buf <- Some b;
  match f () with
  | v ->
      tgt.buf <- saved;
      (v, Buffer.contents b)
  | exception e ->
      tgt.buf <- saved;
      raise e
