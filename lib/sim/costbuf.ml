(* A costbuf holds a handful of distinct labels (the fault path uses ~6),
   so a flat array scanned with a physical-equality check — call sites
   pass literals — beats hashing.  Cycles accumulate as unboxed ints. *)

type t = {
  mutable keys : string array;
  mutable vals : int array;
  mutable len : int;
  mutable sum : int;
}

let create () = { keys = Array.make 8 ""; vals = Array.make 8 0; len = 0; sum = 0 }

let add t label c =
  let c = Int64.to_int c in
  if c > 0 then begin
    t.sum <- t.sum + c;
    let keys = t.keys in
    let n = t.len in
    let i = ref 0 in
    while
      !i < n && not (keys.(!i) == label || String.equal keys.(!i) label)
    do
      incr i
    done;
    if !i < n then t.vals.(!i) <- t.vals.(!i) + c
    else begin
      if n = Array.length keys then begin
        let nk = Array.make (2 * n) "" and nv = Array.make (2 * n) 0 in
        Array.blit t.keys 0 nk 0 n;
        Array.blit t.vals 0 nv 0 n;
        t.keys <- nk;
        t.vals <- nv
      end;
      t.keys.(n) <- label;
      t.vals.(n) <- c;
      t.len <- n + 1
    end
  end

let total t = Int64.of_int t.sum

let labels t =
  List.init t.len (fun i -> (t.keys.(i), Int64.of_int t.vals.(i)))

let charge ?(cat = Engine.Sys) t =
  if t.sum > 0 then begin
    let ctx = Engine.self () in
    for i = 0 to t.len - 1 do
      Engine.ctx_label_add ctx t.keys.(i) t.vals.(i)
    done;
    Engine.delay ~cat (Int64.of_int t.sum);
    t.len <- 0;
    t.sum <- 0
  end
