(** Fiber-aware tracepoints over {!Trace}.

    Each probe stamps the event with the enclosing fiber's virtual time,
    core and fiber id, so instrumented subsystems need no plumbing.  When
    tracing is off ({!Trace.on} [= false]) every probe is a single
    load-and-branch; called outside a fiber, probes silently drop the
    event (there is no virtual clock to stamp it with). *)

val instant : ?cat:string -> ?value:int64 -> string -> unit
(** [instant name] marks a point event on the current fiber
    ([cat] defaults to ["sim"]). *)

val instant_on_core : core:int -> ?cat:string -> ?value:int64 -> string -> unit
(** [instant_on_core ~core name] marks a point event attributed to
    [core]'s hardware track (fiber 0) — e.g. an IPI arriving at a remote
    core — stamped with the {e calling} fiber's current time. *)

val counter : ?cat:string -> string -> int64 -> unit
(** [counter name v] samples counter [name] at the current virtual time. *)

val span_start : unit -> int64
(** [span_start ()] is the current virtual time when tracing is on, [0]
    otherwise.  Pair with {!span_since}. *)

val span_since : ?cat:string -> ?value:int64 -> t0:int64 -> string -> unit
(** [span_since ~t0 name] records a span from [t0] to now on the current
    fiber.  Use with {!span_start} to avoid closure allocation on hot
    paths. *)

val with_span : ?cat:string -> ?value:int64 -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span named [name]. *)
