(* Fiber-aware tracepoints: thin wrappers that stamp Trace events with the
   enclosing fiber's virtual time, core and id.  Every entry point checks
   [Trace.on] first, so a disabled probe costs one load and branch; sites
   outside any fiber (no effect handler installed) drop the event. *)

let fiber_ctx () =
  try Some (Engine.self ()) with Effect.Unhandled _ -> None

let emit_instant ~cat ~value name =
  match (Trace.current (), fiber_ctx ()) with
  | Some tr, Some c ->
      Trace.instant tr ~ts:(Engine.now_f ()) ~core:c.Engine.core
        ~fiber:c.Engine.fid ~cat ?value name
  | _ -> ()

let[@inline] instant ?(cat = "sim") ?value name =
  if Atomic.get Trace.live_tracers > 0 then emit_instant ~cat ~value name

let emit_instant_on_core ~core ~cat ~value name =
  match (Trace.current (), fiber_ctx ()) with
  | Some tr, Some _ ->
      Trace.instant tr ~ts:(Engine.now_f ()) ~core ~fiber:0 ~cat ?value name
  | _ -> ()

let[@inline] instant_on_core ~core ?(cat = "sim") ?value name =
  if Atomic.get Trace.live_tracers > 0 then emit_instant_on_core ~core ~cat ~value name

let emit_counter ~cat ~value name =
  match (Trace.current (), fiber_ctx ()) with
  | Some tr, Some c ->
      Trace.counter tr ~ts:(Engine.now_f ()) ~core:c.Engine.core ~cat ~value name
  | _ -> ()

let[@inline] counter ?(cat = "sim") name value =
  if Atomic.get Trace.live_tracers > 0 then emit_counter ~cat ~value name

let span_start () = if Atomic.get Trace.live_tracers > 0 then Engine.now_f () else 0L

let emit_span_since ~cat ~value ~t0 name =
  match (Trace.current (), fiber_ctx ()) with
  | Some tr, Some c ->
      Trace.span tr ~ts:t0
        ~dur:(Int64.sub (Engine.now_f ()) t0)
        ~core:c.Engine.core ~fiber:c.Engine.fid ~cat ?value name
  | _ -> ()

let[@inline] span_since ?(cat = "sim") ?value ~t0 name =
  if Atomic.get Trace.live_tracers > 0 then emit_span_since ~cat ~value ~t0 name

let with_span ?(cat = "sim") ?value name f =
  if not (Atomic.get Trace.live_tracers > 0) then f ()
  else begin
    let t0 = Engine.now_f () in
    let r = f () in
    span_since ~cat ?value ~t0 name;
    r
  end
