(** Deterministic discrete-event simulation engine.

    The engine advances a virtual clock measured in {e CPU cycles} and runs
    cooperative fibers (simulated threads) on top of OCaml effect handlers.
    Every simulated component charges cycles to the clock instead of
    consuming wall-clock time, which makes experiments exactly reproducible
    and lets us model a 32-hyperthread server inside one OCaml process.

    Internally the clock, per-fiber counters and the event queue all use
    unboxed native [int] cycles (virtual time fits in 62 bits); the [int64]
    signatures below are kept for callers holding [Hw.Costs] constants.
    Delays whose wake-up provably precedes every queued event take a fast
    path that skips the queue entirely while preserving the exact
    [(time, seq)] execution order — same-seed runs are byte-identical with
    the fast path on or off.

    Fibers interact with the engine through {!delay}, {!idle_wait},
    {!suspend}, {!now_f} and {!self}; these must only be called from code
    running inside a fiber spawned with {!spawn}. *)

type category =
  | User  (** cycles spent in application code (ring 3 / guest user logic) *)
  | Sys   (** cycles spent in kernel, hypervisor, or Aquila runtime code *)

type interns
(** Engine-wide cost-label intern table (labels map to dense array ids). *)

type ctx = {
  fid : int;  (** unique fiber id *)
  name : string;  (** fiber name, for diagnostics *)
  mutable core : int;  (** core the fiber is pinned to *)
  daemon : bool;  (** daemons do not count as live work *)
  mutable user : int;  (** accumulated {!User} cycles *)
  mutable sys : int;  (** accumulated {!Sys} cycles *)
  mutable idle : int;  (** accumulated cycles spent blocked *)
  mutable ev : int;
      (** events this fiber executed (spawn, delays, resumes) — shown by
          {!blocked_report} so a hung fiber's progress is visible *)
  mutable waiting_on : int;
      (** shard id of the {!Shard} cluster peer this fiber is blocked
          waiting on ([-1] when not waiting cross-shard) — set via
          {!set_waiting_on} before a cross-shard {!suspend}, cleared
          automatically when the fiber resumes, printed by
          {!blocked_report} so cross-shard deadlocks name the peer *)
  mutable node : int;
      (** cluster node id this fiber serves ([-1] when not part of a
          cluster) — set via {!set_node_id} by [Aqcluster] server fibers,
          printed by {!blocked_report} so cross-node RPC deadlocks triage
          in one line *)
  mutable lab : int array;
      (** cycles per interned label id — internal, read via {!labels} *)
  it : interns;  (** owning engine's intern table — internal *)
}
(** Per-fiber execution context and cycle accounting. *)

val labels : ctx -> (string * int64) list
(** [labels ctx] is the fiber's fine-grained cycle accounting as
    [(label, cycles)] pairs in first-use order, nonzero entries only. *)

val label_get : ctx -> string -> int64
(** [label_get ctx label] is the cycles charged to [label] (0 if never
    charged). *)

val set_waiting_on : ctx -> int -> unit
(** [set_waiting_on ctx sid] records that the fiber is about to block
    waiting for a message from cluster shard [sid] (a cross-shard inbox
    reply).  Cleared automatically when the fiber's {!suspend} resumes;
    callers that block repeatedly re-arm it before each wait. *)

val waiting_on : ctx -> int
(** [waiting_on ctx] is the shard id set by {!set_waiting_on}, or [-1]. *)

val set_node_id : ctx -> int -> unit
(** [set_node_id ctx nid] tags the fiber as serving cluster node [nid];
    {!blocked_report} then prints ["node nid"] alongside the owning and
    awaited shard.  Persists for the fiber's lifetime. *)

val node_id : ctx -> int
(** [node_id ctx] is the cluster node id set by {!set_node_id}, or [-1]. *)

type t
(** A simulation engine instance. *)

val create : ?seed:int -> ?fastpath:bool -> ?shards:int -> unit -> t
(** [create ?seed ()] is a fresh engine with its clock at cycle 0.
    [seed] (default 42) seeds the engine-wide RNG.  [fastpath] (default
    [true]) enables the delay fast path; disabling it forces every event
    through the queue — same results, slower, used by [bench/engine_perf]
    to measure the fast path's win.  [shards] (default
    {!set_default_shards}'s value, initially 1) partitions the event
    queue per shard with static routing by the owning fiber's core
    ([core mod shards]); the run loop merges shards in global
    [(time, seq)] order, so results are byte-identical at any shard
    count ("deterministic merge" — see DESIGN.md §9). *)

val set_default_shards : int -> unit
(** Process-wide default for [create]'s [shards] (the CLI's [--shards]).
    An atomic, so engines built inside [Fanout] worker domains inherit
    it too.  Raises [Invalid_argument] for values < 1. *)

val n_shards : t -> int
(** [n_shards t] is the number of event-queue shards. *)

val shard_of_core : t -> int -> int
(** [shard_of_core t core] is the shard owning fibers pinned to [core]. *)

val now : t -> int64
(** [now t] is the current virtual time in cycles. *)

val rng : t -> Rng.t
(** [rng t] is the engine-wide deterministic RNG. *)

val events : t -> int
(** [events t] is the number of events executed so far (fast-pathed
    delays count exactly like queued ones). *)

val live_fibers : t -> int
(** [live_fibers t] is the number of non-daemon fibers spawned but not yet
    finished.  After {!run} returns, a non-zero value indicates fibers
    blocked forever (a deadlock or a missing signal). *)

val blocked_fibers : t -> (int * string) list
(** [blocked_fibers t] is the [(core, name)] of every non-daemon fiber
    currently parked in {!suspend} and never resumed, sorted by fiber id.
    After {!run} drains with [live_fibers t > 0], this names the deadlocked
    fibers instead of leaving users to guess. *)

val blocked_report : t -> string
(** [blocked_report t] is a multi-line deadlock report: every parked
    fiber (daemons flagged), its core, owning shard and cluster node id
    when set (so cross-shard and cross-node deadlocks are triageable),
    the number of events it executed
    ({!ctx.ev}), its user/sys/idle cycle totals, and its per-label cost
    breakdown ({!labels}) — so a fiber hung in a fault-injection retry
    loop ("io_retry") is distinguishable from one waiting on a lock.
    See README "Debugging deadlocks". *)

val set_event_hook : t -> (int -> unit) option -> unit
(** [set_event_hook t (Some f)] calls [f nevents] after every event —
    queued or fast-pathed — at the exact same ordinals either way.  [f]
    may raise to abort the run at an event boundary (fault-injection
    crashes); the exception propagates out of {!run}.  [None] (the
    default) costs one field load and branch per event. *)

val set_domain_event_hook : (int -> unit) option -> unit
(** Domain-local default for {!set_event_hook}, captured by engines at
    {!create} time — lets an ambient fault plan arm its crash trigger
    before the experiment constructs its engine.  Clearing it does not
    affect engines already created. *)

val spawn : t -> ?name:string -> ?core:int -> ?daemon:bool -> (unit -> unit) -> ctx
(** [spawn t f] schedules fiber [f] to start at the current virtual time and
    returns its context.  [core] (default 0) pins the fiber; [daemon]
    (default false) marks fibers that may legitimately outlive the
    workload (e.g. write-back daemons blocked on a wait queue). *)

val run : t -> unit
(** [run t] executes events until the queue drains.  Exceptions raised by
    fibers propagate out of [run]. *)

val run_until : t -> horizon:int -> unit
(** [run_until t ~horizon] executes events with virtual time strictly
    before [horizon] (unboxed cycles), leaving later events queued and
    the clock at the last executed event.  The windowed primitive behind
    {!Shard}'s conservative-parallel sync; [run t] is
    [run_until t ~horizon:max_int]. *)

val next_time : t -> int
(** [next_time t] is the earliest queued event time across all shards in
    unboxed cycles, or [max_int] when the engine is drained.  Only
    meaningful between runs (no fast-path continuation is pending). *)

val post : t -> ?core:int -> at:int64 -> (unit -> unit) -> unit
(** [post t ~at f] injects an external event: [f] runs at virtual time
    [at] (clamped to now) on the shard owning [core] (default 0),
    outside any fiber.  [f] must not call fiber-side operations
    ({!delay}, {!suspend}, ...) directly — {!spawn} a fiber for work
    that needs them.  This is the cross-shard delivery primitive used by
    {!Shard} clusters. *)

(** {1 Fiber-side operations}

    These perform effects and must be called from inside a fiber. *)

val delay : ?cat:category -> ?label:string -> int64 -> unit
(** [delay c] advances the fiber by [c] cycles of {e active} CPU work,
    charged to [cat] (default {!User}) and, when given, to [label] in the
    fiber's per-label accounting (see {!labels}). *)

val idle_wait : int64 -> unit
(** [idle_wait c] blocks the fiber for [c] cycles {e without} consuming CPU:
    the time is charged to {!ctx.idle}.  Models waiting for a device. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the fiber and calls [register resume].  The
    fiber continues when [resume ()] is invoked (from any other fiber or
    engine callback); the blocked interval is charged to {!ctx.idle}.
    Calling [resume] more than once raises [Invalid_argument]. *)

val now_f : unit -> int64
(** [now_f ()] is {!now} for the enclosing fiber's engine. *)

val self : unit -> ctx
(** [self ()] is the current fiber's context. *)

val label_add : string -> int64 -> unit
(** [label_add label c] adds [c] cycles to the current fiber's [label]
    accounting bucket without advancing time.  Used to attribute a span
    measured with {!now_f} to a named category. *)

val ctx_label_add : ctx -> string -> int -> unit
(** [ctx_label_add ctx label c] is {!label_add} against an explicit
    context with unboxed cycles — the allocation-free form used by
    {!Costbuf.charge} on the fault hot path. *)
