(** Conservative parallel discrete-event simulation (PDES) across OCaml 5
    domains.

    A cluster partitions a simulation into [shards], each a complete
    single-queue {!Engine} owned by one domain.  Execution proceeds in
    windows: the cluster agrees on the global minimum next-event time
    [T] at a barrier, then every shard runs its local events in
    [T, T + lookahead) concurrently, with no synchronization inside the
    window.  [lookahead] is the Chandy–Misra–Bryant conservative
    promise: {!post} refuses cross-shard events timestamped earlier
    than [now + lookahead], so nothing a peer does mid-window can land
    inside the window.  Derive it from the cost model —
    [Hw.Costs.min_cross_shard_latency] (posted-IPI send + receive, 798
    cycles) is the universal floor; workloads whose only cross-shard
    traffic is coarser (device completions, epoch-batched IPIs) should
    declare their larger true latency, which directly widens the window
    and cuts barrier overhead.

    Cross-shard posts carry a deterministic merge key
    [(time, source shard, source ordinal)] and inboxes deliver in key
    order, so the virtual-time schedule — event order, counters, final
    clock — is a pure function of the build, independent of domain
    scheduling.  [deterministic] mode replays the identical window
    algorithm on one domain (shards in ascending id order) and must
    produce identical terminal state to the free-running mode; the test
    suite holds both modes to that contract.

    This module parallelizes {e one} simulation; [Experiments.Fanout]'s
    [--jobs] parallelizes {e across} independent experiments.  See
    DESIGN.md §9. *)

type t
(** Handle to one shard, passed to the builder and to delivery
    callbacks; valid for the lifetime of {!run}. *)

type stats = {
  shards : int;  (** cluster size *)
  lookahead : int;  (** window width, cycles *)
  events : int;  (** total engine events across all shards *)
  final_cycles : int64;  (** max terminal virtual time across shards *)
  cross_posts : int;  (** cross-shard events delivered via inboxes *)
  windows : int;  (** barrier rounds with work *)
  run_wall_s : float;
      (** wall-clock seconds of the windowed run only — stamped between
          the post-build barrier and the final barrier, excluding
          [Domain.spawn], builder time, and join/teardown, so events/sec
          derived from it measures the engine *)
  shard_events : int array;
      (** engine events executed per shard — the load-balance picture;
          sums to [events] *)
  shard_drains : int array;
      (** cross-shard inbox items delivered to each shard; sums to
          [cross_posts] once the cluster drains *)
}
(** Terminal cluster statistics.  Every field except [run_wall_s] is a
    deterministic pure function of the build at any shard count. *)

val run :
  ?deterministic:bool ->
  ?seed:int ->
  shards:int ->
  lookahead:int64 ->
  (t -> unit) ->
  stats
(** [run ~shards ~lookahead build] creates [shards] engines, calls
    [build] once per shard (on the shard's own domain in free-running
    mode, so metric/trace cells land where the shard executes), then
    runs the windowed protocol to completion and returns the terminal
    {!stats}.

    [deterministic] (default [false]) replays the same window algorithm
    on the calling domain — identical terminal state, no parallelism.
    [seed] (default 42) derives each shard engine's RNG seed.
    [build] typically spawns fibers on [engine sh] for the components
    this shard owns (route statically: e.g. core [c] belongs to shard
    [c mod shards sh]).

    A fiber exception inside one shard marks that shard failed, lets
    the rest of the cluster drain (the barrier protocol stays honoured,
    no deadlock), and re-raises after all domains join.
    Raises [Invalid_argument] for [shards < 1] or [lookahead < 1]. *)

val post : t -> to_:int -> at:int64 -> (t -> unit) -> unit
(** [post sh ~to_ ~at f] schedules [f] to run at virtual time [at] on
    shard [to_]; [f] receives the {e target} shard's handle and runs
    outside any fiber — [Engine.spawn (engine target)] for work that
    needs to delay or block (e.g. charging an IPI receive cost).

    Cross-shard ([to_ <> sid sh]) posts must honour the conservative
    promise [at >= Engine.now (engine sh) + lookahead] — violations
    raise [Invalid_argument] immediately (a model bug: the declared
    lookahead overstates the workload's true minimum latency).
    Posts to the own shard are ordinary external events with no lower
    bound beyond the clock. *)

val sid : t -> int
(** [sid sh] is this shard's id in [[0, shards)]. *)

val shards : t -> int
(** [shards sh] is the cluster size. *)

val lookahead : t -> int64
(** [lookahead sh] is the cluster's window width in cycles. *)

val engine : t -> Engine.t
(** [engine sh] is the shard's engine — spawn this shard's fibers on
    it.  Builders must not touch a peer shard's engine; cross-shard
    effects go through {!post}. *)
