type category = User | Sys

type ctx = {
  fid : int;
  name : string;
  mutable core : int;
  daemon : bool;
  mutable user : int64;
  mutable sys : int64;
  mutable idle : int64;
  labels : (string, int64) Hashtbl.t;
}

type t = {
  mutable now : int64;
  mutable seq : int;
  q : (unit -> unit) Pqueue.t;
  mutable current : ctx option;
  mutable live : int;
  mutable next_fid : int;
  mutable nevents : int;
  engine_rng : Rng.t;
  blocked : (int, ctx) Hashtbl.t; (* fibers parked in Suspend, by fid *)
}

type _ Effect.t +=
  | Delay : category * string option * int64 -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Timed_wait : int64 -> unit Effect.t
  | Self : ctx Effect.t
  | Now : int64 Effect.t

let create ?(seed = 42) () =
  {
    now = 0L;
    seq = 0;
    q = Pqueue.create ();
    current = None;
    live = 0;
    next_fid = 0;
    nevents = 0;
    engine_rng = Rng.create seed;
    blocked = Hashtbl.create 64;
  }

let now t = t.now
let rng t = t.engine_rng
let events t = t.nevents
let live_fibers t = t.live

let blocked_fibers t =
  Hashtbl.fold
    (fun _ ctx acc -> if ctx.daemon then acc else ctx :: acc)
    t.blocked []
  |> List.sort (fun a b -> compare a.fid b.fid)
  |> List.map (fun ctx -> (ctx.core, ctx.name))

(* Tracing: every hook is behind [Trace.on] so the disabled path is one
   load and branch per site. *)
let trace_span ~ts ~dur ~cat ctx name =
  match Trace.current () with
  | Some tr -> Trace.span tr ~ts ~dur ~core:ctx.core ~fiber:ctx.fid ~cat name
  | None -> ()

let trace_instant ~ts ~cat ctx name =
  match Trace.current () with
  | Some tr -> Trace.instant tr ~ts ~core:ctx.core ~fiber:ctx.fid ~cat name
  | None -> ()

let schedule t ~at thunk =
  let at = if Int64.compare at t.now < 0 then t.now else at in
  t.seq <- t.seq + 1;
  Pqueue.push t.q ~time:at ~seq:t.seq thunk

let bump tbl label c =
  match label with
  | None -> ()
  | Some l ->
      let cur = try Hashtbl.find tbl l with Not_found -> 0L in
      Hashtbl.replace tbl l (Int64.add cur c)

(* Run [f] as a fiber under the engine's effect handler.  Suspension points
   capture the continuation and schedule it back through the event queue. *)
let run_fiber t ctx f =
  let open Effect.Deep in
  match_with f ()
    {
      retc =
        (fun () ->
          if not ctx.daemon then t.live <- t.live - 1;
          if Trace.on () then trace_instant ~ts:t.now ~cat:"engine" ctx "exit");
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (cat, label, c) ->
              Some
                (fun (k : (a, _) continuation) ->
                  let c = if Int64.compare c 0L < 0 then 0L else c in
                  (match cat with
                  | User -> ctx.user <- Int64.add ctx.user c
                  | Sys -> ctx.sys <- Int64.add ctx.sys c);
                  bump ctx.labels label c;
                  (if Trace.on () then
                     match label with
                     | Some l -> trace_span ~ts:t.now ~dur:c ~cat:"engine" ctx l
                     | None -> ());
                  schedule t ~at:(Int64.add t.now c) (fun () ->
                      t.current <- Some ctx;
                      continue k ()))
          | Timed_wait c ->
              Some
                (fun (k : (a, _) continuation) ->
                  let c = if Int64.compare c 0L < 0 then 0L else c in
                  ctx.idle <- Int64.add ctx.idle c;
                  if Trace.on () then
                    trace_span ~ts:t.now ~dur:c ~cat:"engine" ctx "idle";
                  schedule t ~at:(Int64.add t.now c) (fun () ->
                      t.current <- Some ctx;
                      continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let t0 = t.now in
                  let resumed = ref false in
                  Hashtbl.replace t.blocked ctx.fid ctx;
                  let resume () =
                    if !resumed then
                      invalid_arg
                        (Printf.sprintf "fiber %s: resumed twice" ctx.name);
                    resumed := true;
                    Hashtbl.remove t.blocked ctx.fid;
                    schedule t ~at:t.now (fun () ->
                        ctx.idle <- Int64.add ctx.idle (Int64.sub t.now t0);
                        (if Trace.on () && Int64.compare t.now t0 > 0 then
                           trace_span ~ts:t0
                             ~dur:(Int64.sub t.now t0)
                             ~cat:"engine" ctx "blocked");
                        t.current <- Some ctx;
                        continue k ())
                  in
                  register resume)
          | Self -> Some (fun (k : (a, _) continuation) -> continue k ctx)
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.now)
          | _ -> None);
    }

let spawn t ?(name = "fiber") ?(core = 0) ?(daemon = false) f =
  t.next_fid <- t.next_fid + 1;
  let ctx =
    {
      fid = t.next_fid;
      name;
      core;
      daemon;
      user = 0L;
      sys = 0L;
      idle = 0L;
      labels = Hashtbl.create 16;
    }
  in
  if not daemon then t.live <- t.live + 1;
  (if Trace.on () then
     match Trace.current () with
     | Some tr ->
         Trace.declare_fiber tr ~fiber:ctx.fid ~core:ctx.core ~name:ctx.name;
         Trace.instant tr ~ts:t.now ~core:ctx.core ~fiber:ctx.fid ~cat:"engine"
           "spawn"
     | None -> ());
  schedule t ~at:t.now (fun () ->
      t.current <- Some ctx;
      run_fiber t ctx f);
  ctx

let run t =
  let continue_ = ref true in
  while !continue_ do
    match Pqueue.pop t.q with
    | None -> continue_ := false
    | Some (time, _seq, thunk) ->
        t.now <- time;
        t.nevents <- t.nevents + 1;
        thunk ()
  done

let delay ?(cat = User) ?label c = Effect.perform (Delay (cat, label, c))
let idle_wait c = Effect.perform (Timed_wait c)
let suspend register = Effect.perform (Suspend register)
let now_f () = Effect.perform Now
let self () = Effect.perform Self

let label_add label c =
  let ctx = self () in
  bump ctx.labels (Some label) c
