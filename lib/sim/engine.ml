type category = User | Sys

(* Engine-wide label interning: cost labels (string literals at call
   sites) map to dense small ids, so per-delay accounting is one array
   add instead of a Hashtbl find+replace.  [last]/[last_id] memoize the
   previous label by physical equality — hot loops charge the same
   literal repeatedly, so the common case is a single pointer compare. *)
type interns = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
  mutable last : string;
  mutable last_id : int;
}

let interns_create () =
  { ids = Hashtbl.create 32; names = Array.make 16 ""; n = 0; last = ""; last_id = -1 }

(* Call sites pass string literals, and each call site's literal is one
   allocation — so a physical-equality scan over the (small, first-use
   ordered) names array resolves hot labels without hashing.  The
   Hashtbl handles equal-but-distinct strings and keeps the scan bounded. *)
let intern it l =
  if l == it.last then it.last_id
  else begin
    let id =
      let names = it.names in
      let lim = if it.n < 48 then it.n else 48 in
      let i = ref 0 in
      while !i < lim && not (names.(!i) == l) do
        incr i
      done;
      if !i < lim then !i
      else
        match Hashtbl.find_opt it.ids l with
        | Some id -> id
        | None ->
            let id = it.n in
            if id = Array.length it.names then begin
              let nn = Array.make (2 * id) "" in
              Array.blit it.names 0 nn 0 id;
              it.names <- nn
            end;
            it.names.(id) <- l;
            Hashtbl.add it.ids l id;
            it.n <- id + 1;
            id
    in
    it.last <- l;
    it.last_id <- id;
    id
  end

type ctx = {
  fid : int;
  name : string;
  mutable core : int;
  daemon : bool;
  mutable user : int;
  mutable sys : int;
  mutable idle : int;
  mutable ev : int; (* events executed by this fiber *)
  mutable waiting_on : int; (* shard id the fiber waits on, -1 = none *)
  mutable node : int; (* cluster node id the fiber serves, -1 = none *)
  mutable lab : int array; (* cycles per interned label id (internal) *)
  it : interns; (* owning engine's intern table (internal) *)
}

let set_waiting_on ctx sid = ctx.waiting_on <- sid
let waiting_on ctx = ctx.waiting_on
let set_node_id ctx nid = ctx.node <- nid
let node_id ctx = ctx.node

let ctx_bump ctx id c =
  let n = Array.length ctx.lab in
  if id >= n then begin
    let nn = Array.make (max 16 (max (2 * n) (id + 1))) 0 in
    Array.blit ctx.lab 0 nn 0 n;
    ctx.lab <- nn
  end;
  ctx.lab.(id) <- ctx.lab.(id) + c

let labels ctx =
  let it = ctx.it in
  let out = ref [] in
  let n = min it.n (Array.length ctx.lab) in
  for id = n - 1 downto 0 do
    if ctx.lab.(id) <> 0 then
      out := (it.names.(id), Int64.of_int ctx.lab.(id)) :: !out
  done;
  !out

let label_get ctx l =
  match Hashtbl.find_opt ctx.it.ids l with
  | Some id when id < Array.length ctx.lab -> Int64.of_int ctx.lab.(id)
  | _ -> 0L

type t = {
  mutable now : int; (* virtual cycles; fits in 62 bits *)
  mutable seq : int;
  qs : (unit -> unit) Pqueue.t array;
      (* one event queue per shard; events route statically by the owning
         fiber's core ([core mod nshards]).  [seq] stays engine-global, so
         draining shards in ascending (time, seq) order reproduces the
         single-queue execution byte for byte at any shard count. *)
  nshards : int;
  mutable horizon : int;
      (* exclusive virtual-time bound for [run_until]; [max_int] outside
         a windowed run.  The delay fast path honours it so a fiber
         cannot coast past the conservative-sync window. *)
  slot : (unit -> unit) Pqueue.slot;
      (* reusable out-cell for the drain loop: one per engine, so popping
         an event is three stores instead of an option/tuple box *)
  mutable current : ctx option;
  mutable live : int;
  mutable next_fid : int;
  mutable nevents : int;
  fastpath : bool;
  mutable pending : (unit, unit) Effect.Deep.continuation option;
      (* fast-path trampoline: a delay whose wake-up provably precedes
         every queued event skips the queue; the run loop continues it
         directly, keeping the native stack flat *)
  mutable on_event : (int -> unit) option;
      (* called with the event ordinal after every event (queued or
         fast-pathed); may raise to abort the run at an event boundary *)
  engine_rng : Rng.t;
  blocked : (int, ctx) Hashtbl.t; (* fibers parked in Suspend, by fid *)
  it : interns;
  (* always-on metric cells, bound once at [create] for the owning
     domain — each bump is a single unboxed int store *)
  m_ev : Metrics.Registry.cell;
  m_ev_fast : Metrics.Registry.cell;
  m_spawns : Metrics.Registry.cell;
  m_suspends : Metrics.Registry.cell;
}

type _ Effect.t +=
  | Delay : category * string option * int -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Timed_wait : int -> unit Effect.t
  | Self : ctx Effect.t
  | Now : int64 Effect.t

(* Ambient engine of the executing domain, maintained by [run].  Pure
   reads from fiber code (self, now_f, label_add) resolve through it as
   plain loads; performing an effect for them would capture and resume a
   continuation per call, which dominates the cost of hot accounting
   loops like [Costbuf.charge].  The effects above stay as the fallback
   so the reads still work under a foreign handler (e.g. in tests that
   drive fibers manually). *)
let ambient_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

(* Domain-local event hook, picked up by engines created afterwards in
   the same domain (fault plans install their crash trigger here before
   the experiment builds its engine).  Kept in the engine record so the
   per-event disabled cost is one field load and branch, not a DLS
   lookup. *)
let event_hook_key : (int -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_domain_event_hook h = Domain.DLS.get event_hook_key := h

(* Process-wide default shard count, set once by the CLI / bench driver
   before any experiment builds its engine.  An [Atomic] (not DLS) so
   [Fanout] worker domains pick it up too. *)
let default_shards = Atomic.make 1

let set_default_shards n =
  if n < 1 then invalid_arg "Engine.set_default_shards: shards must be >= 1";
  Atomic.set default_shards n

let create ?(seed = 42) ?(fastpath = true) ?shards () =
  let nshards =
    match shards with Some n -> n | None -> Atomic.get default_shards
  in
  if nshards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  {
    now = 0;
    seq = 0;
    qs = Array.init nshards (fun _ -> Pqueue.create ());
    nshards;
    horizon = max_int;
    slot = Pqueue.slot ~dummy:ignore;
    current = None;
    live = 0;
    next_fid = 0;
    nevents = 0;
    fastpath;
    pending = None;
    on_event = !(Domain.DLS.get event_hook_key);
    engine_rng = Rng.create seed;
    blocked = Hashtbl.create 64;
    it = interns_create ();
    m_ev =
      Metrics.Registry.counter ~help:"simulation events executed"
        "engine_events";
    m_ev_fast =
      Metrics.Registry.counter ~help:"events that took the delay fast path"
        "engine_events_fast";
    m_spawns =
      Metrics.Registry.counter ~help:"fibers spawned" "engine_spawns";
    m_suspends =
      Metrics.Registry.counter ~help:"fibers parked in suspend"
        "engine_suspends";
  }

let now t = Int64.of_int t.now
let rng t = t.engine_rng
let events t = t.nevents
let live_fibers t = t.live
let set_event_hook t h = t.on_event <- h
let n_shards t = t.nshards

(* Static event-to-shard routing: the owning fiber's core picks the
   shard.  Cores are the stable component identity in every workload
   (engine cores, Block_dev channels and Ipi targets all pin fibers), so
   the route never moves while a fiber is parked. *)
let shard_of t core =
  if t.nshards = 1 then 0
  else begin
    let s = core mod t.nshards in
    if s < 0 then s + t.nshards else s
  end

let shard_of_core = shard_of

(* Earliest queued time across all shards ([max_int] when drained) — the
   fast-path guard.  Single-shard engines keep the one-load cost. *)
let qmin_time t =
  if t.nshards = 1 then Pqueue.min_time t.qs.(0)
  else begin
    let m = ref max_int in
    for s = 0 to t.nshards - 1 do
      let mt = Pqueue.min_time t.qs.(s) in
      if mt < !m then m := mt
    done;
    !m
  end

(* Shard holding the globally next event by (time, seq), or -1 when every
   queue is empty.  Because [seq] is engine-global, this merge recovers
   the exact single-queue total order. *)
let next_shard t =
  if t.nshards = 1 then (if Pqueue.is_empty t.qs.(0) then -1 else 0)
  else begin
    let best = ref (-1) and bt = ref max_int and bs = ref max_int in
    for s = 0 to t.nshards - 1 do
      let q = t.qs.(s) in
      let mt = Pqueue.min_time q in
      if mt < !bt || (mt = !bt && Pqueue.min_seq q < !bs) then begin
        best := s;
        bt := mt;
        bs := Pqueue.min_seq q
      end
    done;
    !best
  end

let next_time t = qmin_time t

let blocked_fibers t =
  Hashtbl.fold
    (fun _ ctx acc -> if ctx.daemon then acc else ctx :: acc)
    t.blocked []
  |> List.sort (fun a b -> Int.compare a.fid b.fid)
  |> List.map (fun ctx -> (ctx.core, ctx.name))

(* Deadlock diagnosis: everything known about each parked fiber, daemons
   included, with the per-label cycle breakdown — a fiber stuck in
   "io_retry" reads very differently from one stuck in "lock". *)
let blocked_report t =
  let parked =
    Hashtbl.fold (fun _ ctx acc -> ctx :: acc) t.blocked []
    |> List.sort (fun a b -> Int.compare a.fid b.fid)
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%d fiber(s) blocked at t=%d:\n" (List.length parked) t.now);
  List.iter
    (fun ctx ->
      Buffer.add_string b
        (Printf.sprintf
           "  fiber %d %S core %d shard %d%s%s%s: events=%d user=%d sys=%d \
            idle=%d cycles\n"
           ctx.fid ctx.name ctx.core
           (shard_of t ctx.core)
           (* cluster-node tag: a cross-node RPC deadlock then names both
              halves (this node, plus the awaited shard) in one line *)
           (if ctx.node >= 0 then Printf.sprintf " node %d" ctx.node else "")
           (if ctx.waiting_on >= 0 then
              (* the cross-shard half of a deadlock: name the peer whose
                 reply never came, not just where this fiber lives *)
              Printf.sprintf " waiting-on shard %d" ctx.waiting_on
            else "")
           (if ctx.daemon then " [daemon]" else "")
           ctx.ev ctx.user ctx.sys ctx.idle);
      List.iter
        (fun (label, cycles) ->
          Buffer.add_string b (Printf.sprintf "    %-18s %Ld\n" label cycles))
        (labels ctx))
    parked;
  Buffer.contents b

(* Tracing: every hook is behind a [Trace.live_tracers] check so the
   disabled path is one plain load and branch per site. *)
let trace_span ~ts ~dur ~cat ctx name =
  match Trace.current () with
  | Some tr ->
      Trace.span tr ~ts:(Int64.of_int ts) ~dur:(Int64.of_int dur) ~core:ctx.core
        ~fiber:ctx.fid ~cat name
  | None -> ()

let trace_instant ~ts ~cat ctx name =
  match Trace.current () with
  | Some tr ->
      Trace.instant tr ~ts:(Int64.of_int ts) ~core:ctx.core ~fiber:ctx.fid ~cat
        name
  | None -> ()

(* Profiling: same discipline as tracing — every call site guards with
   [Atomic.get Metrics.Profile.live > 0], so runs without a profiler pay
   one load and branch per charge.  Unlabelled delays attribute their
   cycles to the category name. *)
let cat_label = function User -> "user" | Sys -> "sys"

let prof_charge ~now ~cycles ctx label =
  Metrics.Profile.charge ~now ~cycles ~fiber:ctx.name ~label

let schedule t ~shard ~at thunk =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Pqueue.push t.qs.(shard) ~time:at ~seq:t.seq thunk

(* External event injection: runs [thunk] at virtual time [at] on the
   shard owning [core], outside any fiber.  This is how a Shard cluster
   delivers cross-shard events (posted IPIs, remote completions); the
   thunk must not perform fiber effects itself — spawn a fiber for any
   work that needs to delay or block. *)
let post t ?(core = 0) ~at thunk =
  let at = Int64.to_int at in
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Pqueue.push t.qs.(shard_of t core) ~time:at ~seq:t.seq (fun () ->
      t.current <- None;
      thunk ())

(* Run [f] as a fiber under the engine's effect handler.  Suspension points
   capture the continuation and schedule it back through the event queue —
   except delays that would run next anyway, which park in [t.pending] for
   the run loop to continue without a queue round-trip. *)
let run_fiber t ctx f =
  let open Effect.Deep in
  match_with f ()
    {
      retc =
        (fun () ->
          if not ctx.daemon then t.live <- t.live - 1;
          if Atomic.get Trace.live_tracers > 0 then trace_instant ~ts:t.now ~cat:"engine" ctx "exit");
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (cat, label, c) ->
              Some
                (fun (k : (a, _) continuation) ->
                  let c = if c < 0 then 0 else c in
                  (match cat with
                  | User -> ctx.user <- ctx.user + c
                  | Sys -> ctx.sys <- ctx.sys + c);
                  (match label with
                  | None -> ()
                  | Some l -> ctx_bump ctx (intern t.it l) c);
                  (if Atomic.get Trace.live_tracers > 0 then
                     match label with
                     | Some l -> trace_span ~ts:t.now ~dur:c ~cat:"engine" ctx l
                     | None -> ());
                  (if Atomic.get Metrics.Profile.live > 0 then
                     prof_charge ~now:t.now ~cycles:c ctx
                       (match label with Some l -> l | None -> cat_label cat));
                  let at = t.now + c in
                  t.seq <- t.seq + 1;
                  (* Fast path: nothing queued on any shard can run before
                     (at, seq) — the global head is strictly later (ties
                     lose: an equal-time head has a smaller seq) — and the
                     wake-up stays inside the run window.  Advance the
                     clock and hand the continuation straight back to the
                     run loop. *)
                  if t.fastpath && qmin_time t > at && at < t.horizon then begin
                    t.now <- at;
                    t.current <- Some ctx;
                    t.pending <- Some k
                  end
                  else
                    Pqueue.push t.qs.(shard_of t ctx.core) ~time:at ~seq:t.seq
                      (fun () ->
                        ctx.ev <- ctx.ev + 1;
                        t.current <- Some ctx;
                        continue k ()))
          | Timed_wait c ->
              Some
                (fun (k : (a, _) continuation) ->
                  let c = if c < 0 then 0 else c in
                  ctx.idle <- ctx.idle + c;
                  if Atomic.get Trace.live_tracers > 0 then
                    trace_span ~ts:t.now ~dur:c ~cat:"engine" ctx "idle";
                  if Atomic.get Metrics.Profile.live > 0 then
                    prof_charge ~now:t.now ~cycles:c ctx "idle";
                  let at = t.now + c in
                  t.seq <- t.seq + 1;
                  if t.fastpath && qmin_time t > at && at < t.horizon then begin
                    t.now <- at;
                    t.current <- Some ctx;
                    t.pending <- Some k
                  end
                  else
                    Pqueue.push t.qs.(shard_of t ctx.core) ~time:at ~seq:t.seq
                      (fun () ->
                        ctx.ev <- ctx.ev + 1;
                        t.current <- Some ctx;
                        continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let t0 = t.now in
                  let resumed = ref false in
                  Hashtbl.replace t.blocked ctx.fid ctx;
                  Metrics.Registry.incr t.m_suspends;
                  let resume () =
                    if !resumed then
                      invalid_arg
                        (Printf.sprintf "fiber %s: resumed twice" ctx.name);
                    resumed := true;
                    Hashtbl.remove t.blocked ctx.fid;
                    ctx.waiting_on <- -1;
                    schedule t ~shard:(shard_of t ctx.core) ~at:t.now (fun () ->
                        ctx.ev <- ctx.ev + 1;
                        ctx.idle <- ctx.idle + (t.now - t0);
                        (if Atomic.get Trace.live_tracers > 0 && t.now > t0 then
                           trace_span ~ts:t0 ~dur:(t.now - t0) ~cat:"engine" ctx
                             "blocked");
                        (if Atomic.get Metrics.Profile.live > 0 && t.now > t0
                         then
                           prof_charge ~now:t0 ~cycles:(t.now - t0) ctx
                             "blocked");
                        t.current <- Some ctx;
                        continue k ())
                  in
                  register resume)
          | Self -> Some (fun (k : (a, _) continuation) -> continue k ctx)
          | Now ->
              Some (fun (k : (a, _) continuation) -> continue k (Int64.of_int t.now))
          | _ -> None);
    }

let spawn t ?(name = "fiber") ?(core = 0) ?(daemon = false) f =
  t.next_fid <- t.next_fid + 1;
  let ctx =
    {
      fid = t.next_fid;
      name;
      core;
      daemon;
      user = 0;
      sys = 0;
      idle = 0;
      ev = 0;
      waiting_on = -1;
      node = -1;
      lab = [||];
      it = t.it;
    }
  in
  Metrics.Registry.incr t.m_spawns;
  if not daemon then t.live <- t.live + 1;
  (if Atomic.get Trace.live_tracers > 0 then
     match Trace.current () with
     | Some tr ->
         Trace.declare_fiber tr ~fiber:ctx.fid ~core:ctx.core ~name:ctx.name;
         Trace.instant tr ~ts:(Int64.of_int t.now) ~core:ctx.core ~fiber:ctx.fid
           ~cat:"engine" "spawn"
     | None -> ());
  schedule t ~shard:(shard_of t ctx.core) ~at:t.now (fun () ->
      ctx.ev <- ctx.ev + 1;
      t.current <- Some ctx;
      run_fiber t ctx f);
  ctx

let run_loop t ~horizon =
  let amb = Domain.DLS.get ambient_key in
  let saved = !amb in
  amb := Some t;
  t.horizon <- horizon;
  Fun.protect
    ~finally:(fun () ->
      t.horizon <- max_int;
      amb := saved)
    (fun () ->
      let continue_ = ref true in
      while !continue_ do
        match t.pending with
        | Some k ->
            (* clock and current fiber were set when the delay fast-pathed *)
            t.pending <- None;
            t.nevents <- t.nevents + 1;
            Metrics.Registry.incr t.m_ev;
            Metrics.Registry.incr t.m_ev_fast;
            (match t.current with
            | Some ctx -> ctx.ev <- ctx.ev + 1
            | None -> ());
            (match t.on_event with None -> () | Some f -> f t.nevents);
            Effect.Deep.continue k ()
        | None ->
            let s = next_shard t in
            if s < 0 then continue_ := false
            else begin
              let sl = t.slot in
              if Pqueue.pop_into t.qs.(s) sl ~before:horizon then begin
                t.now <- sl.Pqueue.s_time;
                let thunk = sl.Pqueue.s_val in
                sl.Pqueue.s_val <- ignore;
                t.nevents <- t.nevents + 1;
                Metrics.Registry.incr t.m_ev;
                (match t.on_event with None -> () | Some f -> f t.nevents);
                thunk ()
              end
              else continue_ := false
            end
      done)

let run t = run_loop t ~horizon:max_int

(* Windowed run for conservative parallel sync (see [Shard]): executes
   only events strictly before [horizon], leaving later ones queued.
   The clock is left at the last executed event, never advanced to the
   horizon itself, so a later window (or a cross-shard post landing
   inside the lookahead gap) can still schedule work at >= now. *)
let run_until t ~horizon = run_loop t ~horizon

(* Fiber-side fast path: when the wake-up provably precedes every queued
   event, the continuation would be resumed immediately anyway, so the
   delay reduces to accounting plus a clock bump — no effect performed,
   no continuation captured.  Identical (time, seq) order and event
   count as the queued path; the effect below is the fallback whenever
   the condition fails (or the fast path is disabled). *)
let delay ?(cat = User) ?label c =
  let c = Int64.to_int c in
  let c = if c < 0 then 0 else c in
  match !(Domain.DLS.get ambient_key) with
  | Some ({ fastpath = true; current = Some ctx; _ } as t)
    when qmin_time t > t.now + c && t.now + c < t.horizon ->
      (match cat with
      | User -> ctx.user <- ctx.user + c
      | Sys -> ctx.sys <- ctx.sys + c);
      (match label with
      | None -> ()
      | Some l -> ctx_bump ctx (intern t.it l) c);
      (if Atomic.get Trace.live_tracers > 0 then
         match label with
         | Some l -> trace_span ~ts:t.now ~dur:c ~cat:"engine" ctx l
         | None -> ());
      (if Atomic.get Metrics.Profile.live > 0 then
         prof_charge ~now:t.now ~cycles:c ctx
           (match label with Some l -> l | None -> cat_label cat));
      t.seq <- t.seq + 1;
      t.nevents <- t.nevents + 1;
      ctx.ev <- ctx.ev + 1;
      Metrics.Registry.incr t.m_ev;
      Metrics.Registry.incr t.m_ev_fast;
      t.now <- t.now + c;
      (match t.on_event with None -> () | Some f -> f t.nevents)
  | _ -> Effect.perform (Delay (cat, label, c))

let idle_wait c =
  let c = Int64.to_int c in
  let c = if c < 0 then 0 else c in
  match !(Domain.DLS.get ambient_key) with
  | Some ({ fastpath = true; current = Some ctx; _ } as t)
    when qmin_time t > t.now + c && t.now + c < t.horizon ->
      ctx.idle <- ctx.idle + c;
      if Atomic.get Trace.live_tracers > 0 then trace_span ~ts:t.now ~dur:c ~cat:"engine" ctx "idle";
      if Atomic.get Metrics.Profile.live > 0 then
        prof_charge ~now:t.now ~cycles:c ctx "idle";
      t.seq <- t.seq + 1;
      t.nevents <- t.nevents + 1;
      ctx.ev <- ctx.ev + 1;
      Metrics.Registry.incr t.m_ev;
      Metrics.Registry.incr t.m_ev_fast;
      t.now <- t.now + c;
      (match t.on_event with None -> () | Some f -> f t.nevents)
  | _ -> Effect.perform (Timed_wait c)

let suspend register = Effect.perform (Suspend register)

let now_f () =
  match !(Domain.DLS.get ambient_key) with
  | Some t -> Int64.of_int t.now
  | None -> Effect.perform Now

let self () =
  match !(Domain.DLS.get ambient_key) with
  | Some { current = Some ctx; _ } -> ctx
  | _ -> Effect.perform Self

let label_add label c =
  let ctx = self () in
  ctx_bump ctx (intern ctx.it label) (Int64.to_int c)

let ctx_label_add ctx label c = ctx_bump ctx (intern ctx.it label) c
