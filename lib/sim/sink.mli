(** Domain-local stdout sink for experiment/benchmark output.

    Code that prints result tables uses {!printf} instead of
    [Printf.printf].  By default output goes to stdout unchanged; a
    parallel runner wraps each job in {!capture} so that domains running
    concurrently never interleave their bytes, and the captured outputs
    can be emitted in a deterministic order. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** [printf fmt ...] prints to the current domain's sink (stdout unless
    inside {!capture}). *)

val print_string : string -> unit

val print_newline : unit -> unit

val capture : (unit -> 'a) -> 'a * string
(** [capture f] runs [f] with this domain's sink redirected into a fresh
    buffer and returns [f]'s result with everything it printed.  Nests;
    on exception the previous sink is restored and the output is lost. *)
