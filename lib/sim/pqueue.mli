(** Structure-of-arrays 4-ary min-heap keyed by [(time, sequence)] pairs.

    Used by the discrete-event engine to order pending events.  Ties on
    [time] are broken by the monotonically increasing sequence number, which
    makes event ordering — and therefore every simulation — deterministic.

    Times are plain native [int] cycles (virtual time fits in 62 bits), so
    pushes and pops touch no boxed values and allocate nothing. *)

type 'a t
(** A mutable priority queue holding values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
(** [length q] is the number of queued elements. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [length q = 0]. *)

val push : 'a t -> time:int -> seq:int -> 'a -> unit
(** [push q ~time ~seq v] inserts [v] with priority [(time, seq)]. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop q] removes and returns the element with the smallest
    [(time, seq)] key, or [None] if the queue is empty. *)

val pop_if_before : 'a t -> time:int -> (int * int * 'a) option
(** [pop_if_before q ~time] is [pop q] when the head's time is strictly
    earlier than [time], and [None] (leaving the queue untouched)
    otherwise — the primitive behind the engine's delay fast path. *)

val min_time : 'a t -> int
(** [min_time q] is the key time of the head, or [max_int] when empty.
    Allocation-free, for hot-path comparisons. *)

val min_seq : 'a t -> int
(** [min_seq q] is the sequence number of the head, or [max_int] when
    empty. *)

val pop_min : 'a t -> 'a
(** [pop_min q] removes the head and returns its payload only (no tuple
    allocation).  Raises [Invalid_argument] on an empty queue; pair with
    {!is_empty} or {!min_time}. *)

val peek_payload : 'a t -> 'a
(** [peek_payload q] is the head's payload without removing it.  Raises
    [Invalid_argument] on an empty queue. *)

type 'a slot = { mutable s_time : int; mutable s_seq : int; mutable s_val : 'a }
(** Caller-owned out-cell for {!pop_into}: reusing one slot across a
    drain loop makes each pop three plain stores, with no option or
    tuple boxed per event. *)

val slot : dummy:'a -> 'a slot
(** [slot ~dummy] is a fresh slot; [dummy] seeds [s_val] until the first
    successful {!pop_into}. *)

val pop_into : 'a t -> 'a slot -> before:int -> bool
(** [pop_into q out ~before] pops the head into [out] and returns [true]
    when the head's time is strictly earlier than [before]; otherwise
    leaves the queue untouched and returns [false].  The allocation-free
    primitive behind the engine's shard drain loop; {!pop_if_before} is
    its boxing wrapper. *)

val peek_time : 'a t -> int option
(** [peek_time q] is the key time of the next element without removing it. *)
