(* Conservative parallel discrete-event simulation (PDES) on OCaml 5
   domains.

   A cluster runs N shards, each a full single-queue [Engine] owned by
   one domain.  Shards free-run in lockstepped windows: every window the
   cluster agrees on the global minimum next-event time T, then each
   shard executes its local events in [T, T + lookahead) without any
   further coordination.  The lookahead is the Chandy–Misra–Bryant
   promise: no shard may inject an event into another shard less than
   [lookahead] cycles after its own current time, so nothing a peer does
   during the window can land inside the window — see
   [Hw.Costs.min_cross_shard_latency] for the model-derived floor.

   Cross-shard events travel through per-shard inboxes (a mutex-guarded
   list; posts only happen while peers are inside their run phase, so
   drain/publish phases never contend).  Each post carries a
   deterministic merge key [(at, source shard, source ordinal)], and a
   drain delivers in sorted key order, so the receiving engine assigns
   the same (time, seq) schedule on every run — wall-clock races decide
   only *when* an inbox entry is observed, never *where* it lands in
   virtual time.  A post made during window W is sealed into the inbox
   before the W-close barrier and therefore drained by every mode at the
   top of window W+1.

   [deterministic] mode replays the exact same window algorithm on the
   calling domain, visiting shards in ascending sid order — byte-for-byte
   the schedule of the free-running mode, single-threaded.  Tests compare
   the two to prove the parallel run honest. *)

(* Sense-reversing barrier on a stdlib mutex + condvar (domain-safe).
   [await] returns only after all [n] parties arrive; the phase counter
   is the sense, so back-to-back barriers cannot tangle. *)
module Bar = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    n : int;
    mutable arrived : int;
    mutable phase : int;
  }

  let create n =
    { lock = Mutex.create (); cond = Condition.create (); n; arrived = 0; phase = 0 }

  let await b =
    Mutex.lock b.lock;
    let ph = b.phase in
    b.arrived <- b.arrived + 1;
    if b.arrived = b.n then begin
      b.arrived <- 0;
      b.phase <- ph + 1;
      Condition.broadcast b.cond
    end
    else
      while b.phase = ph do
        Condition.wait b.cond b.lock
      done;
    Mutex.unlock b.lock
end

type t = { sid : int; eng : Engine.t; cl : cluster; mutable out_ord : int }

and item = { at : int; src : int; ord : int; fn : t -> unit }

and inbox = { ilock : Mutex.t; mutable items : item list }

and cluster = {
  n : int;
  la : int;
  inboxes : inbox array;
  engines : Engine.t option array;
  handles : t option array;
  next : int array; (* published next-event time per shard, max_int = drained *)
  posts : int Atomic.t;
  drains : int array; (* inbox items delivered, per shard (owner-written) *)
  mutable windows : int; (* written by shard 0 / the det loop only *)
  fails : (exn * Printexc.raw_backtrace) option array;
}

type stats = {
  shards : int;
  lookahead : int;
  events : int;
  final_cycles : int64;
  cross_posts : int;
  windows : int;
  run_wall_s : float;
  shard_events : int array;
  shard_drains : int array;
}

let sid sh = sh.sid
let engine sh = sh.eng
let shards sh = sh.cl.n
let lookahead sh = Int64.of_int sh.cl.la

let post sh ~to_ ~at f =
  let cl = sh.cl in
  if to_ < 0 || to_ >= cl.n then
    invalid_arg (Printf.sprintf "Shard.post: target %d outside [0, %d)" to_ cl.n);
  let at = Int64.to_int at in
  if to_ = sh.sid then
    (* Local delivery needs no promise: the event merges into this
       shard's own queue under the normal (time, seq) order. *)
    Engine.post sh.eng ~at:(Int64.of_int at) (fun () -> f sh)
  else begin
    let now = Int64.to_int (Engine.now sh.eng) in
    if at < now + cl.la then
      invalid_arg
        (Printf.sprintf
           "Shard.post: timestamp %d violates lookahead %d (shard %d at %d): \
            cross-shard events must land >= now + lookahead"
           at cl.la sh.sid now);
    sh.out_ord <- sh.out_ord + 1;
    Atomic.incr cl.posts;
    let it = { at; src = sh.sid; ord = sh.out_ord; fn = f } in
    let ib = cl.inboxes.(to_) in
    Mutex.lock ib.ilock;
    ib.items <- it :: ib.items;
    Mutex.unlock ib.ilock
  end

(* Deliver everything in this shard's inbox to its engine, in merge-key
   order.  Source ordinals are deterministic (each shard's simulation
   is), so the delivery order — and the seq numbers the engine assigns —
   never depends on which domain won the inbox mutex first. *)
let drain cl sh =
  let ib = cl.inboxes.(sh.sid) in
  Mutex.lock ib.ilock;
  let items = ib.items in
  ib.items <- [];
  Mutex.unlock ib.ilock;
  match items with
  | [] -> ()
  | items ->
      cl.drains.(sh.sid) <- cl.drains.(sh.sid) + List.length items;
      let items =
        List.sort
          (fun a b ->
            if a.at <> b.at then Int.compare a.at b.at
            else if a.src <> b.src then Int.compare a.src b.src
            else Int.compare a.ord b.ord)
          items
      in
      List.iter
        (fun it -> Engine.post sh.eng ~at:(Int64.of_int it.at) (fun () -> it.fn sh))
        items

let fail cl sid e = cl.fails.(sid) <- Some (e, Printexc.get_raw_backtrace ())

let global_min cl =
  let m = ref max_int in
  for s = 0 to cl.n - 1 do
    if cl.next.(s) < !m then m := cl.next.(s)
  done;
  !m

let horizon_of cl t = if t > max_int - cl.la then max_int else t + cl.la

(* One shard's life in free-running mode.  Two barriers per window:
   after publishing next-event times (so the global min T is computed
   from a consistent snapshot) and after the run phase (so every window-W
   post is sealed before any window-W+1 drain).  A failed shard keeps
   honouring the barrier protocol while publishing max_int — peers
   finish their work, nobody deadlocks, the exception re-raises after
   join. *)
let window_loop cl bar sh =
  let dead = ref (cl.fails.(sh.sid) <> None) in
  let running = ref true in
  while !running do
    if not !dead then begin
      try
        drain cl sh;
        cl.next.(sh.sid) <- Engine.next_time sh.eng
      with e ->
        fail cl sh.sid e;
        dead := true
    end;
    if !dead then cl.next.(sh.sid) <- max_int;
    Bar.await bar;
    let t = global_min cl in
    if t = max_int then running := false
    else begin
      (if sh.sid = 0 then cl.windows <- cl.windows + 1);
      if not !dead then (
        try Engine.run_until sh.eng ~horizon:(horizon_of cl t)
        with e ->
          fail cl sh.sid e;
          dead := true)
    end;
    Bar.await bar
  done

(* Deterministic replay of the same window algorithm, single-domain,
   shards visited in ascending sid order.  Exceptions behave like a dead
   shard in free mode: recorded, the rest of the cluster drains. *)
let det_loop cl =
  let each f =
    Array.iter (function Some sh -> f sh | None -> ()) cl.handles
  in
  let running = ref true in
  while !running do
    each (fun sh ->
        if cl.fails.(sh.sid) = None then (
          try
            drain cl sh;
            cl.next.(sh.sid) <- Engine.next_time sh.eng
          with e -> fail cl sh.sid e);
        if cl.fails.(sh.sid) <> None then cl.next.(sh.sid) <- max_int);
    let t = global_min cl in
    if t = max_int then running := false
    else begin
      cl.windows <- cl.windows + 1;
      each (fun sh ->
          if cl.fails.(sh.sid) = None then
            try Engine.run_until sh.eng ~horizon:(horizon_of cl t)
            with e -> fail cl sh.sid e)
    end
  done

let reraise_first_failure cl =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    cl.fails

let make_shard cl ~seed sid build =
  (* [~shards:1]: cluster shards are single-queue engines regardless of
     the ambient [Engine.set_default_shards] — the cluster *is* the
     sharding. *)
  let eng = Engine.create ~seed:(seed + (7919 * sid)) ~shards:1 () in
  let sh = { sid; eng; cl; out_ord = 0 } in
  cl.engines.(sid) <- Some eng;
  cl.handles.(sid) <- Some sh;
  build sh;
  sh

let collect_stats cl ~run_wall_s =
  let events = ref 0 and final = ref 0L in
  let shard_events =
    Array.map
      (function
        | Some eng ->
            events := !events + Engine.events eng;
            if Engine.now eng > !final then final := Engine.now eng;
            Engine.events eng
        | None -> 0)
      cl.engines
  in
  {
    shards = cl.n;
    lookahead = cl.la;
    events = !events;
    final_cycles = !final;
    cross_posts = Atomic.get cl.posts;
    windows = cl.windows;
    run_wall_s;
    shard_events;
    shard_drains = Array.copy cl.drains;
  }

let run ?(deterministic = false) ?(seed = 42) ~shards:n ~lookahead build =
  if n < 1 then invalid_arg "Shard.run: shards must be >= 1";
  let la = Int64.to_int lookahead in
  if la < 1 then invalid_arg "Shard.run: lookahead must be >= 1 cycle";
  let cl =
    {
      n;
      la;
      inboxes = Array.init n (fun _ -> { ilock = Mutex.create (); items = [] });
      engines = Array.make n None;
      handles = Array.make n None;
      next = Array.make n max_int;
      posts = Atomic.make 0;
      drains = Array.make n 0;
      windows = 0;
      fails = Array.make n None;
    }
  in
  if deterministic || n = 1 then begin
    for sid = 0 to n - 1 do
      try ignore (make_shard cl ~seed sid build) with e -> fail cl sid e
    done;
    let t0 = Unix.gettimeofday () in
    det_loop cl;
    let dt = Unix.gettimeofday () -. t0 in
    reraise_first_failure cl;
    collect_stats cl ~run_wall_s:dt
  end
  else begin
    (* Workers build their own engine so metric cells, trace buffers and
       the ambient-engine DLS slot land on the owning domain, then meet
       at a barrier.  Shard 0 (this domain) stamps wall time inside the
       barriers, so the reported seconds cover the windowed run only —
       not Domain.spawn, stack construction, or join/teardown. *)
    let bar = Bar.create n in
    let t0 = ref 0. and t1 = ref 0. in
    let body sid =
      (try ignore (make_shard cl ~seed sid build) with e -> fail cl sid e);
      Bar.await bar;
      if sid = 0 then t0 := Unix.gettimeofday ();
      (match cl.handles.(sid) with
      | Some sh -> window_loop cl bar sh
      | None ->
          (* build failed: keep the barrier protocol alive as a drained
             shard so peers can finish *)
          let running = ref true in
          while !running do
            cl.next.(sid) <- max_int;
            Bar.await bar;
            if global_min cl = max_int then running := false;
            Bar.await bar
          done);
      if sid = 0 then t1 := Unix.gettimeofday ()
    in
    let doms =
      List.init (n - 1) (fun i ->
          Domain.spawn (fun () ->
              try body (i + 1) with e -> fail cl (i + 1) e))
    in
    (try body 0 with e -> fail cl 0 e);
    List.iter Domain.join doms;
    reraise_first_failure cl;
    collect_stats cl ~run_wall_s:(!t1 -. !t0)
  end
