(** Pluggable DRAM-cache replacement policies.

    The paper's central argument is that common-path operation ② —
    choosing which cached page to evict — must run in the application's
    protection domain to be fast {e and} customizable.  This module makes
    the "customizable" half real: {!Dram_cache} drives replacement
    exclusively through this interface, so a policy can be swapped per
    cache instance (the [--policy] knob on the CLI and benches) without
    touching the fault path.

    Frames are integers in [\[0, nframes)], the same identifiers the
    cache's frame array uses.  A policy tracks only {e resident} frames:
    {!note_insert} when a frame starts holding a page, {!note_remove}
    when it stops, {!retire} when the frame leaves the cache entirely
    (shrink) — after which the policy must hold no metadata for it.

    Cost convention (matches {!Dram_cache}): bookkeeping work is
    {e returned} as cycles through the {!Hw.Costs} model, so policies
    differ in simulated time as well as hit rate.  The CLOCK policy
    reproduces the pre-policy-interface cache byte for byte: same victims
    in the same order, same charged cycles. *)

type kind =
  | Clock  (** reference-bit CLOCK sweep (the paper's LRU approximation) *)
  | Fifo  (** eviction in residency order; zero per-access bookkeeping *)
  | Lru  (** strict LRU via an intrusive doubly-linked list *)
  | Two_q
      (** scan-resistant 2Q: new pages enter a probationary FIFO and are
          promoted to the protected LRU main queue on re-reference, so a
          one-shot scan cannot flush the hot set *)
  | Random of int
      (** seeded sampled-LRU (Redis-style): each victim is the
          least-recently-stamped of [k] frames sampled from the policy's
          own deterministic stream; the payload is the seed *)

val default_random_seed : int

val kind_of_string : string -> (kind, string) result
(** Accepts "clock", "fifo", "lru", "2q", "random" and "random:SEED". *)

val kind_to_string : kind -> string

val all_kinds : kind list
(** One representative of each policy, CLOCK first. *)

type t

val make : Hw.Costs.t -> nframes:int -> kind -> t
val kind : t -> kind

val name : t -> string
(** [name t] is [kind_to_string (kind t)]. *)

val touch : t -> int -> int64
(** [touch t f] records an access to resident frame [f] and returns the
    bookkeeping cycles to charge: CLOCK sets a reference bit
    ([lru_update]); strict LRU relinks to the list tail
    (2×[lru_update]); 2Q promotes or relinks; FIFO does nothing (0);
    sampled-LRU stamps the access clock ([lru_update]). *)

val note_insert : t -> int -> touched:bool -> unit
(** [note_insert t f ~touched] marks [f] resident.  [touched] seeds the
    initial recency (CLOCK's reference bit / a fresh stamp); readahead
    frames are inserted untouched so an unread prefetch is the first to
    go.  Uncharged: the miss path's costs already cover it.  Idempotent
    for an already-resident frame. *)

val note_remove : t -> int -> unit
(** [note_remove t f] marks [f] no longer resident (drop, crash).
    Idempotent. *)

val retire : t -> int -> unit
(** [retire t f] removes {e all} metadata for [f] — membership, recency,
    reference bits — so a retired frame can never surface as a victim
    and a later {!Dram_cache.grow} re-add starts clean. *)

val is_active : t -> int -> bool
val active_count : t -> int

val evict_candidates : t -> int -> int list * int64
(** [evict_candidates t n] selects and removes up to [n] victims, in
    eviction order, plus the selection cycles to charge (CLOCK's sweep is
    folded into its per-access cost and returns 0, preserving the
    pre-interface accounting; list policies charge [freelist_op] per
    dequeue; sampled-LRU charges [k]×[lru_update] per victim). *)
