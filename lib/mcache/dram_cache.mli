(** Aquila's scalable DRAM I/O cache (Section 3.2, Figure 4).

    The cache holds 4 KiB frames of file data, indexed by a lock-free hash
    table on {!Pagekey.t}.  Misses allocate frames from the two-level
    {!Freelist}; when it runs dry the faulting thread synchronously evicts
    a batch of frames chosen by the configured replacement {!Policy}
    (CLOCK by default — the paper's LRU approximation updated on faults),
    writing dirty victims back in ascending-offset merged I/Os
    and invalidating the victims' mappings with one batched TLB shootdown.
    Dirty pages live in per-core red-black trees ({!Dirty_set}), never in
    the hash table's critical path.

    The cache owns the process page table entries for cached pages, so the
    same component serves Aquila (non-root ring 0 costs) and Kreon's
    [kmmap] baseline (ring 0 kernel costs) — only the configured costs and
    access methods differ.

    Cost convention: non-blocking software work is {e returned} as cycles
    for the caller to charge in one batch; blocking work (device I/O,
    waiting on an in-flight fault) is charged inside. *)

type config = {
  frames : int;  (** initial cache size in frames *)
  max_frames : int;  (** capacity ceiling for dynamic resizing *)
  evict_batch : int;  (** frames reclaimed per synchronous eviction *)
  core_queue_limit : int;  (** per-core freelist cap (Section 3.2) *)
  move_batch : int;  (** freelist level-to-level move batch *)
  writeback_merge : int;  (** max pages merged into one write I/O *)
  ipi_mode : Hw.Ipi.send_mode;  (** how shootdown IPIs are sent *)
  readahead : int;  (** pages prefetched after a missing page *)
  wb_protect : bool;
      (** write-protect PTEs after write-back (default true).  [false] is
          a {e deliberately broken} variant kept for the crash-consistency
          checker: stores after an msync no longer re-dirty their pages,
          so later msyncs silently miss them — [aquila_cli faultcheck]
          must catch the resulting durability violation. *)
  policy : Policy.kind;
      (** replacement policy (default {!Policy.Clock}); see {!Policy} for
          the five implementations and their cycle costs *)
}

val default_config : frames:int -> config
(** Paper-flavoured defaults scaled to the simulation (see DESIGN.md §2):
    eviction batch = frames/64 (min 16), core queues 512, move batch 256,
    merge 64, vmexit-send IPIs, no readahead, write-protect on, CLOCK
    replacement. *)

type t

val create :
  costs:Hw.Costs.t ->
  machine:Hw.Machine.t ->
  page_table:Hw.Page_table.t ->
  config ->
  t

val config : t -> config
val frames_total : t -> int
val free_frames : t -> int

val register_file :
  t -> file_id:int -> access:Sdevice.Access.t -> translate:(int -> int option) -> unit
(** [register_file t ~file_id ~access ~translate] teaches the cache how to
    reach file [file_id]'s pages: [translate] maps a file page to a device
    page ([None] past end-of-file) and [access] moves the data. *)

val set_shoot_cores : t -> int list -> unit
(** Cores running threads of this process — the TLB shootdown targets. *)

val fault :
  t -> ?readahead:int -> core:int -> key:Pagekey.t -> vpn:int -> write:bool -> unit -> unit
(** [fault t ~core ~key ~vpn ~write ()] services a page fault for virtual
    page [vpn] backed by [key]: looks up the cache, allocates/evicts/reads
    as needed, installs the PTE (read-only on read faults, for dirty
    tracking), and marks dirty pages.  [readahead] overrides the
    configured window (madvise-driven policy).  Must run inside a fiber;
    charges
    all software costs with per-label attribution ("index", "alloc",
    "evict", "tlb", "map", "writeback" plus the I/O labels).

    Failure semantics under an active {!Fault} plan: an unrecoverable
    device read (after the access layer's retries) raises {!Fault.Sigbus}
    — mirroring the SIGBUS a real mmap delivers on a media error — after
    releasing the frame and waking piggybacked faulters.  A write fault
    on a cache degraded to read-only (see {!degraded}) raises
    {!Fault.Read_only}. *)

val pfn_data : t -> int -> Bytes.t
(** [pfn_data t pfn] is the data of cache frame [pfn] (the data plane:
    loads/stores hit this after translation). *)

val forget_mapping : t -> pfn:int -> unit
(** [forget_mapping t ~pfn] clears the frame's reverse mapping after the
    caller tore down the PTE itself (munmap of a region whose pages stay
    cached). *)

val key_of_pfn : t -> int -> Pagekey.t option
(** The (file, page) currently held by a frame, if any. *)

val is_resident : t -> key:Pagekey.t -> bool

val msync : t -> core:int -> ?file:int -> unit -> unit
(** [msync t ~core ()] writes back all dirty pages (optionally one file's)
    in ascending offset order with merged I/Os, write-protects their PTEs
    again (so future writes re-mark them dirty), and issues one batched
    shootdown.  Charges its costs; must run inside a fiber.

    A clean cache (empty dirty set) returns immediately without draining,
    protecting or issuing any device write.  If a write-back still fails
    after retries, the failed pages {e stay dirty and resident} and
    {!Fault.Io_error} is raised — the msync must not be taken as an
    acknowledgement (real msync returns EIO). *)

val spawn_writeback_daemon :
  t -> eng:Sim.Engine.t -> ?hi:int -> ?lo:int -> ?core:int -> unit -> unit
(** [spawn_writeback_daemon t ~eng ()] starts a background cleaner fiber:
    when the dirty-page count exceeds [hi] (default 256) it writes pages
    back — ascending offset, merged — until it falls to [lo] (default 64).
    This is the lazy write-back strategy the paper contrasts with Linux's
    aggressive flusher (Section 7.2); with it, foreground evictions mostly
    find clean victims.  Raises [Invalid_argument] if already running. *)

val stop_writeback_daemon : t -> unit
(** Stops the daemon after its current round (idempotent). *)

val drop_file : t -> core:int -> file_id:int -> unit
(** [drop_file t ~core ~file_id] removes every cached page of the file
    (munmap of the last mapping): write-back dirty pages, unmap, free.
    Charges its costs; must run inside a fiber. *)

val crash : t -> unit
(** Failure injection: simulate power loss — drop every cached frame
    (including dirty ones) and all translations without write-back.  Only
    data that reached the devices (via {!msync} or write-back) survives. *)

val grow : t -> frames:int -> int
(** [grow t ~frames] adds up to [frames] frames (bounded by [max_frames]);
    returns how many were added. *)

val shrink : t -> frames:int -> int
(** [shrink t ~frames] retires up to [frames] frames, evicting if needed.
    Must run inside a fiber (eviction may write back).  Returns how many
    were retired. *)

(** {1 Statistics} *)

val fault_hits : t -> int
(** Faults satisfied by a page already in the cache. *)

val misses : t -> int
val evictions : t -> int
val writeback_ios : t -> int
val writeback_pages : t -> int
val read_ios : t -> int
val read_pages : t -> int
val inflight_waits : t -> int
val dirty_pages : t -> int

val wb_errors : t -> int
(** Pages whose write-back failed after retries (each kept dirty). *)

val sigbus_count : t -> int
(** Unrecoverable read errors delivered as {!Fault.Sigbus}. *)

val degraded : t -> bool
(** [true] once an error storm ({!wb_errors} on consecutive rounds)
    switched the cache to read-only: write faults raise
    {!Fault.Read_only} while reads keep being served, and evictions skip
    dirty victims (their write-back is known to be failing; dropping them
    would lose data).  {!crash} (a restart) resets it. *)

val policy_name : t -> string
(** The configured replacement policy's name ("clock", "fifo", ...). *)
