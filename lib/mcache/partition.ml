(* Shard-owned partitioning of the DRAM cache.

   A partition splits one logical cache into [homes] independent arenas
   — each a complete Dram_cache with its own frames, freelist, dirty set
   and policy instance — and routes every page to its home arena by a
   static ownership map (page mod homes).  Because the map is a pure
   function of the page, a request stream split across arenas is
   recombined exactly by summing per-arena counters in ascending home
   order: the aggregate is a deterministic function of the per-arena
   schedules, independent of which physical shard (or domain) executes
   each arena.

   This module owns routing and aggregation only.  Transport between
   shards — the cross-shard page-ownership protocol, charged at
   [Hw.Costs.min_cross_shard_latency] per hop — lives in
   [Experiments.Shard_stack]; a partition never locks, because each
   arena is touched exclusively by its owning shard's server fiber. *)

type t = { arenas : Dram_cache.t array }

let create ~arenas () =
  if Array.length arenas = 0 then invalid_arg "Partition.create: no arenas";
  { arenas }

let homes t = Array.length t.arenas

let home_of t ~page =
  let n = Array.length t.arenas in
  if n = 1 then 0
  else begin
    let h = page mod n in
    if h < 0 then h + n else h
  end

let arena t h =
  if h < 0 || h >= Array.length t.arenas then
    invalid_arg (Printf.sprintf "Partition.arena: home %d outside [0, %d)" h (Array.length t.arenas));
  t.arenas.(h)

let arena_for t ~page = t.arenas.(home_of t ~page)

let fault t ?readahead ~core ~key ~vpn ~write () =
  Dram_cache.fault
    (arena_for t ~page:(Pagekey.page_of key))
    ?readahead ~core ~key ~vpn ~write ()

let msync t ~core ?file () =
  Array.iter (fun a -> Dram_cache.msync a ~core ?file ()) t.arenas

let crash t = Array.iter Dram_cache.crash t.arenas

type counters = {
  fault_hits : int;
  misses : int;
  evictions : int;
  writeback_ios : int;
  writeback_pages : int;
  read_ios : int;
  read_pages : int;
  inflight_waits : int;
  wb_errors : int;
  sigbus : int;
}

(* Ascending home order: the sum is the same whatever order arenas ran
   in, but a fixed fold order keeps even overflow/wraparound corners
   bit-identical across shard counts. *)
let counters t =
  Array.fold_left
    (fun c a ->
      {
        fault_hits = c.fault_hits + Dram_cache.fault_hits a;
        misses = c.misses + Dram_cache.misses a;
        evictions = c.evictions + Dram_cache.evictions a;
        writeback_ios = c.writeback_ios + Dram_cache.writeback_ios a;
        writeback_pages = c.writeback_pages + Dram_cache.writeback_pages a;
        read_ios = c.read_ios + Dram_cache.read_ios a;
        read_pages = c.read_pages + Dram_cache.read_pages a;
        inflight_waits = c.inflight_waits + Dram_cache.inflight_waits a;
        wb_errors = c.wb_errors + Dram_cache.wb_errors a;
        sigbus = c.sigbus + Dram_cache.sigbus_count a;
      })
    {
      fault_hits = 0;
      misses = 0;
      evictions = 0;
      writeback_ios = 0;
      writeback_pages = 0;
      read_ios = 0;
      read_pages = 0;
      inflight_waits = 0;
      wb_errors = 0;
      sigbus = 0;
    }
    t.arenas

let counters_to_string c =
  Printf.sprintf
    "hits=%d misses=%d evictions=%d wb_ios=%d wb_pages=%d read_ios=%d \
     read_pages=%d inflight=%d wb_errors=%d sigbus=%d"
    c.fault_hits c.misses c.evictions c.writeback_ios c.writeback_pages
    c.read_ios c.read_pages c.inflight_waits c.wb_errors c.sigbus
