type kind = Clock | Fifo | Lru | Two_q | Random of int

let default_random_seed = 0x5eed

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "clock" -> Ok Clock
  | "fifo" -> Ok Fifo
  | "lru" -> Ok Lru
  | "2q" | "twoq" | "two_q" -> Ok Two_q
  | "random" -> Ok (Random default_random_seed)
  | s
    when String.length s > String.length "random:"
         && String.sub s 0 (String.length "random:") = "random:" -> (
      let tail =
        String.sub s (String.length "random:")
          (String.length s - String.length "random:")
      in
      match int_of_string_opt tail with
      | Some seed -> Ok (Random seed)
      | None -> Error (Printf.sprintf "bad random-policy seed %S" tail))
  | other ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected clock|fifo|lru|2q|random[:SEED])" other)

let kind_to_string = function
  | Clock -> "clock"
  | Fifo -> "fifo"
  | Lru -> "lru"
  | Two_q -> "2q"
  | Random seed ->
      if seed = default_random_seed then "random"
      else Printf.sprintf "random:%d" seed

let all_kinds = [ Clock; Fifo; Lru; Two_q; Random default_random_seed ]

(* Intrusive doubly-linked list over frame numbers: O(1) push/remove with
   no allocation, the same trick the paper's per-core structures use.
   Head is the eviction end, tail the recency end. *)
module Dll = struct
  type t = {
    next : int array;
    prev : int array;
    member : Bytes.t;
    mutable head : int;
    mutable tail : int;
    mutable len : int;
  }

  let create ~nframes =
    {
      next = Array.make nframes (-1);
      prev = Array.make nframes (-1);
      member = Bytes.make nframes '\000';
      head = -1;
      tail = -1;
      len = 0;
    }

  let mem t f = Bytes.unsafe_get t.member f <> '\000'

  let push_tail t f =
    Bytes.unsafe_set t.member f '\001';
    t.prev.(f) <- t.tail;
    t.next.(f) <- -1;
    if t.tail >= 0 then t.next.(t.tail) <- f else t.head <- f;
    t.tail <- f;
    t.len <- t.len + 1

  let push_head t f =
    Bytes.unsafe_set t.member f '\001';
    t.next.(f) <- t.head;
    t.prev.(f) <- -1;
    if t.head >= 0 then t.prev.(t.head) <- f else t.tail <- f;
    t.head <- f;
    t.len <- t.len + 1

  let remove t f =
    if mem t f then begin
      let p = t.prev.(f) and n = t.next.(f) in
      if p >= 0 then t.next.(p) <- n else t.head <- n;
      if n >= 0 then t.prev.(n) <- p else t.tail <- p;
      t.prev.(f) <- -1;
      t.next.(f) <- -1;
      Bytes.unsafe_set t.member f '\000';
      t.len <- t.len - 1
    end

  let pop_head t =
    if t.head < 0 then None
    else begin
      let f = t.head in
      remove t f;
      Some f
    end
end

(* Sampled-LRU keeps the active frames in a dense array (swap-remove) so
   drawing a uniform sample is O(1) regardless of cache occupancy. *)
type random_state = {
  rng : Sim.Rng.t;
  stamps : int array; (* 0 = never touched: prefetches lose every sample *)
  mutable stamp_clock : int;
  dense : int array;
  pos : int array; (* -1 = not resident *)
  mutable len : int;
}

let sample_k = 5

type state =
  | Sclock of Dstruct.Clock_lru.t
  | Sfifo of Dll.t
  | Slru of Dll.t
  | S2q of { a1 : Dll.t; am : Dll.t }
  | Srandom of random_state

type t = { kind : kind; costs : Hw.Costs.t; state : state }

let make costs ~nframes kind =
  let state =
    match kind with
    | Clock -> Sclock (Dstruct.Clock_lru.create ~nframes)
    | Fifo -> Sfifo (Dll.create ~nframes)
    | Lru -> Slru (Dll.create ~nframes)
    | Two_q -> S2q { a1 = Dll.create ~nframes; am = Dll.create ~nframes }
    | Random seed ->
        Srandom
          {
            rng = Sim.Rng.create seed;
            stamps = Array.make nframes 0;
            stamp_clock = 0;
            dense = Array.make nframes 0;
            pos = Array.make nframes (-1);
            len = 0;
          }
  in
  { kind; costs; state }

let kind t = t.kind
let name t = kind_to_string t.kind

let stamp r f =
  r.stamp_clock <- r.stamp_clock + 1;
  r.stamps.(f) <- r.stamp_clock

let touch t f =
  let c = t.costs in
  match t.state with
  | Sclock lru ->
      Dstruct.Clock_lru.touch lru f;
      c.Hw.Costs.lru_update
  | Sfifo _ -> 0L
  | Slru q ->
      if Dll.mem q f then begin
        Dll.remove q f;
        Dll.push_tail q f;
        Int64.mul 2L c.Hw.Costs.lru_update
      end
      else 0L
  | S2q { a1; am } ->
      if Dll.mem am f then begin
        Dll.remove am f;
        Dll.push_tail am f;
        c.Hw.Costs.lru_update
      end
      else if Dll.mem a1 f then begin
        (* re-reference while on probation: promote to the protected
           main queue — the 2Q rule that defeats one-shot scans *)
        Dll.remove a1 f;
        Dll.push_tail am f;
        Int64.mul 2L c.Hw.Costs.lru_update
      end
      else 0L
  | Srandom r ->
      if r.pos.(f) >= 0 then begin
        stamp r f;
        c.Hw.Costs.lru_update
      end
      else 0L

let note_insert t f ~touched =
  match t.state with
  | Sclock lru ->
      Dstruct.Clock_lru.set_active lru f true;
      if touched then Dstruct.Clock_lru.touch lru f
  | Sfifo q -> if not (Dll.mem q f) then Dll.push_tail q f
  | Slru q ->
      if not (Dll.mem q f) then
        if touched then Dll.push_tail q f else Dll.push_head q f
  | S2q { a1; am } ->
      if not (Dll.mem a1 f || Dll.mem am f) then Dll.push_tail a1 f
  | Srandom r ->
      if r.pos.(f) < 0 then begin
        r.pos.(f) <- r.len;
        r.dense.(r.len) <- f;
        r.len <- r.len + 1;
        if touched then stamp r f else r.stamps.(f) <- 0
      end

let random_remove r f =
  let p = r.pos.(f) in
  if p >= 0 then begin
    let last = r.dense.(r.len - 1) in
    r.dense.(p) <- last;
    r.pos.(last) <- p;
    r.pos.(f) <- -1;
    r.len <- r.len - 1;
    r.stamps.(f) <- 0
  end

let note_remove t f =
  match t.state with
  | Sclock lru -> Dstruct.Clock_lru.set_active lru f false
  | Sfifo q | Slru q -> Dll.remove q f
  | S2q { a1; am } ->
      Dll.remove a1 f;
      Dll.remove am f
  | Srandom r -> random_remove r f

let retire t f =
  match t.state with
  | Sclock lru -> Dstruct.Clock_lru.retire lru f
  | _ -> note_remove t f

let is_active t f =
  match t.state with
  | Sclock lru -> Dstruct.Clock_lru.is_active lru f
  | Sfifo q | Slru q -> Dll.mem q f
  | S2q { a1; am } -> Dll.mem a1 f || Dll.mem am f
  | Srandom r -> r.pos.(f) >= 0

let active_count t =
  match t.state with
  | Sclock lru -> Dstruct.Clock_lru.active_count lru
  | Sfifo q | Slru q -> q.Dll.len
  | S2q { a1; am } -> a1.Dll.len + am.Dll.len
  | Srandom r -> r.len

let evict_candidates t n =
  let c = t.costs in
  match t.state with
  | Sclock lru -> (Dstruct.Clock_lru.evict_candidates lru n, 0L)
  | Sfifo q | Slru q ->
      let victims = ref [] and cost = ref 0L and found = ref 0 in
      let continue_ = ref true in
      while !continue_ && !found < n do
        match Dll.pop_head q with
        | None -> continue_ := false
        | Some f ->
            victims := f :: !victims;
            incr found;
            cost := Int64.add !cost c.Hw.Costs.freelist_op
      done;
      (List.rev !victims, !cost)
  | S2q { a1; am } ->
      let victims = ref [] and cost = ref 0L and found = ref 0 in
      let continue_ = ref true in
      while !continue_ && !found < n do
        (* keep the probationary queue at ~1/4 of residents: evict from
           a1 while it is above target, else from the main queue *)
        let from_a1 =
          a1.Dll.len > 0
          && (am.Dll.len = 0 || 4 * a1.Dll.len >= a1.Dll.len + am.Dll.len)
        in
        let victim =
          if from_a1 then Dll.pop_head a1
          else
            match Dll.pop_head am with
            | Some f -> Some f
            | None -> Dll.pop_head a1
        in
        match victim with
        | None -> continue_ := false
        | Some f ->
            victims := f :: !victims;
            incr found;
            cost := Int64.add !cost c.Hw.Costs.freelist_op
      done;
      (List.rev !victims, !cost)
  | Srandom r ->
      let victims = ref [] and cost = ref 0L and found = ref 0 in
      while !found < n && r.len > 0 do
        let best = ref r.dense.(Sim.Rng.int r.rng r.len) in
        cost := Int64.add !cost c.Hw.Costs.lru_update;
        for _ = 2 to sample_k do
          let cand = r.dense.(Sim.Rng.int r.rng r.len) in
          cost := Int64.add !cost c.Hw.Costs.lru_update;
          if r.stamps.(cand) < r.stamps.(!best) then best := cand
        done;
        let f = !best in
        random_remove r f;
        victims := f :: !victims;
        incr found
      done;
      (List.rev !victims, !cost)
