module Itree = Dstruct.Rbtree.Make (Int)

type t = { costs : Hw.Costs.t; trees : int Itree.t array; mutable count : int }

let create costs ~cores =
  if cores <= 0 then invalid_arg "Dirty_set.create";
  { costs; trees = Array.init cores (fun _ -> Itree.create ()); count = 0 }

let op_cost t tree =
  Int64.mul t.costs.Hw.Costs.rb_op (Int64.of_int (max 1 (Itree.depth_estimate tree)))

let add t ~core ~key ~frame =
  let tree = t.trees.(core) in
  let cost = op_cost t tree in
  (match Itree.insert tree key frame with
  | None -> t.count <- t.count + 1
  | Some _ -> ());
  cost

let remove t ~core ~key =
  let tree = t.trees.(core) in
  let cost = op_cost t tree in
  (match Itree.remove tree key with
  | Some _ -> t.count <- t.count - 1
  | None -> ());
  cost

let total t = t.count

let drain_sorted t ?file ?limit () =
  let keep key = match file with None -> true | Some f -> Pagekey.file_of key = f in
  let cost = ref 0L in
  let all = ref [] in
  Array.iter
    (fun tree ->
      let taken = ref [] in
      Itree.iter (fun k f -> if keep k then taken := (k, f) :: !taken) tree;
      List.iter
        (fun (k, _) ->
          cost := Int64.add !cost (op_cost t tree);
          ignore (Itree.remove tree k);
          t.count <- t.count - 1)
        !taken;
      all := !taken @ !all)
    t.trees;
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) !all in
  let sorted =
    match limit with
    | None -> sorted
    | Some n ->
        (* keep the n smallest; put the rest back *)
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | x :: rest when i < n -> split (i + 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let take, back = split 0 [] sorted in
        List.iter
          (fun (k, f) ->
            (* return overflow entries to core 0's tree *)
            ignore (Itree.insert t.trees.(0) k f);
            t.count <- t.count + 1)
          back;
        take
  in
  (sorted, !cost)

let mem t ~key ~core = Option.is_some (Itree.find t.trees.(core) key)
