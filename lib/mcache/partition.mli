(** Shard-owned partitioning of {!Dram_cache}.

    A partition splits one logical cache into [homes] independent arenas
    and routes each page to its home by a static ownership map
    ([page mod homes]).  Each arena is a complete {!Dram_cache} — its
    frames, freelist, dirty set and replacement-policy instance belong
    to the shard whose cores fault on its pages — so arenas never share
    mutable state and need no locks: one server fiber per home performs
    every access (see [Experiments.Shard_stack] for the cross-shard
    transport, charged at [Hw.Costs.min_cross_shard_latency]).

    The aggregate {!counters} are a deterministic pure function of the
    per-arena request streams: identical at any physical shard count and
    in free-running vs deterministic cluster mode, which is exactly the
    property the QCheck suite and the CI terminal-stats gate hold the
    partitioned experiments to.  DESIGN.md §10. *)

type t

val create : arenas:Dram_cache.t array -> unit -> t
(** [create ~arenas ()] wraps per-home caches; home [h] owns pages
    [p] with [p mod homes = h].  Raises [Invalid_argument] on an empty
    array.  The caller builds each arena on its owning shard so metric
    cells land on the executing domain. *)

val homes : t -> int
val home_of : t -> page:int -> int
val arena : t -> int -> Dram_cache.t
val arena_for : t -> page:int -> Dram_cache.t

val fault :
  t -> ?readahead:int -> core:int -> key:Pagekey.t -> vpn:int -> write:bool -> unit -> unit
(** Route a fault to the owning arena ({!Dram_cache.fault}).  Must run
    inside a fiber on the arena's owning shard. *)

val msync : t -> core:int -> ?file:int -> unit -> unit
(** Write back every arena's dirty pages, in ascending home order. *)

val crash : t -> unit
(** Power-loss injection across all arenas ({!Dram_cache.crash}). *)

(** {1 Aggregated statistics} *)

type counters = {
  fault_hits : int;
  misses : int;
  evictions : int;
  writeback_ios : int;
  writeback_pages : int;
  read_ios : int;
  read_pages : int;
  inflight_waits : int;
  wb_errors : int;
  sigbus : int;
}

val counters : t -> counters
(** Sum over arenas in ascending home order — deterministic at any
    shard count. *)

val counters_to_string : counters -> string
(** One-line rendering used by terminal-stats parity gates. *)
