let psz = Hw.Defs.page_size

type config = {
  frames : int;
  max_frames : int;
  evict_batch : int;
  core_queue_limit : int;
  move_batch : int;
  writeback_merge : int;
  ipi_mode : Hw.Ipi.send_mode;
  readahead : int;
  wb_protect : bool;
  policy : Policy.kind;
}

let default_config ~frames =
  {
    frames;
    max_frames = frames;
    (* the paper evicts 512-page batches from multi-GB caches; keep the
       batch a small fraction of the (scaled) cache so victim quality
       holds *)
    evict_batch = max 16 (frames / 64);
    core_queue_limit = 512;
    move_batch = 256;
    writeback_merge = 64;
    ipi_mode = Hw.Ipi.Vmexit_send;
    readahead = 0;
    wb_protect = true;
    policy = Policy.Clock;
  }

type frame = {
  fno : int;
  data : Bytes.t;
  mutable key : int; (* -1 when free *)
  mutable vpn : int; (* -1 when unmapped *)
  mutable dirty : bool;
  mutable dirty_core : int;
  mutable retired : bool;
}

type backend = { access : Sdevice.Access.t; translate : int -> int option }

type t = {
  costs : Hw.Costs.t;
  machine : Hw.Machine.t;
  pt : Hw.Page_table.t;
  cfg : config;
  arr : frame array;
  index : frame Dstruct.Lockfree_hash.t;
  fl : Freelist.t;
  pol : Policy.t;
  evict_label : string;
  dirty : Dirty_set.t;
  files : (int, backend) Hashtbl.t;
  inflight : (int, unit Sim.Sync.Ivar.t) Hashtbl.t;
  mutable evicting : bool;
  evict_waiters : Sim.Sync.Waitq.t;
  wb_waitq : Sim.Sync.Waitq.t;
  mutable wb_daemon : (int * int) option; (* (hi, lo) watermarks when active *)
  mutable shoot_cores : int list;
  mutable seeded : int;
  mutable retired_frames : int list;
  mutable retired_count : int; (* List.length retired_frames, maintained *)
  mutable s_fault_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_wb_ios : int;
  mutable s_wb_pages : int;
  mutable s_read_ios : int;
  mutable s_read_pages : int;
  mutable s_inflight_waits : int;
  mutable s_wb_errors : int;
  mutable s_sigbus : int;
  mutable wb_fail_streak : int; (* consecutive write-back rounds with failures *)
  mutable read_only : bool; (* degraded: error storm made write-back unsafe *)
  (* always-on aqmetrics cells, one series per replacement policy *)
  m_hits : Metrics.Registry.cell;
  m_misses : Metrics.Registry.cell;
  m_evictions : Metrics.Registry.cell;
  m_wb_ios : Metrics.Registry.cell;
  m_wb_pages : Metrics.Registry.cell;
  m_wb_errors : Metrics.Registry.cell;
  m_sigbus : Metrics.Registry.cell;
  m_degraded : Metrics.Registry.cell;
}

let create ~costs ~machine ~page_table cfg =
  if cfg.frames <= 0 || cfg.max_frames < cfg.frames then
    invalid_arg "Dram_cache.create: bad frame counts";
  let topo = Hw.Machine.topology machine in
  let t =
    {
      costs;
      machine;
      pt = page_table;
      cfg;
      arr =
        Array.init cfg.max_frames (fun i ->
            {
              fno = i;
              data = Bytes.create psz;
              key = -1;
              vpn = -1;
              dirty = false;
              dirty_core = 0;
              retired = false;
            });
      index = Dstruct.Lockfree_hash.create ();
      fl =
        Freelist.create costs topo ~core_queue_limit:cfg.core_queue_limit
          ~move_batch:cfg.move_batch ();
      pol = Policy.make costs ~nframes:cfg.max_frames cfg.policy;
      (* the default policy keeps the historical span name so existing
         trace consumers (and byte-identity) are untouched *)
      evict_label =
        (match cfg.policy with
        | Policy.Clock -> "evict_batch"
        | k -> "evict_batch:" ^ Policy.kind_to_string k);
      dirty = Dirty_set.create costs ~cores:topo.Hw.Topology.cores;
      files = Hashtbl.create 16;
      inflight = Hashtbl.create 64;
      evicting = false;
      evict_waiters = Sim.Sync.Waitq.create ();
      wb_waitq = Sim.Sync.Waitq.create ();
      wb_daemon = None;
      shoot_cores = [];
      seeded = 0;
      retired_frames = [];
      retired_count = 0;
      s_fault_hits = 0;
      s_misses = 0;
      s_evictions = 0;
      s_wb_ios = 0;
      s_wb_pages = 0;
      s_read_ios = 0;
      s_read_pages = 0;
      s_inflight_waits = 0;
      s_wb_errors = 0;
      s_sigbus = 0;
      wb_fail_streak = 0;
      read_only = false;
      m_hits =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"DRAM cache fault hits" ~labels
           "mcache_hits");
      m_misses =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"DRAM cache misses" ~labels
           "mcache_misses");
      m_evictions =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"frames recycled by eviction" ~labels
           "mcache_evictions");
      m_wb_ios =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"write-back I/Os issued" ~labels
           "mcache_wb_ios");
      m_wb_pages =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"dirty pages written back" ~labels
           "mcache_wb_pages");
      m_wb_errors =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"write-back I/O failures" ~labels
           "mcache_wb_errors");
      m_sigbus =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"faults surfaced as SIGBUS" ~labels
           "mcache_sigbus");
      m_degraded =
        (let labels = [ ("policy", Policy.kind_to_string cfg.policy) ] in
         Metrics.Registry.counter ~help:"transitions into read-only degraded mode"
           ~labels "mcache_degraded_transitions");
    }
  in
  let nodes = topo.Hw.Topology.nodes in
  for i = 0 to cfg.frames - 1 do
    Freelist.add_frame t.fl ~node:(i mod nodes) i
  done;
  t.seeded <- cfg.frames;
  t

let config t = t.cfg
let frames_total t = t.seeded - t.retired_count
let free_frames t = Freelist.free_count t.fl

let register_file t ~file_id ~access ~translate =
  Hashtbl.replace t.files file_id { access; translate }

let backend_of t file_id =
  match Hashtbl.find_opt t.files file_id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Dram_cache: unregistered file %d" file_id)

let set_shoot_cores t cores = t.shoot_cores <- cores

(* Account the local invalidations and the batched shootdown for [vpns];
   mutates every target TLB immediately (pure — no suspension). *)
let invalidate_mappings t ~core ~vpns buf =
  match vpns with
  | [] -> ()
  | _ :: _ ->
      let c = t.costs in
      let own = (Hw.Machine.core t.machine core).Hw.Machine.tlb in
      let local =
        if List.length vpns > 33 then Hw.Tlb.flush own c
        else
          List.fold_left
            (fun acc vpn -> Int64.add acc (Hw.Tlb.invalidate_local own c ~vpn))
            0L vpns
      in
      Sim.Costbuf.add buf "tlb" local;
      Sim.Costbuf.add buf "tlb"
        (Hw.Ipi.shootdown t.machine c ~mode:t.cfg.ipi_mode ~src:core
           ~targets:t.shoot_cores ~vpns)

(* Write [frames] back to their devices in ascending key order, merging
   runs of device-contiguous pages into single I/Os.  Suspends.  Returns
   the frames whose run still failed after the access layer's retries,
   with the final error — callers must keep those pages dirty (graceful
   degradation: a failed write-back is never data loss). *)
let writeback_frames t frames buf =
  let c = t.costs in
  let wb0 = Sim.Probe.span_start () in
  let items = List.sort (fun (a : frame) b -> Int.compare a.key b.key) frames in
  let flush_run file dev_start run =
    match run with
    | [] -> []
    | _ :: _ -> (
        let frames_in_order = List.rev run in
        let count = List.length frames_in_order in
        let scratch = Bytes.create (count * psz) in
        List.iteri
          (fun i (fr : frame) -> Bytes.blit fr.data 0 scratch (i * psz) psz)
          frames_in_order;
        let backend = backend_of t file in
        match
          Sdevice.Access.write_pages_result backend.access ~page:dev_start ~count
            ~src:scratch
        with
        | Ok () ->
            t.s_wb_ios <- t.s_wb_ios + 1;
            t.s_wb_pages <- t.s_wb_pages + count;
            Metrics.Registry.incr t.m_wb_ios;
            Metrics.Registry.add t.m_wb_pages count;
            []
        | Error e ->
            if Trace.on () then Sim.Probe.instant ~cat:"fault" "wb_error";
            List.map (fun fr -> (fr, e)) frames_in_order)
  in
  let state = ref None in
  let runs = ref [] in
  List.iter
    (fun (fr : frame) ->
      let file = Pagekey.file_of fr.key and page = Pagekey.page_of fr.key in
      let backend = backend_of t file in
      match backend.translate page with
      | None -> ()
      | Some dev ->
          Sim.Costbuf.add buf "writeback" c.radix_lookup;
          (match !state with
          | Some (f, start, next, run)
            when f = file && dev = next && next - start < t.cfg.writeback_merge ->
              state := Some (f, start, next + 1, fr :: run)
          | Some prev ->
              runs := prev :: !runs;
              state := Some (file, dev, dev + 1, [ fr ])
          | None -> state := Some (file, dev, dev + 1, [ fr ])))
    items;
  (match !state with Some last -> runs := last :: !runs | None -> ());
  (* Issue the I/Os after run computation (the blits snapshot the data). *)
  let failed =
    List.concat_map
      (fun (f, start, _next, run) -> flush_run f start run)
      (List.rev !runs)
  in
  if frames <> [] then
    Sim.Probe.span_since ~cat:"mcache"
      ~value:(Int64.of_int (List.length frames))
      ~t0:wb0 "writeback";
  failed

(* An error storm — this many consecutive write-back rounds with
   failures — degrades the cache to read-only: refusing new writes beats
   acknowledging stores that can no longer be made durable. *)
let degrade_streak_limit = 8

let note_wb_outcome t ~failed =
  if failed > 0 then begin
    t.s_wb_errors <- t.s_wb_errors + failed;
    Metrics.Registry.add t.m_wb_errors failed;
    t.wb_fail_streak <- t.wb_fail_streak + 1;
    if (not t.read_only) && t.wb_fail_streak >= degrade_streak_limit then begin
      t.read_only <- true;
      Metrics.Registry.incr t.m_degraded;
      if Trace.on () then Sim.Probe.instant ~cat:"fault" "cache_readonly"
    end
  end
  else t.wb_fail_streak <- 0

(* Put write-back casualties back on the books: still resident, still
   dirty (unless a concurrent store already re-dirtied them during the
   suspension). *)
let requeue_failed_dirty t buf failed =
  List.iter
    (fun ((fr : frame), _e) ->
      if not fr.dirty then begin
        fr.dirty <- true;
        Sim.Costbuf.add buf "writeback"
          (Dirty_set.add t.dirty ~core:fr.dirty_core ~key:fr.key ~frame:fr.fno)
      end)
    failed

(* Synchronously evict a batch of frames (Section 3.2).  The index
   removal, in-flight guards, PTE teardown and shootdown all happen
   before the first suspension point, so concurrent faults observe a
   consistent cache. *)
let evict_batch_now t ~core buf =
  let victims, pcost = Policy.evict_candidates t.pol t.cfg.evict_batch in
  if Int64.compare pcost 0L > 0 then Sim.Costbuf.add buf "evict" pcost;
  let frames = List.map (fun fno -> t.arr.(fno)) victims in
  (* Read-only degradation means write-back is known to be failing:
     evicting a dirty frame would only bounce it through a doomed I/O and
     back.  Skip dirty victims — they stay resident (and recently used,
     so the policy does not immediately re-offer them) and only clean
     frames are recycled. *)
  let frames =
    if not t.read_only then frames
    else begin
      let dirty, clean = List.partition (fun (fr : frame) -> fr.dirty) frames in
      List.iter
        (fun (fr : frame) -> Policy.note_insert t.pol fr.fno ~touched:true)
        dirty;
      clean
    end
  in
  match frames with
  | [] -> false
  | _ :: _ ->
      let ev0 = Sim.Probe.span_start () in
      let c = t.costs in
      let dirty_frames = List.filter (fun (fr : frame) -> fr.dirty) frames in
      (* 1. Drop index entries; guard dirty victims with in-flight markers
         so concurrent faults wait for the write-back. *)
      List.iter
        (fun (fr : frame) ->
          ignore (Dstruct.Lockfree_hash.remove t.index fr.key);
          Sim.Costbuf.add buf "evict" c.hash_update)
        frames;
      let guards =
        List.map
          (fun (fr : frame) ->
            let iv = Sim.Sync.Ivar.create () in
            Hashtbl.replace t.inflight fr.key iv;
            (fr, iv))
          dirty_frames
      in
      List.iter
        (fun (fr : frame) ->
          Sim.Costbuf.add buf "evict"
            (Dirty_set.remove t.dirty ~core:fr.dirty_core ~key:fr.key);
          fr.dirty <- false)
        dirty_frames;
      (* 2. Tear down translations and invalidate TLBs (batched). *)
      let vpns =
        List.filter_map
          (fun (fr : frame) ->
            if fr.vpn >= 0 then begin
              ignore (Hw.Page_table.unmap t.pt ~vpn:fr.vpn);
              Sim.Costbuf.add buf "evict" c.pte_update;
              let v = fr.vpn in
              fr.vpn <- -1;
              Some v
            end
            else None)
          frames
      in
      invalidate_mappings t ~core ~vpns buf;
      (* 3. Merged, offset-sorted write-back (suspends). *)
      let failed = writeback_frames t dirty_frames buf in
      if dirty_frames <> [] then
        note_wb_outcome t ~failed:(List.length failed);
      (* Failed victims survive the eviction: back into the index (before
         the guards release any waiting faulters) and the dirty set, LRU
         active so they are not the next victims again. *)
      requeue_failed_dirty t buf failed;
      List.iter
        (fun ((fr : frame), _e) ->
          ignore (Dstruct.Lockfree_hash.insert t.index fr.key fr);
          Sim.Costbuf.add buf "evict" c.hash_update;
          Policy.note_insert t.pol fr.fno ~touched:true)
        failed;
      List.iter
        (fun ((fr : frame), iv) ->
          Hashtbl.remove t.inflight fr.key;
          Sim.Sync.Ivar.fill iv ())
        guards;
      (* 4. Recycle everything that actually made it out. *)
      let failed_frames = List.map fst failed in
      let recycled = ref 0 in
      List.iter
        (fun (fr : frame) ->
          if not (List.memq fr failed_frames) then begin
            fr.key <- -1;
            incr recycled;
            Sim.Costbuf.add buf "alloc" (Freelist.free t.fl ~core fr.fno)
          end)
        frames;
      t.s_evictions <- t.s_evictions + !recycled;
      Metrics.Registry.add t.m_evictions !recycled;
      if Trace.on () then begin
        Sim.Probe.span_since ~cat:"mcache"
          ~value:(Int64.of_int (List.length frames))
          ~t0:ev0 t.evict_label;
        Sim.Probe.counter ~cat:"mcache" "dirty_pages"
          (Int64.of_int (Dirty_set.total t.dirty))
      end;
      !recycled > 0

(* Concurrent faulting threads coalesce on one evictor: a stampede of
   per-thread batch evictions would wipe the whole cache under pressure. *)
let rec alloc_frame t ~core buf attempts =
  if attempts > 1000 then failwith "Dram_cache: cannot reclaim frames (thrash)";
  let f, acost = Freelist.alloc t.fl ~core in
  Sim.Costbuf.add buf "alloc" acost;
  match f with
  | Some fno -> t.arr.(fno)
  | None ->
      if t.evicting then Sim.Sync.Waitq.wait t.evict_waiters
      else begin
        t.evicting <- true;
        let progressed =
          match evict_batch_now t ~core buf with
          | ok -> ok
          | exception e ->
              t.evicting <- false;
              ignore (Sim.Sync.Waitq.broadcast t.evict_waiters);
              raise e
        in
        t.evicting <- false;
        ignore (Sim.Sync.Waitq.broadcast t.evict_waiters);
        if not progressed then Sim.Engine.idle_wait 2000L
      end;
      alloc_frame t ~core buf (attempts + 1)

(* Fetch [key]'s page into [frame], plus configured readahead, issuing the
   largest device-contiguous read possible.  Suspends for the I/O. *)
let read_in t ~core ~key ~readahead (frame : frame) buf =
  let c = t.costs in
  let file = Pagekey.file_of key and page = Pagekey.page_of key in
  let backend = backend_of t file in
  let dev =
    match backend.translate page with
    | Some d -> d
    | None ->
        invalid_arg
          (Printf.sprintf "Dram_cache: fault beyond end of file %d page %d" file
             page)
  in
  Sim.Costbuf.add buf "map" c.radix_lookup;
  let extra = ref [] in
  let n = ref 1 in
  let continue_ = ref (readahead > 0) in
  while !continue_ && !n <= readahead do
    let p = page + !n in
    let k = Pagekey.make ~file ~page:p in
    match backend.translate p with
    | Some d
      when d = dev + !n
           && (not (Dstruct.Lockfree_hash.mem t.index k))
           && not (Hashtbl.mem t.inflight k) -> (
        let fopt, acost = Freelist.alloc t.fl ~core in
        Sim.Costbuf.add buf "alloc" acost;
        match fopt with
        | Some fno ->
            extra := (k, t.arr.(fno)) :: !extra;
            incr n
        | None -> continue_ := false)
    | _ -> continue_ := false
  done;
  let extra = List.rev !extra in
  let count = 1 + List.length extra in
  let guards =
    List.map
      (fun (k, fr) ->
        let iv = Sim.Sync.Ivar.create () in
        Hashtbl.replace t.inflight k iv;
        (k, fr, iv))
      extra
  in
  let scratch = if count = 1 then frame.data else Bytes.create (count * psz) in
  (try Sdevice.Access.read_pages backend.access ~page:dev ~count ~dst:scratch
   with e ->
     (* Unrecoverable read: release the readahead frames and their
        guards (waiters re-check the index, miss, and retry — getting
        their own verdict) before the error unwinds to the faulter. *)
     List.iter
       (fun (k, (fr : frame), iv) ->
         Hashtbl.remove t.inflight k;
         fr.key <- -1;
         Sim.Costbuf.add buf "alloc" (Freelist.free t.fl ~core fr.fno);
         Sim.Sync.Ivar.fill iv ())
       guards;
     raise e);
  t.s_read_ios <- t.s_read_ios + 1;
  t.s_read_pages <- t.s_read_pages + count;
  if count > 1 then Bytes.blit scratch 0 frame.data 0 psz;
  frame.key <- key;
  frame.dirty <- false;
  ignore (Dstruct.Lockfree_hash.insert t.index key frame);
  Sim.Costbuf.add buf "index" c.hash_update;
  Policy.note_insert t.pol frame.fno ~touched:true;
  List.iteri
    (fun i (k, (fr : frame), iv) ->
      Bytes.blit scratch ((i + 1) * psz) fr.data 0 psz;
      fr.key <- k;
      fr.dirty <- false;
      fr.vpn <- -1;
      ignore (Dstruct.Lockfree_hash.insert t.index k fr);
      Sim.Costbuf.add buf "index" c.hash_update;
      Policy.note_insert t.pol fr.fno ~touched:false;
      Hashtbl.remove t.inflight k;
      Sim.Sync.Ivar.fill iv ())
    guards

let fault t ?readahead ~core ~key ~vpn ~write () =
  let c = t.costs in
  if write && t.read_only then
    raise (Fault.Read_only "dram-cache: write-back failing, cache is read-only");
  let readahead = match readahead with Some r -> r | None -> t.cfg.readahead in
  let buf = Sim.Costbuf.create () in
  Sim.Costbuf.add buf "index" c.hash_lookup;
  let rec get_frame () =
    match Dstruct.Lockfree_hash.find t.index key with
    | Some frame ->
        t.s_fault_hits <- t.s_fault_hits + 1;
        Metrics.Registry.incr t.m_hits;
        if Trace.on () then Sim.Probe.instant ~cat:"mcache" "hit";
        frame
    | None -> (
        match Hashtbl.find_opt t.inflight key with
        | Some iv ->
            t.s_inflight_waits <- t.s_inflight_waits + 1;
            Sim.Sync.Ivar.read iv;
            Sim.Costbuf.add buf "index" c.hash_lookup;
            get_frame ()
        | None -> (
            let iv = Sim.Sync.Ivar.create () in
            Hashtbl.replace t.inflight key iv;
            if Trace.on () then Sim.Probe.instant ~cat:"mcache" "miss";
            let frame = alloc_frame t ~core buf 0 in
            match read_in t ~core ~key ~readahead frame buf with
            | () ->
                Hashtbl.remove t.inflight key;
                Sim.Sync.Ivar.fill iv ();
                t.s_misses <- t.s_misses + 1;
                Metrics.Registry.incr t.m_misses;
                frame
            | exception Fault.Io_error _ ->
                (* the read is dead after retries: free the frame, wake
                   any piggybacked faulters, and deliver a SIGBUS — the
                   same contract a real mmap gives on a media error *)
                Hashtbl.remove t.inflight key;
                frame.key <- -1;
                Sim.Costbuf.add buf "alloc" (Freelist.free t.fl ~core frame.fno);
                Sim.Sync.Ivar.fill iv ();
                t.s_sigbus <- t.s_sigbus + 1;
                Metrics.Registry.incr t.m_sigbus;
                (match Fault.active () with
                | Some p -> Fault.note_sigbus p
                | None -> ());
                if Trace.on () then Sim.Probe.instant ~cat:"fault" "sigbus";
                Sim.Costbuf.charge buf;
                raise
                  (Fault.Sigbus
                     { file = Pagekey.file_of key; page = Pagekey.page_of key })))
  in
  let frame = get_frame () in
  (* Read faults map read-only so the first write faults again and marks
     the page dirty (Section 3.2). *)
  frame.vpn <- vpn;
  Hw.Page_table.map t.pt ~vpn ~pfn:frame.fno ~writable:write;
  Sim.Costbuf.add buf "map" c.pte_update;
  if write && not frame.dirty then begin
    frame.dirty <- true;
    frame.dirty_core <- core;
    Sim.Costbuf.add buf "map" (Dirty_set.add t.dirty ~core ~key ~frame:frame.fno);
    if Trace.on () then
      Sim.Probe.counter ~cat:"mcache" "dirty_pages"
        (Int64.of_int (Dirty_set.total t.dirty));
    match t.wb_daemon with
    | Some (hi, _) when Dirty_set.total t.dirty > hi ->
        ignore (Sim.Sync.Waitq.signal t.wb_waitq)
    | _ -> ()
  end;
  let pcost = Policy.touch t.pol frame.fno in
  if Int64.compare pcost 0L > 0 then Sim.Costbuf.add buf "map" pcost;
  Sim.Costbuf.charge buf

let pfn_data t pfn = t.arr.(pfn).data

let forget_mapping t ~pfn =
  let fr = t.arr.(pfn) in
  fr.vpn <- -1

let key_of_pfn t pfn =
  let fr = t.arr.(pfn) in
  if fr.key >= 0 then Some fr.key else None

let is_resident t ~key = Dstruct.Lockfree_hash.mem t.index key

(* Write back dirty pages (all, or the [limit] lowest-offset ones),
   write-protecting their PTEs so further stores re-mark them dirty.
   Returns the write-back casualties (kept dirty — no data loss). *)
let clean t ~core ?file ?limit () =
  if Dirty_set.total t.dirty = 0 then []
    (* nothing dirty: no drain, no PTE walk, no shootdown, no I/O *)
  else begin
    let c = t.costs in
    let buf = Sim.Costbuf.create () in
    let entries, dcost = Dirty_set.drain_sorted t.dirty ?file ?limit () in
    Sim.Costbuf.add buf "writeback" dcost;
    let frames =
      List.filter_map
        (fun (key, fno) ->
          let fr = t.arr.(fno) in
          if fr.key = key && fr.dirty then Some fr else None)
        entries
    in
    (* [wb_protect = false] is a deliberately broken variant for the
       crash-consistency checker: skipping the write-protect means later
       stores never re-fault, never re-dirty, and the next msync silently
       misses them — faultcheck must catch exactly this. *)
    let vpns =
      if not t.cfg.wb_protect then []
      else
        List.filter_map
          (fun (fr : frame) ->
            if fr.vpn >= 0 then begin
              (try Hw.Page_table.set_writable t.pt ~vpn:fr.vpn false
               with Not_found -> ());
              Sim.Costbuf.add buf "writeback" c.pte_update;
              Some fr.vpn
            end
            else None)
          frames
    in
    invalidate_mappings t ~core ~vpns buf;
    List.iter (fun (fr : frame) -> fr.dirty <- false) frames;
    let failed = writeback_frames t frames buf in
    if frames <> [] then note_wb_outcome t ~failed:(List.length failed);
    requeue_failed_dirty t buf failed;
    Sim.Costbuf.charge buf;
    failed
  end

let msync t ~core ?file () =
  match clean t ~core ?file () with
  | [] -> ()
  | ((fr : frame), e) :: _ ->
      (* the page is still dirty and resident; the caller must not treat
         this msync as an acknowledgement *)
      let file = Pagekey.file_of fr.key in
      let dev = Sdevice.Access.name (backend_of t file).access in
      raise
        (Fault.Io_error
           { dev; write = true; page = Pagekey.page_of fr.key; error = e })

(* Background cleaner (the lazy write-back strategy of Section 7.2): when
   the dirty-page count crosses [hi], a daemon fiber drains the per-core
   dirty trees down to [lo] in sorted, merged batches, so foreground
   evictions mostly find clean victims. *)
let spawn_writeback_daemon t ~eng ?(hi = 256) ?(lo = 64) ?(core = 0) () =
  if t.wb_daemon <> None then invalid_arg "Dram_cache: daemon already running";
  t.wb_daemon <- Some (hi, lo);
  ignore
    (Sim.Engine.spawn eng ~name:"aquila-flusher" ~core ~daemon:true (fun () ->
         let continue_ = ref true in
         while !continue_ do
           Sim.Sync.Waitq.wait t.wb_waitq;
           (match t.wb_daemon with
           | None -> continue_ := false
           | Some (_, lo) ->
               let backoff = ref 0L in
               while
                 Dirty_set.total t.dirty > lo
                 && (not t.read_only)
                 && t.wb_daemon <> None
               do
                 match clean t ~core ~limit:64 () with
                 | [] -> backoff := 0L
                 | _failures ->
                     (* device trouble: back off exponentially before
                        hammering it again (degradation to read-only
                        eventually breaks the loop in a storm) *)
                     backoff :=
                       (if Int64.equal !backoff 0L then 100_000L
                        else Int64.min (Int64.mul !backoff 2L) 10_000_000L);
                     Sim.Engine.idle_wait !backoff;
                     Sim.Engine.label_add "wb_backoff" !backoff
               done)
         done))

let stop_writeback_daemon t =
  t.wb_daemon <- None;
  ignore (Sim.Sync.Waitq.signal t.wb_waitq)

let drop_file t ~core ~file_id =
  let c = t.costs in
  let buf = Sim.Costbuf.create () in
  let victims = ref [] in
  Dstruct.Lockfree_hash.iter
    (fun key (fr : frame) ->
      if Pagekey.file_of key = file_id then victims := fr :: !victims)
    t.index;
  let frames = !victims in
  let dirty_frames = List.filter (fun (fr : frame) -> fr.dirty) frames in
  List.iter
    (fun (fr : frame) ->
      ignore (Dstruct.Lockfree_hash.remove t.index fr.key);
      Sim.Costbuf.add buf "evict" c.hash_update;
      Policy.note_remove t.pol fr.fno)
    frames;
  List.iter
    (fun (fr : frame) ->
      Sim.Costbuf.add buf "evict"
        (Dirty_set.remove t.dirty ~core:fr.dirty_core ~key:fr.key);
      fr.dirty <- false)
    dirty_frames;
  let vpns =
    List.filter_map
      (fun (fr : frame) ->
        if fr.vpn >= 0 then begin
          ignore (Hw.Page_table.unmap t.pt ~vpn:fr.vpn);
          Sim.Costbuf.add buf "evict" c.pte_update;
          let v = fr.vpn in
          fr.vpn <- -1;
          Some v
        end
        else None)
      frames
  in
  invalidate_mappings t ~core ~vpns buf;
  let failed = writeback_frames t dirty_frames buf in
  if dirty_frames <> [] then note_wb_outcome t ~failed:(List.length failed);
  (* write-back casualties stay resident and dirty rather than being
     dropped with unsaved data (the next msync/daemon round retries) *)
  requeue_failed_dirty t buf failed;
  List.iter
    (fun ((fr : frame), _e) ->
      ignore (Dstruct.Lockfree_hash.insert t.index fr.key fr);
      Sim.Costbuf.add buf "evict" c.hash_update;
      Policy.note_insert t.pol fr.fno ~touched:false)
    failed;
  let failed_frames = List.map fst failed in
  List.iter
    (fun (fr : frame) ->
      if not (List.memq fr failed_frames) then begin
        fr.key <- -1;
        Sim.Costbuf.add buf "alloc" (Freelist.free t.fl ~core fr.fno)
      end)
    frames;
  Sim.Costbuf.charge buf

(* Failure injection: power loss.  Volatile state — every cached frame,
   dirty or not, and all translations — vanishes without write-back.  The
   backing devices keep only what reached them. *)
let crash t =
  Array.iter
    (fun (fr : frame) ->
      if fr.key >= 0 then begin
        if fr.vpn >= 0 then ignore (Hw.Page_table.unmap t.pt ~vpn:fr.vpn);
        ignore (Dstruct.Lockfree_hash.remove t.index fr.key);
        if fr.dirty then
          ignore (Dirty_set.remove t.dirty ~core:fr.dirty_core ~key:fr.key);
        Policy.note_remove t.pol fr.fno;
        fr.key <- -1;
        fr.vpn <- -1;
        fr.dirty <- false;
        let topo = Hw.Machine.topology t.machine in
        Freelist.add_frame t.fl ~node:(fr.fno mod topo.Hw.Topology.nodes) fr.fno
      end)
    t.arr;
  Hashtbl.reset t.inflight;
  (* the restarted instance starts with a clean bill of health *)
  t.read_only <- false;
  t.wb_fail_streak <- 0

let grow t ~frames =
  let topo = Hw.Machine.topology t.machine in
  let nodes = topo.Hw.Topology.nodes in
  let added = ref 0 in
  while
    !added < frames && (t.retired_frames <> [] || t.seeded < t.cfg.max_frames)
  do
    (match t.retired_frames with
    | fno :: rest ->
        t.retired_frames <- rest;
        t.retired_count <- t.retired_count - 1;
        t.arr.(fno).retired <- false;
        Freelist.add_frame t.fl ~node:(fno mod nodes) fno
    | [] ->
        let fno = t.seeded in
        t.seeded <- t.seeded + 1;
        Freelist.add_frame t.fl ~node:(fno mod nodes) fno);
    incr added
  done;
  !added

let shrink t ~frames =
  let retired = ref 0 in
  let attempts = ref 0 in
  while !retired < frames && !attempts < 1000 do
    incr attempts;
    match Freelist.steal_any t.fl with
    | Some fno ->
        (* a frame leaving the cache must leave the policy too: a stale
           reference bit or queue slot would let a retired frame surface
           as a victim after a later [grow] *)
        Policy.retire t.pol fno;
        t.arr.(fno).retired <- true;
        t.retired_frames <- fno :: t.retired_frames;
        t.retired_count <- t.retired_count + 1;
        incr retired
    | None ->
        let buf = Sim.Costbuf.create () in
        if not (evict_batch_now t ~core:0 buf) then attempts := 1000;
        Sim.Costbuf.charge buf
  done;
  !retired

let fault_hits t = t.s_fault_hits
let misses t = t.s_misses
let evictions t = t.s_evictions
let writeback_ios t = t.s_wb_ios
let writeback_pages t = t.s_wb_pages
let read_ios t = t.s_read_ios
let read_pages t = t.s_read_pages
let inflight_waits t = t.s_inflight_waits
let dirty_pages t = Dirty_set.total t.dirty
let wb_errors t = t.s_wb_errors
let sigbus_count t = t.s_sigbus
let degraded t = t.read_only
let policy_name t = Policy.name t.pol
