(** Storage access methods (Section 3.3 / Figure 8(c) of the paper).

    An access method bundles {e how} a page of file/device data moves
    between the DRAM cache and storage, together with all the software
    costs on that path:

    - [Dax_pmem]: AVX2 streaming [memcpy] against DAX-mapped NVM, executed
      directly in non-root ring 0.  No kernel, no queueing.
    - [Spdk_nvme]: SPDK user-space driver submitting directly to the NVMe
      device from non-root ring 0, polling for completion.
    - [Host_pmem] / [Host_nvme]: direct-I/O requests served by the host
      kernel (block layer + device), reached through a configurable entry
      cost — a syscall from ring 3, a vmcall from non-root ring 0, or free
      when the caller is already the kernel (the Linux fault path).

    Reads and writes operate on runs of contiguous device pages so callers
    can batch (readahead, sorted write-back). *)

type entry =
  | From_user  (** syscall entry from ring 3 *)
  | From_guest  (** vmcall from non-root ring 0 to the host *)
  | In_kernel  (** caller already runs in host ring 0 *)

type t

val name : t -> string

val dax_pmem : Hw.Costs.t -> ?simd:bool -> Pmem.t -> t
(** [dax_pmem c p] accesses [p] by CPU copies; [simd] (default true)
    selects the AVX2 streaming path with its FPU save/restore. *)

val spdk_nvme : Hw.Costs.t -> Block_dev.t -> t
(** Direct user-space NVMe access, polling completions (CPU-busy). *)

val host_pmem : Hw.Costs.t -> entry:entry -> Pmem.t -> t
(** Direct I/O to the pmem block device through the host kernel. *)

val host_nvme : Hw.Costs.t -> entry:entry -> Block_dev.t -> t
(** Direct I/O to the NVMe device through the host kernel (interrupt
    completion and scheduler wakeup). *)

val uring_nvme : Hw.Costs.t -> entry:entry -> Block_dev.t -> t
(** io_uring-style asynchronous kernel I/O (Section 3.3 lists it as an
    alternative device-access method; evaluating it is the paper's future
    work).  The submission syscall is amortized over a batch of queued
    SQEs and completions are reaped from shared memory without entering
    the kernel, so the software cost per request is far below
    {!host_nvme}'s — at the price of queueing latency in real systems. *)

val read_pages : t -> page:int -> count:int -> dst:Bytes.t -> unit
(** [read_pages a ~page ~count ~dst] reads device pages
    [page .. page+count-1] into [dst] (which must hold [count] pages),
    charging every cost on the method's path.  Must run inside a fiber.

    Under an active {!Fault} plan, transient device failures are retried
    up to 5 times with exponential virtual-time backoff (20k cycles
    doubling per attempt, idle cycles under the "io_retry" label);
    permanent failures and exhausted retries raise {!Fault.Io_error}. *)

val write_pages : t -> page:int -> count:int -> src:Bytes.t -> unit

val read_pages_result :
  t -> page:int -> count:int -> dst:Bytes.t -> (unit, Fault.error) result
(** Like {!read_pages} (including the retry policy) but reports the
    final failure as [Error] — for callers with their own degradation
    path (the cache's write-back keeps failed pages dirty instead of
    unwinding). *)

val write_pages_result :
  t -> page:int -> count:int -> src:Bytes.t -> (unit, Fault.error) result

val read_page : t -> page:int -> dst:Bytes.t -> unit
val write_page : t -> page:int -> src:Bytes.t -> unit
