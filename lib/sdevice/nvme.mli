(** PCIe-attached NVMe SSD modelled on the Intel Optane DC P4800X used in
    the paper's testbed: ~10 µs 4 KiB read latency, ~550 K random 4 KiB
    IOPS at high queue depth, ~2.4 GB/s sequential throughput, 375 GB
    capacity (scaled down by default — see DESIGN.md §2). *)

val create :
  ?queues:int -> ?name:string -> ?capacity_bytes:int64 -> unit -> Block_dev.t
(** [create ()] is a fresh Optane-like device: 6 channels, 2400-cycle
    (1 µs) setup, 6 cycles/byte per channel.  Data transfer is DMA — the
    host CPU does not copy.  [queues] (default 1) splits submission
    accounting into per-core SQs ([core mod queues]) for sharded
    drivers — see {!Block_dev.create}. *)
