let default_capacity = Int64.mul 375L 1048576L (* scaled: 375 "GB" -> 375 MiB *)

let create ?queues ?(name = "nvme0") ?(capacity_bytes = default_capacity) () =
  Block_dev.create ?queues ~name ~channels:6 ~setup_cycles:2400L
    ~cycles_per_byte:6.0 ~capacity_bytes ()
