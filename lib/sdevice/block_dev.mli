(** Queueing model for block storage devices.

    A device has a number of parallel channels (its internal queue/NAND
    parallelism), a per-request setup latency, and a per-byte transfer
    cost per channel.  Requests admit FIFO onto a free channel and occupy
    it for [setup + len * per_byte] cycles, which yields the device's
    latency, IOPS and bandwidth envelope simultaneously.

    Time spent waiting for the device is charged to the calling fiber as
    idle time by default, or as [Sys] CPU time when [polling] (SPDK-style
    completion polling burns the CPU). *)

type t

val create :
  ?queues:int ->
  name:string ->
  channels:int ->
  setup_cycles:int64 ->
  cycles_per_byte:float ->
  capacity_bytes:int64 ->
  unit ->
  t
(** [queues] (default 1) is the number of submission queues; a request
    submits on SQ [core mod queues] (per-core SQs as in NVMe), so
    submission never serializes across cores — only channel occupancy
    does.  Purely an accounting split ({!queue_submissions}): the
    channel queueing model is unchanged, so timing is identical at any
    queue count. *)

val name : t -> string
val store : t -> Pagestore.t
val capacity_bytes : t -> int64

val setup_cycles : t -> int64
(** [setup_cycles t] is the per-request fixed cost passed at {!create} —
    the floor on this device's completion latency.  Shard-per-device
    PDES runs use it as a lookahead bound when a device is the only
    channel between two shards (see [Hw.Costs.min_cross_shard_latency]). *)

val service_time : t -> len:int -> int64
(** [service_time t ~len] is the channel occupancy for one request,
    excluding queueing. *)

val read : ?polling:bool -> t -> addr:int64 -> len:int -> dst:Bytes.t -> dst_off:int -> unit
(** [read t ~addr ~len ~dst ~dst_off] performs a blocking device read:
    queues for a channel, waits the service time, then materializes the
    data from the backing store.  Must run inside a fiber.  Raises
    {!Fault.Io_error} when the active fault plan fails the I/O. *)

val write : ?polling:bool -> t -> addr:int64 -> src:Bytes.t -> src_off:int -> len:int -> unit

val read_result :
  ?polling:bool -> t -> addr:int64 -> len:int -> dst:Bytes.t -> dst_off:int ->
  (unit, Fault.error) result
(** Like {!read} but reports injected failures as [Error] instead of
    raising.  The channel occupancy (and any injected latency spike) is
    charged either way — the device took the time before reporting the
    error. *)

val write_result :
  ?polling:bool -> t -> addr:int64 -> src:Bytes.t -> src_off:int -> len:int ->
  (unit, Fault.error) result
(** Like {!write} as a [result].  Store bytes are only mutated after the
    service time completes, so writes are all-or-nothing under a crash;
    a torn-write injection persists a page-aligned prefix of the span
    and reports [Error Transient]. *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int64
val bytes_written : t -> int64

(** {1 Fault counters} — injected by the active {!Fault} plan. *)

val read_errors : t -> int
val write_errors : t -> int
(** Failed I/Os (completed reads/writes are counted by {!reads}/{!writes}
    only on success). *)

val torn_writes : t -> int
(** Writes that persisted only a prefix (a subset of {!write_errors}). *)

val latency_spikes : t -> int

val queued_cycles : t -> int64
(** Total cycles requests spent queueing behind busy channels. *)

val queues : t -> int

val queue_submissions : t -> int array
(** Per-submission-queue request counts ([queues] entries; sums to
    {!reads} + {!writes} + failed I/Os).  The load-balance picture for
    shard-partitioned drivers: balanced SQs mean the device sees the
    paper's per-core submission pattern rather than one hot queue. *)
