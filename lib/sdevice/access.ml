type entry = From_user | From_guest | In_kernel

type t = {
  aname : string;
  do_read : page:int -> count:int -> dst:Bytes.t -> unit;
  do_write : page:int -> count:int -> src:Bytes.t -> unit;
}

let psz = Hw.Defs.page_size
let name t = t.aname

let check ~count ~buf =
  if count <= 0 then invalid_arg "Access: count must be positive";
  if Bytes.length buf < count * psz then invalid_arg "Access: buffer too small"

let entry_cost (c : Hw.Costs.t) = function
  | From_user -> c.syscall
  | From_guest -> c.vmcall_roundtrip
  | In_kernel -> 0L

let addr_of page = Int64.mul (Int64.of_int page) (Int64.of_int psz)

let dax_pmem costs ?(simd = true) pmem =
  let rw ~write ~page ~count buf =
    let len = count * psz in
    let cost =
      if write then
        Pmem.dax_write pmem costs ~simd ~addr:(addr_of page) ~src:buf ~src_off:0 ~len
      else Pmem.dax_read pmem costs ~simd ~addr:(addr_of page) ~len ~dst:buf ~dst_off:0
    in
    Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_memcpy" cost
  in
  {
    aname = (if simd then "DAX-pmem" else "DAX-pmem-scalar");
    do_read = (fun ~page ~count ~dst -> rw ~write:false ~page ~count dst);
    do_write = (fun ~page ~count ~src -> rw ~write:true ~page ~count src);
  }

let spdk_nvme (costs : Hw.Costs.t) dev =
  (* SPDK submission/completion is a few hundred cycles of user-space
     driver code; completion is polled so device time burns CPU. *)
  let driver = 400L in
  let submit () = Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_driver" driver in
  ignore costs;
  {
    aname = "SPDK-NVMe";
    do_read =
      (fun ~page ~count ~dst ->
        submit ();
        Block_dev.read ~polling:true dev ~addr:(addr_of page) ~len:(count * psz)
          ~dst ~dst_off:0);
    do_write =
      (fun ~page ~count ~src ->
        submit ();
        Block_dev.write ~polling:true dev ~addr:(addr_of page) ~src ~src_off:0
          ~len:(count * psz));
  }

let host_block ~aname (costs : Hw.Costs.t) ~entry ~wakeup ?(bounce = false) dev =
  let enter = entry_cost costs entry in
  (* Syscall entries additionally pay the VFS direct-I/O machinery (file
     position checks, iov setup, block mapping); the kernel fault path
     reaches the block layer directly (readpage). *)
  let vfs = match entry with In_kernel -> 0L | From_user | From_guest -> 5200L in
  (* Direct I/O from another protection domain bounces through a kernel
     buffer: one scalar page copy. *)
  let bounce_cost =
    match entry with
    | In_kernel -> 0L
    | From_user | From_guest -> if bounce then costs.memcpy_4k_scalar else 0L
  in
  let soft = Int64.add (Int64.add costs.kernel_block_layer vfs) bounce_cost in
  let prologue () =
    if Int64.compare enter 0L > 0 then
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_syscall" enter;
    Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_kernel" soft
  in
  let epilogue () =
    if wakeup then
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_kernel" costs.sched_wakeup
  in
  {
    aname;
    do_read =
      (fun ~page ~count ~dst ->
        prologue ();
        Block_dev.read dev ~addr:(addr_of page) ~len:(count * psz) ~dst ~dst_off:0;
        epilogue ());
    do_write =
      (fun ~page ~count ~src ->
        prologue ();
        Block_dev.write dev ~addr:(addr_of page) ~src ~src_off:0 ~len:(count * psz);
        epilogue ());
  }

(* io_uring: one submission syscall covers a batch of SQEs; completions
   are read from the shared ring without any kernel entry. *)
let uring_batch = 16

let uring_nvme (costs : Hw.Costs.t) ~entry dev =
  let enter = entry_cost costs entry in
  let sqe = 350L (* prepare SQE + ring bookkeeping *) in
  let prologue () =
    Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_syscall"
      (Int64.div enter (Int64.of_int uring_batch));
    Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_kernel"
      (Int64.add sqe (Int64.div costs.kernel_block_layer 2L))
  in
  {
    aname = "io_uring-NVMe";
    do_read =
      (fun ~page ~count ~dst ->
        prologue ();
        Block_dev.read dev ~addr:(addr_of page) ~len:(count * psz) ~dst ~dst_off:0);
    do_write =
      (fun ~page ~count ~src ->
        prologue ();
        Block_dev.write dev ~addr:(addr_of page) ~src ~src_off:0 ~len:(count * psz));
  }

let host_pmem costs ~entry pmem =
  (* pmem completes synchronously in the submitting context: no interrupt,
     no scheduler wakeup. *)
  host_block ~aname:"HOST-pmem" costs ~entry ~wakeup:false ~bounce:true
    (Pmem.block_dev pmem)

let host_nvme costs ~entry dev =
  host_block ~aname:"HOST-NVMe" costs ~entry ~wakeup:true dev

let read_pages t ~page ~count ~dst =
  check ~count ~buf:dst;
  let t0 = Sim.Probe.span_start () in
  t.do_read ~page ~count ~dst;
  Sim.Probe.span_since ~cat:"sdevice" ~value:(Int64.of_int count) ~t0 "dev_read"

let write_pages t ~page ~count ~src =
  check ~count ~buf:src;
  let t0 = Sim.Probe.span_start () in
  t.do_write ~page ~count ~src;
  Sim.Probe.span_since ~cat:"sdevice" ~value:(Int64.of_int count) ~t0 "dev_write"

let read_page t ~page ~dst = read_pages t ~page ~count:1 ~dst
let write_page t ~page ~src = write_pages t ~page ~count:1 ~src
