type entry = From_user | From_guest | In_kernel

type t = {
  aname : string;
  do_read : page:int -> count:int -> dst:Bytes.t -> (unit, Fault.error) result;
  do_write : page:int -> count:int -> src:Bytes.t -> (unit, Fault.error) result;
}

let psz = Hw.Defs.page_size
let name t = t.aname

let check ~count ~buf =
  if count <= 0 then invalid_arg "Access: count must be positive";
  if Bytes.length buf < count * psz then invalid_arg "Access: buffer too small"

let entry_cost (c : Hw.Costs.t) = function
  | From_user -> c.syscall
  | From_guest -> c.vmcall_roundtrip
  | In_kernel -> 0L

let addr_of page = Int64.mul (Int64.of_int page) (Int64.of_int psz)

let dax_pmem costs ?(simd = true) pmem =
  let aname = if simd then "DAX-pmem" else "DAX-pmem-scalar" in
  (* DAX copies complete synchronously, but NVM media errors are as real
     as NVMe ones (machine-check on load, failed store): consult the
     plan per copy.  A torn injection models an interrupted NT-store
     sequence — a page-aligned prefix of the span lands. *)
  let rw ~write ~page ~count buf =
    let charge cost = Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_memcpy" cost in
    let copy len =
      if len > 0 then
        if write then
          charge (Pmem.dax_write pmem costs ~simd ~addr:(addr_of page) ~src:buf ~src_off:0 ~len)
        else
          charge (Pmem.dax_read pmem costs ~simd ~addr:(addr_of page) ~len ~dst:buf ~dst_off:0)
    in
    match Fault.active () with
    | None ->
        copy (count * psz);
        Ok ()
    | Some plan ->
        if write then (
          match Fault.draw_write plan ~dev:aname ~page ~count with
          | Fault.W_ok ->
              copy (count * psz);
              Ok ()
          | Fault.W_error e ->
              if Trace.on () then Sim.Probe.instant ~cat:"fault" "write_error";
              Error e
          | Fault.W_torn keep ->
              if Trace.on () then Sim.Probe.instant ~cat:"fault" "torn_write";
              copy (keep * psz);
              Error Fault.Transient)
        else (
          match Fault.draw_read plan ~dev:aname ~page ~count with
          | Some e ->
              if Trace.on () then Sim.Probe.instant ~cat:"fault" "read_error";
              Error e
          | None ->
              copy (count * psz);
              Ok ())
  in
  {
    aname;
    do_read = (fun ~page ~count ~dst -> rw ~write:false ~page ~count dst);
    do_write = (fun ~page ~count ~src -> rw ~write:true ~page ~count src);
  }

let spdk_nvme (costs : Hw.Costs.t) dev =
  (* SPDK submission/completion is a few hundred cycles of user-space
     driver code; completion is polled so device time burns CPU. *)
  let driver = 400L in
  let submit () = Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_driver" driver in
  ignore costs;
  {
    aname = "SPDK-NVMe";
    do_read =
      (fun ~page ~count ~dst ->
        submit ();
        Block_dev.read_result ~polling:true dev ~addr:(addr_of page)
          ~len:(count * psz) ~dst ~dst_off:0);
    do_write =
      (fun ~page ~count ~src ->
        submit ();
        Block_dev.write_result ~polling:true dev ~addr:(addr_of page) ~src
          ~src_off:0 ~len:(count * psz));
  }

let host_block ~aname (costs : Hw.Costs.t) ~entry ~wakeup ?(bounce = false) dev =
  let enter = entry_cost costs entry in
  (* Syscall entries additionally pay the VFS direct-I/O machinery (file
     position checks, iov setup, block mapping); the kernel fault path
     reaches the block layer directly (readpage). *)
  let vfs = match entry with In_kernel -> 0L | From_user | From_guest -> 5200L in
  (* Direct I/O from another protection domain bounces through a kernel
     buffer: one scalar page copy. *)
  let bounce_cost =
    match entry with
    | In_kernel -> 0L
    | From_user | From_guest -> if bounce then costs.memcpy_4k_scalar else 0L
  in
  let soft = Int64.add (Int64.add costs.kernel_block_layer vfs) bounce_cost in
  let prologue () =
    if Int64.compare enter 0L > 0 then
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_syscall" enter;
    Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_kernel" soft
  in
  let epilogue () =
    if wakeup then
      Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_kernel" costs.sched_wakeup
  in
  {
    aname;
    do_read =
      (fun ~page ~count ~dst ->
        prologue ();
        let r =
          Block_dev.read_result dev ~addr:(addr_of page) ~len:(count * psz) ~dst
            ~dst_off:0
        in
        epilogue ();
        r);
    do_write =
      (fun ~page ~count ~src ->
        prologue ();
        let r =
          Block_dev.write_result dev ~addr:(addr_of page) ~src ~src_off:0
            ~len:(count * psz)
        in
        epilogue ();
        r);
  }

(* io_uring: one submission syscall covers a batch of SQEs; completions
   are read from the shared ring without any kernel entry. *)
let uring_batch = 16

let uring_nvme (costs : Hw.Costs.t) ~entry dev =
  let enter = entry_cost costs entry in
  let sqe = 350L (* prepare SQE + ring bookkeeping *) in
  let prologue () =
    Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_syscall"
      (Int64.div enter (Int64.of_int uring_batch));
    Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_kernel"
      (Int64.add sqe (Int64.div costs.kernel_block_layer 2L))
  in
  {
    aname = "io_uring-NVMe";
    do_read =
      (fun ~page ~count ~dst ->
        prologue ();
        Block_dev.read_result dev ~addr:(addr_of page) ~len:(count * psz) ~dst
          ~dst_off:0);
    do_write =
      (fun ~page ~count ~src ->
        prologue ();
        Block_dev.write_result dev ~addr:(addr_of page) ~src ~src_off:0
          ~len:(count * psz));
  }

let host_pmem costs ~entry pmem =
  (* pmem completes synchronously in the submitting context: no interrupt,
     no scheduler wakeup. *)
  host_block ~aname:"HOST-pmem" costs ~entry ~wakeup:false ~bounce:true
    (Pmem.block_dev pmem)

let host_nvme costs ~entry dev =
  host_block ~aname:"HOST-NVMe" costs ~entry ~wakeup:true dev

(* Retry policy (DESIGN.md §7): transient failures are retried up to
   [max_attempts] times with exponential backoff in virtual time —
   20k cycles (~8 µs at 2.6 GHz), doubling per attempt, charged as idle
   under the "io_retry" label.  Permanent failures and exhausted retries
   surface to the caller. *)
let max_attempts = 5
let backoff_base = 20_000L

(* No per-instance record to hang a metric cell on here, and cells are
   domain-local — so bind one per domain, lazily, through DLS.  Retries
   are rare enough that the DLS lookup is irrelevant. *)
let m_retries_key : Metrics.Registry.cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Metrics.Registry.counter ~help:"transient I/O retries (with backoff)"
        "sdevice_io_retries")

let rec attempt_io ~write t ~page ~count ~buf n =
  let r =
    if write then t.do_write ~page ~count ~src:buf
    else t.do_read ~page ~count ~dst:buf
  in
  match r with
  | Ok () -> Ok ()
  | Error Fault.Permanent as e -> e
  | Error Fault.Transient as e ->
      if n >= max_attempts then e
      else begin
        (match Fault.active () with Some p -> Fault.note_retry p | None -> ());
        Metrics.Registry.incr (Domain.DLS.get m_retries_key);
        if Trace.on () then Sim.Probe.instant ~cat:"fault" "io_retry";
        let backoff = Int64.mul backoff_base (Int64.shift_left 1L (n - 1)) in
        Sim.Engine.idle_wait backoff;
        Sim.Engine.label_add "io_retry" backoff;
        attempt_io ~write t ~page ~count ~buf (n + 1)
      end

let read_pages_result t ~page ~count ~dst =
  check ~count ~buf:dst;
  let t0 = Sim.Probe.span_start () in
  let r = attempt_io ~write:false t ~page ~count ~buf:dst 1 in
  Sim.Probe.span_since ~cat:"sdevice" ~value:(Int64.of_int count) ~t0 "dev_read";
  r

let write_pages_result t ~page ~count ~src =
  check ~count ~buf:src;
  let t0 = Sim.Probe.span_start () in
  let r = attempt_io ~write:true t ~page ~count ~buf:src 1 in
  Sim.Probe.span_since ~cat:"sdevice" ~value:(Int64.of_int count) ~t0 "dev_write";
  r

let read_pages t ~page ~count ~dst =
  match read_pages_result t ~page ~count ~dst with
  | Ok () -> ()
  | Error e ->
      raise (Fault.Io_error { dev = t.aname; write = false; page; error = e })

let write_pages t ~page ~count ~src =
  match write_pages_result t ~page ~count ~src with
  | Ok () -> ()
  | Error e ->
      raise (Fault.Io_error { dev = t.aname; write = true; page; error = e })

let read_page t ~page ~dst = read_pages t ~page ~count:1 ~dst
let write_page t ~page ~src = write_pages t ~page ~count:1 ~src
