type t = {
  dname : string;
  qd_name : string; (* precomputed counter label: no allocation per event *)
  dstore : Pagestore.t;
  channels : Sim.Sync.Resource.t;
  setup : int64;
  per_byte : float;
  cap : int64;
  mutable nreads : int;
  mutable nwrites : int;
  mutable rbytes : int64;
  mutable wbytes : int64;
}

let create ~name ~channels ~setup_cycles ~cycles_per_byte ~capacity_bytes () =
  {
    dname = name;
    qd_name = name ^ ":queue_depth";
    dstore = Pagestore.create ();
    channels = Sim.Sync.Resource.create ~name ~capacity:channels ();
    setup = setup_cycles;
    per_byte = cycles_per_byte;
    cap = capacity_bytes;
    nreads = 0;
    nwrites = 0;
    rbytes = 0L;
    wbytes = 0L;
  }

let name t = t.dname
let store t = t.dstore
let capacity_bytes t = t.cap

let service_time t ~len =
  Int64.add t.setup (Int64.of_float (float_of_int len *. t.per_byte))

let check_range t addr len =
  if Int64.compare addr 0L < 0 || len < 0
     || Int64.compare (Int64.add addr (Int64.of_int len)) t.cap > 0
  then invalid_arg (t.dname ^ ": I/O outside device capacity")

(* The submit→complete span covers queueing for a device channel plus the
   transfer itself; the counter samples channel occupancy at dispatch. *)
let occupy t ~polling ~len =
  let io0 = Sim.Probe.span_start () in
  Sim.Sync.Resource.acquire t.channels;
  if Trace.on () then
    Sim.Probe.counter ~cat:"sdevice" t.qd_name
      (Int64.of_int (Sim.Sync.Resource.in_use t.channels));
  let service = service_time t ~len in
  if polling then Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_device" service
  else begin
    Sim.Engine.idle_wait service;
    Sim.Engine.label_add "io_device" service
  end;
  Sim.Sync.Resource.release t.channels;
  Sim.Probe.span_since ~cat:"sdevice" ~value:(Int64.of_int len) ~t0:io0 t.dname

let read ?(polling = false) t ~addr ~len ~dst ~dst_off =
  check_range t addr len;
  occupy t ~polling ~len;
  Pagestore.read_bytes t.dstore ~addr ~len ~dst ~dst_off;
  t.nreads <- t.nreads + 1;
  t.rbytes <- Int64.add t.rbytes (Int64.of_int len)

let write ?(polling = false) t ~addr ~src ~src_off ~len =
  check_range t addr len;
  occupy t ~polling ~len;
  Pagestore.write_bytes t.dstore ~addr ~src ~src_off ~len;
  t.nwrites <- t.nwrites + 1;
  t.wbytes <- Int64.add t.wbytes (Int64.of_int len)

let reads t = t.nreads
let writes t = t.nwrites
let bytes_read t = t.rbytes
let bytes_written t = t.wbytes
let queued_cycles t = Sim.Sync.Resource.queued_cycles t.channels
