let psz = Hw.Defs.page_size

type t = {
  dname : string;
  qd_name : string; (* precomputed counter label: no allocation per event *)
  dstore : Pagestore.t;
  q_subs : int array; (* submissions per SQ; SQ = submitting core mod queues *)
  channels : Sim.Sync.Resource.t;
  setup : int64;
  per_byte : float;
  cap : int64;
  mutable nreads : int;
  mutable nwrites : int;
  mutable rbytes : int64;
  mutable wbytes : int64;
  mutable nread_errors : int;
  mutable nwrite_errors : int;
  mutable ntorn : int;
  mutable nspikes : int;
  (* always-on aqmetrics cells, one series per device name *)
  m_reads : Metrics.Registry.cell;
  m_writes : Metrics.Registry.cell;
  m_errors : Metrics.Registry.cell;
  m_spikes : Metrics.Registry.cell;
  m_qdepth : Metrics.Registry.hcell;
}

let create ?(queues = 1) ~name ~channels ~setup_cycles ~cycles_per_byte
    ~capacity_bytes () =
  if queues < 1 then invalid_arg (name ^ ": queues must be >= 1");
  let labels = [ ("dev", name) ] in
  {
    dname = name;
    qd_name = name ^ ":queue_depth";
    dstore = Pagestore.create ();
    q_subs = Array.make queues 0;
    channels = Sim.Sync.Resource.create ~name ~capacity:channels ();
    setup = setup_cycles;
    per_byte = cycles_per_byte;
    cap = capacity_bytes;
    nreads = 0;
    nwrites = 0;
    rbytes = 0L;
    wbytes = 0L;
    nread_errors = 0;
    nwrite_errors = 0;
    ntorn = 0;
    nspikes = 0;
    m_reads =
      Metrics.Registry.counter ~help:"read I/Os completed" ~labels
        "sdevice_reads";
    m_writes =
      Metrics.Registry.counter ~help:"write I/Os completed" ~labels
        "sdevice_writes";
    m_errors =
      Metrics.Registry.counter ~help:"injected I/O errors surfaced" ~labels
        "sdevice_errors";
    m_spikes =
      Metrics.Registry.counter ~help:"injected latency spikes" ~labels
        "sdevice_spikes";
    m_qdepth =
      Metrics.Registry.histogram ~help:"channel occupancy at dispatch" ~labels
        "sdevice_queue_depth";
  }

let name t = t.dname
let store t = t.dstore
let capacity_bytes t = t.cap
let setup_cycles t = t.setup

let service_time t ~len =
  Int64.add t.setup (Int64.of_float (float_of_int len *. t.per_byte))

let check_range t addr len =
  if Int64.compare addr 0L < 0 || len < 0
     || Int64.compare (Int64.add addr (Int64.of_int len)) t.cap > 0
  then invalid_arg (t.dname ^ ": I/O outside device capacity")

(* First device page and page count a byte span touches — the units the
   fault plan reasons in. *)
let page_span addr len =
  let p = Int64.of_int psz in
  let p0 = Int64.to_int (Int64.div addr p) in
  let last = Int64.add addr (Int64.of_int (max 0 (len - 1))) in
  let p1 = Int64.to_int (Int64.div last p) in
  (p0, p1 - p0 + 1)

(* The submit→complete span covers queueing for a device channel plus the
   transfer itself; the counter samples channel occupancy at dispatch.
   [spike] stretches the service time (injected latency spike). *)
let occupy t ~polling ~len ~spike =
  let io0 = Sim.Probe.span_start () in
  (* Submission queue: per-core SQs as in NVMe — submitting never
     serializes against other cores' SQs; only the channel Resource
     below (the device's internal parallelism) queues requests. *)
  let q =
    let nq = Array.length t.q_subs in
    if nq = 1 then 0
    else begin
      let q = (Sim.Engine.self ()).Sim.Engine.core mod nq in
      if q < 0 then q + nq else q
    end
  in
  t.q_subs.(q) <- t.q_subs.(q) + 1;
  Sim.Sync.Resource.acquire t.channels;
  Metrics.Registry.observe t.m_qdepth (Sim.Sync.Resource.in_use t.channels);
  if Trace.on () then
    Sim.Probe.counter ~cat:"sdevice" t.qd_name
      (Int64.of_int (Sim.Sync.Resource.in_use t.channels));
  let service = service_time t ~len in
  let service =
    if spike > 1 then Int64.mul service (Int64.of_int spike) else service
  in
  if polling then Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_device" service
  else begin
    Sim.Engine.idle_wait service;
    Sim.Engine.label_add "io_device" service
  end;
  Sim.Sync.Resource.release t.channels;
  Sim.Probe.span_since ~cat:"sdevice" ~value:(Int64.of_int len) ~t0:io0 t.dname

let spike_of t plan =
  let s = Fault.draw_spike plan in
  if s > 1 then begin
    t.nspikes <- t.nspikes + 1;
    Metrics.Registry.incr t.m_spikes;
    if Trace.on () then Sim.Probe.instant ~cat:"fault" "latency_spike"
  end;
  s

let read_result ?(polling = false) t ~addr ~len ~dst ~dst_off =
  check_range t addr len;
  match Fault.active () with
  | None ->
      occupy t ~polling ~len ~spike:1;
      Pagestore.read_bytes t.dstore ~addr ~len ~dst ~dst_off;
      t.nreads <- t.nreads + 1;
      Metrics.Registry.incr t.m_reads;
      t.rbytes <- Int64.add t.rbytes (Int64.of_int len);
      Ok ()
  | Some plan -> (
      let page, count = page_span addr len in
      occupy t ~polling ~len ~spike:(spike_of t plan);
      match Fault.draw_read plan ~dev:t.dname ~page ~count with
      | Some e ->
          t.nread_errors <- t.nread_errors + 1;
          Metrics.Registry.incr t.m_errors;
          if Trace.on () then Sim.Probe.instant ~cat:"fault" "read_error";
          Error e
      | None ->
          Pagestore.read_bytes t.dstore ~addr ~len ~dst ~dst_off;
          t.nreads <- t.nreads + 1;
          Metrics.Registry.incr t.m_reads;
          t.rbytes <- Int64.add t.rbytes (Int64.of_int len);
          Ok ())

(* The store is only mutated once the channel occupancy completed: an
   injected [Crash] mid-service aborts before any byte lands, so an
   in-flight write is all-or-nothing.  Partial persistence only ever
   comes from an explicit torn-write injection, which persists a page
   prefix of the span and then reports a transient error. *)
let write_result ?(polling = false) t ~addr ~src ~src_off ~len =
  check_range t addr len;
  match Fault.active () with
  | None ->
      occupy t ~polling ~len ~spike:1;
      Pagestore.write_bytes t.dstore ~addr ~src ~src_off ~len;
      t.nwrites <- t.nwrites + 1;
      Metrics.Registry.incr t.m_writes;
      t.wbytes <- Int64.add t.wbytes (Int64.of_int len);
      Ok ()
  | Some plan -> (
      let page, count = page_span addr len in
      occupy t ~polling ~len ~spike:(spike_of t plan);
      match Fault.draw_write plan ~dev:t.dname ~page ~count with
      | Fault.W_ok ->
          Pagestore.write_bytes t.dstore ~addr ~src ~src_off ~len;
          t.nwrites <- t.nwrites + 1;
          Metrics.Registry.incr t.m_writes;
          t.wbytes <- Int64.add t.wbytes (Int64.of_int len);
          Ok ()
      | Fault.W_error e ->
          t.nwrite_errors <- t.nwrite_errors + 1;
          Metrics.Registry.incr t.m_errors;
          if Trace.on () then Sim.Probe.instant ~cat:"fault" "write_error";
          Error e
      | Fault.W_torn keep ->
          let keep_bytes =
            let span_end = Int64.of_int ((page + keep) * psz) in
            max 0 (min len (Int64.to_int (Int64.sub span_end addr)))
          in
          if keep_bytes > 0 then
            Pagestore.write_bytes t.dstore ~addr ~src ~src_off ~len:keep_bytes;
          t.nwrite_errors <- t.nwrite_errors + 1;
          Metrics.Registry.incr t.m_errors;
          t.ntorn <- t.ntorn + 1;
          if Trace.on () then Sim.Probe.instant ~cat:"fault" "torn_write";
          Error Fault.Transient)

let read ?polling t ~addr ~len ~dst ~dst_off =
  match read_result ?polling t ~addr ~len ~dst ~dst_off with
  | Ok () -> ()
  | Error e ->
      raise
        (Fault.Io_error
           { dev = t.dname; write = false; page = fst (page_span addr len); error = e })

let write ?polling t ~addr ~src ~src_off ~len =
  match write_result ?polling t ~addr ~src ~src_off ~len with
  | Ok () -> ()
  | Error e ->
      raise
        (Fault.Io_error
           { dev = t.dname; write = true; page = fst (page_span addr len); error = e })

let reads t = t.nreads
let writes t = t.nwrites
let bytes_read t = t.rbytes
let bytes_written t = t.wbytes
let read_errors t = t.nread_errors
let write_errors t = t.nwrite_errors
let torn_writes t = t.ntorn
let latency_spikes t = t.nspikes
let queued_cycles t = Sim.Sync.Resource.queued_cycles t.channels
let queues t = Array.length t.q_subs
let queue_submissions t = Array.copy t.q_subs
