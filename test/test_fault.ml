(* Tests for the fault-injection layer (lib/fault) and the
   crash-consistency checker (lib/fault/check.ml). *)

let psz = Hw.Defs.page_size
let c = Hw.Costs.default
let checki = Alcotest.(check int)

(* ---- Plan spec parsing ---- *)

let spec_roundtrip () =
  let specs =
    [
      Fault.Plan.default;
      {
        Fault.Plan.seed = 11;
        read_error = 0.001;
        write_error = 0.002;
        permanent = 0.25;
        torn_write = 0.5;
        latency_spike = 0.01;
        spike_factor = 8;
        crash_at = Some 120000;
        node = None;
      };
      { Fault.Plan.default with Fault.Plan.crash_at = Some 1 };
      { Fault.Plan.default with Fault.Plan.crash_at = Some 9; node = Some 2 };
    ]
  in
  List.iter
    (fun s ->
      match Fault.Plan.parse (Fault.Plan.to_string s) with
      | Ok s' ->
          Alcotest.(check bool) (Fault.Plan.to_string s) true (s = s')
      | Error m -> Alcotest.fail m)
    specs;
  (match Fault.Plan.parse "" with
  | Ok s -> Alcotest.(check bool) "empty is default" true (s = Fault.Plan.default)
  | Error m -> Alcotest.fail m);
  (match Fault.Plan.parse "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted");
  match Fault.Plan.parse "read=oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value accepted"

(* ---- Draw determinism ---- *)

let draw_sequence spec =
  let p = Fault.Plan.make spec in
  let out = ref [] in
  let push s = out := s :: !out in
  for i = 0 to 199 do
    (match Fault.draw_read p ~dev:"d" ~page:i ~count:2 with
    | None -> push "r-ok"
    | Some e -> push ("r-" ^ Fault.error_to_string e));
    (match Fault.draw_write p ~dev:"d" ~page:(1000 + i) ~count:3 with
    | Fault.W_ok -> push "w-ok"
    | Fault.W_error e -> push ("w-" ^ Fault.error_to_string e)
    | Fault.W_torn n -> push (Printf.sprintf "w-torn%d" n));
    push (string_of_int (Fault.draw_spike p))
  done;
  (List.rev !out, Fault.Plan.counters p)

let draws_deterministic () =
  let spec =
    {
      Fault.Plan.default with
      Fault.Plan.read_error = 0.3;
      write_error = 0.3;
      torn_write = 0.5;
      latency_spike = 0.2;
      spike_factor = 8;
    }
  in
  let s1, c1 = draw_sequence spec in
  let s2, c2 = draw_sequence spec in
  Alcotest.(check (list string)) "same seed, same draws" s1 s2;
  Alcotest.(check (list (pair string int))) "same counters" c1 c2;
  let s3, _ = draw_sequence { spec with Fault.Plan.seed = spec.Fault.Plan.seed + 1 } in
  Alcotest.(check bool) "different seed, different draws" true (s1 <> s3)

let zero_probability_draws_nothing () =
  let s, counters = draw_sequence Fault.Plan.default in
  Alcotest.(check bool) "no injected faults" true
    (List.for_all (fun x -> x = "r-ok" || x = "w-ok" || x = "1") s);
  List.iter
    (fun (name, n) -> if name <> "probes" then checki name 0 n)
    counters

(* ---- Crash at an exact event ---- *)

let crash_at_exact_event () =
  let spec = { Fault.Plan.default with Fault.Plan.crash_at = Some 500 } in
  let run () =
    try
      Fault.with_plan (Fault.Plan.make spec) (fun () ->
          let eng = Sim.Engine.create () in
          ignore
            (Sim.Engine.spawn eng ~core:0 (fun () ->
                 for _ = 1 to 10_000 do
                   Sim.Engine.delay 10L
                 done));
          Sim.Engine.run eng;
          Alcotest.fail "expected a crash")
    with Fault.Crash { at_event } -> at_event
  in
  let a = run () in
  let b = run () in
  checki "same event on repeat" a b;
  Alcotest.(check bool) "at or just after the ordinal" true (a >= 500 && a <= 505)

(* ---- Crash ordinals are shard-count independent ---- *)

let crash_ordinal_parity_across_shards () =
  (* crash_at counts engine events, so it only stays meaningful under
     --shards N if the sharded engine replays the single-queue event
     order exactly; a multi-core workload must crash on the same event
     ordinal at any shard count. *)
  let run shards =
    let spec = { Fault.Plan.default with Fault.Plan.crash_at = Some 400 } in
    try
      Fault.with_plan (Fault.Plan.make spec) (fun () ->
          let eng = Sim.Engine.create ~shards () in
          for core = 0 to 7 do
            ignore
              (Sim.Engine.spawn eng ~core (fun () ->
                   for _ = 1 to 2_000 do
                     Sim.Engine.delay (Int64.of_int (7 + core))
                   done))
          done;
          Sim.Engine.run eng;
          Alcotest.fail "expected a crash")
    with Fault.Crash { at_event } -> at_event
  in
  let base = run 1 in
  List.iter
    (fun n -> checki (Printf.sprintf "same ordinal at %d shards" n) base (run n))
    [ 2; 4; 8 ]

let faultcheck_parity_across_shards () =
  (* The whole crash-consistency checker (aquila_cli faultcheck) under
     the ambient default --shards 4 sets: identical report, identical
     crash ordinals. *)
  let report () =
    let r = Fault_check.Check.run_micro ~seeds:[ 1; 2 ] ~points:5 () in
    (Format.asprintf "%a" Fault_check.Check.pp_report r,
     r.Fault_check.Check.combos, r.Fault_check.Check.crashes)
  in
  let base = report () in
  Fun.protect
    ~finally:(fun () -> Sim.Engine.set_default_shards 1)
    (fun () ->
      Sim.Engine.set_default_shards 4;
      Alcotest.(check (triple string int int))
        "report identical under 4 shards" base (report ()))

(* ---- Access-layer retry policy ---- *)

let retry_exhaustion_and_backoff () =
  let spec = { Fault.Plan.default with Fault.Plan.read_error = 1.0 } in
  let plan = Fault.Plan.make spec in
  let final = ref 0L in
  Fault.with_plan plan (fun () ->
      let eng = Sim.Engine.create () in
      let dev = Sdevice.Nvme.create ~name:"t-nvme" () in
      let acc = Sdevice.Access.spdk_nvme c dev in
      let dst = Bytes.create psz in
      let raised = ref false in
      ignore
        (Sim.Engine.spawn eng ~core:0 (fun () ->
             match Sdevice.Access.read_pages acc ~page:0 ~count:1 ~dst with
             | () -> ()
             | exception Fault.Io_error { write = false; error = Fault.Transient; _ }
               ->
                 raised := true));
      Sim.Engine.run eng;
      Alcotest.(check bool) "transient read error surfaced" true !raised;
      final := Sim.Engine.now eng);
  checki "4 retries before giving up" 4 (Fault.Plan.retries plan);
  (* exponential virtual-time backoff: 20k + 40k + 80k + 160k cycles *)
  Alcotest.(check bool)
    (Printf.sprintf "backoff advanced virtual time (%Ld)" !final)
    true
    (!final >= 300_000L)

let permanent_fails_fast_and_sticks () =
  let spec =
    { Fault.Plan.default with Fault.Plan.read_error = 1.0; permanent = 1.0 }
  in
  let plan = Fault.Plan.make spec in
  Fault.with_plan plan (fun () ->
      let eng = Sim.Engine.create () in
      let dev = Sdevice.Nvme.create ~name:"t-nvme" () in
      let acc = Sdevice.Access.spdk_nvme c dev in
      let dst = Bytes.create psz in
      let errors = ref [] in
      ignore
        (Sim.Engine.spawn eng ~core:0 (fun () ->
             for _ = 1 to 2 do
               match Sdevice.Access.read_pages acc ~page:7 ~count:1 ~dst with
               | () -> ()
               | exception Fault.Io_error { error; _ } -> errors := error :: !errors
             done));
      Sim.Engine.run eng;
      Alcotest.(check bool) "both permanent" true
        (!errors = [ Fault.Permanent; Fault.Permanent ]));
  checki "no retries on permanent failures" 0 (Fault.Plan.retries plan)

(* ---- Torn writes ---- *)

let torn_write_persists_page_prefix () =
  let spec =
    { Fault.Plan.default with Fault.Plan.write_error = 1.0; torn_write = 1.0 }
  in
  let plan = Fault.Plan.make spec in
  let dev = ref None in
  Fault.with_plan plan (fun () ->
      let eng = Sim.Engine.create () in
      let d = Sdevice.Nvme.create ~name:"t-nvme" () in
      dev := Some d;
      ignore
        (Sim.Engine.spawn eng ~core:0 (fun () ->
             let src = Bytes.make (4 * psz) 'T' in
             match
               Sdevice.Block_dev.write_result d ~addr:0L ~src ~src_off:0
                 ~len:(4 * psz)
             with
             | Ok () -> Alcotest.fail "expected the write to fail"
             | Error Fault.Transient -> ()
             | Error Fault.Permanent -> Alcotest.fail "permanent with perm=0"));
      Sim.Engine.run eng);
  Alcotest.(check bool) "torn write counted" true (Fault.Plan.torn_writes plan >= 1);
  (* the device holds a strict page-aligned prefix of the span: whole
     pages of 'T', then untouched zeros — never a partial page *)
  let store = Sdevice.Block_dev.store (Option.get !dev) in
  let page_bytes p =
    let b = Bytes.create psz in
    Sdevice.Pagestore.read_page store ~page:p ~dst:b;
    b
  in
  let uniform b ch =
    let ok = ref true in
    Bytes.iter (fun x -> if x <> ch then ok := false) b;
    !ok
  in
  let n = ref 0 in
  while !n < 4 && uniform (page_bytes !n) 'T' do
    incr n
  done;
  Alcotest.(check bool) "strict prefix" true (!n < 4);
  for p = !n to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "page %d untouched" p)
      true
      (uniform (page_bytes p) '\000')
  done

(* ---- SIGBUS through the DRAM cache ---- *)

let make_cache_rig () =
  let machine = Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  let cache =
    Mcache.Dram_cache.create ~costs:c ~machine ~page_table:pt
      (Mcache.Dram_cache.default_config ~frames:16)
  in
  let dev = Sdevice.Nvme.create ~name:"t-nvme" () in
  let access = Sdevice.Access.spdk_nvme c dev in
  Mcache.Dram_cache.register_file cache ~file_id:1 ~access
    ~translate:(fun p -> if p < 256 then Some p else None);
  Mcache.Dram_cache.set_shoot_cores cache [ 0 ];
  (cache, pt)

let key p = Mcache.Pagekey.make ~file:1 ~page:p

let sigbus_on_unreadable_page () =
  let spec =
    { Fault.Plan.default with Fault.Plan.read_error = 1.0; permanent = 1.0 }
  in
  let plan = Fault.Plan.make spec in
  let cache = ref None in
  Fault.with_plan plan (fun () ->
      let ca, _pt = make_cache_rig () in
      cache := Some ca;
      let eng = Sim.Engine.create () in
      let got = ref false in
      ignore
        (Sim.Engine.spawn eng ~core:0 (fun () ->
             try
               Mcache.Dram_cache.fault ca ~core:0 ~key:(key 3) ~vpn:10
                 ~write:false ()
             with Fault.Sigbus { file = 1; page = 3 } -> got := true));
      Sim.Engine.run eng;
      Alcotest.(check bool) "sigbus delivered with file/page" true !got);
  checki "cache counted it" 1 (Mcache.Dram_cache.sigbus_count (Option.get !cache));
  checki "plan counted it" 1 (Fault.Plan.sigbus_count plan)

(* ---- Degradation to read-only ---- *)

let degrade_to_read_only_after_error_storm () =
  let spec = { Fault.Plan.default with Fault.Plan.write_error = 1.0 } in
  let plan = Fault.Plan.make spec in
  let cache = ref None in
  Fault.with_plan plan (fun () ->
      let ca, _pt = make_cache_rig () in
      cache := Some ca;
      let eng = Sim.Engine.create () in
      ignore
        (Sim.Engine.spawn eng ~core:0 (fun () ->
             Mcache.Dram_cache.fault ca ~core:0 ~key:(key 0) ~vpn:10 ~write:true ();
             (* every write-back round fails: msync refuses to ack (it
                raises Io_error, the page stays dirty) and after the
                streak limit the cache refuses new writes rather than
                acknowledging data it can no longer make durable *)
             for _ = 1 to 8 do
               match Mcache.Dram_cache.msync ca ~core:0 () with
               | () -> Alcotest.fail "msync acked a failed flush"
               | exception Fault.Io_error { write = true; _ } -> ()
             done;
             Alcotest.(check bool) "degraded" true (Mcache.Dram_cache.degraded ca);
             Alcotest.(check bool) "failed pages stayed dirty" true
               (Mcache.Dram_cache.dirty_pages ca >= 1);
             try
               Mcache.Dram_cache.fault ca ~core:0 ~key:(key 1) ~vpn:11 ~write:true ();
               Alcotest.fail "expected Read_only"
             with Fault.Read_only _ -> ()));
      Sim.Engine.run eng);
  let ca = Option.get !cache in
  Alcotest.(check bool) "write-back errors counted" true
    (Mcache.Dram_cache.wb_errors ca >= 8);
  Alcotest.(check bool) "plan write errors counted" true
    (Fault.Plan.write_errors plan >= 8);
  (* a reboot clears the degradation along with the volatile state *)
  Mcache.Dram_cache.crash ca;
  Alcotest.(check bool) "crash resets read-only" false (Mcache.Dram_cache.degraded ca)

(* ---- The crash-consistency checker ---- *)

let checker_micro_clean () =
  let r = Fault_check.Check.run_micro ~seeds:[ 1; 2 ] ~points:5 () in
  Alcotest.(check bool)
    (Format.asprintf "%a" Fault_check.Check.pp_report r)
    true (Fault_check.Check.ok r);
  checki "all combos crashed" r.Fault_check.Check.combos
    r.Fault_check.Check.crashes

let checker_kreon_clean () =
  let r = Fault_check.Check.run_kreon ~seeds:[ 1 ] ~points:5 () in
  Alcotest.(check bool)
    (Format.asprintf "%a" Fault_check.Check.pp_report r)
    true (Fault_check.Check.ok r)

let checker_catches_broken_variant () =
  (* wb_protect:false skips re-write-protecting clean pages after msync,
     so post-msync stores escape dirty tracking and are silently lost on
     the power cut — the checker must notice. *)
  let r =
    Fault_check.Check.run_micro ~broken:true ~seeds:[ 1; 2; 3 ] ~points:10 ()
  in
  Alcotest.(check bool) "violations reported" false (Fault_check.Check.ok r)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "spec roundtrip" `Quick spec_roundtrip;
          Alcotest.test_case "deterministic draws" `Quick draws_deterministic;
          Alcotest.test_case "zero-probability plan" `Quick
            zero_probability_draws_nothing;
        ] );
      ( "injection",
        [
          Alcotest.test_case "crash at exact event" `Quick crash_at_exact_event;
          Alcotest.test_case "crash ordinal parity across shards" `Quick
            crash_ordinal_parity_across_shards;
          Alcotest.test_case "faultcheck parity across shards" `Quick
            faultcheck_parity_across_shards;
          Alcotest.test_case "retry + backoff" `Quick retry_exhaustion_and_backoff;
          Alcotest.test_case "permanent sticks" `Quick
            permanent_fails_fast_and_sticks;
          Alcotest.test_case "torn write prefix" `Quick
            torn_write_persists_page_prefix;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "sigbus" `Quick sigbus_on_unreadable_page;
          Alcotest.test_case "read-only fallback" `Quick
            degrade_to_read_only_after_error_storm;
        ] );
      ( "checker",
        [
          Alcotest.test_case "micro clean" `Quick checker_micro_clean;
          Alcotest.test_case "kreon clean" `Quick checker_kreon_clean;
          Alcotest.test_case "broken variant caught" `Quick
            checker_catches_broken_variant;
        ] );
    ]
