(* Tests for the open-loop load generator (lib/loadgen): arrival-stream
   purity, bounded-queue admission control, deterministic shedding, SLO
   accounting, and the pow2-bucket quantile used for SLO reporting. *)

let checki = Alcotest.(check int)

(* A backend with a fixed service time: capacity is exactly
   workers * clock_hz / svc ops/s, so saturation points are easy to
   place on either side. *)
let fixed_backend ?(svc = 10_000L) ?(degraded = fun () -> false) () =
  { Loadgen.name = "fixed"; serve = (fun _ -> Sim.Engine.delay svc); degraded }

let cfg ?(process = Loadgen.Arrival.Poisson { rate = 50_000. })
    ?(horizon = 12_000_000) ?(workers = 2) ?(queue_cap = 64) ?(slo_cycles = 0)
    ?(seed = 7) ?(shed_when_degraded = false) () =
  {
    Loadgen.process;
    horizon;
    workers;
    queue_cap;
    slo_cycles;
    seed;
    shed_when_degraded;
  }

let drain_clean eng =
  checki "no live fibers after drain" 0 (Sim.Engine.live_fibers eng);
  Alcotest.(check (list (pair int string)))
    "blocked_report clean" []
    (Sim.Engine.blocked_fibers eng)

(* ---- arrival streams ---- *)

let arrival_purity =
  QCheck.Test.make
    ~name:"arrival streams are pure in (seed, rate, horizon), any shard count"
    ~count:50
    QCheck.(
      triple (int_range 1 1_000_000) (int_range 100 2_000_000)
        (int_range 1_000 5_000_000))
    (fun (seed, ratei, horizon) ->
      let rate = float_of_int ratei in
      let processes =
        [
          Loadgen.Arrival.Poisson { rate };
          Loadgen.Arrival.shaped Loadgen.Arrival.Mmpp_shape ~rate ~horizon;
          Loadgen.Arrival.shaped Loadgen.Arrival.Diurnal_shape ~rate ~horizon;
        ]
      in
      let ok =
        List.for_all
          (fun p ->
            Sim.Engine.set_default_shards 1;
            let a = Loadgen.Arrival.generate ~seed ~horizon p in
            (* the stream may not read any ambient engine/shard state *)
            Sim.Engine.set_default_shards 4;
            let b = Loadgen.Arrival.generate ~seed ~horizon p in
            let monotone = ref true in
            Array.iteri
              (fun i t ->
                if t < 1 || t >= horizon then monotone := false;
                if i > 0 && t <= a.(i - 1) then monotone := false)
              a;
            a = b && !monotone)
          processes
      in
      Sim.Engine.set_default_shards 1;
      ok)

let arrival_mean_rate () =
  let horizon = 48_000_000 in
  List.iter
    (fun shape ->
      let p = Loadgen.Arrival.shaped shape ~rate:500_000. ~horizon in
      Alcotest.(check (float 1.))
        (Loadgen.Arrival.shape_name shape ^ " mean rate")
        500_000. (Loadgen.Arrival.mean_rate p);
      (* realized arrivals within 15% of offered * window *)
      let n =
        Array.length (Loadgen.Arrival.generate ~seed:3 ~horizon p)
      in
      let expect = 500_000. *. float_of_int horizon /. Loadgen.Arrival.clock_hz in
      if float_of_int n < 0.85 *. expect || float_of_int n > 1.15 *. expect then
        Alcotest.failf "%s: %d arrivals, expected ~%.0f"
          (Loadgen.Arrival.shape_name shape)
          n expect)
    Loadgen.Arrival.[ Poisson_shape; Mmpp_shape; Diurnal_shape ]

let arrival_invalid () =
  List.iter
    (fun p ->
      Alcotest.check_raises "rejects bad params"
        (Invalid_argument
           (match p with
           | Loadgen.Arrival.Poisson _ ->
               "Arrival.generate: rate must be > 0"
           | Loadgen.Arrival.Mmpp _ ->
               "Arrival.generate: MMPP rates must be >= 0 and not both 0"
           | Loadgen.Arrival.Diurnal _ ->
               "Arrival.generate: need 0 <= rate_lo <= rate_hi"))
        (fun () ->
          ignore (Loadgen.Arrival.generate ~seed:1 ~horizon:1000 p)))
    [
      Loadgen.Arrival.Poisson { rate = 0. };
      Loadgen.Arrival.Mmpp
        { rate_on = 0.; rate_off = 0.; mean_on = 10.; mean_off = 10. };
      Loadgen.Arrival.Diurnal { rate_lo = 5.; rate_hi = 1.; period = 100. };
    ]

(* ---- admission control / determinism ---- *)

let summary (r : Loadgen.result) =
  ( r.Loadgen.arrivals,
    r.Loadgen.admitted,
    r.Loadgen.completions,
    r.Loadgen.shed_full,
    r.Loadgen.shed_degraded,
    r.Loadgen.slo_violations,
    r.Loadgen.max_depth,
    List.map (Stats.Histogram.percentile r.Loadgen.sojourn) [ 50.; 99.; 99.9 ] )

(* A saturating MMPP burst against a small bounded queue: must shed (not
   block), drain without deadlock, and do exactly the same thing twice. *)
let burst_sheds_deterministically () =
  let process =
    Loadgen.Arrival.shaped Loadgen.Arrival.Mmpp_shape ~rate:500_000.
      ~horizon:12_000_000
  in
  (* capacity 2 * 2.4e9 / 50k = 96k ops/s << 500k offered *)
  let run () =
    let eng = Sim.Engine.create () in
    let r =
      Loadgen.run eng
        (cfg ~process ~workers:2 ~queue_cap:16 ())
        (fun () -> fixed_backend ~svc:50_000L ())
    in
    drain_clean eng;
    (summary r, Sim.Engine.events eng, Sim.Engine.now eng)
  in
  let a = run () and b = run () in
  let (ar, _, comp, shed_full, _, _, maxq, _), _, _ = a in
  if shed_full = 0 then Alcotest.fail "saturating burst shed nothing";
  checki "queue never exceeds cap" 16 maxq;
  checki "admitted all served" (ar - shed_full) comp;
  if a <> b then Alcotest.fail "repeat run disagrees (nondeterministic)"

(* The driver's results are invariant to the engine's shard count. *)
let shard_invariance () =
  let process = Loadgen.Arrival.Poisson { rate = 200_000. } in
  let run shards =
    let eng = Sim.Engine.create ~shards () in
    let r =
      Loadgen.run eng (cfg ~process ()) (fun () -> fixed_backend ())
    in
    drain_clean eng;
    (summary r, Sim.Engine.events eng, Sim.Engine.now eng)
  in
  if run 1 <> run 4 then Alcotest.fail "shards 1 vs 4 disagree"

let slo_accounting () =
  let run slo_cycles =
    let eng = Sim.Engine.create () in
    Loadgen.run eng (cfg ~slo_cycles ()) (fun () -> fixed_backend ())
  in
  let lax = run 100_000_000 in
  checki "generous SLO: no violations" 0 lax.Loadgen.slo_violations;
  let strict = run 1 in
  checki "1-cycle SLO: every completion violates" strict.Loadgen.completions
    strict.Loadgen.slo_violations;
  let off = run 0 in
  checki "slo_cycles = 0 disables accounting" 0 off.Loadgen.slo_violations

(* The degraded knob: once the backend reports degraded, arrivals are
   shed at admission — deterministically — and served ones still finish. *)
let degraded_shedding () =
  let run () =
    let served = ref 0 in
    let eng = Sim.Engine.create () in
    let backend () =
      {
        Loadgen.name = "degrading";
        serve =
          (fun _ ->
            Sim.Engine.delay 10_000L;
            incr served);
        degraded = (fun () -> !served >= 5);
      }
    in
    let r = Loadgen.run eng (cfg ~shed_when_degraded:true ()) backend in
    drain_clean eng;
    r
  in
  let a = run () in
  if a.Loadgen.shed_degraded = 0 then
    Alcotest.fail "degraded backend shed nothing";
  if a.Loadgen.completions < 5 then
    Alcotest.fail "requests admitted before degradation must still finish";
  checki "degraded shedding is deterministic"
    a.Loadgen.shed_degraded (run ()).Loadgen.shed_degraded;
  (* knob off: same backend, nothing shed for degradation *)
  let served = ref 0 in
  let eng = Sim.Engine.create () in
  let r =
    Loadgen.run eng
      (cfg ~shed_when_degraded:false ())
      (fun () ->
        {
          Loadgen.name = "degrading";
          serve =
            (fun _ ->
              Sim.Engine.delay 10_000L;
              incr served);
          degraded = (fun () -> !served >= 5);
        })
  in
  checki "knob off: no degraded shedding" 0 r.Loadgen.shed_degraded

(* The open-loop mechanism itself produces the hockey stick: p99 sojourn
   under 4x overload dwarfs p99 at 10% utilization on the same backend. *)
let hockey_stick_mechanism () =
  let p99 rate =
    let eng = Sim.Engine.create () in
    let r =
      Loadgen.run eng
        (cfg
           ~process:(Loadgen.Arrival.Poisson { rate })
           ~workers:1 ~queue_cap:256 ())
        (fun () -> fixed_backend ~svc:10_000L ())
    in
    Int64.to_float (Stats.Histogram.percentile r.Loadgen.sojourn 99.)
  in
  (* capacity = 240k ops/s at svc 10k cycles *)
  let light = p99 24_000. and overload = p99 960_000. in
  if overload < 10. *. light then
    Alcotest.failf "no hockey stick: p99 %.0f at 10%% load, %.0f at 4x" light
      overload

(* ---- pow2 quantile (Metrics.Registry.quantile) ---- *)

let registry_quantile_exact () =
  Metrics.Registry.reset ();
  let h = Metrics.Registry.histogram "test_loadgen_q" in
  for _ = 1 to 20 do
    Metrics.Registry.observe h 1000
  done;
  let s =
    List.find
      (fun s -> s.Metrics.Registry.s_name = "test_loadgen_q")
      (Metrics.Registry.snapshot ())
  in
  (* 1000 lands in bucket 9 (512..1023): every quantile reports 1023 *)
  checki "p50" 1023 (Metrics.Registry.quantile s 50.);
  checki "p999" 1023 (Metrics.Registry.quantile s 99.9);
  Metrics.Registry.reset ();
  let s0 =
    List.find
      (fun s -> s.Metrics.Registry.s_name = "test_loadgen_q")
      (Metrics.Registry.snapshot ())
  in
  checki "empty sample" 0 (Metrics.Registry.quantile s0 99.)

let registry_quantile_vs_histogram =
  QCheck.Test.make
    ~name:"Registry.quantile agrees with Histogram.percentile (pow2 coarse)"
    ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 1 1_000_000))
    (fun samples ->
      samples = []
      ||
      begin
      Metrics.Registry.reset ();
      let hc = Metrics.Registry.histogram "test_loadgen_q" in
      let hist = Stats.Histogram.create () in
      List.iter
        (fun v ->
          Metrics.Registry.observe hc v;
          Stats.Histogram.record hist (Int64.of_int v))
        samples;
      let s =
        List.find
          (fun s -> s.Metrics.Registry.s_name = "test_loadgen_q")
          (Metrics.Registry.snapshot ())
      in
      let sorted = Array.of_list (List.sort compare samples) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let rank =
            min (n - 1)
              (max 0 (int_of_float (ceil (float_of_int n *. p /. 100.)) - 1))
          in
          let exact = sorted.(rank) in
          let q = Metrics.Registry.quantile s p in
          let h = Int64.to_int (Stats.Histogram.percentile hist p) in
          (* both are quantile-at-least over the same data: neither may
             undershoot the exact order statistic, the pow2 estimate may
             overshoot by at most its bucket (2x), the 1/32 estimate sits
             below it plus a bucket *)
          q >= exact && q <= (2 * sorted.(n - 1)) + 1 && h <= q * 2)
        [ 50.; 90.; 99.; 99.9 ]
      end)

(* Loadgen's own metrics: sojourn histogram + counters land in the
   registry, and the pow2 p99 bounds the precise histogram p99. *)
let loadgen_metrics_cross_check () =
  Metrics.Registry.reset ();
  let eng = Sim.Engine.create () in
  let r = Loadgen.run eng (cfg ~slo_cycles:1 ()) (fun () -> fixed_backend ()) in
  checki "completions counter"
    r.Loadgen.completions
    (Metrics.Registry.value "loadgen_completions_total");
  checki "arrivals counter" r.Loadgen.arrivals
    (Metrics.Registry.value "loadgen_arrivals_total");
  checki "slo counter" r.Loadgen.slo_violations
    (Metrics.Registry.value "loadgen_slo_violations_total");
  (* earlier tests registered sojourn series for other backend labels;
     reset () keeps them in the snapshot at zero, so pick the live one *)
  let s =
    List.find
      (fun s ->
        s.Metrics.Registry.s_name = "loadgen_sojourn_cycles"
        && s.Metrics.Registry.s_count > 0)
      (Metrics.Registry.snapshot ())
  in
  checki "sojourn sample count" r.Loadgen.completions
    s.Metrics.Registry.s_count;
  let q = Metrics.Registry.quantile s 99. in
  let h = Int64.to_int (Stats.Histogram.percentile r.Loadgen.sojourn 99.) in
  if not (q >= h && q <= 2 * h) then
    Alcotest.failf "pow2 p99 %d does not bracket histogram p99 %d" q h

let () =
  Alcotest.run "loadgen"
    [
      ( "arrival",
        [
          QCheck_alcotest.to_alcotest arrival_purity;
          Alcotest.test_case "mean rate honoured" `Quick arrival_mean_rate;
          Alcotest.test_case "invalid params rejected" `Quick arrival_invalid;
        ] );
      ( "admission",
        [
          Alcotest.test_case "saturating burst sheds, no deadlock" `Quick
            burst_sheds_deterministically;
          Alcotest.test_case "shard invariance" `Quick shard_invariance;
          Alcotest.test_case "SLO accounting" `Quick slo_accounting;
          Alcotest.test_case "degraded-mode shedding" `Quick degraded_shedding;
          Alcotest.test_case "hockey-stick mechanism" `Quick
            hockey_stick_mechanism;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "pow2 quantile exact buckets" `Quick
            registry_quantile_exact;
          QCheck_alcotest.to_alcotest registry_quantile_vs_histogram;
          Alcotest.test_case "loadgen metrics cross-check" `Quick
            loadgen_metrics_cross_check;
        ] );
    ]
