(* Tests for the always-on metrics registry (lib/metrics): registration
   semantics, snapshot merging across domains, exporter formats, the
   virtual-time sampling profiler's grid math, and the wiring through
   the engine. *)

let checki = Alcotest.(check int)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every test starts from a zeroed registry.  Families persist for the
   process lifetime by design, so tests use distinct family names. *)
let fresh () = Metrics.Registry.reset ()

(* ---- registry ----------------------------------------------------- *)

let counter_basics () =
  fresh ();
  let c = Metrics.Registry.counter ~help:"h" "t_counter_basics" in
  Metrics.Registry.incr c;
  Metrics.Registry.add c 41;
  checki "local value" 42 (Metrics.Registry.get c);
  checki "merged value" 42 (Metrics.Registry.value "t_counter_basics");
  Metrics.Registry.reset ();
  checki "reset zeroes" 0 (Metrics.Registry.value "t_counter_basics");
  Metrics.Registry.incr c;
  checki "cell survives reset" 1 (Metrics.Registry.value "t_counter_basics")

let label_canonicalization () =
  fresh ();
  let a =
    Metrics.Registry.counter
      ~labels:[ ("x", "1"); ("y", "2") ]
      "t_label_canon"
  in
  (* same series, label order reversed: must bind the same slot *)
  let b =
    Metrics.Registry.counter
      ~labels:[ ("y", "2"); ("x", "1") ]
      "t_label_canon"
  in
  Metrics.Registry.incr a;
  Metrics.Registry.incr b;
  checki "one series" 2
    (Metrics.Registry.value ~labels:[ ("x", "1"); ("y", "2") ] "t_label_canon");
  (* a different value combination is its own series *)
  let c =
    Metrics.Registry.counter
      ~labels:[ ("x", "1"); ("y", "3") ]
      "t_label_canon"
  in
  Metrics.Registry.incr c;
  checki "family sums series" 3 (Metrics.Registry.value "t_label_canon")

let registration_clashes () =
  fresh ();
  ignore (Metrics.Registry.counter "t_clash_kind");
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Metrics: family \"t_clash_kind\" re-registered with another kind")
    (fun () -> ignore (Metrics.Registry.gauge "t_clash_kind"));
  ignore (Metrics.Registry.counter ~labels:[ ("a", "1") ] "t_clash_labels");
  Alcotest.(check bool) "label-name clash" true
    (try
       ignore (Metrics.Registry.counter ~labels:[ ("b", "1") ] "t_clash_labels");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad name rejected" true
    (try
       ignore (Metrics.Registry.counter "bad name!");
       false
     with Invalid_argument _ -> true)

let histogram_buckets () =
  fresh ();
  let h = Metrics.Registry.histogram "t_histo" in
  List.iter (Metrics.Registry.observe h) [ 0; 1; 5; 1024; -3 ];
  let s =
    List.find
      (fun (s : Metrics.Registry.sample) -> s.s_name = "t_histo")
      (Metrics.Registry.snapshot ())
  in
  checki "count" 5 s.Metrics.Registry.s_count;
  checki "sum" 1030 s.Metrics.Registry.s_value (* -3 clamps to 0 *);
  (* v <= 1 -> bucket 0; 4 <= 5 < 8 -> bucket 2; 1024 = 2^10 -> bucket 10 *)
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (0, 3); (2, 1); (10, 1) ]
    s.Metrics.Registry.s_buckets

let multi_domain_merge () =
  fresh ();
  let work () =
    (* bind on the running domain — cells are domain-local by design *)
    let c = Metrics.Registry.counter "t_domains" in
    for _ = 1 to 1000 do
      Metrics.Registry.incr c
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  Domain.join d1;
  Domain.join d2;
  work ();
  (* stores of joined domains are retained and merged *)
  checki "summed across domains" 3000 (Metrics.Registry.value "t_domains")

(* ---- exporters ---------------------------------------------------- *)

let csv_field_escaping () =
  let f = Metrics.Export.csv_field in
  Alcotest.(check string) "plain untouched" "abc" (f "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (f "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (f "a\"b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (f "a\nb");
  Alcotest.(check string) "empty untouched" "" (f "")

let exporter_formats () =
  fresh ();
  let c =
    Metrics.Registry.counter ~help:"says \"hi\""
      ~labels:[ ("dev", "nvme0") ]
      "t_export_counter"
  in
  Metrics.Registry.add c 7;
  let h = Metrics.Registry.histogram "t_export_histo" in
  Metrics.Registry.observe h 5;
  let samples =
    List.filter
      (fun (s : Metrics.Registry.sample) ->
        contains ~needle:"t_export" s.Metrics.Registry.s_name)
      (Metrics.Registry.snapshot ())
  in
  let pairs = Metrics.Export.flat_pairs samples in
  Alcotest.(check (list (pair string int)))
    "flat pairs"
    [
      ("t_export_counter{dev=nvme0}", 7);
      ("t_export_histo_count", 1);
      ("t_export_histo_sum", 5);
    ]
    pairs;
  let json = Metrics.Export.json samples in
  Alcotest.(check bool) "json has labelled key" true
    (contains ~needle:"\"t_export_counter{dev=nvme0}\": 7" json);
  let prom = Metrics.Export.prometheus samples in
  Alcotest.(check bool) "prom help escaped" true
    (contains ~needle:"# HELP t_export_counter says \\\"hi\\\"" prom);
  Alcotest.(check bool) "prom type line" true
    (contains ~needle:"# TYPE t_export_histo histogram" prom);
  (* 4 <= 5 < 8 lands in exponent-2, cumulative le = 2^3 - 1 = 7 *)
  Alcotest.(check bool) "prom cumulative bucket" true
    (contains ~needle:"t_export_histo_bucket{le=\"7\"} 1" prom);
  Alcotest.(check bool) "prom +Inf bucket" true
    (contains ~needle:"t_export_histo_bucket{le=\"+Inf\"} 1" prom)

(* ---- profiler ----------------------------------------------------- *)

let profiler_grid_math () =
  fresh ();
  Metrics.Profile.start ~period:10 ();
  Alcotest.(check bool) "on" true (Metrics.Profile.on ());
  (* (0, 25] crosses grid points 10 and 20 -> 2 samples *)
  Metrics.Profile.charge ~now:0 ~cycles:25 ~fiber:"f" ~label:"a";
  (* (25, 30] crosses 30 -> 1 sample *)
  Metrics.Profile.charge ~now:25 ~cycles:5 ~fiber:"f" ~label:"b";
  (* (30, 39] crosses nothing *)
  Metrics.Profile.charge ~now:30 ~cycles:9 ~fiber:"f" ~label:"c";
  Metrics.Profile.stop ();
  Alcotest.(check bool) "off" false (Metrics.Profile.on ());
  Alcotest.(check string) "folded stacks" "f;a 2\nf;b 1\n"
    (Metrics.Profile.folded ());
  (* stop is idempotent and a restart samples again (the stopped
     profiler stays in domain-local storage for reading, so the
     start/stop accounting must not key off the slot's presence) *)
  Metrics.Profile.stop ();
  Metrics.Profile.start ~period:10 ();
  Alcotest.(check bool) "restarted" true (Metrics.Profile.on ());
  Metrics.Profile.charge ~now:0 ~cycles:10 ~fiber:"g" ~label:"z";
  Metrics.Profile.stop ();
  Alcotest.(check string) "fresh profile" "g;z 1\n" (Metrics.Profile.folded ())

let profiler_engine_integration () =
  fresh ();
  let run () =
    Metrics.Registry.reset ();
    Metrics.Profile.start ~period:1000 ();
    let eng = Sim.Engine.create () in
    for i = 0 to 3 do
      ignore
        (Sim.Engine.spawn eng ~name:(Printf.sprintf "w%d" i) ~core:i (fun () ->
             (* 700+500 = 1200-cycle period, coprime with the 1000-cycle
                sampling grid, so grid points land on both span kinds *)
             for _ = 1 to 50 do
               Sim.Engine.delay ~label:"work" 700L;
               Sim.Engine.idle_wait 500L
             done))
    done;
    Sim.Engine.run eng;
    Metrics.Profile.stop ();
    (Metrics.Profile.folded (), Metrics.Registry.value "engine_events")
  in
  let f1, ev1 = run () in
  let f2, ev2 = run () in
  Alcotest.(check string) "folded deterministic" f1 f2;
  checki "event counts agree" ev1 ev2;
  Alcotest.(check bool) "events counted" true (ev1 > 0);
  Alcotest.(check bool) "work label attributed" true
    (contains ~needle:";work " f1);
  Alcotest.(check bool) "idle attributed" true (contains ~needle:";idle " f1)

(* ---- engine wiring ------------------------------------------------ *)

let blocked_report_events () =
  Metrics.Registry.reset ();
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~name:"stuck" (fun () ->
         Sim.Engine.delay 100L;
         Sim.Engine.delay 100L;
         Sim.Engine.suspend (fun _resume -> ())));
  Sim.Engine.run eng;
  checki "deadlocked" 1 (Sim.Engine.live_fibers eng);
  let report = Sim.Engine.blocked_report eng in
  (* the initial spawn event + two delay wake-ups = 3 events executed
     before parking (the suspend's resume never fires) *)
  Alcotest.(check bool) "events progress shown" true
    (contains ~needle:"events=3" report);
  Alcotest.(check bool) "names the fiber" true
    (contains ~needle:"\"stuck\"" report)

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick counter_basics;
          Alcotest.test_case "label canonicalization" `Quick
            label_canonicalization;
          Alcotest.test_case "registration clashes" `Quick registration_clashes;
          Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
          Alcotest.test_case "multi-domain merge" `Quick multi_domain_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv field escaping" `Quick csv_field_escaping;
          Alcotest.test_case "exporter formats" `Quick exporter_formats;
        ] );
      ( "profile",
        [
          Alcotest.test_case "grid math" `Quick profiler_grid_math;
          Alcotest.test_case "engine integration" `Quick
            profiler_engine_integration;
        ] );
      ( "engine",
        [
          Alcotest.test_case "blocked_report events" `Quick
            blocked_report_events;
        ] );
    ]
