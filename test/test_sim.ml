(* Tests for the discrete-event simulation engine (lib/sim). *)

let check = Alcotest.check
let checki = Alcotest.(check int)
let check64 msg a b = Alcotest.(check int64) msg a b

(* ---- Pqueue ---- *)

let pqueue_order () =
  let q = Sim.Pqueue.create () in
  Sim.Pqueue.push q ~time:30 ~seq:1 "c";
  Sim.Pqueue.push q ~time:10 ~seq:2 "a";
  Sim.Pqueue.push q ~time:20 ~seq:3 "b";
  let pop () = match Sim.Pqueue.pop q with Some (_, _, v) -> v | None -> "?" in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Sim.Pqueue.is_empty q)

let pqueue_fifo_ties () =
  let q = Sim.Pqueue.create () in
  for i = 0 to 9 do
    Sim.Pqueue.push q ~time:5 ~seq:i i
  done;
  for i = 0 to 9 do
    match Sim.Pqueue.pop q with
    | Some (_, _, v) -> checki (Printf.sprintf "tie %d" i) i v
    | None -> Alcotest.fail "queue drained early"
  done

let pqueue_min_time_and_pop_if_before () =
  let popped = Alcotest.(option (pair int string)) in
  let strip = Option.map (fun (t, _, v) -> (t, v)) in
  let q = Sim.Pqueue.create () in
  checki "empty min_time is max_int" max_int (Sim.Pqueue.min_time q);
  check popped "pop_if_before on empty" None
    (strip (Sim.Pqueue.pop_if_before q ~time:100));
  Sim.Pqueue.push q ~time:50 ~seq:0 "a";
  Sim.Pqueue.push q ~time:20 ~seq:1 "b";
  checki "min_time is head" 20 (Sim.Pqueue.min_time q);
  check popped "head not strictly before 20" None
    (strip (Sim.Pqueue.pop_if_before q ~time:20));
  check popped "head before 21"
    (Some (20, "b"))
    (strip (Sim.Pqueue.pop_if_before q ~time:21));
  checki "next head" 50 (Sim.Pqueue.min_time q);
  check Alcotest.string "pop_min" "a" (Sim.Pqueue.pop_min q);
  Alcotest.check_raises "pop_min on empty"
    (Invalid_argument "Pqueue.pop_min: empty queue") (fun () ->
      ignore (Sim.Pqueue.pop_min q))

let pqueue_prop =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing (time, seq) order"
    ~count:200
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun pairs ->
      let q = Sim.Pqueue.create () in
      List.iteri (fun seq (t, v) -> Sim.Pqueue.push q ~time:t ~seq v) pairs;
      let rec drain last acc =
        match Sim.Pqueue.pop q with
        | None -> List.rev acc
        | Some (t, s, _) ->
            if compare last (t, s) > 0 then raise Exit;
            drain (t, s) ((t, s) :: acc)
      in
      match drain (-1, -1) [] with
      | l -> List.length l = List.length pairs
      | exception Exit -> false)

let pqueue_vs_reference =
  (* Interleaved pushes and pops against a sorted-list reference model:
     the heap must return exactly the reference's (time, seq, value)
     sequence, including FIFO order on time ties. *)
  QCheck.Test.make ~name:"pqueue matches sorted reference model" ~count:100
    QCheck.(list (pair (int_bound 100) bool))
    (fun script ->
      let q = Sim.Pqueue.create () in
      let model = ref [] in
      (* sorted by (time, seq) *)
      let seq = ref 0 in
      let insert (t, s, v) =
        let rec go = function
          | [] -> [ (t, s, v) ]
          | ((t', s', _) as hd) :: tl ->
              if (t, s) < (t', s') then (t, s, v) :: hd :: tl else hd :: go tl
        in
        model := go !model
      in
      List.for_all
        (fun (t, is_pop) ->
          if is_pop then
            match (Sim.Pqueue.pop q, !model) with
            | None, [] -> true
            | Some got, expect :: tl ->
                model := tl;
                got = expect
            | _ -> false
          else begin
            incr seq;
            Sim.Pqueue.push q ~time:t ~seq:!seq !seq;
            insert (t, !seq, !seq);
            true
          end)
        script
      &&
      let rec drain () =
        match (Sim.Pqueue.pop q, !model) with
        | None, [] -> true
        | Some got, expect :: tl ->
            model := tl;
            got = expect && drain ()
        | _ -> false
      in
      drain ())

let pqueue_peek_payload_and_pop_into () =
  let q = Sim.Pqueue.create () in
  Alcotest.check_raises "peek_payload on empty"
    (Invalid_argument "Pqueue.peek_payload: empty queue") (fun () ->
      ignore (Sim.Pqueue.peek_payload q));
  let sl = Sim.Pqueue.slot ~dummy:"-" in
  Alcotest.(check bool) "pop_into on empty" false
    (Sim.Pqueue.pop_into q sl ~before:max_int);
  Sim.Pqueue.push q ~time:40 ~seq:0 "b";
  Sim.Pqueue.push q ~time:10 ~seq:1 "a";
  check Alcotest.string "peek_payload sees min" "a" (Sim.Pqueue.peek_payload q);
  checki "peek does not pop" 2 (Sim.Pqueue.length q);
  Alcotest.(check bool) "head not strictly before 10" false
    (Sim.Pqueue.pop_into q sl ~before:10);
  Alcotest.(check bool) "head before 11" true
    (Sim.Pqueue.pop_into q sl ~before:11);
  checki "slot time" 10 sl.Sim.Pqueue.s_time;
  checki "slot seq" 1 sl.Sim.Pqueue.s_seq;
  check Alcotest.string "slot value" "a" sl.Sim.Pqueue.s_val;
  Alcotest.(check bool) "slot reused" true
    (Sim.Pqueue.pop_into q sl ~before:max_int);
  checki "reused slot time" 40 sl.Sim.Pqueue.s_time;
  check Alcotest.string "reused slot value" "b" sl.Sim.Pqueue.s_val;
  Alcotest.(check bool) "drained" true (Sim.Pqueue.is_empty q)

let pqueue_pop_into_matches_pop_if_before =
  (* pop_if_before is documented as a thin wrapper over the same bound
     check pop_into performs; both views of one queue must agree on
     every (time, seq, value, accepted?) outcome. *)
  QCheck.Test.make ~name:"pqueue pop_into agrees with pop_if_before" ~count:200
    QCheck.(list (pair (int_bound 100) (int_bound 100)))
    (fun script ->
      let a = Sim.Pqueue.create () and b = Sim.Pqueue.create () in
      let sl = Sim.Pqueue.slot ~dummy:(-1) in
      List.for_all
        (fun (t, bound) ->
          Sim.Pqueue.push a ~time:t ~seq:t t;
          Sim.Pqueue.push b ~time:t ~seq:t t;
          let hit = Sim.Pqueue.pop_into a sl ~before:bound in
          match (hit, Sim.Pqueue.pop_if_before b ~time:bound) with
          | false, None -> true
          | true, Some (t', s', v') ->
              sl.Sim.Pqueue.s_time = t' && sl.Sim.Pqueue.s_seq = s'
              && sl.Sim.Pqueue.s_val = v'
          | _ -> false)
        script
      && Sim.Pqueue.length a = Sim.Pqueue.length b)

(* ---- Rng ---- *)

let rng_deterministic () =
  let a = Sim.Rng.create 7 and b = Sim.Rng.create 7 in
  for _ = 1 to 100 do
    check64 "same stream" (Sim.Rng.next64 a) (Sim.Rng.next64 b)
  done

let rng_split_independent () =
  let a = Sim.Rng.create 7 in
  let c = Sim.Rng.split a in
  Alcotest.(check bool) "split differs" true (Sim.Rng.next64 a <> Sim.Rng.next64 c)

let rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair (int_range 1 1000000) small_int)
    (fun (bound, seed) ->
      let r = Sim.Rng.create seed in
      let v = Sim.Rng.int r bound in
      v >= 0 && v < bound)

(* ---- Engine ---- *)

let engine_delay_advances_clock () =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng (fun () -> Sim.Engine.delay 100L));
  Sim.Engine.run eng;
  check64 "clock" 100L (Sim.Engine.now eng)

let engine_accounting () =
  let eng = Sim.Engine.create () in
  let ctx =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.delay ~cat:Sim.Engine.User 50L;
        Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"fault" 70L;
        Sim.Engine.idle_wait 30L)
  in
  Sim.Engine.run eng;
  checki "user" 50 ctx.Sim.Engine.user;
  checki "sys" 70 ctx.Sim.Engine.sys;
  checki "idle" 30 ctx.Sim.Engine.idle;
  check64 "label" 70L (Sim.Engine.label_get ctx "fault");
  check64 "absent label" 0L (Sim.Engine.label_get ctx "nope");
  Alcotest.(check (list (pair string int64)))
    "labels list" [ ("fault", 70L) ] (Sim.Engine.labels ctx);
  check64 "total time" 150L (Sim.Engine.now eng)

let engine_parallel_fibers_overlap () =
  (* Two fibers each delaying 100 cycles run concurrently in virtual time. *)
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~core:0 (fun () -> Sim.Engine.delay 100L));
  ignore (Sim.Engine.spawn eng ~core:1 (fun () -> Sim.Engine.delay 100L));
  Sim.Engine.run eng;
  check64 "overlapped" 100L (Sim.Engine.now eng)

let engine_suspend_resume () =
  let eng = Sim.Engine.create () in
  let resume_cell = ref None in
  let woken = ref false in
  ignore
    (Sim.Engine.spawn eng ~name:"waiter" (fun () ->
         Sim.Engine.suspend (fun resume -> resume_cell := Some resume);
         woken := true));
  ignore
    (Sim.Engine.spawn eng ~name:"waker" (fun () ->
         Sim.Engine.delay 500L;
         match !resume_cell with Some r -> r () | None -> Alcotest.fail "not registered"));
  Sim.Engine.run eng;
  Alcotest.(check bool) "woken" true !woken;
  checki "no stuck fibers" 0 (Sim.Engine.live_fibers eng)

let engine_idle_accounted_on_suspend () =
  let eng = Sim.Engine.create () in
  let resume_cell = ref None in
  let ctx =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.suspend (fun resume -> resume_cell := Some resume))
  in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 400L;
         Option.get !resume_cell ()));
  Sim.Engine.run eng;
  checki "idle = blocked time" 400 ctx.Sim.Engine.idle

let engine_double_resume_rejected () =
  let eng = Sim.Engine.create () in
  let resume_cell = ref None in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.suspend (fun resume -> resume_cell := Some resume)));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 10L;
         let r = Option.get !resume_cell in
         r ();
         Alcotest.check_raises "second resume raises"
           (Invalid_argument "fiber fiber: resumed twice") (fun () -> r ())));
  Sim.Engine.run eng

let engine_deterministic () =
  let trace seed =
    let eng = Sim.Engine.create ~seed () in
    let log = Buffer.create 64 in
    for i = 0 to 4 do
      ignore
        (Sim.Engine.spawn eng ~core:i (fun () ->
             Sim.Engine.delay (Int64.of_int (Sim.Rng.int (Sim.Engine.rng eng) 100));
             Buffer.add_string log (Printf.sprintf "%d@%Ld;" i (Sim.Engine.now_f ()))))
    done;
    Sim.Engine.run eng;
    Buffer.contents log
  in
  check Alcotest.string "same trace" (trace 3) (trace 3)

let engine_blocked_fibers_reports_deadlock () =
  (* Two fibers park forever on suspend; the engine drains its runnable
     queue and [blocked_fibers] names who is stuck, for deadlock triage. *)
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~name:"stuck-a" ~core:0 (fun () ->
         Sim.Engine.suspend (fun _resume -> ())));
  ignore
    (Sim.Engine.spawn eng ~name:"stuck-b" ~core:2 (fun () ->
         Sim.Engine.delay 10L;
         Sim.Engine.suspend (fun _resume -> ())));
  ignore (Sim.Engine.spawn eng ~name:"fine" (fun () -> Sim.Engine.delay 5L));
  Sim.Engine.run eng;
  checki "two stuck" 2 (Sim.Engine.live_fibers eng);
  Alcotest.(check (list (pair int string)))
    "who and where"
    [ (0, "stuck-a"); (2, "stuck-b") ]
    (Sim.Engine.blocked_fibers eng)

let engine_blocked_report_breaks_down_costs () =
  (* The deadlock report names each parked fiber and itemizes where its
     cycles went, so a fiber stuck after fault-injection retries
     ("io_retry" cycles) reads differently from one waiting on a lock. *)
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~name:"retrier" ~core:1 (fun () ->
         Sim.Engine.delay ~label:"io_retry" 40_000L;
         Sim.Engine.suspend (fun _resume -> ())));
  ignore (Sim.Engine.spawn eng ~name:"fine" (fun () -> Sim.Engine.delay 5L));
  Sim.Engine.run eng;
  let report = Sim.Engine.blocked_report eng in
  let contains sub =
    let n = String.length sub and m = String.length report in
    let rec go i = i + n <= m && (String.sub report i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counts the stuck fibers" true
    (contains "1 fiber(s) blocked");
  Alcotest.(check bool) "names the fiber" true (contains "\"retrier\"");
  Alcotest.(check bool) "itemizes its labels" true (contains "io_retry");
  Alcotest.(check bool) "finished fiber absent" true (not (contains "fine"))

let engine_fastpath_matches_queued () =
  (* The delay fast path must be invisible: same seed with the fast path
     on and off gives identical event counts, final times, per-fiber
     accounting and interleaving. *)
  let run fastpath =
    let eng = Sim.Engine.create ~seed:11 ~fastpath () in
    let log = Buffer.create 256 in
    let ctxs =
      List.init 3 (fun i ->
          Sim.Engine.spawn eng ~core:i (fun () ->
              let rng = Sim.Engine.rng eng in
              for _ = 1 to 50 do
                Sim.Engine.delay ~label:"work"
                  (Int64.of_int (1 + Sim.Rng.int rng 40));
                if Sim.Rng.int rng 4 = 0 then Sim.Engine.idle_wait 25L;
                Buffer.add_string log
                  (Printf.sprintf "%d@%Ld;" i (Sim.Engine.now_f ()))
              done))
    in
    Sim.Engine.run eng;
    let acct =
      List.map
        (fun c ->
          (c.Sim.Engine.user, c.Sim.Engine.idle, Sim.Engine.label_get c "work"))
        ctxs
    in
    (Sim.Engine.events eng, Sim.Engine.now eng, Buffer.contents log, acct)
  in
  let e1, t1, l1, a1 = run true and e2, t2, l2, a2 = run false in
  checki "same event count" e2 e1;
  check64 "same final time" t2 t1;
  check Alcotest.string "same interleaving" l2 l1;
  Alcotest.(check bool) "same accounting" true (a1 = a2)

let engine_post_and_run_until () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.post eng ~core:3 ~at:200L (fun () -> log := 200 :: !log);
  Sim.Engine.post eng ~core:0 ~at:50L (fun () -> log := 50 :: !log);
  Sim.Engine.post eng ~core:1 ~at:500L (fun () -> log := 500 :: !log);
  checki "next_time sees earliest post" 50 (Sim.Engine.next_time eng);
  Sim.Engine.run_until eng ~horizon:201;
  (* horizon is exclusive: 50 and 200 ran, 500 is still pending *)
  Alcotest.(check (list int)) "events strictly before horizon" [ 50; 200 ]
    (List.rev !log);
  check64 "clock at last executed" 200L (Sim.Engine.now eng);
  checki "remainder pending" 500 (Sim.Engine.next_time eng);
  Sim.Engine.run_until eng ~horizon:500;
  Alcotest.(check (list int)) "boundary event excluded" [ 50; 200 ]
    (List.rev !log);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "run drains the rest" [ 50; 200; 500 ]
    (List.rev !log);
  checki "next_time on empty" max_int (Sim.Engine.next_time eng)

let engine_shard_routing () =
  let eng = Sim.Engine.create ~shards:4 () in
  checki "n_shards" 4 (Sim.Engine.n_shards eng);
  checki "core 6 -> shard 2" 2 (Sim.Engine.shard_of_core eng 6);
  checki "negative core wraps" 3 (Sim.Engine.shard_of_core eng (-1));
  Alcotest.check_raises "shards < 1 rejected"
    (Invalid_argument "Engine.create: shards must be >= 1") (fun () ->
      ignore (Sim.Engine.create ~shards:0 ()));
  Alcotest.check_raises "default shards < 1 rejected"
    (Invalid_argument "Engine.set_default_shards: shards must be >= 1")
    (fun () -> Sim.Engine.set_default_shards 0);
  (* the ambient default (what --shards sets) feeds ?shards-less create *)
  Fun.protect
    ~finally:(fun () -> Sim.Engine.set_default_shards 1)
    (fun () ->
      Sim.Engine.set_default_shards 3;
      checki "create () picks up default" 3
        (Sim.Engine.n_shards (Sim.Engine.create ()));
      checki "explicit ?shards wins" 1
        (Sim.Engine.n_shards (Sim.Engine.create ~shards:1 ())));
  checki "default restored" 1 (Sim.Engine.n_shards (Sim.Engine.create ()))

(* A deliberately messy engine workload: per-core rng delays, idle
   waits, suspend/resume pairs and external posts.  Used to pin the
   sharded engine to the single-queue schedule. *)
let shardable_workload eng =
  let ncores = 6 in
  let log = Buffer.create 512 in
  let resume_cell = ref None in
  for core = 0 to ncores - 1 do
    ignore
      (Sim.Engine.spawn eng ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
           let rng = Sim.Rng.create (100 + core) in
           for op = 1 to 20 do
             Sim.Engine.delay ~label:"work"
               (Int64.of_int (1 + Sim.Rng.int rng 30));
             if Sim.Rng.int rng 5 = 0 then Sim.Engine.idle_wait 17L;
             if core = 0 && op = 5 then
               Sim.Engine.suspend (fun resume -> resume_cell := Some resume);
             if core = 1 && op = 10 then (
               match !resume_cell with Some r -> r () | None -> ());
             Buffer.add_string log
               (Printf.sprintf "%d.%d@%Ld;" core op (Sim.Engine.now_f ()))
           done))
  done;
  for i = 0 to 9 do
    Sim.Engine.post eng ~core:i
      ~at:(Int64.of_int (37 * (i + 1)))
      (fun () -> Buffer.add_string log (Printf.sprintf "p%d;" i))
  done;
  Sim.Engine.run eng;
  (Sim.Engine.events eng, Sim.Engine.now eng, Buffer.contents log)

let engine_sharding_transparent =
  (* The tentpole determinism contract at the engine layer: splitting
     the event queue into any number of statically-routed shard queues
     with a deterministic global (time, seq) merge must reproduce the
     single-queue schedule byte for byte — event count, final clock and
     full interleaving. *)
  QCheck.Test.make ~name:"engine sharding reproduces single-queue schedule"
    ~count:30
    QCheck.(int_range 2 8)
    (fun shards ->
      shardable_workload (Sim.Engine.create ~seed:9 ~shards:1 ())
      = shardable_workload (Sim.Engine.create ~seed:9 ~shards ()))

let engine_blocked_report_names_shard () =
  let eng = Sim.Engine.create ~shards:4 () in
  ignore
    (Sim.Engine.spawn eng ~name:"parked" ~core:6 (fun () ->
         Sim.Engine.suspend (fun _resume -> ())));
  Sim.Engine.run eng;
  let report = Sim.Engine.blocked_report eng in
  let contains sub =
    let n = String.length sub and m = String.length report in
    let rec go i = i + n <= m && (String.sub report i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "owning shard id in report" true
    (contains "core 6 shard 2")

(* ---- Shard (conservative PDES cluster) ---- *)

(* Mini cross-shard workload: every core runs rng-paced delays and
   sends a ring IPI to the next core every 4 ops.  Each core's event
   stream depends only on its own index, so all virtual-time outcomes
   are invariant across shard counts and execution modes. *)
let mini_cluster ~deterministic ~shards =
  let ncores = 6 and la = 1_000L in
  Sim.Shard.run ~deterministic ~shards ~lookahead:la (fun sh ->
      let n = Sim.Shard.shards sh in
      for core = 0 to ncores - 1 do
        if core mod n = Sim.Shard.sid sh then
          ignore
            (Sim.Engine.spawn (Sim.Shard.engine sh) ~core (fun () ->
                 let rng = Sim.Rng.create (500 + core) in
                 for op = 1 to 24 do
                   Sim.Engine.delay (Int64.of_int (1 + Sim.Rng.int rng 200));
                   if op mod 4 = 0 then begin
                     let target = (core + 1) mod ncores in
                     Sim.Shard.post sh ~to_:(target mod n)
                       ~at:(Int64.add (Sim.Engine.now_f ()) la)
                       (fun peer ->
                         ignore
                           (Sim.Engine.spawn (Sim.Shard.engine peer)
                              ~core:target (fun () ->
                                Sim.Engine.delay ~label:"ipi" 120L)))
                   end
                 done))
      done)

let shard_stats_key (s : Sim.Shard.stats) =
  (s.Sim.Shard.events, s.Sim.Shard.final_cycles, s.Sim.Shard.windows)

let shard_cluster_modes_agree =
  (* Satellite property: at any shard count, free-running domains and
     the deterministic single-domain replay reach identical terminal
     stats (including cross_posts — same partition), and every shard
     count reproduces the 1-shard virtual schedule. *)
  QCheck.Test.make ~name:"shard cluster: free == deterministic == 1-shard"
    ~count:12
    QCheck.(int_range 1 6)
    (fun shards ->
      let det = mini_cluster ~deterministic:true ~shards in
      let free = mini_cluster ~deterministic:false ~shards in
      let base = mini_cluster ~deterministic:true ~shards:1 in
      det.Sim.Shard.cross_posts = free.Sim.Shard.cross_posts
      && shard_stats_key det = shard_stats_key free
      && shard_stats_key det = shard_stats_key base)

let shard_post_enforces_lookahead () =
  (* A cross-shard post below now + lookahead breaks the conservative
     promise and must be rejected immediately; an intra-shard post at
     the same timestamp is fine. *)
  let saw = ref None in
  let stats =
    Sim.Shard.run ~deterministic:true ~shards:2 ~lookahead:1_000L (fun sh ->
        if Sim.Shard.sid sh = 0 then
          ignore
            (Sim.Engine.spawn (Sim.Shard.engine sh) ~core:0 (fun () ->
                 Sim.Engine.delay 10L;
                 Sim.Shard.post sh ~to_:0 ~at:500L (fun _ -> ());
                 (try Sim.Shard.post sh ~to_:1 ~at:500L (fun _ -> ())
                  with Invalid_argument m -> saw := Some m);
                 Sim.Shard.post sh ~to_:1 ~at:1_010L (fun _ -> ())))
        else
          ignore
            (Sim.Engine.spawn (Sim.Shard.engine sh) ~core:1 (fun () ->
                 Sim.Engine.delay 5L)))
  in
  Alcotest.(check bool) "violation raised" true (!saw <> None);
  checki "legal cross post delivered" 1 stats.Sim.Shard.cross_posts;
  Alcotest.check_raises "shards < 1 rejected"
    (Invalid_argument "Shard.run: shards must be >= 1") (fun () ->
      ignore (Sim.Shard.run ~shards:0 ~lookahead:1L (fun _ -> ())))

let sink_captures_and_restores () =
  let (), captured =
    Sim.Sink.capture (fun () ->
        Sim.Sink.printf "a=%d " 1;
        let (), inner = Sim.Sink.capture (fun () -> Sim.Sink.printf "inner") in
        check Alcotest.string "nested capture" "inner" inner;
        Sim.Sink.printf "b=%d" 2;
        Sim.Sink.print_newline ())
  in
  check Alcotest.string "outer capture" "a=1 b=2\n" captured

let engine_blocked_fibers_empty_when_clean () =
  let eng = Sim.Engine.create () in
  let resume_cell = ref None in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.suspend (fun resume -> resume_cell := Some resume)));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 100L;
         Option.get !resume_cell ()));
  Sim.Engine.run eng;
  Alcotest.(check (list (pair int string)))
    "nothing blocked after clean run" [] (Sim.Engine.blocked_fibers eng)

(* ---- Sync ---- *)

let mutex_excludes () =
  let eng = Sim.Engine.create () in
  let m = Sim.Sync.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 in
  for i = 0 to 3 do
    ignore
      (Sim.Engine.spawn eng ~core:i (fun () ->
           Sim.Sync.Mutex.lock m;
           incr inside;
           max_inside := max !max_inside !inside;
           Sim.Engine.delay 100L;
           decr inside;
           Sim.Sync.Mutex.unlock m))
  done;
  Sim.Engine.run eng;
  checki "mutual exclusion" 1 !max_inside;
  checki "acquisitions" 4 (Sim.Sync.Mutex.acquisitions m);
  Alcotest.(check bool) "contention recorded" true
    (Sim.Sync.Mutex.contended_cycles m > 0L)

let mutex_fifo () =
  let eng = Sim.Engine.create () in
  let m = Sim.Sync.Mutex.create () in
  let order = ref [] in
  for i = 0 to 3 do
    ignore
      (Sim.Engine.spawn eng ~core:i (fun () ->
           Sim.Engine.delay (Int64.of_int i);
           (* stagger arrivals *)
           Sim.Sync.Mutex.lock m;
           order := i :: !order;
           Sim.Engine.delay 50L;
           Sim.Sync.Mutex.unlock m))
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3 ] (List.rev !order)

let resource_capacity () =
  let eng = Sim.Engine.create () in
  let r = Sim.Sync.Resource.create ~capacity:2 () in
  let inside = ref 0 and max_inside = ref 0 in
  for i = 0 to 5 do
    ignore
      (Sim.Engine.spawn eng ~core:i (fun () ->
           Sim.Sync.Resource.acquire r;
           incr inside;
           max_inside := max !max_inside !inside;
           Sim.Engine.idle_wait 100L;
           decr inside;
           Sim.Sync.Resource.release r))
  done;
  Sim.Engine.run eng;
  checki "capacity bound" 2 !max_inside;
  (* 6 jobs, 2 at a time, 100 cycles each -> 300 cycles *)
  check64 "makespan" 300L (Sim.Engine.now eng)

let barrier_synchronizes_rounds () =
  let eng = Sim.Engine.create () in
  let b = Sim.Sync.Barrier.create ~parties:4 in
  let log = ref [] in
  for i = 0 to 3 do
    ignore
      (Sim.Engine.spawn eng ~core:i (fun () ->
           for round = 1 to 3 do
             Sim.Engine.delay (Int64.of_int ((i * 13) + 5));
             log := (round, i) :: !log;
             Sim.Sync.Barrier.await b
           done))
  done;
  Sim.Engine.run eng;
  (* every fiber finishes round r before any fiber starts round r+1 *)
  let rounds = List.rev_map fst !log in
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "rounds in order" true (monotone rounds);
  checki "all events" 12 (List.length !log);
  checki "barrier reset" 0 (Sim.Sync.Barrier.waiting b)

let ivar_blocks_until_filled () =
  let eng = Sim.Engine.create () in
  let iv = Sim.Sync.Ivar.create () in
  let got = ref 0 in
  ignore (Sim.Engine.spawn eng (fun () -> got := Sim.Sync.Ivar.read iv));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 200L;
         Sim.Sync.Ivar.fill iv 42));
  Sim.Engine.run eng;
  checki "value" 42 !got

let waitq_signal_broadcast () =
  let eng = Sim.Engine.create () in
  let q = Sim.Sync.Waitq.create () in
  let woke = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           Sim.Sync.Waitq.wait q;
           incr woke))
  done;
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 10L;
         Alcotest.(check bool) "signal one" true (Sim.Sync.Waitq.signal q);
         Sim.Engine.delay 10L;
         checki "broadcast rest" 2 (Sim.Sync.Waitq.broadcast q)));
  Sim.Engine.run eng;
  checki "all woke" 3 !woke

(* ---- Costbuf ---- *)

let costbuf_charges_once () =
  let eng = Sim.Engine.create () in
  let ctx =
    Sim.Engine.spawn eng (fun () ->
        let b = Sim.Costbuf.create () in
        Sim.Costbuf.add b "x" 30L;
        Sim.Costbuf.add b "y" 70L;
        Sim.Costbuf.add b "x" 10L;
        check64 "total" 110L (Sim.Costbuf.total b);
        Sim.Costbuf.charge b;
        check64 "reset" 0L (Sim.Costbuf.total b))
  in
  Sim.Engine.run eng;
  check64 "time" 110L (Sim.Engine.now eng);
  check64 "label x" 40L (Sim.Engine.label_get ctx "x");
  check64 "label y" 70L (Sim.Engine.label_get ctx "y")

let () =
  Alcotest.run "sim"
    [
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick pqueue_order;
          Alcotest.test_case "fifo on ties" `Quick pqueue_fifo_ties;
          Alcotest.test_case "min_time / pop_if_before" `Quick
            pqueue_min_time_and_pop_if_before;
          Alcotest.test_case "peek_payload / pop_into" `Quick
            pqueue_peek_payload_and_pop_into;
          QCheck_alcotest.to_alcotest pqueue_prop;
          QCheck_alcotest.to_alcotest pqueue_vs_reference;
          QCheck_alcotest.to_alcotest pqueue_pop_into_matches_pop_if_before;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "split" `Quick rng_split_independent;
          QCheck_alcotest.to_alcotest rng_bounds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay advances clock" `Quick engine_delay_advances_clock;
          Alcotest.test_case "accounting" `Quick engine_accounting;
          Alcotest.test_case "parallel overlap" `Quick engine_parallel_fibers_overlap;
          Alcotest.test_case "suspend/resume" `Quick engine_suspend_resume;
          Alcotest.test_case "idle on suspend" `Quick engine_idle_accounted_on_suspend;
          Alcotest.test_case "double resume" `Quick engine_double_resume_rejected;
          Alcotest.test_case "deterministic" `Quick engine_deterministic;
          Alcotest.test_case "fastpath invisible" `Quick
            engine_fastpath_matches_queued;
          Alcotest.test_case "blocked fibers named" `Quick
            engine_blocked_fibers_reports_deadlock;
          Alcotest.test_case "blocked fibers empty" `Quick
            engine_blocked_fibers_empty_when_clean;
          Alcotest.test_case "blocked report breakdown" `Quick
            engine_blocked_report_breaks_down_costs;
          Alcotest.test_case "post / run_until horizon" `Quick
            engine_post_and_run_until;
          Alcotest.test_case "shard routing" `Quick engine_shard_routing;
          QCheck_alcotest.to_alcotest engine_sharding_transparent;
          Alcotest.test_case "blocked report names shard" `Quick
            engine_blocked_report_names_shard;
        ] );
      ( "shard",
        [
          QCheck_alcotest.to_alcotest shard_cluster_modes_agree;
          Alcotest.test_case "lookahead enforced" `Quick
            shard_post_enforces_lookahead;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mutex excludes" `Quick mutex_excludes;
          Alcotest.test_case "mutex fifo" `Quick mutex_fifo;
          Alcotest.test_case "resource capacity" `Quick resource_capacity;
          Alcotest.test_case "barrier" `Quick barrier_synchronizes_rounds;
          Alcotest.test_case "ivar" `Quick ivar_blocks_until_filled;
          Alcotest.test_case "waitq" `Quick waitq_signal_broadcast;
        ] );
      ("costbuf", [ Alcotest.test_case "labels and charge" `Quick costbuf_charges_once ]);
      ("sink", [ Alcotest.test_case "capture" `Quick sink_captures_and_restores ]);
    ]
