(* Tests for Aquila's DRAM cache stack (lib/mcache). *)

let psz = Hw.Defs.page_size
let c = Hw.Costs.default
let checki = Alcotest.(check int)

(* ---- Pagekey ---- *)

let pagekey_roundtrip =
  QCheck.Test.make ~name:"pagekey pack/unpack roundtrip" ~count:500
    QCheck.(pair (int_bound 100000) (int_bound 1000000))
    (fun (file, page) ->
      let k = Mcache.Pagekey.make ~file ~page in
      Mcache.Pagekey.file_of k = file && Mcache.Pagekey.page_of k = page)

let pagekey_orders_by_file_then_page () =
  let k1 = Mcache.Pagekey.make ~file:1 ~page:999 in
  let k2 = Mcache.Pagekey.make ~file:2 ~page:0 in
  let k3 = Mcache.Pagekey.make ~file:2 ~page:1 in
  Alcotest.(check bool) "file major" true (k1 < k2);
  Alcotest.(check bool) "page minor" true (k2 < k3)

let pagekey_bounds () =
  Alcotest.check_raises "file too large"
    (Invalid_argument "Pagekey.make: file id out of range") (fun () ->
      ignore (Mcache.Pagekey.make ~file:(1 lsl 27) ~page:0))

(* ---- Freelist ---- *)

let freelist_fallback () =
  let fl = Mcache.Freelist.create c Hw.Topology.default () in
  Mcache.Freelist.add_frame fl ~node:0 42;
  let f, _ = Mcache.Freelist.alloc fl ~core:16 (* node 1: remote steal *) in
  Alcotest.(check (option int)) "remote fallback" (Some 42) f;
  let none, _ = Mcache.Freelist.alloc fl ~core:0 in
  Alcotest.(check (option int)) "exhausted" None none;
  checki "count" 0 (Mcache.Freelist.free_count fl)

let freelist_free_and_spill () =
  let fl =
    Mcache.Freelist.create c Hw.Topology.default ~core_queue_limit:4 ~move_batch:4 ()
  in
  for i = 0 to 9 do
    ignore (Mcache.Freelist.free fl ~core:0 i)
  done;
  checki "all tracked" 10 (Mcache.Freelist.free_count fl);
  (* spills went to the node queue (8 frames); 2 stay in core 0's private
     queue, which a sibling core cannot steal (per-core level is private) *)
  let drain core =
    let got = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      match Mcache.Freelist.alloc fl ~core with
      | Some _, _ -> incr got
      | None, _ -> continue_ := false
    done;
    !got
  in
  checki "sibling recovers spilled frames" 8 (drain 1);
  checki "owner keeps its private queue" 2 (drain 0)

let freelist_refills_batched () =
  let fl = Mcache.Freelist.create c Hw.Topology.default ~move_batch:8 () in
  for i = 0 to 31 do
    Mcache.Freelist.add_frame fl ~node:0 i
  done;
  for _ = 0 to 15 do
    ignore (Mcache.Freelist.alloc fl ~core:0)
  done;
  (* 16 allocs at batch 8 -> only 2 refills *)
  checki "batched refills" 2 (Mcache.Freelist.refills fl)

(* ---- Dirty set ---- *)

let dirty_sorted_drain () =
  let ds = Mcache.Dirty_set.create c ~cores:4 in
  let key file page = Mcache.Pagekey.make ~file ~page in
  ignore (Mcache.Dirty_set.add ds ~core:0 ~key:(key 1 30) ~frame:0);
  ignore (Mcache.Dirty_set.add ds ~core:1 ~key:(key 1 10) ~frame:1);
  ignore (Mcache.Dirty_set.add ds ~core:2 ~key:(key 1 20) ~frame:2);
  ignore (Mcache.Dirty_set.add ds ~core:3 ~key:(key 2 5) ~frame:3);
  checki "total" 4 (Mcache.Dirty_set.total ds);
  let entries, _ = Mcache.Dirty_set.drain_sorted ds () in
  Alcotest.(check (list int)) "ascending device order"
    [ key 1 10; key 1 20; key 1 30; key 2 5 ]
    (List.map fst entries);
  checki "drained" 0 (Mcache.Dirty_set.total ds)

let dirty_file_filter_and_limit () =
  let ds = Mcache.Dirty_set.create c ~cores:2 in
  let key file page = Mcache.Pagekey.make ~file ~page in
  for p = 0 to 9 do
    ignore (Mcache.Dirty_set.add ds ~core:(p mod 2) ~key:(key 1 p) ~frame:p)
  done;
  ignore (Mcache.Dirty_set.add ds ~core:0 ~key:(key 2 0) ~frame:99);
  let only_f1, _ = Mcache.Dirty_set.drain_sorted ds ~file:1 ~limit:4 () in
  checki "limited" 4 (List.length only_f1);
  Alcotest.(check bool) "all file 1" true
    (List.for_all (fun (k, _) -> Mcache.Pagekey.file_of k = 1) only_f1);
  (* the rest (6 of file 1 + 1 of file 2) is still tracked *)
  checki "remainder" 7 (Mcache.Dirty_set.total ds)

let dirty_idempotent_add () =
  let ds = Mcache.Dirty_set.create c ~cores:1 in
  let k = Mcache.Pagekey.make ~file:1 ~page:1 in
  ignore (Mcache.Dirty_set.add ds ~core:0 ~key:k ~frame:0);
  ignore (Mcache.Dirty_set.add ds ~core:0 ~key:k ~frame:0);
  checki "counted once" 1 (Mcache.Dirty_set.total ds)

(* ---- Dram cache ---- *)

type rig = {
  cache : Mcache.Dram_cache.t;
  pt : Hw.Page_table.t;
  pmem : Sdevice.Pmem.t;
}

let make_rig ?(frames = 32) ?tweak ?(file_pages = 256) () =
  let machine = Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  let cfg = Mcache.Dram_cache.default_config ~frames in
  let cfg = match tweak with Some f -> f cfg | None -> cfg in
  let cache = Mcache.Dram_cache.create ~costs:c ~machine ~page_table:pt cfg in
  let pmem =
    Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (file_pages * psz)) ()
  in
  let access = Sdevice.Access.dax_pmem c pmem in
  Mcache.Dram_cache.register_file cache ~file_id:1 ~access
    ~translate:(fun p -> if p < file_pages then Some p else None);
  Mcache.Dram_cache.set_shoot_cores cache [ 0; 1 ];
  { cache; pt; pmem }

let in_sim f =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~core:0 f);
  Sim.Engine.run eng

let key p = Mcache.Pagekey.make ~file:1 ~page:p

let fault_miss_then_hit () =
  let r = make_rig () in
  in_sim (fun () ->
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 5) ~vpn:100 ~write:false ();
      checki "one miss" 1 (Mcache.Dram_cache.misses r.cache);
      Alcotest.(check bool) "resident" true
        (Mcache.Dram_cache.is_resident r.cache ~key:(key 5));
      (* the PTE is installed read-only *)
      (match Hw.Page_table.find r.pt ~vpn:100 with
      | Some pte -> Alcotest.(check bool) "read-only" false pte.Hw.Page_table.writable
      | None -> Alcotest.fail "pte missing");
      (* a second fault (e.g. after remap) is a fault-hit: no new I/O *)
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 5) ~vpn:101 ~write:false ();
      checki "still one miss" 1 (Mcache.Dram_cache.misses r.cache);
      checki "one fault hit" 1 (Mcache.Dram_cache.fault_hits r.cache);
      checki "one read io" 1 (Mcache.Dram_cache.read_ios r.cache))

let write_fault_marks_dirty () =
  let r = make_rig () in
  in_sim (fun () ->
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 3) ~vpn:50 ~write:true ();
      checki "dirty tracked" 1 (Mcache.Dram_cache.dirty_pages r.cache);
      (match Hw.Page_table.find r.pt ~vpn:50 with
      | Some pte -> Alcotest.(check bool) "writable" true pte.Hw.Page_table.writable
      | None -> Alcotest.fail "pte missing");
      (* msync cleans and write-protects *)
      Mcache.Dram_cache.msync r.cache ~core:0 ();
      checki "cleaned" 0 (Mcache.Dram_cache.dirty_pages r.cache);
      checki "one writeback io" 1 (Mcache.Dram_cache.writeback_ios r.cache);
      match Hw.Page_table.find r.pt ~vpn:50 with
      | Some pte -> Alcotest.(check bool) "write-protected" false pte.Hw.Page_table.writable
      | None -> Alcotest.fail "pte missing after msync")

let data_survives_eviction () =
  (* Write distinctive bytes to many pages through the cache; with only 16
     frames, evictions write them back; re-reading must return them. *)
  let r = make_rig ~frames:16 () in
  in_sim (fun () ->
      for p = 0 to 63 do
        Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p) ~vpn:(1000 + p)
          ~write:true ();
        let pte = Option.get (Hw.Page_table.find r.pt ~vpn:(1000 + p)) in
        let data = Mcache.Dram_cache.pfn_data r.cache pte.Hw.Page_table.pfn in
        Bytes.fill data 0 psz (Char.chr (65 + (p mod 26)))
      done;
      Alcotest.(check bool) "evictions happened" true
        (Mcache.Dram_cache.evictions r.cache > 0);
      (* read everything back *)
      for p = 0 to 63 do
        Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p) ~vpn:(2000 + p)
          ~write:false ();
        let pte = Option.get (Hw.Page_table.find r.pt ~vpn:(2000 + p)) in
        let data = Mcache.Dram_cache.pfn_data r.cache pte.Hw.Page_table.pfn in
        Alcotest.(check char)
          (Printf.sprintf "page %d content" p)
          (Char.chr (65 + (p mod 26)))
          (Bytes.get data 0)
      done)

let eviction_unmaps_and_shoots () =
  let r = make_rig ~frames:16 () in
  Hw.Ipi.reset_counters ();
  in_sim (fun () ->
      for p = 0 to 63 do
        Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p) ~vpn:(100 + p)
          ~write:false ()
      done;
      (* far more pages touched than frames: early mappings must be gone *)
      Alcotest.(check bool) "early vpn unmapped" true
        (Hw.Page_table.find r.pt ~vpn:100 = None);
      Alcotest.(check bool) "mapped <= frames" true (Hw.Page_table.mapped r.pt <= 16);
      Alcotest.(check bool) "batched shootdowns sent" true (Hw.Ipi.shootdowns_sent () > 0))

let concurrent_faults_coalesce () =
  (* Two threads fault the same missing page: one device read, one waiter. *)
  let r = make_rig () in
  let eng = Sim.Engine.create () in
  for core = 0 to 1 do
    ignore
      (Sim.Engine.spawn eng ~core (fun () ->
           Mcache.Dram_cache.fault r.cache ~core ~key:(key 9) ~vpn:(300 + core)
             ~write:false ()))
  done;
  Sim.Engine.run eng;
  checki "single read io" 1 (Mcache.Dram_cache.read_ios r.cache);
  checki "one waited" 1 (Mcache.Dram_cache.inflight_waits r.cache)

let readahead_fetches_contiguous () =
  let r = make_rig ~frames:64 () in
  in_sim (fun () ->
      Mcache.Dram_cache.fault r.cache ~core:0 ~readahead:7 ~key:(key 10) ~vpn:400
        ~write:false ();
      checki "one merged io" 1 (Mcache.Dram_cache.read_ios r.cache);
      checki "eight pages" 8 (Mcache.Dram_cache.read_pages r.cache);
      Alcotest.(check bool) "neighbour resident" true
        (Mcache.Dram_cache.is_resident r.cache ~key:(key 17));
      (* neighbours are cached but unmapped: faulting one is a hit *)
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 12) ~vpn:402 ~write:false ();
      checki "hit, not miss" 1 (Mcache.Dram_cache.misses r.cache))

let writeback_merges_sorted_runs () =
  let r = make_rig ~frames:64 () in
  in_sim (fun () ->
      (* dirty pages 20..27 in scrambled order, via different cores *)
      List.iteri
        (fun i p ->
          Mcache.Dram_cache.fault r.cache ~core:(i mod 2) ~key:(key p) ~vpn:(500 + p)
            ~write:true ())
        [ 25; 20; 27; 22; 21; 26; 23; 24 ];
      Mcache.Dram_cache.msync r.cache ~core:0 ();
      checki "one merged write io" 1 (Mcache.Dram_cache.writeback_ios r.cache);
      checki "eight pages written" 8 (Mcache.Dram_cache.writeback_pages r.cache))

let drop_file_clears () =
  let r = make_rig () in
  in_sim (fun () ->
      for p = 0 to 5 do
        Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p) ~vpn:(600 + p) ~write:true ()
      done;
      Mcache.Dram_cache.drop_file r.cache ~core:0 ~file_id:1;
      Alcotest.(check bool) "nothing resident" true
        (not (Mcache.Dram_cache.is_resident r.cache ~key:(key 0)));
      checki "no dirty left" 0 (Mcache.Dram_cache.dirty_pages r.cache);
      checki "mappings gone" 0 (Hw.Page_table.mapped r.pt);
      (* dirty data reached the device *)
      Alcotest.(check bool) "written back" true
        (Mcache.Dram_cache.writeback_pages r.cache >= 6);
      checki "all frames free" 32 (Mcache.Dram_cache.free_frames r.cache))

let grow_shrink () =
  let r =
    make_rig ~frames:16
      ~tweak:(fun cfg -> { cfg with Mcache.Dram_cache.max_frames = 32 })
      ()
  in
  checki "initial" 16 (Mcache.Dram_cache.frames_total r.cache);
  checki "grow adds" 8 (Mcache.Dram_cache.grow r.cache ~frames:8);
  checki "bounded by max" 8 (Mcache.Dram_cache.grow r.cache ~frames:100);
  checki "at max" 32 (Mcache.Dram_cache.frames_total r.cache);
  in_sim (fun () ->
      checki "shrink removes" 20 (Mcache.Dram_cache.shrink r.cache ~frames:20));
  checki "after shrink" 12 (Mcache.Dram_cache.frames_total r.cache);
  (* cache still works at the smaller size *)
  in_sim (fun () ->
      for p = 0 to 30 do
        Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p) ~vpn:(700 + p) ~write:false ()
      done;
      Alcotest.(check bool) "usable after resize" true
        (Mcache.Dram_cache.is_resident r.cache ~key:(key 30)))

let writeback_daemon_cleans_in_background () =
  let r = make_rig ~frames:64 ~file_pages:256 () in
  let eng = Sim.Engine.create () in
  Mcache.Dram_cache.spawn_writeback_daemon r.cache ~eng ~hi:16 ~lo:4 ~core:1 ();
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         for p = 0 to 39 do
           Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p) ~vpn:(800 + p)
             ~write:true ()
         done));
  Sim.Engine.run eng;
  (* the daemon drained the dirty set below the low watermark without any
     foreground msync *)
  Alcotest.(check bool)
    (Printf.sprintf "dirty below lo (%d)" (Mcache.Dram_cache.dirty_pages r.cache))
    true
    (Mcache.Dram_cache.dirty_pages r.cache <= 4);
  Alcotest.(check bool) "pages written back" true
    (Mcache.Dram_cache.writeback_pages r.cache >= 36);
  Mcache.Dram_cache.stop_writeback_daemon r.cache;
  Sim.Engine.run eng

let crash_loses_unsynced_data () =
  let r = make_rig ~frames:64 () in
  in_sim (fun () ->
      (* page 1 synced; page 2 dirty-only *)
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 1) ~vpn:901 ~write:true ();
      let pte = Option.get (Hw.Page_table.find r.pt ~vpn:901) in
      Bytes.fill (Mcache.Dram_cache.pfn_data r.cache pte.Hw.Page_table.pfn) 0 psz 'S';
      Mcache.Dram_cache.msync r.cache ~core:0 ();
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 2) ~vpn:902 ~write:true ();
      let pte2 = Option.get (Hw.Page_table.find r.pt ~vpn:902) in
      Bytes.fill (Mcache.Dram_cache.pfn_data r.cache pte2.Hw.Page_table.pfn) 0 psz 'L');
  Mcache.Dram_cache.crash r.cache;
  checki "cache empty" 64 (Mcache.Dram_cache.free_frames r.cache);
  in_sim (fun () ->
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 1) ~vpn:911 ~write:false ();
      let pte = Option.get (Hw.Page_table.find r.pt ~vpn:911) in
      Alcotest.(check char) "synced data survived" 'S'
        (Bytes.get (Mcache.Dram_cache.pfn_data r.cache pte.Hw.Page_table.pfn) 0);
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 2) ~vpn:912 ~write:false ();
      let pte2 = Option.get (Hw.Page_table.find r.pt ~vpn:912) in
      Alcotest.(check char) "unsynced data lost" '\000'
        (Bytes.get (Mcache.Dram_cache.pfn_data r.cache pte2.Hw.Page_table.pfn) 0))

let msync_clean_cache_is_free () =
  (* msync with nothing dirty must not touch the device — no write-back
     I/O and no page-table walk.  Kreon's commit protocol relies on this:
     its second msync (superblock only) must not re-flush the world. *)
  let r = make_rig () in
  in_sim (fun () ->
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 4) ~vpn:950 ~write:false ();
      Mcache.Dram_cache.msync r.cache ~core:0 ();
      checki "no writeback io" 0 (Mcache.Dram_cache.writeback_ios r.cache);
      checki "no pages written" 0 (Mcache.Dram_cache.writeback_pages r.cache);
      (* a dirty page still flushes *)
      Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key 4) ~vpn:950 ~write:true ();
      Mcache.Dram_cache.msync r.cache ~core:0 ();
      checki "dirty page flushed" 1 (Mcache.Dram_cache.writeback_ios r.cache))

(* Random write/msync interleavings: after a power cut, the device must
   hold exactly the bytes of the last completed msync for every page —
   later writes gone, synced writes intact.  64 frames >> 16 pages, so no
   eviction ever writes back behind the model's back. *)
type crash_op = C_write of int * char | C_msync

let crash_keeps_exactly_synced =
  let npages = 16 in
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          ( 4,
            map2
              (fun p c -> C_write (p, Char.chr (65 + c)))
              (int_bound (npages - 1)) (int_bound 25) );
          (1, return C_msync);
        ])
  in
  let print_op = function
    | C_write (p, ch) -> Printf.sprintf "write %d %c" p ch
    | C_msync -> "msync"
  in
  let ops_arb =
    QCheck.make
      ~print:(fun ops -> String.concat "; " (List.map print_op ops))
      QCheck.Gen.(list_size (int_range 1 40) op_gen)
  in
  QCheck.Test.make ~name:"crash keeps exactly the msynced bytes" ~count:30
    ops_arb
    (fun ops ->
      let r = make_rig ~frames:64 () in
      let latest = Array.make npages '\000' in
      let synced = Array.make npages '\000' in
      in_sim (fun () ->
          List.iter
            (function
              | C_write (p, ch) ->
                  Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p)
                    ~vpn:(3000 + p) ~write:true ();
                  let pte =
                    Option.get (Hw.Page_table.find r.pt ~vpn:(3000 + p))
                  in
                  Bytes.fill
                    (Mcache.Dram_cache.pfn_data r.cache pte.Hw.Page_table.pfn)
                    0 psz ch;
                  latest.(p) <- ch
              | C_msync ->
                  Mcache.Dram_cache.msync r.cache ~core:0 ();
                  Array.blit latest 0 synced 0 npages)
            ops);
      Mcache.Dram_cache.crash r.cache;
      let ok = ref true in
      in_sim (fun () ->
          for p = 0 to npages - 1 do
            Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p) ~vpn:(4000 + p)
              ~write:false ();
            let pte = Option.get (Hw.Page_table.find r.pt ~vpn:(4000 + p)) in
            let got =
              Bytes.get
                (Mcache.Dram_cache.pfn_data r.cache pte.Hw.Page_table.pfn)
                0
            in
            if got <> synced.(p) then ok := false
          done);
      !ok)

(* ---- Replacement policies ---- *)

(* Each list-based policy is checked op-by-op against a naive reference
   model (plain OCaml lists, front = eviction end): same victims in the
   same order, same membership, same active count, on arbitrary
   interleavings of inserts, touches, removes and evictions. *)

type pol_op =
  | P_insert of int * bool
  | P_touch of int
  | P_remove of int
  | P_evict of int

let pol_nframes = 16

let pol_ops_arb =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          ( 4,
            map2
              (fun f touched -> P_insert (f, touched))
              (int_bound (pol_nframes - 1))
              bool );
          (4, map (fun f -> P_touch f) (int_bound (pol_nframes - 1)));
          (1, map (fun f -> P_remove f) (int_bound (pol_nframes - 1)));
          (2, map (fun n -> P_evict (n + 1)) (int_bound 5));
        ])
  in
  let print_op = function
    | P_insert (f, t) -> Printf.sprintf "insert %d%s" f (if t then "!" else "")
    | P_touch f -> Printf.sprintf "touch %d" f
    | P_remove f -> Printf.sprintf "remove %d" f
    | P_evict n -> Printf.sprintf "evict %d" n
  in
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    Gen.(list_size (int_range 1 150) op_gen)

(* Drive [Policy.t] and the model together; [apply] returns the new model
   state plus, for evictions, the victims the model expects. *)
let policy_matches_model ~kind ~init ~apply ~members ops =
  let p = Mcache.Policy.make c ~nframes:pol_nframes kind in
  let ok = ref true in
  let model = ref init in
  List.iter
    (fun op ->
      (match op with
      | P_insert (f, touched) -> Mcache.Policy.note_insert p f ~touched
      | P_touch f -> ignore (Mcache.Policy.touch p f)
      | P_remove f -> Mcache.Policy.note_remove p f
      | P_evict n ->
          let victims, _ = Mcache.Policy.evict_candidates p n in
          let m', expected = apply !model op in
          model := m';
          if victims <> expected then ok := false);
      (match op with
      | P_evict _ -> ()
      | _ ->
          let m', _ = apply !model op in
          model := m');
      let ms = members !model in
      if Mcache.Policy.active_count p <> List.length ms then ok := false;
      for f = 0 to pol_nframes - 1 do
        if Mcache.Policy.is_active p f <> List.mem f ms then ok := false
      done)
    ops;
  !ok

let rec take_front n = function
  | [] -> ([], [])
  | l when n = 0 -> ([], l)
  | x :: rest ->
      let v, rem = take_front (n - 1) rest in
      (x :: v, rem)

let policy_fifo_matches_model =
  let apply q = function
    | P_insert (f, _) -> if List.mem f q then (q, []) else (q @ [ f ], [])
    | P_touch _ -> (q, [])
    | P_remove f -> (List.filter (( <> ) f) q, [])
    | P_evict n ->
        let v, rem = take_front n q in
        (rem, v)
  in
  QCheck.Test.make ~name:"FIFO policy matches the reference model" ~count:200
    pol_ops_arb
    (policy_matches_model ~kind:Mcache.Policy.Fifo ~init:[] ~apply
       ~members:(fun q -> q))

let policy_lru_matches_model =
  let apply q = function
    | P_insert (f, touched) ->
        if List.mem f q then (q, [])
        else if touched then (q @ [ f ], [])
        else (f :: q, []) (* untouched readahead: first to go *)
    | P_touch f ->
        if List.mem f q then (List.filter (( <> ) f) q @ [ f ], []) else (q, [])
    | P_remove f -> (List.filter (( <> ) f) q, [])
    | P_evict n ->
        let v, rem = take_front n q in
        (rem, v)
  in
  QCheck.Test.make ~name:"LRU policy matches the reference model" ~count:200
    pol_ops_arb
    (policy_matches_model ~kind:Mcache.Policy.Lru ~init:[] ~apply
       ~members:(fun q -> q))

let policy_2q_matches_model =
  (* model = (a1 probationary FIFO, am protected LRU), fronts evict first *)
  let rec evict n (a1, am) acc =
    if n = 0 then (List.rev acc, (a1, am))
    else
      let from_a1 =
        a1 <> []
        && (am = [] || 4 * List.length a1 >= List.length a1 + List.length am)
      in
      match (from_a1, a1, am) with
      | true, f :: rest, _ -> evict (n - 1) (rest, am) (f :: acc)
      | _, _, f :: rest -> evict (n - 1) (a1, rest) (f :: acc)
      | _, f :: rest, [] -> evict (n - 1) (rest, []) (f :: acc)
      | _, [], [] -> (List.rev acc, (a1, am))
  in
  let apply (a1, am) = function
    | P_insert (f, _) ->
        if List.mem f a1 || List.mem f am then ((a1, am), [])
        else ((a1 @ [ f ], am), [])
    | P_touch f ->
        if List.mem f am then ((a1, List.filter (( <> ) f) am @ [ f ]), [])
        else if List.mem f a1 then
          ((List.filter (( <> ) f) a1, am @ [ f ]), [])
        else ((a1, am), [])
    | P_remove f ->
        ((List.filter (( <> ) f) a1, List.filter (( <> ) f) am), [])
    | P_evict n ->
        let v, m = evict n (a1, am) [] in
        (m, v)
  in
  QCheck.Test.make ~name:"2Q policy matches the reference model" ~count:200
    pol_ops_arb
    (policy_matches_model ~kind:Mcache.Policy.Two_q ~init:([], []) ~apply
       ~members:(fun (a1, am) -> a1 @ am))

let policy_clock_delegates =
  (* CLOCK must be the pre-policy-interface structure verbatim: drive a
     raw Clock_lru with the documented op mapping and require identical
     victims and membership. *)
  QCheck.Test.make ~name:"CLOCK policy delegates to Clock_lru unchanged"
    ~count:200 pol_ops_arb (fun ops ->
      let p = Mcache.Policy.make c ~nframes:pol_nframes Mcache.Policy.Clock in
      let lru = Dstruct.Clock_lru.create ~nframes:pol_nframes in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | P_insert (f, touched) ->
              Mcache.Policy.note_insert p f ~touched;
              Dstruct.Clock_lru.set_active lru f true;
              if touched then Dstruct.Clock_lru.touch lru f
          | P_touch f ->
              ignore (Mcache.Policy.touch p f);
              Dstruct.Clock_lru.touch lru f
          | P_remove f ->
              Mcache.Policy.note_remove p f;
              Dstruct.Clock_lru.set_active lru f false
          | P_evict n ->
              let got, _ = Mcache.Policy.evict_candidates p n in
              if got <> Dstruct.Clock_lru.evict_candidates lru n then
                ok := false);
          if Mcache.Policy.active_count p <> Dstruct.Clock_lru.active_count lru
          then ok := false;
          for f = 0 to pol_nframes - 1 do
            if Mcache.Policy.is_active p f <> Dstruct.Clock_lru.is_active lru f
            then ok := false
          done)
        ops;
      !ok)

let policy_random_deterministic_and_valid =
  (* Sampled-LRU draws from its own seeded stream: two instances fed the
     same ops must pick the same victims, every victim must have been
     resident, and eviction must drain exactly min(n, resident). *)
  QCheck.Test.make ~name:"random policy is seeded-deterministic and valid"
    ~count:200 pol_ops_arb (fun ops ->
      let mk () = Mcache.Policy.make c ~nframes:pol_nframes (Mcache.Policy.Random 42) in
      let p1 = mk () and p2 = mk () in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | P_insert (f, touched) ->
              Mcache.Policy.note_insert p1 f ~touched;
              Mcache.Policy.note_insert p2 f ~touched
          | P_touch f ->
              ignore (Mcache.Policy.touch p1 f);
              ignore (Mcache.Policy.touch p2 f)
          | P_remove f ->
              Mcache.Policy.note_remove p1 f;
              Mcache.Policy.note_remove p2 f
          | P_evict n ->
              let before = Mcache.Policy.active_count p1 in
              let was = Array.init pol_nframes (Mcache.Policy.is_active p1) in
              let v1, _ = Mcache.Policy.evict_candidates p1 n in
              let v2, _ = Mcache.Policy.evict_candidates p2 n in
              if v1 <> v2 then ok := false;
              if List.length v1 <> min n before then ok := false;
              if List.length (List.sort_uniq compare v1) <> List.length v1 then
                ok := false;
              List.iter
                (fun f ->
                  if not was.(f) then ok := false;
                  if Mcache.Policy.is_active p1 f then ok := false)
                v1)
        ops;
      !ok)

let clock_retire_clears_reference_bit () =
  (* Regression: shrink used to deactivate a stolen frame without
     clearing its reference bit, so a later grow re-added the frame with
     stale recency.  [retire] must scrub everything; [set_active false]
     alone (the old behaviour) provably does not. *)
  let lru = Dstruct.Clock_lru.create ~nframes:4 in
  Dstruct.Clock_lru.set_active lru 0 true;
  Dstruct.Clock_lru.touch lru 0;
  Dstruct.Clock_lru.set_active lru 0 false;
  Alcotest.(check bool) "set_active false leaves the ref bit" true
    (Dstruct.Clock_lru.is_referenced lru 0);
  Dstruct.Clock_lru.set_active lru 0 true;
  Dstruct.Clock_lru.retire lru 0;
  Alcotest.(check bool) "retire clears the ref bit" false
    (Dstruct.Clock_lru.is_referenced lru 0);
  Alcotest.(check bool) "retired frame is inactive" false
    (Dstruct.Clock_lru.is_active lru 0)

let shrink_grow_under_every_policy () =
  (* Retired frames must leave no policy metadata behind: shrink, grow
     the frames back, then hammer well past capacity — the cache must
     keep working (a stale queue slot or ref bit would surface as a
     duplicate/ghost victim and corrupt the frame accounting). *)
  List.iter
    (fun kind ->
      let name = Mcache.Policy.kind_to_string kind in
      let r =
        make_rig ~frames:16
          ~tweak:(fun cfg ->
            { cfg with Mcache.Dram_cache.max_frames = 32; policy = kind })
          ()
      in
      in_sim (fun () ->
          for p = 0 to 15 do
            Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p)
              ~vpn:(5000 + p) ~write:false ()
          done;
          checki (name ^ ": shrink") 8 (Mcache.Dram_cache.shrink r.cache ~frames:8);
          checki (name ^ ": grow") 8 (Mcache.Dram_cache.grow r.cache ~frames:8);
          for p = 0 to 63 do
            Mcache.Dram_cache.fault r.cache ~core:0 ~key:(key p)
              ~vpn:(6000 + p) ~write:false ()
          done;
          Alcotest.(check bool) (name ^ ": usable after shrink/grow") true
            (Mcache.Dram_cache.is_resident r.cache ~key:(key 63));
          checki (name ^ ": frame accounting intact") 16
            (Mcache.Dram_cache.frames_total r.cache)))
    Mcache.Policy.all_kinds

let degraded_eviction_skips_dirty_under_every_policy () =
  (* Once an error storm forces read-only mode, write-back is unsafe: a
     policy may only surface clean victims.  Dirty pages must stay
     resident (their only durable copy is the DRAM frame) while reads
     keep working off the clean frames — for every policy. *)
  List.iter
    (fun kind ->
      let name = Mcache.Policy.kind_to_string kind in
      let spec = { Fault.Plan.default with Fault.Plan.write_error = 1.0 } in
      Fault.with_plan (Fault.Plan.make spec) (fun () ->
          let machine = Hw.Machine.create () in
          let pt = Hw.Page_table.create () in
          let cfg =
            {
              (Mcache.Dram_cache.default_config ~frames:16) with
              Mcache.Dram_cache.policy = kind;
            }
          in
          let cache =
            Mcache.Dram_cache.create ~costs:c ~machine ~page_table:pt cfg
          in
          let dev = Sdevice.Nvme.create ~name:"pol-nvme" () in
          let access = Sdevice.Access.spdk_nvme c dev in
          Mcache.Dram_cache.register_file cache ~file_id:1 ~access
            ~translate:(fun p -> if p < 256 then Some p else None);
          Mcache.Dram_cache.set_shoot_cores cache [ 0 ];
          in_sim (fun () ->
              for p = 0 to 7 do
                Mcache.Dram_cache.fault cache ~core:0 ~key:(key p)
                  ~vpn:(7000 + p) ~write:true ()
              done;
              for p = 8 to 15 do
                Mcache.Dram_cache.fault cache ~core:0 ~key:(key p)
                  ~vpn:(7000 + p) ~write:false ()
              done;
              for _ = 1 to 8 do
                match Mcache.Dram_cache.msync cache ~core:0 () with
                | () -> Alcotest.fail (name ^ ": msync acked a failed flush")
                | exception Fault.Io_error { write = true; _ } -> ()
              done;
              Alcotest.(check bool) (name ^ ": degraded") true
                (Mcache.Dram_cache.degraded cache);
              (* reads continue: eviction reclaims only the clean half *)
              for p = 16 to 39 do
                Mcache.Dram_cache.fault cache ~core:0 ~key:(key p)
                  ~vpn:(8000 + p) ~write:false ()
              done;
              for p = 0 to 7 do
                Alcotest.(check bool)
                  (Printf.sprintf "%s: dirty page %d still resident" name p)
                  true
                  (Mcache.Dram_cache.is_resident cache ~key:(key p))
              done;
              checki (name ^ ": dirty pages intact") 8
                (Mcache.Dram_cache.dirty_pages cache);
              Alcotest.(check bool) (name ^ ": eviction progressed") true
                (Mcache.Dram_cache.evictions cache > 0))))
    Mcache.Policy.all_kinds

let unregistered_file_rejected () =
  let r = make_rig () in
  Alcotest.check_raises "unknown file" (Invalid_argument "Dram_cache: unregistered file 9")
    (fun () ->
      in_sim (fun () ->
          Mcache.Dram_cache.fault r.cache ~core:0
            ~key:(Mcache.Pagekey.make ~file:9 ~page:0)
            ~vpn:1 ~write:false ()))

let () =
  Alcotest.run "mcache"
    [
      ( "pagekey",
        [
          QCheck_alcotest.to_alcotest pagekey_roundtrip;
          Alcotest.test_case "ordering" `Quick pagekey_orders_by_file_then_page;
          Alcotest.test_case "bounds" `Quick pagekey_bounds;
        ] );
      ( "freelist",
        [
          Alcotest.test_case "numa fallback" `Quick freelist_fallback;
          Alcotest.test_case "free and spill" `Quick freelist_free_and_spill;
          Alcotest.test_case "batched refills" `Quick freelist_refills_batched;
        ] );
      ( "dirty set",
        [
          Alcotest.test_case "sorted drain" `Quick dirty_sorted_drain;
          Alcotest.test_case "filter and limit" `Quick dirty_file_filter_and_limit;
          Alcotest.test_case "idempotent add" `Quick dirty_idempotent_add;
        ] );
      ( "dram cache",
        [
          Alcotest.test_case "miss then hit" `Quick fault_miss_then_hit;
          Alcotest.test_case "dirty tracking + msync" `Quick write_fault_marks_dirty;
          Alcotest.test_case "data survives eviction" `Quick data_survives_eviction;
          Alcotest.test_case "eviction unmaps" `Quick eviction_unmaps_and_shoots;
          Alcotest.test_case "in-flight coalescing" `Quick concurrent_faults_coalesce;
          Alcotest.test_case "readahead" `Quick readahead_fetches_contiguous;
          Alcotest.test_case "merged writeback" `Quick writeback_merges_sorted_runs;
          Alcotest.test_case "drop file" `Quick drop_file_clears;
          Alcotest.test_case "grow/shrink" `Quick grow_shrink;
          Alcotest.test_case "writeback daemon" `Quick writeback_daemon_cleans_in_background;
          Alcotest.test_case "crash loses unsynced" `Quick crash_loses_unsynced_data;
          Alcotest.test_case "msync on clean cache" `Quick msync_clean_cache_is_free;
          QCheck_alcotest.to_alcotest crash_keeps_exactly_synced;
          Alcotest.test_case "unregistered file" `Quick unregistered_file_rejected;
        ] );
      ( "policy",
        [
          QCheck_alcotest.to_alcotest policy_fifo_matches_model;
          QCheck_alcotest.to_alcotest policy_lru_matches_model;
          QCheck_alcotest.to_alcotest policy_2q_matches_model;
          QCheck_alcotest.to_alcotest policy_clock_delegates;
          QCheck_alcotest.to_alcotest policy_random_deterministic_and_valid;
          Alcotest.test_case "retire scrubs the ref bit" `Quick
            clock_retire_clears_reference_bit;
          Alcotest.test_case "shrink/grow under every policy" `Quick
            shrink_grow_under_every_policy;
          Alcotest.test_case "degraded eviction skips dirty" `Quick
            degraded_eviction_skips_dirty_under_every_policy;
        ] );
    ]
