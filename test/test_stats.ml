(* Tests for the statistics library (lib/stats). *)

let checki = Alcotest.(check int)

(* ---- Histogram ---- *)

let histogram_basics () =
  let h = Stats.Histogram.create () in
  Alcotest.(check int64) "empty percentile" 0L (Stats.Histogram.percentile h 99.);
  List.iter (fun v -> Stats.Histogram.record h v) [ 10L; 20L; 30L; 40L ];
  checki "count" 4 (Stats.Histogram.count h);
  Alcotest.(check (float 0.01)) "mean" 25.0 (Stats.Histogram.mean h);
  Alcotest.(check int64) "max" 40L (Stats.Histogram.max_value h);
  Alcotest.(check int64) "min" 10L (Stats.Histogram.min_value h)

let histogram_percentile_accuracy =
  QCheck.Test.make ~name:"percentiles within ~4% of exact" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 10 500) (int_range 1 1_000_000))
    (fun samples ->
      let h = Stats.Histogram.create () in
      List.iter (fun v -> Stats.Histogram.record h (Int64.of_int v)) samples;
      let sorted = Array.of_list (List.sort compare samples) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let exact = sorted.(min (n - 1) (max 0 (int_of_float (ceil (float_of_int n *. p /. 100.)) - 1))) in
          let est = Int64.to_float (Stats.Histogram.percentile h p) in
          est >= float_of_int exact *. 0.96 && est <= float_of_int exact *. 1.07)
        [ 50.; 90.; 99. ])

(* Values below 32 land in width-1 buckets, so percentiles are exact:
   good for pinning down the rank arithmetic without bucket error. *)
let histogram_percentiles_exact () =
  let h = Stats.Histogram.create () in
  for v = 1 to 20 do
    Stats.Histogram.record h (Int64.of_int v)
  done;
  Alcotest.(check int64) "p50" 10L (Stats.Histogram.percentile h 50.);
  Alcotest.(check int64) "p95" 19L (Stats.Histogram.percentile h 95.);
  Alcotest.(check int64) "p99" 20L (Stats.Histogram.percentile h 99.);
  Alcotest.(check int64) "p100" 20L (Stats.Histogram.percentile h 100.);
  Alcotest.(check int64) "p0 clamps to first sample" 1L
    (Stats.Histogram.percentile h 0.)

let histogram_bucket_boundary () =
  (* 32 is the first value of the first log group; both its bucket index
     and bound round-trip exactly (index_of 32 = 32, bound_of 32 = 32). *)
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h 31L;
  Stats.Histogram.record h 32L;
  Alcotest.(check int64) "p50 below boundary" 31L
    (Stats.Histogram.percentile h 50.);
  Alcotest.(check int64) "p100 at boundary" 32L
    (Stats.Histogram.percentile h 100.);
  Alcotest.(check int64) "min" 31L (Stats.Histogram.min_value h);
  Alcotest.(check int64) "max" 32L (Stats.Histogram.max_value h)

(* Quantile-at-least on sparse buckets: an extreme quantile of a small
   sample must clamp to the exact maximum sample, not report the ceiling
   of a log bucket no sample ever reached. *)
let histogram_percentile_small_n () =
  let h = Stats.Histogram.create () in
  (* 20 samples, max 99_999 — the raw bucket bound for the max's bucket
     is 100_352 (~0.35% above), so p999 without clamping would invent a
     latency the workload never exhibited *)
  for v = 1 to 19 do
    Stats.Histogram.record h (Int64.of_int (v * 1000))
  done;
  Stats.Histogram.record h 99_999L;
  Alcotest.(check int64) "p999 of 20 samples is the exact max" 99_999L
    (Stats.Histogram.percentile h 99.9);
  Alcotest.(check int64) "p99 too" 99_999L (Stats.Histogram.percentile h 99.);
  (* single sample: every quantile is that sample *)
  let one = Stats.Histogram.create () in
  Stats.Histogram.record one 12_345L;
  List.iter
    (fun p ->
      Alcotest.(check int64)
        (Printf.sprintf "p%.1f of one sample" p)
        12_345L
        (Stats.Histogram.percentile one p))
    [ 0.; 50.; 99.; 99.9; 100. ]

let histogram_percentile_never_undershoots =
  QCheck.Test.make
    ~name:"quantile-at-least: estimate >= exact order statistic, <= max"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (int_range 1 1_000_000))
    (fun samples ->
      samples = []
      ||
      let h = Stats.Histogram.create () in
      List.iter (fun v -> Stats.Histogram.record h (Int64.of_int v)) samples;
      let sorted = Array.of_list (List.sort compare samples) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let rank =
            min (n - 1)
              (max 0 (int_of_float (ceil (float_of_int n *. p /. 100.)) - 1))
          in
          let exact = Int64.of_int sorted.(rank) in
          let est = Stats.Histogram.percentile h p in
          Int64.compare est exact >= 0
          && Int64.compare est (Stats.Histogram.max_value h) <= 0)
        [ 50.; 90.; 99.; 99.9 ])

let histogram_merge_pure () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  for v = 1 to 10 do
    Stats.Histogram.record a (Int64.of_int v)
  done;
  for v = 11 to 20 do
    Stats.Histogram.record b (Int64.of_int v)
  done;
  let m = Stats.Histogram.merge a b in
  checki "merged count" 20 (Stats.Histogram.count m);
  Alcotest.(check (float 0.01)) "merged mean" 10.5 (Stats.Histogram.mean m);
  Alcotest.(check int64) "merged min" 1L (Stats.Histogram.min_value m);
  Alcotest.(check int64) "merged max" 20L (Stats.Histogram.max_value m);
  Alcotest.(check int64) "merged p50" 10L (Stats.Histogram.percentile m 50.);
  (* inputs untouched *)
  checki "a count" 10 (Stats.Histogram.count a);
  checki "b count" 10 (Stats.Histogram.count b);
  Alcotest.(check int64) "a p50" 5L (Stats.Histogram.percentile a 50.);
  (* merging empties is the identity / empty histogram *)
  let e = Stats.Histogram.create () in
  checki "empty+empty" 0 (Stats.Histogram.count (Stats.Histogram.merge e e));
  let ae = Stats.Histogram.merge a e in
  checki "a+empty count" 10 (Stats.Histogram.count ae);
  Alcotest.(check int64) "a+empty min" 1L (Stats.Histogram.min_value ae);
  Alcotest.(check int64) "a+empty max" 10L (Stats.Histogram.max_value ae)

let histogram_merge_agrees_with_merge_into =
  QCheck.Test.make ~name:"merge a b = merge_into on every percentile" ~count:50
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 100) (int_range 0 100_000))
        (list_of_size (QCheck.Gen.int_range 1 100) (int_range 0 100_000)))
    (fun (xs, ys) ->
      let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
      List.iter (fun v -> Stats.Histogram.record a (Int64.of_int v)) xs;
      List.iter (fun v -> Stats.Histogram.record b (Int64.of_int v)) ys;
      let m = Stats.Histogram.merge a b in
      Stats.Histogram.merge_into ~src:a ~dst:b;
      Stats.Histogram.count m = Stats.Histogram.count b
      && List.for_all
           (fun p ->
             Stats.Histogram.percentile m p = Stats.Histogram.percentile b p)
           [ 10.; 50.; 90.; 99.; 99.9 ])

let histogram_merge_reset () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.record a 100L;
  Stats.Histogram.record b 300L;
  Stats.Histogram.merge_into ~src:a ~dst:b;
  checki "merged count" 2 (Stats.Histogram.count b);
  Alcotest.(check (float 1.)) "merged mean" 200. (Stats.Histogram.mean b);
  Stats.Histogram.reset b;
  checki "reset" 0 (Stats.Histogram.count b)

(* ---- Breakdown ---- *)

let breakdown_groups () =
  let eng = Sim.Engine.create () in
  let ctx =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_device" 100L;
        Sim.Engine.delay ~cat:Sim.Engine.Sys ~label:"io_kernel" 50L;
        Sim.Engine.delay ~cat:Sim.Engine.User ~label:"kv_get" 200L)
  in
  Sim.Engine.run eng;
  let bd = Stats.Breakdown.create () in
  Stats.Breakdown.absorb bd ctx;
  Alcotest.(check int64) "exact label" 100L (Stats.Breakdown.label bd "io_device");
  Alcotest.(check int64) "prefix group" 150L (Stats.Breakdown.group bd ~prefixes:[ "io_" ]);
  Alcotest.(check int64) "user total" 200L (Stats.Breakdown.user bd);
  Alcotest.(check int64) "sys total" 150L (Stats.Breakdown.sys bd);
  (match Stats.Breakdown.labels bd with
  | (top, v) :: _ ->
      Alcotest.(check string) "sorted desc" "kv_get" top;
      Alcotest.(check int64) "top value" 200L v
  | [] -> Alcotest.fail "no labels");
  Alcotest.(check (float 0.001)) "per op" 75.0 (Stats.Breakdown.per_op 150L 2)

(* ---- Table_fmt ---- *)

let formatting () =
  Alcotest.(check string) "kcycles" "12.3K" (Stats.Table_fmt.kcycles 12345.);
  Alcotest.(check string) "cycles small" "950" (Stats.Table_fmt.kcycles 950.);
  Alcotest.(check string) "ops" "1.5 Kops/s" (Stats.Table_fmt.ops_per_sec 1500.);
  Alcotest.(check string) "mops" "2.50 Mops/s" (Stats.Table_fmt.ops_per_sec 2.5e6);
  Alcotest.(check string) "speedup" "2.58x" (Stats.Table_fmt.speedup 2.58);
  Alcotest.(check string) "us" "1.00 us" (Stats.Table_fmt.usec_of_cycles 2400.);
  Alcotest.(check string) "seconds" "1.50 s" (Stats.Table_fmt.seconds 1.5);
  Alcotest.(check string) "ms" "25.00 ms" (Stats.Table_fmt.seconds 0.025);
  Alcotest.(check string) "pct" "43.7%" (Stats.Table_fmt.pct 43.7)

let () =
  Alcotest.run "stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick histogram_basics;
          QCheck_alcotest.to_alcotest histogram_percentile_accuracy;
          Alcotest.test_case "exact percentiles" `Quick
            histogram_percentiles_exact;
          Alcotest.test_case "bucket boundary" `Quick histogram_bucket_boundary;
          Alcotest.test_case "p999 on small n clamps to max" `Quick
            histogram_percentile_small_n;
          QCheck_alcotest.to_alcotest histogram_percentile_never_undershoots;
          Alcotest.test_case "merge (pure)" `Quick histogram_merge_pure;
          QCheck_alcotest.to_alcotest histogram_merge_agrees_with_merge_into;
          Alcotest.test_case "merge/reset" `Quick histogram_merge_reset;
        ] );
      ("breakdown", [ Alcotest.test_case "groups" `Quick breakdown_groups ]);
      ("table_fmt", [ Alcotest.test_case "formatting" `Quick formatting ]);
    ]
