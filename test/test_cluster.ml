(* Tests for lib/cluster (aqcluster): RPC backoff/timeout, router
   placement purity, replication + failover, and the clustercheck
   sweep's oracle (including its --broken teeth). *)

let checki = Alcotest.(check int)

(* ---- RPC backoff schedule ---- *)

let backoff_schedule () =
  let cfg =
    {
      Aqcluster.Rpc.default_config with
      Aqcluster.Rpc.backoff_base = 100;
      backoff_cap = 800;
    }
  in
  List.iteri
    (fun attempt want ->
      checki
        (Printf.sprintf "backoff attempt %d" attempt)
        want
        (Aqcluster.Rpc.backoff_delay cfg ~attempt))
    [ 100; 200; 400; 800; 800; 800 ];
  (* overflow-safe: a huge attempt still lands on the cap *)
  checki "backoff attempt 62" 800 (Aqcluster.Rpc.backoff_delay cfg ~attempt:62)

(* Exhaustion: calls to a node with no handler time out on the virtual
   clock; after max_attempts the caller gets Unreachable, and the fiber
   spent exactly (attempts * timeout + backoff sleeps) cycles. *)
let retry_exhaustion_raises () =
  let eng = Sim.Engine.create () in
  let cfg =
    {
      Aqcluster.Rpc.wire_latency = 10;
      timeout = 1_000;
      backoff_base = 100;
      backoff_cap = 400;
      max_attempts = 4;
    }
  in
  let rpc : (int, int) Aqcluster.Rpc.t =
    Aqcluster.Rpc.create ~eng ~cfg ~nodes:2 ~alive:(fun _ -> true)
  in
  let raised = ref false in
  let elapsed = ref 0L in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         let t0 = Sim.Engine.now_f () in
         (try ignore (Aqcluster.Rpc.call_retry rpc ~src:(-1) ~dst:1 7)
          with Aqcluster.Rpc.Unreachable { node = 1; attempts = 4 } ->
            raised := true);
         elapsed := Int64.sub (Sim.Engine.now_f ()) t0));
  Sim.Engine.run eng;
  Alcotest.(check bool) "Unreachable raised" true !raised;
  (* 4 timeouts of 1000 + backoffs 100, 200, 400 between attempts *)
  checki "virtual cycles spent" (4_000 + 700) (Int64.to_int !elapsed);
  checki "timeouts counted" 4 (Aqcluster.Rpc.timeouts rpc);
  checki "retries counted" 3 (Aqcluster.Rpc.retries rpc)

(* A registered handler replies within the timeout: one attempt, and
   the round trip costs two wire hops. *)
let rpc_roundtrip () =
  let eng = Sim.Engine.create () in
  let cfg =
    { Aqcluster.Rpc.default_config with Aqcluster.Rpc.wire_latency = 50 }
  in
  let rpc : (int, int) Aqcluster.Rpc.t =
    Aqcluster.Rpc.create ~eng ~cfg ~nodes:2 ~alive:(fun _ -> true)
  in
  Aqcluster.Rpc.set_handler rpc 1 (fun x -> x * 2);
  let got = ref 0 and dt = ref 0L in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         let t0 = Sim.Engine.now_f () in
         (match Aqcluster.Rpc.call rpc ~src:(-1) ~dst:1 21 with
         | Some r -> got := r
         | None -> Alcotest.fail "rpc timed out");
         dt := Int64.sub (Sim.Engine.now_f ()) t0));
  Sim.Engine.run eng;
  checki "doubled" 42 !got;
  checki "two wire hops" 100 (Int64.to_int !dt);
  checki "no timeouts" 0 (Aqcluster.Rpc.timeouts rpc)

(* ---- router placement: pure in (key, live set) ---- *)

let router_nodes = 7

let placement_pure =
  QCheck.Test.make ~name:"router placement is pure in (key, live set)"
    ~count:200
    QCheck.(
      triple (string_of_size (QCheck.Gen.int_range 0 24))
        (list_of_size (QCheck.Gen.return router_nodes) bool)
        (int_range 1 5))
    (fun (key, live_l, k) ->
      let live = Array.of_list live_l in
      let router = Aqcluster.Router.create ~nodes:router_nodes () in
      let p1 = Aqcluster.Router.place router ~live ~key ~k in
      let p2 = Aqcluster.Router.place router ~live ~key ~k in
      let alive = Array.fold_left (fun a l -> if l then a + 1 else a) 0 live in
      p1 = p2
      && List.length p1 = min k alive
      && List.for_all (fun n -> live.(n)) p1
      && List.length (List.sort_uniq compare p1) = List.length p1)

(* Killing a node never reshuffles the survivors: the dead node's slots
   fall to the next ring member, everyone else keeps their role order. *)
let placement_stable_under_failure () =
  let router = Aqcluster.Router.create ~nodes:5 () in
  let all = Array.make 5 true in
  for i = 0 to 199 do
    let key = Printf.sprintf "key%04d" i in
    let before = Aqcluster.Router.place router ~live:all ~key ~k:3 in
    let dead = List.hd before in
    let live = Array.copy all in
    live.(dead) <- false;
    let after = Aqcluster.Router.place router ~live ~key ~k:3 in
    let survivors = List.filter (fun n -> n <> dead) before in
    let prefix_len = List.length survivors in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    Alcotest.(check (list int))
      (Printf.sprintf "survivors keep order for %s" key)
      survivors (take prefix_len after)
  done

(* ---- cluster data path ---- *)

let small_cfg ?(nodes = 3) ?(replicas = 2) ?(broken = false) () =
  {
    Aqcluster.Cluster.default_config with
    Aqcluster.Cluster.nodes;
    replicas;
    broken;
    node = { Aqcluster.Node.cache_frames = 32; wal_pages = 512 };
    recovery_delay = 1_000_000;
  }

let cluster_roundtrip () =
  let eng = Sim.Engine.create () in
  let cfg = small_cfg () in
  let cl = Aqcluster.Cluster.create ~cfg ~eng () in
  Aqcluster.Cluster.boot cl;
  let kv = Aqcluster.Cluster.kv cl in
  ignore
    (Sim.Engine.spawn eng ~core:3 (fun () ->
         for i = 0 to 19 do
           kv.Ycsb.Runner.kv_insert
             (Printf.sprintf "user%02d" i)
             (Printf.sprintf "value-%d" i)
         done;
         kv.Ycsb.Runner.kv_update "user03" "updated";
         Alcotest.(check (option string))
           "read back" (Some "updated")
           (kv.Ycsb.Runner.kv_read "user03");
         Alcotest.(check (option string))
           "absent key" None
           (kv.Ycsb.Runner.kv_read "nope");
         kv.Ycsb.Runner.kv_rmw "user05" (fun v -> v ^ "!");
         Alcotest.(check (option string))
           "rmw applied" (Some "value-5!")
           (kv.Ycsb.Runner.kv_read "user05");
         let scanned = kv.Ycsb.Runner.kv_scan ~start:"user10" ~n:4 in
         Alcotest.(check (list string))
           "scan keys"
           [ "user10"; "user11"; "user12"; "user13" ]
           (List.map fst scanned)));
  Sim.Engine.run eng;
  let st = Aqcluster.Cluster.stats cl in
  checki "acked writes" 22 st.Aqcluster.Cluster.acked_writes;
  checki "no failovers" 0 st.Aqcluster.Cluster.failovers;
  Alcotest.(check (list string))
    "replicas converged" []
    (Aqcluster.Cluster.convergence_violations cl)

(* Every write lands on [replicas] distinct nodes before the ack. *)
let writes_replicated_k_times () =
  let eng = Sim.Engine.create () in
  let cfg = small_cfg ~nodes:4 ~replicas:3 () in
  let cl = Aqcluster.Cluster.create ~cfg ~eng () in
  Aqcluster.Cluster.boot cl;
  let kv = Aqcluster.Cluster.kv cl in
  ignore
    (Sim.Engine.spawn eng ~core:4 (fun () ->
         for i = 0 to 11 do
           kv.Ycsb.Runner.kv_insert (Printf.sprintf "k%02d" i) "v"
         done));
  Sim.Engine.run eng;
  for i = 0 to 11 do
    let key = Printf.sprintf "k%02d" i in
    let copies = ref 0 in
    for n = 0 to 3 do
      match Aqcluster.Node.peek (Aqcluster.Cluster.node cl n) key with
      | Some { Aqcluster.Node.value = Some _; _ } -> incr copies
      | _ -> ()
    done;
    checki (Printf.sprintf "%s has 3 durable copies" key) 3 !copies
  done

(* Crash the primary mid-run: the router promotes the next replica,
   writes keep acking, the node recovers and resyncs, and no
   acknowledged write is lost. *)
let failover_keeps_acked_writes () =
  let eng = Sim.Engine.create () in
  let cfg = small_cfg () in
  let cl = Aqcluster.Cluster.create ~cfg ~eng () in
  Aqcluster.Cluster.boot cl;
  let kv = Aqcluster.Cluster.kv cl in
  let acked : (string * string) list ref = ref [] in
  ignore
    (Sim.Engine.spawn eng ~core:3 (fun () ->
         for i = 0 to 39 do
           let k = Printf.sprintf "user%02d" i in
           let v = Printf.sprintf "value-%d" i in
           match kv.Ycsb.Runner.kv_update k v with
           | () -> acked := (k, v) :: !acked
           | exception Aqcluster.Rpc.Unreachable _ -> ()
         done));
  (* down node 1 while the writes are in flight *)
  Sim.Engine.post eng ~at:40_000_000L (fun () ->
      Aqcluster.Cluster.crash_node cl 1 ~ordinal:0);
  Sim.Engine.run eng;
  (* writers stopped: one final anti-entropy pass, then verify *)
  ignore
    (Sim.Engine.spawn eng ~core:3 (fun () ->
         ignore (Aqcluster.Cluster.resync cl)));
  Sim.Engine.run eng;
  let st = Aqcluster.Cluster.stats cl in
  checki "one failover" 1 st.Aqcluster.Cluster.failovers;
  Alcotest.(check bool) "some writes acked" true (List.length !acked > 30);
  ignore
    (Sim.Engine.spawn eng ~core:3 (fun () ->
         List.iter
           (fun (k, v) ->
             Alcotest.(check (option string))
               (Printf.sprintf "acked %s survives failover" k)
               (Some v)
               (kv.Ycsb.Runner.kv_read k))
           !acked));
  Sim.Engine.run eng;
  Alcotest.(check (list string))
    "replicas converged after resync" []
    (Aqcluster.Cluster.convergence_violations cl);
  Alcotest.(check bool)
    "recovered node is live again" true
    (Aqcluster.Cluster.live_view cl).(1)

(* ---- clustercheck sweep ---- *)

let sweep_cfg = small_cfg ()

let sweep_clean () =
  let r =
    Aqcluster.Check.sweep ~cfg:sweep_cfg ~seeds:[ 11 ] ~points:2 ()
  in
  checki "combos" (2 * 3) r.Aqcluster.Check.combos;
  checki "every combo crashed its node" r.Aqcluster.Check.combos
    r.Aqcluster.Check.crashes;
  Alcotest.(check (list string)) "no violations" [] r.Aqcluster.Check.violations

let sweep_broken_caught () =
  let r =
    Aqcluster.Check.sweep ~broken:true ~cfg:sweep_cfg ~seeds:[ 11 ] ~points:2 ()
  in
  Alcotest.(check bool)
    "ack-before-replication is caught" false
    (Aqcluster.Check.ok r)

(* ---- Engine.blocked_report node tag (satellite) ---- *)

let blocked_report_node_tag () =
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~name:"srv" ~core:2 (fun () ->
         Sim.Engine.set_node_id (Sim.Engine.self ()) 7;
         Sim.Engine.suspend (fun _resume -> ())));
  Sim.Engine.run eng;
  let report = Sim.Engine.blocked_report eng in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "report names the cluster node" true
    (contains ~sub:" node 7" report);
  Alcotest.(check bool)
    "fiber without a node id is untagged" true
    (not (contains ~sub:" node -1" report))

let () =
  Alcotest.run "cluster"
    [
      ( "rpc",
        [
          Alcotest.test_case "backoff schedule" `Quick backoff_schedule;
          Alcotest.test_case "retry exhaustion raises" `Quick
            retry_exhaustion_raises;
          Alcotest.test_case "roundtrip" `Quick rpc_roundtrip;
        ] );
      ( "router",
        [
          QCheck_alcotest.to_alcotest placement_pure;
          Alcotest.test_case "placement stable under failure" `Quick
            placement_stable_under_failure;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "kv roundtrip" `Quick cluster_roundtrip;
          Alcotest.test_case "writes replicated K times" `Quick
            writes_replicated_k_times;
          Alcotest.test_case "failover keeps acked writes" `Quick
            failover_keeps_acked_writes;
        ] );
      ( "check",
        [
          Alcotest.test_case "sweep clean" `Slow sweep_clean;
          Alcotest.test_case "broken variant caught" `Slow sweep_broken_caught;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "blocked_report node tag" `Quick
            blocked_report_node_tag;
        ] );
    ]
