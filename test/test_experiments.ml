(* Integration tests for the experiment harness (lib/experiments): small
   versions of the paper's scenarios asserting the headline inequalities
   rather than absolute numbers. *)

let checki = Alcotest.(check int)

let registry_complete () =
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " present") true (List.mem id ids))
    [
      "table1"; "fig5a"; "fig5b"; "fig6a"; "fig6b"; "fig6c"; "fig7"; "fig8a";
      "fig8b"; "fig8c"; "fig9"; "fig10a"; "fig10b";
    ];
  checki "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "find works" true (Experiments.Registry.find "fig7" <> None);
  Alcotest.(check bool) "find unknown" true (Experiments.Registry.find "fig99" = None)

let microbench_aquila_beats_linux_single_thread () =
  let run aquila =
    let eng = Sim.Engine.create () in
    let sys =
      if aquila then
        Experiments.Microbench.Aq
          (Experiments.Scenario.make_aquila ~frames:512 ~dev:Experiments.Scenario.Pmem ())
      else
        Experiments.Microbench.Lx
          (Experiments.Scenario.make_linux ~readahead:1 ~frames:512
             ~dev:Experiments.Scenario.Pmem ())
    in
    let r =
      Experiments.Microbench.run ~eng ~sys ~file_pages:400 ~shared:true ~threads:1
        ~ops_per_thread:400 ~pattern:Experiments.Microbench.Permutation ()
    in
    r.Experiments.Microbench.throughput_ops_s
  in
  let aq = run true and lx = run false in
  Alcotest.(check bool)
    (Printf.sprintf "aquila faster on the fault path (%.0f vs %.0f)" aq lx)
    true (aq > lx)

let microbench_scales_better_shared () =
  let thr aquila threads =
    let eng = Sim.Engine.create () in
    let sys =
      if aquila then
        Experiments.Microbench.Aq
          (Experiments.Scenario.make_aquila ~frames:4096 ~dev:Experiments.Scenario.Pmem ())
      else
        Experiments.Microbench.Lx
          (Experiments.Scenario.make_linux ~readahead:1 ~frames:4096
             ~dev:Experiments.Scenario.Pmem ())
    in
    (Experiments.Microbench.run ~eng ~sys ~file_pages:3200 ~shared:true ~threads
       ~ops_per_thread:(3200 / threads) ~pattern:Experiments.Microbench.Permutation ())
      .Experiments.Microbench.throughput_ops_s
  in
  let gap1 = thr true 1 /. thr false 1 in
  let gap16 = thr true 16 /. thr false 16 in
  Alcotest.(check bool)
    (Printf.sprintf "gap grows with threads (%.2fx -> %.2fx)" gap1 gap16)
    true
    (gap16 > gap1 *. 1.5)

let microbench_counts_faults () =
  let eng = Sim.Engine.create () in
  let sys =
    Experiments.Microbench.Aq
      (Experiments.Scenario.make_aquila ~frames:512 ~dev:Experiments.Scenario.Pmem ())
  in
  let r =
    Experiments.Microbench.run ~eng ~sys ~file_pages:256 ~shared:true ~threads:2
      ~ops_per_thread:128 ~pattern:Experiments.Microbench.Permutation ()
  in
  checki "permutation touches each page once" 256 r.Experiments.Microbench.ops;
  checki "every access faulted" 256 r.Experiments.Microbench.faults

let fig8c_access_method_ordering () =
  (* Cheap re-check of the Figure 8(c) ordering with a tiny run. *)
  let cost access =
    let eng = Sim.Engine.create () in
    let stack = Experiments.Scenario.make_aquila_access ~frames:256 ~access () in
    let sys = Experiments.Microbench.Aq stack in
    let r =
      Experiments.Microbench.run ~eng ~sys ~file_pages:128 ~shared:true ~threads:1
        ~ops_per_thread:128 ~pattern:Experiments.Microbench.Permutation ()
    in
    Int64.to_float r.Experiments.Microbench.elapsed_cycles
  in
  let dax = cost (fun c _ -> Sdevice.Access.dax_pmem c (Sdevice.Pmem.create ())) in
  let host =
    cost (fun c _ ->
        Sdevice.Access.host_pmem c ~entry:Sdevice.Access.From_guest
          (Sdevice.Pmem.create ()))
  in
  Alcotest.(check bool) "DAX beats host path" true (dax < host)

(* ---- Policy ablation determinism across --jobs ---- *)

(* Fanout's parallel path emits the per-job captures with the real
   [print_string], so byte-level comparison needs OS-level stdout
   redirection rather than Sim.Sink.capture. *)
let capture_stdout f =
  let tmp = Filename.temp_file "aq-fanout" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (try f ()
   with e ->
     restore ();
     Sys.remove tmp;
     raise e);
  restore ();
  let ic = open_in_bin tmp in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  s

let policy_ablation_jobs_parity () =
  (* Every policy must produce byte-identical run output whether the two
     ablation workloads run sequentially or on two domains: virtual
     counters (and thus the printed tables) depend only on seeds. *)
  List.iter
    (fun policy ->
      let cell workload () =
        Experiments.Policy_ablation.print_rows
          [
            Experiments.Policy_ablation.run_one ~frames:64 ~threads:2
              ~ops_per_thread:200 ~workload ~policy ();
          ]
      in
      let out jobs =
        capture_stdout (fun () ->
            Experiments.Fanout.run ~jobs
              [
                Experiments.Fanout.job ~name:"pa-zipf"
                  (cell Experiments.Policy_ablation.Zipf_mix);
                Experiments.Fanout.job ~name:"pa-scan"
                  (cell Experiments.Policy_ablation.Scan_mix);
              ])
      in
      let seq = out 1 and par = out 2 in
      Alcotest.(check bool)
        (Mcache.Policy.kind_to_string policy ^ ": output non-empty")
        true
        (String.length seq > 0);
      Alcotest.(check string)
        (Mcache.Policy.kind_to_string policy
        ^ ": --jobs 2 output byte-identical to sequential")
        seq par)
    Mcache.Policy.all_kinds

let scenario_stacks_are_independent () =
  let s1 = Experiments.Scenario.make_aquila ~frames:64 ~dev:Experiments.Scenario.Pmem () in
  let s2 = Experiments.Scenario.make_aquila ~frames:64 ~dev:Experiments.Scenario.Pmem () in
  Alcotest.(check bool) "separate machines" true
    (s1.Experiments.Scenario.a_machine != s2.Experiments.Scenario.a_machine);
  Alcotest.(check bool) "separate stores" true
    (s1.Experiments.Scenario.a_store != s2.Experiments.Scenario.a_store)

let () =
  Alcotest.run "experiments"
    [
      ("registry", [ Alcotest.test_case "complete" `Quick registry_complete ]);
      ( "microbench",
        [
          Alcotest.test_case "aquila beats linux" `Quick
            microbench_aquila_beats_linux_single_thread;
          Alcotest.test_case "scalability gap grows" `Slow
            microbench_scales_better_shared;
          Alcotest.test_case "fault accounting" `Quick microbench_counts_faults;
        ] );
      ( "figures",
        [ Alcotest.test_case "fig8c ordering" `Quick fig8c_access_method_ordering ] );
      ( "scenario",
        [ Alcotest.test_case "independence" `Quick scenario_stacks_are_independent ] );
      ( "policy ablation",
        [
          Alcotest.test_case "--jobs parity per policy" `Quick
            policy_ablation_jobs_parity;
        ] );
    ]
