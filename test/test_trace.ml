(* Tests for the virtual-time tracing layer (lib/trace) and its wiring
   through the simulated stack. *)

let checki = Alcotest.(check int)

(* ---- minimal JSON parser (no external deps) ----------------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then
      raise (Bad_json (Printf.sprintf "expected %c at byte %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* the exporter only emits \u00XX controls; decode loosely *)
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | c -> raise (Bad_json (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
      | '\000' -> raise (Bad_json "eof inside string")
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                J_obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad_json (Printf.sprintf "bad object char %c" c))
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_list []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                J_list (List.rev (v :: acc))
            | c -> raise (Bad_json (Printf.sprintf "bad array char %c" c))
          in
          elements []
    | '"' -> J_str (parse_string ())
    | 't' -> literal "true" (J_bool true)
    | 'f' -> literal "false" (J_bool false)
    | 'n' -> literal "null" J_null
    | _ ->
        let start = !pos in
        let numchar c =
          (c >= '0' && c <= '9')
          || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while numchar (peek ()) do
          advance ()
        done;
        if !pos = start then
          raise (Bad_json (Printf.sprintf "unexpected byte at %d" !pos));
        J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing bytes after document");
  v

let field name = function
  | J_obj kvs -> List.assoc_opt name kvs
  | _ -> None

let str_field name o =
  match field name o with Some (J_str s) -> Some s | _ -> None

let num_field name o =
  match field name o with Some (J_num f) -> Some f | _ -> None

(* ---- trace core --------------------------------------------------- *)

let ring_overflow_drops () =
  let t = Trace.create ~capacity_per_core:4 () in
  for i = 1 to 10 do
    Trace.instant t ~ts:(Int64.of_int i) ~core:0 ~fiber:1 ~cat:"x"
      (Printf.sprintf "e%d" i)
  done;
  checki "retained" 4 (Trace.events_count t);
  checki "dropped" 6 (Trace.dropped t);
  let names = List.map (fun e -> e.Trace.ev_name) (Trace.events t) in
  Alcotest.(check (list string)) "oldest overwritten, order kept"
    [ "e7"; "e8"; "e9"; "e10" ] names

let core_clamping () =
  let t = Trace.create ~capacity_per_core:8 ~max_cores:2 () in
  Trace.instant t ~ts:1L ~core:99 ~fiber:0 ~cat:"x" "wild";
  Trace.instant t ~ts:2L ~core:(-3) ~fiber:0 ~cat:"x" "neg";
  checki "both kept" 2 (Trace.events_count t);
  List.iter
    (fun e ->
      Alcotest.(check bool) "core within range" true
        (e.Trace.ev_core >= 0 && e.Trace.ev_core < 2))
    (Trace.events t)

let summary_aggregates () =
  let t = Trace.create () in
  Trace.span t ~ts:0L ~dur:10L ~core:0 ~fiber:1 ~cat:"a" "alpha";
  Trace.span t ~ts:5L ~dur:30L ~core:1 ~fiber:2 ~cat:"a" "alpha";
  Trace.span t ~ts:7L ~dur:25L ~core:0 ~fiber:1 ~cat:"b" "beta";
  Trace.instant t ~ts:8L ~core:0 ~fiber:1 ~cat:"a" "marker";
  match Trace.summary t with
  | [ first; second ] ->
      Alcotest.(check string) "top span" "alpha" first.Trace.ss_name;
      checki "top count" 2 first.Trace.ss_count;
      Alcotest.(check int64) "top total" 40L first.Trace.ss_total;
      Alcotest.(check string) "second" "beta" second.Trace.ss_name
  | l -> Alcotest.failf "expected 2 span stats, got %d" (List.length l)

let csv_shape () =
  let t = Trace.create () in
  Trace.span t ~ts:3L ~dur:4L ~core:0 ~fiber:1 ~cat:"c" ~value:9L "s";
  Trace.counter t ~ts:5L ~core:0 ~cat:"c" ~value:2L "depth";
  let lines = String.split_on_char '\n' (String.trim (Trace.csv t)) in
  match lines with
  | [ header; l1; l2 ] ->
      Alcotest.(check string) "header" "ts,seq,kind,core,fiber,cat,name,dur,value"
        header;
      Alcotest.(check bool) "span row" true
        (String.length l1 > 0 && String.contains l1 's');
      Alcotest.(check bool) "counter row" true
        (String.length l2 > 0 && String.contains l2 'd')
  | _ -> Alcotest.failf "expected 3 csv lines, got %d" (List.length lines)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let csv_empty_tracer () =
  let t = Trace.create () in
  Alcotest.(check string)
    "header only" "ts,seq,kind,core,fiber,cat,name,dur,value"
    (String.trim (Trace.csv t));
  (* the chrome export of an empty tracer is still a parseable document
     whose only records are metadata *)
  match field "traceEvents" (parse_json (Trace.chrome_json t)) with
  | Some (J_list l) ->
      List.iter
        (fun e ->
          Alcotest.(check (option string)) "meta only" (Some "M")
            (str_field "ph" e))
        l
  | _ -> Alcotest.fail "no traceEvents array"

let csv_counter_only () =
  let t = Trace.create () in
  Trace.counter t ~ts:5L ~core:0 ~cat:"q" ~value:2L "depth";
  Trace.counter t ~ts:9L ~core:1 ~cat:"q" ~value:0L "depth";
  match String.split_on_char '\n' (String.trim (Trace.csv t)) with
  | [ _header; l1; l2 ] ->
      Alcotest.(check bool) "counter kind" true (contains ~needle:",counter," l1);
      (* a zero-valued counter sample still round-trips as 0, not "" *)
      Alcotest.(check bool) "zero value kept" true
        (contains ~needle:",depth,0,0" l2)
  | lines -> Alcotest.failf "expected 3 csv lines, got %d" (List.length lines)

let csv_field_escaping () =
  let t = Trace.create () in
  Trace.instant t ~ts:1L ~core:0 ~fiber:0 ~cat:"a,b" "na\"me";
  Trace.span t ~ts:2L ~dur:3L ~core:0 ~fiber:1 ~cat:"plain" "ok";
  let csv = Trace.csv t in
  Alcotest.(check bool) "comma field quoted" true
    (contains ~needle:",\"a,b\"," csv);
  Alcotest.(check bool) "embedded quote doubled" true
    (contains ~needle:"\"na\"\"me\"" csv);
  Alcotest.(check bool) "plain fields stay bare" true
    (contains ~needle:",plain,ok," csv)

(* ---- wiring through the stack ------------------------------------- *)

(* Small Aquila microbenchmark: cache smaller than the file so faults
   miss, evict and hit the device — touching every instrumented layer. *)
let run_workload () =
  let eng = Sim.Engine.create () in
  let stack =
    Experiments.Scenario.make_aquila ~frames:64 ~dev:Experiments.Scenario.Pmem
      ()
  in
  ignore
    (Experiments.Microbench.run ~eng
       ~sys:(Experiments.Microbench.Aq stack)
       ~file_pages:256 ~shared:true ~threads:4 ~ops_per_thread:200 ~seed:11 ())

let traced_json () =
  ignore (Trace.start ~capacity_per_core:16384 ());
  run_workload ();
  let tr = Option.get (Trace.stop ()) in
  Trace.chrome_json tr

let chrome_json_wellformed () =
  let doc = parse_json (traced_json ()) in
  let events =
    match field "traceEvents" doc with
    | Some (J_list l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 100);
  (* every record carries the required Chrome fields *)
  List.iter
    (fun e ->
      (match str_field "ph" e with
      | Some (("X" | "i") as ph) ->
          (* spans and instants live on a (process, thread) track *)
          Alcotest.(check bool) (ph ^ " ts") true (num_field "ts" e <> None);
          Alcotest.(check bool) (ph ^ " tid") true (num_field "tid" e <> None)
      | Some "C" ->
          Alcotest.(check bool) "C ts" true (num_field "ts" e <> None)
      | Some "M" -> ()
      | _ -> Alcotest.fail "bad or missing ph");
      Alcotest.(check bool) "pid" true (num_field "pid" e <> None);
      Alcotest.(check bool) "name" true (str_field "name" e <> None))
    events;
  (* real events are emitted in nondecreasing virtual-time order *)
  let ts_order =
    List.filter_map
      (fun e ->
        match str_field "ph" e with
        | Some "M" -> None
        | _ -> num_field "ts" e)
      events
  in
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "ts monotone" true (monotone ts_order);
  (* spans from all the major subsystems are present *)
  let cats =
    List.filter_map (fun e -> str_field "cat" e) events
    |> List.sort_uniq compare
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "cat %s present" c) true
        (List.mem c cats))
    [ "engine"; "hw"; "mcache"; "sdevice"; "aquila" ]

let disabled_emits_nothing () =
  Alcotest.(check bool) "tracing off" false (Trace.on ());
  Alcotest.(check bool) "no ambient tracer" true (Trace.current () = None);
  (* a tracer that exists but is not installed must stay empty *)
  let bystander = Trace.create () in
  run_workload ();
  checki "no events recorded" 0 (Trace.events_count bystander);
  checki "none dropped" 0 (Trace.dropped bystander);
  Alcotest.(check bool) "still off" false (Trace.on ())

let export_deterministic () =
  let a = traced_json () in
  let b = traced_json () in
  Alcotest.(check bool) "byte-identical same-seed export" true (String.equal a b)

let () =
  Alcotest.run "trace"
    [
      ( "core",
        [
          Alcotest.test_case "ring overflow" `Quick ring_overflow_drops;
          Alcotest.test_case "core clamping" `Quick core_clamping;
          Alcotest.test_case "summary" `Quick summary_aggregates;
          Alcotest.test_case "csv" `Quick csv_shape;
          Alcotest.test_case "csv empty tracer" `Quick csv_empty_tracer;
          Alcotest.test_case "csv counter-only stream" `Quick csv_counter_only;
          Alcotest.test_case "csv field escaping" `Quick csv_field_escaping;
        ] );
      ( "stack",
        [
          Alcotest.test_case "chrome json well-formed" `Quick
            chrome_json_wellformed;
          Alcotest.test_case "disabled emits nothing" `Quick
            disabled_emits_nothing;
          Alcotest.test_case "deterministic export" `Quick export_deterministic;
        ] );
    ]
