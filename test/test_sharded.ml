(* Shard-owned partitioning: Shard_stack/Sharded parity across shard
   counts and modes, Partition vs plain Dram_cache, and the satellite
   knobs (page-cache tree_shards, device submission queues, blobstore
   free-list partitions). *)

let checki = Alcotest.(check int)
let psz = Hw.Defs.page_size
let c = Hw.Costs.default

(* Small but eviction-heavy shape: every run finishes in well under a
   second while still exercising miss/evict/writeback paths. *)
let small ?(write_fraction = 0.3) ?(pattern = Experiments.Sharded.Uniform)
    ?(msync_every = 0) ?(crash_at = None) ?(seed = 23) () =
  {
    Experiments.Sharded.homes = 4;
    cores = 8;
    ops_per_core = 60;
    batch = 4;
    frames_per_home = 32;
    file_pages = 512;
    write_fraction;
    pattern;
    msync_every;
    crash_at;
    seed;
  }

let sig_of ((st : Sim.Shard.stats), (ss : Experiments.Shard_stack.stats)) =
  Printf.sprintf "%s | events=%d final=%Ld windows=%d"
    (Experiments.Shard_stack.stats_to_string ss)
    st.Sim.Shard.events st.Sim.Shard.final_cycles st.Sim.Shard.windows

(* ---- determinism across shard counts (the tentpole contract) ---- *)

let parity_across_shard_counts () =
  let p = small () in
  let base = sig_of (Experiments.Sharded.run ~deterministic:true ~shards:1 ~p ()) in
  List.iter
    (fun shards ->
      let s =
        sig_of (Experiments.Sharded.run ~deterministic:true ~shards ~p ())
      in
      Alcotest.(check string)
        (Printf.sprintf "deterministic shards=%d == shards=1" shards)
        base s)
    [ 2; 4; 8 ]

let free_running_matches_deterministic () =
  let p = small ~write_fraction:0.5 ~seed:31 () in
  List.iter
    (fun shards ->
      let det =
        sig_of (Experiments.Sharded.run ~deterministic:true ~shards ~p ())
      in
      let free =
        sig_of (Experiments.Sharded.run ~deterministic:false ~shards ~p ())
      in
      Alcotest.(check string)
        (Printf.sprintf "free-running shards=%d == deterministic" shards)
        det free)
    [ 2; 4 ]

(* The QCheck sweep: any seed/write-mix/pattern, the partitioned cache
   reproduces the single-shard counters exactly at 2/4/8 shards. *)
let qcheck_partition_parity =
  QCheck.Test.make ~name:"partitioned stats invariant across shard counts"
    ~count:6
    QCheck.(triple (int_bound 1000) (int_bound 10) bool)
    (fun (seed, wf10, zipf) ->
      let p =
        small ~seed:(seed + 1)
          ~write_fraction:(float_of_int wf10 /. 10.)
          ~pattern:
            (if zipf then Experiments.Sharded.Zipf
             else Experiments.Sharded.Uniform)
          ()
      in
      let base =
        sig_of (Experiments.Sharded.run ~deterministic:true ~shards:1 ~p ())
      in
      List.for_all
        (fun shards ->
          base
          = sig_of (Experiments.Sharded.run ~deterministic:true ~shards ~p ()))
        [ 2; 4; 8 ])

(* ---- crash parity (faultcheck satellite) ---- *)

let crash_parity () =
  let p =
    small ~write_fraction:0.5 ~msync_every:4 ~crash_at:(Some 20_000_000)
      ~seed:41 ()
  in
  let base = sig_of (Experiments.Sharded.run ~deterministic:true ~shards:1 ~p ()) in
  List.iter
    (fun (shards, det) ->
      let s = sig_of (Experiments.Sharded.run ~deterministic:det ~shards ~p ()) in
      Alcotest.(check string)
        (Printf.sprintf "crash run shards=%d det=%b == baseline" shards det)
        base s)
    [ (2, true); (4, true); (4, false) ];
  (* the crash really fired: a rerun without it does more write-backs
     reaching the device than the crashed run only if dirty state was
     dropped; at minimum the two runs must disagree *)
  let no_crash =
    sig_of
      (Experiments.Sharded.run ~deterministic:true ~shards:1
         ~p:{ p with crash_at = None } ())
  in
  Alcotest.(check bool) "crash changes the schedule" true (base <> no_crash)

(* ---- Partition(homes = 1) == plain Dram_cache ---- *)

type rig = { cache : Mcache.Dram_cache.t }

let make_cache ~frames ~file_pages =
  let machine = Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  let cfg = Mcache.Dram_cache.default_config ~frames in
  let cache = Mcache.Dram_cache.create ~costs:c ~machine ~page_table:pt cfg in
  let pmem =
    Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (file_pages * psz)) ()
  in
  let access = Sdevice.Access.dax_pmem c pmem in
  Mcache.Dram_cache.register_file cache ~file_id:1 ~access
    ~translate:(fun p -> if p < file_pages then Some p else None);
  Mcache.Dram_cache.set_shoot_cores cache [ 0 ];
  { cache }

let stream rng n file_pages =
  List.init n (fun _ ->
      (Sim.Rng.int rng file_pages, Sim.Rng.float rng < 0.4))

let single_home_partition_equals_plain () =
  let file_pages = 256 in
  let ops = stream (Sim.Rng.create 7) 400 file_pages in
  let drive fault =
    let eng = Sim.Engine.create () in
    ignore
      (Sim.Engine.spawn eng ~core:0 (fun () ->
           List.iter
             (fun (page, write) ->
               fault ~key:(Mcache.Pagekey.make ~file:1 ~page) ~vpn:page ~write)
             ops));
    Sim.Engine.run eng
  in
  let plain = make_cache ~frames:32 ~file_pages in
  drive (fun ~key ~vpn ~write ->
      Mcache.Dram_cache.fault plain.cache ~core:0 ~key ~vpn ~write ());
  let part_arena = make_cache ~frames:32 ~file_pages in
  let part = Mcache.Partition.create ~arenas:[| part_arena.cache |] () in
  drive (fun ~key ~vpn ~write ->
      Mcache.Partition.fault part ~core:0 ~key ~vpn ~write ());
  let pc = Mcache.Partition.counters part in
  checki "hits" (Mcache.Dram_cache.fault_hits plain.cache)
    pc.Mcache.Partition.fault_hits;
  checki "misses" (Mcache.Dram_cache.misses plain.cache) pc.Mcache.Partition.misses;
  checki "evictions" (Mcache.Dram_cache.evictions plain.cache)
    pc.Mcache.Partition.evictions;
  checki "wb_ios" (Mcache.Dram_cache.writeback_ios plain.cache)
    pc.Mcache.Partition.writeback_ios

let partition_routing () =
  let a0 = make_cache ~frames:8 ~file_pages:64 in
  let a1 = make_cache ~frames:8 ~file_pages:64 in
  let part = Mcache.Partition.create ~arenas:[| a0.cache; a1.cache |] () in
  checki "homes" 2 (Mcache.Partition.homes part);
  checki "page 5 -> home 1" 1 (Mcache.Partition.home_of part ~page:5);
  checki "page 6 -> home 0" 0 (Mcache.Partition.home_of part ~page:6);
  Alcotest.(check bool) "arena_for routes" true
    (Mcache.Partition.arena_for part ~page:5 == a1.cache);
  Alcotest.check_raises "empty partition rejected"
    (Invalid_argument "Partition.create: no arenas") (fun () ->
      ignore (Mcache.Partition.create ~arenas:[||] ()))

(* ---- page-cache tree sharding ---- *)

let linux_rig ~tree_shards ~frames ~file_pages =
  let machine = Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  let cfg =
    { (Linux_sim.Page_cache.default_config ~frames) with tree_shards }
  in
  let pc = Linux_sim.Page_cache.create ~costs:c ~machine ~page_table:pt cfg in
  let pmem =
    Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (file_pages * psz)) ()
  in
  let access =
    Sdevice.Access.host_pmem c ~entry:Sdevice.Access.In_kernel pmem
  in
  Linux_sim.Page_cache.register_file pc ~file_id:1 ~access ~translate:(fun p ->
      if p < file_pages then Some p else None);
  pc

let drive_linux pc ops =
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         List.iter
           (fun (page, write) ->
             Linux_sim.Page_cache.fault pc ~core:0
               ~key:(Mcache.Pagekey.make ~file:1 ~page)
               ~vpn:page ~write)
           ops;
         Linux_sim.Page_cache.msync_file pc ~core:0 ~file_id:1));
  Sim.Engine.run eng

let tree_shards_functional_parity () =
  let file_pages = 256 in
  let ops = stream (Sim.Rng.create 9) 300 file_pages in
  let one = linux_rig ~tree_shards:1 ~frames:48 ~file_pages in
  drive_linux one ops;
  let four = linux_rig ~tree_shards:4 ~frames:48 ~file_pages in
  drive_linux four ops;
  (* slot layout never changes what is cached or written back, only
     which lock serializes it *)
  checki "hits" (Linux_sim.Page_cache.fault_hits one)
    (Linux_sim.Page_cache.fault_hits four);
  checki "misses" (Linux_sim.Page_cache.misses one)
    (Linux_sim.Page_cache.misses four);
  checki "wb_ios" (Linux_sim.Page_cache.writeback_ios one)
    (Linux_sim.Page_cache.writeback_ios four);
  checki "dirty drained" 0 (Linux_sim.Page_cache.dirty_pages four);
  Alcotest.(check bool) "residency agrees" true
    (Linux_sim.Page_cache.is_resident one
       ~key:(Mcache.Pagekey.make ~file:1 ~page:3)
    = Linux_sim.Page_cache.is_resident four
        ~key:(Mcache.Pagekey.make ~file:1 ~page:3))

(* ---- device submission queues ---- *)

let device_queue_accounting () =
  let dev =
    Sdevice.Nvme.create ~queues:4 ~name:"nvme-q"
      ~capacity_bytes:(Int64.of_int (64 * psz))
      ()
  in
  checki "queues" 4 (Sdevice.Block_dev.queues dev);
  let eng = Sim.Engine.create () in
  let buf = Bytes.create psz in
  for core = 0 to 5 do
    ignore
      (Sim.Engine.spawn eng ~core (fun () ->
           Sdevice.Block_dev.read dev
             ~addr:(Int64.of_int (core * psz))
             ~len:psz ~dst:buf ~dst_off:0))
  done;
  Sim.Engine.run eng;
  let q = Sdevice.Block_dev.queue_submissions dev in
  checki "cores 0+4 share SQ0" 2 q.(0);
  checki "cores 1+5 share SQ1" 2 q.(1);
  checki "SQ2" 1 q.(2);
  checki "SQ3" 1 q.(3);
  checki "sums to I/Os" (Sdevice.Block_dev.reads dev)
    (Array.fold_left ( + ) 0 q)

(* ---- blobstore free-list partitions ---- *)

let blobstore_partitions () =
  let st =
    Blobstore.Store.create ~capacity_pages:(16 * 4) ~cluster_pages:4 ~shards:4 ()
  in
  checki "shards" 4 (Blobstore.Store.shards st);
  checki "even split" (4 * 4) (Blobstore.Store.shard_free_pages st 1);
  (* shard 2's first clusters are 2, 6, 10, ... *)
  let b = Blobstore.Store.create_blob st ~shard:2 ~pages:8 () in
  checki "home recorded" 2 (Blobstore.Store.blob_shard b);
  checki "first cluster from own partition" (2 * 4)
    (Blobstore.Store.device_page b 0);
  checki "second cluster from own partition" (6 * 4)
    (Blobstore.Store.device_page b 4);
  (* exhaust shard 0, then watch deterministic stealing from shard 1 *)
  let big = Blobstore.Store.create_blob st ~shard:0 ~pages:(4 * 4) () in
  checki "shard 0 dry" 0 (Blobstore.Store.shard_free_pages st 0);
  let steal = Blobstore.Store.create_blob st ~shard:0 ~pages:4 () in
  checki "steals shard 1's lowest cluster" (1 * 4)
    (Blobstore.Store.device_page steal 0);
  (* frees return clusters to their static owner *)
  Blobstore.Store.delete st big;
  checki "shard 0 refilled" (4 * 4) (Blobstore.Store.shard_free_pages st 0);
  checki "free_pages sums" (Array.fold_left ( + ) 0
     (Array.init 4 (Blobstore.Store.shard_free_pages st)))
    (Blobstore.Store.free_pages st);
  Alcotest.check_raises "bad shard rejected"
    (Invalid_argument "Blobstore.create_blob: shard 7 outside [0, 4)")
    (fun () -> ignore (Blobstore.Store.create_blob st ~shard:7 ~pages:4 ()))

let blobstore_unsharded_unchanged () =
  let st = Blobstore.Store.create ~capacity_pages:64 ~cluster_pages:4 () in
  let b = Blobstore.Store.create_blob st ~pages:12 () in
  checki "ascending clusters" 0 (Blobstore.Store.device_page b 0);
  checki "contiguous" 12 (Blobstore.Store.contiguous_run b 0)

(* ---- blocked_report waiting-on ---- *)

let blocked_report_waiting_on () =
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~name:"stuck" ~core:0 (fun () ->
         let ctx = Sim.Engine.self () in
         Sim.Engine.set_waiting_on ctx 3;
         Sim.Engine.suspend (fun _resume -> ())));
  Sim.Engine.run eng;
  let report = Sim.Engine.blocked_report eng in
  Alcotest.(check bool) "names the awaited shard" true
    (let re = "waiting-on shard 3" in
     let len = String.length re in
     let n = String.length report in
     let rec scan i =
       i + len <= n && (String.sub report i len = re || scan (i + 1))
     in
     scan 0)

let () =
  Alcotest.run "sharded"
    [
      ( "parity",
        [
          Alcotest.test_case "shard counts" `Quick parity_across_shard_counts;
          Alcotest.test_case "free == deterministic" `Quick
            free_running_matches_deterministic;
          QCheck_alcotest.to_alcotest qcheck_partition_parity;
          Alcotest.test_case "crash parity" `Quick crash_parity;
        ] );
      ( "partition",
        [
          Alcotest.test_case "homes=1 == plain" `Quick
            single_home_partition_equals_plain;
          Alcotest.test_case "routing" `Quick partition_routing;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "page-cache tree shards" `Quick
            tree_shards_functional_parity;
          Alcotest.test_case "device submission queues" `Quick
            device_queue_accounting;
          Alcotest.test_case "blobstore partitions" `Quick blobstore_partitions;
          Alcotest.test_case "blobstore unsharded" `Quick
            blobstore_unsharded_unchanged;
          Alcotest.test_case "blocked_report waiting-on" `Quick
            blocked_report_waiting_on;
        ] );
    ]
