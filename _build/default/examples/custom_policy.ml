(* Customizing the mmio path — the capability Linux mmap cannot offer.

   The same workload (a scan-heavy reader over a mapped file on NVMe) runs
   under three per-application configurations of Aquila's I/O path:

   - default policy (no readahead, batched eviction);
   - a streaming policy: madvise(SEQUENTIAL) readahead plus a larger
     eviction batch, tuned for scans;
   - a different device-access method for the same file (host-OS
     syscalls instead of SPDK), showing operation-3 customization.

   Run with: dune exec examples/custom_policy.exe *)

let pages = 4096
let frames = 1024

type setup = {
  label : string;
  tweak : Mcache.Dram_cache.config -> Mcache.Dram_cache.config;
  advice : Aquila.Vma.advice;
  host_access : bool;
}

let run { label; tweak; advice; host_access } =
  let eng = Sim.Engine.create () in
  let s =
    if host_access then
      (* same NVMe device class, reached through the host OS via vmcalls *)
      Experiments.Scenario.make_aquila_access ~frames
        ~access:(fun costs _ ->
          Sdevice.Access.host_nvme costs ~entry:Sdevice.Access.From_guest
            (Sdevice.Nvme.create ()))
        ()
    else Experiments.Scenario.make_aquila ~tweak ~frames ~dev:Experiments.Scenario.Nvme ()
  in
  let ms = ref 0. in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         Aquila.Context.enter_thread s.Experiments.Scenario.a_ctx;
         let blob =
           Blobstore.Store.create_blob s.Experiments.Scenario.a_store ~name:"data"
             ~pages ()
         in
         let f =
           Aquila.Context.attach_file s.Experiments.Scenario.a_ctx ~name:"data"
             ~access:s.Experiments.Scenario.a_access
             ~translate:(fun p ->
               if p < pages then Some (Blobstore.Store.device_page blob p) else None)
             ~size_pages:pages
         in
         let r =
           Aquila.Context.mmap s.Experiments.Scenario.a_ctx f ~npages:pages ()
         in
         Aquila.Context.madvise s.Experiments.Scenario.a_ctx r advice;
         let t0 = Sim.Engine.now_f () in
         (* three full sequential scans: the cache holds 1/4 of the file *)
         for _ = 1 to 3 do
           for p = 0 to pages - 1 do
             Aquila.Context.touch s.Experiments.Scenario.a_ctx r ~page:p ~write:false
           done
         done;
         ms := Int64.to_float (Int64.sub (Sim.Engine.now_f ()) t0) /. 2.4e6));
  Sim.Engine.run eng;
  Printf.printf "%-44s %8.2f ms\n" label !ms

let () =
  Printf.printf "Scan-heavy reader, 16MB file, 4MB cache, NVMe:\n";
  run
    {
      label = "default policy (random, SPDK)";
      tweak = Fun.id;
      advice = Aquila.Vma.Normal;
      host_access = false;
    };
  run
    {
      label = "streaming policy (SEQUENTIAL + big batches)";
      tweak =
        (fun c ->
          { c with Mcache.Dram_cache.evict_batch = 256; writeback_merge = 128 });
      advice = Aquila.Vma.Sequential;
      host_access = false;
    };
  run
    {
      label = "host-OS device access (vmcall per I/O)";
      tweak = Fun.id;
      advice = Aquila.Vma.Normal;
      host_access = true;
    }
