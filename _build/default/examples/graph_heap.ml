(* Extending the application heap over fast storage: the paper's second
   motivating workload (Section 6.2).

   Generates an R-MAT graph, then runs Ligra-style BFS three ways: with
   the heap in DRAM (malloc/free), with the heap over a Linux mmap-ed
   file, and with the heap over an Aquila mmio region — only the
   allocation layer changes, exactly the porting effort the paper
   describes for Ligra.

   Run with: dune exec examples/graph_heap.exe *)

let n = 20_000
let m = 200_000
let heap_pages = 4096
let frames = 512
let threads = 8

let bfs_on surface_of =
  let eng = Sim.Engine.create () in
  let surface = ref None in
  ignore (Sim.Engine.spawn eng ~core:0 (fun () -> surface := Some (surface_of ())));
  Sim.Engine.run eng;
  let g = Ligra.Rmat.generate ~seed:3 ~n ~m () in
  let r = Ligra.Bfs.run ~eng ~graph:g ~surface:(Option.get !surface) ~threads ~source:0 () in
  (Int64.to_float r.Ligra.Bfs.elapsed_cycles /. 2.4e6, r.Ligra.Bfs.visited, r.Ligra.Bfs.rounds)

let () =
  let dram () = Ligra.Mem_surface.dram () in
  let aquila () =
    let s = Experiments.Scenario.make_aquila ~frames ~dev:Experiments.Scenario.Pmem () in
    Aquila.Context.enter_thread s.Experiments.Scenario.a_ctx;
    let blob =
      Blobstore.Store.create_blob s.Experiments.Scenario.a_store ~name:"heap"
        ~pages:heap_pages ()
    in
    let f =
      Aquila.Context.attach_file s.Experiments.Scenario.a_ctx ~name:"heap"
        ~access:s.Experiments.Scenario.a_access
        ~translate:(fun p ->
          if p < heap_pages then Some (Blobstore.Store.device_page blob p) else None)
        ~size_pages:heap_pages
    in
    let r = Aquila.Context.mmap s.Experiments.Scenario.a_ctx f ~npages:heap_pages () in
    Ligra.Mem_surface.aquila ~elem_bytes:32 s.Experiments.Scenario.a_ctx r
  in
  let linux () =
    let s =
      Experiments.Scenario.make_linux ~readahead:1 ~frames
        ~dev:Experiments.Scenario.Pmem ()
    in
    Linux_sim.Mmap_sys.enter_thread s.Experiments.Scenario.l_msys;
    let blob =
      Blobstore.Store.create_blob s.Experiments.Scenario.l_store ~name:"heap"
        ~pages:heap_pages ()
    in
    let f =
      Linux_sim.Mmap_sys.attach_file s.Experiments.Scenario.l_msys ~name:"heap"
        ~access:s.Experiments.Scenario.l_access
        ~translate:(fun p ->
          if p < heap_pages then Some (Blobstore.Store.device_page blob p) else None)
        ~size_pages:heap_pages
    in
    let r = Linux_sim.Mmap_sys.mmap s.Experiments.Scenario.l_msys f ~npages:heap_pages () in
    Ligra.Mem_surface.linux ~elem_bytes:32 s.Experiments.Scenario.l_msys r
  in
  Printf.printf "BFS over R-MAT graph (%d vertices, %d edges), %d threads:\n" n m threads;
  let report name (ms, visited, rounds) =
    Printf.printf "%-24s %8.2f ms   (%d vertices reached in %d rounds)\n" name ms
      visited rounds
  in
  let d = bfs_on dram in
  let l = bfs_on linux in
  let a = bfs_on aquila in
  report "heap in DRAM" d;
  report "heap over Linux mmap" l;
  report "heap over Aquila" a;
  let t (ms, _, _) = ms in
  Printf.printf "Aquila vs mmap: %.2fx faster; slowdown vs DRAM: %.2fx\n"
    (t l /. t a) (t a /. t d);
  (* the other Ligra kernels run over the same surfaces unchanged *)
  let g = Ligra.Rmat.generate ~seed:3 ~n ~m () in
  let eng = Sim.Engine.create () in
  let surf = ref None in
  ignore (Sim.Engine.spawn eng ~core:0 (fun () -> surf := Some (aquila ())));
  Sim.Engine.run eng;
  let pr = Ligra.Pagerank.run ~eng ~graph:g ~surface:(Option.get !surf) ~threads () in
  Printf.printf "PageRank over Aquila: %d iterations in %.2f ms (top vertex %d)\n"
    pr.Ligra.Pagerank.iterations
    (Int64.to_float pr.Ligra.Pagerank.elapsed_cycles /. 2.4e6)
    pr.Ligra.Pagerank.top_vertex;
  let eng2 = Sim.Engine.create () in
  let surf2 = ref None in
  ignore (Sim.Engine.spawn eng2 ~core:0 (fun () -> surf2 := Some (aquila ())));
  Sim.Engine.run eng2;
  let cc = Ligra.Components.run ~eng:eng2 ~graph:g ~surface:(Option.get !surf2) ~threads () in
  Printf.printf "Connected components over Aquila: %d components (largest %d) in %.2f ms\n"
    cc.Ligra.Components.components cc.Ligra.Components.largest
    (Int64.to_float cc.Ligra.Components.elapsed_cycles /. 2.4e6)
