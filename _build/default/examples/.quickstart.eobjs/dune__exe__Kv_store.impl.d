examples/kv_store.ml: Experiments Hw Kvstore List Option Printf Sim Stats Ycsb
