examples/quickstart.ml: Aquila Bytes Int64 Mcache Printf Sdevice Sim
