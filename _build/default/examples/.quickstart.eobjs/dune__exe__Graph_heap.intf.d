examples/graph_heap.mli:
