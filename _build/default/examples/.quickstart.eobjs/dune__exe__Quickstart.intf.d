examples/quickstart.mli:
