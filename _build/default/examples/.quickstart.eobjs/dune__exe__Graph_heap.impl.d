examples/graph_heap.ml: Aquila Blobstore Experiments Int64 Ligra Linux_sim Option Printf Sim
