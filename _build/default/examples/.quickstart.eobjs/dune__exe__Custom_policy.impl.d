examples/custom_policy.ml: Aquila Blobstore Experiments Fun Int64 Mcache Printf Sdevice Sim
