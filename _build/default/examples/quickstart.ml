(* Quickstart: the minimal Aquila application.

   Mirrors the paper's porting story (Section 4): one call to initialize
   the context in [main], one call per thread to enter Aquila mode, and
   from then on storage is just memory — [mmap] a file, load and store
   bytes, [msync] to persist.  Everything runs inside the deterministic
   simulation engine, so the printed costs are virtual cycles at 2.4 GHz.

   Run with: dune exec examples/quickstart.exe *)

let pages = 256 (* a 1 MiB file *)

let () =
  (* 1. Create the simulated machine and the Aquila context (the call the
        paper adds to the application's main()). *)
  let eng = Sim.Engine.create () in
  let ctx = Aquila.Context.create (Aquila.Context.default_config ~cache_frames:128) in

  (* 2. A DAX pmem device holds our data; attach a file over it. *)
  let pmem = Sdevice.Pmem.create () in
  let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
  let file =
    Aquila.Context.attach_file ctx ~name:"quickstart.dat" ~access
      ~translate:(fun p -> if p < pages then Some p else None)
      ~size_pages:pages
  in

  (* 3. Application code runs as a fiber (a simulated thread). *)
  let _ =
    Sim.Engine.spawn eng ~name:"app" ~core:0 (fun () ->
        Aquila.Context.enter_thread ctx;
        let region = Aquila.Context.mmap ctx file ~npages:pages () in

        (* Store a record 600 KiB into the file: the write faults, the
           cache allocates a frame, and dirty tracking begins. *)
        let msg = Bytes.of_string "aquila: memory-mapped I/O on steroids" in
        Aquila.Context.write ctx region ~off:614400 ~src:msg;

        (* Load it back: the page is mapped now, so this is a pure mmio
           hit — no software on the path. *)
        let back = Bytes.create (Bytes.length msg) in
        Aquila.Context.read ctx region ~off:614400 ~len:(Bytes.length msg) ~dst:back;
        Printf.printf "read back: %s\n" (Bytes.to_string back);

        (* Persist: sorted, merged write-back of the dirty pages. *)
        Aquila.Context.msync ctx region;

        Printf.printf "accesses: %d, faults: %d\n"
          (Aquila.Context.accesses ctx) (Aquila.Context.faults ctx))
  in
  Sim.Engine.run eng;

  let cache = Aquila.Context.cache ctx in
  Printf.printf "cache: %d misses, %d write-back I/Os, %d pages written\n"
    (Mcache.Dram_cache.misses cache)
    (Mcache.Dram_cache.writeback_ios cache)
    (Mcache.Dram_cache.writeback_pages cache);
  Printf.printf "virtual time: %.2f us\n"
    (Int64.to_float (Sim.Engine.now eng) /. 2400.)
