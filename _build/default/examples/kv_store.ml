(* Key-value store scenario: the paper's first motivating workload.

   Runs the same RocksDB-style LSM store twice — once over explicit
   direct I/O with a user-space block cache (the recommended RocksDB
   configuration) and once over Aquila mmio — and compares YCSB-B
   throughput and latency, miniature Figure 5.

   Run with: dune exec examples/kv_store.exe *)

let records = 8192
let value_bytes = 1024
let cache_pages = 1536

let load_and_run ~name env =
  let eng = Sim.Engine.create () in
  let db = ref None in
  ignore
    (Sim.Engine.spawn eng ~name:"load" ~core:0 (fun () ->
         let d = Kvstore.Rocksdb_sim.create env () in
         let rng = Sim.Rng.create 7 in
         Kvstore.Rocksdb_sim.bulk_load d
           (List.init records (fun i ->
                (Ycsb.Runner.key_of i, Ycsb.Runner.value_of rng value_bytes)));
         db := Some d));
  Sim.Engine.run eng;
  let db = Option.get !db in
  let r =
    Ycsb.Runner.run ~eng ~threads:8 ~ops_per_thread:800
      ~workload:Ycsb.Workload.b ~record_count:records ~value_bytes
      ~kv:(Experiments.Scenario.kv_of_rocksdb db) ()
  in
  Printf.printf "%-22s %12s   avg %8.0f cycles   p99.9 %8Ld cycles\n" name
    (Stats.Table_fmt.ops_per_sec r.Ycsb.Runner.throughput_ops_s)
    (Stats.Histogram.mean r.Ycsb.Runner.latency)
    (Stats.Histogram.percentile r.Ycsb.Runner.latency 99.9);
  r.Ycsb.Runner.throughput_ops_s

let () =
  Printf.printf "RocksDB-style store, YCSB-B (95%% reads), 8 threads, pmem:\n";
  let rw =
    let s = Experiments.Scenario.make_ucache ~cache_pages ~dev:Experiments.Scenario.Pmem () in
    load_and_run ~name:"read/write + ucache"
      (Kvstore.Env.direct_ucache ~store:s.Experiments.Scenario.u_store
         ~costs:Hw.Costs.default ~device_access:s.Experiments.Scenario.u_access
         ~ucache:s.Experiments.Scenario.u_cache)
  in
  let aq =
    let s = Experiments.Scenario.make_aquila ~frames:cache_pages ~dev:Experiments.Scenario.Pmem () in
    load_and_run ~name:"Aquila mmio"
      (Kvstore.Env.aquila ~store:s.Experiments.Scenario.a_store
         ~ctx:s.Experiments.Scenario.a_ctx
         ~device_access:s.Experiments.Scenario.a_access)
  in
  Printf.printf "Aquila speedup: %.2fx\n" (aq /. rw)
