lib/mcache/dirty_set.ml: Array Dstruct Hw Int Int64 List Pagekey
