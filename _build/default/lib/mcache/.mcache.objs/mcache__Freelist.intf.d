lib/mcache/freelist.mli: Hw
