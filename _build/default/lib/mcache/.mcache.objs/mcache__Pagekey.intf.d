lib/mcache/pagekey.mli: Format
