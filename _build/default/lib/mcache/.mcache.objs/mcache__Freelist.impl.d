lib/mcache/freelist.ml: Array Fun Hw Int64 List Queue
