lib/mcache/dram_cache.ml: Array Bytes Dirty_set Dstruct Freelist Hashtbl Hw Int64 List Pagekey Printf Sdevice Sim
