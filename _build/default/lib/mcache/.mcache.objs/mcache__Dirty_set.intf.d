lib/mcache/dirty_set.mli: Hw Pagekey
