lib/mcache/pagekey.ml: Format
