lib/mcache/dram_cache.mli: Bytes Hw Pagekey Sdevice Sim
