type t = {
  costs : Hw.Costs.t;
  topo : Hw.Topology.t;
  per_core : int Queue.t array;
  per_node : int Queue.t array;
  core_queue_limit : int;
  move_batch : int;
  mutable count : int;
  mutable nallocs : int;
  mutable nrefills : int;
}

let create costs topo ?(core_queue_limit = 512) ?(move_batch = 256) () =
  {
    costs;
    topo;
    per_core = Array.init topo.Hw.Topology.cores (fun _ -> Queue.create ());
    per_node = Array.init topo.Hw.Topology.nodes (fun _ -> Queue.create ());
    core_queue_limit;
    move_batch;
    count = 0;
    nallocs = 0;
    nrefills = 0;
  }

let add_frame t ~node f =
  Queue.add f t.per_node.(node);
  t.count <- t.count + 1

let move_batch_to_core t node core =
  let nq = t.per_node.(node) and cq = t.per_core.(core) in
  let n = min t.move_batch (Queue.length nq) in
  for _ = 1 to n do
    Queue.add (Queue.pop nq) cq
  done;
  if n > 0 then t.nrefills <- t.nrefills + 1;
  n

let alloc t ~core =
  t.nallocs <- t.nallocs + 1;
  let c = t.costs in
  let cost = ref c.freelist_op in
  let cq = t.per_core.(core) in
  let node = Hw.Topology.node_of t.topo core in
  let frame =
    match Queue.take_opt cq with
    | Some f -> Some f
    | None ->
        (* refill from local node, then remote nodes *)
        let try_node n =
          if move_batch_to_core t n core > 0 then begin
            (* batched move: one queue transfer amortized over the batch *)
            cost := Int64.add !cost (Int64.mul 2L c.freelist_op);
            Queue.take_opt cq
          end
          else None
        in
        let rec try_nodes = function
          | [] -> None
          | n :: rest -> ( match try_node n with Some f -> Some f | None -> try_nodes rest)
        in
        let remote =
          List.filter (fun n -> n <> node) (List.init t.topo.Hw.Topology.nodes Fun.id)
        in
        try_nodes (node :: remote)
  in
  (match frame with Some _ -> t.count <- t.count - 1 | None -> ());
  (frame, !cost)

let free t ~core f =
  let c = t.costs in
  let cq = t.per_core.(core) in
  Queue.add f cq;
  t.count <- t.count + 1;
  let cost = ref c.freelist_op in
  if Queue.length cq > t.core_queue_limit then begin
    let node = Hw.Topology.node_of t.topo core in
    let n = min t.move_batch (Queue.length cq) in
    for _ = 1 to n do
      Queue.add (Queue.pop cq) t.per_node.(node)
    done;
    cost := Int64.add !cost (Int64.mul 2L c.freelist_op)
  end;
  !cost

let steal_any t =
  let take q = Queue.take_opt q in
  let rec first_of = function
    | [] -> None
    | q :: rest -> ( match take q with Some f -> Some f | None -> first_of rest)
  in
  let r = first_of (Array.to_list t.per_node @ Array.to_list t.per_core) in
  (match r with Some _ -> t.count <- t.count - 1 | None -> ());
  r

let free_count t = t.count
let allocs t = t.nallocs
let refills t = t.nrefills
