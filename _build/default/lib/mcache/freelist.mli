(** Hierarchical two-level free-frame allocator (Section 3.2).

    Level 1 is a queue per NUMA node; level 2 a queue per core.  A core
    allocates from its own queue, falls back to its node's queue, then to
    remote nodes' queues, refilling in batches.  Frees go to the core
    queue and overflow to the node queue in batches.  Queues are lock-free
    in the modelled system, so operations never block; they return the
    cycle cost to charge. *)

type t

val create :
  Hw.Costs.t ->
  Hw.Topology.t ->
  ?core_queue_limit:int ->
  ?move_batch:int ->
  unit ->
  t
(** [create costs topo ()] is an empty freelist.  [core_queue_limit]
    (default 512) caps per-core queues; [move_batch] (default 256) is the
    number of frames moved between levels at once. *)

val add_frame : t -> node:int -> int -> unit
(** [add_frame t ~node f] seeds frame [f] into node [node]'s queue
    (initial population and cache growth). *)

val alloc : t -> core:int -> int option * int64
(** [alloc t ~core] pops a frame preferring locality.  Returns
    [(None, cost)] when every queue is empty — the caller must evict. *)

val free : t -> core:int -> int -> int64
(** [free t ~core f] returns [f] to the core's queue, spilling a batch to
    the node queue past the limit.  Returns the cycle cost. *)

val steal_any : t -> int option
(** [steal_any t] removes an arbitrary free frame (used when shrinking the
    cache); no cost model, administrative path only. *)

val free_count : t -> int
val allocs : t -> int
val refills : t -> int
(** Number of batched level-1→level-2 refills performed. *)
