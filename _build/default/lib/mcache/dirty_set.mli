(** Per-core red-black trees of dirty pages, sorted by device offset.

    Aquila keeps dirty pages out of the lookup hash table, in one
    red-black tree per core, so that (a) marking a page dirty never
    contends on a shared lock and (b) write-back can drain pages in
    ascending offset order and merge adjacent ones into large I/Os
    (Section 3.2).  Operations return their cycle cost. *)

type t

val create : Hw.Costs.t -> cores:int -> t

val add : t -> core:int -> key:Pagekey.t -> frame:int -> int64
(** [add t ~core ~key ~frame] records [key] (backed by cache frame
    [frame]) as dirty in [core]'s tree.  Idempotent per (core, key). *)

val remove : t -> core:int -> key:Pagekey.t -> int64
(** [remove t ~core ~key] forgets the entry (page cleaned or dropped). *)

val total : t -> int

val drain_sorted : t -> ?file:int -> ?limit:int -> unit -> (Pagekey.t * int) list * int64
(** [drain_sorted t ()] removes dirty entries from {e all} core trees and
    returns them merged in ascending key order, with the traversal cost.
    [file] restricts to one file's pages; [limit] caps how many entries
    are taken (smallest keys first). *)

val mem : t -> key:Pagekey.t -> core:int -> bool
