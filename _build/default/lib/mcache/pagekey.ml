type t = int

let page_bits = 35
let page_mask = (1 lsl page_bits) - 1

let make ~file ~page =
  if file < 0 || file lsr 27 <> 0 then invalid_arg "Pagekey.make: file id out of range";
  if page < 0 || page lsr page_bits <> 0 then invalid_arg "Pagekey.make: page out of range";
  (file lsl page_bits) lor page

let file_of k = k lsr page_bits
let page_of k = k land page_mask
let pp fmt k = Format.fprintf fmt "(file %d, page %d)" (file_of k) (page_of k)
