(** Compact (file, page) keys for cache indexes and dirty trees.

    Keys order first by file id and then by page number, so an in-order
    traversal of a dirty tree yields pages in ascending device-offset
    order per file — the order write-back wants (Section 3.2). *)

type t = int

val make : file:int -> page:int -> t
(** [make ~file ~page] packs the pair.  [file] must fit in 27 bits and
    [page] in 35 bits. *)

val file_of : t -> int
val page_of : t -> int
val pp : Format.formatter -> t -> unit
