(** Paper-style table printing for the benchmark harness.

    Renders rows of figures with aligned columns on stdout, plus helpers
    for formatting cycle counts, throughputs, and speedups consistently
    across experiments. *)

val print_table : title:string -> header:string list -> string list list -> unit
(** [print_table ~title ~header rows] prints an aligned table. *)

val kcycles : float -> string
(** [kcycles c] formats cycles as ["12.3K"]. *)

val cycles : int64 -> string

val ops_per_sec : float -> string
(** [ops_per_sec x] as ["123.4 Kops/s"]. *)

val seconds : float -> string
val speedup : float -> string
(** e.g. ["2.58x"]. *)

val usec_of_cycles : float -> string
(** Cycles rendered as microseconds at the simulated 2.4 GHz clock. *)

val pct : float -> string
