lib/stats/histogram.mli:
