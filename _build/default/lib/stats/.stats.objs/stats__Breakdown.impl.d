lib/stats/breakdown.ml: Format Hashtbl Int64 List Sim String
