lib/stats/table_fmt.mli:
