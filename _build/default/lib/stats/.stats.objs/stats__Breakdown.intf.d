lib/stats/breakdown.mli: Format Sim
