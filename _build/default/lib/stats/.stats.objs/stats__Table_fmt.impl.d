lib/stats/table_fmt.ml: Array List Printf String
