let psz = Hw.Defs.page_size

module Pagekey = Mcache.Pagekey

type config = {
  capacity_pages : int;
  shards : int;
  lookup_cost : int64;
  insert_cost : int64;
}

let default_config ~capacity_pages =
  { capacity_pages; shards = 16; lookup_cost = 2800L; insert_cost = 3600L }

type shard = {
  slots : Bytes.t array; (* block data *)
  keys : int array; (* -1 = free *)
  index : (int, int) Hashtbl.t; (* key -> slot *)
  lru : Dstruct.Clock_lru.t;
  free : int Queue.t;
  lock : Sim.Sync.Mutex.t;
}

type t = {
  cfg : config;
  shard_arr : shard array;
  files : (int, Linux_sim.Readwrite.fd) Hashtbl.t;
  mutable s_hits : int;
  mutable s_misses : int;
}

let create cfg =
  if cfg.capacity_pages < cfg.shards then invalid_arg "User_cache.create";
  let per = cfg.capacity_pages / cfg.shards in
  let mk i =
    let free = Queue.create () in
    for s = 0 to per - 1 do
      Queue.add s free
    done;
    {
      slots = Array.init per (fun _ -> Bytes.create psz);
      keys = Array.make per (-1);
      index = Hashtbl.create (2 * per);
      lru = Dstruct.Clock_lru.create ~nframes:per;
      free;
      lock = Sim.Sync.Mutex.create ~name:(Printf.sprintf "ucache[%d]" i) ();
    }
  in
  {
    cfg;
    shard_arr = Array.init cfg.shards mk;
    files = Hashtbl.create 16;
    s_hits = 0;
    s_misses = 0;
  }

let register_file t ~file_id ~fd = Hashtbl.replace t.files file_id fd

let fd_of t file_id =
  match Hashtbl.find_opt t.files file_id with
  | Some fd -> fd
  | None -> invalid_arg (Printf.sprintf "User_cache: unregistered file %d" file_id)

let shard_of t key = t.shard_arr.(key mod Array.length t.shard_arr)

let charge c = Sim.Engine.delay ~cat:Sim.Engine.User ~label:"ucache" c

(* Returns the slot holding [key]'s block, filling it on a miss.  As in
   RocksDB's block cache, the entry is inserted only after the read
   completes; concurrent misses on the same block each read the device
   (wasted I/O, as in the real system) and the last insert wins. *)
let get_block t ~file_id ~page =
  let key = Pagekey.make ~file:file_id ~page in
  let sh = shard_of t key in
  charge (Int64.sub t.cfg.lookup_cost 600L);
  Sim.Sync.Mutex.lock ~cat:Sim.Engine.User sh.lock;
  charge 600L;
  match Hashtbl.find_opt sh.index key with
  | Some slot ->
      t.s_hits <- t.s_hits + 1;
      Dstruct.Clock_lru.touch sh.lru slot;
      Sim.Sync.Mutex.unlock sh.lock;
      (sh, slot)
  | None ->
      t.s_misses <- t.s_misses + 1;
      Sim.Sync.Mutex.unlock sh.lock;
      let block = Bytes.create psz in
      let fd = fd_of t file_id in
      Linux_sim.Readwrite.pread fd ~off:(page * psz) ~len:psz ~dst:block;
      charge (Int64.sub t.cfg.insert_cost 600L);
      Sim.Sync.Mutex.lock ~cat:Sim.Engine.User sh.lock;
      charge 600L;
      let slot =
        match Hashtbl.find_opt sh.index key with
        | Some slot -> slot (* a concurrent miss installed it first *)
        | None ->
            let slot =
              match Queue.take_opt sh.free with
              | Some s -> s
              | None -> (
                  match Dstruct.Clock_lru.evict_candidates sh.lru 1 with
                  | [ v ] ->
                      Hashtbl.remove sh.index sh.keys.(v);
                      sh.keys.(v) <- -1;
                      v
                  | _ -> failwith "User_cache: shard exhausted")
            in
            sh.keys.(slot) <- key;
            Hashtbl.replace sh.index key slot;
            Dstruct.Clock_lru.set_active sh.lru slot true;
            slot
      in
      Bytes.blit block 0 sh.slots.(slot) 0 psz;
      Dstruct.Clock_lru.touch sh.lru slot;
      Sim.Sync.Mutex.unlock sh.lock;
      (sh, slot)

let read t ~file_id ~off ~len ~dst =
  if off < 0 || len < 0 then invalid_arg "User_cache.read";
  if Bytes.length dst < len then invalid_arg "User_cache.read: dst too small";
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let page = abs / psz and in_page = abs mod psz in
    let chunk = min (len - !pos) (psz - in_page) in
    let sh, slot = get_block t ~file_id ~page in
    Bytes.blit sh.slots.(slot) in_page dst !pos chunk;
    pos := !pos + chunk
  done

let write t ~file_id ~off ~src =
  let len = Bytes.length src in
  if off mod psz <> 0 || len mod psz <> 0 then
    invalid_arg "User_cache.write: requires page alignment (O_DIRECT)";
  (* update any cached copies *)
  let npages = len / psz in
  for i = 0 to npages - 1 do
    let page = (off / psz) + i in
    let key = Pagekey.make ~file:file_id ~page in
    let sh = shard_of t key in
    charge (Int64.sub t.cfg.lookup_cost 600L);
    Sim.Sync.Mutex.lock ~cat:Sim.Engine.User sh.lock;
    charge 600L;
    (match Hashtbl.find_opt sh.index key with
    | Some slot -> Bytes.blit src (i * psz) sh.slots.(slot) 0 psz
    | None -> ());
    Sim.Sync.Mutex.unlock sh.lock
  done;
  let fd = fd_of t file_id in
  Linux_sim.Readwrite.pwrite fd ~off ~src

let invalidate_file t ~file_id =
  Array.iter
    (fun sh ->
      let victims =
        Hashtbl.fold
          (fun key slot acc ->
            if Pagekey.file_of key = file_id then (key, slot) :: acc else acc)
          sh.index []
      in
      List.iter
        (fun (key, slot) ->
          Hashtbl.remove sh.index key;
          sh.keys.(slot) <- -1;
          Dstruct.Clock_lru.set_active sh.lru slot false;
          Queue.add slot sh.free)
        victims)
    t.shard_arr

let hits t = t.s_hits
let misses t = t.s_misses

let resident t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.index) 0 t.shard_arr
