(** User-space block cache over direct I/O — the baseline in Figures 1(b),
    5 and 7.

    A sharded LRU cache of 4 KiB blocks in user memory (RocksDB's block
    cache): hits avoid syscalls but still pay a software lookup on {e
    every} access — hashing, LRU maintenance, reference counting — which
    is exactly the overhead mmio removes.  Misses evict a victim and issue
    a direct-I/O [pread] through the kernel.

    Per-operation software costs are charged as {!Sim.Engine.User} cycles
    under the ["ucache"] label; I/O costs come from the underlying
    {!Linux_sim.Readwrite} fd. *)

type config = {
  capacity_pages : int;
  shards : int;  (** RocksDB's LRUCache defaults to 2^6 shards; we use 16 *)
  lookup_cost : int64;
      (** hash probe + LRU list update + handle ref-count per lookup *)
  insert_cost : int64;  (** allocation + insertion + eviction bookkeeping *)
}

val default_config : capacity_pages:int -> config
(** Costs calibrated so RocksDB-style multi-block gets land near the 32 K
    cycles/op user-cache management the paper measures (Figure 7). *)

type t

val create : config -> t

val register_file : t -> file_id:int -> fd:Linux_sim.Readwrite.fd -> unit

val read : t -> file_id:int -> off:int -> len:int -> dst:Bytes.t -> unit
(** [read t ~file_id ~off ~len ~dst] copies file bytes through the cache,
    filling missing blocks with direct reads.  Must run inside a fiber. *)

val write : t -> file_id:int -> off:int -> src:Bytes.t -> unit
(** Write-through: updates cached blocks and issues a direct [pwrite]
    ([off]/[len] must be page-aligned, as O_DIRECT requires). *)

val invalidate_file : t -> file_id:int -> unit

val hits : t -> int
val misses : t -> int
val resident : t -> int
