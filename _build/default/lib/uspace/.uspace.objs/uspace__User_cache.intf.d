lib/uspace/user_cache.mli: Bytes Linux_sim
