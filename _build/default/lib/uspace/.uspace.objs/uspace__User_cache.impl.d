lib/uspace/user_cache.ml: Array Bytes Dstruct Hashtbl Hw Int64 Linux_sim List Mcache Printf Queue Sim
