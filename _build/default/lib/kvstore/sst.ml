let psz = Hw.Defs.page_size

type t = {
  file : Env.file;
  sname : string;
  fkey : string;
  lkey : string;
  nrecs : int;
  ndata : int; (* data pages *)
  index_page0 : int;
  nindex : int;
  bloom_page0 : int;
  nbloom : int;
}

let record_bytes k v = 6 + String.length k + String.length v

(* ---- building ---- *)

let pack_blocks records =
  (* Greedily fill 4 KiB blocks; a record never spans blocks. *)
  let blocks = ref [] in
  let cur = Buffer.create psz in
  let cur_first = ref None in
  let flush () =
    match !cur_first with
    | None -> ()
    | Some fk ->
        let b = Bytes.make psz '\000' in
        Bytes.blit (Buffer.to_bytes cur) 0 b 0 (Buffer.length cur);
        blocks := (fk, b) :: !blocks;
        Buffer.clear cur;
        cur_first := None
  in
  List.iter
    (fun (k, v) ->
      let need = record_bytes k v in
      if need > psz then invalid_arg "Sst: record larger than a block";
      if Buffer.length cur + need > psz then flush ();
      if !cur_first = None then cur_first := Some k;
      let hdr = Bytes.create 6 in
      Bytes.set_uint16_le hdr 0 (String.length k);
      Bytes.set_int32_le hdr 2 (Int32.of_int (String.length v));
      Buffer.add_bytes cur hdr;
      Buffer.add_string cur k;
      Buffer.add_string cur v)
    records;
  flush ();
  List.rev !blocks

let pack_index firsts =
  let buf = Buffer.create psz in
  List.iteri
    (fun block_no fk ->
      let hdr = Bytes.create 6 in
      Bytes.set_uint16_le hdr 0 (String.length fk);
      Bytes.set_int32_le hdr 2 (Int32.of_int block_no);
      Buffer.add_bytes buf hdr;
      Buffer.add_string buf fk)
    firsts;
  let len = Buffer.length buf in
  let pages = max 1 ((len + psz - 1) / psz) in
  let out = Bytes.make (pages * psz) '\000' in
  Bytes.blit (Buffer.to_bytes buf) 0 out 0 len;
  (out, pages)

let build env ~name records =
  (match records with [] -> invalid_arg "Sst.build: empty" | _ -> ());
  let blocks = pack_blocks records in
  let firsts = List.map fst blocks in
  let index_bytes, nindex = pack_index firsts in
  let bloom = Bloom.create ~expected_keys:(List.length records) in
  List.iter (fun (k, _) -> Bloom.add bloom k) records;
  let bloom_ser = Bloom.serialize bloom in
  let nbloom = max 1 ((Bytes.length bloom_ser + psz - 1) / psz) in
  let bloom_bytes = Bytes.make (nbloom * psz) '\000' in
  Bytes.blit bloom_ser 0 bloom_bytes 0 (Bytes.length bloom_ser);
  let ndata = List.length blocks in
  let total = ndata + nindex + nbloom in
  let file = Env.create_file env ~name ~size_pages:total in
  (* write data blocks in one sequential pass *)
  let data = Bytes.create (ndata * psz) in
  List.iteri (fun i (_, b) -> Bytes.blit b 0 data (i * psz) psz) blocks;
  Env.write file ~off:0 ~src:data;
  Env.write file ~off:(ndata * psz) ~src:index_bytes;
  Env.write file ~off:((ndata + nindex) * psz) ~src:bloom_bytes;
  Env.sync file;
  {
    file;
    sname = name;
    fkey = fst (List.hd records);
    lkey = fst (List.nth records (List.length records - 1));
    nrecs = List.length records;
    ndata;
    index_page0 = ndata;
    nindex;
    bloom_page0 = ndata + nindex;
    nbloom;
  }

let first_key t = t.fkey
let last_key t = t.lkey
let nrecords t = t.nrecs
let data_pages t = t.ndata
let total_pages t = t.ndata + t.nindex + t.nbloom

(* ---- reading ---- *)

let read_bloom t =
  let b = Bytes.create (t.nbloom * psz) in
  Env.read t.file ~off:(t.bloom_page0 * psz) ~len:(t.nbloom * psz) ~dst:b;
  Bloom.deserialize b

let read_index t =
  let b = Bytes.create (t.nindex * psz) in
  Env.read t.file ~off:(t.index_page0 * psz) ~len:(t.nindex * psz) ~dst:b;
  (* parse entries *)
  let entries = ref [] in
  let pos = ref 0 in
  let continue_ = ref true in
  while !continue_ && !pos + 6 <= Bytes.length b do
    let klen = Bytes.get_uint16_le b !pos in
    if klen = 0 then continue_ := false
    else begin
      let block_no = Int32.to_int (Bytes.get_int32_le b (!pos + 2)) in
      let k = Bytes.sub_string b (!pos + 6) klen in
      entries := (k, block_no) :: !entries;
      pos := !pos + 6 + klen
    end
  done;
  Array.of_list (List.rev !entries)

(* Largest index entry with first_key <= key. *)
let locate_block index key =
  let n = Array.length index in
  if n = 0 || fst index.(0) > key then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst index.(mid) <= key then lo := mid else hi := mid - 1
    done;
    Some (snd index.(!lo))
  end

let parse_block b f =
  let pos = ref 0 in
  let continue_ = ref true in
  while !continue_ && !pos + 6 <= psz do
    let klen = Bytes.get_uint16_le b !pos in
    if klen = 0 then continue_ := false
    else begin
      let vlen = Int32.to_int (Bytes.get_int32_le b (!pos + 2)) in
      let k = Bytes.sub_string b (!pos + 6) klen in
      let v = Bytes.sub_string b (!pos + 6 + klen) vlen in
      if not (f k v) then continue_ := false;
      pos := !pos + 6 + klen + vlen
    end
  done

let read_block t block_no =
  let b = Bytes.create psz in
  Env.read t.file ~off:(block_no * psz) ~len:psz ~dst:b;
  b

let get t key =
  if key < t.fkey || key > t.lkey then None
  else begin
    let bloom = read_bloom t in
    Kv_costs.(charge "kv_get_bloom" bloom_probe);
    if not (Bloom.mem bloom key) then None
    else begin
      let index = read_index t in
      Kv_costs.(charge "kv_get_index" index_search);
      match locate_block index key with
      | None -> None
      | Some block_no ->
          let b = read_block t block_no in
          Kv_costs.(charge "kv_get_block" block_scan);
          let found = ref None in
          parse_block b (fun k v ->
              if k = key then begin
                found := Some v;
                false
              end
              else k < key);
          !found
    end
  end

let iter_from t ~start ~f =
  let index = read_index t in
  Kv_costs.(charge "kv_scan_index" index_search);
  let start_block = match locate_block index start with None -> 0 | Some b -> b in
  let stop = ref false in
  let block = ref start_block in
  while (not !stop) && !block < t.ndata do
    let b = read_block t !block in
    Kv_costs.(charge "kv_scan_block" block_scan);
    parse_block b (fun k v ->
        if k < start then true
        else if f k v then true
        else begin
          stop := true;
          false
        end);
    incr block
  done

let locate_start_block t start =
  let index = read_index t in
  Kv_costs.(charge "kv_scan_index" index_search);
  match locate_block index start with None -> 0 | Some b -> b

let read_block_records t b =
  if b < 0 || b >= t.ndata then invalid_arg "Sst.read_block_records";
  let bytes = read_block t b in
  Kv_costs.(charge "kv_scan_block" block_scan);
  let acc = ref [] in
  parse_block bytes (fun k v ->
      acc := (k, v) :: !acc;
      true);
  List.rev !acc

let delete t = Env.delete t.file
