(** Static sorted table (SST) — RocksDB's on-device file format, scaled.

    Layout (page-aligned): data blocks of 4 KiB holding
    [u16 klen | u32 vlen | key | value] records, followed by an index area
    (first key of every block) and a serialized bloom filter.  Only the
    page layout and key range live in memory (the manifest); gets read the
    filter, index and data {e through the environment}, so the cost of
    metadata access follows the configured I/O path, as it does in each of
    the paper's setups. *)

type t

val build : Env.t -> name:string -> (string * string) list -> t
(** [build env ~name records] writes a new SST from ascending-key,
    duplicate-free [records].  Must run inside a fiber. *)

val first_key : t -> string
val last_key : t -> string
val nrecords : t -> int
val data_pages : t -> int
val total_pages : t -> int

val get : t -> string -> string option
(** Point lookup through filter → index → data block.  Charges compute
    under ["kv_get"*] labels; I/O is charged by the environment. *)

val iter_from : t -> start:string -> f:(string -> string -> bool) -> unit
(** [iter_from t ~start ~f] visits records with key ≥ [start] in order
    until [f] returns [false]. *)

val locate_start_block : t -> string -> int
(** [locate_start_block t key] is the data block that may contain [key]
    (for streaming cursors); reads the index through the environment. *)

val read_block_records : t -> int -> (string * string) list
(** [read_block_records t b] reads data block [b] and returns its records
    in order.  [b] must be in [\[0, data_pages)]. *)

val delete : t -> unit
