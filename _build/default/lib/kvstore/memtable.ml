module Smap = Map.Make (String)

type t = { mutable map : string Smap.t; mutable bytes : int }

let create () = { map = Smap.empty; bytes = 0 }

let put t k v =
  (match Smap.find_opt k t.map with
  | Some old -> t.bytes <- t.bytes - String.length k - String.length old
  | None -> ());
  t.map <- Smap.add k v t.map;
  t.bytes <- t.bytes + String.length k + String.length v

let get t k = Smap.find_opt k t.map
let mem_bytes t = t.bytes
let entries t = Smap.cardinal t.map
let is_empty t = Smap.is_empty t.map
let to_sorted_list t = Smap.bindings t.map

let range t ~start ~n =
  let _, eq, above = Smap.split start t.map in
  let first = match eq with Some v -> [ (start, v) ] | None -> [] in
  let rec take seq n acc =
    if n = 0 then List.rev acc
    else
      match seq () with
      | Seq.Nil -> List.rev acc
      | Seq.Cons ((k, v), rest) -> take rest (n - 1) ((k, v) :: acc)
  in
  let rest = take (Smap.to_seq above) (n - List.length first) [] in
  first @ rest

let clear t =
  t.map <- Smap.empty;
  t.bytes <- 0
