(** Kreon-style persistent key-value store (SoCC '18 / TOS '21 model).

    Kreon is designed around mmio in the common path: all keys and values
    live in a {e value log}, and each level keeps a bulk-built on-device
    {!Btree} from keys to log offsets, all inside one memory-mapped file.
    Point lookups walk the B+-tree (touching node pages through the
    mapping — hot internal nodes stay cached and free) and then read the
    value from the log — more random device accesses than RocksDB but far
    less I/O amplification and CPU per operation.

    Durability follows Kreon's commit protocol: {!msync} writes a
    superblock (level roots, committed log tail) and flushes dirty pages;
    after a crash, {!recover} rebuilds the levels from the superblock and
    replays the committed log suffix into L0.

    The store runs over an {!Aquila.Context} region; configuring the
    context with [domain = Ring3] turns the mmio path into the paper's
    [kmmap] baseline, while the default non-root ring 0 context is Kreon
    over Aquila (Figure 9). *)

type config = {
  l0_limit_entries : int;  (** in-memory L0 spill threshold *)
  level_ratio : int;  (** capacity growth per level *)
  nlevels : int;  (** on-device levels *)
}

val default_config : config

type t

val create :
  ctx:Aquila.Context.t ->
  access:Sdevice.Access.t ->
  store:Blobstore.Store.t ->
  expected_records:int ->
  value_bytes:int ->
  ?config:config ->
  unit ->
  t
(** [create ~ctx ~access ~store ~expected_records ~value_bytes ()] sizes
    the single mapped file (log + level areas) for the expected load and
    maps it through [ctx]. *)

val put : t -> string -> string -> unit
(** Append to the value log, insert into L0; spills levels when full.
    Must run inside a fiber. *)

val get : t -> string -> string option
val scan : t -> start:string -> n:int -> (string * string) list

val spill : t -> unit
(** Force L0 into L1. *)

val msync : t -> unit
(** Kreon's commit: write the superblock (level roots and committed log
    tail), then persist the mapped file's dirty pages. *)

val recover : t -> unit
(** Rebuild the in-memory state from the device (after
    {!Mcache.Dram_cache.crash} or a fresh reopen): levels from the
    superblock, L0 by replaying the committed log suffix.  Updates
    appended after the last {!msync} are lost, as they should be. *)

val level_entries : t -> int list
(** Entry counts per on-device level. *)

val log_bytes : t -> int
