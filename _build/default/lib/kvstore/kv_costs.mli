(** CPU-compute cost constants for the key-value store read/write paths.

    Charged as [User] cycles on top of the I/O costs the environment
    charges; calibrated so the composite per-operation numbers land near
    the paper's Figure 7 breakdown (RocksDB get ≈ 15–18 K cycles of
    store-side compute per point lookup). *)

val memtable_probe : int64
val memtable_insert : int64

val manifest_select : int64
(** Choosing the candidate SST within a level. *)

val bloom_probe : int64
val index_search : int64

val block_scan : int64
(** Record scan and key compares inside a data block. *)

val get_base : int64
(** Per-get fixed overhead (version refs, comparator setup). *)

val put_base : int64

val scan_next : int64
(** Per returned record during range scans. *)

val btree_node_search : int64
(** Kreon per-node binary-search compute. *)

val log_append : int64
(** Kreon log append bookkeeping. *)

val charge : string -> int64 -> unit
(** [charge label c] records [c] user-compute cycles under [label]. *)
