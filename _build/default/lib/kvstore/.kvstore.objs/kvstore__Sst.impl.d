lib/kvstore/sst.ml: Array Bloom Buffer Bytes Env Hw Int32 Kv_costs List String
