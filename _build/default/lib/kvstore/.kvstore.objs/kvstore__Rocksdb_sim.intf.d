lib/kvstore/rocksdb_sim.mli: Env Kv_iter
