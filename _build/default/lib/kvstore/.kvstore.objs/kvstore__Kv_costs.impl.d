lib/kvstore/kv_costs.ml: Sim
