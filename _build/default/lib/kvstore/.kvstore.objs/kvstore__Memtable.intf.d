lib/kvstore/memtable.mli:
