lib/kvstore/btree.ml: Array Bytes Hw Int32 Int64 Kv_costs String
