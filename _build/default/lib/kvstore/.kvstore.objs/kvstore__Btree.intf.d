lib/kvstore/btree.mli: Bytes
