lib/kvstore/env.ml: Aquila Blobstore Bytes Linux_sim Mcache Sim Uspace
