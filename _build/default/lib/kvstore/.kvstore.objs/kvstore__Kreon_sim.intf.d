lib/kvstore/kreon_sim.mli: Aquila Blobstore Sdevice
