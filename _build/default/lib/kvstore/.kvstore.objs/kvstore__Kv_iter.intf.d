lib/kvstore/kv_iter.mli: Memtable Sst
