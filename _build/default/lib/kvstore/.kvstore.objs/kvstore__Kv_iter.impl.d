lib/kvstore/kv_iter.ml: Array List Memtable Sst
