lib/kvstore/env.mli: Aquila Blobstore Bytes Hw Linux_sim Sdevice Uspace
