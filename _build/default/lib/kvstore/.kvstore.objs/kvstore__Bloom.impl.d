lib/kvstore/bloom.ml: Bytes Char Int32 String
