lib/kvstore/bloom.mli: Bytes
