lib/kvstore/sst.mli: Env
