lib/kvstore/memtable.ml: List Map Seq String
