lib/kvstore/kv_costs.mli:
