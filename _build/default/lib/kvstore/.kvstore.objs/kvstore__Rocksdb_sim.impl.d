lib/kvstore/rocksdb_sim.ml: Array Bytes Env Hashtbl Hw Int32 Int64 Kv_costs Kv_iter List Memtable Printf Sim Sst String
