lib/kvstore/kreon_sim.ml: Aquila Array Blobstore Btree Bytes Hashtbl Hw Int32 Int64 Kv_costs List Memtable Sim String
