(** Bloom filter over string keys (RocksDB-style, ~10 bits/key, k=7).

    Real bit vector — false-negative-free by construction, with the usual
    ~1 % false-positive rate; serializable so SSTs persist their filters
    on the device. *)

type t

val create : expected_keys:int -> t
val add : t -> string -> unit
val mem : t -> string -> bool
val bits : t -> int

val serialize : t -> Bytes.t
val deserialize : Bytes.t -> t
(** Raises [Invalid_argument] on malformed input. *)
