let memtable_probe = 1800L
let memtable_insert = 1600L
let manifest_select = 500L
let bloom_probe = 700L
let index_search = 1600L
let block_scan = 3800L
let get_base = 2600L
let put_base = 1200L
let scan_next = 600L
let btree_node_search = 520L
let log_append = 900L

let charge label c = Sim.Engine.delay ~cat:Sim.Engine.User ~label c
