(** RocksDB-style persistent LSM key-value store (scaled v6.8 model).

    The structure the paper evaluates: a memtable + WAL in front of
    leveled SSTs ({!Sst}) on the storage device, with bloom filters and
    block indexes read through the pluggable {!Env} — so the identical
    store runs over explicit I/O + user cache, Linux [mmap], or Aquila,
    reproducing the Figure 5/7 comparisons.

    Writes go to the WAL and memtable; flushes build L0 SSTs; L0 overflow
    triggers leveled compaction.  All sizes are scaled by 2^10 from the
    paper's setup (64 MB SSTs → 64 KB, etc.); ratios are preserved. *)

type config = {
  sst_pages : int;  (** target SST size in pages (default 64 = 256 KiB) *)
  memtable_limit_bytes : int;  (** flush threshold (default 256 KiB) *)
  l0_limit : int;  (** L0 file count triggering compaction (4) *)
  level_ratio : int;  (** size ratio between levels (10) *)
  nlevels : int;  (** number of on-device levels including L0 (4) *)
}

val default_config : config

type t

val create : Env.t -> ?config:config -> unit -> t

val put : t -> string -> string -> unit
(** Insert or update.  WAL append + memtable; may trigger a synchronous
    flush/compaction.  Must run inside a fiber. *)

val get : t -> string -> string option
val scan : t -> start:string -> n:int -> (string * string) list
(** Up to [n] records with key ≥ [start], ascending, merged across the
    memtable and all levels. *)

val iterator : t -> start:string -> Kv_iter.t
(** Streaming merge iterator from [start] — RocksDB's range-scan
    machinery: newest sources shadow older ones; SST blocks are read
    lazily through the environment. *)

val bulk_load : t -> (string * string) list -> unit
(** [bulk_load t records] builds bottom-level SSTs directly from
    ascending-key, duplicate-free [records] (the YCSB load phase). *)

val flush : t -> unit
(** Force the memtable to an L0 SST. *)

val sst_count : t -> int
val level_sizes : t -> int list
(** SST count per level, L0 first. *)

val record_count : t -> int
(** Records across memtable and SSTs (an upper bound under updates, which
    may shadow older versions until compaction). *)
