let psz = Hw.Defs.page_size

type config = {
  sst_pages : int;
  memtable_limit_bytes : int;
  l0_limit : int;
  level_ratio : int;
  nlevels : int;
}

let default_config =
  {
    sst_pages = 64;
    memtable_limit_bytes = 256 * 1024;
    l0_limit = 4;
    level_ratio = 10;
    nlevels = 4;
  }

type t = {
  env : Env.t;
  cfg : config;
  mutable mem : Memtable.t;
  mutable imm : Memtable.t option; (* being flushed *)
  levels : Sst.t list array; (* L0 newest-first; L1+ ascending by first_key *)
  mutable file_seq : int;
  mutable wal : Env.file;
  mutable wal_page : int;
  wal_buf : Bytes.t;
  mutable wal_pos : int;
  wlock : Sim.Sync.Mutex.t;
}

let wal_pages = 256

let create env ?(config = default_config) () =
  let wal = Env.create_file env ~name:"000001.log" ~size_pages:wal_pages in
  {
    env;
    cfg = config;
    mem = Memtable.create ();
    imm = None;
    levels = Array.make config.nlevels [];
    file_seq = 1;
    wal;
    wal_page = 0;
    wal_buf = Bytes.make psz '\000';
    wal_pos = 0;
    wlock = Sim.Sync.Mutex.create ~name:"rocksdb-write" ();
  }

(* records per SST at the configured target size: data pages hold ~3
   1 KiB records; leave two pages for index + filter *)
let records_per_sst t avg_record =
  let per_block = max 1 (psz / (avg_record + 6)) in
  max 8 ((t.cfg.sst_pages - 2) * per_block)

let next_sst_name t =
  t.file_seq <- t.file_seq + 1;
  Printf.sprintf "%06d.sst" t.file_seq

(* ---- write path ---- *)

let wal_append t k v =
  let rec_len = 6 + String.length k + String.length v in
  if t.wal_pos + rec_len > psz then begin
    (* flush the WAL page (group commit) *)
    Env.write t.wal ~off:(t.wal_page * psz) ~src:t.wal_buf;
    t.wal_page <- (t.wal_page + 1) mod wal_pages;
    Bytes.fill t.wal_buf 0 psz '\000';
    t.wal_pos <- 0
  end;
  if rec_len <= psz then begin
    Bytes.set_uint16_le t.wal_buf t.wal_pos (String.length k);
    Bytes.set_int32_le t.wal_buf (t.wal_pos + 2) (Int32.of_int (String.length v));
    Bytes.blit_string k 0 t.wal_buf (t.wal_pos + 6) (String.length k);
    Bytes.blit_string v 0 t.wal_buf (t.wal_pos + 6 + String.length k)
      (String.length v);
    t.wal_pos <- t.wal_pos + rec_len
  end

(* Merge SST record lists, earlier lists taking precedence per key. *)
let merge_records lists =
  let seen = Hashtbl.create 4096 in
  let out = ref [] in
  List.iter
    (fun recs ->
      List.iter
        (fun (k, v) ->
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            out := (k, v) :: !out
          end)
        recs)
    lists;
  List.sort (fun (a, _) (b, _) -> compare a b) !out

let read_all sst =
  let acc = ref [] in
  Sst.iter_from sst ~start:""
    ~f:(fun k v ->
      acc := (k, v) :: !acc;
      true);
  List.rev !acc

let split_into_ssts t records =
  let avg =
    match records with
    | (k, v) :: _ -> String.length k + String.length v
    | [] -> 1024
  in
  let per = records_per_sst t avg in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take i acc rest =
          if i = per then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | x :: xs -> take (i + 1) (x :: acc) xs
        in
        let chunk, rest = take 0 [] l in
        chunk :: chunks rest
  in
  List.filter (fun c -> c <> []) (chunks records)

let build_ssts t records =
  List.map (fun chunk -> Sst.build t.env ~name:(next_sst_name t) chunk)
    (split_into_ssts t records)

let overlaps sst (lo, hi) = Sst.first_key sst <= hi && Sst.last_key sst >= lo

let level_max_ssts t level =
  if level = 0 then t.cfg.l0_limit
  else begin
    let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
    t.cfg.l0_limit * pow t.cfg.level_ratio level
  end

(* Compact [level] into [level+1]: merge overlapping files. *)
let rec compact t level =
  if level + 1 < t.cfg.nlevels && List.length t.levels.(level) > level_max_ssts t level
  then begin
    let upper = t.levels.(level) in
    match upper with
    | [] -> ()
    | _ ->
        let lo =
          List.fold_left (fun acc s -> min acc (Sst.first_key s))
            (Sst.first_key (List.hd upper)) upper
        in
        let hi =
          List.fold_left (fun acc s -> max acc (Sst.last_key s))
            (Sst.last_key (List.hd upper)) upper
        in
        let lower = t.levels.(level + 1) in
        let touched, untouched = List.partition (fun s -> overlaps s (lo, hi)) lower in
        (* upper is newest-first for L0; for L1+ order within the level is
           disjoint so precedence is irrelevant *)
        let merged =
          merge_records (List.map read_all upper @ List.map read_all touched)
        in
        let new_ssts = build_ssts t merged in
        let sorted =
          List.sort (fun a b -> compare (Sst.first_key a) (Sst.first_key b))
            (untouched @ new_ssts)
        in
        t.levels.(level) <- [];
        t.levels.(level + 1) <- sorted;
        List.iter Sst.delete upper;
        List.iter Sst.delete touched;
        compact t (level + 1)
  end

let flush_locked t =
  match t.imm with
  | None -> ()
  | Some imm ->
      let records = Memtable.to_sorted_list imm in
      (match records with
      | [] -> ()
      | _ ->
          let ssts = build_ssts t records in
          t.levels.(0) <- ssts @ t.levels.(0);
          compact t 0);
      t.imm <- None

let flush t =
  Sim.Sync.Mutex.lock t.wlock;
  if t.imm = None && not (Memtable.is_empty t.mem) then begin
    t.imm <- Some t.mem;
    t.mem <- Memtable.create ()
  end;
  flush_locked t;
  Sim.Sync.Mutex.unlock t.wlock

let put t k v =
  Kv_costs.(charge "kv_put" (Int64.add put_base memtable_insert));
  wal_append t k v;
  Memtable.put t.mem k v;
  if Memtable.mem_bytes t.mem > t.cfg.memtable_limit_bytes then flush t

(* ---- read path ---- *)

let search_sorted_level ssts key =
  (* ssts ascending by first_key, disjoint: binary search *)
  let arr = Array.of_list ssts in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    let res = ref None in
    if Sst.first_key arr.(0) > key then ()
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if Sst.first_key arr.(mid) <= key then lo := mid else hi := mid - 1
      done;
      if key <= Sst.last_key arr.(!lo) then res := Some arr.(!lo)
    end;
    !res
  end

let get t key =
  Kv_costs.(charge "kv_get" (Int64.add get_base memtable_probe));
  match Memtable.get t.mem key with
  | Some v -> Some v
  | None -> (
      let imm_hit =
        match t.imm with
        | Some imm ->
            Kv_costs.(charge "kv_get" memtable_probe);
            Memtable.get imm key
        | None -> None
      in
      match imm_hit with
      | Some v -> Some v
      | None ->
          let rec try_l0 = function
            | [] -> None
            | sst :: rest ->
                Kv_costs.(charge "kv_get" manifest_select);
                if key >= Sst.first_key sst && key <= Sst.last_key sst then
                  match Sst.get sst key with
                  | Some v -> Some v
                  | None -> try_l0 rest
                else try_l0 rest
          in
          (match try_l0 t.levels.(0) with
          | Some v -> Some v
          | None ->
              let rec try_levels l =
                if l >= t.cfg.nlevels then None
                else begin
                  Kv_costs.(charge "kv_get" manifest_select);
                  match search_sorted_level t.levels.(l) key with
                  | Some sst -> (
                      match Sst.get sst key with
                      | Some v -> Some v
                      | None -> try_levels (l + 1))
                  | None -> try_levels (l + 1)
                end
              in
              try_levels 1))

(* Lazy concatenation over a sorted, disjoint level: open one SST cursor
   at a time, in key order, starting from the first that may hold
   [start]. *)
let level_cursor ssts ~start =
  let rec from_start = function
    | [] -> []
    | sst :: rest -> if Sst.last_key sst < start then from_start rest else sst :: rest
  in
  let remaining = ref (from_start ssts) in
  let current = ref None in
  let rec pull () =
    match !current with
    | Some cur -> (
        match Kv_iter.next cur with
        | Some x -> Some x
        | None ->
            current := None;
            pull ())
    | None -> (
        match !remaining with
        | [] -> None
        | sst :: rest ->
            remaining := rest;
            current := Some (Kv_iter.of_sst sst ~start);
            pull ())
  in
  Kv_iter.of_fun pull

let iterator t ~start =
  let mem_sources =
    Kv_iter.of_memtable t.mem ~start
    :: (match t.imm with Some imm -> [ Kv_iter.of_memtable imm ~start ] | None -> [])
  in
  let l0_sources = List.map (fun sst -> Kv_iter.of_sst sst ~start) t.levels.(0) in
  let level_sources =
    List.filter_map
      (fun l ->
        match t.levels.(l) with
        | [] -> None
        | ssts -> Some (level_cursor ssts ~start))
      (List.init (t.cfg.nlevels - 1) (fun i -> i + 1))
  in
  Kv_iter.merge (mem_sources @ l0_sources @ level_sources)

let scan t ~start ~n =
  let it = iterator t ~start in
  let result = Kv_iter.take it n in
  Kv_costs.(
    charge "kv_scan" (Int64.mul scan_next (Int64.of_int (max 1 (List.length result)))));
  result

let bulk_load t records =
  let ssts = build_ssts t records in
  let bottom = t.cfg.nlevels - 1 in
  t.levels.(bottom) <-
    List.sort (fun a b -> compare (Sst.first_key a) (Sst.first_key b))
      (t.levels.(bottom) @ ssts)

let sst_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.levels
let level_sizes t = Array.to_list (Array.map List.length t.levels)

let record_count t =
  Memtable.entries t.mem
  + (match t.imm with Some m -> Memtable.entries m | None -> 0)
  + Array.fold_left
      (fun acc l -> acc + List.fold_left (fun a s -> a + Sst.nrecords s) 0 l)
      0 t.levels
