type t = { bitv : Bytes.t; nbits : int; k : int }

let hashes = 7
let bits_per_key = 10

let create ~expected_keys =
  let nbits = max 64 (expected_keys * bits_per_key) in
  let nbytes = (nbits + 7) / 8 in
  { bitv = Bytes.make nbytes '\000'; nbits; k = hashes }

(* double hashing on two seeded FNV-1a values *)
let fnv seed s =
  let h = ref (0xcbf29ce484222 lxor seed) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let set_bit b i = Bytes.set b (i / 8) (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8))))
let get_bit b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let probe t h1 h2 i = ((h1 + (i * h2)) land max_int) mod t.nbits

let add t key =
  let h1 = fnv 0 key and h2 = fnv 0x9747b28c key in
  for i = 0 to t.k - 1 do
    set_bit t.bitv (probe t h1 h2 i)
  done

let mem t key =
  let h1 = fnv 0 key and h2 = fnv 0x9747b28c key in
  let rec go i = i >= t.k || (get_bit t.bitv (probe t h1 h2 i) && go (i + 1)) in
  go 0

let bits t = t.nbits

let serialize t =
  let out = Bytes.create (8 + Bytes.length t.bitv) in
  Bytes.set_int32_le out 0 (Int32.of_int t.nbits);
  Bytes.set_int32_le out 4 (Int32.of_int t.k);
  Bytes.blit t.bitv 0 out 8 (Bytes.length t.bitv);
  out

let deserialize b =
  if Bytes.length b < 8 then invalid_arg "Bloom.deserialize: too short";
  let nbits = Int32.to_int (Bytes.get_int32_le b 0) in
  let k = Int32.to_int (Bytes.get_int32_le b 4) in
  let nbytes = (nbits + 7) / 8 in
  if nbits <= 0 || k <= 0 || Bytes.length b < 8 + nbytes then
    invalid_arg "Bloom.deserialize: malformed";
  { bitv = Bytes.sub b 8 nbytes; nbits; k }
