
type file = {
  fread : off:int -> len:int -> dst:Bytes.t -> unit;
  fwrite : off:int -> src:Bytes.t -> unit;
  fsync : unit -> unit;
  fdelete : unit -> unit;
  fsize : int;
}

type t = { ename : string; mk : name:string -> size_pages:int -> file }

let name t = t.ename
let create_file t ~name ~size_pages = t.mk ~name ~size_pages
let read f = f.fread
let write f = f.fwrite
let sync f = f.fsync ()
let delete f = f.fdelete ()
let size_pages f = f.fsize

let translate_of blob p =
  if p < Blobstore.Store.blob_pages blob then
    Some (Blobstore.Store.device_page blob p)
  else None

let direct_ucache ~store ~costs ~device_access ~ucache =
  let next_id = ref 100000 (* distinct from mmio context fids *) in
  let mk ~name ~size_pages =
    ignore name;
    let blob = Blobstore.Store.create_blob store ~name ~pages:size_pages () in
    incr next_id;
    let file_id = !next_id in
    let fd =
      Linux_sim.Readwrite.open_direct ~costs ~access:device_access
        ~translate:(translate_of blob) ~size_pages
    in
    Uspace.User_cache.register_file ucache ~file_id ~fd;
    {
      fread =
        (fun ~off ~len ~dst -> Uspace.User_cache.read ucache ~file_id ~off ~len ~dst);
      fwrite = (fun ~off ~src -> Uspace.User_cache.write ucache ~file_id ~off ~src);
      fsync = (fun () -> () (* O_DIRECT writes are already on the device *));
      fdelete =
        (fun () ->
          Uspace.User_cache.invalidate_file ucache ~file_id;
          Blobstore.Store.delete store blob);
      fsize = size_pages;
    }
  in
  { ename = "read/write"; mk }

let linux_mmap ~store ~msys ~device_access =
  let mk ~name ~size_pages =
    let blob = Blobstore.Store.create_blob store ~name ~pages:size_pages () in
    let lf =
      Linux_sim.Mmap_sys.attach_file msys ~name ~access:device_access
        ~translate:(translate_of blob) ~size_pages
    in
    let region = Linux_sim.Mmap_sys.mmap msys lf ~npages:size_pages () in
    {
      fread = (fun ~off ~len ~dst -> Linux_sim.Mmap_sys.read msys region ~off ~len ~dst);
      fwrite = (fun ~off ~src -> Linux_sim.Mmap_sys.write msys region ~off ~src);
      fsync = (fun () -> Linux_sim.Mmap_sys.msync msys region);
      fdelete =
        (fun () ->
          Linux_sim.Mmap_sys.munmap msys region;
          Linux_sim.Page_cache.drop_file
            (Linux_sim.Mmap_sys.page_cache msys)
            ~core:(Sim.Engine.self ()).Sim.Engine.core
            ~file_id:(Linux_sim.Mmap_sys.file_id lf);
          Blobstore.Store.delete store blob);
      fsize = size_pages;
    }
  in
  { ename = "mmap"; mk }

let aquila ~store ~ctx ~device_access =
  let mk ~name ~size_pages =
    let blob = Blobstore.Store.create_blob store ~name ~pages:size_pages () in
    let af =
      Aquila.Context.attach_file ctx ~name ~access:device_access
        ~translate:(translate_of blob) ~size_pages
    in
    let region = Aquila.Context.mmap ctx af ~npages:size_pages () in
    {
      fread = (fun ~off ~len ~dst -> Aquila.Context.read ctx region ~off ~len ~dst);
      fwrite = (fun ~off ~src -> Aquila.Context.write ctx region ~off ~src);
      fsync = (fun () -> Aquila.Context.msync ctx region);
      fdelete =
        (fun () ->
          Aquila.Context.munmap ctx region;
          Mcache.Dram_cache.drop_file (Aquila.Context.cache ctx)
            ~core:(Sim.Engine.self ()).Sim.Engine.core
            ~file_id:(Aquila.Context.file_id af);
          Blobstore.Store.delete store blob);
      fsize = size_pages;
    }
  in
  { ename = "aquila"; mk }
