(** In-memory write buffer (sorted map with byte accounting).

    Stands in for RocksDB's skiplist memtable and Kreon's L0: insertion
    and lookup compute costs are charged by the stores that use it. *)

type t

val create : unit -> t
val put : t -> string -> string -> unit
val get : t -> string -> string option
val mem_bytes : t -> int
val entries : t -> int
val is_empty : t -> bool

val to_sorted_list : t -> (string * string) list
(** Ascending by key. *)

val range : t -> start:string -> n:int -> (string * string) list
(** Up to [n] entries with key ≥ [start], ascending. *)

val clear : t -> unit
