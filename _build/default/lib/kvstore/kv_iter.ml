(* A cursor is a peekable stream: [head] caches the next binding and
   [advance] refills it. *)
type t = { mutable head : (string * string) option; advance : unit -> (string * string) option }

let refill t = t.head <- t.advance ()

let peek t = t.head

let next t =
  let r = t.head in
  (match r with Some _ -> refill t | None -> ());
  r

let of_sorted_list l =
  let rest = ref l in
  let advance () =
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x
  in
  let t = { head = None; advance } in
  refill t;
  t

let of_memtable m ~start =
  (* snapshot; memtables are small relative to SSTs *)
  of_sorted_list (Memtable.range m ~start ~n:max_int)

let of_sst sst ~start =
  let block = ref (Sst.locate_start_block sst start) in
  let pending = ref [] in
  let rec advance () =
    match !pending with
    | (k, v) :: tl ->
        pending := tl;
        if k >= start then Some (k, v) else advance ()
    | [] ->
        if !block >= Sst.data_pages sst then None
        else begin
          pending := Sst.read_block_records sst !block;
          incr block;
          advance ()
        end
  in
  let t = { head = None; advance } in
  refill t;
  t

let of_fun pull =
  let t = { head = None; advance = pull } in
  refill t;
  t

let merge sources =
  let arr = Array.of_list sources in
  let advance () =
    (* smallest head key; earliest source wins ties *)
    let best = ref None in
    Array.iteri
      (fun i s ->
        match (peek s, !best) with
        | Some (k, _), None -> best := Some (k, i)
        | Some (k, _), Some (bk, _) when k < bk -> best := Some (k, i)
        | _ -> ())
      arr;
    match !best with
    | None -> None
    | Some (k, i) ->
        let r = next arr.(i) in
        (* consume the shadowed duplicates from lower-priority sources *)
        Array.iteri
          (fun j s ->
            if j <> i then
              match peek s with
              | Some (k', _) when k' = k -> ignore (next s)
              | _ -> ())
          arr;
        r
  in
  let t = { head = None; advance } in
  refill t;
  t

let take t n =
  let rec go n acc =
    if n = 0 then List.rev acc
    else match next t with None -> List.rev acc | Some x -> go (n - 1) (x :: acc)
  in
  go n []
