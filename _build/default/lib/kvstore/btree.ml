let psz = Hw.Defs.page_size

type rw = {
  read : off:int -> len:int -> dst:Bytes.t -> unit;
  write : off:int -> src:Bytes.t -> unit;
}

type info = {
  root_page : int;
  height : int;
  count : int;
  leaf0 : int;
  nleaves : int;
  pages_used : int;
}

let max_key_bytes = 38
let entry_bytes = 48 (* u16 klen | key padded to 38 | u64 payload *)
let header_bytes = 8 (* u8 kind | u16 count | padding *)
let fanout = (psz - header_bytes) / entry_bytes (* 85 *)

let pages_needed n =
  let rec go nodes acc =
    if nodes <= 1 then acc
    else
      let next = (nodes + fanout - 1) / fanout in
      go next (acc + next)
  in
  let leaves = max 1 ((n + fanout - 1) / fanout) in
  go leaves leaves + 1

(* ---- node serialization ---- *)

let pack_entry b off key payload =
  if String.length key > max_key_bytes then invalid_arg "Btree: key too long";
  Bytes.set_uint16_le b off (String.length key);
  Bytes.blit_string key 0 b (off + 2) (String.length key);
  Bytes.set_int64_le b (off + 2 + max_key_bytes) (Int64.of_int payload)

let node_page kind entries =
  let b = Bytes.make psz '\000' in
  Bytes.set_uint8 b 0 kind;
  Bytes.set_uint16_le b 1 (Array.length entries);
  Array.iteri
    (fun i (k, p) -> pack_entry b (header_bytes + (i * entry_bytes)) k p)
    entries;
  b

(* Read one node header: (kind, count). *)
let read_header rw ~page =
  let b = Bytes.create 4 in
  rw.read ~off:(page * psz) ~len:4 ~dst:b;
  (Bytes.get_uint8 b 0, Bytes.get_uint16_le b 1)

(* Read entry [idx] of node [page]: (key, payload). *)
let read_entry rw ~page ~idx =
  let b = Bytes.create entry_bytes in
  rw.read ~off:((page * psz) + header_bytes + (idx * entry_bytes)) ~len:entry_bytes ~dst:b;
  let klen = Bytes.get_uint16_le b 0 in
  (Bytes.sub_string b 2 klen, Int64.to_int (Bytes.get_int64_le b (2 + max_key_bytes)))

(* ---- bulk build ---- *)

let build rw ~base_page entries =
  let n = Array.length entries in
  if n = 0 then invalid_arg "Btree.build: empty";
  Array.iteri
    (fun i (k, _) ->
      if String.length k > max_key_bytes then invalid_arg "Btree: key too long";
      if i > 0 && fst entries.(i - 1) >= k then
        invalid_arg "Btree.build: entries must be strictly ascending")
    entries;
  let next_page = ref base_page in
  (* Write one level of nodes from [items]; returns (first_key, page) per
     node for the level above. *)
  let write_level kind items =
    let nitems = Array.length items in
    let nnodes = (nitems + fanout - 1) / fanout in
    Array.init nnodes (fun node ->
        let lo = node * fanout in
        let hi = min nitems (lo + fanout) - 1 in
        let slice = Array.sub items lo (hi - lo + 1) in
        let page = !next_page in
        incr next_page;
        rw.write ~off:(page * psz) ~src:(node_page kind slice);
        (fst slice.(0), page))
  in
  let leaf0 = !next_page in
  let leaf_keys = write_level 1 entries in
  let nleaves = Array.length leaf_keys in
  let rec up level keys =
    if Array.length keys = 1 then (snd keys.(0), level)
    else
      let next = write_level 0 keys in
      up (level + 1) next
  in
  let root_page, height = up 1 leaf_keys in
  {
    root_page;
    height;
    count = n;
    leaf0;
    nleaves;
    pages_used = !next_page - base_page;
  }

(* ---- lookup ---- *)

(* Largest entry index with key <= target, or None if all keys > target. *)
let node_floor rw ~page ~count target =
  if count = 0 then None
  else begin
    let k0, _ = read_entry rw ~page ~idx:0 in
    if k0 > target then None
    else begin
      let lo = ref 0 and hi = ref (count - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        Kv_costs.(charge "kv_get_index" btree_node_search);
        let k, _ = read_entry rw ~page ~idx:mid in
        if k <= target then lo := mid else hi := mid - 1
      done;
      Some !lo
    end
  end

let rec descend rw ~page ~level target =
  let kind, count = read_header rw ~page in
  if kind = 1 then (page, count)
  else
    match node_floor rw ~page ~count target with
    | None ->
        (* target below the subtree: take the leftmost child *)
        let _, child = read_entry rw ~page ~idx:0 in
        descend rw ~page:child ~level:(level - 1) target
    | Some idx ->
        let _, child = read_entry rw ~page ~idx in
        descend rw ~page:child ~level:(level - 1) target

let find rw info key =
  let leaf, count = descend rw ~page:info.root_page ~level:info.height key in
  match node_floor rw ~page:leaf ~count key with
  | None -> None
  | Some idx ->
      let k, payload = read_entry rw ~page:leaf ~idx in
      if k = key then Some payload else None

let iter_from rw info ~start ~f =
  let leaf, count = descend rw ~page:info.root_page ~level:info.height start in
  let start_idx =
    match node_floor rw ~page:leaf ~count start with
    | None -> 0
    | Some idx ->
        let k, _ = read_entry rw ~page:leaf ~idx in
        if k >= start then idx else idx + 1
  in
  (* leaves occupy [leaf0, leaf0 + nleaves): walk forward page by page *)
  let stop = ref false in
  let page = ref leaf and idx = ref start_idx in
  let cnt = ref count in
  while not !stop do
    if !idx >= !cnt then begin
      incr page;
      idx := 0;
      if !page >= info.leaf0 + info.nleaves then stop := true
      else begin
        let _, c = read_header rw ~page:!page in
        cnt := c;
        if c = 0 then stop := true
      end
    end
    else begin
      let k, payload = read_entry rw ~page:!page ~idx:!idx in
      if k >= start then begin
        if not (f k payload) then stop := true
      end;
      incr idx
    end
  done

(* ---- info (de)serialization for superblocks ---- *)

let info_bytes = 24

let serialize_info i =
  let b = Bytes.create info_bytes in
  Bytes.set_int32_le b 0 (Int32.of_int i.root_page);
  Bytes.set_int32_le b 4 (Int32.of_int i.height);
  Bytes.set_int32_le b 8 (Int32.of_int i.count);
  Bytes.set_int32_le b 12 (Int32.of_int i.leaf0);
  Bytes.set_int32_le b 16 (Int32.of_int i.nleaves);
  Bytes.set_int32_le b 20 (Int32.of_int i.pages_used);
  b

let deserialize_info b ~pos =
  let g o = Int32.to_int (Bytes.get_int32_le b (pos + o)) in
  {
    root_page = g 0;
    height = g 4;
    count = g 8;
    leaf0 = g 12;
    nleaves = g 16;
    pages_used = g 20;
  }
