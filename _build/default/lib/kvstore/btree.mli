(** On-device bulk-built B+-tree over an mmio region.

    Kreon keeps a per-level index from keys to value-log offsets inside
    its single memory-mapped file; levels are immutable between spills, so
    the tree is {e bulk-built} bottom-up from sorted entries — leaves fill
    a contiguous page run, then internal levels are built over their first
    keys up to a single root.  Lookups walk root→leaf, touching each node
    page through the mapping (cache hits are free, misses fault), with
    binary search inside nodes.

    Fixed-size slots (48 B: key up to 38 B + 8 B payload) give a fanout of
    85 per 4 KiB node.  All I/O goes through a caller-supplied {!rw}
    accessor, so the tree works over any mmio surface. *)

type rw = {
  read : off:int -> len:int -> dst:Bytes.t -> unit;  (** region byte read *)
  write : off:int -> src:Bytes.t -> unit;
}

type info = {
  root_page : int;  (** region page of the root node *)
  height : int;  (** 1 = root is a leaf *)
  count : int;  (** total entries *)
  leaf0 : int;  (** first leaf page (leaves are contiguous) *)
  nleaves : int;
  pages_used : int;
}

val max_key_bytes : int
(** Longest supported key (38 bytes). *)

val fanout : int
(** Entries per node (85). *)

val pages_needed : int -> int
(** [pages_needed n] is an upper bound on pages a tree of [n] entries
    uses (leaves plus all internal levels). *)

val build : rw -> base_page:int -> (string * int) array -> info
(** [build rw ~base_page entries] writes a tree for ascending-key,
    duplicate-free [entries] into the page run starting at [base_page].
    Must run inside a fiber (region writes fault).  Raises
    [Invalid_argument] on empty input, unsorted input, or oversized
    keys. *)

val find : rw -> info -> string -> int option
(** [find rw info key] walks the tree; must run inside a fiber. *)

val iter_from : rw -> info -> start:string -> f:(string -> int -> bool) -> unit
(** [iter_from rw info ~start ~f] visits entries with key ≥ [start] in
    ascending order until [f] returns [false] — leaves are contiguous, so
    iteration advances page by page. *)

val serialize_info : info -> Bytes.t
val deserialize_info : Bytes.t -> pos:int -> info
val info_bytes : int
(** Size of a serialized {!info} (for superblocks). *)
