(** Streaming merge iterators over key-value sources.

    RocksDB serves range scans through a k-way merging iterator over the
    memtable and every live SST; this module provides the same machinery:
    pull-based cursors that read SST data blocks lazily (through the
    environment, so iteration costs follow the configured I/O path) and a
    merge combinator where earlier sources shadow later ones on duplicate
    keys — memtable over L0 over deeper levels. *)

type t

val next : t -> (string * string) option
(** [next it] yields the smallest remaining key (with its newest value)
    and advances; [None] when exhausted.  Must run inside a fiber when
    the iterator reads storage. *)

val peek : t -> (string * string) option
(** [peek it] is the next binding without consuming it. *)

val of_sorted_list : (string * string) list -> t
(** Cursor over an already-sorted, duplicate-free list. *)

val of_memtable : Memtable.t -> start:string -> t
(** Cursor over a memtable snapshot from [start]. *)

val of_sst : Sst.t -> start:string -> t
(** Lazy cursor over an SST: positions via the block index and reads one
    data block at a time. *)

val of_fun : (unit -> (string * string) option) -> t
(** [of_fun pull] wraps a producer that yields ascending keys. *)

val merge : t list -> t
(** [merge sources] interleaves by key; on ties the earliest source in
    the list wins (newest-first ordering is the caller's job). *)

val take : t -> int -> (string * string) list
(** [take it n] pulls up to [n] bindings. *)
