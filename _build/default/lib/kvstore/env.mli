(** Pluggable storage environment for the key-value stores.

    A store is written once against this interface and runs unchanged on
    each I/O configuration the paper compares (its Figure 1):

    - {!direct_ucache}: explicit direct-I/O [pread]/[pwrite] through a
      user-space block cache (RocksDB's recommended mode);
    - {!linux_mmap}: shared file mappings through the Linux kernel page
      cache;
    - {!aquila}: Aquila mmio regions (and, with a ring-3 configured
      context, Kreon's [kmmap] path).

    Files are allocated as blobs on a shared {!Blobstore.Store}, so every
    environment sees the same device-page layout. *)

type file

type t

val name : t -> string

val create_file : t -> name:string -> size_pages:int -> file
(** [create_file t ~name ~size_pages] allocates a fixed-size file. *)

val read : file -> off:int -> len:int -> dst:Bytes.t -> unit
(** Reads real data; charges the environment's full access path.  Must run
    inside a fiber. *)

val write : file -> off:int -> src:Bytes.t -> unit
val sync : file -> unit
val delete : file -> unit
val size_pages : file -> int

val direct_ucache :
  store:Blobstore.Store.t ->
  costs:Hw.Costs.t ->
  device_access:Sdevice.Access.t ->
  ucache:Uspace.User_cache.t ->
  t
(** Explicit I/O: [device_access] should use a host entry ([From_user])
    so each miss pays the syscall. *)

val linux_mmap : store:Blobstore.Store.t -> msys:Linux_sim.Mmap_sys.t -> device_access:Sdevice.Access.t -> t
(** Files are mmapped whole at creation; reads/writes are loads/stores. *)

val aquila : store:Blobstore.Store.t -> ctx:Aquila.Context.t -> device_access:Sdevice.Access.t -> t
(** Same, through an Aquila (or kmmap-configured) context. *)
