(** Explicit [read]/[write] syscall I/O (the user-space-cache baseline's
    device path).

    Two modes, as in the paper's RocksDB configurations:
    - {b direct}: [O_DIRECT] — a syscall plus the kernel block layer plus
      the device, bypassing the page cache.  This is what RocksDB's
      recommended configuration uses underneath its user-space cache.
    - {b buffered}: through the shared {!Page_cache} (syscall + lookup or
      fill + copy-to-user). *)

type fd

val open_direct :
  costs:Hw.Costs.t ->
  access:Sdevice.Access.t ->
  translate:(int -> int option) ->
  size_pages:int ->
  fd
(** [open_direct ~costs ~access ~translate ~size_pages] wraps a file for
    direct I/O.  [access] should be a host path ([From_user] entry) so the
    syscall cost is charged per request. *)

val open_buffered : pc:Page_cache.t -> file_id:int -> size_pages:int -> fd
(** Buffered I/O through an existing page cache in which [file_id] is
    registered. *)

val size_pages : fd -> int

val pread : fd -> off:int -> len:int -> dst:Bytes.t -> unit
(** [pread fd ~off ~len ~dst] reads file bytes [\[off, off+len)].  Direct
    mode rounds to page-aligned device requests, as [O_DIRECT] requires.
    Must run inside a fiber. *)

val pwrite : fd -> off:int -> src:Bytes.t -> unit

val reads : fd -> int
val writes : fd -> int
