lib/linux_sim/mmap_sys.ml: Bytes Dstruct Hw Int Int64 List Mcache Page_cache Sim
