lib/linux_sim/mmap_sys.mli: Bytes Hw Page_cache Sdevice Sim
