lib/linux_sim/readwrite.ml: Bytes Hw Mcache Page_cache Sdevice Sim
