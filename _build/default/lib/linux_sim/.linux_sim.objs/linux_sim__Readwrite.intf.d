lib/linux_sim/readwrite.mli: Bytes Hw Page_cache Sdevice
