lib/linux_sim/page_cache.mli: Bytes Hw Mcache Sdevice Sim
