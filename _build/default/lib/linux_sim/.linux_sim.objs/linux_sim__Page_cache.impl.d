lib/linux_sim/page_cache.ml: Array Bytes Dstruct Hashtbl Hw Int64 List Mcache Printf Queue Sdevice Sim
