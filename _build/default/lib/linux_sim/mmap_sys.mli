(** Linux [mmap] mmio path (the paper's primary baseline).

    Same application surface as {!Aquila.Context} so workloads can run on
    either system unchanged: shared file-backed mappings, page-granular
    loads/stores with real data, [msync]/[munmap].  The differences are
    the point of the paper: faults trap from ring 3 into the kernel
    (1287 cycles), walk the VMA tree under [mmap_sem], and go through the
    shared {!Page_cache} with its [tree_lock]/[lru_lock] serialization and
    128 KiB fault readahead. *)

type config = {
  cache : Page_cache.config;
  vma_rb_cost_multiplier : int;  (** VMA red-black walk depth factor *)
}

val default_config : cache_frames:int -> config

type t
type file
type region

val create : ?costs:Hw.Costs.t -> ?machine:Hw.Machine.t -> config -> t

val costs : t -> Hw.Costs.t
val machine : t -> Hw.Machine.t
val page_cache : t -> Page_cache.t

val enter_thread : t -> unit
(** Registers the calling fiber's core as a shootdown target (thread
    creation); no domain change — the process stays in ring 3. *)

val attach_file :
  t ->
  name:string ->
  access:Sdevice.Access.t ->
  translate:(int -> int option) ->
  size_pages:int ->
  file

val file_id : file -> int

val mmap : t -> file -> ?file_page0:int -> npages:int -> unit -> region
(** A real [mmap] syscall: ring 3 → kernel, [mmap_sem] write, VMA insert. *)

val munmap : t -> region -> unit
val msync : t -> region -> unit
val region_npages : region -> int

val touch : t -> region -> page:int -> write:bool -> unit

val touch_buf : t -> region -> page:int -> write:bool -> buf:Sim.Costbuf.t -> unit
(** Batched-charging variant of {!touch} (see {!Aquila.Context.touch_buf}). *)

val read : t -> region -> off:int -> len:int -> dst:Bytes.t -> unit
val write : t -> region -> off:int -> src:Bytes.t -> unit

val accesses : t -> int
val faults : t -> int
