let psz = Hw.Defs.page_size

type direct = {
  dcosts : Hw.Costs.t;
  daccess : Sdevice.Access.t;
  dtranslate : int -> int option;
}

type buffered = { pc : Page_cache.t; file_id : int }
type mode = Direct of direct | Buffered of buffered

type fd = {
  mode : mode;
  fsize_pages : int;
  mutable nreads : int;
  mutable nwrites : int;
}

let open_direct ~costs ~access ~translate ~size_pages =
  {
    mode = Direct { dcosts = costs; daccess = access; dtranslate = translate };
    fsize_pages = size_pages;
    nreads = 0;
    nwrites = 0;
  }

let open_buffered ~pc ~file_id ~size_pages =
  { mode = Buffered { pc; file_id }; fsize_pages = size_pages; nreads = 0; nwrites = 0 }

let size_pages fd = fd.fsize_pages

let check fd ~off ~len =
  if off < 0 || len < 0 || off + len > fd.fsize_pages * psz then
    invalid_arg "Readwrite: range outside file"

(* Device pages covering [off, off+len), as (first_page, count). *)
let span ~off ~len =
  let first = off / psz in
  let last = (off + len - 1) / psz in
  (first, last - first + 1)

let direct_rw d ~off ~len ~is_write k =
  let first, count = span ~off ~len in
  (* O_DIRECT requires page-granular device transfers; find the device run
     and split on discontiguities. *)
  let scratch = Bytes.create (count * psz) in
  let rec segments p remaining done_ =
    if remaining = 0 then ()
    else
      match d.dtranslate p with
      | None -> invalid_arg "Readwrite: beyond end of file"
      | Some dev0 ->
          (* extend while contiguous *)
          let run = ref 1 in
          let continue_ = ref true in
          while !continue_ && !run < remaining do
            match d.dtranslate (p + !run) with
            | Some dv when dv = dev0 + !run -> incr run
            | _ -> continue_ := false
          done;
          let run = !run in
          if is_write then
            Sdevice.Access.write_pages d.daccess ~page:dev0 ~count:run
              ~src:(Bytes.sub scratch (done_ * psz) (run * psz))
          else begin
            let part = Bytes.create (run * psz) in
            Sdevice.Access.read_pages d.daccess ~page:dev0 ~count:run ~dst:part;
            Bytes.blit part 0 scratch (done_ * psz) (run * psz)
          end;
          segments (p + run) (remaining - run) (done_ + run)
  in
  if is_write then k scratch first;
  (* writes fill scratch before issuing *)
  if is_write then segments first count 0
  else begin
    segments first count 0;
    k scratch first
  end

let pread fd ~off ~len ~dst =
  check fd ~off ~len;
  if Bytes.length dst < len then invalid_arg "Readwrite.pread: dst too small";
  fd.nreads <- fd.nreads + 1;
  match fd.mode with
  | Direct d ->
      direct_rw d ~off ~len ~is_write:false (fun scratch first ->
          Bytes.blit scratch (off - (first * psz)) dst 0 len)
  | Buffered b ->
      let core = (Sim.Engine.self ()).Sim.Engine.core in
      let pos = ref 0 in
      while !pos < len do
        let abs = off + !pos in
        let page = abs / psz and in_page = abs mod psz in
        let chunk = min (len - !pos) (psz - in_page) in
        let key = Mcache.Pagekey.make ~file:b.file_id ~page in
        let pfn = Page_cache.buffered_read b.pc ~core ~key in
        Bytes.blit (Page_cache.pfn_data b.pc pfn) in_page dst !pos chunk;
        pos := !pos + chunk
      done

let pwrite fd ~off ~src =
  let len = Bytes.length src in
  check fd ~off ~len;
  fd.nwrites <- fd.nwrites + 1;
  match fd.mode with
  | Direct d ->
      if off mod psz <> 0 || len mod psz <> 0 then
        invalid_arg "Readwrite.pwrite: O_DIRECT requires page alignment";
      direct_rw d ~off ~len ~is_write:true (fun scratch _first ->
          Bytes.blit src 0 scratch 0 len)
  | Buffered b ->
      (* buffered write: fill page, modify, mark dirty *)
      let core = (Sim.Engine.self ()).Sim.Engine.core in
      let pos = ref 0 in
      while !pos < len do
        let abs = off + !pos in
        let page = abs / psz and in_page = abs mod psz in
        let chunk = min (len - !pos) (psz - in_page) in
        let key = Mcache.Pagekey.make ~file:b.file_id ~page in
        let pfn = Page_cache.buffered_read b.pc ~core ~key in
        Bytes.blit src !pos (Page_cache.pfn_data b.pc pfn) in_page chunk;
        Page_cache.set_dirty_key b.pc ~key;
        pos := !pos + chunk
      done

let reads fd = fd.nreads
let writes fd = fd.nwrites
