(** Global architectural constants shared by the whole simulator. *)

val page_size : int
(** Bytes per base page (4 KiB, as on x86-64). *)

val page_shift : int
(** [log2 page_size]. *)

val page_of_addr : int64 -> int
(** [page_of_addr a] is the virtual/device page number containing byte
    address [a]. *)

val addr_of_page : int -> int64
(** [addr_of_page p] is the first byte address of page [p]. *)

val pages_of_bytes : int64 -> int
(** [pages_of_bytes n] is the number of pages needed to hold [n] bytes
    (rounded up). *)

val cycles_per_ns : float
(** Simulated clock rate in cycles per nanosecond (2.4 GHz, matching the
    paper's Xeon E5-2630 v3 testbed). *)

val ns : float -> int64
(** [ns x] converts nanoseconds to cycles. *)

val us : float -> int64
(** [us x] converts microseconds to cycles. *)

val cycles_to_ns : int64 -> float
(** [cycles_to_ns c] converts cycles back to nanoseconds. *)
