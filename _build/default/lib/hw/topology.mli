(** CPU topology of the simulated server.

    Mirrors the paper's testbed: a dual-socket Xeon E5-2630 v3 with 8
    physical cores / 16 hyperthreads per socket — 32 hardware threads over
    2 NUMA nodes. *)

type t = { cores : int; nodes : int }

val default : t
(** 32 cores across 2 NUMA nodes. *)

val create : cores:int -> nodes:int -> t
(** [create ~cores ~nodes] builds a custom topology; [cores] must be a
    positive multiple of [nodes]. *)

val cores_per_node : t -> int

val node_of : t -> int -> int
(** [node_of t core] is the NUMA node hosting [core].  Cores are numbered
    contiguously per node, as Linux numbers them on this machine. *)
