(** Per-core hardware state of the simulated machine.

    Holds each core's TLB and a pending-interrupt-cycles accumulator.
    Interrupt work delivered to a core (e.g. TLB-shootdown IPIs) is added
    to the accumulator by the sender; the fiber pinned to that core drains
    it at its next opportunity, modelling the perturbation that interrupt
    storms impose on victim threads. *)

type core = {
  id : int;
  tlb : Tlb.t;
  mutable pending_irq : int64;  (** interrupt cycles not yet absorbed *)
  mutable irqs_received : int;
}

type t

val create : ?topology:Topology.t -> ?tlb_capacity:int -> unit -> t
(** [create ()] builds a machine with the default 32-core / 2-node
    topology. *)

val topology : t -> Topology.t
val core : t -> int -> core
(** [core t i] is core [i]'s state.  Raises [Invalid_argument] on bad id. *)

val cores : t -> core array

val deliver_irq : t -> core:int -> int64 -> unit
(** [deliver_irq t ~core c] queues [c] cycles of interrupt-handling work on
    [core]. *)

val drain_irq : t -> core:int -> int64
(** [drain_irq t ~core] returns and clears the pending interrupt cycles for
    [core].  The calling fiber should charge the returned amount as [Sys]
    time. *)
