type core = {
  id : int;
  tlb : Tlb.t;
  mutable pending_irq : int64;
  mutable irqs_received : int;
}

type t = { topo : Topology.t; core_arr : core array }

let create ?(topology = Topology.default) ?tlb_capacity () =
  let mk i =
    { id = i; tlb = Tlb.create ?capacity:tlb_capacity (); pending_irq = 0L; irqs_received = 0 }
  in
  { topo = topology; core_arr = Array.init topology.Topology.cores mk }

let topology t = t.topo

let core t i =
  if i < 0 || i >= Array.length t.core_arr then invalid_arg "Machine.core: bad id";
  t.core_arr.(i)

let cores t = t.core_arr

let deliver_irq t ~core:i c =
  let co = core t i in
  co.pending_irq <- Int64.add co.pending_irq c;
  co.irqs_received <- co.irqs_received + 1

let drain_irq t ~core:i =
  let co = core t i in
  let p = co.pending_irq in
  co.pending_irq <- 0L;
  p
