(** Inter-processor interrupts and TLB shootdowns.

    A shootdown invalidates a set of pages in the TLBs of every core that
    may cache them.  The sender pays the send cost (once per batch in
    Aquila's batched scheme, Section 4.1) plus the wait for the slowest
    receiver's acknowledgement; each receiving core is charged the
    receive-plus-invalidate work through {!Machine.deliver_irq}. *)

type send_mode =
  | Posted  (** posted interrupts, no vmexit on the send path: 298 cycles *)
  | Vmexit_send
      (** send forced through a vmexit for DoS rate-limiting (Aquila's
          default, Section 4.1): 2081 cycles *)
  | Kernel_ipi  (** ordinary kernel IPI as used by Linux shootdowns *)

val send_cost : Costs.t -> send_mode -> int64
(** [send_cost c m] is the sender-side cost of initiating one IPI batch. *)

val shootdown :
  Machine.t ->
  Costs.t ->
  mode:send_mode ->
  src:int ->
  targets:int list ->
  vpns:int list ->
  int64
(** [shootdown m c ~mode ~src ~targets ~vpns] invalidates [vpns] in the
    TLBs of [targets] (excluding [src], whose local invalidation the caller
    performs).  Mutates the target TLBs, queues receive work on each target
    core, and returns the cycles to charge the {e sender} (send plus
    ack-wait).  Returns the local invalidation cost only when [targets] is
    empty. *)

val shootdowns_sent : unit -> int
(** Global count of shootdown batches (for experiment reporting). *)

val reset_counters : unit -> unit
