let page_size = 4096
let page_shift = 12

let page_of_addr a = Int64.to_int (Int64.shift_right_logical a page_shift)
let addr_of_page p = Int64.shift_left (Int64.of_int p) page_shift

let pages_of_bytes n =
  let p = Int64.div (Int64.add n (Int64.of_int (page_size - 1))) (Int64.of_int page_size) in
  Int64.to_int p

let cycles_per_ns = 2.4
let ns x = Int64.of_float (x *. cycles_per_ns)
let us x = ns (x *. 1000.)
let cycles_to_ns c = Int64.to_float c /. cycles_per_ns
