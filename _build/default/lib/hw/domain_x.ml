type t = Ring3 | Nonroot_ring0

let fault_transition_cost (c : Costs.t) = function
  | Ring3 -> c.trap_ring3
  | Nonroot_ring0 -> Int64.add c.exception_ring0 c.exception_stack_switch

let syscall_cost (c : Costs.t) = function
  | Ring3 -> c.syscall
  | Nonroot_ring0 -> c.vmcall_roundtrip

let pp fmt = function
  | Ring3 -> Format.pp_print_string fmt "ring3"
  | Nonroot_ring0 -> Format.pp_print_string fmt "non-root ring0"
