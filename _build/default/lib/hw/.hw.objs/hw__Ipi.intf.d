lib/hw/ipi.mli: Costs Machine
