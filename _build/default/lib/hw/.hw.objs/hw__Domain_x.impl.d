lib/hw/domain_x.ml: Costs Format Int64
