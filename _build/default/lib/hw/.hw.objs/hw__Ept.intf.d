lib/hw/ept.mli: Costs
