lib/hw/machine.mli: Tlb Topology
