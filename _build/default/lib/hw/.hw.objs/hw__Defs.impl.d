lib/hw/defs.ml: Int64
