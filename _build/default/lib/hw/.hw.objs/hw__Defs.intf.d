lib/hw/defs.mli:
