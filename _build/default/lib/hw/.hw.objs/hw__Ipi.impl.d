lib/hw/ipi.ml: Costs Int64 List Machine Tlb
