lib/hw/topology.mli:
