lib/hw/ept.ml: Costs Hashtbl Int64
