lib/hw/domain_x.mli: Costs Format
