lib/hw/topology.ml:
