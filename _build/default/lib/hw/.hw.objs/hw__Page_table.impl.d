lib/hw/page_table.ml: Hashtbl
