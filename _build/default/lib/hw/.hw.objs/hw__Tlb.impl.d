lib/hw/tlb.ml: Array Costs
