lib/hw/costs.mli:
