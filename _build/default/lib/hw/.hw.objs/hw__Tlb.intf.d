lib/hw/tlb.mli: Costs
