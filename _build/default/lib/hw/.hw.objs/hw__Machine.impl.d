lib/hw/machine.ml: Array Int64 Tlb Topology
