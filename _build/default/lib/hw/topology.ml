type t = { cores : int; nodes : int }

let create ~cores ~nodes =
  if cores <= 0 || nodes <= 0 || cores mod nodes <> 0 then
    invalid_arg "Topology.create: cores must be a positive multiple of nodes";
  { cores; nodes }

let default = create ~cores:32 ~nodes:2
let cores_per_node t = t.cores / t.nodes

let node_of t core =
  if core < 0 || core >= t.cores then invalid_arg "Topology.node_of: bad core";
  core / cores_per_node t
