(** Extended page table: guest-physical → host-physical translation.

    One EPT per process (Aquila's modification of Dune's one-per-thread,
    Section 3.5).  The hypervisor populates translations lazily on EPT
    faults; Aquila keeps faults rare by using huge mappings (1 GiB by
    default) for its DRAM-cache ranges. *)

type t

val create : ?granularity_bytes:int64 -> unit -> t
(** [create ()] uses 1 GiB mappings.  Pass [2097152L] for 2 MiB pages. *)

val granularity : t -> int64

val touch : t -> Costs.t -> gpa:int64 -> int64
(** [touch t c ~gpa] ensures the huge frame containing guest-physical
    address [gpa] is mapped.  Returns 0 if it already is; otherwise models
    an EPT violation — a vmexit, host-side handling, and vmentry — maps the
    frame, and returns that cost. *)

val unmap_range : t -> gpa:int64 -> len:int64 -> int
(** [unmap_range t ~gpa ~len] removes translations covering the range
    (hypervisor reclaim on cache downsizing).  Returns how many huge
    frames were dropped. *)

val faults : t -> int
val mapped_frames : t -> int
