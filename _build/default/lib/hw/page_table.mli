(** Guest page table: virtual page number → physical frame mappings.

    One instance is shared by all threads of a simulated process, as in
    Linux and in Aquila (Section 3.4: a single page table, not RadixVM's
    per-core tables).  Costs are charged by callers via {!Costs.t}. *)

type pte = {
  mutable pfn : int;  (** physical frame number backing the page *)
  mutable writable : bool;  (** write permission (read faults map RO) *)
  mutable dirty : bool;  (** hardware dirty bit *)
  mutable accessed : bool;  (** hardware accessed bit *)
}

type t

val create : unit -> t

val map : t -> vpn:int -> pfn:int -> writable:bool -> unit
(** [map t ~vpn ~pfn ~writable] installs or replaces the translation. *)

val unmap : t -> vpn:int -> pte option
(** [unmap t ~vpn] removes and returns the translation, if present. *)

val find : t -> vpn:int -> pte option

val mapped : t -> int
(** Number of live translations. *)

val set_writable : t -> vpn:int -> bool -> unit
(** [set_writable t ~vpn w] toggles write permission (write-protect /
    dirty-tracking upgrade).  Raises [Not_found] if unmapped. *)
