type pte = {
  mutable pfn : int;
  mutable writable : bool;
  mutable dirty : bool;
  mutable accessed : bool;
}

type t = { entries : (int, pte) Hashtbl.t }

let create () = { entries = Hashtbl.create 4096 }

let map t ~vpn ~pfn ~writable =
  match Hashtbl.find_opt t.entries vpn with
  | Some pte ->
      pte.pfn <- pfn;
      pte.writable <- writable;
      pte.dirty <- false;
      pte.accessed <- true
  | None ->
      Hashtbl.replace t.entries vpn
        { pfn; writable; dirty = false; accessed = true }

let unmap t ~vpn =
  match Hashtbl.find_opt t.entries vpn with
  | Some pte ->
      Hashtbl.remove t.entries vpn;
      Some pte
  | None -> None

let find t ~vpn = Hashtbl.find_opt t.entries vpn
let mapped t = Hashtbl.length t.entries

let set_writable t ~vpn w =
  match Hashtbl.find_opt t.entries vpn with
  | Some pte -> pte.writable <- w
  | None -> raise Not_found
