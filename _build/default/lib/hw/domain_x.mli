(** Protection domains and transition costs.

    Captures the paper's central mechanism: where the application runs
    determines what a page fault and a system call cost.  A Linux process
    faults from ring 3 into kernel ring 0 (1287-cycle trap); an Aquila
    application already runs in VMX non-root ring 0, so a fault is a
    same-ring exception (552 cycles) and privileged work needs no domain
    switch — but calls that must reach the host OS pay a vmcall. *)

type t =
  | Ring3  (** ordinary Linux process *)
  | Nonroot_ring0  (** Aquila application (guest ring 0 under VT-x) *)

val fault_transition_cost : Costs.t -> t -> int64
(** Cost of taking a page-fault exception and returning, excluding the
    handler body.  Aquila additionally pays its alternate-exception-stack
    switch (Section 4.2). *)

val syscall_cost : Costs.t -> t -> int64
(** Cost of reaching the host kernel and back: a syscall pair from ring 3,
    a vmcall round trip from non-root ring 0 (Section 4.4). *)

val pp : Format.formatter -> t -> unit
