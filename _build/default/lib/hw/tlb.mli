(** Per-core translation lookaside buffer model.

    A direct-mapped TLB over 4 KiB virtual page numbers.  Functions return
    the cycle cost of the operation instead of charging the simulation
    clock themselves; callers accumulate costs and charge them in batches
    to keep discrete-event counts low. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty TLB.  [capacity] defaults to 1536 entries
    (Haswell's combined second-level data TLB). *)

val access : t -> Costs.t -> vpn:int -> int64
(** [access t c ~vpn] looks up [vpn]; on a miss, charges a page-table walk
    and installs the translation.  Returns the cycle cost (0 on a hit). *)

val invalidate_page : t -> vpn:int -> unit
(** [invalidate_page t ~vpn] drops [vpn]'s entry if cached (the effect of a
    received shootdown; the cost is accounted by {!Ipi}). *)

val invalidate_local : t -> Costs.t -> vpn:int -> int64
(** [invalidate_local t c ~vpn] is an [invlpg] executed by the owning core:
    drops the entry and returns its cost. *)

val flush : t -> Costs.t -> int64
(** [flush t c] empties the TLB and returns the full-flush cost. *)

val hits : t -> int
val misses : t -> int
val invalidations : t -> int
