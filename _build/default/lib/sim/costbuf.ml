type t = { tbl : (string, int64) Hashtbl.t; mutable sum : int64 }

let create () = { tbl = Hashtbl.create 8; sum = 0L }

let add t label c =
  if Int64.compare c 0L > 0 then begin
    let cur = try Hashtbl.find t.tbl label with Not_found -> 0L in
    Hashtbl.replace t.tbl label (Int64.add cur c);
    t.sum <- Int64.add t.sum c
  end

let total t = t.sum

let labels t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []

let charge ?(cat = Engine.Sys) t =
  if Int64.compare t.sum 0L > 0 then begin
    Hashtbl.iter (fun label c -> Engine.label_add label c) t.tbl;
    Engine.delay ~cat t.sum;
    Hashtbl.reset t.tbl;
    t.sum <- 0L
  end
