type 'a entry = { time : int64; seq : int; v : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let narr = Array.make ncap e in
    Array.blit t.arr 0 narr 0 t.len;
    t.arr <- narr
  end

let push t ~time ~seq v =
  let e = { time; seq; v } in
  grow t e;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less t.arr.(!i) t.arr.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.arr.(p) in
    t.arr.(p) <- t.arr.(!i);
    t.arr.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.len && less t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          let tmp = t.arr.(!smallest) in
          t.arr.(!smallest) <- t.arr.(!i);
          t.arr.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.seq, top.v)
  end

let peek_time t = if t.len = 0 then None else Some t.arr.(0).time
