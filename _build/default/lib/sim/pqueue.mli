(** Binary min-heap priority queue keyed by [(time, sequence)] pairs.

    Used by the discrete-event engine to order pending events.  Ties on
    [time] are broken by the monotonically increasing sequence number, which
    makes event ordering — and therefore every simulation — deterministic. *)

type 'a t
(** A mutable priority queue holding values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
(** [length q] is the number of queued elements. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [length q = 0]. *)

val push : 'a t -> time:int64 -> seq:int -> 'a -> unit
(** [push q ~time ~seq v] inserts [v] with priority [(time, seq)]. *)

val pop : 'a t -> (int64 * int * 'a) option
(** [pop q] removes and returns the element with the smallest
    [(time, seq)] key, or [None] if the queue is empty. *)

val peek_time : 'a t -> int64 option
(** [peek_time q] is the key time of the next element without removing it. *)
