(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that simulations replay bit-for-bit given the same seed.  [split]
    derives independent streams, used to give each simulated thread its own
    generator without cross-thread ordering effects. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator seeded with [seed]. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator by
    consuming one output of [t]. *)

val next64 : t -> int64
(** [next64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int64 : t -> int64 -> int64
(** [int64 t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)
