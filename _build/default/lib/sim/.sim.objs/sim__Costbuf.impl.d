lib/sim/costbuf.ml: Engine Hashtbl Int64
