lib/sim/rng.mli:
