lib/sim/sync.ml: Engine Int64 Queue
