lib/sim/engine.mli: Hashtbl Rng
