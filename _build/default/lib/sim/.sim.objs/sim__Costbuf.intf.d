lib/sim/costbuf.mli: Engine
