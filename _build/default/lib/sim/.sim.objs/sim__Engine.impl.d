lib/sim/engine.ml: Effect Hashtbl Int64 Pqueue Printf Rng
