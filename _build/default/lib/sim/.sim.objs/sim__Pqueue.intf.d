lib/sim/pqueue.mli:
