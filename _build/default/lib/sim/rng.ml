type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next64 t }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  r mod bound

let int64 t bound =
  assert (Int64.compare bound 0L > 0);
  let r = Int64.shift_right_logical (next64 t) 1 in
  Int64.rem r bound

let float t =
  let r = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L
