module Waitq = struct
  type t = { waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }

  let wait t = Engine.suspend (fun resume -> Queue.add resume t.waiters)

  let signal t =
    match Queue.take_opt t.waiters with
    | None -> false
    | Some resume ->
        resume ();
        true

  let broadcast t =
    let n = Queue.length t.waiters in
    for _ = 1 to n do
      ignore (signal t)
    done;
    n

  let waiting t = Queue.length t.waiters
end

module Mutex = struct
  type t = {
    mutable locked : bool;
    waiters : (unit -> unit) Queue.t;
    mutable contended : int64;
    mutable acqs : int;
    acquire_cost : int64;
    mname : string;
  }

  let create ?(name = "mutex") ?(acquire_cost = 40L) () =
    {
      locked = false;
      waiters = Queue.create ();
      contended = 0L;
      acqs = 0;
      acquire_cost;
      mname = name;
    }

  let lock ?(cat = Engine.Sys) t =
    t.acqs <- t.acqs + 1;
    Engine.delay ~cat t.acquire_cost;
    if t.locked then begin
      let t0 = Engine.now_f () in
      Engine.suspend (fun resume -> Queue.add resume t.waiters);
      (* Ownership was transferred to us by [unlock]. *)
      t.contended <- Int64.add t.contended (Int64.sub (Engine.now_f ()) t0)
    end
    else t.locked <- true

  let unlock t =
    if not t.locked then invalid_arg (t.mname ^ ": unlock of unlocked mutex");
    match Queue.take_opt t.waiters with
    | Some resume -> resume () (* stays locked; waiter now owns it *)
    | None -> t.locked <- false

  let with_lock ?cat t f =
    lock ?cat t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e

  let acquisitions t = t.acqs
  let contended_cycles t = t.contended
  let name t = t.mname
end

module Resource = struct
  type t = {
    capacity : int;
    mutable used : int;
    waiters : (unit -> unit) Queue.t;
    mutable queued : int64;
    mutable done_ : int;
    rname : string;
  }

  let create ?(name = "resource") ~capacity () =
    if capacity <= 0 then invalid_arg "Resource.create: capacity";
    { capacity; used = 0; waiters = Queue.create (); queued = 0L; done_ = 0; rname = name }

  let acquire t =
    if t.used < t.capacity then t.used <- t.used + 1
    else begin
      let t0 = Engine.now_f () in
      Engine.suspend (fun resume -> Queue.add resume t.waiters);
      (* Slot was transferred to us by [release]. *)
      t.queued <- Int64.add t.queued (Int64.sub (Engine.now_f ()) t0)
    end

  let release t =
    if t.used <= 0 then invalid_arg (t.rname ^ ": release without acquire");
    match Queue.take_opt t.waiters with
    | Some resume -> resume () (* slot handed over; [used] unchanged *)
    | None -> t.used <- t.used - 1

  let use t ~service =
    acquire t;
    Engine.idle_wait service;
    t.done_ <- t.done_ + 1;
    release t

  let in_use t = t.used
  let queued_cycles t = t.queued
  let completed t = t.done_
end

module Barrier = struct
  type t = { parties : int; mutable arrived : int; q : Waitq.t }

  let create ~parties =
    if parties <= 0 then invalid_arg "Barrier.create";
    { parties; arrived = 0; q = Waitq.create () }

  let await t =
    t.arrived <- t.arrived + 1;
    if t.arrived >= t.parties then begin
      t.arrived <- 0;
      ignore (Waitq.broadcast t.q)
    end
    else Waitq.wait t.q

  let waiting t = t.arrived
end

module Ivar = struct
  type 'a t = { mutable v : 'a option; q : Waitq.t }

  let create () = { v = None; q = Waitq.create () }

  let fill t v =
    match t.v with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
        t.v <- Some v;
        ignore (Waitq.broadcast t.q)

  let rec read t =
    match t.v with
    | Some v -> v
    | None ->
        Waitq.wait t.q;
        read t

  let is_filled t = t.v <> None
end
