(** Synchronization primitives for simulated fibers.

    All primitives are FIFO and deterministic.  Blocking time is charged to
    the waiting fiber's idle counter by the engine, and lock contention is
    additionally tracked per mutex so that experiments can report where
    serialization happens (e.g. the Linux page-cache [tree_lock]). *)

(** Condition-variable-style wait queue. *)
module Waitq : sig
  type t

  val create : unit -> t

  val wait : t -> unit
  (** [wait q] parks the calling fiber until a signal arrives. *)

  val signal : t -> bool
  (** [signal q] wakes the longest-waiting fiber.  Returns [false] if no
      fiber was waiting. *)

  val broadcast : t -> int
  (** [broadcast q] wakes all waiting fibers, returning how many. *)

  val waiting : t -> int
  (** [waiting q] is the number of parked fibers. *)
end

(** FIFO mutex with contention accounting.

    [acquire_cost] models the uncontended hardware cost of the lock
    operation (an atomic RMW plus cache-line transfer) and is charged on
    every [lock]. *)
module Mutex : sig
  type t

  val create : ?name:string -> ?acquire_cost:int64 -> unit -> t
  (** [create ()] is an unlocked mutex.  [acquire_cost] defaults to 40
      cycles. *)

  val lock : ?cat:Engine.category -> t -> unit
  (** [lock m] acquires [m], blocking FIFO if held.  Charges
      [acquire_cost] to [cat] (default [Sys]). *)

  val unlock : t -> unit
  (** [unlock m] releases [m], handing ownership to the next waiter if
      any.  Raises [Invalid_argument] if [m] is not locked. *)

  val with_lock : ?cat:Engine.category -> t -> (unit -> 'a) -> 'a

  val acquisitions : t -> int
  (** Total number of [lock] calls. *)

  val contended_cycles : t -> int64
  (** Total cycles fibers spent blocked waiting for this mutex. *)

  val name : t -> string
end

(** Counted resource with FIFO admission — models device channels or queue
    slots.  A fiber [use]s the resource for a given service time during
    which one unit of capacity is held. *)
module Resource : sig
  type t

  val create : ?name:string -> capacity:int -> unit -> t

  val acquire : t -> unit
  (** [acquire r] takes one capacity unit, blocking FIFO when exhausted. *)

  val release : t -> unit

  val use : t -> service:int64 -> unit
  (** [use r ~service] acquires, waits [service] cycles of device time
      (charged as idle to the calling fiber), and releases. *)

  val in_use : t -> int
  val queued_cycles : t -> int64
  (** Total cycles spent queueing for admission (device queueing delay). *)

  val completed : t -> int
  (** Number of completed [use] operations. *)
end

(** Cyclic barrier: the last arriving fiber releases everyone. *)
module Barrier : sig
  type t

  val create : parties:int -> t
  (** [create ~parties] synchronizes groups of [parties] fibers. *)

  val await : t -> unit
  (** [await b] blocks until [parties] fibers have arrived, then all
      proceed and the barrier resets for the next round. *)

  val waiting : t -> int
end

(** Write-once synchronization cell (future/promise). *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val read : 'a t -> 'a
  (** [read i] blocks until [i] is filled, then returns the value. *)

  val is_filled : 'a t -> bool
end
