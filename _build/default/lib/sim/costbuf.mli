(** Labeled cycle accumulator.

    Simulated components accumulate software costs here while they mutate
    shared structures, then charge the total as {e one} engine delay at a
    point where suspension is safe.  This keeps multi-step critical
    sections atomic (the engine only interleaves fibers at suspension
    points) and keeps discrete-event counts low, while preserving
    per-label attribution for breakdown figures. *)

type t

val create : unit -> t

val add : t -> string -> int64 -> unit
(** [add t label c] accumulates [c] cycles under [label]. *)

val total : t -> int64

val charge : ?cat:Engine.category -> t -> unit
(** [charge t] advances the clock by {!total} (default category [Sys]),
    records each label in the current fiber's accounting, and resets [t].
    No-op when the total is zero.  Must run inside a fiber. *)

val labels : t -> (string * int64) list
