(** Ligra-style parallel PageRank over a heap surface.

    A second Ligra application beyond the paper's BFS evaluation,
    exercising the dense (pull) edgeMap every iteration: each vertex
    gathers rank from its in-neighbours.  Like {!Bfs}, all state lives on
    a {!Mem_surface.t}, so the same code runs in DRAM, over Linux [mmap],
    or over Aquila. *)

type result = {
  iterations : int;
  ranks_sum : float;  (** ≈ 1.0 (probability mass conservation check) *)
  top_vertex : int;  (** highest-ranked vertex *)
  elapsed_cycles : int64;
}

val run :
  eng:Sim.Engine.t ->
  graph:Graph.t ->
  surface:Mem_surface.t ->
  threads:int ->
  ?iterations:int ->
  ?damping:float ->
  unit ->
  result
(** [run ~eng ~graph ~surface ~threads ()] executes [iterations] (default
    10) synchronous PageRank rounds with damping factor [damping]
    (default 0.85).  Spawns fibers and drains the engine. *)
