type result = {
  rounds : int;
  components : int;
  largest : int;
  elapsed_cycles : int64;
}

type charger = { buf : Sim.Costbuf.t; mutable compute : int64 }

let flush ch =
  if Int64.compare ch.compute 0L > 0 then begin
    Sim.Engine.delay ~cat:Sim.Engine.User ~label:"ligra_compute" ch.compute;
    ch.compute <- 0L
  end;
  Sim.Costbuf.charge ch.buf

let maybe_flush ch =
  if Int64.compare (Int64.add ch.compute (Sim.Costbuf.total ch.buf)) 200_000L > 0
  then flush ch

let cycles_per_edge = 30L
let cycles_per_vertex = 60L

let run ~eng ~(graph : Graph.t) ~surface ~threads () =
  if threads <= 0 then invalid_arg "Components.run: threads";
  let n = graph.Graph.n in
  (* symmetrize: label propagation needs both directions *)
  let sym =
    let pairs = ref [] in
    for v = 0 to n - 1 do
      Graph.iter_neighbors graph v (fun d ->
          pairs := (v, d) :: (d, v) :: !pairs)
    done;
    Graph.of_edge_list ~n !pairs
  in
  let start_time = Sim.Engine.now eng in
  let rounds = ref 0 and comps = ref 0 and largest = ref 0 in
  ignore
    (Sim.Engine.spawn eng ~name:"cc-driver" ~core:0 (fun () ->
         let b0 = Sim.Costbuf.create () in
         let offs =
           Mem_surface.alloc surface ~len:(n + 1) ~init:(fun i -> sym.Graph.offsets.(i))
         in
         let edgs =
           Mem_surface.alloc surface ~len:(max 1 sym.Graph.m) ~init:(fun i ->
               if sym.Graph.m = 0 then 0 else sym.Graph.edges.(i))
         in
         let label = Mem_surface.alloc surface ~len:n ~init:(fun v -> v) in
         Sim.Costbuf.charge b0;
         let changed = ref true in
         while !changed do
           incr rounds;
           changed := false;
           let dones = Array.init threads (fun _ -> Sim.Sync.Ivar.create ()) in
           for w = 0 to threads - 1 do
             ignore
               (Sim.Engine.spawn eng ~name:(Printf.sprintf "cc-w%d" w) ~core:(w mod 32)
                  (fun () ->
                    let ch = { buf = Sim.Costbuf.create (); compute = 0L } in
                    let lo = w * n / threads and hi = ((w + 1) * n / threads) - 1 in
                    for v = lo to hi do
                      ch.compute <- Int64.add ch.compute cycles_per_vertex;
                      let best = ref (Mem_surface.get label ~buf:ch.buf v) in
                      let o0 = Mem_surface.get offs ~buf:ch.buf v in
                      let o1 = Mem_surface.get offs ~buf:ch.buf (v + 1) in
                      for e = o0 to o1 - 1 do
                        ch.compute <- Int64.add ch.compute cycles_per_edge;
                        let u = Mem_surface.get edgs ~buf:ch.buf e in
                        let lu = Mem_surface.get label ~buf:ch.buf u in
                        if lu < !best then best := lu;
                        maybe_flush ch
                      done;
                      if !best < Mem_surface.get label ~buf:ch.buf v then begin
                        Mem_surface.set label ~buf:ch.buf v !best;
                        changed := true
                      end
                    done;
                    flush ch;
                    Sim.Sync.Ivar.fill dones.(w) ()))
           done;
           Array.iter Sim.Sync.Ivar.read dones
         done;
         (* summarize *)
         let b = Sim.Costbuf.create () in
         let counts = Hashtbl.create 64 in
         for v = 0 to n - 1 do
           let l = Mem_surface.get label ~buf:b v in
           Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))
         done;
         Sim.Costbuf.charge b;
         comps := Hashtbl.length counts;
         largest := Hashtbl.fold (fun _ c acc -> max c acc) counts 0;
         Mem_surface.free label;
         List.iter Mem_surface.free [ offs; edgs ]));
  Sim.Engine.run eng;
  {
    rounds = !rounds;
    components = !comps;
    largest = !largest;
    elapsed_cycles = Int64.sub (Sim.Engine.now eng) start_time;
  }
