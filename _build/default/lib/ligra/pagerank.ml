type result = {
  iterations : int;
  ranks_sum : float;
  top_vertex : int;
  elapsed_cycles : int64;
}

type charger = { buf : Sim.Costbuf.t; mutable compute : int64 }

let flush ch =
  if Int64.compare ch.compute 0L > 0 then begin
    Sim.Engine.delay ~cat:Sim.Engine.User ~label:"ligra_compute" ch.compute;
    ch.compute <- 0L
  end;
  Sim.Costbuf.charge ch.buf

let maybe_flush ch =
  if Int64.compare (Int64.add ch.compute (Sim.Costbuf.total ch.buf)) 200_000L > 0
  then flush ch

let transpose (g : Graph.t) =
  let pairs = Array.make g.Graph.m (0, 0) in
  let idx = ref 0 in
  for v = 0 to g.Graph.n - 1 do
    for e = g.Graph.offsets.(v) to g.Graph.offsets.(v + 1) - 1 do
      pairs.(!idx) <- (g.Graph.edges.(e), v);
      incr idx
    done
  done;
  Graph.of_edge_array ~n:g.Graph.n pairs

let cycles_per_edge = 40L
let cycles_per_vertex = 80L

let run ~eng ~(graph : Graph.t) ~surface ~threads ?(iterations = 10)
    ?(damping = 0.85) () =
  if threads <= 0 then invalid_arg "Pagerank.run: threads";
  let n = graph.Graph.n in
  let gin = transpose graph in
  let start_time = Sim.Engine.now eng in
  let ranks_sum = ref 0. and top_vertex = ref 0 in
  ignore
    (Sim.Engine.spawn eng ~name:"pr-driver" ~core:0 (fun () ->
         let b0 = Sim.Costbuf.create () in
         let in_offs =
           Mem_surface.alloc surface ~len:(n + 1) ~init:(fun i -> gin.Graph.offsets.(i))
         in
         let in_edgs =
           Mem_surface.alloc surface ~len:(max 1 gin.Graph.m) ~init:(fun i ->
               if gin.Graph.m = 0 then 0 else gin.Graph.edges.(i))
         in
         let out_deg =
           Mem_surface.alloc surface ~len:n ~init:(fun v -> Graph.out_degree graph v)
         in
         let rank =
           Mem_surface.alloc surface ~len:n ~init:(fun _ -> 1.0 /. float_of_int n)
         in
         let next = Mem_surface.alloc surface ~len:n ~init:(fun _ -> 0.0) in
         Sim.Costbuf.charge b0;
         for _iter = 1 to iterations do
           (* contribution of dangling vertices is spread uniformly *)
           let dones = Array.init threads (fun _ -> Sim.Sync.Ivar.create ()) in
           let dangling = Array.make threads 0.0 in
           for w = 0 to threads - 1 do
             ignore
               (Sim.Engine.spawn eng ~name:(Printf.sprintf "pr-w%d" w)
                  ~core:(w mod 32) (fun () ->
                    let ch = { buf = Sim.Costbuf.create (); compute = 0L } in
                    let lo = w * n / threads and hi = ((w + 1) * n / threads) - 1 in
                    let d = ref 0.0 in
                    for v = lo to hi do
                      ch.compute <- Int64.add ch.compute cycles_per_vertex;
                      if Mem_surface.get out_deg ~buf:ch.buf v = 0 then
                        d := !d +. Mem_surface.get rank ~buf:ch.buf v;
                      (* pull from in-neighbours *)
                      let o0 = Mem_surface.get in_offs ~buf:ch.buf v in
                      let o1 = Mem_surface.get in_offs ~buf:ch.buf (v + 1) in
                      let acc = ref 0.0 in
                      for e = o0 to o1 - 1 do
                        ch.compute <- Int64.add ch.compute cycles_per_edge;
                        let u = Mem_surface.get in_edgs ~buf:ch.buf e in
                        let du = Mem_surface.get out_deg ~buf:ch.buf u in
                        if du > 0 then
                          acc :=
                            !acc
                            +. (Mem_surface.get rank ~buf:ch.buf u /. float_of_int du);
                        maybe_flush ch
                      done;
                      Mem_surface.set next ~buf:ch.buf v !acc
                    done;
                    dangling.(w) <- !d;
                    flush ch;
                    Sim.Sync.Ivar.fill dones.(w) ()))
           done;
           Array.iter Sim.Sync.Ivar.read dones;
           let dang = Array.fold_left ( +. ) 0.0 dangling in
           let base = (1.0 -. damping +. (damping *. dang)) /. float_of_int n in
           (* apply damping and swap *)
           let dones2 = Array.init threads (fun _ -> Sim.Sync.Ivar.create ()) in
           for w = 0 to threads - 1 do
             ignore
               (Sim.Engine.spawn eng ~core:(w mod 32) (fun () ->
                    let ch = { buf = Sim.Costbuf.create (); compute = 0L } in
                    let lo = w * n / threads and hi = ((w + 1) * n / threads) - 1 in
                    for v = lo to hi do
                      ch.compute <- Int64.add ch.compute cycles_per_vertex;
                      let r = base +. (damping *. Mem_surface.get next ~buf:ch.buf v) in
                      Mem_surface.set rank ~buf:ch.buf v r;
                      Mem_surface.set next ~buf:ch.buf v 0.0;
                      maybe_flush ch
                    done;
                    flush ch;
                    Sim.Sync.Ivar.fill dones2.(w) ()))
           done;
           Array.iter Sim.Sync.Ivar.read dones2
         done;
         (* summarize *)
         let b = Sim.Costbuf.create () in
         let sum = ref 0.0 and best = ref 0 and bestr = ref neg_infinity in
         for v = 0 to n - 1 do
           let r = Mem_surface.get rank ~buf:b v in
           sum := !sum +. r;
           if r > !bestr then begin
             bestr := r;
             best := v
           end
         done;
         Sim.Costbuf.charge b;
         ranks_sum := !sum;
         top_vertex := !best;
         List.iter Mem_surface.free [ rank; next ];
         List.iter Mem_surface.free [ in_offs; in_edgs; out_deg ]));
  Sim.Engine.run eng;
  {
    iterations;
    ranks_sum = !ranks_sum;
    top_vertex = !top_vertex;
    elapsed_cycles = Int64.sub (Sim.Engine.now eng) start_time;
  }
