(** Ligra-style connected components by label propagation.

    Treats the graph as undirected (propagates along both edge
    directions), iterating until no label changes — the classic Ligra
    benchmark alongside BFS and PageRank.  All state lives on a
    {!Mem_surface.t}. *)

type result = {
  rounds : int;
  components : int;  (** number of distinct labels at convergence *)
  largest : int;  (** size of the largest component *)
  elapsed_cycles : int64;
}

val run :
  eng:Sim.Engine.t ->
  graph:Graph.t ->
  surface:Mem_surface.t ->
  threads:int ->
  unit ->
  result
(** [run ~eng ~graph ~surface ~threads ()] runs to convergence.  Spawns
    fibers and drains the engine. *)
