let psz = Hw.Defs.page_size

type backend =
  | Dram
  | Aquila of Aquila.Context.t * Aquila.Context.region
  | Linux of Linux_sim.Mmap_sys.t * Linux_sim.Mmap_sys.region

type t = {
  backend : backend;
  mutable next_byte : int;
  limit_bytes : int;
  eb : int;
}

let dram () = { backend = Dram; next_byte = 0; limit_bytes = max_int; eb = 8 }

let aquila ?(elem_bytes = 8) ctx region =
  {
    backend = Aquila (ctx, region);
    next_byte = 0;
    limit_bytes = Aquila.Context.region_npages region * psz;
    eb = elem_bytes;
  }

let linux ?(elem_bytes = 8) msys region =
  {
    backend = Linux (msys, region);
    next_byte = 0;
    limit_bytes = Linux_sim.Mmap_sys.region_npages region * psz;
    eb = elem_bytes;
  }

let elem_bytes t = t.eb

let name t =
  match t.backend with
  | Dram -> "dram"
  | Aquila _ -> "aquila"
  | Linux _ -> "linux-mmap"

type 'a arr = {
  surf : t;
  page0 : int;  (* first region page; -1 for DRAM *)
  alen : int;
  mutable data : 'a array;
}

let alloc t ~len ~init =
  let bytes = len * t.eb in
  let page0 =
    match t.backend with
    | Dram -> -1
    | Aquila _ | Linux _ ->
        (* page-align each array, as malloc-over-mmap does for large blocks *)
        let start = (t.next_byte + psz - 1) / psz * psz in
        if start + bytes > t.limit_bytes then
          failwith "Mem_surface: mmio heap exhausted";
        t.next_byte <- start + bytes;
        start / psz
  in
  { surf = t; page0; alen = len; data = Array.init len init }

let page_of a i = a.page0 + (i * a.surf.eb / psz)

let touch a ~buf i ~write =
  match a.surf.backend with
  | Dram -> ()
  | Aquila (ctx, region) ->
      Aquila.Context.touch_buf ctx region ~page:(page_of a i) ~write ~buf
  | Linux (msys, region) ->
      Linux_sim.Mmap_sys.touch_buf msys region ~page:(page_of a i) ~write ~buf

let get a ~buf i =
  touch a ~buf i ~write:false;
  a.data.(i)

let set a ~buf i v =
  touch a ~buf i ~write:true;
  a.data.(i) <- v

let len a = a.alen
let free a = a.data <- [||]
