let generate ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) ~seed ~n ~m () =
  if n <= 0 || m < 0 then invalid_arg "Rmat.generate";
  if a +. b +. c >= 1.0 then invalid_arg "Rmat.generate: a+b+c must be < 1";
  let rng = Sim.Rng.create seed in
  let levels =
    let rec go l = if 1 lsl l >= n then l else go (l + 1) in
    go 0
  in
  let gen_edge () =
    let s = ref 0 and d = ref 0 in
    for _ = 1 to levels do
      let x = Sim.Rng.float rng in
      (* noise to avoid exact self-similarity, as in the reference code *)
      let quadrant =
        if x < a then `TL else if x < a +. b then `TR else if x < a +. b +. c then `BL else `BR
      in
      s := !s lsl 1;
      d := !d lsl 1;
      (match quadrant with
      | `TL -> ()
      | `TR -> d := !d lor 1
      | `BL -> s := !s lor 1
      | `BR ->
          s := !s lor 1;
          d := !d lor 1)
    done;
    (!s mod n, !d mod n)
  in
  let arr = Array.init m (fun _ -> gen_edge ()) in
  Graph.of_edge_array ~n arr
