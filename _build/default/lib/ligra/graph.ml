type t = { n : int; m : int; offsets : int array; edges : int array }

let of_edge_array ~n arr =
  let m = Array.length arr in
  let deg = Array.make n 0 in
  Array.iter
    (fun (s, _) ->
      if s < 0 || s >= n then invalid_arg "Graph: vertex out of range";
      deg.(s) <- deg.(s) + 1)
    arr;
  let offsets = Array.make (n + 1) 0 in
  for v = 1 to n do
    offsets.(v) <- offsets.(v - 1) + deg.(v - 1)
  done;
  let cursor = Array.copy offsets in
  let edges = Array.make m 0 in
  Array.iter
    (fun (s, d) ->
      if d < 0 || d >= n then invalid_arg "Graph: vertex out of range";
      edges.(cursor.(s)) <- d;
      cursor.(s) <- cursor.(s) + 1)
    arr;
  { n; m; offsets; edges }

let of_edge_list ~n l = of_edge_array ~n (Array.of_list l)

let out_degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_neighbors t v f =
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.edges.(i)
  done

let bytes t = 8 * (t.n + 1 + t.m)
