(** Heap surface: where Ligra's arrays live.

    The paper's Ligra experiment converts every [malloc]/[free] into an
    allocation over a memory-mapped file on fast storage (Section 6.2).
    A surface is either plain DRAM (the in-memory baseline — data-plane
    accesses cost nothing beyond the algorithm's own compute) or an mmio
    region (Aquila or Linux mmap), where each page-granular access runs
    through the full mmio machinery.

    The arrays themselves hold {e real values} in OCaml memory; the
    surface charges the memory-system cost of each access at page
    granularity via an external {!Sim.Costbuf.t}, so tight loops charge
    in batches (see {!Aquila.Context.touch_buf}). *)

type t

val dram : unit -> t
(** The malloc/free baseline. *)

val aquila : ?elem_bytes:int -> Aquila.Context.t -> Aquila.Context.region -> t
(** A bump allocator over an Aquila mmio region.  [elem_bytes] (default 8)
    is the on-surface footprint of one element: scaled-down graphs pack
    unrealistically many vertices per 4 KiB page, so experiments inflate
    the footprint to preserve the paper's elements-per-page ratio
    (DESIGN.md §2). *)

val linux : ?elem_bytes:int -> Linux_sim.Mmap_sys.t -> Linux_sim.Mmap_sys.region -> t
(** A bump allocator over a Linux [mmap] region. *)

val name : t -> string

type 'a arr
(** An allocated array of elements (8 bytes each on the surface). *)

val alloc : t -> len:int -> init:(int -> 'a) -> 'a arr
(** [alloc t ~len ~init] carves [len * elem_bytes] bytes from the surface.
    Raises [Failure] when an mmio surface is exhausted. *)

val elem_bytes : t -> int

val get : 'a arr -> buf:Sim.Costbuf.t -> int -> 'a
(** [get a ~buf i] reads element [i], touching its page (read). *)

val set : 'a arr -> buf:Sim.Costbuf.t -> int -> 'a -> unit
(** [set a ~buf i v] writes element [i], touching its page (write —
    dirty-tracked on mmio surfaces). *)

val len : 'a arr -> int

val free : 'a arr -> unit
(** Releases the OCaml backing store (the surface range is not reused —
    Ligra's allocation pattern is phase-based). *)
