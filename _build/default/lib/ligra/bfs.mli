(** Ligra-style direction-optimizing parallel BFS.

    Frontier-based breadth-first search with the sparse (top-down) /
    dense (bottom-up) switch of Shun & Blelloch's edgeMap, parallelized
    over simulated threads with per-round barriers — the workload of the
    paper's Section 6.2.  All arrays (CSR out- and in-edges, parents,
    frontiers) live on a {!Mem_surface.t}, so the same code runs
    in-memory, over Linux [mmap], or over Aquila. *)

type result = {
  rounds : int;
  visited : int;
  elapsed_cycles : int64;
  thread_ctxs : Sim.Engine.ctx list;
      (** worker contexts, for user/system/idle breakdowns (Figure 6(c)) *)
}

val run :
  eng:Sim.Engine.t ->
  graph:Graph.t ->
  surface:Mem_surface.t ->
  threads:int ->
  source:int ->
  ?cycles_per_edge:int64 ->
  ?cycles_per_vertex:int64 ->
  unit ->
  result
(** [run ~eng ~graph ~surface ~threads ~source ()] executes BFS to
    completion (spawns fibers and drains the engine).  [cycles_per_edge]
    (default 60) and [cycles_per_vertex] (default 120) model Ligra's
    algorithmic compute, charged as user time in batches. *)
