lib/ligra/pagerank.mli: Graph Mem_surface Sim
