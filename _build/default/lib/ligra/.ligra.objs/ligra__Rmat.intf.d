lib/ligra/rmat.mli: Graph
