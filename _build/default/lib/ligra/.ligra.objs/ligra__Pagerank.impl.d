lib/ligra/pagerank.ml: Array Graph Int64 List Mem_surface Printf Sim
