lib/ligra/graph.ml: Array
