lib/ligra/rmat.ml: Array Graph Sim
