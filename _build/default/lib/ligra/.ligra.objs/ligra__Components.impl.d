lib/ligra/components.ml: Array Graph Hashtbl Int64 List Mem_surface Option Printf Sim
