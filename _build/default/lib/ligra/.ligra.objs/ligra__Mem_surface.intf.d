lib/ligra/mem_surface.mli: Aquila Linux_sim Sim
