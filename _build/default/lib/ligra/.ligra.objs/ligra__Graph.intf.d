lib/ligra/graph.mli:
