lib/ligra/bfs.mli: Graph Mem_surface Sim
