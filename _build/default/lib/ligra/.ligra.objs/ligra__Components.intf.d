lib/ligra/components.mli: Graph Mem_surface Sim
