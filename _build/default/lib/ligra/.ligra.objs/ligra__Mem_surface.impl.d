lib/ligra/mem_surface.ml: Aquila Array Hw Linux_sim
