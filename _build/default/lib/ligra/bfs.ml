type result = {
  rounds : int;
  visited : int;
  elapsed_cycles : int64;
  thread_ctxs : Sim.Engine.ctx list;
}

(* Charge helper: batch user compute and flush the mmio cost buffer when
   it grows, so millions of accesses stay cheap in events. *)
type charger = { buf : Sim.Costbuf.t; mutable compute : int64 }

let flush_charger ch =
  if Int64.compare ch.compute 0L > 0 then begin
    Sim.Engine.delay ~cat:Sim.Engine.User ~label:"ligra_compute" ch.compute;
    ch.compute <- 0L
  end;
  Sim.Costbuf.charge ch.buf

let maybe_flush ch =
  if
    Int64.compare (Int64.add ch.compute (Sim.Costbuf.total ch.buf)) 200_000L > 0
  then flush_charger ch

let transpose (g : Graph.t) =
  let pairs = Array.make g.Graph.m (0, 0) in
  let idx = ref 0 in
  for v = 0 to g.Graph.n - 1 do
    for e = g.Graph.offsets.(v) to g.Graph.offsets.(v + 1) - 1 do
      pairs.(!idx) <- (g.Graph.edges.(e), v);
      incr idx
    done
  done;
  Graph.of_edge_array ~n:g.Graph.n pairs

let run ~eng ~(graph : Graph.t) ~surface ~threads ~source ?(cycles_per_edge = 60L)
    ?(cycles_per_vertex = 120L) () =
  if source < 0 || source >= graph.Graph.n then invalid_arg "Bfs.run: source";
  if threads <= 0 then invalid_arg "Bfs.run: threads";
  let n = graph.Graph.n and m = graph.Graph.m in
  let gin = transpose graph in
  let start_time = Sim.Engine.now eng in
  let ctxs = ref [] in
  let rounds = ref 0 in
  let visited = ref 1 in
  let main_ctx =
    Sim.Engine.spawn eng ~name:"bfs-driver" ~core:0 (fun () ->
        let buf0 = Sim.Costbuf.create () in
        (* Surface-resident arrays: out CSR, in CSR, parents, dense bits. *)
        let offs = Mem_surface.alloc surface ~len:(n + 1) ~init:(fun i -> graph.Graph.offsets.(i)) in
        let edgs = Mem_surface.alloc surface ~len:(max 1 m) ~init:(fun i -> if m = 0 then 0 else graph.Graph.edges.(i)) in
        let in_offs = Mem_surface.alloc surface ~len:(n + 1) ~init:(fun i -> gin.Graph.offsets.(i)) in
        let in_edgs = Mem_surface.alloc surface ~len:(max 1 m) ~init:(fun i -> if m = 0 then 0 else gin.Graph.edges.(i)) in
        let parent = Mem_surface.alloc surface ~len:n ~init:(fun _ -> -1) in
        let cur_dense = Mem_surface.alloc surface ~len:n ~init:(fun _ -> false) in
        let next_dense = Mem_surface.alloc surface ~len:n ~init:(fun _ -> false) in
        Mem_surface.set parent ~buf:buf0 source source;
        Sim.Costbuf.charge buf0;
        let frontier = ref [| source |] in
        let frontier_is_dense = ref false in
        let continue_ = ref true in
        while !continue_ do
          incr rounds;
          (* decide direction: Ligra's |F| + outdeg(F) > m/20 heuristic *)
          let fsize, fdeg =
            if !frontier_is_dense then
              (* approximate via visited count *)
              (!visited, m / 10)
            else
              Array.fold_left
                (fun (c, d) u -> (c + 1, d + Graph.out_degree graph u))
                (0, 0) !frontier
          in
          let dense = fsize + fdeg > max 1 (m / 20) in
          let nworkers = threads in
          let results : int list array = Array.make nworkers [] in
          let dones = Array.init nworkers (fun _ -> Sim.Sync.Ivar.create ()) in
          let densify () =
            if not !frontier_is_dense then begin
              let b = Sim.Costbuf.create () in
              for v = 0 to n - 1 do
                if Mem_surface.get cur_dense ~buf:b v then
                  Mem_surface.set cur_dense ~buf:b v false
              done;
              Array.iter (fun u -> Mem_surface.set cur_dense ~buf:b u true) !frontier;
              Sim.Costbuf.charge b
            end
          in
          if dense then densify ();
          for w = 0 to nworkers - 1 do
            let wctx =
              Sim.Engine.spawn eng ~name:(Printf.sprintf "bfs-w%d" w) ~core:(w mod 32)
                 (fun () ->
                   let ch = { buf = Sim.Costbuf.create (); compute = 0L } in
                   let next = ref [] in
                   if dense then begin
                     (* bottom-up: each worker owns a vertex range *)
                     let lo = w * n / nworkers and hi = ((w + 1) * n / nworkers) - 1 in
                     for v = lo to hi do
                       ch.compute <- Int64.add ch.compute cycles_per_vertex;
                       if Mem_surface.get parent ~buf:ch.buf v = -1 then begin
                         let o0 = Mem_surface.get in_offs ~buf:ch.buf v in
                         let o1 = Mem_surface.get in_offs ~buf:ch.buf (v + 1) in
                         let found = ref false in
                         let e = ref o0 in
                         while (not !found) && !e < o1 do
                           ch.compute <- Int64.add ch.compute cycles_per_edge;
                           let u = Mem_surface.get in_edgs ~buf:ch.buf !e in
                           if Mem_surface.get cur_dense ~buf:ch.buf u then begin
                             Mem_surface.set parent ~buf:ch.buf v u;
                             Mem_surface.set next_dense ~buf:ch.buf v true;
                             next := v :: !next;
                             found := true
                           end;
                           incr e;
                           maybe_flush ch
                         done
                       end
                     done
                   end
                   else begin
                     (* top-down: split the sparse frontier *)
                     let f = !frontier in
                     let len = Array.length f in
                     let lo = w * len / nworkers and hi = ((w + 1) * len / nworkers) - 1 in
                     for i = lo to hi do
                       let u = f.(i) in
                       ch.compute <- Int64.add ch.compute cycles_per_vertex;
                       let o0 = Mem_surface.get offs ~buf:ch.buf u in
                       let o1 = Mem_surface.get offs ~buf:ch.buf (u + 1) in
                       for e = o0 to o1 - 1 do
                         ch.compute <- Int64.add ch.compute cycles_per_edge;
                         let v = Mem_surface.get edgs ~buf:ch.buf e in
                         if Mem_surface.get parent ~buf:ch.buf v = -1 then begin
                           (* CAS wins: sim fibers only switch at suspension
                              points, so this read-modify-write is atomic *)
                           Mem_surface.set parent ~buf:ch.buf v u;
                           next := v :: !next
                         end;
                         maybe_flush ch
                       done
                     done
                   end;
                   flush_charger ch;
                   results.(w) <- !next;
                   Sim.Sync.Ivar.fill dones.(w) ())
            in
            ctxs := wctx :: !ctxs
          done;
          Array.iter Sim.Sync.Ivar.read dones;
          let next_frontier = Array.concat (List.map Array.of_list (Array.to_list results)) in
          visited := !visited + Array.length next_frontier;
          (* swap dense bitmaps for the next round *)
          if dense then begin
            let b = Sim.Costbuf.create () in
            for v = 0 to n - 1 do
              let nv = Mem_surface.get next_dense ~buf:b v in
              Mem_surface.set cur_dense ~buf:b v nv;
              if nv then Mem_surface.set next_dense ~buf:b v false
            done;
            Sim.Costbuf.charge b;
            frontier_is_dense := true
          end
          else frontier_is_dense := false;
          frontier := next_frontier;
          if Array.length next_frontier = 0 then continue_ := false
        done;
        List.iter Mem_surface.free
          [ offs; edgs; in_offs; in_edgs ];
        Mem_surface.free parent;
        Mem_surface.free cur_dense;
        Mem_surface.free next_dense)
  in
  Sim.Engine.run eng;
  ignore main_ctx;
  {
    rounds = !rounds;
    visited = !visited;
    elapsed_cycles = Int64.sub (Sim.Engine.now eng) start_time;
    thread_ctxs = main_ctx :: !ctxs;
  }
