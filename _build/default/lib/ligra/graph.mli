(** Directed graph in compressed sparse row (CSR) form — Ligra's in-memory
    representation. *)

type t = {
  n : int;  (** vertices *)
  m : int;  (** directed edges *)
  offsets : int array;  (** length n+1; edges of v are [offsets.(v) .. offsets.(v+1)) *)
  edges : int array;  (** length m; target vertices *)
}

val of_edge_list : n:int -> (int * int) list -> t
(** [of_edge_list ~n edges] builds the CSR (duplicates kept, as R-MAT
    produces them; self-loops kept). *)

val of_edge_array : n:int -> (int * int) array -> t

val out_degree : t -> int -> int
val iter_neighbors : t -> int -> (int -> unit) -> unit
val bytes : t -> int
(** Approximate in-memory footprint (8 bytes per offset/edge), used to
    size mmio heaps. *)
