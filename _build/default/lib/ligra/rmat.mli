(** R-MAT recursive-matrix graph generator (Chakrabarti et al. [10]).

    The paper's Ligra evaluation uses an R-MAT graph of 100 M vertices
    with 10× directed edges; we generate the same shape scaled down
    (DESIGN.md §2).  Deterministic for a given seed. *)

val generate : ?a:float -> ?b:float -> ?c:float -> seed:int -> n:int -> m:int -> unit -> Graph.t
(** [generate ~seed ~n ~m ()] produces a graph with [n] vertices (rounded up
    to a power of two internally, then mapped back) and [m] directed
    edges.  Defaults a=0.57, b=0.19, c=0.19 (d = 1-a-b-c = 0.05). *)
