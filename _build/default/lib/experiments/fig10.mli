(** Figure 10: scalability of Aquila vs Linux mmap under the random-read
    microbenchmark, 1-32 threads, shared file vs file per thread, with the
    dataset fitting in memory (a) or 12.5x larger (b). *)

val run_a : unit -> unit
val run_b : unit -> unit
