(** Table 1: the standard YCSB workload definitions. *)

val run : unit -> unit
