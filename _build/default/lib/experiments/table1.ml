(* Table 1: the standard YCSB workloads. *)

let run () =
  Stats.Table_fmt.print_table ~title:"Table 1: Standard YCSB Workloads"
    ~header:[ "workload"; "mix"; "distribution" ]
    (List.map
       (fun (w : Ycsb.Workload.t) ->
         let mix =
           String.concat ", "
             (List.filter_map
                (fun (p, name) ->
                  if p > 0. then Some (Printf.sprintf "%.0f%% %s" (100. *. p) name)
                  else None)
                [
                  (w.Ycsb.Workload.read, "reads");
                  (w.Ycsb.Workload.update, "updates");
                  (w.Ycsb.Workload.insert, "inserts");
                  (w.Ycsb.Workload.scan, "scans");
                  (w.Ycsb.Workload.rmw, "read-modify-write");
                ])
         in
         let dist =
           match w.Ycsb.Workload.dist with
           | Ycsb.Workload.Uniform -> "uniform"
           | Ycsb.Workload.Zipf -> "zipfian"
           | Ycsb.Workload.Latest -> "latest"
         in
         [ w.Ycsb.Workload.name; mix; dist ])
       Ycsb.Workload.all)
