(** Figure 8: page-fault overhead breakdowns.

    (a) dataset fits in memory (pure fault cost, Linux vs Aquila);
    (b) evictions in the common path;
    (c) device-access methods inside Aquila (Cache-Hit, DAX-pmem,
    HOST-pmem, SPDK-NVMe, HOST-NVMe). *)

val run_a : unit -> unit
val run_b : unit -> unit
val run_c : unit -> unit
