(** Figure 5: RocksDB YCSB-C throughput — explicit read/write + user-space
    cache vs Linux [mmap] vs Aquila, on NVMe and pmem, for a dataset that
    fits in the cache (a) and one 4x larger (b). *)

type syskind = Rw | Mmap | Aquila_s

val sys_label : syskind -> string

type meas = {
  thr : float;  (** ops/s at the simulated clock *)
  avg_lat : float;  (** mean op latency in cycles *)
  p999 : float;  (** 99.9th percentile latency in cycles *)
  ctxs : Sim.Engine.ctx list;  (** per-thread accounting (Figure 7) *)
  ops : int;
}

val run_a : unit -> unit
(** Print the Figure 5(a) panel (in-memory dataset). *)

val run_b : unit -> unit
(** Print the Figure 5(b) panel (4x dataset). *)

val run_for_breakdown : sys:syskind -> threads:int -> meas
(** One out-of-memory pmem run, used by Figure 7's cycle breakdown. *)
