(** Figure 7: RocksDB cycles-per-operation breakdown for reads — device
    I/O vs cache management vs store-side get compute, comparing the
    user-space-cache configuration with Aquila mmio. *)

val run : unit -> unit
