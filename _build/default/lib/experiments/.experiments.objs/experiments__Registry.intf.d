lib/experiments/registry.mli:
