lib/experiments/microbench.mli: Scenario Sim Stats
