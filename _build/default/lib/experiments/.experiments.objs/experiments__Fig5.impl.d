lib/experiments/fig5.ml: Hw Int64 Kvstore List Printf Scenario Sim Stats Ycsb
