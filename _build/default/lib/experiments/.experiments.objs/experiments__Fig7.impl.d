lib/experiments/fig7.ml: Fig5 List Printf Stats
