lib/experiments/fig8.ml: Aquila Blobstore Hw Int64 List Microbench Printf Scenario Sdevice Sim Stats
