lib/experiments/scenario.ml: Aquila Blobstore Fun Hw Int64 Kvstore Linux_sim Mcache Sdevice Uspace Ycsb
