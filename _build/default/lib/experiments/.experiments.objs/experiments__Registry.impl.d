lib/experiments/registry.ml: Fig10 Fig5 Fig6 Fig7 Fig8 Fig9 List Printf Scenario Table1
