lib/experiments/fig10.ml: Int64 List Microbench Printf Scenario Sim Stats
