lib/experiments/scenario.mli: Aquila Blobstore Hw Kvstore Linux_sim Mcache Sdevice Uspace Ycsb
