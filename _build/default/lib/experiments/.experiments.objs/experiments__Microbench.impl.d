lib/experiments/microbench.ml: Aquila Array Blobstore Int64 Linux_sim List Mcache Option Printf Scenario Sim Stats
