lib/experiments/fig9.ml: Aquila Hw Int64 Kvstore List Option Printf Scenario Sim Stats Ycsb
