lib/experiments/table1.ml: List Printf Stats String Ycsb
