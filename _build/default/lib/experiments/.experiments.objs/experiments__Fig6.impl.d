lib/experiments/fig6.ml: Aquila Blobstore Int64 Lazy Ligra Linux_sim List Option Printf Scenario Sim Stats
