(** Figure 9: Kreon over its in-kernel [kmmap] path vs Kreon over Aquila,
    all YCSB workloads, single thread, dataset twice the cache size, on
    NVMe and pmem. *)

val run : unit -> unit
