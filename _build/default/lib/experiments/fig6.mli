(** Figure 6: Ligra BFS with the application heap extended over fast
    storage — Linux mmap vs Aquila (pmem and NVMe) vs DRAM-only, plus the
    user/system/idle time breakdown. *)

val run_a : unit -> unit
(** Execution times with the small (heap/8) cache. *)

val run_b : unit -> unit
(** Execution times with the large (heap/4) cache. *)

val run_c : unit -> unit
(** User/system/idle breakdown at 16 threads. *)
