(** File→blob translation layer.

    Aquila intercepts [open]/[mmap] in non-root ring 0 and transparently
    maps file paths onto Blobstore blobs (Section 3.3), giving unmodified
    applications a flat-namespace file abstraction over SPDK. *)

type t

val create : Store.t -> t

val open_file : t -> string -> size_pages:int -> Store.blob
(** [open_file t path ~size_pages] returns the blob backing [path],
    creating it (with room for [size_pages]) on first open.  An existing
    blob is grown if smaller than [size_pages]. *)

val lookup : t -> string -> Store.blob option

val unlink : t -> string -> bool
(** [unlink t path] deletes the file and its blob.  Returns whether the
    path existed. *)

val files : t -> string list
