(** BlobFS-style buffered filesystem over the blobstore ([59], Section 3.3).

    SPDK ships two file abstractions: the raw Blobstore (direct, unbuffered
    — what Aquila uses) and BlobFS, which buffers file data in its own
    user-space cache.  The paper points out that BlobFS-style designs pay
    the user-space cache's lookup cost on every access — the overhead mmio
    eliminates.  This module provides that buffered alternative so
    experiments can compare all three access stacks over the same device.

    Reads and writes are byte-granular; writes are buffered (dirty blocks)
    and reach the device on {!fsync} or block eviction. *)

type t
type file

val create :
  store:Store.t ->
  access:Sdevice.Access.t ->
  cache_pages:int ->
  ?lookup_cost:int64 ->
  unit ->
  t
(** [create ~store ~access ~cache_pages ()] builds a BlobFS instance whose
    cache holds [cache_pages] blocks.  [lookup_cost] (default 1200 cycles)
    is the per-access cache software cost. *)

val open_file : t -> name:string -> size_pages:int -> file
(** Create-or-open, backed by a blob. *)

val read : file -> off:int -> len:int -> dst:Bytes.t -> unit
(** Buffered read; fiber-only. *)

val write : file -> off:int -> src:Bytes.t -> unit
(** Buffered write: dirties cached blocks; no device I/O until sync or
    eviction. *)

val fsync : file -> unit
(** Write the file's dirty blocks to the device. *)

val cache_hits : t -> int
val cache_misses : t -> int
val dirty_blocks : t -> int
