type t = { bs : Store.t; names : (string, int) Hashtbl.t }

let create bs = { bs; names = Hashtbl.create 64 }

let lookup t path =
  match Hashtbl.find_opt t.names path with
  | None -> None
  | Some id -> Some (Store.open_blob t.bs id)

let open_file t path ~size_pages =
  match lookup t path with
  | Some b ->
      if Store.blob_pages b < size_pages then
        Store.resize t.bs b ~pages:size_pages;
      b
  | None ->
      let b = Store.create_blob t.bs ~name:path ~pages:size_pages () in
      Hashtbl.replace t.names path (Store.blob_id b);
      b

let unlink t path =
  match lookup t path with
  | None -> false
  | Some b ->
      Store.delete t.bs b;
      Hashtbl.remove t.names path;
      true

let files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.names []
