lib/blobstore/blobfs.ml: Array Bytes Dstruct Hashtbl Hw Queue Sdevice Sim Store
