lib/blobstore/blobfs.mli: Bytes Sdevice Store
