lib/blobstore/file_ns.mli: Store
