lib/blobstore/store.ml: Array Hashtbl List
