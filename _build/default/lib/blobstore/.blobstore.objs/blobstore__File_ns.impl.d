lib/blobstore/file_ns.ml: Hashtbl Store
