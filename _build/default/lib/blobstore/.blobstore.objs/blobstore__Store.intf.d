lib/blobstore/store.mli:
