type blob = {
  id : int;
  bname : string option;
  bcl_pages : int; (* pages per cluster, copied from the store *)
  mutable clusters : int array; (* cluster indices, in blob order *)
  mutable pages : int;
  xattrs : (string, string) Hashtbl.t;
}

type t = {
  cl_pages : int;
  total_clusters : int;
  mutable free : int list; (* free cluster indices *)
  mutable nfree : int;
  blobs : (int, blob) Hashtbl.t;
  mutable next_id : int;
}

let create ~capacity_pages ?(cluster_pages = 256) () =
  if capacity_pages <= 0 || cluster_pages <= 0 then
    invalid_arg "Blobstore.create";
  let total = capacity_pages / cluster_pages in
  let free = List.init total (fun i -> i) in
  {
    cl_pages = cluster_pages;
    total_clusters = total;
    free;
    nfree = total;
    blobs = Hashtbl.create 64;
    next_id = 1;
  }

let cluster_pages t = t.cl_pages
let capacity_pages t = t.total_clusters * t.cl_pages
let free_pages t = t.nfree * t.cl_pages

let clusters_for t pages = (pages + t.cl_pages - 1) / t.cl_pages

let take_clusters t n =
  if n > t.nfree then failwith "Blobstore: out of space";
  let rec go acc n free =
    if n = 0 then (acc, free)
    else
      match free with
      | [] -> failwith "Blobstore: out of space"
      | c :: rest -> go (c :: acc) (n - 1) rest
  in
  let taken, rest = go [] n t.free in
  t.free <- rest;
  t.nfree <- t.nfree - n;
  Array.of_list (List.rev taken)

let create_blob t ?name ~pages () =
  let ncl = clusters_for t pages in
  let clusters = take_clusters t ncl in
  let b =
    {
      id = t.next_id;
      bname = name;
      bcl_pages = t.cl_pages;
      clusters;
      pages;
      xattrs = Hashtbl.create 4;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.blobs b.id b;
  b

let open_blob t id =
  match Hashtbl.find_opt t.blobs id with
  | Some b -> b
  | None -> raise Not_found

let blob_id b = b.id
let blob_name b = b.bname
let blob_pages b = b.pages

let resize t b ~pages =
  let have = Array.length b.clusters in
  let need = clusters_for t pages in
  if need > have then begin
    let extra = take_clusters t (need - have) in
    b.clusters <- Array.append b.clusters extra
  end
  else if need < have then begin
    for i = need to have - 1 do
      t.free <- b.clusters.(i) :: t.free;
      t.nfree <- t.nfree + 1
    done;
    b.clusters <- Array.sub b.clusters 0 need
  end;
  b.pages <- pages

let delete t b =
  Array.iter
    (fun c ->
      t.free <- c :: t.free;
      t.nfree <- t.nfree + 1)
    b.clusters;
  b.clusters <- [||];
  b.pages <- 0;
  Hashtbl.remove t.blobs b.id

let set_xattr b k v = Hashtbl.replace b.xattrs k v
let get_xattr b k = Hashtbl.find_opt b.xattrs k

let device_page b p =
  if p < 0 || p >= b.pages then invalid_arg "Blobstore.device_page: out of range";
  let cl = p / b.bcl_pages and off = p mod b.bcl_pages in
  (b.clusters.(cl) * b.bcl_pages) + off

let contiguous_run b p =
  if p < 0 || p >= b.pages then invalid_arg "Blobstore.contiguous_run: out of range";
  let rec go q run =
    if q >= b.pages then run
    else if q mod b.bcl_pages <> 0 then go (q + 1) (run + 1)
    else
      (* crossing into cluster q/bcl_pages: contiguous only if adjacent *)
      let prev_cl = b.clusters.((q - 1) / b.bcl_pages) in
      let this_cl = b.clusters.(q / b.bcl_pages) in
      if this_cl = prev_cl + 1 then go (q + 1) (run + 1) else run
  in
  go (p + 1) 1
let blob_count t = Hashtbl.length t.blobs
