let psz = Hw.Defs.page_size

type slot = {
  data : Bytes.t;
  mutable owner : int; (* packed (file_idx, page); -1 free *)
  mutable dirty : bool;
}

type t = {
  store : Store.t;
  access : Sdevice.Access.t;
  slots : slot array;
  index : (int, int) Hashtbl.t; (* owner key -> slot *)
  lru : Dstruct.Clock_lru.t;
  free : int Queue.t;
  lookup_cost : int64;
  names : (string, int) Hashtbl.t; (* name -> file idx *)
  mutable files : fileimpl array;
  mutable s_hits : int;
  mutable s_misses : int;
}

and fileimpl = { fidx : int; blob : Store.blob; fs : t }

type file = fileimpl

let create ~store ~access ~cache_pages ?(lookup_cost = 1200L) () =
  if cache_pages <= 0 then invalid_arg "Blobfs.create";
  let free = Queue.create () in
  for i = 0 to cache_pages - 1 do
    Queue.add i free
  done;
  {
    store;
    access;
    slots =
      Array.init cache_pages (fun _ ->
          { data = Bytes.create psz; owner = -1; dirty = false });
    index = Hashtbl.create (2 * cache_pages);
    lru = Dstruct.Clock_lru.create ~nframes:cache_pages;
    free;
    lookup_cost;
    names = Hashtbl.create 16;
    files = [||];
    s_hits = 0;
    s_misses = 0;
  }

let open_file t ~name ~size_pages =
  match Hashtbl.find_opt t.names name with
  | Some idx -> t.files.(idx)
  | None ->
      let blob = Store.create_blob t.store ~name ~pages:size_pages () in
      let f = { fidx = Array.length t.files; blob; fs = t } in
      t.files <- Array.append t.files [| f |];
      Hashtbl.replace t.names name f.fidx;
      f

let owner_key f page = (f.fidx * (1 lsl 40)) + page

let charge t = Sim.Engine.delay ~cat:Sim.Engine.User ~label:"blobfs" t.lookup_cost

let write_slot_back t slot_idx =
  let s = t.slots.(slot_idx) in
  if s.dirty && s.owner >= 0 then begin
    let fidx = s.owner / (1 lsl 40) and page = s.owner mod (1 lsl 40) in
    let f = t.files.(fidx) in
    Sdevice.Access.write_page t.access ~page:(Store.device_page f.blob page)
      ~src:s.data;
    s.dirty <- false
  end

(* Get the cache slot holding [page] of [f], filling on a miss (and
   writing back a dirty victim first). *)
let get_slot f page =
  let t = f.fs in
  let key = owner_key f page in
  charge t;
  match Hashtbl.find_opt t.index key with
  | Some slot ->
      t.s_hits <- t.s_hits + 1;
      Dstruct.Clock_lru.touch t.lru slot;
      slot
  | None ->
      t.s_misses <- t.s_misses + 1;
      let slot =
        match Queue.take_opt t.free with
        | Some s -> s
        | None -> (
            match Dstruct.Clock_lru.evict_candidates t.lru 1 with
            | [ v ] ->
                write_slot_back t v;
                Hashtbl.remove t.index t.slots.(v).owner;
                t.slots.(v).owner <- -1;
                v
            | _ -> failwith "Blobfs: cache exhausted")
      in
      let s = t.slots.(slot) in
      Sdevice.Access.read_page t.access ~page:(Store.device_page f.blob page)
        ~dst:s.data;
      s.owner <- key;
      s.dirty <- false;
      Hashtbl.replace t.index key slot;
      Dstruct.Clock_lru.set_active t.lru slot true;
      Dstruct.Clock_lru.touch t.lru slot;
      slot

let check f ~off ~len =
  if off < 0 || len < 0 || off + len > Store.blob_pages f.blob * psz then
    invalid_arg "Blobfs: range outside file"

let read f ~off ~len ~dst =
  check f ~off ~len;
  if Bytes.length dst < len then invalid_arg "Blobfs.read: dst too small";
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let page = abs / psz and in_page = abs mod psz in
    let chunk = min (len - !pos) (psz - in_page) in
    let slot = get_slot f page in
    Bytes.blit f.fs.slots.(slot).data in_page dst !pos chunk;
    pos := !pos + chunk
  done

let write f ~off ~src =
  let len = Bytes.length src in
  check f ~off ~len;
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let page = abs / psz and in_page = abs mod psz in
    let chunk = min (len - !pos) (psz - in_page) in
    let slot = get_slot f page in
    let s = f.fs.slots.(slot) in
    Bytes.blit src !pos s.data in_page chunk;
    s.dirty <- true;
    pos := !pos + chunk
  done

let fsync f =
  let t = f.fs in
  Array.iteri
    (fun i s ->
      if s.dirty && s.owner >= 0 && s.owner / (1 lsl 40) = f.fidx then
        write_slot_back t i)
    t.slots

let cache_hits t = t.s_hits
let cache_misses t = t.s_misses

let dirty_blocks t =
  Array.fold_left (fun acc s -> if s.dirty then acc + 1 else acc) 0 t.slots
