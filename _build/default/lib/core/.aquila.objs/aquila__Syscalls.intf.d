lib/core/syscalls.mli: Hw
