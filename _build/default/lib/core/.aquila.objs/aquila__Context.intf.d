lib/core/context.mli: Bytes Hw Mcache Sdevice Sim Syscalls Vma
