lib/core/vma.ml: Dstruct Hw Int64
