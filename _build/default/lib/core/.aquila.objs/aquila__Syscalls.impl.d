lib/core/syscalls.ml: Hashtbl Hw Sim
