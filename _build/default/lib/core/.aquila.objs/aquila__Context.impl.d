lib/core/context.ml: Bytes Hw Int64 List Mcache Sim Syscalls Vma
