lib/core/vma.mli: Hw
