(** The Aquila library OS: application-facing API.

    An application uses Aquila exactly as the paper describes
    (Section 4): create a context once in [main], call {!enter_thread}
    from each thread, then use {!mmap}-style regions for all storage I/O.
    Common-path operations — page faults, cache replacement, device
    access — run in non-root ring 0 at exception cost; uncommon
    operations — cache resizing, host-bound syscalls — pay vmcalls.

    All data-plane functions ({!read}, {!write}, {!touch}) must run inside
    a {!Sim.Engine} fiber; they move {e real bytes} and charge mmio costs:
    a hit costs only the (usually zero) TLB work, a miss runs the full
    fault path. *)

type config = {
  cache : Mcache.Dram_cache.config;
  ept_granularity : int64;  (** huge-mapping size for GPA→HPA (Section 3.5) *)
  readahead_normal : int;  (** window under [MADV_NORMAL] *)
  readahead_sequential : int;  (** window under [MADV_SEQUENTIAL] *)
  domain : Hw.Domain_x.t;
      (** where faults are taken: [Nonroot_ring0] is Aquila; [Ring3] turns
          the same machinery into an in-kernel custom mmio path (Kreon's
          [kmmap] baseline) with ring 3 trap costs *)
}

val default_config : cache_frames:int -> config
(** Defaults: Aquila cache defaults, 2 MiB EPT mappings (scaled from the
    paper's 1 GiB — see DESIGN.md §2), no readahead for normal areas, a
    32-page window for sequential ones. *)

type t
type file
type region

val create : ?costs:Hw.Costs.t -> ?machine:Hw.Machine.t -> config -> t
(** [create config] initializes the Aquila context (the call the paper
    adds to the application's [main]). *)

val costs : t -> Hw.Costs.t
val machine : t -> Hw.Machine.t
val cache : t -> Mcache.Dram_cache.t
val syscalls : t -> Syscalls.t

val enter_thread : t -> unit
(** [enter_thread t] switches the calling fiber into Aquila mode (the
    per-thread call the paper adds), registering its core as a TLB
    shootdown target.  Charges the vmlaunch transition. *)

val attach_file :
  t ->
  name:string ->
  access:Sdevice.Access.t ->
  translate:(int -> int option) ->
  size_pages:int ->
  file
(** [attach_file t ~name ~access ~translate ~size_pages] registers a
    file/device so regions can map it.  [translate] maps file pages to
    device pages (e.g. through a {!Blobstore.Store} blob). *)

val file_size_pages : file -> int
val file_id : file -> int

val mmap : t -> file -> ?file_page0:int -> npages:int -> unit -> region
(** [mmap t f ~npages ()] maps [npages] pages of [f] starting at file page
    [file_page0] (default 0).  Intercepted in non-root ring 0: costs a
    function call plus the VMA update — no vmcall. *)

val munmap : t -> region -> unit
(** [munmap t r] removes the mapping (pages may stay cached), tearing down
    PTEs with one batched shootdown. *)

val madvise : t -> region -> Vma.advice -> unit

val mprotect : t -> region -> writable:bool -> unit
(** [mprotect t r ~writable:false] write-protects every mapped page of the
    region (one batched shootdown); [~writable:true] restores write
    permission lazily — the next store takes a dirty-tracking fault.
    Intercepted in non-root ring 0, like the other VM calls. *)

val mremap : t -> region -> npages:int -> region
(** [mremap t r ~npages] grows (or shrinks) the mapping.  Growing remaps
    at a fresh virtual range without copying — cached pages are found
    again through the (file, page) index, so only PTE re-faults are
    paid.  The old region must no longer be used. *)

val msync : t -> region -> unit
(** [msync t r] persists the region's dirty pages (ascending offset,
    merged I/Os) and write-protects them for further dirty tracking. *)

val region_npages : region -> int

val touch : t -> region -> page:int -> write:bool -> unit
(** [touch t r ~page ~write] performs one load (or store) to the region's
    [page]-th page: free on a mapped hit, full fault path on a miss. *)

val touch_buf : t -> region -> page:int -> write:bool -> buf:Sim.Costbuf.t -> unit
(** Like {!touch}, but accumulates the (tiny) hit-path costs into [buf]
    instead of charging immediately — for data-plane loops that perform
    millions of accesses and charge in batches.  Fault costs are still
    charged inline. *)

val read : t -> region -> off:int -> len:int -> dst:Bytes.t -> unit
(** [read t r ~off ~len ~dst] copies region bytes [\[off, off+len)] into
    [dst] (starting at 0), faulting pages in as needed.  Only mmio costs
    are charged — the caller models its own compute on the data. *)

val write : t -> region -> off:int -> src:Bytes.t -> unit
(** [write t r ~off ~src] stores all of [src] at region offset [off],
    write-faulting pages (dirty tracking) as needed. *)

val resize_cache : t -> frames:int -> unit
(** [resize_cache t ~frames] grows or shrinks the DRAM cache to [frames]
    through the hypervisor (vmcall + EPT updates, Section 3.5). *)

(** {1 Statistics} *)

val accesses : t -> int
(** Page-granular data-plane accesses (hits + faults). *)

val faults : t -> int
val ept_faults : t -> int
