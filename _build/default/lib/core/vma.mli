(** Virtual memory area management over a radix tree (Section 3.4).

    Aquila replaces Linux's [mmap_sem]-protected red-black VMA tree with a
    radix tree, like RadixVM [13], so address-range lookups on the fault
    path never contend on a process-wide lock.  Lookups return their cycle
    cost for the caller to charge; updates are uncommon-path operations. *)

type advice = Normal | Random | Sequential | Willneed | Dontneed
(** [madvise] hints attached to an area. *)

type area = {
  vstart : int;  (** first virtual page of the area *)
  npages : int;
  file_id : int;
  file_page0 : int;  (** file page mapped at [vstart] *)
  mutable advice : advice;
}

type t

val create : Hw.Costs.t -> t

val insert : t -> area -> int64
(** [insert t a] registers the area and returns the update cost.  Raises
    [Invalid_argument] if [a] overlaps an existing area. *)

val remove : t -> vstart:int -> area option * int64
(** [remove t ~vstart] unregisters the area starting at [vstart]. *)

val lookup : t -> vpn:int -> area option * int64
(** [lookup t ~vpn] finds the area containing virtual page [vpn] — the
    validity check every page fault performs — and its lookup cost. *)

val count : t -> int
val iter : (area -> unit) -> t -> unit
