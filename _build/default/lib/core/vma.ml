type advice = Normal | Random | Sequential | Willneed | Dontneed

type area = {
  vstart : int;
  npages : int;
  file_id : int;
  file_page0 : int;
  mutable advice : advice;
}

type t = { costs : Hw.Costs.t; tree : area Dstruct.Radix_tree.t }

let create costs = { costs; tree = Dstruct.Radix_tree.create () }

let lookup_cost t =
  Int64.mul t.costs.Hw.Costs.radix_lookup
    (Int64.of_int (Dstruct.Radix_tree.depth t.tree))

let overlaps a b =
  a.vstart < b.vstart + b.npages && b.vstart < a.vstart + a.npages

let insert t a =
  if a.npages <= 0 || a.vstart < 0 then invalid_arg "Vma.insert: bad area";
  (* check the neighbours on both sides *)
  (match Dstruct.Radix_tree.find_floor t.tree (a.vstart + a.npages - 1) with
  | Some (_, prev) when overlaps a prev -> invalid_arg "Vma.insert: overlap"
  | _ -> ());
  ignore (Dstruct.Radix_tree.insert t.tree a.vstart a);
  t.costs.Hw.Costs.radix_update

let remove t ~vstart =
  let old = Dstruct.Radix_tree.remove t.tree vstart in
  (old, t.costs.Hw.Costs.radix_update)

let lookup t ~vpn =
  let cost = lookup_cost t in
  match Dstruct.Radix_tree.find_floor t.tree vpn with
  | Some (_, a) when vpn < a.vstart + a.npages -> (Some a, cost)
  | _ -> (None, cost)

let count t = Dstruct.Radix_tree.length t.tree
let iter f t = Dstruct.Radix_tree.iter (fun _ a -> f a) t.tree
