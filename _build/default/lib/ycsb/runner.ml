type kv = {
  kv_read : string -> string option;
  kv_update : string -> string -> unit;
  kv_insert : string -> string -> unit;
  kv_scan : start:string -> n:int -> (string * string) list;
  kv_rmw : string -> (string -> string) -> unit;
}

let key_of i = Printf.sprintf "user%016d" i

let value_of rng n =
  String.init n (fun _ -> Char.chr (32 + Sim.Rng.int rng 95))

type result = {
  ops : int;
  elapsed_cycles : int64;
  throughput_ops_s : float;
  latency : Stats.Histogram.t;
  thread_ctxs : Sim.Engine.ctx list;
}

type shared = { mutable record_count : int }

let pick_op rng (w : Workload.t) =
  let x = Sim.Rng.float rng in
  if x < w.Workload.read then `Read
  else if x < w.Workload.read +. w.Workload.update then `Update
  else if x < w.Workload.read +. w.Workload.update +. w.Workload.insert then `Insert
  else if x < w.Workload.read +. w.Workload.update +. w.Workload.insert +. w.Workload.scan
  then `Scan
  else `Rmw

let run ~eng ~threads ~ops_per_thread ~workload ~record_count ~value_bytes
    ?spread_cores ~kv () =
  if threads <= 0 || ops_per_thread < 0 then invalid_arg "Runner.run";
  let ncores = match spread_cores with Some n -> n | None -> min threads 32 in
  let shared = { record_count } in
  let hist = Stats.Histogram.create () in
  let ctxs = ref [] in
  let start = Sim.Engine.now eng in
  for i = 0 to threads - 1 do
    let rng = Sim.Rng.create ((i * 7919) + 17) in
    let dist =
      match workload.Workload.dist with
      | Workload.Uniform -> Zipfian.uniform rng ~items:record_count
      | Workload.Zipf -> Zipfian.zipfian rng ~items:record_count
      | Workload.Latest -> Zipfian.latest rng ~items:record_count
    in
    let ctx =
      Sim.Engine.spawn eng ~name:(Printf.sprintf "ycsb-%d" i)
        ~core:(i mod ncores) (fun () ->
          for _ = 1 to ops_per_thread do
            Zipfian.set_items dist shared.record_count;
            let t0 = Sim.Engine.now_f () in
            (match pick_op rng workload with
            | `Read -> ignore (kv.kv_read (key_of (Zipfian.next dist)))
            | `Update -> kv.kv_update (key_of (Zipfian.next dist)) (value_of rng value_bytes)
            | `Insert ->
                let id = shared.record_count in
                shared.record_count <- shared.record_count + 1;
                kv.kv_insert (key_of id) (value_of rng value_bytes)
            | `Scan ->
                let len = 1 + Sim.Rng.int rng workload.Workload.max_scan_len in
                ignore (kv.kv_scan ~start:(key_of (Zipfian.next dist)) ~n:len)
            | `Rmw ->
                kv.kv_rmw (key_of (Zipfian.next dist)) (fun old ->
                    if String.length old = 0 then value_of rng value_bytes
                    else String.sub old 0 (String.length old)));
            let t1 = Sim.Engine.now_f () in
            Stats.Histogram.record hist (Int64.sub t1 t0)
          done)
    in
    ctxs := ctx :: !ctxs
  done;
  Sim.Engine.run eng;
  let elapsed = Int64.sub (Sim.Engine.now eng) start in
  let ops = threads * ops_per_thread in
  let secs = Int64.to_float elapsed /. 2.4e9 in
  {
    ops;
    elapsed_cycles = elapsed;
    throughput_ops_s = (if secs > 0. then float_of_int ops /. secs else 0.);
    latency = hist;
    thread_ctxs = !ctxs;
  }

let load ~eng ~record_count ~value_bytes ~insert ?(finish = fun () -> ()) () =
  let rng = Sim.Rng.create 4242 in
  ignore
    (Sim.Engine.spawn eng ~name:"ycsb-load" ~core:0 (fun () ->
         for i = 0 to record_count - 1 do
           insert (key_of i) (value_of rng value_bytes)
         done;
         finish ()));
  Sim.Engine.run eng
