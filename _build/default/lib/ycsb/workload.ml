type distribution = Uniform | Zipf | Latest

type t = {
  name : string;
  read : float;
  update : float;
  insert : float;
  scan : float;
  rmw : float;
  dist : distribution;
  max_scan_len : int;
}

let mk name ?(read = 0.) ?(update = 0.) ?(insert = 0.) ?(scan = 0.) ?(rmw = 0.)
    ?(dist = Zipf) () =
  let sum = read +. update +. insert +. scan +. rmw in
  assert (abs_float (sum -. 1.0) < 1e-9);
  { name; read; update; insert; scan; rmw; dist; max_scan_len = 100 }

let a = mk "A" ~read:0.5 ~update:0.5 ()
let b = mk "B" ~read:0.95 ~update:0.05 ()
let c = mk "C" ~read:1.0 ()
let d = mk "D" ~read:0.95 ~insert:0.05 ~dist:Latest ()
let e = mk "E" ~scan:0.95 ~insert:0.05 ()
let f = mk "F" ~read:0.5 ~rmw:0.5 ()
let all = [ a; b; c; d; e; f ]
let c_uniform = { (mk "C-uniform" ~read:1.0 ~dist:Uniform ()) with name = "C" }

let by_name s =
  match String.lowercase_ascii s with
  | "a" -> Some a
  | "b" -> Some b
  | "c" -> Some c
  | "d" -> Some d
  | "e" -> Some e
  | "f" -> Some f
  | _ -> None

let pp fmt t =
  Format.fprintf fmt "%s (r=%.2f u=%.2f i=%.2f s=%.2f rmw=%.2f)" t.name t.read
    t.update t.insert t.scan t.rmw
