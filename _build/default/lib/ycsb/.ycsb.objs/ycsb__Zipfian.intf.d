lib/ycsb/zipfian.mli: Sim
