lib/ycsb/zipfian.ml: Float Sim
