lib/ycsb/workload.ml: Format String
