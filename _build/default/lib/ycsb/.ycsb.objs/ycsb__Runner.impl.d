lib/ycsb/runner.ml: Char Int64 Printf Sim Stats String Workload Zipfian
