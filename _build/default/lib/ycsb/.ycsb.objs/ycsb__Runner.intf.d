lib/ycsb/runner.mli: Sim Stats Workload
