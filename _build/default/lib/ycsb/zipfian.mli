(** YCSB request-distribution generators.

    Implements the standard YCSB generators: uniform, zipfian with the
    Gray et al. rejection-free method (θ = 0.99) including the scrambled
    variant that spreads hot keys across the keyspace, and "latest"
    (zipfian over recency) for workload D. *)

type t

val uniform : Sim.Rng.t -> items:int -> t
val zipfian : Sim.Rng.t -> items:int -> t
(** Scrambled zipfian over [items] keys, θ = 0.99. *)

val latest : Sim.Rng.t -> items:int -> t
(** Skewed towards recently inserted items; see {!set_items}. *)

val next : t -> int
(** [next t] draws a key index in [\[0, items)]. *)

val set_items : t -> int -> unit
(** [set_items t n] grows the keyspace (after inserts).  For [latest],
    new items become the hottest. *)

val items : t -> int
