let theta = 0.99

type kind = Uniform | Zipf of zstate | Latest of zstate

and zstate = {
  mutable zn : int; (* item count the constants were computed for *)
  mutable zetan : float;
  mutable alpha : float;
  mutable eta : float;
  zeta2 : float;
  scramble : bool;
}

type t = { rng : Sim.Rng.t; mutable n : int; kind : kind }

let zeta n =
  let s = ref 0. in
  for i = 1 to n do
    s := !s +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !s

let make_zstate n scramble =
  let zetan = zeta n in
  let zeta2 = zeta 2 in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
    /. (1. -. (zeta2 /. zetan))
  in
  { zn = n; zetan; alpha; eta; zeta2; scramble }

(* Incremental zeta update when the item count grows. *)
let grow_zstate z n =
  if n > z.zn then begin
    let s = ref z.zetan in
    for i = z.zn + 1 to n do
      s := !s +. (1. /. Float.pow (float_of_int i) theta)
    done;
    z.zetan <- !s;
    z.zn <- n;
    z.eta <-
      (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
      /. (1. -. (z.zeta2 /. z.zetan))
  end

let uniform rng ~items =
  if items <= 0 then invalid_arg "Zipfian.uniform";
  { rng; n = items; kind = Uniform }

let zipfian rng ~items =
  if items <= 0 then invalid_arg "Zipfian.zipfian";
  { rng; n = items; kind = Zipf (make_zstate items true) }

let latest rng ~items =
  if items <= 0 then invalid_arg "Zipfian.latest";
  { rng; n = items; kind = Latest (make_zstate items false) }

let fnv_scramble x n =
  let h = ref 0xcbf29ce4 in
  let x = ref x in
  for _ = 1 to 8 do
    h := (!h lxor (!x land 0xff)) * 0x01000193 land max_int;
    x := !x lsr 8
  done;
  !h mod n

let draw_zipf t z =
  grow_zstate z t.n;
  let u = Sim.Rng.float t.rng in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 theta then 1
  else
    int_of_float
      (float_of_int t.n *. Float.pow ((z.eta *. u) -. z.eta +. 1.) z.alpha)
    |> min (t.n - 1)

let next t =
  match t.kind with
  | Uniform -> Sim.Rng.int t.rng t.n
  | Zipf z ->
      let r = draw_zipf t z in
      if z.scramble then fnv_scramble r t.n else r
  | Latest z ->
      let r = draw_zipf t z in
      (* hottest = most recent *)
      max 0 (t.n - 1 - r)

let set_items t n = if n > t.n then t.n <- n
let items t = t.n
