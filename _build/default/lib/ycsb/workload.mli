(** YCSB workload definitions (Table 1 of the paper).

    | A | 50 % reads, 50 % updates            |
    | B | 95 % reads,  5 % updates            |
    | C | 100 % reads                         |
    | D | 95 % reads,  5 % inserts (latest)   |
    | E | 95 % scans,  5 % inserts            |
    | F | 50 % reads, 50 % read-modify-write  | *)

type distribution = Uniform | Zipf | Latest

type t = {
  name : string;
  read : float;
  update : float;
  insert : float;
  scan : float;
  rmw : float;
  dist : distribution;
  max_scan_len : int;
}

val a : t
val b : t
val c : t
val d : t
val e : t
val f : t
val all : t list

val c_uniform : t
(** Workload C with the uniform distribution, as used for the RocksDB
    experiments in Section 6.1. *)

val by_name : string -> t option
val pp : Format.formatter -> t -> unit
