(** Multi-threaded YCSB benchmark runner.

    Drives any key-value store implementing {!kv} with a {!Workload.t}
    over a given number of simulated threads, recording per-operation
    latencies and end-to-end throughput in virtual time — the measurement
    loop every KV experiment in the paper uses (C++ YCSB [56]). *)

type kv = {
  kv_read : string -> string option;
  kv_update : string -> string -> unit;
  kv_insert : string -> string -> unit;
  kv_scan : start:string -> n:int -> (string * string) list;
  kv_rmw : string -> (string -> string) -> unit;
}
(** Store operations.  Implementations must be callable from any fiber. *)

val key_of : int -> string
(** [key_of i] is the YCSB key for index [i] ("user" + zero-padded id,
    ~24 bytes, close to the paper's 30 B keys). *)

val value_of : Sim.Rng.t -> int -> string
(** [value_of rng n] is an [n]-byte pseudo-random value. *)

type result = {
  ops : int;
  elapsed_cycles : int64;
  throughput_ops_s : float;  (** at the simulated 2.4 GHz clock *)
  latency : Stats.Histogram.t;  (** per-op latency in cycles *)
  thread_ctxs : Sim.Engine.ctx list;  (** for cycle-breakdown reporting *)
}

val run :
  eng:Sim.Engine.t ->
  threads:int ->
  ops_per_thread:int ->
  workload:Workload.t ->
  record_count:int ->
  value_bytes:int ->
  ?spread_cores:int ->
  kv:kv ->
  unit ->
  result
(** [run ~eng ...] spawns [threads] fibers pinned to distinct cores
    ([spread_cores] defaults to the thread count, capped at 32), executes
    the workload mix, runs the engine to completion and returns the
    measurements.  The store must already be loaded with [record_count]
    records keyed [key_of 0 .. key_of (record_count-1)]. *)

val load :
  eng:Sim.Engine.t ->
  record_count:int ->
  value_bytes:int ->
  insert:(string -> string -> unit) ->
  ?finish:(unit -> unit) ->
  unit ->
  unit
(** [load ~eng ~record_count ~value_bytes ~insert ()] runs the YCSB load
    phase in a fiber: inserts all records in key order, then calls
    [finish] (e.g. flush/spill), then drains the engine. *)
