(** Real byte-addressed backing store for simulated devices.

    Pages are allocated lazily and unwritten bytes read as zero, so a
    device the size of the paper's 375 GB SSD costs memory only for pages
    actually touched.  Stores hold {e real data}: the key-value stores and
    graph runs built on top are functionally correct, not just cost
    models. *)

type t

val create : unit -> t

val read_bytes : t -> addr:int64 -> len:int -> dst:Bytes.t -> dst_off:int -> unit
(** [read_bytes t ~addr ~len ~dst ~dst_off] copies [len] bytes starting at
    device byte [addr] into [dst], crossing page boundaries as needed. *)

val write_bytes : t -> addr:int64 -> src:Bytes.t -> src_off:int -> len:int -> unit

val read_page : t -> page:int -> dst:Bytes.t -> unit
(** [read_page t ~page ~dst] copies one full page; [dst] must hold at least
    {!Hw.Defs.page_size} bytes. *)

val write_page : t -> page:int -> src:Bytes.t -> unit

val allocated_pages : t -> int
(** Number of pages that have been materialized. *)
