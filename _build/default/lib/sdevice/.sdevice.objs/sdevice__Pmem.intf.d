lib/sdevice/pmem.mli: Block_dev Bytes Hw Pagestore
