lib/sdevice/pmem.ml: Block_dev Hw Int64 Pagestore
