lib/sdevice/nvme.ml: Block_dev Int64
