lib/sdevice/nvme.mli: Block_dev
