lib/sdevice/access.mli: Block_dev Bytes Hw Pmem
