lib/sdevice/pagestore.ml: Bytes Hashtbl Hw Int64
