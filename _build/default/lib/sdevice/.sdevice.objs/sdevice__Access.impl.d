lib/sdevice/access.ml: Block_dev Bytes Hw Int64 Pmem Sim
