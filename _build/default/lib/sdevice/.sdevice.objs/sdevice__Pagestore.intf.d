lib/sdevice/pagestore.mli: Bytes
