lib/sdevice/block_dev.mli: Bytes Pagestore
