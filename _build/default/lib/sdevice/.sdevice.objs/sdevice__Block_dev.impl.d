lib/sdevice/block_dev.ml: Int64 Pagestore Sim
