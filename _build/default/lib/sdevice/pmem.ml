type t = {
  pname : string;
  block : Block_dev.t;
  mutable dreads : int;
  mutable dwrites : int;
}

let default_capacity = Int64.mul 192L 1048576L (* scaled: 192 "GB" -> 192 MiB *)

(* NVM media is ~3x slower than DRAM for loads (Izraelevitz et al. [31]);
   we derate the DRAM memcpy cost accordingly for the read direction. *)
let nvm_read_factor = 1.25
let nvm_write_factor = 1.15

let create ?(name = "pmem0") ?(capacity_bytes = default_capacity) () =
  {
    pname = name;
    block =
      Block_dev.create ~name:(name ^ "-blk") ~channels:16 ~setup_cycles:600L
        ~cycles_per_byte:0.3 ~capacity_bytes ();
    dreads = 0;
    dwrites = 0;
  }

let name t = t.pname
let store t = Block_dev.store t.block
let capacity_bytes t = Block_dev.capacity_bytes t.block
let block_dev t = t.block

let derate factor cycles = Int64.of_float (Int64.to_float cycles *. factor)

let dax_read t costs ~simd ~addr ~len ~dst ~dst_off =
  Pagestore.read_bytes (store t) ~addr ~len ~dst ~dst_off;
  t.dreads <- t.dreads + 1;
  derate nvm_read_factor (Hw.Costs.memcpy_bytes costs ~simd len)

let dax_write t costs ~simd ~addr ~src ~src_off ~len =
  Pagestore.write_bytes (store t) ~addr ~src ~src_off ~len;
  t.dwrites <- t.dwrites + 1;
  derate nvm_write_factor (Hw.Costs.memcpy_bytes costs ~simd len)

let dax_reads t = t.dreads
let dax_writes t = t.dwrites
