(** Byte-addressable non-volatile memory (pmem).

    Two access styles, as in Section 3.3 of the paper:

    - {b DAX}: the device is mapped into the address space and accessed by
      CPU loads/stores — a read is a [memcpy] whose cycle cost depends on
      whether AVX2 streaming copies are used (Aquila) or not (the kernel).
      DAX accesses are synchronous CPU work: no queueing, no idle time.
    - {b block}: the same media exposed as a Linux [pmem] block device,
      paying the block-layer software path on every request.  Used to
      emulate "a fast NVM block device backed by DRAM" exactly as the
      paper's methodology does. *)

type t

val create : ?name:string -> ?capacity_bytes:int64 -> unit -> t

val name : t -> string
val store : t -> Pagestore.t
val capacity_bytes : t -> int64

val block_dev : t -> Block_dev.t
(** The same media viewed as a [pmem] block device (16 channels, 600-cycle
    setup, 0.24 cycles/byte — ~10 GB/s class). *)

val dax_read :
  t -> Hw.Costs.t -> simd:bool -> addr:int64 -> len:int -> dst:Bytes.t -> dst_off:int -> int64
(** [dax_read t c ~simd ~addr ~len ~dst ~dst_off] copies data out of NVM
    with CPU loads and returns the cycles to charge (the caller charges
    them, typically inside a fault handler).  NVM reads are slower than
    DRAM: the copy cost is derated by the media factor. *)

val dax_write :
  t -> Hw.Costs.t -> simd:bool -> addr:int64 -> src:Bytes.t -> src_off:int -> len:int -> int64

val dax_reads : t -> int
val dax_writes : t -> int
