let psz = Hw.Defs.page_size

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 1024 }

let get_page t p =
  match Hashtbl.find_opt t.pages p with
  | Some b -> b
  | None ->
      let b = Bytes.make psz '\000' in
      Hashtbl.replace t.pages p b;
      b

let read_bytes t ~addr ~len ~dst ~dst_off =
  if len < 0 || dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Pagestore.read_bytes";
  let rec go addr remaining dpos =
    if remaining > 0 then begin
      let page = Int64.to_int (Int64.div addr (Int64.of_int psz)) in
      let off = Int64.to_int (Int64.rem addr (Int64.of_int psz)) in
      let chunk = min remaining (psz - off) in
      (match Hashtbl.find_opt t.pages page with
      | Some b -> Bytes.blit b off dst dpos chunk
      | None -> Bytes.fill dst dpos chunk '\000');
      go (Int64.add addr (Int64.of_int chunk)) (remaining - chunk) (dpos + chunk)
    end
  in
  go addr len dst_off

let write_bytes t ~addr ~src ~src_off ~len =
  if len < 0 || src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Pagestore.write_bytes";
  let rec go addr remaining spos =
    if remaining > 0 then begin
      let page = Int64.to_int (Int64.div addr (Int64.of_int psz)) in
      let off = Int64.to_int (Int64.rem addr (Int64.of_int psz)) in
      let chunk = min remaining (psz - off) in
      let b = get_page t page in
      Bytes.blit src spos b off chunk;
      go (Int64.add addr (Int64.of_int chunk)) (remaining - chunk) (spos + chunk)
    end
  in
  go addr len src_off

let read_page t ~page ~dst =
  if Bytes.length dst < psz then invalid_arg "Pagestore.read_page: dst too small";
  match Hashtbl.find_opt t.pages page with
  | Some b -> Bytes.blit b 0 dst 0 psz
  | None -> Bytes.fill dst 0 psz '\000'

let write_page t ~page ~src =
  if Bytes.length src < psz then invalid_arg "Pagestore.write_page: src too small";
  let b = get_page t page in
  Bytes.blit src 0 b 0 psz

let allocated_pages t = Hashtbl.length t.pages
