(** Radix tree over non-negative integer keys.

    Models the structure RadixVM [13] and Aquila (Section 3.4) use for
    virtual-address-range metadata, and the structure the Linux page cache
    uses to index cached pages.  Six bits per level; the height grows on
    demand.  Lookups are lock-free in Aquila's design, so the tree itself
    carries no lock — callers add one where the modelled system has one
    (e.g. Linux's [tree_lock]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val insert : 'a t -> int -> 'a -> 'a option
(** [insert t k v] binds [k]; returns a previous binding if replaced. *)

val remove : 'a t -> int -> 'a option

val find_floor : 'a t -> int -> (int * 'a) option
(** [find_floor t k] is the binding with the greatest key ≤ [k] — the
    lookup a VMA index needs to map an address to its containing range. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Ascending-key traversal. *)

val fold : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc

val depth : 'a t -> int
(** Current height in levels (≥ 1); proportional to descend cost. *)
