let bits = 6
let fanout = 1 lsl bits
let mask = fanout - 1

type 'a node = Leaf of 'a | Inner of 'a node option array

type 'a t = {
  mutable root : 'a node option;
  mutable height : int; (* levels below the root: key space is fanout^height *)
  mutable count : int;
}

let create () = { root = None; height = 1; count = 0 }
let length t = t.count

let capacity_bits height = bits * height

let fits t k = k lsr capacity_bits t.height = 0

let rec find_at node shift k =
  match node with
  | Leaf v -> if shift < 0 then Some v else None
  | Inner slots ->
      if shift < 0 then None
      else
        let idx = (k lsr shift) land mask in
        (match slots.(idx) with
        | None -> None
        | Some child -> find_at child (shift - bits) k)

let find t k =
  if k < 0 then invalid_arg "Radix_tree: negative key";
  match t.root with
  | None -> None
  | Some root -> if not (fits t k) then None else find_at root (capacity_bits t.height - bits) k

let mem t k = find t k <> None

let grow t =
  match t.root with
  | None -> t.height <- t.height + 1
  | Some root ->
      let slots = Array.make fanout None in
      slots.(0) <- Some root;
      t.root <- Some (Inner slots);
      t.height <- t.height + 1

let rec insert_at node shift k v =
  match node with
  | Leaf _ when shift < 0 ->
      (* replace *)
      (Leaf v, match node with Leaf old -> Some old | Inner _ -> None)
  | Leaf _ -> invalid_arg "Radix_tree: corrupt (leaf at inner level)"
  | Inner slots ->
      let idx = (k lsr shift) land mask in
      if shift = 0 then begin
        let old = match slots.(idx) with Some (Leaf o) -> Some o | _ -> None in
        slots.(idx) <- Some (Leaf v);
        (node, old)
      end
      else begin
        let child =
          match slots.(idx) with
          | Some c -> c
          | None ->
              let c = Inner (Array.make fanout None) in
              slots.(idx) <- Some c;
              c
        in
        let child', old = insert_at child (shift - bits) k v in
        slots.(idx) <- Some child';
        (node, old)
      end

let insert t k v =
  if k < 0 then invalid_arg "Radix_tree: negative key";
  while not (fits t k) do
    grow t
  done;
  let root =
    match t.root with
    | Some r -> r
    | None ->
        let r = Inner (Array.make fanout None) in
        t.root <- Some r;
        r
  in
  let shift = capacity_bits t.height - bits in
  let root', old = insert_at root shift k v in
  t.root <- Some root';
  if old = None then t.count <- t.count + 1;
  old

let rec remove_at node shift k =
  match node with
  | Leaf _ -> None
  | Inner slots ->
      let idx = (k lsr shift) land mask in
      if shift = 0 then (
        match slots.(idx) with
        | Some (Leaf v) ->
            slots.(idx) <- None;
            Some v
        | _ -> None)
      else (
        match slots.(idx) with
        | None -> None
        | Some child -> remove_at child (shift - bits) k)

let remove t k =
  if k < 0 then invalid_arg "Radix_tree: negative key";
  match t.root with
  | None -> None
  | Some root ->
      if not (fits t k) then None
      else
        let old = remove_at root (capacity_bits t.height - bits) k in
        if old <> None then t.count <- t.count - 1;
        old

(* Greatest key ≤ k within [node]; [prefix] is the key bits above this
   subtree. *)
let rec floor_at node shift prefix k =
  match node with
  | Leaf v -> Some (prefix, v)
  | Inner slots ->
      let high = min mask ((k lsr shift) land mask) in
      let limit_idx = (k lsr shift) land mask in
      let rec scan idx =
        if idx < 0 then None
        else
          match slots.(idx) with
          | None -> scan (idx - 1)
          | Some child ->
              let child_prefix = prefix lor (idx lsl shift) in
              (* Only the subtree at [limit_idx] is constrained by k's low
                 bits; lower subtrees may take their maximum. *)
              let bound = if idx = limit_idx then k else max_int in
              (match floor_at child (shift - bits) child_prefix bound with
              | Some r -> Some r
              | None -> scan (idx - 1))
      in
      scan high

let find_floor t k =
  if k < 0 then invalid_arg "Radix_tree: negative key";
  match t.root with
  | None -> None
  | Some root ->
      let k = if fits t k then k else (1 lsl capacity_bits t.height) - 1 in
      floor_at root (capacity_bits t.height - bits) 0 k

let iter f t =
  let rec go node shift prefix =
    match node with
    | Leaf v -> f prefix v
    | Inner slots ->
        for idx = 0 to fanout - 1 do
          match slots.(idx) with
          | None -> ()
          | Some child -> go child (shift - bits) (prefix lor (idx lsl shift))
        done
  in
  match t.root with
  | None -> ()
  | Some root -> go root (capacity_bits t.height - bits) 0

let fold f t acc =
  let acc = ref acc in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let depth t = t.height
