lib/dstruct/lockfree_hash.mli:
