lib/dstruct/radix_tree.mli:
