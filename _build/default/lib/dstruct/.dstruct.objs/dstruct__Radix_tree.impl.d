lib/dstruct/radix_tree.ml: Array
