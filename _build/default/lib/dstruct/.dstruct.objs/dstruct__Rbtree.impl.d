lib/dstruct/rbtree.ml: List
