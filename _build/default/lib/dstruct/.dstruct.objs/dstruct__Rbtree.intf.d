lib/dstruct/rbtree.mli:
