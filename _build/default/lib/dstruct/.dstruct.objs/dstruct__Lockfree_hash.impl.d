lib/dstruct/lockfree_hash.ml: Hashtbl
