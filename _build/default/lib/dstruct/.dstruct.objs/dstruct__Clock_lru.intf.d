lib/dstruct/clock_lru.mli:
