lib/dstruct/clock_lru.ml: Bytes List
