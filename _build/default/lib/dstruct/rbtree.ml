module Make (Ord : sig
  type t

  val compare : t -> t -> int
end) =
struct
  type key = Ord.t
  type color = Red | Black

  (* CLRS-style node with parent pointers and a shared nil sentinel.  The
     sentinel's fields are self-referential and its color is Black. *)
  type 'a node = {
    mutable key : key;
    mutable value : 'a;
    mutable color : color;
    mutable left : 'a node;
    mutable right : 'a node;
    mutable parent : 'a node;
    nil : bool;
  }

  type 'a core = { mutable root : 'a node; nil_node : 'a node; mutable count : int }

  let make_nil (dummy_key : key) (dummy_val : 'a) : 'a node =
    let rec n =
      {
        key = dummy_key;
        value = dummy_val;
        color = Black;
        left = n;
        right = n;
        parent = n;
        nil = true;
      }
    in
    n

  (* The nil sentinel is created lazily on first insert, because we need a
     key/value to populate its (never-read) fields. *)
  type 'a state = Empty | Rooted of 'a core

  type 'a t = { mutable st : 'a state }

  let create () = { st = Empty }

  let length t = match t.st with Empty -> 0 | Rooted r -> r.count
  let is_empty t = length t = 0

  let left_rotate r x =
    let y = x.right in
    x.right <- y.left;
    if not y.left.nil then y.left.parent <- x;
    y.parent <- x.parent;
    if x.parent.nil then r.root <- y
    else if x == x.parent.left then x.parent.left <- y
    else x.parent.right <- y;
    y.left <- x;
    x.parent <- y

  let right_rotate r x =
    let y = x.left in
    x.left <- y.right;
    if not y.right.nil then y.right.parent <- x;
    y.parent <- x.parent;
    if x.parent.nil then r.root <- y
    else if x == x.parent.right then x.parent.right <- y
    else x.parent.left <- y;
    y.right <- x;
    x.parent <- y

  let insert_fixup r z0 =
    let z = ref z0 in
    while !z.parent.color = Red do
      let zp = !z.parent in
      let zpp = zp.parent in
      if zp == zpp.left then begin
        let y = zpp.right in
        if y.color = Red then begin
          zp.color <- Black;
          y.color <- Black;
          zpp.color <- Red;
          z := zpp
        end
        else begin
          if !z == zp.right then begin
            z := zp;
            left_rotate r !z
          end;
          !z.parent.color <- Black;
          !z.parent.parent.color <- Red;
          right_rotate r !z.parent.parent
        end
      end
      else begin
        let y = zpp.left in
        if y.color = Red then begin
          zp.color <- Black;
          y.color <- Black;
          zpp.color <- Red;
          z := zpp
        end
        else begin
          if !z == zp.left then begin
            z := zp;
            right_rotate r !z
          end;
          !z.parent.color <- Black;
          !z.parent.parent.color <- Red;
          left_rotate r !z.parent.parent
        end
      end
    done;
    r.root.color <- Black

  let insert t k v =
    match t.st with
    | Empty ->
        let nil = make_nil k v in
        let z = { key = k; value = v; color = Black; left = nil; right = nil; parent = nil; nil = false } in
        t.st <- Rooted { root = z; nil_node = nil; count = 1 };
        None
    | Rooted r ->
        let y = ref r.nil_node and x = ref r.root in
        let existing = ref None in
        while (not !x.nil) && !existing = None do
          y := !x;
          let c = Ord.compare k !x.key in
          if c = 0 then existing := Some !x
          else if c < 0 then x := !x.left
          else x := !x.right
        done;
        (match !existing with
        | Some n ->
            let old = n.value in
            n.value <- v;
            Some old
        | None ->
            let z =
              {
                key = k;
                value = v;
                color = Red;
                left = r.nil_node;
                right = r.nil_node;
                parent = !y;
                nil = false;
              }
            in
            if !y.nil then r.root <- z
            else if Ord.compare k !y.key < 0 then !y.left <- z
            else !y.right <- z;
            r.count <- r.count + 1;
            insert_fixup r z;
            None)

  let find_node r k =
    let x = ref r.root in
    let res = ref None in
    while (not !x.nil) && !res = None do
      let c = Ord.compare k !x.key in
      if c = 0 then res := Some !x
      else if c < 0 then x := !x.left
      else x := !x.right
    done;
    !res

  let find t k =
    match t.st with
    | Empty -> None
    | Rooted r -> (
        match find_node r k with Some n -> Some n.value | None -> None)

  let rec minimum x = if x.left.nil then x else minimum x.left

  let transplant r u v =
    if u.parent.nil then r.root <- v
    else if u == u.parent.left then u.parent.left <- v
    else u.parent.right <- v;
    v.parent <- u.parent

  let delete_fixup r x0 =
    let x = ref x0 in
    while (not (!x == r.root)) && !x.color = Black do
      if !x == !x.parent.left then begin
        let w = ref !x.parent.right in
        if !w.color = Red then begin
          !w.color <- Black;
          !x.parent.color <- Red;
          left_rotate r !x.parent;
          w := !x.parent.right
        end;
        if !w.left.color = Black && !w.right.color = Black then begin
          !w.color <- Red;
          x := !x.parent
        end
        else begin
          if !w.right.color = Black then begin
            !w.left.color <- Black;
            !w.color <- Red;
            right_rotate r !w;
            w := !x.parent.right
          end;
          !w.color <- !x.parent.color;
          !x.parent.color <- Black;
          !w.right.color <- Black;
          left_rotate r !x.parent;
          x := r.root
        end
      end
      else begin
        let w = ref !x.parent.left in
        if !w.color = Red then begin
          !w.color <- Black;
          !x.parent.color <- Red;
          right_rotate r !x.parent;
          w := !x.parent.left
        end;
        if !w.right.color = Black && !w.left.color = Black then begin
          !w.color <- Red;
          x := !x.parent
        end
        else begin
          if !w.left.color = Black then begin
            !w.right.color <- Black;
            !w.color <- Red;
            left_rotate r !w;
            w := !x.parent.left
          end;
          !w.color <- !x.parent.color;
          !x.parent.color <- Black;
          !w.left.color <- Black;
          right_rotate r !x.parent;
          x := r.root
        end
      end
    done;
    !x.color <- Black

  let delete_node r z =
    let y = ref z in
    let y_original_color = ref !y.color in
    let x = ref r.nil_node in
    if z.left.nil then begin
      x := z.right;
      transplant r z z.right
    end
    else if z.right.nil then begin
      x := z.left;
      transplant r z z.left
    end
    else begin
      let m = minimum z.right in
      y := m;
      y_original_color := m.color;
      x := m.right;
      if m.parent == z then !x.parent <- m
      else begin
        transplant r m m.right;
        m.right <- z.right;
        m.right.parent <- m
      end;
      transplant r z m;
      m.left <- z.left;
      m.left.parent <- m;
      m.color <- z.color
    end;
    r.count <- r.count - 1;
    if !y_original_color = Black then delete_fixup r !x

  let remove t k =
    match t.st with
    | Empty -> None
    | Rooted r -> (
        match find_node r k with
        | None -> None
        | Some z ->
            let v = z.value in
            delete_node r z;
            Some v)

  let min_binding t =
    match t.st with
    | Empty -> None
    | Rooted r ->
        if r.root.nil then None
        else
          let m = minimum r.root in
          Some (m.key, m.value)

  let pop_min t =
    match t.st with
    | Empty -> None
    | Rooted r ->
        if r.root.nil then None
        else begin
          let m = minimum r.root in
          let kv = (m.key, m.value) in
          delete_node r m;
          Some kv
        end

  let find_ge t k =
    match t.st with
    | Empty -> None
    | Rooted r ->
        let best = ref None in
        let x = ref r.root in
        while not !x.nil do
          let c = Ord.compare k !x.key in
          if c = 0 then begin
            best := Some (!x.key, !x.value);
            x := r.nil_node
          end
          else if c < 0 then begin
            best := Some (!x.key, !x.value);
            x := !x.left
          end
          else x := !x.right
        done;
        !best

  let iter f t =
    match t.st with
    | Empty -> ()
    | Rooted r ->
        let rec go n =
          if not n.nil then begin
            go n.left;
            f n.key n.value;
            go n.right
          end
        in
        go r.root

  let fold f t acc =
    let acc = ref acc in
    iter (fun k v -> acc := f k v !acc) t;
    !acc

  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let depth_estimate t =
    let n = length t in
    let rec lg acc n = if n <= 1 then acc else lg (acc + 1) (n / 2) in
    lg 1 n

  let check_invariants t =
    match t.st with
    | Empty -> Ok ()
    | Rooted r ->
        let exception Violation of string in
        (* Returns the black-height of [n]; raises on violation. *)
        let rec go n lo hi =
          if n.nil then 1
          else begin
            (match lo with
            | Some l when Ord.compare n.key l <= 0 ->
                raise (Violation "BST order violated (left bound)")
            | _ -> ());
            (match hi with
            | Some h when Ord.compare n.key h >= 0 ->
                raise (Violation "BST order violated (right bound)")
            | _ -> ());
            if n.color = Red && (n.left.color = Red || n.right.color = Red) then
              raise (Violation "red node with red child");
            let bl = go n.left lo (Some n.key) in
            let br = go n.right (Some n.key) hi in
            if bl <> br then raise (Violation "black-height mismatch");
            bl + (if n.color = Black then 1 else 0)
          end
        in
        (try
           if r.root.color <> Black then raise (Violation "root is not black");
           ignore (go r.root None None);
           (* count consistency *)
           let c = ref 0 in
           iter (fun _ _ -> incr c) t;
           if !c <> r.count then raise (Violation "count mismatch");
           Ok ()
         with Violation m -> Error m)
end
