type 'a t = {
  tbl : (int, 'a) Hashtbl.t;
  mutable nlookups : int;
  mutable nupdates : int;
}

let create ?(initial_buckets = 1024) () =
  { tbl = Hashtbl.create initial_buckets; nlookups = 0; nupdates = 0 }

let length t = Hashtbl.length t.tbl

let find t k =
  t.nlookups <- t.nlookups + 1;
  Hashtbl.find_opt t.tbl k

let mem t k =
  t.nlookups <- t.nlookups + 1;
  Hashtbl.mem t.tbl k

let insert t k v =
  t.nupdates <- t.nupdates + 1;
  let old = Hashtbl.find_opt t.tbl k in
  Hashtbl.replace t.tbl k v;
  old

let try_insert t k v =
  t.nupdates <- t.nupdates + 1;
  if Hashtbl.mem t.tbl k then false
  else begin
    Hashtbl.replace t.tbl k v;
    true
  end

let remove t k =
  t.nupdates <- t.nupdates + 1;
  match Hashtbl.find_opt t.tbl k with
  | Some v ->
      Hashtbl.remove t.tbl k;
      Some v
  | None -> None

let lookups t = t.nlookups
let updates t = t.nupdates

let iter f t = Hashtbl.iter f t.tbl
