(** Lock-free hash table model (David et al., ASPLOS '15 style).

    Aquila replaces the Linux page cache's lock-protected radix tree with
    a lock-free hash table so that concurrent faulting threads never
    serialize on a global lock (Sections 3.2 and 6.5).  In the simulator,
    operations are genuinely non-blocking — no {!Sim.Sync.Mutex} — and the
    constant per-operation costs (probe, CAS install/remove) are charged
    by callers from {!Hw.Costs}.  Operation counters support experiment
    reporting. *)

type 'a t

val create : ?initial_buckets:int -> unit -> 'a t
val length : 'a t -> int

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val insert : 'a t -> int -> 'a -> 'a option
(** [insert t k v] installs [k → v] with a CAS; returns the binding it
    replaced, if any. *)

val try_insert : 'a t -> int -> 'a -> bool
(** [try_insert t k v] installs only if absent (the fault-handler race:
    another thread may have brought the page in first).  Returns whether
    this caller won. *)

val remove : 'a t -> int -> 'a option

val lookups : 'a t -> int
val updates : 'a t -> int

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] to every binding (administrative paths only —
    iteration order is unspecified and uncosted). *)
