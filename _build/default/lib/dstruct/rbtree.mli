(** Imperative red-black tree (CLRS-style, with parent pointers).

    Used where the paper's systems use kernel red-black trees: Aquila's
    per-core dirty-page trees sorted by device offset (Section 3.2) and
    Linux's VMA tree.  Mutating operations are O(log n); {!pop_min}
    supports write-back in ascending device-offset order. *)

module Make (Ord : sig
  type t

  val compare : t -> t -> int
end) : sig
  type key = Ord.t
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val insert : 'a t -> key -> 'a -> 'a option
  (** [insert t k v] binds [k] to [v]; returns the previous binding if [k]
      was present (which is replaced). *)

  val find : 'a t -> key -> 'a option

  val remove : 'a t -> key -> 'a option
  (** [remove t k] deletes and returns [k]'s binding, if any. *)

  val min_binding : 'a t -> (key * 'a) option

  val pop_min : 'a t -> (key * 'a) option
  (** [pop_min t] removes and returns the smallest binding. *)

  val find_ge : 'a t -> key -> (key * 'a) option
  (** [find_ge t k] is the smallest binding with key ≥ [k]. *)

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  (** In-order traversal. *)

  val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  val to_list : 'a t -> (key * 'a) list

  val depth_estimate : 'a t -> int
  (** [depth_estimate t] ≈ ⌈log₂ (length + 1)⌉, the node visits of one
      descent; used by cost models. *)

  val check_invariants : 'a t -> (unit, string) result
  (** Validates BST ordering, red-red freedom, and black-height balance;
      for property tests. *)
end
