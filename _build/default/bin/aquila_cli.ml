(* Command-line driver for the Aquila reproduction experiments. *)

open Cmdliner

let list_cmd =
  let doc = "List all reproducible tables and figures." in
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Printf.printf "%-8s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment (or 'all')." in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see 'list'), or 'all'.")
  in
  let run id =
    if id = "all" then begin
      Experiments.Registry.run_all ();
      `Ok ()
    end
    else
      match Experiments.Registry.find id with
      | Some e ->
          Printf.printf "Aquila reproduction — %s\n" Experiments.Scenario.scale_note;
          e.Experiments.Registry.run ();
          `Ok ()
      | None -> `Error (false, Printf.sprintf "unknown experiment %S" id)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ id))

let () =
  let doc = "Reproduction harness for 'Memory-Mapped I/O on Steroids' (EuroSys '21)" in
  let info = Cmd.info "aquila_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
