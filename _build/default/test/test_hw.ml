(* Tests for the hardware cost model (lib/hw). *)

let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)
let c = Hw.Costs.default

(* ---- Defs ---- *)

let defs_roundtrip () =
  checki "page of addr" 3 (Hw.Defs.page_of_addr 12288L);
  check64 "addr of page" 12288L (Hw.Defs.addr_of_page 3);
  checki "pages of bytes exact" 2 (Hw.Defs.pages_of_bytes 8192L);
  checki "pages of bytes round up" 3 (Hw.Defs.pages_of_bytes 8193L);
  check64 "2.4 cycles per ns" 2400L (Hw.Defs.us 1.0)

(* ---- Costs ---- *)

let memcpy_costs () =
  check64 "scalar 4k" 2400L (Hw.Costs.memcpy_4k c ~simd:false);
  check64 "avx2 4k incl FPU" 1200L (Hw.Costs.memcpy_4k c ~simd:true);
  (* paper: 2x faster with SIMD *)
  Alcotest.(check bool) "simd 2x"
    true
    (Int64.to_float (Hw.Costs.memcpy_4k c ~simd:false)
     /. Int64.to_float (Hw.Costs.memcpy_4k c ~simd:true)
    = 2.0);
  check64 "scales with size" 4800L (Hw.Costs.memcpy_bytes c ~simd:false 8192)

let paper_constants () =
  check64 "ring3 trap" 1287L c.Hw.Costs.trap_ring3;
  check64 "nonroot exception" 552L c.Hw.Costs.exception_ring0;
  check64 "posted ipi" 298L c.Hw.Costs.ipi_send_posted;
  check64 "vmexit-send ipi" 2081L c.Hw.Costs.ipi_send_vmexit;
  check64 "vmexit" 750L c.Hw.Costs.vmexit;
  check64 "fpu save/restore" 300L c.Hw.Costs.fpu_save_restore

(* ---- Domains ---- *)

let domain_costs () =
  let ring3 = Hw.Domain_x.fault_transition_cost c Hw.Domain_x.Ring3 in
  let aquila = Hw.Domain_x.fault_transition_cost c Hw.Domain_x.Nonroot_ring0 in
  check64 "ring3 = trap" 1287L ring3;
  Alcotest.(check bool) "aquila ~2.33x cheaper (paper)" true
    (Int64.to_float ring3 /. Int64.to_float aquila > 1.8);
  Alcotest.(check bool) "syscall < vmcall" true
    (Hw.Domain_x.syscall_cost c Hw.Domain_x.Ring3
     < Hw.Domain_x.syscall_cost c Hw.Domain_x.Nonroot_ring0)

(* ---- Topology ---- *)

let topology () =
  let t = Hw.Topology.default in
  checki "cores" 32 t.Hw.Topology.cores;
  checki "nodes" 2 t.Hw.Topology.nodes;
  checki "node of core 0" 0 (Hw.Topology.node_of t 0);
  checki "node of core 16" 1 (Hw.Topology.node_of t 16);
  Alcotest.check_raises "bad core" (Invalid_argument "Topology.node_of: bad core")
    (fun () -> ignore (Hw.Topology.node_of t 32));
  Alcotest.check_raises "bad topology"
    (Invalid_argument "Topology.create: cores must be a positive multiple of nodes")
    (fun () -> ignore (Hw.Topology.create ~cores:5 ~nodes:2))

(* ---- TLB ---- *)

let tlb_hit_miss () =
  let t = Hw.Tlb.create () in
  let miss = Hw.Tlb.access t c ~vpn:42 in
  check64 "miss pays walk" c.Hw.Costs.tlb_miss_walk miss;
  let hit = Hw.Tlb.access t c ~vpn:42 in
  check64 "hit free" 0L hit;
  checki "counters" 1 (Hw.Tlb.misses t);
  checki "hits" 1 (Hw.Tlb.hits t)

let tlb_invalidate () =
  let t = Hw.Tlb.create () in
  ignore (Hw.Tlb.access t c ~vpn:42);
  ignore (Hw.Tlb.invalidate_local t c ~vpn:42);
  check64 "miss after invalidate" c.Hw.Costs.tlb_miss_walk (Hw.Tlb.access t c ~vpn:42);
  ignore (Hw.Tlb.flush t c);
  check64 "miss after flush" c.Hw.Costs.tlb_miss_walk (Hw.Tlb.access t c ~vpn:42)

let tlb_conflict_eviction () =
  (* direct-mapped: vpn and vpn+capacity collide *)
  let t = Hw.Tlb.create ~capacity:64 () in
  ignore (Hw.Tlb.access t c ~vpn:1);
  ignore (Hw.Tlb.access t c ~vpn:65);
  Alcotest.(check bool) "conflict evicts" true
    (Hw.Tlb.access t c ~vpn:1 > 0L)

(* ---- Machine + IPI ---- *)

let ipi_shootdown () =
  let m = Hw.Machine.create () in
  (* warm target TLBs *)
  ignore (Hw.Tlb.access (Hw.Machine.core m 1).Hw.Machine.tlb c ~vpn:7);
  ignore (Hw.Tlb.access (Hw.Machine.core m 2).Hw.Machine.tlb c ~vpn:7);
  Hw.Ipi.reset_counters ();
  let cost =
    Hw.Ipi.shootdown m c ~mode:Hw.Ipi.Posted ~src:0 ~targets:[ 0; 1; 2 ] ~vpns:[ 7 ]
  in
  Alcotest.(check bool) "sender pays send+ack" true
    (cost >= Int64.add c.Hw.Costs.ipi_send_posted c.Hw.Costs.ipi_receive);
  checki "one batch" 1 (Hw.Ipi.shootdowns_sent ());
  (* target TLBs no longer hold the translation *)
  Alcotest.(check bool) "target invalidated" true
    (Hw.Tlb.access (Hw.Machine.core m 1).Hw.Machine.tlb c ~vpn:7 > 0L);
  (* targets accumulated pending interrupt work; src did not *)
  Alcotest.(check bool) "pending irq on target" true
    (Hw.Machine.drain_irq m ~core:2 > 0L);
  check64 "src exempt" 0L (Hw.Machine.drain_irq m ~core:0)

let ipi_self_only_is_free () =
  let m = Hw.Machine.create () in
  check64 "no targets, no cost" 0L
    (Hw.Ipi.shootdown m c ~mode:Hw.Ipi.Posted ~src:0 ~targets:[ 0 ] ~vpns:[ 1 ])

let drain_irq_clears () =
  let m = Hw.Machine.create () in
  Hw.Machine.deliver_irq m ~core:3 500L;
  Hw.Machine.deliver_irq m ~core:3 250L;
  check64 "accumulated" 750L (Hw.Machine.drain_irq m ~core:3);
  check64 "cleared" 0L (Hw.Machine.drain_irq m ~core:3)

(* ---- Page table ---- *)

let page_table_ops () =
  let pt = Hw.Page_table.create () in
  Hw.Page_table.map pt ~vpn:10 ~pfn:99 ~writable:false;
  (match Hw.Page_table.find pt ~vpn:10 with
  | Some pte ->
      checki "pfn" 99 pte.Hw.Page_table.pfn;
      Alcotest.(check bool) "read-only" false pte.Hw.Page_table.writable
  | None -> Alcotest.fail "mapping missing");
  Hw.Page_table.set_writable pt ~vpn:10 true;
  (match Hw.Page_table.find pt ~vpn:10 with
  | Some pte -> Alcotest.(check bool) "upgraded" true pte.Hw.Page_table.writable
  | None -> Alcotest.fail "mapping missing");
  checki "mapped count" 1 (Hw.Page_table.mapped pt);
  (match Hw.Page_table.unmap pt ~vpn:10 with
  | Some _ -> ()
  | None -> Alcotest.fail "unmap lost pte");
  checki "empty" 0 (Hw.Page_table.mapped pt);
  Alcotest.(check bool) "unmap absent" true (Hw.Page_table.unmap pt ~vpn:10 = None)

let page_table_remap_resets_dirty () =
  let pt = Hw.Page_table.create () in
  Hw.Page_table.map pt ~vpn:1 ~pfn:5 ~writable:true;
  (Option.get (Hw.Page_table.find pt ~vpn:1)).Hw.Page_table.dirty <- true;
  Hw.Page_table.map pt ~vpn:1 ~pfn:6 ~writable:false;
  let pte = Option.get (Hw.Page_table.find pt ~vpn:1) in
  Alcotest.(check bool) "dirty cleared" false pte.Hw.Page_table.dirty;
  checki "new pfn" 6 pte.Hw.Page_table.pfn

(* ---- EPT ---- *)

let ept_faults_once_per_frame () =
  let e = Hw.Ept.create ~granularity_bytes:2097152L () in
  let first = Hw.Ept.touch e c ~gpa:0L in
  Alcotest.(check bool) "first access faults" true (first > 0L);
  Alcotest.(check int64) "same frame free" 0L (Hw.Ept.touch e c ~gpa:4096L);
  Alcotest.(check bool) "next frame faults" true (Hw.Ept.touch e c ~gpa:2097152L > 0L);
  checki "fault count" 2 (Hw.Ept.faults e);
  checki "mapped" 2 (Hw.Ept.mapped_frames e)

let ept_unmap_range () =
  let e = Hw.Ept.create ~granularity_bytes:2097152L () in
  ignore (Hw.Ept.touch e c ~gpa:0L);
  ignore (Hw.Ept.touch e c ~gpa:2097152L);
  checki "dropped" 2 (Hw.Ept.unmap_range e ~gpa:0L ~len:4194304L);
  Alcotest.(check bool) "refault after unmap" true (Hw.Ept.touch e c ~gpa:0L > 0L)

let () =
  Alcotest.run "hw"
    [
      ("defs", [ Alcotest.test_case "conversions" `Quick defs_roundtrip ]);
      ( "costs",
        [
          Alcotest.test_case "memcpy" `Quick memcpy_costs;
          Alcotest.test_case "paper constants" `Quick paper_constants;
        ] );
      ("domains", [ Alcotest.test_case "transition costs" `Quick domain_costs ]);
      ("topology", [ Alcotest.test_case "numa layout" `Quick topology ]);
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick tlb_hit_miss;
          Alcotest.test_case "invalidate" `Quick tlb_invalidate;
          Alcotest.test_case "conflict eviction" `Quick tlb_conflict_eviction;
        ] );
      ( "ipi",
        [
          Alcotest.test_case "shootdown" `Quick ipi_shootdown;
          Alcotest.test_case "self only" `Quick ipi_self_only_is_free;
          Alcotest.test_case "drain irq" `Quick drain_irq_clears;
        ] );
      ( "page table",
        [
          Alcotest.test_case "map/unmap" `Quick page_table_ops;
          Alcotest.test_case "remap resets flags" `Quick page_table_remap_resets_dirty;
        ] );
      ( "ept",
        [
          Alcotest.test_case "fault per huge frame" `Quick ept_faults_once_per_frame;
          Alcotest.test_case "unmap range" `Quick ept_unmap_range;
        ] );
    ]
