(* Tests for the key-value stores (lib/kvstore): bloom, memtable, SSTs,
   RocksDB-style LSM and Kreon-style log+index, over real simulated
   storage. *)

let psz = Hw.Defs.page_size
let checki = Alcotest.(check int)

(* ---- Bloom ---- *)

let bloom_no_false_negatives =
  QCheck.Test.make ~name:"bloom has no false negatives" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) printable_string)
    (fun keys ->
      let b = Kvstore.Bloom.create ~expected_keys:(List.length keys) in
      List.iter (Kvstore.Bloom.add b) keys;
      List.for_all (Kvstore.Bloom.mem b) keys)

let bloom_fp_rate () =
  let b = Kvstore.Bloom.create ~expected_keys:1000 in
  for i = 0 to 999 do
    Kvstore.Bloom.add b (Printf.sprintf "key-%d" i)
  done;
  let fp = ref 0 in
  for i = 1000 to 10999 do
    if Kvstore.Bloom.mem b (Printf.sprintf "key-%d" i) then incr fp
  done;
  Alcotest.(check bool)
    (Printf.sprintf "false positives ~1%% (got %d/10000)" !fp)
    true (!fp < 500)

let bloom_serialization () =
  let b = Kvstore.Bloom.create ~expected_keys:100 in
  List.iter (Kvstore.Bloom.add b) [ "alpha"; "beta"; "gamma" ];
  let b2 = Kvstore.Bloom.deserialize (Kvstore.Bloom.serialize b) in
  Alcotest.(check bool) "roundtrip membership" true
    (List.for_all (Kvstore.Bloom.mem b2) [ "alpha"; "beta"; "gamma" ]);
  checki "bits preserved" (Kvstore.Bloom.bits b) (Kvstore.Bloom.bits b2);
  Alcotest.check_raises "malformed" (Invalid_argument "Bloom.deserialize: too short")
    (fun () -> ignore (Kvstore.Bloom.deserialize (Bytes.create 3)))

(* ---- Memtable ---- *)

let memtable_ops () =
  let m = Kvstore.Memtable.create () in
  Kvstore.Memtable.put m "b" "2";
  Kvstore.Memtable.put m "a" "1";
  Kvstore.Memtable.put m "c" "3";
  Kvstore.Memtable.put m "b" "2'";
  Alcotest.(check (option string)) "get" (Some "2'") (Kvstore.Memtable.get m "b");
  checki "entries" 3 (Kvstore.Memtable.entries m);
  Alcotest.(check (list (pair string string))) "sorted"
    [ ("a", "1"); ("b", "2'"); ("c", "3") ]
    (Kvstore.Memtable.to_sorted_list m);
  Alcotest.(check (list (pair string string))) "range"
    [ ("b", "2'"); ("c", "3") ]
    (Kvstore.Memtable.range m ~start:"b" ~n:5);
  checki "bytes tracked" 7 (Kvstore.Memtable.mem_bytes m)

(* ---- Env / SST rig ---- *)

let make_env () =
  let store = Blobstore.Store.create ~capacity_pages:65536 () in
  let pmem = Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (65536 * psz)) () in
  let access = Sdevice.Access.dax_pmem Hw.Costs.default pmem in
  let machine = Hw.Machine.create () in
  let pt = Hw.Page_table.create () in
  let pc =
    Linux_sim.Page_cache.create ~costs:Hw.Costs.default ~machine ~page_table:pt
      (Linux_sim.Page_cache.default_config ~frames:1024)
  in
  ignore pc;
  let ucache =
    Uspace.User_cache.create (Uspace.User_cache.default_config ~capacity_pages:512)
  in
  Kvstore.Env.direct_ucache ~store ~costs:Hw.Costs.default ~device_access:access
    ~ucache

let in_sim f =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~core:0 f);
  Sim.Engine.run eng

let records n = List.init n (fun i -> (Printf.sprintf "key%06d" i, Printf.sprintf "value-%06d" i))

let sst_build_get () =
  let env = make_env () in
  in_sim (fun () ->
      let recs = records 500 in
      let sst = Kvstore.Sst.build env ~name:"0001.sst" recs in
      checki "record count" 500 (Kvstore.Sst.nrecords sst);
      Alcotest.(check string) "first key" "key000000" (Kvstore.Sst.first_key sst);
      Alcotest.(check string) "last key" "key000499" (Kvstore.Sst.last_key sst);
      Alcotest.(check (option string)) "hit" (Some "value-000123")
        (Kvstore.Sst.get sst "key000123");
      Alcotest.(check (option string)) "miss inside range" None
        (Kvstore.Sst.get sst "key000123x");
      Alcotest.(check (option string)) "miss outside" None
        (Kvstore.Sst.get sst "zzz"))

let sst_iter () =
  let env = make_env () in
  in_sim (fun () ->
      let sst = Kvstore.Sst.build env ~name:"0002.sst" (records 100) in
      let seen = ref [] in
      Kvstore.Sst.iter_from sst ~start:"key000095" ~f:(fun k _ ->
          seen := k :: !seen;
          true);
      Alcotest.(check (list string)) "tail in order"
        [ "key000095"; "key000096"; "key000097"; "key000098"; "key000099" ]
        (List.rev !seen))

let sst_property =
  (* values bounded below a block: oversized records are rejected by
     design (see sst_rejects_oversized) *)
  QCheck.Test.make ~name:"sst get agrees with input map" ~count:20
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 100)
        (pair (int_bound 500)
           (string_of_size (QCheck.Gen.int_range 0 1000))))
    (fun pairs ->
      let module Sm = Map.Make (String) in
      let m =
        List.fold_left
          (fun acc (k, v) -> Sm.add (Printf.sprintf "k%05d" k) ("v" ^ v) acc)
          Sm.empty pairs
      in
      let recs = Sm.bindings m in
      recs = []
      ||
      let ok = ref true in
      in_sim (fun () ->
          let env = make_env () in
          let sst = Kvstore.Sst.build env ~name:"p.sst" recs in
          Sm.iter
            (fun k v -> if Kvstore.Sst.get sst k <> Some v then ok := false)
            m);
      !ok)

let sst_rejects_oversized () =
  let env = make_env () in
  Alcotest.check_raises "record bigger than a block"
    (Invalid_argument "Sst: record larger than a block") (fun () ->
      in_sim (fun () ->
          ignore
            (Kvstore.Sst.build env ~name:"big.sst"
               [ ("k", String.make 5000 'x') ])))

(* ---- RocksDB ---- *)

let rocksdb_put_get_flush () =
  let env = make_env () in
  in_sim (fun () ->
      let db = Kvstore.Rocksdb_sim.create env () in
      for i = 0 to 299 do
        Kvstore.Rocksdb_sim.put db (Printf.sprintf "k%05d" i) (Printf.sprintf "v%d" i)
      done;
      Kvstore.Rocksdb_sim.flush db;
      Alcotest.(check bool) "ssts exist" true (Kvstore.Rocksdb_sim.sst_count db > 0);
      Alcotest.(check (option string)) "get after flush" (Some "v123")
        (Kvstore.Rocksdb_sim.get db "k00123");
      (* update wins over the flushed version *)
      Kvstore.Rocksdb_sim.put db "k00123" "NEW";
      Alcotest.(check (option string)) "memtable shadows" (Some "NEW")
        (Kvstore.Rocksdb_sim.get db "k00123");
      Kvstore.Rocksdb_sim.flush db;
      Alcotest.(check (option string)) "newest survives compaction" (Some "NEW")
        (Kvstore.Rocksdb_sim.get db "k00123"))

let rocksdb_compaction_keeps_data () =
  let env = make_env () in
  in_sim (fun () ->
      let small_cfg =
        {
          Kvstore.Rocksdb_sim.default_config with
          Kvstore.Rocksdb_sim.memtable_limit_bytes = 4096;
          l0_limit = 2;
          sst_pages = 8;
        }
      in
      let db = Kvstore.Rocksdb_sim.create env ~config:small_cfg () in
      let n = 600 in
      for i = 0 to n - 1 do
        Kvstore.Rocksdb_sim.put db
          (Printf.sprintf "k%05d" ((i * 7919) mod n))
          (Printf.sprintf "val%05d" ((i * 7919) mod n))
      done;
      (* several flushes + compactions happened along the way *)
      let sizes = Kvstore.Rocksdb_sim.level_sizes db in
      Alcotest.(check bool) "multiple levels populated" true
        (List.length (List.filter (fun s -> s > 0) sizes) >= 1);
      for i = 0 to n - 1 do
        match Kvstore.Rocksdb_sim.get db (Printf.sprintf "k%05d" i) with
        | Some v ->
            Alcotest.(check string) (Printf.sprintf "value %d" i)
              (Printf.sprintf "val%05d" i) v
        | None -> Alcotest.fail (Printf.sprintf "lost key %d" i)
      done)

let rocksdb_bulk_load_and_scan () =
  let env = make_env () in
  in_sim (fun () ->
      let db = Kvstore.Rocksdb_sim.create env () in
      Kvstore.Rocksdb_sim.bulk_load db (records 1000);
      checki "records" 1000 (Kvstore.Rocksdb_sim.record_count db);
      let scan = Kvstore.Rocksdb_sim.scan db ~start:"key000500" ~n:5 in
      Alcotest.(check (list string)) "scan keys"
        [ "key000500"; "key000501"; "key000502"; "key000503"; "key000504" ]
        (List.map fst scan);
      (* scan merges the memtable *)
      Kvstore.Rocksdb_sim.put db "key000501x" "inserted";
      let scan2 = Kvstore.Rocksdb_sim.scan db ~start:"key000501" ~n:3 in
      Alcotest.(check (list string)) "scan sees memtable"
        [ "key000501"; "key000501x"; "key000502" ]
        (List.map fst scan2))

let rocksdb_missing_key () =
  let env = make_env () in
  in_sim (fun () ->
      let db = Kvstore.Rocksdb_sim.create env () in
      Kvstore.Rocksdb_sim.bulk_load db (records 100);
      Alcotest.(check (option string)) "absent" None
        (Kvstore.Rocksdb_sim.get db "nope"))

(* ---- Kreon ---- *)

let make_kreon ?(frames = 256) ~expected () =
  let ctx = Aquila.Context.create (Aquila.Context.default_config ~cache_frames:frames) in
  let store = Blobstore.Store.create ~capacity_pages:65536 () in
  let pmem = Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (65536 * psz)) () in
  let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
  fun () ->
    Aquila.Context.enter_thread ctx;
    Kvstore.Kreon_sim.create ~ctx ~access ~store ~expected_records:expected
      ~value_bytes:64 ()

let kreon_put_get_spill () =
  let mk = make_kreon ~expected:2000 () in
  in_sim (fun () ->
      let db = mk () in
      for i = 0 to 999 do
        Kvstore.Kreon_sim.put db (Printf.sprintf "k%05d" i) (Printf.sprintf "v%05d" i)
      done;
      Kvstore.Kreon_sim.spill db;
      Alcotest.(check bool) "level populated" true
        (List.exists (fun n -> n > 0) (Kvstore.Kreon_sim.level_entries db));
      for i = 0 to 999 do
        Alcotest.(check (option string)) (Printf.sprintf "get %d" i)
          (Some (Printf.sprintf "v%05d" i))
          (Kvstore.Kreon_sim.get db (Printf.sprintf "k%05d" i))
      done;
      Alcotest.(check (option string)) "absent" None (Kvstore.Kreon_sim.get db "zzz");
      Alcotest.(check bool) "log grew" true (Kvstore.Kreon_sim.log_bytes db > 0))

let kreon_update_wins () =
  let mk = make_kreon ~expected:500 () in
  in_sim (fun () ->
      let db = mk () in
      Kvstore.Kreon_sim.put db "key" "old";
      Kvstore.Kreon_sim.spill db;
      Kvstore.Kreon_sim.put db "key" "new";
      Alcotest.(check (option string)) "L0 shadows L1" (Some "new")
        (Kvstore.Kreon_sim.get db "key");
      Kvstore.Kreon_sim.spill db;
      Alcotest.(check (option string)) "newest survives merge" (Some "new")
        (Kvstore.Kreon_sim.get db "key"))

let kreon_scan () =
  let mk = make_kreon ~expected:500 () in
  in_sim (fun () ->
      let db = mk () in
      for i = 0 to 99 do
        Kvstore.Kreon_sim.put db (Printf.sprintf "k%03d" i) (Printf.sprintf "v%03d" i)
      done;
      Kvstore.Kreon_sim.spill db;
      for i = 100 to 109 do
        Kvstore.Kreon_sim.put db (Printf.sprintf "k%03d" i) (Printf.sprintf "v%03d" i)
      done;
      let scan = Kvstore.Kreon_sim.scan db ~start:"k095" ~n:8 in
      Alcotest.(check (list string)) "scan crosses L0/L1"
        [ "k095"; "k096"; "k097"; "k098"; "k099"; "k100"; "k101"; "k102" ]
        (List.map fst scan))

(* ---- Merge iterators ---- *)

let iter_merge_priority () =
  let newest = Kvstore.Kv_iter.of_sorted_list [ ("a", "new"); ("c", "new") ] in
  let oldest = Kvstore.Kv_iter.of_sorted_list [ ("a", "old"); ("b", "old") ] in
  let it = Kvstore.Kv_iter.merge [ newest; oldest ] in
  Alcotest.(check (list (pair string string))) "newest shadows"
    [ ("a", "new"); ("b", "old"); ("c", "new") ]
    (Kvstore.Kv_iter.take it 10);
  Alcotest.(check bool) "exhausted" true (Kvstore.Kv_iter.next it = None)

let iter_sst_is_lazy () =
  let env = make_env () in
  in_sim (fun () ->
      let sst = Kvstore.Sst.build env ~name:"lazy.sst" (records 600) in
      let t0 = Sim.Engine.now_f () in
      let it = Kvstore.Kv_iter.of_sst sst ~start:"key000000" in
      ignore (Kvstore.Kv_iter.take it 3);
      let early = Int64.sub (Sim.Engine.now_f ()) t0 in
      (* draining everything costs far more than the first few *)
      ignore (Kvstore.Kv_iter.take it 1000);
      let full = Int64.sub (Sim.Engine.now_f ()) t0 in
      Alcotest.(check bool)
        (Printf.sprintf "lazy block reads (%Ld vs %Ld)" early full)
        true
        (Int64.mul early 2L < full))

let iter_equals_scan =
  QCheck.Test.make ~name:"rocksdb iterator agrees with full materialization" ~count:10
    QCheck.(pair (int_range 0 900) (int_range 1 30))
    (fun (startk, n) ->
      let ok = ref true in
      in_sim (fun () ->
          let env = make_env () in
          let db = Kvstore.Rocksdb_sim.create env () in
          Kvstore.Rocksdb_sim.bulk_load db (records 500);
          (* add overlapping freshness in the memtable *)
          Kvstore.Rocksdb_sim.put db "key000100" "fresh";
          let start = Printf.sprintf "key%06d" startk in
          let via_scan = Kvstore.Rocksdb_sim.scan db ~start ~n in
          let via_iter =
            Kvstore.Kv_iter.take (Kvstore.Rocksdb_sim.iterator db ~start) n
          in
          if via_scan <> via_iter then ok := false;
          (* ascending and within range *)
          let rec ascending = function
            | (a, _) :: ((b, _) :: _ as tl) -> a < b && ascending tl
            | _ -> true
          in
          if not (ascending via_iter) then ok := false;
          List.iter (fun (k, _) -> if k < start then ok := false) via_iter);
      !ok)

(* ---- Btree ---- *)

let btree_rig () =
  (* a plain in-memory region accessor: the tree is storage-agnostic *)
  let backing = Bytes.make (4096 * 512) '\000' in
  {
    Kvstore.Btree.read =
      (fun ~off ~len ~dst -> Bytes.blit backing off dst 0 len);
    write = (fun ~off ~src -> Bytes.blit src 0 backing off (Bytes.length src));
  }

let btree_build_find () =
  in_sim (fun () ->
      let rw = btree_rig () in
      let entries = Array.init 1000 (fun i -> (Printf.sprintf "k%06d" (i * 3), i)) in
      let info = Kvstore.Btree.build rw ~base_page:4 entries in
      checki "count" 1000 info.Kvstore.Btree.count;
      Alcotest.(check bool) "multi-level" true (info.Kvstore.Btree.height >= 2);
      Alcotest.(check (option int)) "first" (Some 0) (Kvstore.Btree.find rw info "k000000");
      Alcotest.(check (option int)) "middle" (Some 500)
        (Kvstore.Btree.find rw info "k001500");
      Alcotest.(check (option int)) "last" (Some 999)
        (Kvstore.Btree.find rw info "k002997");
      Alcotest.(check (option int)) "between keys" None
        (Kvstore.Btree.find rw info "k000001");
      Alcotest.(check (option int)) "below range" None (Kvstore.Btree.find rw info "a");
      Alcotest.(check (option int)) "above range" None (Kvstore.Btree.find rw info "z"))

let btree_iter_from () =
  in_sim (fun () ->
      let rw = btree_rig () in
      let entries = Array.init 300 (fun i -> (Printf.sprintf "k%04d" i, i)) in
      let info = Kvstore.Btree.build rw ~base_page:2 entries in
      let seen = ref [] in
      Kvstore.Btree.iter_from rw info ~start:"k0295" ~f:(fun k _ ->
          seen := k :: !seen;
          true);
      Alcotest.(check (list string)) "tail across leaves"
        [ "k0295"; "k0296"; "k0297"; "k0298"; "k0299" ]
        (List.rev !seen))

let btree_validates_input () =
  in_sim (fun () ->
      let rw = btree_rig () in
      Alcotest.check_raises "unsorted"
        (Invalid_argument "Btree.build: entries must be strictly ascending")
        (fun () -> ignore (Kvstore.Btree.build rw ~base_page:0 [| ("b", 1); ("a", 2) |]));
      Alcotest.check_raises "empty" (Invalid_argument "Btree.build: empty") (fun () ->
          ignore (Kvstore.Btree.build rw ~base_page:0 [||])))

let btree_model =
  QCheck.Test.make ~name:"btree find/iter agree with a Map" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 400) (int_bound 2000))
    (fun keys ->
      let module Sm = Map.Make (String) in
      let m =
        List.fold_left
          (fun acc k -> Sm.add (Printf.sprintf "k%05d" k) k acc)
          Sm.empty keys
      in
      let entries = Array.of_list (Sm.bindings m) in
      let ok = ref true in
      in_sim (fun () ->
          let rw = btree_rig () in
          let info = Kvstore.Btree.build rw ~base_page:1 entries in
          Sm.iter
            (fun k v -> if Kvstore.Btree.find rw info k <> Some v then ok := false)
            m;
          (* full iteration reproduces the sorted bindings *)
          let out = ref [] in
          Kvstore.Btree.iter_from rw info ~start:"" ~f:(fun k v ->
              out := (k, v) :: !out;
              true);
          if List.rev !out <> Sm.bindings m then ok := false);
      !ok)

let btree_info_roundtrip () =
  let i =
    { Kvstore.Btree.root_page = 42; height = 3; count = 777; leaf0 = 10; nleaves = 12;
      pages_used = 15 }
  in
  let b = Kvstore.Btree.serialize_info i in
  Alcotest.(check bool) "roundtrip" true
    (Kvstore.Btree.deserialize_info b ~pos:0 = i)

(* ---- Kreon durability ---- *)

let kreon_crash_recovery () =
  let ctx = Aquila.Context.create (Aquila.Context.default_config ~cache_frames:256) in
  let store = Blobstore.Store.create ~capacity_pages:65536 () in
  let pmem = Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (65536 * psz)) () in
  let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
  in_sim (fun () ->
      Aquila.Context.enter_thread ctx;
      let db =
        Kvstore.Kreon_sim.create ~ctx ~access ~store ~expected_records:2000
          ~value_bytes:64 ()
      in
      for i = 0 to 499 do
        Kvstore.Kreon_sim.put db (Printf.sprintf "k%05d" i) (Printf.sprintf "v%05d" i)
      done;
      Kvstore.Kreon_sim.spill db;
      (* committed-but-unspilled updates: replayed from the log *)
      Kvstore.Kreon_sim.put db "k00007" "updated";
      Kvstore.Kreon_sim.put db "k99999" "fresh";
      Kvstore.Kreon_sim.msync db;
      (* uncommitted update: must vanish *)
      Kvstore.Kreon_sim.put db "k00008" "doomed";
      (* power loss *)
      Mcache.Dram_cache.crash (Aquila.Context.cache ctx);
      Kvstore.Kreon_sim.recover db;
      Alcotest.(check (option string)) "spilled data survives" (Some "v00123")
        (Kvstore.Kreon_sim.get db "k00123");
      Alcotest.(check (option string)) "committed log replayed" (Some "updated")
        (Kvstore.Kreon_sim.get db "k00007");
      Alcotest.(check (option string)) "committed insert replayed" (Some "fresh")
        (Kvstore.Kreon_sim.get db "k99999");
      Alcotest.(check (option string)) "uncommitted update lost" (Some "v00008")
        (Kvstore.Kreon_sim.get db "k00008"))

(* ---- Env equivalence ---- *)

let env_backends_agree () =
  (* The same workload produces identical results on all three envs. *)
  let run_ops env =
    let out = ref [] in
    in_sim (fun () ->
        let db = Kvstore.Rocksdb_sim.create env () in
        Kvstore.Rocksdb_sim.bulk_load db (records 200);
        Kvstore.Rocksdb_sim.put db "key000050" "overridden";
        out :=
          [
            Kvstore.Rocksdb_sim.get db "key000050";
            Kvstore.Rocksdb_sim.get db "key000199";
            Kvstore.Rocksdb_sim.get db "missing";
          ]);
    !out
  in
  let ucache_env = make_env () in
  let linux_env =
    let store = Blobstore.Store.create ~capacity_pages:65536 () in
    let pmem = Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (65536 * psz)) () in
    let access =
      Sdevice.Access.host_pmem Hw.Costs.default ~entry:Sdevice.Access.In_kernel pmem
    in
    let msys =
      Linux_sim.Mmap_sys.create (Linux_sim.Mmap_sys.default_config ~cache_frames:1024)
    in
    Kvstore.Env.linux_mmap ~store ~msys ~device_access:access
  in
  let aquila_env =
    let store = Blobstore.Store.create ~capacity_pages:65536 () in
    let pmem = Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (65536 * psz)) () in
    let ctx = Aquila.Context.create (Aquila.Context.default_config ~cache_frames:1024) in
    let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
    Kvstore.Env.aquila ~store ~ctx ~device_access:access
  in
  let a = run_ops ucache_env and b = run_ops linux_env and c = run_ops aquila_env in
  Alcotest.(check (list (option string))) "ucache = linux" a b;
  Alcotest.(check (list (option string))) "linux = aquila" b c;
  Alcotest.(check (list (option string))) "expected values"
    [ Some "overridden"; Some "value-000199"; None ]
    a

let () =
  Alcotest.run "kvstore"
    [
      ( "bloom",
        [
          QCheck_alcotest.to_alcotest bloom_no_false_negatives;
          Alcotest.test_case "fp rate" `Quick bloom_fp_rate;
          Alcotest.test_case "serialization" `Quick bloom_serialization;
        ] );
      ("memtable", [ Alcotest.test_case "ops" `Quick memtable_ops ]);
      ( "sst",
        [
          Alcotest.test_case "build/get" `Quick sst_build_get;
          Alcotest.test_case "iter" `Quick sst_iter;
          Alcotest.test_case "oversized record" `Quick sst_rejects_oversized;
          QCheck_alcotest.to_alcotest sst_property;
        ] );
      ( "rocksdb",
        [
          Alcotest.test_case "put/get/flush" `Quick rocksdb_put_get_flush;
          Alcotest.test_case "compaction keeps data" `Quick rocksdb_compaction_keeps_data;
          Alcotest.test_case "bulk load + scan" `Quick rocksdb_bulk_load_and_scan;
          Alcotest.test_case "missing key" `Quick rocksdb_missing_key;
        ] );
      ( "iterators",
        [
          Alcotest.test_case "merge priority" `Quick iter_merge_priority;
          Alcotest.test_case "sst laziness" `Quick iter_sst_is_lazy;
          QCheck_alcotest.to_alcotest iter_equals_scan;
        ] );
      ( "btree",
        [
          Alcotest.test_case "build/find" `Quick btree_build_find;
          Alcotest.test_case "iter_from" `Quick btree_iter_from;
          Alcotest.test_case "input validation" `Quick btree_validates_input;
          Alcotest.test_case "info roundtrip" `Quick btree_info_roundtrip;
          QCheck_alcotest.to_alcotest btree_model;
        ] );
      ( "kreon",
        [
          Alcotest.test_case "put/get/spill" `Quick kreon_put_get_spill;
          Alcotest.test_case "update wins" `Quick kreon_update_wins;
          Alcotest.test_case "scan" `Quick kreon_scan;
          Alcotest.test_case "crash recovery" `Quick kreon_crash_recovery;
        ] );
      ("env", [ Alcotest.test_case "backends agree" `Quick env_backends_agree ]);
    ]
