(* Tests for the graph-processing substrate (lib/ligra). *)

let checki = Alcotest.(check int)

(* ---- Graph ---- *)

let csr_construction () =
  let g = Ligra.Graph.of_edge_list ~n:4 [ (0, 1); (0, 2); (1, 3); (3, 0) ] in
  checki "vertices" 4 g.Ligra.Graph.n;
  checki "edges" 4 g.Ligra.Graph.m;
  checki "deg 0" 2 (Ligra.Graph.out_degree g 0);
  checki "deg 2" 0 (Ligra.Graph.out_degree g 2);
  let ns = ref [] in
  Ligra.Graph.iter_neighbors g 0 (fun v -> ns := v :: !ns);
  Alcotest.(check (list int)) "neighbors of 0" [ 1; 2 ] (List.sort compare !ns);
  Alcotest.check_raises "bad vertex" (Invalid_argument "Graph: vertex out of range")
    (fun () -> ignore (Ligra.Graph.of_edge_list ~n:2 [ (0, 5) ]))

let csr_model =
  QCheck.Test.make ~name:"CSR preserves the edge multiset" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun edges ->
      let g = Ligra.Graph.of_edge_list ~n:20 edges in
      let out = ref [] in
      for v = 0 to 19 do
        Ligra.Graph.iter_neighbors g v (fun d -> out := (v, d) :: !out)
      done;
      List.sort compare !out = List.sort compare edges)

(* ---- R-MAT ---- *)

let rmat_shape () =
  let g = Ligra.Rmat.generate ~seed:5 ~n:1000 ~m:10000 () in
  checki "vertices" 1000 g.Ligra.Graph.n;
  checki "edges" 10000 g.Ligra.Graph.m;
  (* R-MAT is skewed: the max degree far exceeds the mean (10) *)
  let maxdeg = ref 0 in
  for v = 0 to 999 do
    maxdeg := max !maxdeg (Ligra.Graph.out_degree g v)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "power-law-ish max degree (%d)" !maxdeg)
    true (!maxdeg > 40)

let rmat_deterministic () =
  let g1 = Ligra.Rmat.generate ~seed:9 ~n:100 ~m:500 () in
  let g2 = Ligra.Rmat.generate ~seed:9 ~n:100 ~m:500 () in
  Alcotest.(check bool) "same offsets" true
    (g1.Ligra.Graph.offsets = g2.Ligra.Graph.offsets);
  Alcotest.(check bool) "same edges" true (g1.Ligra.Graph.edges = g2.Ligra.Graph.edges)

(* ---- Mem_surface ---- *)

let make_aquila_surface ?(elem_bytes = 8) ~heap_pages ~frames () =
  let ctx = Aquila.Context.create (Aquila.Context.default_config ~cache_frames:frames) in
  let pmem =
    Sdevice.Pmem.create
      ~capacity_bytes:(Int64.of_int (heap_pages * Hw.Defs.page_size))
      ()
  in
  let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
  let file =
    Aquila.Context.attach_file ctx ~name:"heap" ~access
      ~translate:(fun p -> if p < heap_pages then Some p else None)
      ~size_pages:heap_pages
  in
  fun () ->
    Aquila.Context.enter_thread ctx;
    let region = Aquila.Context.mmap ctx file ~npages:heap_pages () in
    Ligra.Mem_surface.aquila ~elem_bytes ctx region

let surface_alloc_get_set () =
  let mk = make_aquila_surface ~heap_pages:64 ~frames:32 () in
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         let s = mk () in
         let a = Ligra.Mem_surface.alloc s ~len:1000 ~init:(fun i -> i * 3) in
         let buf = Sim.Costbuf.create () in
         checki "init value" 30 (Ligra.Mem_surface.get a ~buf 10);
         Ligra.Mem_surface.set a ~buf 10 99;
         checki "set/get" 99 (Ligra.Mem_surface.get a ~buf 10);
         checki "len" 1000 (Ligra.Mem_surface.len a);
         Sim.Costbuf.charge buf));
  Sim.Engine.run eng;
  Alcotest.(check bool) "mmio accesses cost time" true (Sim.Engine.now eng > 0L)

let surface_exhaustion () =
  let mk = make_aquila_surface ~heap_pages:4 ~frames:32 () in
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         let s = mk () in
         ignore (Ligra.Mem_surface.alloc s ~len:1000 ~init:(fun _ -> 0));
         Alcotest.check_raises "heap exhausted"
           (Failure "Mem_surface: mmio heap exhausted") (fun () ->
             ignore (Ligra.Mem_surface.alloc s ~len:2000 ~init:(fun _ -> 0)))));
  Sim.Engine.run eng

let dram_surface_is_free () =
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         let s = Ligra.Mem_surface.dram () in
         let a = Ligra.Mem_surface.alloc s ~len:100 ~init:(fun i -> i) in
         let buf = Sim.Costbuf.create () in
         for i = 0 to 99 do
           ignore (Ligra.Mem_surface.get a ~buf i)
         done;
         Alcotest.(check int64) "no mmio cost" 0L (Sim.Costbuf.total buf)));
  Sim.Engine.run eng

(* ---- BFS ---- *)

(* A path graph 0-1-2-...-9 gives known rounds and coverage. *)
let path_graph n =
  Ligra.Graph.of_edge_list ~n
    (List.concat (List.init (n - 1) (fun i -> [ (i, i + 1); (i + 1, i) ])))

let bfs_path_graph () =
  let eng = Sim.Engine.create () in
  let g = path_graph 10 in
  let r =
    Ligra.Bfs.run ~eng ~graph:g ~surface:(Ligra.Mem_surface.dram ()) ~threads:2
      ~source:0 ()
  in
  checki "all reached" 10 r.Ligra.Bfs.visited;
  checki "rounds = diameter + 1" 10 r.Ligra.Bfs.rounds

let bfs_disconnected () =
  let eng = Sim.Engine.create () in
  let g = Ligra.Graph.of_edge_list ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  let r =
    Ligra.Bfs.run ~eng ~graph:g ~surface:(Ligra.Mem_surface.dram ()) ~threads:1
      ~source:0 ()
  in
  checki "component only" 3 r.Ligra.Bfs.visited

let bfs_agrees_across_surfaces () =
  let g = Ligra.Rmat.generate ~seed:21 ~n:500 ~m:4000 () in
  let run surface_of threads =
    let eng = Sim.Engine.create () in
    let sref = ref None in
    ignore (Sim.Engine.spawn eng ~core:0 (fun () -> sref := Some (surface_of ())));
    Sim.Engine.run eng;
    let r = Ligra.Bfs.run ~eng ~graph:g ~surface:(Option.get !sref) ~threads ~source:0 () in
    (r.Ligra.Bfs.visited, r.Ligra.Bfs.rounds)
  in
  let dram = run (fun () -> Ligra.Mem_surface.dram ()) 1 in
  let aq1 = run (fun () -> (make_aquila_surface ~heap_pages:512 ~frames:128 ()) ()) 1 in
  let aq8 = run (fun () -> (make_aquila_surface ~heap_pages:512 ~frames:128 ()) ()) 8 in
  Alcotest.(check (pair int int)) "dram = aquila" dram aq1;
  Alcotest.(check int) "threads don't change coverage" (fst dram) (fst aq8)

let bfs_dense_switch_runs () =
  (* a star graph forces a huge frontier after round 1: exercises the
     bottom-up (dense) path *)
  let n = 2000 in
  let g =
    Ligra.Graph.of_edge_list ~n
      (List.concat (List.init (n - 1) (fun i -> [ (0, i + 1); (i + 1, 0) ])))
  in
  let eng = Sim.Engine.create () in
  let r =
    Ligra.Bfs.run ~eng ~graph:g ~surface:(Ligra.Mem_surface.dram ()) ~threads:4
      ~source:1 ()
  in
  checki "all reached via hub" n r.Ligra.Bfs.visited

let pagerank_conserves_mass () =
  let g = Ligra.Rmat.generate ~seed:30 ~n:300 ~m:3000 () in
  let eng = Sim.Engine.create () in
  let r =
    Ligra.Pagerank.run ~eng ~graph:g ~surface:(Ligra.Mem_surface.dram ()) ~threads:4
      ~iterations:15 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "mass ~1 (got %.4f)" r.Ligra.Pagerank.ranks_sum)
    true
    (abs_float (r.Ligra.Pagerank.ranks_sum -. 1.0) < 1e-6)

let pagerank_finds_the_hub () =
  (* star graph: every vertex points to vertex 0 *)
  let n = 100 in
  let g = Ligra.Graph.of_edge_list ~n (List.init (n - 1) (fun i -> (i + 1, 0))) in
  let eng = Sim.Engine.create () in
  let r =
    Ligra.Pagerank.run ~eng ~graph:g ~surface:(Ligra.Mem_surface.dram ()) ~threads:2 ()
  in
  Alcotest.(check int) "hub wins" 0 r.Ligra.Pagerank.top_vertex

let pagerank_same_on_mmio () =
  let g = Ligra.Rmat.generate ~seed:31 ~n:200 ~m:1500 () in
  let run surface_of =
    let eng = Sim.Engine.create () in
    let sref = ref None in
    ignore (Sim.Engine.spawn eng ~core:0 (fun () -> sref := Some (surface_of ())));
    Sim.Engine.run eng;
    let r =
      Ligra.Pagerank.run ~eng ~graph:g ~surface:(Option.get !sref) ~threads:4 ()
    in
    r.Ligra.Pagerank.top_vertex
  in
  let dram = run (fun () -> Ligra.Mem_surface.dram ()) in
  let aq = run (fun () -> (make_aquila_surface ~heap_pages:512 ~frames:128 ()) ()) in
  Alcotest.(check int) "same winner over mmio" dram aq

let components_on_known_graph () =
  (* two components: {0,1,2} (triangle) and {3,4} (edge); 5 isolated *)
  let g = Ligra.Graph.of_edge_list ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  let eng = Sim.Engine.create () in
  let r =
    Ligra.Components.run ~eng ~graph:g ~surface:(Ligra.Mem_surface.dram ()) ~threads:2 ()
  in
  checki "components" 3 r.Ligra.Components.components;
  checki "largest" 3 r.Ligra.Components.largest

let components_match_bfs_reachability () =
  let g = Ligra.Rmat.generate ~seed:44 ~n:400 ~m:1200 () in
  let eng = Sim.Engine.create () in
  let r =
    Ligra.Components.run ~eng ~graph:g ~surface:(Ligra.Mem_surface.dram ()) ~threads:4 ()
  in
  Alcotest.(check bool) "at least one component" true (r.Ligra.Components.components >= 1);
  Alcotest.(check bool) "largest bounded by n" true (r.Ligra.Components.largest <= 400);
  (* agree with an mmio run *)
  let sref = ref None in
  let eng2 = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng2 ~core:0 (fun () ->
         sref := Some ((make_aquila_surface ~heap_pages:512 ~frames:128 ()) ())));
  Sim.Engine.run eng2;
  let r2 =
    Ligra.Components.run ~eng:eng2 ~graph:g ~surface:(Option.get !sref) ~threads:4 ()
  in
  checki "mmio agrees" r.Ligra.Components.components r2.Ligra.Components.components

let () =
  Alcotest.run "ligra"
    [
      ( "graph",
        [
          Alcotest.test_case "csr" `Quick csr_construction;
          QCheck_alcotest.to_alcotest csr_model;
        ] );
      ( "rmat",
        [
          Alcotest.test_case "shape" `Quick rmat_shape;
          Alcotest.test_case "deterministic" `Quick rmat_deterministic;
        ] );
      ( "mem surface",
        [
          Alcotest.test_case "alloc/get/set" `Quick surface_alloc_get_set;
          Alcotest.test_case "exhaustion" `Quick surface_exhaustion;
          Alcotest.test_case "dram is free" `Quick dram_surface_is_free;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "path graph" `Quick bfs_path_graph;
          Alcotest.test_case "disconnected" `Quick bfs_disconnected;
          Alcotest.test_case "surfaces agree" `Quick bfs_agrees_across_surfaces;
          Alcotest.test_case "dense switch" `Quick bfs_dense_switch_runs;
        ] );
      ( "pagerank",
        [
          Alcotest.test_case "mass conservation" `Quick pagerank_conserves_mass;
          Alcotest.test_case "hub ranking" `Quick pagerank_finds_the_hub;
          Alcotest.test_case "mmio agreement" `Quick pagerank_same_on_mmio;
        ] );
      ( "components",
        [
          Alcotest.test_case "known graph" `Quick components_on_known_graph;
          Alcotest.test_case "mmio agreement" `Quick components_match_bfs_reachability;
        ] );
    ]
