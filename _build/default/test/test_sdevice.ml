(* Tests for the storage device models (lib/sdevice). *)

let psz = Hw.Defs.page_size
let c = Hw.Costs.default
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

(* Run [f] in a fresh engine fiber and return the elapsed virtual cycles. *)
let in_fiber f =
  let eng = Sim.Engine.create () in
  let out = ref None in
  ignore (Sim.Engine.spawn eng (fun () -> out := Some (f ())));
  Sim.Engine.run eng;
  (Option.get !out, Sim.Engine.now eng)

(* ---- Pagestore ---- *)

let pagestore_roundtrip () =
  let s = Sdevice.Pagestore.create () in
  let src = Bytes.of_string "hello across a page boundary!" in
  let addr = Int64.of_int (psz - 5) in
  Sdevice.Pagestore.write_bytes s ~addr ~src ~src_off:0 ~len:(Bytes.length src);
  let dst = Bytes.create (Bytes.length src) in
  Sdevice.Pagestore.read_bytes s ~addr ~len:(Bytes.length src) ~dst ~dst_off:0;
  Alcotest.(check string) "crosses pages" (Bytes.to_string src) (Bytes.to_string dst);
  checki "two pages materialized" 2 (Sdevice.Pagestore.allocated_pages s)

let pagestore_zero_fill () =
  let s = Sdevice.Pagestore.create () in
  let dst = Bytes.make 8 'x' in
  Sdevice.Pagestore.read_bytes s ~addr:123456L ~len:8 ~dst ~dst_off:0;
  Alcotest.(check string) "unwritten reads zero" (String.make 8 '\000')
    (Bytes.to_string dst);
  checki "reads allocate nothing" 0 (Sdevice.Pagestore.allocated_pages s)

let pagestore_pages () =
  let s = Sdevice.Pagestore.create () in
  let page = Bytes.make psz 'A' in
  Sdevice.Pagestore.write_page s ~page:7 ~src:page;
  let back = Bytes.create psz in
  Sdevice.Pagestore.read_page s ~page:7 ~dst:back;
  Alcotest.(check bool) "page equal" true (Bytes.equal page back)

let pagestore_prop =
  QCheck.Test.make ~name:"pagestore read-after-write at random offsets" ~count:100
    QCheck.(pair (int_bound 100000) (string_of_size (QCheck.Gen.int_range 1 5000)))
    (fun (off, data) ->
      data = ""
      ||
      let s = Sdevice.Pagestore.create () in
      let src = Bytes.of_string data in
      Sdevice.Pagestore.write_bytes s ~addr:(Int64.of_int off) ~src ~src_off:0
        ~len:(Bytes.length src);
      let dst = Bytes.create (Bytes.length src) in
      Sdevice.Pagestore.read_bytes s ~addr:(Int64.of_int off) ~len:(Bytes.length src)
        ~dst ~dst_off:0;
      Bytes.equal src dst)

(* ---- Block device / NVMe ---- *)

let nvme_latency_envelope () =
  let d = Sdevice.Nvme.create () in
  let t4k = Sdevice.Block_dev.service_time d ~len:psz in
  let us = Int64.to_float t4k /. 2400. in
  Alcotest.(check bool) "4K read ~10us (within 8-14us)" true (us > 8. && us < 14.);
  let t128k = Sdevice.Block_dev.service_time d ~len:(32 * psz) in
  Alcotest.(check bool) "sequential amortizes setup" true
    (Int64.to_float t128k < 32. *. Int64.to_float t4k)

let block_dev_queueing () =
  (* 12 concurrent 4K reads on 6 channels take two service rounds *)
  let d = Sdevice.Nvme.create () in
  let svc = Sdevice.Block_dev.service_time d ~len:psz in
  let eng = Sim.Engine.create () in
  for i = 0 to 11 do
    ignore
      (Sim.Engine.spawn eng ~core:i (fun () ->
           let b = Bytes.create psz in
           Sdevice.Block_dev.read d ~addr:(Int64.of_int (i * psz)) ~len:psz ~dst:b
             ~dst_off:0))
  done;
  Sim.Engine.run eng;
  check64 "two rounds" (Int64.mul 2L svc) (Sim.Engine.now eng);
  checki "reads counted" 12 (Sdevice.Block_dev.reads d);
  Alcotest.(check bool) "queueing recorded" true (Sdevice.Block_dev.queued_cycles d > 0L)

let block_dev_bounds () =
  let d = Sdevice.Nvme.create ~capacity_bytes:8192L () in
  let b = Bytes.create psz in
  Alcotest.check_raises "out of capacity"
    (Invalid_argument "nvme0: I/O outside device capacity") (fun () ->
      ignore (in_fiber (fun () -> Sdevice.Block_dev.read d ~addr:8192L ~len:psz ~dst:b ~dst_off:0)))

let block_dev_data () =
  let d = Sdevice.Nvme.create () in
  ignore
    (in_fiber (fun () ->
         let src = Bytes.make psz 'Q' in
         Sdevice.Block_dev.write d ~addr:4096L ~src ~src_off:0 ~len:psz;
         let dst = Bytes.create psz in
         Sdevice.Block_dev.read d ~addr:4096L ~len:psz ~dst ~dst_off:0;
         Alcotest.(check bool) "data persisted" true (Bytes.equal src dst)))

(* ---- Pmem / DAX ---- *)

let pmem_dax_costs () =
  let p = Sdevice.Pmem.create () in
  let dst = Bytes.create psz in
  let simd = Sdevice.Pmem.dax_read p c ~simd:true ~addr:0L ~len:psz ~dst ~dst_off:0 in
  let scalar = Sdevice.Pmem.dax_read p c ~simd:false ~addr:0L ~len:psz ~dst ~dst_off:0 in
  Alcotest.(check bool) "SIMD ~2x cheaper" true
    (Int64.to_float scalar /. Int64.to_float simd > 1.7);
  checki "reads counted" 2 (Sdevice.Pmem.dax_reads p)

let pmem_dax_roundtrip () =
  let p = Sdevice.Pmem.create () in
  let src = Bytes.of_string "persistent bytes" in
  ignore
    (Sdevice.Pmem.dax_write p c ~simd:true ~addr:4000L ~src ~src_off:0
       ~len:(Bytes.length src));
  let dst = Bytes.create (Bytes.length src) in
  ignore
    (Sdevice.Pmem.dax_read p c ~simd:true ~addr:4000L ~len:(Bytes.length src) ~dst
       ~dst_off:0);
  Alcotest.(check bool) "roundtrip" true (Bytes.equal src dst)

(* ---- Access methods ---- *)

let cost_of access =
  let (), cycles =
    in_fiber (fun () ->
        let b = Bytes.create psz in
        Sdevice.Access.read_page access ~page:0 ~dst:b)
  in
  cycles

let access_cost_ordering () =
  (* For a 4K pmem read: DAX < HOST(kernel) < HOST(user) < HOST(guest). *)
  let p () = Sdevice.Pmem.create () in
  let dax = cost_of (Sdevice.Access.dax_pmem c (p ())) in
  let kern = cost_of (Sdevice.Access.host_pmem c ~entry:Sdevice.Access.In_kernel (p ())) in
  let user = cost_of (Sdevice.Access.host_pmem c ~entry:Sdevice.Access.From_user (p ())) in
  let guest = cost_of (Sdevice.Access.host_pmem c ~entry:Sdevice.Access.From_guest (p ())) in
  Alcotest.(check bool) "dax < kernel path" true (dax < kern);
  Alcotest.(check bool) "kernel < syscall" true (kern < user);
  Alcotest.(check bool) "syscall < vmcall" true (user < guest)

let access_spdk_vs_host_nvme () =
  let spdk = cost_of (Sdevice.Access.spdk_nvme c (Sdevice.Nvme.create ())) in
  let host =
    cost_of
      (Sdevice.Access.host_nvme c ~entry:Sdevice.Access.From_guest
         (Sdevice.Nvme.create ()))
  in
  Alcotest.(check bool) "SPDK bypass cheaper" true (spdk < host)

let access_uring_between_spdk_and_host () =
  (* io_uring amortizes syscalls: cheaper than synchronous host I/O but
     still above the kernel-bypass SPDK path *)
  let spdk = cost_of (Sdevice.Access.spdk_nvme c (Sdevice.Nvme.create ())) in
  let uring =
    cost_of
      (Sdevice.Access.uring_nvme c ~entry:Sdevice.Access.From_user
         (Sdevice.Nvme.create ()))
  in
  let host =
    cost_of
      (Sdevice.Access.host_nvme c ~entry:Sdevice.Access.From_user
         (Sdevice.Nvme.create ()))
  in
  Alcotest.(check bool) "spdk < uring" true (spdk < uring);
  Alcotest.(check bool) "uring < host sync" true (uring < host)

let access_moves_data () =
  let nvme = Sdevice.Nvme.create () in
  let a = Sdevice.Access.spdk_nvme c nvme in
  ignore
    (in_fiber (fun () ->
         let src = Bytes.make (2 * psz) 'Z' in
         Sdevice.Access.write_pages a ~page:3 ~count:2 ~src;
         let dst = Bytes.create (2 * psz) in
         Sdevice.Access.read_pages a ~page:3 ~count:2 ~dst;
         Alcotest.(check bool) "multi-page roundtrip" true (Bytes.equal src dst)))

let access_rejects_small_buffer () =
  let a = Sdevice.Access.dax_pmem c (Sdevice.Pmem.create ()) in
  Alcotest.check_raises "buffer too small" (Invalid_argument "Access: buffer too small")
    (fun () ->
      ignore
        (in_fiber (fun () ->
             Sdevice.Access.read_pages a ~page:0 ~count:2 ~dst:(Bytes.create psz))))

let () =
  Alcotest.run "sdevice"
    [
      ( "pagestore",
        [
          Alcotest.test_case "roundtrip across pages" `Quick pagestore_roundtrip;
          Alcotest.test_case "zero fill" `Quick pagestore_zero_fill;
          Alcotest.test_case "whole pages" `Quick pagestore_pages;
          QCheck_alcotest.to_alcotest pagestore_prop;
        ] );
      ( "block dev",
        [
          Alcotest.test_case "nvme latency envelope" `Quick nvme_latency_envelope;
          Alcotest.test_case "queueing" `Quick block_dev_queueing;
          Alcotest.test_case "capacity bounds" `Quick block_dev_bounds;
          Alcotest.test_case "data" `Quick block_dev_data;
        ] );
      ( "pmem",
        [
          Alcotest.test_case "dax costs" `Quick pmem_dax_costs;
          Alcotest.test_case "dax roundtrip" `Quick pmem_dax_roundtrip;
        ] );
      ( "access",
        [
          Alcotest.test_case "cost ordering" `Quick access_cost_ordering;
          Alcotest.test_case "spdk vs host nvme" `Quick access_spdk_vs_host_nvme;
          Alcotest.test_case "io_uring in between" `Quick access_uring_between_spdk_and_host;
          Alcotest.test_case "moves data" `Quick access_moves_data;
          Alcotest.test_case "buffer validation" `Quick access_rejects_small_buffer;
        ] );
    ]
