test/test_aquila.ml: Alcotest Aquila Array Bytes Char Hw Int64 List Mcache Option Printf QCheck QCheck_alcotest Sdevice Sim
