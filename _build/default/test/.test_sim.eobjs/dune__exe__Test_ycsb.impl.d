test/test_ycsb.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest Sim Stats String Ycsb
