test/test_mcache.mli:
