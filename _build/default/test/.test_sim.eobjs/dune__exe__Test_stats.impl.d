test/test_stats.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Sim Stats
