test/test_sdevice.mli:
