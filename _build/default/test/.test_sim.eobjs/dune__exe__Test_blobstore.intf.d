test/test_blobstore.mli:
