test/test_sdevice.ml: Alcotest Bytes Hw Int64 Option QCheck QCheck_alcotest Sdevice Sim String
