test/test_experiments.ml: Alcotest Experiments Int64 List Printf Sdevice Sim
