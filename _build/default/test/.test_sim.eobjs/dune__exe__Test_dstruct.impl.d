test/test_dstruct.ml: Alcotest Dstruct Int List Map Option QCheck QCheck_alcotest Sim
