test/test_linux.ml: Alcotest Bytes Char Hw Int64 Linux_sim Mcache Option Printf Sdevice Sim String
