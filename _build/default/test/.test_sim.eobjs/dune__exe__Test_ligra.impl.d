test/test_ligra.ml: Alcotest Aquila Hw Int64 Ligra List Option Printf QCheck QCheck_alcotest Sdevice Sim
