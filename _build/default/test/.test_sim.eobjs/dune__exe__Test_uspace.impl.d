test/test_uspace.ml: Alcotest Bytes Hw Int64 Linux_sim Sdevice Sim Uspace
