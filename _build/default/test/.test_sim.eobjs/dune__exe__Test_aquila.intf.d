test/test_aquila.mli:
