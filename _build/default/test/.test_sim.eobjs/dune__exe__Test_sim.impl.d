test/test_sim.ml: Alcotest Buffer Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Sim
