test/test_ligra.mli:
