test/test_linux.mli:
