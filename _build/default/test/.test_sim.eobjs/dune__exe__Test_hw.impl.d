test/test_hw.ml: Alcotest Hw Int64 Option
