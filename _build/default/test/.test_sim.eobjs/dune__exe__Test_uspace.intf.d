test/test_uspace.mli:
