test/test_mcache.ml: Alcotest Bytes Char Hw Int64 List Mcache Option Printf QCheck QCheck_alcotest Sdevice Sim
