test/test_kvstore.ml: Alcotest Aquila Array Blobstore Bytes Hw Int64 Kvstore Linux_sim List Map Mcache Printf QCheck QCheck_alcotest Sdevice Sim String Uspace
