test/test_blobstore.ml: Alcotest Blobstore Bytes Char Hashtbl Hw Int64 List Printf QCheck QCheck_alcotest Sdevice Sim
